// Command sfclint runs the project's static-analysis suite — the five
// analyzers in internal/analysis that enforce the invariants the
// system's correctness and performance claims rest on. It needs only
// the Go toolchain:
//
//	go run ./cmd/sfclint ./...
//
// Exit status: 0 clean, 1 findings, 2 load or usage failure.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"sfccover/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sfclint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("C", ".", "directory to resolve package patterns in")
	list := fs.Bool("list", false, "list the analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: sfclint [-C dir] [-list] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	fset, pkgs, err := analysis.Load(*dir, fs.Args()...)
	if err != nil {
		fmt.Fprintf(stderr, "sfclint: %v\n", err)
		return 2
	}
	diags, err := analysis.Run(fset, pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "sfclint: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "sfclint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
