package main

import (
	"strings"
	"testing"

	"sfccover/internal/analysis"
)

func TestRunList(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run(-list) = %d, stderr: %s", code, stderr.String())
	}
	for _, a := range analysis.All() {
		if !strings.Contains(stdout.String(), a.Name) {
			t.Errorf("-list output missing analyzer %s", a.Name)
		}
	}
}

func TestRunCleanPackage(t *testing.T) {
	root := moduleRoot(t)
	var stdout, stderr strings.Builder
	if code := run([]string{"-C", root, "./internal/obs"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run(./internal/obs) = %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
}

func TestRunSeededViolations(t *testing.T) {
	root := moduleRoot(t)
	var stdout, stderr strings.Builder
	code := run([]string{"-C", root, "./internal/analysis/testdata/src/wireerrs"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("run(seeded fixture) = %d, want 1\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "wireerrs") {
		t.Errorf("findings output missing analyzer name:\n%s", stdout.String())
	}
}

func TestRunBadPattern(t *testing.T) {
	root := moduleRoot(t)
	var stdout, stderr strings.Builder
	if code := run([]string{"-C", root, "./does/not/exist"}, &stdout, &stderr); code != 2 {
		t.Fatalf("run(bad pattern) = %d, want 2", code)
	}
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	root, err := analysis.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	return root
}
