package main

import "testing"

func TestRunModes(t *testing.T) {
	if err := run("z", 3, "", true); err != nil {
		t.Errorf("figure2: %v", err)
	}
	for _, curve := range []string{"z", "hilbert", "gray"} {
		if err := run(curve, 3, "", false); err != nil {
			t.Errorf("order %s: %v", curve, err)
		}
	}
	if err := run("z", 4, "0,0,1,4", false); err != nil {
		t.Errorf("rect: %v", err)
	}
	if err := run("hilbert", 4, "0,0,1,4", false); err != nil {
		t.Errorf("hilbert rect: %v", err)
	}
}

func TestRunRejectsBadArguments(t *testing.T) {
	if err := run("peano", 3, "", false); err == nil {
		t.Error("unknown curve must fail")
	}
	if err := run("z", 9, "", false); err == nil {
		t.Error("k too large for drawing must fail")
	}
	if err := run("z", 0, "", false); err == nil {
		t.Error("k=0 must fail")
	}
	bad := []string{"1,2,3", "a,b,c,d", "5,5,1,1", "0,0,99,99"}
	for _, rect := range bad {
		if err := run("z", 4, rect, false); err == nil {
			t.Errorf("rect %q must fail", rect)
		}
	}
}
