// Command sfcviz draws ASCII pictures of the space filling curves and of
// run decompositions, reproducing the paper's Figures 1 and 2 visually.
//
//	sfcviz -curve z -k 3                 # visit order of the 8x8 Z curve
//	sfcviz -curve hilbert -k 3           # visit order of the Hilbert curve
//	sfcviz -rect 0,0,1,4 -k 4            # runs of a rectangle (Figure 1)
//	sfcviz -figure2                      # run counts of the Figure 2 queries
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"sfccover/internal/bits"
	"sfccover/internal/cubes"
	"sfccover/internal/geom"
	"sfccover/internal/sfc"
)

func main() {
	var (
		curveName = flag.String("curve", "z", "curve: z | hilbert | gray")
		k         = flag.Int("k", 3, "universe resolution (2^k cells per side, k <= 5 for drawing)")
		rect      = flag.String("rect", "", "draw run decomposition of x0,y0,x1,y1 instead of visit order")
		figure2   = flag.Bool("figure2", false, "print the Figure 2 run counts (256x256 vs 257x257)")
	)
	flag.Parse()
	if err := run(*curveName, *k, *rect, *figure2); err != nil {
		fmt.Fprintf(os.Stderr, "sfcviz: %v\n", err)
		os.Exit(1)
	}
}

func run(curveName string, k int, rect string, figure2 bool) error {
	if figure2 {
		return printFigure2()
	}
	if k < 1 || k > 5 {
		return fmt.Errorf("drawing needs 1 <= k <= 5, got %d", k)
	}
	c, err := sfc.New(curveName, sfc.Config{Dims: 2, Bits: k})
	if err != nil {
		return err
	}
	if rect != "" {
		return drawRuns(c, k, rect)
	}
	drawOrder(c, k)
	return nil
}

// drawOrder prints each cell's position in the curve's total order.
func drawOrder(c sfc.Curve, k int) {
	n := 1 << uint(k)
	width := len(strconv.Itoa(n*n - 1))
	fmt.Printf("%s curve visit order, %dx%d universe (x right, y up):\n\n", c.Name(), n, n)
	for y := n - 1; y >= 0; y-- {
		for x := 0; x < n; x++ {
			key := c.Key([]uint32{uint32(x), uint32(y)})
			v, _ := key.Uint64()
			fmt.Printf("%*d ", width, v)
		}
		fmt.Println()
	}
}

// drawRuns decomposes the rectangle into standard cubes, merges them into
// runs on the curve, and letters each cell by its run.
func drawRuns(c sfc.Curve, k int, spec string) error {
	parts := strings.Split(spec, ",")
	if len(parts) != 4 {
		return fmt.Errorf("-rect wants x0,y0,x1,y1, got %q", spec)
	}
	var v [4]uint32
	for i, p := range parts {
		x, err := strconv.ParseUint(strings.TrimSpace(p), 10, 32)
		if err != nil {
			return fmt.Errorf("-rect component %q: %w", p, err)
		}
		v[i] = uint32(x)
	}
	r, err := geom.NewRect([]uint32{v[0], v[1]}, []uint32{v[2], v[3]})
	if err != nil {
		return err
	}
	partition, err := cubes.Decompose(r, k)
	if err != nil {
		return err
	}
	runs := cubes.Runs(c, partition)
	fmt.Printf("%s curve: rectangle [%d,%d]x[%d,%d] -> %d cubes, %d runs\n\n",
		c.Name(), v[0], v[2], v[1], v[3], len(partition), len(runs))

	runOf := func(key bits.Key) int {
		for i, run := range runs {
			if run.Contains(key) {
				return i
			}
		}
		return -1
	}
	n := 1 << uint(k)
	for y := n - 1; y >= 0; y-- {
		for x := 0; x < n; x++ {
			cell := []uint32{uint32(x), uint32(y)}
			if !r.Contains(cell) {
				fmt.Print(". ")
				continue
			}
			idx := runOf(c.Key(cell))
			if idx < 0 {
				fmt.Print("? ")
				continue
			}
			fmt.Printf("%c ", rune('a'+idx%26))
		}
		fmt.Println()
	}
	fmt.Printf("\ncells lettered by run; '.' is outside the rectangle\n")
	return nil
}

// printFigure2 reports the exact run counts of the two Figure 2 queries.
func printFigure2() error {
	const k = 10
	z := sfc.MustZ(2, k)
	for _, side := range []uint64{256, 257} {
		ext := geom.MustExtremal([]uint64{side, side}, k)
		partition, err := cubes.Decompose(ext.Rect(), k)
		if err != nil {
			return err
		}
		runs := cubes.Runs(z, partition)
		cubes.SortByVolumeDesc(partition)
		fmt.Printf("%dx%d query region: %4d cubes, %3d runs, largest run covers %.2f%% of the region\n",
			side, side, len(partition), len(runs), 100*partition[0].Volume()/ext.Volume())
	}
	fmt.Println("\npaper (Figure 2): 1 run vs 385 runs; the largest run covers more than 99%")
	return nil
}
