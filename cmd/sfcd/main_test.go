package main

import (
	"context"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sfccover/internal/core"
	"sfccover/internal/engine"
	"sfccover/internal/sfcd"
	"sfccover/internal/subscription"
)

func defaultOptions() options {
	return options{
		attrs: "volume,price", bits: 10, mode: "approx", epsilon: 0.3,
		strategy: "sfc", partition: "hash", seed: 1,
	}
}

func TestBuildConfig(t *testing.T) {
	cfg, err := buildConfig(defaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Detector.Schema.NumAttrs() != 2 || cfg.Detector.Schema.Bits() != 10 {
		t.Errorf("schema = %d attrs, %d bits", cfg.Detector.Schema.NumAttrs(), cfg.Detector.Schema.Bits())
	}
	if cfg.Detector.Mode != core.ModeApprox {
		t.Errorf("mode = %v", cfg.Detector.Mode)
	}
	e, err := engine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.Close()
}

func TestBuildConfigSpacesAndModes(t *testing.T) {
	o := defaultOptions()
	o.attrs = " stock , volume ,price"
	o.mode = "exact"
	o.strategy = "linear"
	cfg, err := buildConfig(o)
	if err != nil {
		t.Fatal(err)
	}
	attrs := cfg.Detector.Schema.Attrs()
	if len(attrs) != 3 || attrs[0] != "stock" || attrs[2] != "price" {
		t.Errorf("attrs = %v", attrs)
	}
	if cfg.Detector.Mode != core.ModeExact {
		t.Errorf("mode = %v", cfg.Detector.Mode)
	}
	o.mode = "off"
	if cfg, err = buildConfig(o); err != nil || cfg.Detector.Mode != core.ModeOff {
		t.Errorf("mode off: cfg=%v err=%v", cfg.Detector.Mode, err)
	}
}

func TestBuildConfigRejectsBadInput(t *testing.T) {
	cases := []func(*options){
		func(o *options) { o.attrs = "" },
		func(o *options) { o.bits = 99 },
		func(o *options) { o.mode = "psychic" },
	}
	for i, mutate := range cases {
		o := defaultOptions()
		mutate(&o)
		if _, err := buildConfig(o); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

// TestMetricsHandler scrapes the HTTP endpoint the -metrics-addr flag
// mounts and checks the exposition content type and payload.
func TestMetricsHandler(t *testing.T) {
	cfg, err := buildConfig(defaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if _, err := eng.Insert(subscription.MustParse(cfg.Detector.Schema, "volume in [1,5]")); err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(metricsHandler(eng))
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "sfcd_subscriptions 1\n") {
		t.Fatalf("exposition missing subscription gauge:\n%s", body)
	}
}

// TestDaemonRoundTrip builds the engine+server exactly as main does —
// hardening flags included — and drives it through the client.
func TestDaemonRoundTrip(t *testing.T) {
	cfg, err := buildConfig(defaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	srv := sfcd.NewServerWith(eng, sfcd.ServerConfig{
		MaxConns:    16,
		ReadTimeout: time.Minute,
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ctx := context.Background()
	schema := subscription.MustSchema(10, "volume", "price")
	c, err := sfcd.Dial(addr.String(), schema)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sid, _, _, err := c.Subscribe(ctx, subscription.MustParse(schema, "volume in [0,1000] && price in [0,1000]"))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Unsubscribe(ctx, sid); err != nil {
		t.Fatal(err)
	}
}
