package main

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sfccover/internal/core"
	"sfccover/internal/engine"
	"sfccover/internal/persist"
	"sfccover/internal/sfcd"
	"sfccover/internal/subscription"
)

func defaultOptions() options {
	return options{
		attrs: "volume,price", bits: 10, mode: "approx", epsilon: 0.3,
		strategy: "sfc", partition: "hash", seed: 1,
	}
}

func TestBuildConfig(t *testing.T) {
	cfg, err := buildConfig(defaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Detector.Schema.NumAttrs() != 2 || cfg.Detector.Schema.Bits() != 10 {
		t.Errorf("schema = %d attrs, %d bits", cfg.Detector.Schema.NumAttrs(), cfg.Detector.Schema.Bits())
	}
	if cfg.Detector.Mode != core.ModeApprox {
		t.Errorf("mode = %v", cfg.Detector.Mode)
	}
	e, err := engine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.Close()
}

func TestBuildConfigSpacesAndModes(t *testing.T) {
	o := defaultOptions()
	o.attrs = " stock , volume ,price"
	o.mode = "exact"
	o.strategy = "linear"
	cfg, err := buildConfig(o)
	if err != nil {
		t.Fatal(err)
	}
	attrs := cfg.Detector.Schema.Attrs()
	if len(attrs) != 3 || attrs[0] != "stock" || attrs[2] != "price" {
		t.Errorf("attrs = %v", attrs)
	}
	if cfg.Detector.Mode != core.ModeExact {
		t.Errorf("mode = %v", cfg.Detector.Mode)
	}
	o.mode = "off"
	if cfg, err = buildConfig(o); err != nil || cfg.Detector.Mode != core.ModeOff {
		t.Errorf("mode off: cfg=%v err=%v", cfg.Detector.Mode, err)
	}
}

func TestBuildConfigRejectsBadInput(t *testing.T) {
	cases := []func(*options){
		func(o *options) { o.attrs = "" },
		func(o *options) { o.bits = 99 },
		func(o *options) { o.mode = "psychic" },
	}
	for i, mutate := range cases {
		o := defaultOptions()
		mutate(&o)
		if _, err := buildConfig(o); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

// TestMetricsHandler scrapes the HTTP endpoint the -metrics-addr flag
// mounts and checks the exposition content type and payload.
func TestMetricsHandler(t *testing.T) {
	cfg, err := buildConfig(defaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if _, err := eng.Insert(subscription.MustParse(cfg.Detector.Schema, "volume in [1,5]")); err != nil {
		t.Fatal(err)
	}
	srv := sfcd.NewServer(eng)

	ts := httptest.NewServer(metricsHandler(srv))
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "sfcd_subscriptions 1\n") {
		t.Fatalf("exposition missing subscription gauge:\n%s", body)
	}
	// The same page carries the daemon's latency histograms: the insert
	// above went through the engine's instrumented single-op path.
	if !strings.Contains(string(body), `sfcd_op_latency_seconds_count{op="engine_insert"}`) {
		t.Fatalf("exposition missing op latency histograms:\n%s", body)
	}
}

// TestPprofEndpoint checks the profiling handlers mount on the metrics
// mux (and only there).
func TestPprofEndpoint(t *testing.T) {
	mux := http.NewServeMux()
	registerPprof(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/pprof/ = %d, want 200", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "goroutine") {
		t.Fatalf("pprof index lacks profile listing:\n%.400s", body)
	}
}

// TestValidateServeOptionsObservability covers the new telemetry flags.
func TestValidateServeOptionsObservability(t *testing.T) {
	base := serveOptions{logLevel: "info"}
	if err := validateServeOptions(base); err != nil {
		t.Fatalf("valid options rejected: %v", err)
	}
	bad := base
	bad.logLevel = "loud"
	if err := validateServeOptions(bad); err == nil {
		t.Fatal("bogus -log-level accepted")
	}
	bad = base
	bad.slowLogSize = -1
	if err := validateServeOptions(bad); err == nil {
		t.Fatal("negative -slow-log-size accepted")
	}
	neg := base
	neg.slowQuery = -1 // log every traced query: explicitly allowed
	if err := validateServeOptions(neg); err != nil {
		t.Fatalf("negative -slow-query rejected: %v", err)
	}
}

// TestDaemonRoundTrip builds the engine+server exactly as main does —
// hardening flags included — and drives it through the client.
func TestDaemonRoundTrip(t *testing.T) {
	cfg, err := buildConfig(defaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	srv := sfcd.NewServerWith(eng, sfcd.ServerConfig{
		MaxConns:    16,
		ReadTimeout: time.Minute,
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ctx := context.Background()
	schema := subscription.MustSchema(10, "volume", "price")
	c, err := sfcd.Dial(addr.String(), schema)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sid, _, _, err := c.Subscribe(ctx, subscription.MustParse(schema, "volume in [0,1000] && price in [0,1000]"))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Unsubscribe(ctx, sid); err != nil {
		t.Fatal(err)
	}
}

// TestRunRejectsBadFlagCombinations is the exit-code battery for flag
// validation: every nonsensical combination must exit 2 (usage error)
// with a diagnosis on stderr, before any socket or data dir is touched.
func TestRunRejectsBadFlagCombinations(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"snapshot-interval-without-data-dir", []string{"-snapshot-interval", "5m"}},
		{"wal-sync-without-data-dir", []string{"-wal-sync"}},
		{"negative-max-conns", []string{"-max-conns", "-1"}},
		{"negative-read-timeout", []string{"-read-timeout", "-2s"}},
		{"negative-snapshot-interval", []string{"-data-dir", t.TempDir(), "-snapshot-interval", "-1s"}},
		{"bad-bits", []string{"-bits", "99"}},
		{"bad-mode", []string{"-mode", "psychic"}},
		{"bad-epsilon", []string{"-epsilon", "1.5"}},
		{"unknown-flag", []string{"-no-such-flag"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stderr strings.Builder
			if code := run(tc.args, &stderr); code != 2 {
				t.Fatalf("run(%v) = exit %d, want 2; stderr:\n%s", tc.args, code, stderr.String())
			}
			if stderr.Len() == 0 {
				t.Fatal("usage error must explain itself on stderr")
			}
		})
	}
}

// TestRunListenFailureExitsOne pins the runtime-failure exit code: a
// valid configuration that cannot bind its address is 1, not 2.
func TestRunListenFailureExitsOne(t *testing.T) {
	var stderr strings.Builder
	if code := run([]string{"-addr", "256.256.256.256:1"}, &stderr); code != 1 {
		t.Fatalf("run with an unbindable address = exit %d, want 1; stderr:\n%s", code, stderr.String())
	}
}

// TestPersistentServerRoundTrip builds the persistent daemon exactly as
// run does — store, recovery, final-snapshot shutdown — and verifies a
// subscription survives a full stop/start cycle.
func TestPersistentServerRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	schema := subscription.MustSchema(10, "volume", "price")
	sub := subscription.MustParse(schema, "volume in [0,1000] && price in [0,1000]")

	boot := func() (*engine.Engine, *persist.Store, *sfcd.Server, *sfcd.Client) {
		cfg, err := buildConfig(defaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		eng, err := engine.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		store, err := persist.Open(dir, cfg.Detector.Schema, persist.Options{})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := sfcd.NewPersistentServer(eng, store, sfcd.ServerConfig{})
		if err != nil {
			t.Fatal(err)
		}
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		c, err := sfcd.Dial(addr.String(), schema)
		if err != nil {
			t.Fatal(err)
		}
		return eng, store, srv, c
	}

	eng, store, srv, c := boot()
	sid, _, _, err := c.Subscribe(ctx, sub)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Snapshot(ctx); err != nil {
		t.Fatal(err)
	}
	c.Close()
	srv.Close()
	eng.Close()
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	eng, store, srv, c = boot()
	defer func() {
		c.Close()
		srv.Close()
		eng.Close()
		store.Close()
	}()
	got, err := c.Subscription(ctx, sid)
	if err != nil || !got.Equal(sub) {
		t.Fatalf("recovered Subscription(%d) = (%v, %v), want the pre-restart subscription", sid, got, err)
	}
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Subscriptions != 1 {
		t.Fatalf("recovered daemon holds %d subscriptions, want 1", st.Subscriptions)
	}
}
