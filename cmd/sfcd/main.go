// Command sfcd serves covering detection over the network: a sharded,
// concurrent detection engine behind the sfcd line protocol
// (newline-delimited JSON over TCP, subscriptions and events in the binary
// wire format).
//
// Usage:
//
//	sfcd -addr :7421 -attrs volume,price -bits 10 \
//	     -mode approx -epsilon 0.3 -shards 8 -partition prefix \
//	     -data-dir /var/lib/sfcd -snapshot-interval 5m
//
// With -data-dir the daemon's subscription state (the shared engine and
// every link namespace) is durable: adds and removes ride a write-ahead
// log, -snapshot-interval compacts it periodically, and a restarted
// daemon recovers its full pre-crash state before accepting the first
// connection. -wal-sync fsyncs per append; -wal-sync-interval trades a
// bounded power-failure window for group-commit throughput.
//
// With -follow the daemon boots as a read-only follower replicating the
// named primary's WAL stream into its own data dir; SIGUSR1 (or the
// promote wire op) flips it to primary:
//
//	sfcd -addr :7422 -data-dir /var/lib/sfcd-b -follow primary:7421
//
// A quick session with netcat:
//
//	$ echo '{"id":1,"op":"hello"}' | nc localhost 7421
//	{"id":1,"ok":true,"bits":10,"attrs":["volume","price"],...}
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"sfccover/internal/core"
	"sfccover/internal/engine"
	"sfccover/internal/obs"
	"sfccover/internal/persist"
	"sfccover/internal/sfcd"
	"sfccover/internal/subscription"
)

// daemonMaxCubes is the default per-query probe budget. The library
// default (core.DefaultMaxCubes, ~1M probes) tolerates hundreds of
// milliseconds per worst-case miss; a network daemon serving many clients
// wants misses bounded much tighter. Operators can raise it with
// -maxcubes.
const daemonMaxCubes = 50000

// options mirrors the flag set; kept separate so tests can build engine
// configurations without touching the global flag state.
type options struct {
	attrs             string
	bits              int
	mode              string
	epsilon           float64
	strategy          string
	curve             string
	array             string
	maxCubes          int
	decompCache       int
	adaptiveBudget    bool
	shards            int
	partition         string
	workers           int
	seed              int64
	trackCovered      bool
	rebalanceThresh   float64
	rebalanceInterval time.Duration
	rebalanceMaxMoves int
}

// buildConfig translates the flag values into an engine configuration.
func buildConfig(o options) (engine.Config, error) {
	var attrs []string
	for _, a := range strings.Split(o.attrs, ",") {
		if a = strings.TrimSpace(a); a != "" {
			attrs = append(attrs, a)
		}
	}
	schema, err := subscription.NewSchema(o.bits, attrs...)
	if err != nil {
		return engine.Config{}, err
	}
	mode, err := core.ParseMode(o.mode)
	if err != nil {
		return engine.Config{}, err
	}
	return engine.Config{
		Detector: core.Config{
			Schema:          schema,
			Mode:            mode,
			Epsilon:         o.epsilon,
			Strategy:        core.Strategy(o.strategy),
			Curve:           o.curve,
			Array:           o.array,
			Seed:            o.seed,
			MaxCubes:        o.maxCubes,
			DecompCacheSize: o.decompCache,
			AdaptiveBudget:  o.adaptiveBudget,
			TrackCovered:    o.trackCovered,
		},
		Shards:             o.shards,
		Partition:          engine.Partition(o.partition),
		Workers:            o.workers,
		RebalanceThreshold: o.rebalanceThresh,
		RebalanceInterval:  o.rebalanceInterval,
		RebalanceMaxMoves:  o.rebalanceMaxMoves,
	}, nil
}

// metricsHandler serves the daemon's full Prometheus page — scalar
// counters, op/stage latency histograms and per-link gauges, the same
// rendering as the protocol's "metrics" op — on a scrape-friendly HTTP
// endpoint.
func metricsHandler(srv *sfcd.Server) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		io.WriteString(w, srv.MetricsText()) //nolint:errcheck // best-effort scrape
	})
}

// registerPprof mounts the net/http/pprof handlers on the metrics mux —
// explicitly, instead of importing the package for its DefaultServeMux
// side effect, so the daemon's main listener never exposes profiling.
func registerPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// serveOptions carries the daemon-level (non-engine) flags.
type serveOptions struct {
	addr             string
	metricsAddr      string
	maxConns         int
	readTimeout      time.Duration
	dataDir          string
	snapshotInterval time.Duration
	walSync          bool
	walSyncInterval  time.Duration
	follow           string
	logLevel         string
	slowQuery        time.Duration
	slowLogSize      int
}

// validateServeOptions refuses nonsensical flag combinations with a
// usage error before any resource is touched.
func validateServeOptions(so serveOptions) error {
	if so.maxConns < 0 {
		return fmt.Errorf("-max-conns %d is negative (0 means unlimited)", so.maxConns)
	}
	if so.readTimeout < 0 {
		return fmt.Errorf("-read-timeout %v is negative (0 means none)", so.readTimeout)
	}
	if so.snapshotInterval < 0 {
		return fmt.Errorf("-snapshot-interval %v is negative (0 means no periodic snapshots)", so.snapshotInterval)
	}
	if so.walSyncInterval < 0 {
		return fmt.Errorf("-wal-sync-interval %v is negative (0 means no group commit)", so.walSyncInterval)
	}
	if so.walSync && so.walSyncInterval > 0 {
		return fmt.Errorf("-wal-sync and -wal-sync-interval are mutually exclusive (per-append fsync vs group commit)")
	}
	if so.dataDir == "" {
		if so.snapshotInterval > 0 {
			return fmt.Errorf("-snapshot-interval needs -data-dir (there is no durable state to snapshot)")
		}
		if so.walSync {
			return fmt.Errorf("-wal-sync needs -data-dir (there is no write-ahead log to sync)")
		}
		if so.walSyncInterval > 0 {
			return fmt.Errorf("-wal-sync-interval needs -data-dir (there is no write-ahead log to sync)")
		}
		if so.follow != "" {
			return fmt.Errorf("-follow needs -data-dir (a follower replicates into a durable store)")
		}
	}
	if _, err := obs.ParseLevel(so.logLevel); err != nil {
		return fmt.Errorf("-log-level: %w", err)
	}
	if so.slowLogSize < 0 {
		return fmt.Errorf("-slow-log-size %d is negative (0 means the default %d)", so.slowLogSize, obs.DefaultSlowLogSize)
	}
	return nil
}

// run is main minus the process: flags parse from args, diagnostics go to
// stderr, and the exit code is returned instead of os.Exit'd, so tests
// can drive every flag-validation path. Exit code 2 marks a usage error,
// 1 a runtime failure.
func run(args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("sfcd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var so serveOptions
	var o options
	fs.StringVar(&so.addr, "addr", ":7421", "TCP listen address")
	fs.StringVar(&so.metricsAddr, "metrics-addr", "", "HTTP listen address for Prometheus /metrics (empty = disabled)")
	fs.IntVar(&so.maxConns, "max-conns", 0, "max concurrently open client connections (0 = unlimited); excess dials get a clean conn_limit error frame")
	fs.DurationVar(&so.readTimeout, "read-timeout", 0, "per-request read timeout; idle/stalled connections past it are reaped (0 = none)")
	fs.StringVar(&so.dataDir, "data-dir", "", "directory for durable subscription state: WAL + snapshots; recovery runs at boot (empty = in-memory only)")
	fs.DurationVar(&so.snapshotInterval, "snapshot-interval", 0, "period between automatic snapshots compacting the WAL (0 = only on shutdown; needs -data-dir)")
	fs.BoolVar(&so.walSync, "wal-sync", false, "fsync the WAL after every append (bounds loss on power failure at a throughput cost; needs -data-dir)")
	fs.DurationVar(&so.walSyncInterval, "wal-sync-interval", 0, "group commit: fsync the WAL at this interval instead of per append, coalescing concurrent appends into one sync (needs -data-dir; exclusive with -wal-sync)")
	fs.StringVar(&so.follow, "follow", "", "primary daemon address to replicate from; the daemon boots as a read-only follower until promoted via SIGUSR1 or the promote op (needs -data-dir)")
	fs.StringVar(&so.logLevel, "log-level", "info", "daemon log threshold: debug, info, warn or error")
	fs.DurationVar(&so.slowQuery, "slow-query", 0, "queries at least this slow enter the slow-query log (0 = default 10ms, negative = log every traced query)")
	fs.IntVar(&so.slowLogSize, "slow-log-size", 0, "slow-query ring capacity (0 = default 128)")
	fs.StringVar(&o.attrs, "attrs", "volume,price", "comma-separated attribute names")
	fs.IntVar(&o.bits, "bits", 10, "per-attribute resolution in bits (1..16)")
	fs.StringVar(&o.mode, "mode", "approx", "detection mode: off, exact or approx")
	fs.Float64Var(&o.epsilon, "epsilon", 0.3, "approximation parameter (0 < eps < 1, approx mode)")
	fs.StringVar(&o.strategy, "strategy", "sfc", "search backend: sfc, linear or kdtree")
	fs.StringVar(&o.curve, "curve", "", "space filling curve: z (default), hilbert, gray or onion")
	fs.StringVar(&o.array, "array", "", "ordered structure: treap (default) or skiplist")
	fs.IntVar(&o.maxCubes, "maxcubes", daemonMaxCubes, "per-query probe budget (-1 = unlimited)")
	fs.IntVar(&o.decompCache, "decomp-cache", 0, "decomposition cache size in entries (0 = default, -1 = disabled); hits replay memoized probe orders bit-identically")
	fs.BoolVar(&o.adaptiveBudget, "adaptive-budget", false, "derive each query's effective epsilon and cube cap from observed workload statistics (configured values become floor/ceiling)")
	fs.IntVar(&o.shards, "shards", 0, "shard count (0 = default)")
	fs.StringVar(&o.partition, "partition", "prefix", "partition strategy: prefix (shared-decomposition plan) or hash")
	fs.IntVar(&o.workers, "workers", 0, "batch worker pool size (0 = GOMAXPROCS)")
	fs.Int64Var(&o.seed, "seed", 1, "index randomization seed")
	fs.BoolVar(&o.trackCovered, "track-covered", false,
		"maintain the mirrored index that serves the \"covered\" op in approx mode (exact mode serves it regardless)")
	fs.Float64Var(&o.rebalanceThresh, "rebalance-threshold", 0,
		"occupancy skew ratio arming the online slice rebalancer (must exceed 1; 0 = background rebalancing off; prefix partition only)")
	fs.DurationVar(&o.rebalanceInterval, "rebalance-interval", 0,
		"background rebalancer poll period (0 = engine default)")
	fs.IntVar(&o.rebalanceMaxMoves, "rebalance-max-moves", 0,
		"boundary moves allowed per rebalance pass, the migration-rate cap (0 = 2x shards)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if err := validateServeOptions(so); err != nil {
		fmt.Fprintf(stderr, "sfcd: %v\n", err)
		return 2
	}
	level, _ := obs.ParseLevel(so.logLevel) // validated above
	lg := obs.NewLogger(stderr, level)
	cfg, err := buildConfig(o)
	if err != nil {
		fmt.Fprintf(stderr, "sfcd: %v\n", err)
		return 2
	}
	cfg.Obs = obs.New(obs.Config{
		SlowThreshold: so.slowQuery,
		SlowLogSize:   so.slowLogSize,
	})
	eng, err := engine.New(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "sfcd: %v\n", err)
		return 2
	}
	defer eng.Close()

	scfg := sfcd.ServerConfig{MaxConns: so.maxConns, ReadTimeout: so.readTimeout}
	var srv *sfcd.Server
	var store *persist.Store
	if so.dataDir != "" {
		store, err = persist.Open(so.dataDir, cfg.Detector.Schema, persist.Options{Sync: so.walSync, SyncEvery: so.walSyncInterval})
		if err != nil {
			fmt.Fprintf(stderr, "sfcd: %v\n", err)
			return 1
		}
		defer store.Close()
		if so.follow != "" {
			srv, err = sfcd.NewFollowerServer(eng, store, scfg, so.follow)
		} else {
			srv, err = sfcd.NewPersistentServer(eng, store, scfg)
		}
		if err != nil {
			fmt.Fprintf(stderr, "sfcd: %v\n", err)
			return 1
		}
		ss := store.Stats()
		lg.Info("recovered durable state", "entries", ss.Entries, "links", ss.Links, "dir", so.dataDir, "role", srv.Role())
	} else {
		srv = sfcd.NewServerWith(eng, scfg)
	}
	bound, err := srv.Listen(so.addr)
	if err != nil {
		// The server's errors already carry the "sfcd:" prefix.
		fmt.Fprintln(stderr, err)
		return 1
	}
	lg.Info("serving", "addr", bound.String(), "bits", o.bits, "attrs", o.attrs,
		"shards", eng.NumShards(), "partition", string(eng.PartitionStrategy()), "mode", eng.Mode().String(),
		"role", srv.Role())

	if so.metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", metricsHandler(srv))
		registerPprof(mux)
		go func() {
			lg.Info("metrics listener up", "metrics", "http://"+so.metricsAddr+"/metrics", "pprof", "http://"+so.metricsAddr+"/debug/pprof/")
			if err := http.ListenAndServe(so.metricsAddr, mux); err != nil {
				lg.Error("metrics server failed", "err", err)
			}
		}()
	}

	stopSnapshots := make(chan struct{})
	if store != nil && so.snapshotInterval > 0 {
		go func() {
			ticker := time.NewTicker(so.snapshotInterval)
			defer ticker.Stop()
			for {
				select {
				case <-stopSnapshots:
					return
				case <-ticker.C:
					if err := store.Snapshot(); err != nil {
						lg.Warn("periodic snapshot failed", "err", err)
					} else {
						lg.Debug("periodic snapshot taken")
					}
				}
			}
		}()
	}

	// SIGUSR1 promotes a follower to primary in place: the operator (or an
	// external failover manager) signals the daemon once the old primary is
	// confirmed dead. Idempotent — and harmless — on a primary.
	promote := make(chan os.Signal, 1)
	signal.Notify(promote, syscall.SIGUSR1)
	go func() {
		for range promote {
			if err := srv.Promote(); err != nil {
				lg.Error("promotion failed", "err", err)
				continue
			}
			lg.Info("serving as primary", "addr", bound.String())
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	lg.Info("shutting down")
	close(stopSnapshots)
	srv.Close()
	if store != nil {
		// A final snapshot makes the next boot a pure snapshot load
		// instead of a WAL replay.
		if err := store.Snapshot(); err != nil {
			lg.Error("shutdown snapshot failed", "err", err)
		}
	}
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stderr))
}
