// Command sfcd serves covering detection over the network: a sharded,
// concurrent detection engine behind the sfcd line protocol
// (newline-delimited JSON over TCP, subscriptions and events in the binary
// wire format).
//
// Usage:
//
//	sfcd -addr :7421 -attrs volume,price -bits 10 \
//	     -mode approx -epsilon 0.3 -shards 8 -partition prefix
//
// A quick session with netcat:
//
//	$ echo '{"id":1,"op":"hello"}' | nc localhost 7421
//	{"id":1,"ok":true,"bits":10,"attrs":["volume","price"],...}
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"sfccover/internal/core"
	"sfccover/internal/engine"
	"sfccover/internal/sfcd"
	"sfccover/internal/subscription"
)

// daemonMaxCubes is the default per-query probe budget. The library
// default (core.DefaultMaxCubes, ~1M probes) tolerates hundreds of
// milliseconds per worst-case miss; a network daemon serving many clients
// wants misses bounded much tighter. Operators can raise it with
// -maxcubes.
const daemonMaxCubes = 50000

// options mirrors the flag set; kept separate so tests can build engine
// configurations without touching the global flag state.
type options struct {
	attrs             string
	bits              int
	mode              string
	epsilon           float64
	strategy          string
	curve             string
	array             string
	maxCubes          int
	shards            int
	partition         string
	workers           int
	seed              int64
	trackCovered      bool
	rebalanceThresh   float64
	rebalanceInterval time.Duration
	rebalanceMaxMoves int
}

// buildConfig translates the flag values into an engine configuration.
func buildConfig(o options) (engine.Config, error) {
	var attrs []string
	for _, a := range strings.Split(o.attrs, ",") {
		if a = strings.TrimSpace(a); a != "" {
			attrs = append(attrs, a)
		}
	}
	schema, err := subscription.NewSchema(o.bits, attrs...)
	if err != nil {
		return engine.Config{}, err
	}
	mode, err := core.ParseMode(o.mode)
	if err != nil {
		return engine.Config{}, err
	}
	return engine.Config{
		Detector: core.Config{
			Schema:       schema,
			Mode:         mode,
			Epsilon:      o.epsilon,
			Strategy:     core.Strategy(o.strategy),
			Curve:        o.curve,
			Array:        o.array,
			Seed:         o.seed,
			MaxCubes:     o.maxCubes,
			TrackCovered: o.trackCovered,
		},
		Shards:             o.shards,
		Partition:          engine.Partition(o.partition),
		Workers:            o.workers,
		RebalanceThreshold: o.rebalanceThresh,
		RebalanceInterval:  o.rebalanceInterval,
		RebalanceMaxMoves:  o.rebalanceMaxMoves,
	}, nil
}

// metricsHandler serves the engine counters in the Prometheus text
// exposition format — the same rendering as the protocol's "metrics" op,
// on a scrape-friendly HTTP endpoint.
func metricsHandler(eng *engine.Engine) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fmt.Fprint(w, sfcd.RenderPrometheus(eng.Stats()))
	})
}

func main() {
	var (
		addr        = flag.String("addr", ":7421", "TCP listen address")
		metricsAddr = flag.String("metrics-addr", "", "HTTP listen address for Prometheus /metrics (empty = disabled)")
		maxConns    = flag.Int("max-conns", 0, "max concurrently open client connections (0 = unlimited); excess dials get a clean conn_limit error frame")
		readTimeout = flag.Duration("read-timeout", 0, "per-request read timeout; idle/stalled connections past it are reaped (0 = none)")
		o           options
	)
	flag.StringVar(&o.attrs, "attrs", "volume,price", "comma-separated attribute names")
	flag.IntVar(&o.bits, "bits", 10, "per-attribute resolution in bits (1..16)")
	flag.StringVar(&o.mode, "mode", "approx", "detection mode: off, exact or approx")
	flag.Float64Var(&o.epsilon, "epsilon", 0.3, "approximation parameter (0 < eps < 1, approx mode)")
	flag.StringVar(&o.strategy, "strategy", "sfc", "search backend: sfc, linear or kdtree")
	flag.StringVar(&o.curve, "curve", "", "space filling curve: z (default), hilbert or gray")
	flag.StringVar(&o.array, "array", "", "ordered structure: treap (default) or skiplist")
	flag.IntVar(&o.maxCubes, "maxcubes", daemonMaxCubes, "per-query probe budget (-1 = unlimited)")
	flag.IntVar(&o.shards, "shards", 0, "shard count (0 = default)")
	flag.StringVar(&o.partition, "partition", "prefix", "partition strategy: prefix (shared-decomposition plan) or hash")
	flag.IntVar(&o.workers, "workers", 0, "batch worker pool size (0 = GOMAXPROCS)")
	flag.Int64Var(&o.seed, "seed", 1, "index randomization seed")
	flag.BoolVar(&o.trackCovered, "track-covered", false,
		"maintain the mirrored index that serves the \"covered\" op in approx mode (exact mode serves it regardless)")
	flag.Float64Var(&o.rebalanceThresh, "rebalance-threshold", 0,
		"occupancy skew ratio arming the online slice rebalancer (must exceed 1; 0 = background rebalancing off; prefix partition only)")
	flag.DurationVar(&o.rebalanceInterval, "rebalance-interval", 0,
		"background rebalancer poll period (0 = engine default)")
	flag.IntVar(&o.rebalanceMaxMoves, "rebalance-max-moves", 0,
		"boundary moves allowed per rebalance pass, the migration-rate cap (0 = 2x shards)")
	flag.Parse()

	cfg, err := buildConfig(o)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sfcd: %v\n", err)
		os.Exit(2)
	}
	eng, err := engine.New(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sfcd: %v\n", err)
		os.Exit(2)
	}
	defer eng.Close()

	srv := sfcd.NewServerWith(eng, sfcd.ServerConfig{
		MaxConns:    *maxConns,
		ReadTimeout: *readTimeout,
	})
	bound, err := srv.Listen(*addr)
	if err != nil {
		// The server's errors already carry the "sfcd:" prefix.
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	log.Printf("sfcd: serving %d-bit schema %s on %s (%d shards, %s partition, %s mode)",
		o.bits, o.attrs, bound, eng.NumShards(), eng.PartitionStrategy(), eng.Mode())

	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", metricsHandler(eng))
		go func() {
			log.Printf("sfcd: metrics on http://%s/metrics", *metricsAddr)
			if err := http.ListenAndServe(*metricsAddr, mux); err != nil {
				log.Printf("sfcd: metrics server: %v", err)
			}
		}()
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	log.Printf("sfcd: shutting down")
	srv.Close()
}
