// Command coverbench regenerates every experiment table in EXPERIMENTS.md:
// the paper's Figures 1 and 2, the Theorem 3.1 and 4.1 validations, and
// the system evaluation (recall, broker network, scaling, ablations).
//
// Usage:
//
//	coverbench                 # run everything
//	coverbench -run E1,E4      # run selected experiments
//	coverbench -quick          # smaller samples, faster
//	coverbench -list           # list experiment IDs
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"sfccover/internal/experiments"
)

func main() {
	var (
		run   = flag.String("run", "all", "comma-separated experiment IDs (e.g. E1,E4) or 'all'")
		quick = flag.Bool("quick", false, "use smaller sample sizes")
		list  = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	selected, err := selectExperiments(*run)
	if err != nil {
		fmt.Fprintf(os.Stderr, "coverbench: %v (use -list)\n", err)
		os.Exit(2)
	}

	if err := runExperiments(os.Stdout, selected, *quick); err != nil {
		fmt.Fprintf(os.Stderr, "coverbench: %v\n", err)
		os.Exit(1)
	}
}

// selectExperiments resolves "all" or a comma-separated ID list.
func selectExperiments(spec string) ([]experiments.Experiment, error) {
	if spec == "all" {
		return experiments.All(), nil
	}
	var selected []experiments.Experiment
	for _, id := range strings.Split(spec, ",") {
		id = strings.TrimSpace(id)
		e, ok := experiments.ByID(id)
		if !ok {
			return nil, fmt.Errorf("unknown experiment %q", id)
		}
		selected = append(selected, e)
	}
	return selected, nil
}

// runExperiments executes the selection in order, writing each table to w.
func runExperiments(w io.Writer, selected []experiments.Experiment, quick bool) error {
	for _, e := range selected {
		start := time.Now()
		if err := e.Run(w, quick); err != nil {
			return fmt.Errorf("%s failed: %w", e.ID, err)
		}
		fmt.Fprintf(w, "(%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
