// Command coverbench regenerates every experiment table in EXPERIMENTS.md:
// the paper's Figures 1 and 2, the Theorem 3.1 and 4.1 validations, and
// the system evaluation (recall, broker network, scaling, ablations).
//
// Usage:
//
//	coverbench                 # run everything
//	coverbench -run E1,E4      # run selected experiments
//	coverbench -quick          # smaller samples, faster
//	coverbench -list           # list experiment IDs
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"sfccover/internal/experiments"
)

func main() {
	var (
		run   = flag.String("run", "all", "comma-separated experiment IDs (e.g. E1,E4) or 'all'")
		quick = flag.Bool("quick", false, "use smaller sample sizes")
		list  = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	var selected []experiments.Experiment
	if *run == "all" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*run, ",") {
			id = strings.TrimSpace(id)
			e, ok := experiments.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "coverbench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	for _, e := range selected {
		start := time.Now()
		if err := e.Run(os.Stdout, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "coverbench: %s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("(%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
