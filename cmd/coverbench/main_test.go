package main

import (
	"strings"
	"testing"

	"sfccover/internal/experiments"
)

func TestSelectExperimentsAll(t *testing.T) {
	selected, err := selectExperiments("all")
	if err != nil {
		t.Fatal(err)
	}
	if len(selected) != len(experiments.All()) {
		t.Errorf("selected %d experiments, want %d", len(selected), len(experiments.All()))
	}
}

func TestSelectExperimentsByID(t *testing.T) {
	selected, err := selectExperiments("E4, E1")
	if err != nil {
		t.Fatal(err)
	}
	if len(selected) != 2 || selected[0].ID != "E4" || selected[1].ID != "E1" {
		t.Errorf("selection order not respected: %+v", selected)
	}
}

func TestSelectExperimentsUnknownID(t *testing.T) {
	if _, err := selectExperiments("E1,E99"); err == nil {
		t.Error("unknown experiment id should fail")
	}
}

func TestRunExperimentsWritesTables(t *testing.T) {
	selected, err := selectExperiments("E1")
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := runExperiments(&out, selected, true); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "E1") {
		t.Errorf("output does not mention the experiment:\n%s", text)
	}
	if !strings.Contains(text, "completed in") {
		t.Errorf("output lacks the completion line:\n%s", text)
	}
}
