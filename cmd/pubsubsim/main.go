// Command pubsubsim runs the deterministic broker-network simulation with a
// synthetic workload and reports the routing metrics the paper's covering
// optimization targets: routing-table size, subscription messages
// propagated, suppression counts and event traffic.
//
// The -backend flag selects the per-link covering provider: a single
// detector, a hash-sharded engine, or a curve-prefix engine — all running
// the identical routing protocol.
//
// Example:
//
//	pubsubsim -brokers 31 -topology tree -subs 300 -mode approx -eps 0.2 \
//	          -backend engine-prefix -shards 4
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"sfccover/internal/broker"
	"sfccover/internal/core"
	"sfccover/internal/engine"
	"sfccover/internal/sfcd"
	"sfccover/internal/stats"
	"sfccover/internal/subscription"
	"sfccover/internal/workload"
)

// params collects the simulation knobs (the flag set, minus parsing).
type params struct {
	brokers  int
	topology string
	nSubs    int
	nClients int
	nEvents  int
	mode     string
	eps      float64
	maxCubes int
	curve    string
	cache    int
	adaptive bool
	width    float64
	dist     string
	seed     int64
	backend  string
	shards   int
	batch    int
	churn    float64
	rounds   int
	daemon   string
	failover int

	rebalThreshold float64
	rebalInterval  time.Duration
}

func main() {
	var p params
	flag.IntVar(&p.brokers, "brokers", 31, "number of brokers")
	flag.StringVar(&p.topology, "topology", "tree", "overlay shape: line | star | tree | random")
	flag.IntVar(&p.nSubs, "subs", 300, "number of subscriptions")
	flag.IntVar(&p.nClients, "clients", 24, "number of clients")
	flag.IntVar(&p.nEvents, "events", 100, "number of published events")
	flag.StringVar(&p.mode, "mode", "approx", "covering mode: off | exact | approx")
	flag.Float64Var(&p.eps, "eps", 0.2, "approximation parameter for -mode approx")
	flag.IntVar(&p.maxCubes, "cap", 10000, "per-query probe budget (0 = library default, -1 = unlimited)")
	flag.StringVar(&p.curve, "curve", "", "space filling curve: z (default) | hilbert | gray | onion")
	flag.IntVar(&p.cache, "decomp-cache", 0, "decomposition cache size in entries (0 = default, -1 = disabled)")
	flag.BoolVar(&p.adaptive, "adaptive-budget", false, "derive per-query budgets from observed workload statistics")
	flag.Float64Var(&p.width, "width", 0.3, "mean subscription width as a fraction of the domain")
	flag.StringVar(&p.dist, "dist", "uniform", "value distribution: uniform | zipf | clustered | hotspot")
	flag.Int64Var(&p.seed, "seed", 1, "workload seed")
	flag.StringVar(&p.backend, "backend", "detector", "per-link provider: detector | engine-hash | engine-prefix | remote")
	flag.StringVar(&p.daemon, "daemon", "", "sfcd daemon address for -backend remote; \"local\" spins an in-process daemon so the whole overlay shares one index service; \"local-ha\" spins a replicated primary+follower pair with client-side failover")
	flag.IntVar(&p.failover, "failover-round", 0, "kill the primary daemon and promote the follower at the start of this churn round (needs -daemon local-ha; 0 = never)")
	flag.IntVar(&p.shards, "shards", 0, "per-link engine shard count (engine backends; 0 = default)")
	flag.IntVar(&p.batch, "batch", 0, "covered-set re-forward probe batch size (0 = whole set)")
	flag.Float64Var(&p.churn, "churn", 0.25, "fraction of the remaining subscriptions withdrawn per churn round")
	flag.IntVar(&p.rounds, "churn-rounds", 1, "churn+publish rounds; each withdraws -churn of the remaining subscriptions, republishes the event batch and reports delivery-latency percentiles")
	flag.Float64Var(&p.rebalThreshold, "rebalance-threshold", 0,
		"occupancy skew ratio arming each engine-prefix link's online slice rebalancer (must exceed 1; 0 = off)")
	flag.DurationVar(&p.rebalInterval, "rebalance-interval", 0,
		"background rebalancer poll period (0 = engine default)")
	flag.Parse()
	if _, err := run(p); err != nil {
		fmt.Fprintf(os.Stderr, "pubsubsim: %v\n", err)
		os.Exit(1)
	}
}

// simResult carries the final counters out of run so the failover smoke
// test can compare a kill-and-promote run against a never-killed one.
type simResult struct {
	Metrics           broker.Metrics
	TableRows         int
	ForwardedEntries  int
	SuppressedEntries int
}

func run(p params) (simResult, error) {
	var res simResult
	schema, err := subscription.NewSchema(10, "topic", "price")
	if err != nil {
		return res, err
	}
	var topo broker.Topology
	switch p.topology {
	case "line":
		topo = broker.Line(p.brokers)
	case "star":
		topo = broker.Star(p.brokers)
	case "tree":
		topo = broker.BalancedTree(p.brokers)
	case "random":
		topo = broker.RandomTree(p.brokers, p.seed)
	default:
		return res, fmt.Errorf("unknown topology %q", p.topology)
	}
	cfg := broker.Config{
		Schema:             schema,
		MaxCubes:           p.maxCubes,
		Curve:              p.curve,
		DecompCacheSize:    p.cache,
		AdaptiveBudget:     p.adaptive,
		Seed:               p.seed,
		Backend:            broker.Backend(p.backend),
		Shards:             p.shards,
		BatchSize:          p.batch,
		RebalanceThreshold: p.rebalThreshold,
		RebalanceInterval:  p.rebalInterval,
	}
	switch p.mode {
	case "off":
		cfg.Mode = core.ModeOff
	case "exact":
		cfg.Mode = core.ModeExact
		cfg.Strategy = core.StrategyLinear
	case "approx":
		cfg.Mode = core.ModeApprox
		cfg.Epsilon = p.eps
	default:
		return res, fmt.Errorf("unknown mode %q", p.mode)
	}
	if p.churn < 0 || p.churn > 1 {
		return res, fmt.Errorf("churn fraction %v out of [0,1]", p.churn)
	}
	if p.rounds < 1 {
		return res, fmt.Errorf("churn rounds %d must be positive", p.rounds)
	}
	if p.failover != 0 && (p.failover < 1 || p.failover > p.rounds) {
		return res, fmt.Errorf("-failover-round %d out of the churn-round range [1,%d]", p.failover, p.rounds)
	}
	if p.failover != 0 && p.daemon != "local-ha" {
		return res, fmt.Errorf("-failover-round needs -daemon local-ha (there is no follower to promote)")
	}
	var cluster *haCluster
	if cfg.Backend == broker.BackendRemote {
		switch p.daemon {
		case "":
			return res, fmt.Errorf("-backend remote needs -daemon (an sfcd address, \"local\", or \"local-ha\")")
		case "local-ha":
			// A replicated in-process pair: the overlay's shared client
			// carries both addresses and -failover-round exercises the whole
			// kill → promote → reconnect path.
			dir, err := os.MkdirTemp("", "pubsubsim-ha-")
			if err != nil {
				return res, err
			}
			defer os.RemoveAll(dir)
			if cluster, err = startHACluster(schema, cfg, p.shards, dir); err != nil {
				return res, err
			}
			defer cluster.Close()
			cfg.DaemonAddrs = cluster.addrs()
			cfg.DaemonTimeout = 30 * time.Second
		case "local":
			// One in-process daemon backing every broker link — the
			// shared-daemon deployment the remote backend exists for, in a
			// self-contained process.
			eng, err := engine.New(engine.Config{
				Detector: core.Config{
					Schema:          schema,
					Mode:            cfg.Mode,
					Epsilon:         cfg.Epsilon,
					Strategy:        cfg.Strategy,
					Curve:           cfg.Curve,
					MaxCubes:        cfg.MaxCubes,
					DecompCacheSize: cfg.DecompCacheSize,
					AdaptiveBudget:  cfg.AdaptiveBudget,
					Seed:            cfg.Seed,
				},
				Shards: p.shards,
			})
			if err != nil {
				return res, err
			}
			defer eng.Close()
			srv := sfcd.NewServer(eng)
			addr, err := srv.Listen("127.0.0.1:0")
			if err != nil {
				return res, err
			}
			defer srv.Close()
			cfg.DaemonAddr = addr.String()
		default:
			cfg.DaemonAddr = p.daemon
		}
	}

	subs, err := workload.Subscriptions(workload.SubSpec{
		Schema: schema, N: p.nSubs, Dist: workload.SubDist(p.dist),
		WidthFrac: p.width, Seed: p.seed,
	})
	if err != nil {
		return res, err
	}
	events, err := workload.Events(workload.EventSpec{Schema: schema, N: p.nEvents, Seed: p.seed + 1})
	if err != nil {
		return res, err
	}

	net, err := broker.NewNetwork(topo, cfg)
	if err != nil {
		return res, err
	}
	defer net.Close()
	clients := make([]*broker.Client, p.nClients)
	for i := range clients {
		c, err := net.AttachClient(i % net.NumBrokers())
		if err != nil {
			return res, err
		}
		clients[i] = c
	}
	for i, s := range subs {
		if err := net.Subscribe(clients[i%p.nClients].ID, s); err != nil {
			return res, err
		}
	}
	net.Drain()
	// Withdraw a slice of the population per round: unsubscription drives
	// the covered-set resubscription path, the part of the protocol the
	// covering optimization makes delicate. Each round publishes the full
	// event batch and reports delivery latency percentiles from the
	// overlay's histogram, as an interval delta so rounds don't blur.
	live := make([]int, len(subs))
	for i := range live {
		live[i] = i
	}
	nChurn := 0
	lt := stats.NewTable("round", "churned", "deliveries", "p50", "p95", "p99")
	prev := net.DeliveryLatency()
	for r := 1; r <= p.rounds; r++ {
		if cluster != nil && p.failover == r {
			// The overlay is drained, so nothing is in flight: the kill
			// exercises reconnection and promotion, not the (typed,
			// caller-decided) in-flight failure surface. Traffic resumes
			// once the overlay's client reports the replacement connection
			// installed (see awaitReconnect).
			fs, _ := net.DaemonFailoverStats()
			if err := cluster.failover(); err != nil {
				return res, fmt.Errorf("failover: %w", err)
			}
			if err := awaitReconnect(net, fs.Reconnects); err != nil {
				return res, fmt.Errorf("failover: %w", err)
			}
		}
		k := int(p.churn * float64(len(live)))
		for _, i := range live[:k] {
			if err := net.Unsubscribe(clients[i%p.nClients].ID, subs[i]); err != nil {
				return res, err
			}
		}
		live = live[k:]
		nChurn += k
		net.Drain()
		for i, ev := range events {
			if err := net.Publish(clients[i%p.nClients].ID, ev); err != nil {
				return res, err
			}
		}
		net.Drain()
		cur := net.DeliveryLatency()
		d := cur.Sub(prev)
		prev = cur
		lt.AddRow(r, k, d.Count, d.Quantile(0.50), d.Quantile(0.95), d.Quantile(0.99))
	}

	m := net.Metrics()
	tot := net.CoverTotals()
	res = simResult{
		Metrics:           m,
		TableRows:         net.TableRows(),
		ForwardedEntries:  net.ForwardedEntries(),
		SuppressedEntries: net.SuppressedEntries(),
	}
	fmt.Printf("pubsubsim: %d brokers (%s), %d clients, %d subscriptions (%d churned), %d events, mode=%s backend=%s",
		topo.N, p.topology, p.nClients, p.nSubs, nChurn, p.nEvents, p.mode, cfg.Backend)
	if cfg.Mode == core.ModeApprox {
		fmt.Printf(" eps=%v cap=%d", p.eps, p.maxCubes)
	}
	fmt.Println()
	tb := stats.NewTable("metric", "value")
	tb.AddRow("routing table rows", net.TableRows())
	tb.AddRow("forwarded-set entries", net.ForwardedEntries())
	tb.AddRow("suppressed-set entries", net.SuppressedEntries())
	tb.AddRow("subscribe msgs", m.SubscribeMsgs)
	tb.AddRow("unsubscribe msgs", m.UnsubscribeMsgs)
	tb.AddRow("suppressed forwards", m.SuppressedForwards)
	tb.AddRow("duplicate forwards", m.DuplicateForwards)
	tb.AddRow("event msgs", m.EventMsgs)
	tb.AddRow("deliveries", m.Deliveries)
	tb.AddRow("cover queries", tot.Queries)
	tb.AddRow("cover hits", tot.Hits)
	if tot.Queries > 0 {
		tb.AddRow("mean probes/query", float64(tot.RunsProbed)/float64(tot.Queries))
	}
	tb.AddRow("protocol errors", m.ProtocolErrors)
	fmt.Println(tb)
	fmt.Println("delivery latency per churn round (publish to client hand-off):")
	fmt.Println(lt)
	if m.ProtocolErrors != 0 {
		return res, fmt.Errorf("simulation reported %d protocol errors", m.ProtocolErrors)
	}
	return res, nil
}
