// Command pubsubsim runs the deterministic broker-network simulation with a
// synthetic workload and reports the routing metrics the paper's covering
// optimization targets: routing-table size, subscription messages
// propagated, suppression counts and event traffic.
//
// Example:
//
//	pubsubsim -brokers 31 -topology tree -subs 300 -mode approx -eps 0.2
package main

import (
	"flag"
	"fmt"
	"os"

	"sfccover/internal/broker"
	"sfccover/internal/core"
	"sfccover/internal/stats"
	"sfccover/internal/subscription"
	"sfccover/internal/workload"
)

func main() {
	var (
		brokers  = flag.Int("brokers", 31, "number of brokers")
		topology = flag.String("topology", "tree", "overlay shape: line | star | tree | random")
		nSubs    = flag.Int("subs", 300, "number of subscriptions")
		nClients = flag.Int("clients", 24, "number of clients")
		nEvents  = flag.Int("events", 100, "number of published events")
		mode     = flag.String("mode", "approx", "covering mode: off | exact | approx")
		eps      = flag.Float64("eps", 0.2, "approximation parameter for -mode approx")
		maxCubes = flag.Int("cap", 10000, "per-query probe budget (0 = library default, -1 = unlimited)")
		width    = flag.Float64("width", 0.3, "mean subscription width as a fraction of the domain")
		dist     = flag.String("dist", "uniform", "value distribution: uniform | zipf | clustered")
		seed     = flag.Int64("seed", 1, "workload seed")
	)
	flag.Parse()
	if err := run(*brokers, *topology, *nSubs, *nClients, *nEvents, *mode, *eps, *maxCubes, *width, *dist, *seed); err != nil {
		fmt.Fprintf(os.Stderr, "pubsubsim: %v\n", err)
		os.Exit(1)
	}
}

func run(brokers int, topology string, nSubs, nClients, nEvents int, mode string, eps float64, maxCubes int, width float64, dist string, seed int64) error {
	schema, err := subscription.NewSchema(10, "topic", "price")
	if err != nil {
		return err
	}
	var topo broker.Topology
	switch topology {
	case "line":
		topo = broker.Line(brokers)
	case "star":
		topo = broker.Star(brokers)
	case "tree":
		topo = broker.BalancedTree(brokers)
	case "random":
		topo = broker.RandomTree(brokers, seed)
	default:
		return fmt.Errorf("unknown topology %q", topology)
	}
	cfg := broker.Config{Schema: schema, MaxCubes: maxCubes, Seed: seed}
	switch mode {
	case "off":
		cfg.Mode = core.ModeOff
	case "exact":
		cfg.Mode = core.ModeExact
		cfg.Strategy = core.StrategyLinear
	case "approx":
		cfg.Mode = core.ModeApprox
		cfg.Epsilon = eps
	default:
		return fmt.Errorf("unknown mode %q", mode)
	}

	subs, err := workload.Subscriptions(workload.SubSpec{
		Schema: schema, N: nSubs, Dist: workload.SubDist(dist),
		WidthFrac: width, Seed: seed,
	})
	if err != nil {
		return err
	}
	events, err := workload.Events(workload.EventSpec{Schema: schema, N: nEvents, Seed: seed + 1})
	if err != nil {
		return err
	}

	net, err := broker.NewNetwork(topo, cfg)
	if err != nil {
		return err
	}
	clients := make([]*broker.Client, nClients)
	for i := range clients {
		c, err := net.AttachClient(i % net.NumBrokers())
		if err != nil {
			return err
		}
		clients[i] = c
	}
	for i, s := range subs {
		if err := net.Subscribe(clients[i%nClients].ID, s); err != nil {
			return err
		}
	}
	net.Drain()
	for i, ev := range events {
		if err := net.Publish(clients[i%nClients].ID, ev); err != nil {
			return err
		}
	}
	net.Drain()

	m := net.Metrics()
	tot := net.CoverTotals()
	fmt.Printf("pubsubsim: %d brokers (%s), %d clients, %d subscriptions, %d events, mode=%s",
		topo.N, topology, nClients, nSubs, nEvents, mode)
	if cfg.Mode == core.ModeApprox {
		fmt.Printf(" eps=%v cap=%d", eps, maxCubes)
	}
	fmt.Println()
	tb := stats.NewTable("metric", "value")
	tb.AddRow("routing table rows", net.TableRows())
	tb.AddRow("forwarded-set entries", net.ForwardedEntries())
	tb.AddRow("subscribe msgs", m.SubscribeMsgs)
	tb.AddRow("unsubscribe msgs", m.UnsubscribeMsgs)
	tb.AddRow("suppressed forwards", m.SuppressedForwards)
	tb.AddRow("duplicate forwards", m.DuplicateForwards)
	tb.AddRow("event msgs", m.EventMsgs)
	tb.AddRow("deliveries", m.Deliveries)
	tb.AddRow("cover queries", tot.Queries)
	tb.AddRow("cover hits", tot.Hits)
	if tot.Queries > 0 {
		tb.AddRow("mean probes/query", float64(tot.RunsProbed)/float64(tot.Queries))
	}
	tb.AddRow("protocol errors", m.ProtocolErrors)
	fmt.Println(tb)
	if m.ProtocolErrors != 0 {
		return fmt.Errorf("simulation reported %d protocol errors", m.ProtocolErrors)
	}
	return nil
}
