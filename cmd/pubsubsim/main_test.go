package main

import "testing"

// base returns a small, fast parameter set; tests mutate what they need.
func base() params {
	return params{
		brokers: 7, topology: "tree", nSubs: 40, nClients: 6, nEvents: 10,
		mode: "exact", width: 0.3, dist: "uniform", seed: 1, backend: "detector",
		churn: 0.25, rounds: 1,
	}
}

func TestRunAllModesAndTopologies(t *testing.T) {
	for _, topo := range []string{"line", "star", "tree", "random"} {
		p := base()
		p.topology = topo
		if _, err := run(p); err != nil {
			t.Errorf("topology %s: %v", topo, err)
		}
	}
	for _, mode := range []string{"off", "exact", "approx"} {
		p := base()
		p.brokers, p.nSubs, p.nClients = 5, 30, 4
		p.mode, p.eps, p.maxCubes, p.seed = mode, 0.3, 2000, 2
		if _, err := run(p); err != nil {
			t.Errorf("mode %s: %v", mode, err)
		}
	}
	for _, dist := range []string{"uniform", "zipf", "clustered"} {
		p := base()
		p.brokers, p.nSubs, p.nClients, p.nEvents = 3, 20, 3, 5
		p.topology, p.mode, p.width, p.dist, p.seed = "line", "off", 0.25, dist, 3
		if _, err := run(p); err != nil {
			t.Errorf("dist %s: %v", dist, err)
		}
	}
}

func TestRunEngineBackends(t *testing.T) {
	for _, backend := range []string{"engine-hash", "engine-prefix"} {
		p := base()
		p.brokers, p.nSubs = 5, 30
		p.mode, p.eps, p.maxCubes = "approx", 0.3, 2000
		p.backend, p.shards, p.batch = backend, 2, 8
		p.churn, p.rounds = 0.5, 3
		if _, err := run(p); err != nil {
			t.Errorf("backend %s: %v", backend, err)
		}
	}
}

func TestRunRemoteBackend(t *testing.T) {
	// "-backend remote -daemon local" spins an in-process daemon and
	// points every broker link at it over one pipelined connection.
	p := base()
	p.brokers, p.nSubs = 5, 30
	p.backend, p.daemon, p.shards = "remote", "local", 2
	p.churn = 0.5
	if _, err := run(p); err != nil {
		t.Errorf("remote backend: %v", err)
	}
}

func TestRunRejectsBadArguments(t *testing.T) {
	mutations := map[string]func(*params){
		"unknown topology":     func(p *params) { p.topology = "mesh" },
		"unknown mode":         func(p *params) { p.mode = "fuzzy" },
		"epsilon out of range": func(p *params) { p.mode = "approx"; p.eps = 7 },
		"unknown distribution": func(p *params) { p.dist = "bimodal" },
		"unknown backend":      func(p *params) { p.backend = "quantum" },
		"remote sans daemon":   func(p *params) { p.backend = "remote" },
		"churn out of range":   func(p *params) { p.churn = 1.5 },
		"zero churn rounds":    func(p *params) { p.rounds = 0 },
	}
	for name, mutate := range mutations {
		p := base()
		p.brokers, p.nSubs, p.nClients, p.nEvents = 5, 10, 2, 2
		mutate(&p)
		if _, err := run(p); err == nil {
			t.Errorf("%s must fail", name)
		}
	}
}

// TestFailoverMatchesCleanRun is the PR's acceptance gate in miniature:
// the same workload against the replicated daemon pair, once with the
// primary killed and the follower promoted mid-run and once untouched,
// must converge to identical routing state and delivery counters — zero
// lost subscriptions, zero protocol errors, bit-identical cover answers.
func TestFailoverMatchesCleanRun(t *testing.T) {
	ha := base()
	ha.brokers, ha.nSubs, ha.nClients = 5, 40, 4
	ha.backend, ha.daemon, ha.shards = "remote", "local-ha", 2
	ha.churn, ha.rounds = 0.3, 3

	clean, err := run(ha)
	if err != nil {
		t.Fatalf("clean HA run: %v", err)
	}
	ha.failover = 2
	killed, err := run(ha)
	if err != nil {
		t.Fatalf("failover run: %v", err)
	}
	if killed.Metrics.ProtocolErrors != 0 {
		t.Fatalf("failover run hit %d protocol errors", killed.Metrics.ProtocolErrors)
	}
	if killed != clean {
		t.Fatalf("failover run diverged from clean run\n got %+v\nwant %+v", killed, clean)
	}
}
