package main

import "testing"

func TestRunAllModesAndTopologies(t *testing.T) {
	for _, topo := range []string{"line", "star", "tree", "random"} {
		if err := run(7, topo, 40, 6, 10, "exact", 0, 0, 0.3, "uniform", 1); err != nil {
			t.Errorf("topology %s: %v", topo, err)
		}
	}
	for _, mode := range []string{"off", "exact", "approx"} {
		if err := run(5, "tree", 30, 4, 10, mode, 0.3, 2000, 0.3, "uniform", 2); err != nil {
			t.Errorf("mode %s: %v", mode, err)
		}
	}
	for _, dist := range []string{"uniform", "zipf", "clustered"} {
		if err := run(3, "line", 20, 3, 5, "off", 0, 0, 0.25, dist, 3); err != nil {
			t.Errorf("dist %s: %v", dist, err)
		}
	}
}

func TestRunRejectsBadArguments(t *testing.T) {
	if err := run(5, "mesh", 10, 2, 2, "exact", 0, 0, 0.3, "uniform", 1); err == nil {
		t.Error("unknown topology must fail")
	}
	if err := run(5, "tree", 10, 2, 2, "fuzzy", 0, 0, 0.3, "uniform", 1); err == nil {
		t.Error("unknown mode must fail")
	}
	if err := run(5, "tree", 10, 2, 2, "approx", 7, 0, 0.3, "uniform", 1); err == nil {
		t.Error("epsilon out of range must fail")
	}
	if err := run(5, "tree", 10, 2, 2, "off", 0, 0, 0.3, "bimodal", 1); err == nil {
		t.Error("unknown distribution must fail")
	}
}
