package main

import (
	"fmt"
	"path/filepath"
	"time"

	"sfccover/internal/broker"
	"sfccover/internal/core"
	"sfccover/internal/engine"
	"sfccover/internal/persist"
	"sfccover/internal/sfcd"
	"sfccover/internal/subscription"
)

// haCluster is the in-process replicated daemon pair behind
// -daemon local-ha: a persistent primary and a follower tailing its WAL
// stream, each with its own data dir, both listening on loopback. The
// overlay's shared client carries both addresses and fails over once
// the primary is killed and the follower promoted.
type haCluster struct {
	primaryEng    *engine.Engine
	followerEng   *engine.Engine
	primaryStore  *persist.Store
	followerStore *persist.Store
	primary       *sfcd.Server
	follower      *sfcd.Server
	primaryAddr   string
	followerAddr  string
	promoted      bool
}

// newDaemonEngine builds a daemon-side engine mirroring the overlay's
// covering configuration, the same translation the plain "local" daemon
// mode performs.
func newDaemonEngine(schema *subscription.Schema, cfg broker.Config, shards int) (*engine.Engine, error) {
	return engine.New(engine.Config{
		Detector: core.Config{
			Schema:          schema,
			Mode:            cfg.Mode,
			Epsilon:         cfg.Epsilon,
			Strategy:        cfg.Strategy,
			Curve:           cfg.Curve,
			MaxCubes:        cfg.MaxCubes,
			DecompCacheSize: cfg.DecompCacheSize,
			AdaptiveBudget:  cfg.AdaptiveBudget,
			Seed:            cfg.Seed,
		},
		Shards: shards,
	})
}

// startHACluster boots the primary+follower pair under dir. On error
// everything already started is torn down.
func startHACluster(schema *subscription.Schema, cfg broker.Config, shards int, dir string) (*haCluster, error) {
	c := &haCluster{}
	ok := false
	defer func() {
		if !ok {
			c.Close()
		}
	}()

	var err error
	if c.primaryEng, err = newDaemonEngine(schema, cfg, shards); err != nil {
		return nil, err
	}
	if c.primaryStore, err = persist.Open(filepath.Join(dir, "primary"), schema, persist.Options{}); err != nil {
		return nil, err
	}
	if c.primary, err = sfcd.NewPersistentServer(c.primaryEng, c.primaryStore, sfcd.ServerConfig{}); err != nil {
		return nil, err
	}
	addr, err := c.primary.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	c.primaryAddr = addr.String()

	if c.followerEng, err = newDaemonEngine(schema, cfg, shards); err != nil {
		return nil, err
	}
	if c.followerStore, err = persist.Open(filepath.Join(dir, "follower"), schema, persist.Options{}); err != nil {
		return nil, err
	}
	if c.follower, err = sfcd.NewFollowerServer(c.followerEng, c.followerStore, sfcd.ServerConfig{}, c.primaryAddr); err != nil {
		return nil, err
	}
	if addr, err = c.follower.Listen("127.0.0.1:0"); err != nil {
		return nil, err
	}
	c.followerAddr = addr.String()
	ok = true
	return c, nil
}

// addrs is the failover list for the overlay's shared client: primary
// first, follower second.
func (c *haCluster) addrs() []string { return []string{c.primaryAddr, c.followerAddr} }

// failover simulates the primary's death and the operator's response:
// wait for the follower to drain the replication stream, kill the
// primary, promote the follower. Draining first is what makes the run
// comparable to a never-killed one — the stream is asynchronous, so
// records the primary committed but never shipped would otherwise die
// with it; a real deployment gates promotion on the same condition
// (sfcd_replication_lag == 0) before declaring the old primary gone.
func (c *haCluster) failover() error {
	if c.promoted {
		return fmt.Errorf("failover already ran")
	}
	target := c.primaryStore.Pos()
	deadline := time.Now().Add(15 * time.Second)
	for c.followerStore.Pos() < target {
		if time.Now().After(deadline) {
			return fmt.Errorf("follower stuck at stream position %d of %d", c.followerStore.Pos(), target)
		}
		time.Sleep(time.Millisecond)
	}
	if err := c.primary.Close(); err != nil {
		return err
	}
	if err := c.primaryStore.Close(); err != nil {
		return err
	}
	if err := c.follower.Promote(); err != nil {
		return err
	}
	c.promoted = true
	return nil
}

// awaitReconnect waits until the overlay's shared daemon client has
// installed a replacement connection (its Reconnects counter passes
// prev). The kill is observable to the client only as a connection
// failure; an op issued before its reader processes the EOF rides the
// corpse and fails typed — by design, since a written frame cannot be
// proven unsent. The simulation's sequential rounds have no reason to
// provoke that surface: a real overlay resumes traffic once its client
// reports the connection re-established, which is exactly this wait.
func awaitReconnect(n *broker.Network, prev uint64) error {
	deadline := time.Now().Add(15 * time.Second)
	for {
		if fs, ok := n.DaemonFailoverStats(); ok && fs.Reconnects > prev {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("overlay client did not reconnect after failover")
		}
		time.Sleep(time.Millisecond)
	}
}

// Close tears down whatever is still running (both daemons, or just the
// follower after a failover killed the primary).
func (c *haCluster) Close() {
	if !c.promoted {
		if c.primary != nil {
			c.primary.Close() //nolint:errcheck // teardown
		}
		if c.primaryStore != nil {
			c.primaryStore.Close() //nolint:errcheck // teardown
		}
	}
	if c.follower != nil {
		c.follower.Close() //nolint:errcheck // teardown
	}
	if c.followerStore != nil {
		c.followerStore.Close() //nolint:errcheck // teardown
	}
	if c.primaryEng != nil {
		c.primaryEng.Close()
	}
	if c.followerEng != nil {
		c.followerEng.Close()
	}
}
