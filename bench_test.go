// Benchmarks: one per experiment (E1..E11, regenerating the corresponding
// EXPERIMENTS.md artifact with quick parameters) plus micro-benchmarks of
// the primitive operations the paper's cost model counts — curve key
// encoding, ordered-array probes, cube enumeration, and covering queries.
package sfccover_test

import (
	"io"
	"math/rand"
	"testing"

	"sfccover/internal/bits"
	"sfccover/internal/core"
	"sfccover/internal/cubes"
	"sfccover/internal/dominance"
	"sfccover/internal/experiments"
	"sfccover/internal/geom"
	"sfccover/internal/sfc"
	"sfccover/internal/sfcarray"
	"sfccover/internal/subscription"
	"sfccover/internal/workload"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Run(io.Discard, true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1Figure2(b *testing.B)      { benchExperiment(b, "E1") }
func BenchmarkE2Figure1(b *testing.B)      { benchExperiment(b, "E2") }
func BenchmarkE3ApproxCost(b *testing.B)   { benchExperiment(b, "E3") }
func BenchmarkE4ExhaustiveLB(b *testing.B) { benchExperiment(b, "E4") }
func BenchmarkE5AspectRatio(b *testing.B)  { benchExperiment(b, "E5") }
func BenchmarkE6Dimensions(b *testing.B)   { benchExperiment(b, "E6") }
func BenchmarkE7Recall(b *testing.B)       { benchExperiment(b, "E7") }
func BenchmarkE8Broker(b *testing.B)       { benchExperiment(b, "E8") }
func BenchmarkE9Scaling(b *testing.B)      { benchExperiment(b, "E9") }
func BenchmarkE10Array(b *testing.B)       { benchExperiment(b, "E10") }
func BenchmarkE11Curves(b *testing.B)      { benchExperiment(b, "E11") }
func BenchmarkE12ProbeOrder(b *testing.B)  { benchExperiment(b, "E12") }
func BenchmarkE13Churn(b *testing.B)       { benchExperiment(b, "E13") }

// --- Micro-benchmarks -------------------------------------------------

func benchCurveKey(b *testing.B, name string) {
	b.Helper()
	c, err := sfc.New(name, sfc.Config{Dims: 4, Bits: 16})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	cell := []uint32{
		uint32(rng.Intn(1 << 16)), uint32(rng.Intn(1 << 16)),
		uint32(rng.Intn(1 << 16)), uint32(rng.Intn(1 << 16)),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Key(cell)
	}
}

func BenchmarkKeyEncodeZ(b *testing.B)       { benchCurveKey(b, "z") }
func BenchmarkKeyEncodeHilbert(b *testing.B) { benchCurveKey(b, "hilbert") }
func BenchmarkKeyEncodeGray(b *testing.B)    { benchCurveKey(b, "gray") }

func benchArrayInsert(b *testing.B, impl string) {
	b.Helper()
	arr, err := sfcarray.New(impl, 1)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arr.Insert(bits.KeyFromUint64(rng.Uint64()), uint64(i))
	}
}

func BenchmarkArrayInsertTreap(b *testing.B)    { benchArrayInsert(b, "treap") }
func BenchmarkArrayInsertSkipList(b *testing.B) { benchArrayInsert(b, "skiplist") }

func benchArrayProbe(b *testing.B, impl string) {
	b.Helper()
	arr, err := sfcarray.New(impl, 1)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100000; i++ {
		arr.Insert(bits.KeyFromUint64(rng.Uint64()), uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := rng.Uint64()
		arr.FirstInRange(bits.KeyFromUint64(lo), bits.KeyFromUint64(lo|0xFFFFFF))
	}
}

func BenchmarkArrayProbeTreap(b *testing.B)    { benchArrayProbe(b, "treap") }
func BenchmarkArrayProbeSkipList(b *testing.B) { benchArrayProbe(b, "skiplist") }

func BenchmarkDecomposeExtremal(b *testing.B) {
	e := geom.MustExtremal([]uint64{257, 257}, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cubes.Decompose(e.Rect(), 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEnumLevelVisit(b *testing.B) {
	e := geom.MustExtremal([]uint64{1023, 1023, 1023, 1023}, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		if err := cubes.EnumLevelVisit(e, 7, func([]uint32, uint64) bool {
			count++
			return true
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func benchDominanceQuery(b *testing.B, eps float64, miss bool) {
	b.Helper()
	const d, k = 4, 14
	idx := dominance.MustIndex(dominance.Config{Dims: d, Bits: k, MaxCubes: 50000})
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 50000; i++ {
		p := make([]uint32, d)
		for j := range p {
			p[j] = uint32(rng.Int63n(1 << k))
		}
		idx.Insert(p, uint64(i))
	}
	qs := make([][]uint32, 256)
	for i := range qs {
		q := make([]uint32, d)
		for j := range q {
			if miss {
				q[j] = uint32(uint64(1)<<k - 1 - uint64(rng.Intn(4)))
			} else {
				q[j] = uint32(rng.Int63n(1 << k))
			}
		}
		qs[i] = q
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := idx.Query(qs[i%len(qs)], eps); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkApproxQueryHit(b *testing.B)  { benchDominanceQuery(b, 0.3, false) }
func BenchmarkApproxQueryMiss(b *testing.B) { benchDominanceQuery(b, 0.3, true) }

func BenchmarkLinearQueryMiss(b *testing.B) {
	const d, k = 4, 14
	lin := dominance.NewLinear()
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 50000; i++ {
		p := make([]uint32, d)
		for j := range p {
			p[j] = uint32(rng.Int63n(1<<k - 16))
		}
		lin.Insert(p, uint64(i))
	}
	q := []uint32{1<<k - 1, 1<<k - 1, 1<<k - 1, 1<<k - 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lin.QueryDominating(q)
	}
}

func BenchmarkDetectorAdd(b *testing.B) {
	schema := subscription.MustSchema(10, "topic", "price")
	det := core.MustNew(core.Config{
		Schema: schema, Mode: core.ModeApprox, Epsilon: 0.3, MaxCubes: 10000,
	})
	subs, err := workload.Subscriptions(workload.SubSpec{
		Schema: schema, N: 4096, WidthFrac: 0.3, Seed: 6,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := det.Add(subs[i%len(subs)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSubscriptionMatch(b *testing.B) {
	schema := subscription.MustSchema(10, "stock", "volume", "current")
	sub := subscription.MustParse(schema, "stock == 3 && volume > 500 && current < 95")
	ev, err := subscription.ParseEvent(schema, "stock = 3, volume = 1000, current = 88")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !sub.Matches(ev) {
			b.Fatal("must match")
		}
	}
}

func BenchmarkEOTransform(b *testing.B) {
	schema := subscription.MustSchema(12, "a", "b", "c", "d")
	sub := subscription.MustParse(schema, "a in [10,2000] && b in [5,100] && c >= 7 && d <= 3000")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sub.Point()
	}
}
