// Benchmarks: one per experiment (E1..E11, regenerating the corresponding
// EXPERIMENTS.md artifact with quick parameters) plus micro-benchmarks of
// the primitive operations the paper's cost model counts — curve key
// encoding, ordered-array probes, cube enumeration, and covering queries.
package sfccover_test

import (
	"bufio"
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sfccover/internal/bits"
	"sfccover/internal/broker"
	"sfccover/internal/core"
	"sfccover/internal/cubes"
	"sfccover/internal/dominance"
	"sfccover/internal/engine"
	"sfccover/internal/experiments"
	"sfccover/internal/geom"
	"sfccover/internal/sfc"
	"sfccover/internal/sfcarray"
	"sfccover/internal/sfcd"
	"sfccover/internal/subscription"
	"sfccover/internal/workload"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Run(io.Discard, true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1Figure2(b *testing.B)      { benchExperiment(b, "E1") }
func BenchmarkE2Figure1(b *testing.B)      { benchExperiment(b, "E2") }
func BenchmarkE3ApproxCost(b *testing.B)   { benchExperiment(b, "E3") }
func BenchmarkE4ExhaustiveLB(b *testing.B) { benchExperiment(b, "E4") }
func BenchmarkE5AspectRatio(b *testing.B)  { benchExperiment(b, "E5") }
func BenchmarkE6Dimensions(b *testing.B)   { benchExperiment(b, "E6") }
func BenchmarkE7Recall(b *testing.B)       { benchExperiment(b, "E7") }
func BenchmarkE8Broker(b *testing.B)       { benchExperiment(b, "E8") }
func BenchmarkE9Scaling(b *testing.B)      { benchExperiment(b, "E9") }
func BenchmarkE10Array(b *testing.B)       { benchExperiment(b, "E10") }
func BenchmarkE11Curves(b *testing.B)      { benchExperiment(b, "E11") }
func BenchmarkE12ProbeOrder(b *testing.B)  { benchExperiment(b, "E12") }
func BenchmarkE13Churn(b *testing.B)       { benchExperiment(b, "E13") }

// --- Micro-benchmarks -------------------------------------------------

func benchCurveKey(b *testing.B, name string) {
	b.Helper()
	c, err := sfc.New(name, sfc.Config{Dims: 4, Bits: 16})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	cell := []uint32{
		uint32(rng.Intn(1 << 16)), uint32(rng.Intn(1 << 16)),
		uint32(rng.Intn(1 << 16)), uint32(rng.Intn(1 << 16)),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Key(cell)
	}
}

func BenchmarkKeyEncodeZ(b *testing.B)       { benchCurveKey(b, "z") }
func BenchmarkKeyEncodeHilbert(b *testing.B) { benchCurveKey(b, "hilbert") }
func BenchmarkKeyEncodeGray(b *testing.B)    { benchCurveKey(b, "gray") }

func benchArrayInsert(b *testing.B, impl string) {
	b.Helper()
	arr, err := sfcarray.New(impl, 1)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arr.Insert(bits.KeyFromUint64(rng.Uint64()), uint64(i))
	}
}

func BenchmarkArrayInsertTreap(b *testing.B)    { benchArrayInsert(b, "treap") }
func BenchmarkArrayInsertSkipList(b *testing.B) { benchArrayInsert(b, "skiplist") }

func benchArrayProbe(b *testing.B, impl string) {
	b.Helper()
	arr, err := sfcarray.New(impl, 1)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100000; i++ {
		arr.Insert(bits.KeyFromUint64(rng.Uint64()), uint64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := rng.Uint64()
		arr.FirstInRange(bits.KeyFromUint64(lo), bits.KeyFromUint64(lo|0xFFFFFF))
	}
}

func BenchmarkArrayProbeTreap(b *testing.B)    { benchArrayProbe(b, "treap") }
func BenchmarkArrayProbeSkipList(b *testing.B) { benchArrayProbe(b, "skiplist") }

func BenchmarkDecomposeExtremal(b *testing.B) {
	e := geom.MustExtremal([]uint64{257, 257}, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cubes.Decompose(e.Rect(), 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEnumLevelVisit(b *testing.B) {
	e := geom.MustExtremal([]uint64{1023, 1023, 1023, 1023}, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		if err := cubes.EnumLevelVisit(e, 7, func([]uint32, uint64) bool {
			count++
			return true
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func benchDominanceQuery(b *testing.B, eps float64, miss bool) {
	b.Helper()
	const d, k = 4, 14
	idx := dominance.MustIndex(dominance.Config{Dims: d, Bits: k, MaxCubes: 50000})
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 50000; i++ {
		p := make([]uint32, d)
		for j := range p {
			p[j] = uint32(rng.Int63n(1 << k))
		}
		idx.Insert(p, uint64(i))
	}
	qs := make([][]uint32, 256)
	for i := range qs {
		q := make([]uint32, d)
		for j := range q {
			if miss {
				q[j] = uint32(uint64(1)<<k - 1 - uint64(rng.Intn(4)))
			} else {
				q[j] = uint32(rng.Int63n(1 << k))
			}
		}
		qs[i] = q
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := idx.Query(qs[i%len(qs)], eps); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkApproxQueryHit(b *testing.B)  { benchDominanceQuery(b, 0.3, false) }
func BenchmarkApproxQueryMiss(b *testing.B) { benchDominanceQuery(b, 0.3, true) }

func BenchmarkLinearQueryMiss(b *testing.B) {
	const d, k = 4, 14
	lin := dominance.NewLinear()
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 50000; i++ {
		p := make([]uint32, d)
		for j := range p {
			p[j] = uint32(rng.Int63n(1<<k - 16))
		}
		lin.Insert(p, uint64(i))
	}
	q := []uint32{1<<k - 1, 1<<k - 1, 1<<k - 1, 1<<k - 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lin.QueryDominating(q)
	}
}

func BenchmarkDetectorAdd(b *testing.B) {
	schema := subscription.MustSchema(10, "topic", "price")
	det := core.MustNew(core.Config{
		Schema: schema, Mode: core.ModeApprox, Epsilon: 0.3, MaxCubes: 10000,
	})
	subs, err := workload.Subscriptions(workload.SubSpec{
		Schema: schema, N: 4096, WidthFrac: 0.3, Seed: 6,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := det.Add(subs[i%len(subs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Engine scaling benchmarks ----------------------------------------
//
// BenchmarkCoverQuery* measure covering-query throughput on a hit-heavy
// population (planted parent/child covers): the single-threaded Detector
// baseline versus the sharded engine's CoverQueryBatch at 1/4/16 shards,
// driven by at least 8 goroutines. ns/op is per covering query in every
// variant, so the numbers compare directly.

const (
	engineBenchPairs = 16384
	engineBenchBatch = 64
)

var engineBenchCfg = core.Config{
	Mode: core.ModeApprox, Epsilon: 0.3, MaxCubes: 10000,
}

// engineBenchWorkload plants parent/child covers: parents are stored, the
// children are the queries (mostly hits, the router's steady state).
func engineBenchWorkload(b testing.TB) (parents, queries []*subscription.Subscription) {
	b.Helper()
	schema := subscription.MustSchema(10, "volume", "price")
	pairs, err := workload.Covers(workload.CoverSpec{
		Schema: schema, N: engineBenchPairs, SlackFrac: 0.2, Seed: 42,
	})
	if err != nil {
		b.Fatal(err)
	}
	parents = make([]*subscription.Subscription, len(pairs))
	queries = make([]*subscription.Subscription, len(pairs))
	for i, p := range pairs {
		parents[i] = p.Parent
		queries[i] = p.Child
	}
	return parents, queries
}

func BenchmarkCoverQueryDetectorSingleThread(b *testing.B) {
	parents, queries := engineBenchWorkload(b)
	cfg := engineBenchCfg
	cfg.Schema = parents[0].Schema()
	det := core.MustNew(cfg)
	for _, p := range parents {
		if _, err := det.Insert(p); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := det.FindCover(queries[i%len(queries)]); err != nil {
			b.Fatal(err)
		}
	}
}

// steadyStateDetector builds the cache-warm single-threaded detector the
// zero-allocation guarantee is pinned on: a planted-cover population and
// a small fixed query set whose decompositions are already resident in
// the decomposition cache. Each query runs twice off the clock — the
// first touch only registers the shape with the cache's admission
// filter, the second builds and publishes the entry.
func steadyStateDetector(tb testing.TB, cacheSize int) (*core.Detector, []*subscription.Subscription) {
	tb.Helper()
	parents, children := engineBenchWorkload(tb)
	cfg := engineBenchCfg
	cfg.Schema = parents[0].Schema()
	cfg.DecompCacheSize = cacheSize
	// A budget under the per-entry cache bound keeps every decomposition
	// cacheable, so the steady state is the replay path — not the
	// negative-entry fallback — and stays cheap on this hit-heavy set.
	cfg.MaxCubes = 1000
	det := core.MustNew(cfg)
	for _, p := range parents {
		if _, err := det.Insert(p); err != nil {
			tb.Fatal(err)
		}
	}
	queries := children[:64]
	for pass := 0; pass < 2; pass++ {
		for _, q := range queries {
			if _, _, _, err := det.FindCover(q); err != nil {
				tb.Fatal(err)
			}
		}
	}
	return det, queries
}

// BenchmarkCoverQuery measures the steady-state covering-query hot path:
// a single-threaded Detector answering a recurring query set from the
// warm decomposition cache, so each query is a replay of cached cubes
// against the index — no decomposition, no run merging, and (asserted by
// TestSteadyStateQueryZeroAlloc) no allocation.
func BenchmarkCoverQuery(b *testing.B) {
	det, queries := steadyStateDetector(b, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := det.FindCover(queries[i%len(queries)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCoverQueryColdCache is the same workload with the
// decomposition cache disabled, so every query pays decomposition and
// run merging in full. The delta against BenchmarkCoverQuery is what the
// cache buys on a recurring-shape workload.
func BenchmarkCoverQueryColdCache(b *testing.B) {
	det, queries := steadyStateDetector(b, -1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := det.FindCover(queries[i%len(queries)]); err != nil {
			b.Fatal(err)
		}
	}
}

// TestSteadyStateQueryZeroAlloc is the allocation regression guard for
// the covering-query hot path: once the decomposition cache is warm, a
// single-threaded FindCover must not allocate at all. Any regression —
// a method-value binding, a per-query slice, a clock read growing an
// escape — shows up here as a hard failure in plain `go test`.
func TestSteadyStateQueryZeroAlloc(t *testing.T) {
	det, queries := steadyStateDetector(t, 0)
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		q := queries[i%len(queries)]
		i++
		if _, _, _, err := det.FindCover(q); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state FindCover allocates %.1f allocs/op, want 0", allocs)
	}
}

func benchEngineCoverQueryBatch(b *testing.B, shards int, telemetryOff bool) {
	parents, queries := engineBenchWorkload(b)
	cfg := engineBenchCfg
	cfg.Schema = parents[0].Schema()
	e := engine.MustNew(engine.Config{
		Detector:     cfg,
		Shards:       shards,
		Partition:    engine.PartitionPrefix,
		Workers:      max(8, runtime.GOMAXPROCS(0)),
		TelemetryOff: telemetryOff,
	})
	defer e.Close()
	for _, p := range parents {
		if _, err := e.Insert(p); err != nil {
			b.Fatal(err)
		}
	}
	// Guarantee >= 8 driving goroutines regardless of GOMAXPROCS.
	par := (8 + runtime.GOMAXPROCS(0) - 1) / runtime.GOMAXPROCS(0)
	b.SetParallelism(par)
	var cursor atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		batch := make([]*subscription.Subscription, 0, engineBenchBatch)
		flush := func() error {
			for _, r := range e.CoverQueryBatch(batch) {
				if r.Err != nil {
					return r.Err
				}
			}
			batch = batch[:0]
			return nil
		}
		for pb.Next() {
			i := int(cursor.Add(1)-1) % len(queries)
			batch = append(batch, queries[i])
			if len(batch) == engineBenchBatch {
				// b.Fatal must not run off the benchmark goroutine; report
				// and bail out of this worker instead.
				if err := flush(); err != nil {
					b.Error(err)
					return
				}
			}
		}
		if len(batch) > 0 {
			if err := flush(); err != nil {
				b.Error(err)
			}
		}
	})
}

func BenchmarkCoverQueryEngine1Shard(b *testing.B)   { benchEngineCoverQueryBatch(b, 1, false) }
func BenchmarkCoverQueryEngine4Shards(b *testing.B)  { benchEngineCoverQueryBatch(b, 4, false) }
func BenchmarkCoverQueryEngine16Shards(b *testing.B) { benchEngineCoverQueryBatch(b, 16, false) }

// --- Telemetry overhead -----------------------------------------------
//
// BenchmarkCoverQueryTelemetry{On,Off} rerun the hit-heavy 4-shard batch
// benchmark with histogram recording and trace sampling enabled (the
// default) versus disabled (EngineConfig.TelemetryOff), so benchstat puts
// a number on what always-on telemetry costs the hot path. EXPERIMENTS.md
// records the measured delta.

func BenchmarkCoverQueryTelemetryOn(b *testing.B)  { benchEngineCoverQueryBatch(b, 4, false) }
func BenchmarkCoverQueryTelemetryOff(b *testing.B) { benchEngineCoverQueryBatch(b, 4, true) }

// TestTelemetryOverheadSmoke pins always-on telemetry's cost on the hot
// covering-query path — CoverQueryBatch, the router's steady state — via
// a fixed-iteration min-of-3 comparison between a default engine and one
// built with TelemetryOff. Timing comparisons are inherently noisy on
// shared workers, so the test only runs when SFCCOVER_TELEMETRY_SMOKE=1
// (CI sets it) and the bound is deliberately loose: it exists to catch a
// recording path accidentally growing a lock, a per-query clock read or
// an allocation, not to measure the steady-state overhead
// (EXPERIMENTS.md records that).
func TestTelemetryOverheadSmoke(t *testing.T) {
	if os.Getenv("SFCCOVER_TELEMETRY_SMOKE") == "" {
		t.Skip("set SFCCOVER_TELEMETRY_SMOKE=1 to run the timing comparison")
	}
	parents, queries := engineBenchWorkload(t)
	cfg := engineBenchCfg
	cfg.Schema = parents[0].Schema()
	run := func(telemetryOff bool) time.Duration {
		e := engine.MustNew(engine.Config{
			Detector:     cfg,
			Shards:       4,
			Partition:    engine.PartitionPrefix,
			TelemetryOff: telemetryOff,
		})
		defer e.Close()
		for _, p := range parents {
			if _, err := e.Insert(p); err != nil {
				t.Fatal(err)
			}
		}
		const iters = 20000
		best := time.Duration(1<<63 - 1)
		for round := 0; round < 3; round++ {
			t0 := time.Now()
			for i := 0; i < iters; i += engineBenchBatch {
				n := min(engineBenchBatch, iters-i)
				batch := make([]*subscription.Subscription, n)
				for j := range batch {
					batch[j] = queries[(i+j)%len(queries)]
				}
				for _, r := range e.CoverQueryBatch(batch) {
					if r.Err != nil {
						t.Fatal(r.Err)
					}
				}
			}
			if d := time.Since(t0); d < best {
				best = d
			}
		}
		return best
	}
	on, off := run(false), run(true)
	ratio := float64(on) / float64(off)
	t.Logf("telemetry on %v, off %v (%.3fx)", on, off, ratio)
	if ratio > 1.5 {
		t.Errorf("telemetry overhead %.2fx exceeds the 1.5x smoke bound (on %v, off %v)", ratio, on, off)
	}
}

// BenchmarkEngineAddBatch measures the router arrival path (query +
// insert) through the batch API at the default shard count. The engine is
// swapped for a fresh one (off the clock) whenever it reaches the
// workload size, so ns/op reflects a bounded steady state instead of an
// index that grows with b.N.
func BenchmarkEngineAddBatch(b *testing.B) {
	parents, _ := engineBenchWorkload(b)
	cfg := engineBenchCfg
	cfg.Schema = parents[0].Schema()
	newEngine := func() *engine.Engine {
		return engine.MustNew(engine.Config{Detector: cfg, Partition: engine.PartitionPrefix})
	}
	e := newEngine()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += engineBenchBatch {
		n := min(engineBenchBatch, b.N-i)
		batch := make([]*subscription.Subscription, n)
		for j := range batch {
			batch[j] = parents[(i+j)%len(parents)]
		}
		for _, r := range e.AddBatch(batch) {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
		if e.Len() >= len(parents) {
			b.StopTimer()
			e.Close()
			e = newEngine()
			b.StartTimer()
		}
	}
	e.Close()
}

// BenchmarkEngineAddBatchCold measures the cold-start bulk-load path:
// one AddBatch carrying the whole population into a fresh engine, so the
// shard-grouped insert (one stripe+slice lock round trip per shard
// instead of one per item) dominates the profile. ns/op is per inserted
// subscription.
func benchEngineAddBatchCold(b *testing.B, part engine.Partition) {
	parents, _ := engineBenchWorkload(b)
	cfg := engineBenchCfg
	cfg.Schema = parents[0].Schema()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += len(parents) {
		b.StopTimer()
		e := engine.MustNew(engine.Config{Detector: cfg, Shards: 8, Partition: part})
		n := min(len(parents), b.N-i)
		b.StartTimer()
		for _, r := range e.AddBatch(parents[:n]) {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
		b.StopTimer()
		e.Close()
		b.StartTimer()
	}
}

func BenchmarkEngineAddBatchColdHash(b *testing.B) { benchEngineAddBatchCold(b, engine.PartitionHash) }
func BenchmarkEngineAddBatchColdPrefix(b *testing.B) {
	benchEngineAddBatchCold(b, engine.PartitionPrefix)
}

// --- Rebalancing benchmarks -------------------------------------------
//
// BenchmarkSkewed* measure the curve-prefix plan under the adversarial
// hotspot workload (~90% of the population in one tiny box, which the
// curve maps to one key slice — occupancy skew ~18000:1). Population and
// probe sets are split off the SAME generated batch, so probes genuinely
// target the hot region (a fresh workload seed would draw a different
// hotspot box). rebalance=on runs the online rebalancer to convergence
// off the clock; answers are bit-identical between the variants — only
// the slice layout differs, and it is reported as the "skew" metric.
//
// Two workload shapes bracket the trade-off the rebalancer makes:
// sustained churn (the router's subscription arrival/withdrawal path)
// gains from equalized slices — hot-key updates descend trees ~16x
// smaller and spread across 16 locks instead of funnelling through one —
// while miss-heavy approximate covering queries can regress
// single-threaded, because ~490 of their probes per query land in the
// sparse regions whose trees equalization deepens. EXPERIMENTS.md
// records both numbers.

// benchSkewedEngine builds the hotspot engine and optionally rebalances
// it to convergence, returning the held-out probe slice.
func benchSkewedEngine(b *testing.B, rebalance bool, maxCubes int) (*engine.Engine, []*subscription.Subscription) {
	b.Helper()
	schema := subscription.MustSchema(10, "volume", "price")
	subs, err := workload.Subscriptions(workload.SubSpec{
		Schema: schema, N: 22048, Dist: workload.DistHotspot,
		WidthFrac: 0.02, HotspotFrac: 0.9, HotspotWidthFrac: 0.04, Seed: 31,
	})
	if err != nil {
		b.Fatal(err)
	}
	pop, probes := subs[:20000], subs[20000:]
	e := engine.MustNew(engine.Config{
		Detector:  core.Config{Schema: schema, Mode: core.ModeApprox, Epsilon: 0.3, MaxCubes: maxCubes},
		Shards:    16,
		Partition: engine.PartitionPrefix,
	})
	for i, s := range pop {
		if _, err := e.Insert(s); err != nil {
			b.Fatalf("insert %d: %v", i, err)
		}
	}
	if rebalance {
		for {
			res, err := e.Rebalance()
			if err != nil {
				b.Fatal(err)
			}
			if res.Moves == 0 {
				break
			}
		}
	}
	runtime.GC() // don't bill the rebalance allocation debt to the measured loop
	return e, probes
}

func benchSkewedChurn(b *testing.B, rebalance bool) {
	e, fresh := benchSkewedEngine(b, rebalance, 2000)
	defer e.Close()
	var cursor atomic.Int64
	b.SetParallelism(8)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			s := fresh[int(cursor.Add(1)-1)%len(fresh)]
			id, err := e.Insert(s)
			if err != nil {
				b.Error(err)
				return
			}
			if err := e.Remove(id); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	b.ReportMetric(e.Stats().SkewRatio, "skew")
}

func BenchmarkSkewedChurnRebalanceOff(b *testing.B) { benchSkewedChurn(b, false) }
func BenchmarkSkewedChurnRebalanceOn(b *testing.B)  { benchSkewedChurn(b, true) }

func benchSkewedQuery(b *testing.B, rebalance bool) {
	e, queries := benchSkewedEngine(b, rebalance, 500)
	defer e.Close()
	var cursor atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		batch := make([]*subscription.Subscription, 0, engineBenchBatch)
		flush := func() error {
			for _, r := range e.CoverQueryBatch(batch) {
				if r.Err != nil {
					return r.Err
				}
			}
			batch = batch[:0]
			return nil
		}
		for pb.Next() {
			i := int(cursor.Add(1)-1) % len(queries)
			batch = append(batch, queries[i])
			if len(batch) == engineBenchBatch {
				if err := flush(); err != nil {
					b.Error(err)
					return
				}
			}
		}
		if len(batch) > 0 {
			if err := flush(); err != nil {
				b.Error(err)
			}
		}
	})
	b.StopTimer()
	b.ReportMetric(e.Stats().SkewRatio, "skew")
}

func BenchmarkSkewedQueryRebalanceOff(b *testing.B) { benchSkewedQuery(b, false) }
func BenchmarkSkewedQueryRebalanceOn(b *testing.B)  { benchSkewedQuery(b, true) }

// --- Broker churn benchmarks ------------------------------------------
//
// BenchmarkBrokerChurn* measure subscription-churn throughput through the
// overlay simulation — subscribe, propagate, then unsubscribe (exercising
// the covered-set resubscription path) — with the per-link detection
// backend as the variable: single detector versus the two engine
// backends. ns/op is per churn operation (one subscribe or unsubscribe,
// drained).
func benchBrokerChurn(b *testing.B, backend broker.Backend) {
	schema := subscription.MustSchema(10, "topic", "price")
	subs, err := workload.Subscriptions(workload.SubSpec{
		Schema: schema, N: 512, WidthFrac: 0.4, Seed: 9,
	})
	if err != nil {
		b.Fatal(err)
	}
	n := broker.MustNetwork(broker.BalancedTree(7), broker.Config{
		Schema: schema, Mode: core.ModeApprox, Epsilon: 0.3, MaxCubes: 5000,
		Backend: backend, Shards: 4, BatchSize: 32,
	})
	defer n.Close()
	clients := make([]*broker.Client, 8)
	for i := range clients {
		c, err := n.AttachClient(i % n.NumBrokers())
		if err != nil {
			b.Fatal(err)
		}
		clients[i] = c
	}
	// Live window: subscribe until 256 are live, then churn one out per
	// new arrival so the working set stays bounded as b.N grows.
	type live struct {
		client int
		sub    int
	}
	var window []live
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(window) >= 256 {
			w := window[0]
			window = window[1:]
			if err := n.Unsubscribe(clients[w.client].ID, subs[w.sub]); err != nil {
				b.Fatal(err)
			}
		} else {
			c, s := i%len(clients), i%len(subs)
			if err := n.Subscribe(clients[c].ID, subs[s]); err != nil {
				b.Fatal(err)
			}
			window = append(window, live{client: c, sub: s})
		}
		n.Drain()
	}
	b.StopTimer()
	if n.Metrics().ProtocolErrors != 0 {
		b.Fatalf("protocol errors: %d", n.Metrics().ProtocolErrors)
	}
}

func BenchmarkBrokerChurnDetector(b *testing.B)     { benchBrokerChurn(b, broker.BackendDetector) }
func BenchmarkBrokerChurnEngineHash(b *testing.B)   { benchBrokerChurn(b, broker.BackendEngineHash) }
func BenchmarkBrokerChurnEnginePrefix(b *testing.B) { benchBrokerChurn(b, broker.BackendEnginePrefix) }

// --- Daemon client benchmarks -----------------------------------------
//
// BenchmarkDaemonFindCover* quantify the pipelining redesign: 16
// goroutines issue covering queries over ONE TCP connection to a live
// daemon. The pipelined client interleaves them — ids demultiplex the
// responses, writes coalesce into shared flushes — while the lock-step
// comparator reproduces the previous client's discipline: a mutex admits
// one request/response round trip at a time, so callers convoy behind
// each other's network latency. ns/op is per covering query.

// lockstepClient is the pre-redesign wire discipline: one in-flight
// request per connection, serialized by a mutex.
type lockstepClient struct {
	mu     sync.Mutex
	conn   net.Conn
	sc     *bufio.Scanner
	w      *bufio.Writer
	nextID uint64
}

func dialLockstep(addr string) (*lockstepClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &lockstepClient{conn: conn, sc: bufio.NewScanner(conn), w: bufio.NewWriter(conn)}
	c.sc.Buffer(make([]byte, 64<<10), sfcd.MaxLineBytes)
	return c, nil
}

func (c *lockstepClient) query(s *subscription.Subscription) error {
	raw, err := s.MarshalBinary()
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextID++
	line, err := json.Marshal(&sfcd.Request{
		ID: c.nextID, Op: "query", Payload: base64.StdEncoding.EncodeToString(raw),
	})
	if err != nil {
		return err
	}
	if _, err := c.w.Write(append(line, '\n')); err != nil {
		return err
	}
	if err := c.w.Flush(); err != nil {
		return err
	}
	if !c.sc.Scan() {
		return fmt.Errorf("connection closed (%v)", c.sc.Err())
	}
	var resp sfcd.Response
	if err := json.Unmarshal(c.sc.Bytes(), &resp); err != nil {
		return err
	}
	if !resp.OK {
		return fmt.Errorf("server: %s", resp.Error)
	}
	return nil
}

// startBenchDaemon boots a daemon preloaded with a planted-cover
// population and returns its address. The population is smaller than the
// engine benchmarks' — the quantity under test is protocol overhead per
// query, not index scaling, and preloading happens per benchmark run.
func startBenchDaemon(b *testing.B) (addr string, queries []*subscription.Subscription) {
	b.Helper()
	schema := subscription.MustSchema(10, "volume", "price")
	pairs, err := workload.Covers(workload.CoverSpec{
		Schema: schema, N: 2048, SlackFrac: 0.35, Seed: 42,
	})
	if err != nil {
		b.Fatal(err)
	}
	parents := make([]*subscription.Subscription, len(pairs))
	queries = make([]*subscription.Subscription, len(pairs))
	for i, p := range pairs {
		parents[i] = p.Parent
		queries[i] = p.Child
	}
	// Generous covers and a tight probe budget keep each query cheap (the
	// router's hit-heavy steady state), so the comparison isolates what
	// the two wire disciplines cost rather than the index search.
	cfg := core.Config{Schema: schema, Mode: core.ModeApprox, Epsilon: 0.3, MaxCubes: 1000}
	eng := engine.MustNew(engine.Config{
		Detector:  cfg,
		Shards:    4,
		Partition: engine.PartitionPrefix,
		Workers:   max(8, runtime.GOMAXPROCS(0)),
	})
	srv := sfcd.NewServer(eng)
	bound, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		srv.Close()
		eng.Close()
	})
	for lo := 0; lo < len(parents); lo += 1024 {
		hi := min(lo+1024, len(parents))
		for _, r := range eng.AddBatch(parents[lo:hi]) {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	}
	return bound.String(), queries
}

// daemonBenchGoroutines is the concurrency of the client benchmarks.
const daemonBenchGoroutines = 16

func BenchmarkDaemonFindCoverLockstep16(b *testing.B) {
	addr, queries := startBenchDaemon(b)
	c, err := dialLockstep(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer c.conn.Close()
	var cursor atomic.Int64
	par := (daemonBenchGoroutines + runtime.GOMAXPROCS(0) - 1) / runtime.GOMAXPROCS(0)
	b.SetParallelism(par)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			q := queries[int(cursor.Add(1)-1)%len(queries)]
			if err := c.query(q); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

func BenchmarkDaemonFindCoverPipelined16(b *testing.B) {
	addr, queries := startBenchDaemon(b)
	schema := queries[0].Schema()
	c, err := sfcd.Dial(addr, schema)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	var cursor atomic.Int64
	par := (daemonBenchGoroutines + runtime.GOMAXPROCS(0) - 1) / runtime.GOMAXPROCS(0)
	b.SetParallelism(par)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			q := queries[int(cursor.Add(1)-1)%len(queries)]
			if _, _, err := c.Query(ctx, q); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

func BenchmarkSubscriptionMatch(b *testing.B) {
	schema := subscription.MustSchema(10, "stock", "volume", "current")
	sub := subscription.MustParse(schema, "stock == 3 && volume > 500 && current < 95")
	ev, err := subscription.ParseEvent(schema, "stock = 3, volume = 1000, current = 88")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !sub.Matches(ev) {
			b.Fatal("must match")
		}
	}
}

func BenchmarkEOTransform(b *testing.B) {
	schema := subscription.MustSchema(12, "a", "b", "c", "d")
	sub := subscription.MustParse(schema, "a in [10,2000] && b in [5,100] && c >= 7 && d <= 3000")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sub.Point()
	}
}
