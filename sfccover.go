// Package sfccover is a Go implementation of approximate covering detection
// among content-based subscriptions using space filling curves, after
// Shen & Tirthapura (ICDCS 2007 / JPDC 2012).
//
// In a content-based publish/subscribe system, a subscription s1 covers s2
// when every event matching s2 also matches s1; routers that detect covers
// can suppress the propagation of covered subscriptions and shrink their
// routing tables. Exact covering detection is a high-dimensional point
// dominance problem with no worst-case-efficient solution, so this library
// implements the paper's ε-approximate detection: a space-filling-curve
// index searches at least a (1−ε) fraction of the covering region's volume
// at a cost that is independent of the region's size (Theorem 3.1) instead
// of growing with its (d−1)-th power (Theorem 4.1). Missed covers cost a
// little redundant traffic; claimed covers are always genuine, so routing
// stays correct.
//
// The three entry points:
//
//   - Detector: covering detection over a dynamic subscription set
//     (off / exact / ε-approximate; SFC, linear-scan or k-d tree backends).
//   - Network: a deterministic simulation of a broker overlay that uses
//     covering detection during subscription propagation.
//   - Schema / Subscription / Event: the multi-attribute data model, with
//     a constraint parser and a float quantizer.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// reproduction of the paper's analytical results.
package sfccover

import (
	"sfccover/internal/broker"
	"sfccover/internal/core"
	"sfccover/internal/dominance"
	"sfccover/internal/subscription"
)

// Schema declares the numeric attributes of a pub/sub domain; every
// attribute shares a k-bit discrete value domain.
type Schema = subscription.Schema

// Subscription is a conjunction of per-attribute range constraints.
type Subscription = subscription.Subscription

// Event is a message: one value per schema attribute.
type Event = subscription.Event

// Range is an inclusive interval of attribute values.
type Range = subscription.Range

// Quantizer maps a continuous attribute domain onto the discrete grid.
type Quantizer = subscription.Quantizer

// Detector detects covering relationships among subscriptions.
type Detector = core.Detector

// DetectorConfig parameterizes a Detector.
type DetectorConfig = core.Config

// Mode selects the covering-detection mode.
type Mode = core.Mode

// Detection modes.
const (
	// ModeOff disables detection (flooding baseline).
	ModeOff = core.ModeOff
	// ModeExact searches exhaustively.
	ModeExact = core.ModeExact
	// ModeApprox runs the paper's ε-approximate search.
	ModeApprox = core.ModeApprox
)

// Strategy selects the search backend.
type Strategy = core.Strategy

// Search strategies.
const (
	// StrategySFC is the paper's space-filling-curve index.
	StrategySFC = core.StrategySFC
	// StrategyLinear scans all subscriptions.
	StrategyLinear = core.StrategyLinear
	// StrategyKDTree prunes with a k-d tree.
	StrategyKDTree = core.StrategyKDTree
)

// QueryStats describes the work one covering query performed, in the cost
// units of the paper's analysis (runs probed, cubes generated, volume
// fraction searched).
type QueryStats = dominance.Stats

// DetectorTotals aggregates query counters over a detector's lifetime.
type DetectorTotals = core.Totals

// Network simulates a broker overlay with covering-based subscription
// propagation.
type Network = broker.Network

// ConcurrentNetwork runs the same broker state machines as Network with
// one goroutine per broker, channel links and quiescence detection; safe
// for concurrent Subscribe/Publish after Start.
type ConcurrentNetwork = broker.Concurrent

// NetworkConfig parameterizes a Network's brokers.
type NetworkConfig = broker.Config

// NetworkMetrics aggregates network-wide counters.
type NetworkMetrics = broker.Metrics

// Topology describes the broker overlay tree.
type Topology = broker.Topology

// Client is an endpoint attached to one broker.
type Client = broker.Client

// NewSchema builds a schema with the given per-attribute resolution in
// bits and attribute names.
func NewSchema(bits int, attrs ...string) (*Schema, error) {
	return subscription.NewSchema(bits, attrs...)
}

// MustSchema is NewSchema for known-good literals.
func MustSchema(bits int, attrs ...string) *Schema {
	return subscription.MustSchema(bits, attrs...)
}

// NewSubscription returns a subscription with every attribute
// unconstrained; narrow it with SetRange/SetEq/SetMin/SetMax.
func NewSubscription(schema *Schema) *Subscription { return subscription.New(schema) }

// ParseSubscription builds a subscription from constraint syntax, e.g.
// "stock == 3 && volume > 500 && price in [10,95]".
func ParseSubscription(schema *Schema, expr string) (*Subscription, error) {
	return subscription.Parse(schema, expr)
}

// MustParseSubscription is ParseSubscription for known-good literals.
func MustParseSubscription(schema *Schema, expr string) *Subscription {
	return subscription.MustParse(schema, expr)
}

// NewEvent builds an event from attribute name/value pairs.
func NewEvent(schema *Schema, values map[string]uint32) (Event, error) {
	return subscription.NewEvent(schema, values)
}

// ParseEvent builds an event from "attr = value, attr = value" syntax.
func ParseEvent(schema *Schema, expr string) (Event, error) {
	return subscription.ParseEvent(schema, expr)
}

// NewQuantizer maps the continuous domain [min, max] onto a bits-wide grid.
func NewQuantizer(min, max float64, bits int) (*Quantizer, error) {
	return subscription.NewQuantizer(min, max, bits)
}

// MergeSubscriptions returns a subscription matching exactly N(a) ∪ N(b)
// when that union is a rectangle ("perfect merging"); ok is false
// otherwise. Merging complements covering: two mergeable subscriptions can
// be replaced by their exact union in a routing table with no
// approximation error.
func MergeSubscriptions(a, b *Subscription) (merged *Subscription, ok bool) {
	return subscription.Merge(a, b)
}

// UnmarshalSubscription decodes the wire format produced by
// (*Subscription).MarshalBinary, validating it against the schema.
func UnmarshalSubscription(schema *Schema, data []byte) (*Subscription, error) {
	return subscription.UnmarshalSubscription(schema, data)
}

// UnmarshalEvent decodes the wire format produced by Event.MarshalBinary,
// validating it against the schema.
func UnmarshalEvent(schema *Schema, data []byte) (Event, error) {
	return subscription.UnmarshalEvent(schema, data)
}

// NewDetector builds a covering detector.
func NewDetector(cfg DetectorConfig) (*Detector, error) { return core.New(cfg) }

// NewNetwork builds a broker overlay simulation.
func NewNetwork(topo Topology, cfg NetworkConfig) (*Network, error) {
	return broker.NewNetwork(topo, cfg)
}

// NewConcurrentNetwork builds a concurrent broker overlay: attach clients,
// Start, then drive it from any number of goroutines; Flush waits for
// quiescence and Close shuts it down.
func NewConcurrentNetwork(topo Topology, cfg NetworkConfig) (*ConcurrentNetwork, error) {
	return broker.NewConcurrent(topo, cfg)
}

// LineTopology returns a path of n brokers.
func LineTopology(n int) Topology { return broker.Line(n) }

// StarTopology returns a hub-and-spoke overlay of n brokers.
func StarTopology(n int) Topology { return broker.Star(n) }

// BalancedTreeTopology returns a complete binary tree of n brokers.
func BalancedTreeTopology(n int) Topology { return broker.BalancedTree(n) }

// RandomTreeTopology returns a seeded uniformly random recursive tree.
func RandomTreeTopology(n int, seed int64) Topology { return broker.RandomTree(n, seed) }
