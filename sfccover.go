// Package sfccover is a Go implementation of approximate covering detection
// among content-based subscriptions using space filling curves, after
// Shen & Tirthapura (ICDCS 2007 / JPDC 2012).
//
// In a content-based publish/subscribe system, a subscription s1 covers s2
// when every event matching s2 also matches s1; routers that detect covers
// can suppress the propagation of covered subscriptions and shrink their
// routing tables. Exact covering detection is a high-dimensional point
// dominance problem with no worst-case-efficient solution, so this library
// implements the paper's ε-approximate detection: a space-filling-curve
// index searches at least a (1−ε) fraction of the covering region's volume
// at a cost that is independent of the region's size (Theorem 3.1) instead
// of growing with its (d−1)-th power (Theorem 4.1). Missed covers cost a
// little redundant traffic; claimed covers are always genuine, so routing
// stays correct.
//
// The entry points:
//
//   - Provider: the covering-detection interface implemented by Detector
//     and Engine alike — one protocol, many backing indexes.
//   - Detector: covering detection over a dynamic subscription set
//     (off / exact / ε-approximate; SFC, linear-scan or k-d tree backends).
//   - Engine: a sharded, concurrent detection engine that partitions the
//     subscription set across N detectors (hash or curve-prefix
//     partitioning) and serves batched operations from a worker pool.
//   - DaemonServer / DaemonClient / DaemonProvider: the sfcd network
//     protocol (newline-delimited JSON over TCP, binary wire payloads)
//     that turns an Engine into a standalone service. The client is
//     pipelined and context-aware — concurrent callers share one
//     connection without head-of-line blocking — and DaemonProvider
//     serves the whole Provider interface over it, with isolated link
//     namespaces so one daemon can back many routers.
//   - Network: a deterministic simulation of a broker overlay that uses
//     covering detection during subscription propagation — per-link
//     providers selected by NetworkConfig.Backend (in-process detectors
//     and engines, or namespaces on a shared daemon), with the paper's
//     covered-set resubscription protocol at unsubscription time.
//   - Schema / Subscription / Event: the multi-attribute data model, with
//     a constraint parser and a float quantizer.
//   - PersistStore / DurableProvider: durable subscription state — a
//     write-ahead log riding the binary wire encoding plus point-in-time
//     snapshots with compaction. Any Provider becomes durable by
//     wrapping; the daemon recovers engine and link namespaces at boot
//     (cmd/sfcd -data-dir), and broker overlays persist their link state
//     through NetworkConfig.DataDir.
//   - Observer / QueryTrace / LatencySnapshot: the observability layer —
//     lock-free latency histograms at every tier (engine operations,
//     shard searches, daemon ops, client round-trips, broker delivery),
//     per-query traces with stage timings feeding a slow-query log, and
//     Prometheus text exposition from the daemon's -metrics-addr.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// reproduction of the paper's analytical results.
package sfccover

import (
	"context"

	"sfccover/internal/broker"
	"sfccover/internal/core"
	"sfccover/internal/dominance"
	"sfccover/internal/engine"
	"sfccover/internal/obs"
	"sfccover/internal/persist"
	"sfccover/internal/sfcd"
	"sfccover/internal/subscription"
)

// Schema declares the numeric attributes of a pub/sub domain; every
// attribute shares a k-bit discrete value domain.
type Schema = subscription.Schema

// Subscription is a conjunction of per-attribute range constraints.
type Subscription = subscription.Subscription

// Event is a message: one value per schema attribute.
type Event = subscription.Event

// Range is an inclusive interval of attribute values.
type Range = subscription.Range

// Quantizer maps a continuous attribute domain onto the discrete grid.
type Quantizer = subscription.Quantizer

// Provider is the covering-detection abstraction implemented by both
// Detector and Engine: Add/Insert/Remove, the forward (FindCover) and
// reverse (FindCovered) covering queries, and a uniform Stats snapshot.
// Brokers and services program against it so the backing index is a
// configuration knob.
type Provider = core.Provider

// ProviderStats is the uniform counter-and-occupancy snapshot every
// Provider serves, including the max/min shard-occupancy skew ratio.
type ProviderStats = core.ProviderStats

// CoverQueries runs FindCover for a batch of subscriptions against any
// Provider, using its batch capability when present (the Engine's worker
// pool) and falling back to per-item queries otherwise.
func CoverQueries(p Provider, subs []*Subscription) []EngineQueryResult {
	return core.CoverQueries(p, subs)
}

// Detector detects covering relationships among subscriptions.
type Detector = core.Detector

// DetectorConfig parameterizes a Detector.
type DetectorConfig = core.Config

// Mode selects the covering-detection mode.
type Mode = core.Mode

// Detection modes.
const (
	// ModeOff disables detection (flooding baseline).
	ModeOff = core.ModeOff
	// ModeExact searches exhaustively.
	ModeExact = core.ModeExact
	// ModeApprox runs the paper's ε-approximate search.
	ModeApprox = core.ModeApprox
)

// Strategy selects the search backend.
type Strategy = core.Strategy

// Search strategies.
const (
	// StrategySFC is the paper's space-filling-curve index.
	StrategySFC = core.StrategySFC
	// StrategyLinear scans all subscriptions.
	StrategyLinear = core.StrategyLinear
	// StrategyKDTree prunes with a k-d tree.
	StrategyKDTree = core.StrategyKDTree
)

// QueryStats describes the work one covering query performed, in the cost
// units of the paper's analysis (runs probed, cubes generated, volume
// fraction searched).
type QueryStats = dominance.Stats

// DetectorTotals aggregates query counters over a detector's lifetime.
type DetectorTotals = core.Totals

// Engine is a sharded, concurrent covering-detection engine: N
// independently locked Detector shards behind batched Add/Remove/Query
// operations served by a worker pool. A reported cover is always genuine,
// exactly as for a single Detector.
type Engine = engine.Engine

// EngineConfig parameterizes an Engine: the per-shard detector template
// plus shard count, partition strategy and worker pool size.
type EngineConfig = engine.Config

// EnginePartition selects how subscriptions are assigned to shards.
type EnginePartition = engine.Partition

// Engine partition strategies.
const (
	// PartitionHash spreads subscriptions uniformly by hashing their
	// transformed points.
	PartitionHash = engine.PartitionHash
	// PartitionPrefix splits the space-filling curve's key space by its
	// most significant bits, keeping curve-adjacent subscriptions — the
	// likely covers — in the same shard.
	PartitionPrefix = engine.PartitionPrefix
)

// EngineTotals aggregates engine-level counters (logical queries, hits,
// probe costs and shard fan-out).
type EngineTotals = engine.Totals

// EngineAddResult is one AddBatch outcome.
type EngineAddResult = engine.AddResult

// EngineQueryResult is one CoverQueryBatch outcome.
type EngineQueryResult = engine.QueryResult

// DaemonServer serves the sfcd line protocol (newline-delimited JSON over
// TCP, subscriptions and events in the binary wire format) on top of an
// Engine. Besides the shared engine it multiplexes isolated per-link
// subscription namespaces, so one daemon can back every link of a broker
// overlay.
type DaemonServer = sfcd.Server

// DaemonServerConfig carries the daemon's hardening knobs: a connection
// limit and a per-request read timeout.
type DaemonServerConfig = sfcd.ServerConfig

// DaemonClient is a pipelined sfcd protocol client: any number of
// goroutines share one TCP connection, every operation takes a
// context.Context, and responses are demultiplexed by request id.
type DaemonClient = sfcd.Client

// DaemonDialConfig parameterizes DialDaemonContext (address, schema,
// dial and per-request timeouts).
type DaemonDialConfig = sfcd.DialConfig

// DaemonProvider is a Provider over one link namespace of a dialed
// daemon — the full covering-detection interface served remotely, so
// anything that speaks Provider can run against a shared daemon.
type DaemonProvider = sfcd.RemoteProvider

// DaemonResult is one per-item outcome in a daemon batch response.
type DaemonResult = sfcd.Result

// DaemonStats is the counter snapshot served by the daemon's stats op.
type DaemonStats = sfcd.Stats

// DaemonServerError is an error frame a daemon answered a request with.
type DaemonServerError = sfcd.ServerError

// Typed errors of the daemon client surface, for errors.Is branching.
var (
	// ErrDaemonSchemaMismatch: the daemon's schema differs from the
	// client's (returned by DialDaemon).
	ErrDaemonSchemaMismatch = sfcd.ErrSchemaMismatch
	// ErrDaemonConnectionLost: the connection failed; dial a fresh client.
	ErrDaemonConnectionLost = sfcd.ErrConnectionLost
	// ErrDaemonClientClosed: the operation ran after Close.
	ErrDaemonClientClosed = sfcd.ErrClientClosed
	// ErrDaemonNotPrimary: a failover client's dial found a daemon still
	// serving as a read-only follower (state ops on a directly dialed
	// follower fail per op with a typed not_primary error frame instead).
	ErrDaemonNotPrimary = sfcd.ErrNotPrimary
)

// Observer is the telemetry hub an Engine records into: an op-latency
// histogram registry plus sampled per-query traces feeding a bounded
// slow-query log. Hand one to EngineConfig.Obs (the engine builds its own
// when the field is nil) and read it back with (*Engine).Observer.
// Every method is nil-safe, so telemetry-off paths cost one branch.
type Observer = obs.Observer

// ObserverConfig parameterizes an Observer: slow-query threshold, slow
// log capacity, trace sampling interval and histogram registry cap.
type ObserverConfig = obs.Config

// Observability defaults.
const (
	// DefaultSlowThreshold: queries slower than this enter the slow log.
	DefaultSlowThreshold = obs.DefaultSlowThreshold
	// DefaultTraceSample: one query in this many carries a trace.
	DefaultTraceSample = obs.DefaultTraceSample
	// DefaultSlowLogSize: slow-log ring capacity.
	DefaultSlowLogSize = obs.DefaultSlowLogSize
)

// NewObserver builds a telemetry hub; zero-valued config fields take the
// defaults above.
func NewObserver(cfg ObserverConfig) *Observer { return obs.New(cfg) }

// QueryTrace is one traced covering query: wall-clock stage timings
// through the cost pipeline, the shard slices searched, and the paper's
// cost counters for the winning probe.
type QueryTrace = obs.QueryTrace

// QueryTraceStage is one named, timed stage of a QueryTrace.
type QueryTraceStage = obs.Stage

// QueryTraceCost is the cost-model summary a QueryTrace carries.
type QueryTraceCost = obs.QueryCost

// LatencySnapshot is a point-in-time copy of one latency histogram:
// log₂-bucketed counts with Mean, Quantile and interval arithmetic (Sub).
type LatencySnapshot = obs.Snapshot

// DaemonTrace is the wire form of a QueryTrace, served by the daemon's
// trace and slowlog ops and by (*DaemonClient).TraceQuery / SlowLog.
type DaemonTrace = sfcd.Trace

// DaemonTraceStage is one named, timed stage of a DaemonTrace.
type DaemonTraceStage = sfcd.TraceStage

// DaemonTraceCost is the cost-model summary a DaemonTrace carries.
type DaemonTraceCost = sfcd.TraceCost

// Persister is the optional durability capability of a Provider: backends
// whose subscription set survives a restart (a DurableProvider, a daemon
// running with -data-dir) expose Snapshot, which compacts the write-ahead
// log behind a point-in-time snapshot.
type Persister = core.Persister

// PersistStore is the durable home of subscription state under one data
// dir: a write-ahead log of add/remove records (binary wire payloads,
// length-prefixed + CRC32, segment-rotated) plus point-in-time snapshots
// with log compaction. One store backs any number of link namespaces.
type PersistStore = persist.Store

// PersistOptions parameterizes a PersistStore (segment rotation size,
// per-append fsync).
type PersistOptions = persist.Options

// DurableProvider wraps any Provider with write-ahead logging and
// recovery for one link namespace of a PersistStore. Its ids are durable:
// a recovered provider answers with the same sids the pre-crash one
// assigned.
type DurableProvider = persist.DurableProvider

// Typed errors of the persistence layer, for errors.Is branching.
var (
	// ErrPersistCorrupt: durable state damaged in a way a crash cannot
	// explain; recovery refuses to guess.
	ErrPersistCorrupt = persist.ErrCorrupt
	// ErrPersistSchemaMismatch: the data dir was written under a
	// different schema.
	ErrPersistSchemaMismatch = persist.ErrSchemaMismatch
	// ErrSnapshotUnsupported: Snapshot on a provider with no durable
	// store behind it.
	ErrSnapshotUnsupported = core.ErrSnapshotUnsupported
	// ErrProviderClosed: a batch operation issued after Close.
	ErrProviderClosed = core.ErrProviderClosed
)

// OpenPersistStore recovers (or creates) the durable state under dir.
// Wrap providers with (*PersistStore).Durable to make them log to it.
func OpenPersistStore(dir string, schema *Schema, opts PersistOptions) (*PersistStore, error) {
	return persist.Open(dir, schema, opts)
}

// Network simulates a broker overlay with covering-based subscription
// propagation.
type Network = broker.Network

// ConcurrentNetwork runs the same broker state machines as Network with
// one goroutine per broker, channel links and quiescence detection; safe
// for concurrent Subscribe/Publish after Start.
type ConcurrentNetwork = broker.Concurrent

// NetworkConfig parameterizes a Network's brokers, including the per-link
// provider backend (NetworkBackend*) and its engine knobs.
type NetworkConfig = broker.Config

// NetworkBackend selects the per-link covering provider brokers run.
type NetworkBackend = broker.Backend

// Broker provider backends.
const (
	// NetworkBackendDetector backs each link with a single Detector.
	NetworkBackendDetector = broker.BackendDetector
	// NetworkBackendEngineHash backs each link with a hash-sharded engine.
	NetworkBackendEngineHash = broker.BackendEngineHash
	// NetworkBackendEnginePrefix backs each link with a curve-prefix
	// sharded engine.
	NetworkBackendEnginePrefix = broker.BackendEnginePrefix
	// NetworkBackendRemote backs every link with an isolated namespace on
	// one shared sfcd daemon (NetworkConfig.DaemonAddr), multiplexed over
	// a single pipelined connection.
	NetworkBackendRemote = broker.BackendRemote
)

// NetworkMetrics aggregates network-wide counters.
type NetworkMetrics = broker.Metrics

// Topology describes the broker overlay tree.
type Topology = broker.Topology

// Client is an endpoint attached to one broker.
type Client = broker.Client

// NewSchema builds a schema with the given per-attribute resolution in
// bits and attribute names.
func NewSchema(bits int, attrs ...string) (*Schema, error) {
	return subscription.NewSchema(bits, attrs...)
}

// MustSchema is NewSchema for known-good literals.
func MustSchema(bits int, attrs ...string) *Schema {
	return subscription.MustSchema(bits, attrs...)
}

// NewSubscription returns a subscription with every attribute
// unconstrained; narrow it with SetRange/SetEq/SetMin/SetMax.
func NewSubscription(schema *Schema) *Subscription { return subscription.New(schema) }

// ParseSubscription builds a subscription from constraint syntax, e.g.
// "stock == 3 && volume > 500 && price in [10,95]".
func ParseSubscription(schema *Schema, expr string) (*Subscription, error) {
	return subscription.Parse(schema, expr)
}

// MustParseSubscription is ParseSubscription for known-good literals.
func MustParseSubscription(schema *Schema, expr string) *Subscription {
	return subscription.MustParse(schema, expr)
}

// NewEvent builds an event from attribute name/value pairs.
func NewEvent(schema *Schema, values map[string]uint32) (Event, error) {
	return subscription.NewEvent(schema, values)
}

// ParseEvent builds an event from "attr = value, attr = value" syntax.
func ParseEvent(schema *Schema, expr string) (Event, error) {
	return subscription.ParseEvent(schema, expr)
}

// NewQuantizer maps the continuous domain [min, max] onto a bits-wide grid.
func NewQuantizer(min, max float64, bits int) (*Quantizer, error) {
	return subscription.NewQuantizer(min, max, bits)
}

// MergeSubscriptions returns a subscription matching exactly N(a) ∪ N(b)
// when that union is a rectangle ("perfect merging"); ok is false
// otherwise. Merging complements covering: two mergeable subscriptions can
// be replaced by their exact union in a routing table with no
// approximation error.
func MergeSubscriptions(a, b *Subscription) (merged *Subscription, ok bool) {
	return subscription.Merge(a, b)
}

// UnmarshalSubscription decodes the wire format produced by
// (*Subscription).MarshalBinary, validating it against the schema.
func UnmarshalSubscription(schema *Schema, data []byte) (*Subscription, error) {
	return subscription.UnmarshalSubscription(schema, data)
}

// UnmarshalEvent decodes the wire format produced by Event.MarshalBinary,
// validating it against the schema.
func UnmarshalEvent(schema *Schema, data []byte) (Event, error) {
	return subscription.UnmarshalEvent(schema, data)
}

// NewDetector builds a covering detector.
func NewDetector(cfg DetectorConfig) (*Detector, error) { return core.New(cfg) }

// NewEngine builds a sharded concurrent detection engine. Call Close when
// done to stop its worker pool.
func NewEngine(cfg EngineConfig) (*Engine, error) { return engine.New(cfg) }

// NewDaemonServer wraps an engine in an sfcd protocol server; start it
// with Listen (background) or Serve (blocking) and stop it with Close.
// The server does not own the engine.
func NewDaemonServer(e *Engine) *DaemonServer { return sfcd.NewServer(e) }

// NewDaemonServerWith is NewDaemonServer with hardening knobs (connection
// limit, per-request read timeout).
func NewDaemonServerWith(e *Engine, cfg DaemonServerConfig) *DaemonServer {
	return sfcd.NewServerWith(e, cfg)
}

// NewPersistentDaemonServer wraps an engine in a protocol server whose
// subscription state — the shared engine and every link namespace — is
// durable under the store: recovery runs at construction, adds and
// removes are write-ahead logged from then on. The engine must be
// freshly built and the store freshly opened; the caller closes both
// after the server.
func NewPersistentDaemonServer(e *Engine, store *PersistStore, cfg DaemonServerConfig) (*DaemonServer, error) {
	return sfcd.NewPersistentServer(e, store, cfg)
}

// NewFollowerDaemonServer boots a read-only replica: it tails the
// primary's WAL stream into its own store and serves only
// ping/hello/promote (plus daemon-level metrics) until promoted —
// (*DaemonServer).Promote in-process, the promote wire op, or SIGUSR1
// under cmd/sfcd — at which point it recovers the engine from the
// replicated store and serves writes. Pair it with a failover client
// (DaemonDialConfig.Addrs, or NetworkConfig.DaemonAddrs for a broker
// overlay) for a kill-the-primary story with zero lost subscriptions.
func NewFollowerDaemonServer(e *Engine, store *PersistStore, cfg DaemonServerConfig, primaryAddr string) (*DaemonServer, error) {
	return sfcd.NewFollowerServer(e, store, cfg, primaryAddr)
}

// DialDaemon connects to an sfcd server with default configuration,
// verifying that the server's schema matches the given one (mismatches
// fail with ErrDaemonSchemaMismatch).
func DialDaemon(addr string, schema *Schema) (*DaemonClient, error) {
	return sfcd.Dial(addr, schema)
}

// DialDaemonContext connects to an sfcd server per cfg; the context
// bounds dialing and the schema handshake.
func DialDaemonContext(ctx context.Context, cfg DaemonDialConfig) (*DaemonClient, error) {
	return sfcd.DialContext(ctx, cfg)
}

// NewNetwork builds a broker overlay simulation.
func NewNetwork(topo Topology, cfg NetworkConfig) (*Network, error) {
	return broker.NewNetwork(topo, cfg)
}

// NewConcurrentNetwork builds a concurrent broker overlay: attach clients,
// Start, then drive it from any number of goroutines; Flush waits for
// quiescence and Close shuts it down.
func NewConcurrentNetwork(topo Topology, cfg NetworkConfig) (*ConcurrentNetwork, error) {
	return broker.NewConcurrent(topo, cfg)
}

// LineTopology returns a path of n brokers.
func LineTopology(n int) Topology { return broker.Line(n) }

// StarTopology returns a hub-and-spoke overlay of n brokers.
func StarTopology(n int) Topology { return broker.Star(n) }

// BalancedTreeTopology returns a complete binary tree of n brokers.
func BalancedTreeTopology(n int) Topology { return broker.BalancedTree(n) }

// RandomTreeTopology returns a seeded uniformly random recursive tree.
func RandomTreeTopology(n int, seed int64) Topology { return broker.RandomTree(n, seed) }
