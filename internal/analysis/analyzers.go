package analysis

// All returns the full analyzer suite in the order sfclint runs it.
func All() []*Analyzer {
	return []*Analyzer{
		AtomicAlign,
		CapForward,
		HotPathClock,
		WALOrder,
		WireErrs,
	}
}
