// Package analysistest runs one analyzer over fixture packages under
// internal/analysis/testdata/src and checks its diagnostics against
// // want "regexp" comments in the fixture source — the same contract
// as golang.org/x/tools' analysistest, rebuilt on the project's own
// loader. Fixture packages live under a testdata directory, so the
// normal build, `go vet ./...` and `go run ./cmd/sfclint ./...` never
// see their seeded violations, but they are real packages inside the
// module and may import the project's internal packages.
package analysistest

import (
	"regexp"
	"strconv"
	"strings"
	"testing"

	"sfccover/internal/analysis"
)

// wantRe captures the quoted regexps of one // want comment; both
// double-quoted and backquoted Go strings are accepted.
var wantRe = regexp.MustCompile(`//\s*want((?:\s+(?:"(?:[^"\\]|\\.)*"|` + "`[^`]*`" + `))+)`)

var quotedRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"|` + "`[^`]*`")

type key struct {
	file string
	line int
}

// Run loads each fixture package (a directory name under
// internal/analysis/testdata/src), applies the analyzer, and fails the
// test on any unmatched diagnostic or unsatisfied want.
func Run(t *testing.T, a *analysis.Analyzer, fixtures ...string) {
	t.Helper()
	root, err := analysis.ModuleRoot(".")
	if err != nil {
		t.Fatalf("locating module root: %v", err)
	}
	patterns := make([]string, len(fixtures))
	for i, f := range fixtures {
		patterns[i] = "./internal/analysis/testdata/src/" + f
	}
	fset, pkgs, err := analysis.Load(root, patterns...)
	if err != nil {
		t.Fatalf("loading fixtures %v: %v", fixtures, err)
	}
	if len(pkgs) != len(fixtures) {
		t.Fatalf("loaded %d packages for %d fixtures", len(pkgs), len(fixtures))
	}

	// Collect expectations: every // want comment, keyed by position.
	wants := make(map[key][]*regexp.Regexp)
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := fset.Position(c.Pos())
					k := key{pos.Filename, pos.Line}
					for _, q := range quotedRe.FindAllString(m[1], -1) {
						pat, err := strconv.Unquote(q)
						if err != nil {
							t.Fatalf("%s: bad want string %s: %v", pos, q, err)
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
						}
						wants[k] = append(wants[k], re)
					}
				}
			}
		}
	}

	diags, err := analysis.Run(fset, pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		matched := false
		for i, re := range wants[k] {
			if re.MatchString(d.Message) {
				wants[k] = append(wants[k][:i], wants[k][i+1:]...)
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for k, res := range wants {
		for _, re := range res {
			t.Errorf("%s:%d: no %s diagnostic matching %q", shortPath(k.file, root), k.line, a.Name, re)
		}
	}
}

func shortPath(file, root string) string {
	return strings.TrimPrefix(file, root+"/")
}
