// Package atomicalignfix seeds atomicalign violations: a raw 64-bit
// atomic on a misaligned field, plain access beside atomic access, and
// a broken cache-line pad — plus the clean shapes the analyzer accepts.
package atomicalignfix

import "sync/atomic"

// counters puts a raw int64 at offset 4 under GOARCH=386 (bool at 0,
// int64 aligned to 4): the atomic below would fault on 32-bit hardware.
type counters struct {
	flag bool
	n    int64
}

func bump(c *counters) {
	atomic.AddInt64(&c.n, 1) // want `sits at offset 4 under GOARCH=386`
}

// mixed is alignment-clean (offset 0) but read plainly below.
type mixed struct {
	v int64
	_ [56]byte
}

func bumpMixed(m *mixed)       { atomic.AddInt64(&m.v, 1) }
func peekPlain(m *mixed) int64 { return m.v } // want `plain access races with it`

func peekSuppressed(m *mixed) int64 {
	//sfc:noatomicguard fixture: this reader runs after all writers are quiesced
	return m.v
}

// badShard puts an atomic field behind the pad, where it shares a cache
// line with the next array element; the pad also no longer fills the
// struct to a 64-byte multiple.
type badShard struct { // want `size is 72 bytes, not a multiple of 64`
	hits atomic.Uint64
	_    [56]byte
	tail atomic.Uint64 // want `follows the cache-line pad`
}

// goodShard is the histogram-shard pattern done right: atomics first,
// pad last, 64-byte total.
type goodShard struct {
	hits atomic.Uint64
	_    [56]byte
}

var shards [8]goodShard

func touch(i int) { shards[i].hits.Add(1) }

var _ = badShard{}
