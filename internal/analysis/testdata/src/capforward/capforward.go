// Package capforwardfix seeds a provider wrapper that forwards nothing,
// one that forwards or annotates everything, and a provider-holding
// type that is not a wrapper at all.
package capforwardfix

import (
	"sfccover/internal/core"
	"sfccover/internal/dominance"
	"sfccover/internal/subscription"
)

// passthrough implements core.Provider around an inner one but forwards
// none of the optional capabilities: every wrapped engine behind it
// silently loses batching, rebalancing, durability and drains.
type passthrough struct { // want "BatchQuerier" "BatchWriter" "Rebalancer" "Persister" "CoveredDrainer" "Enumerator" "BulkInserter"
	inner core.Provider
}

func (p *passthrough) Add(s *subscription.Subscription) (uint64, bool, uint64, error) {
	return p.inner.Add(s)
}
func (p *passthrough) Insert(s *subscription.Subscription) (uint64, error) {
	return p.inner.Insert(s)
}
func (p *passthrough) Remove(id uint64) error { return p.inner.Remove(id) }
func (p *passthrough) FindCover(s *subscription.Subscription) (uint64, bool, dominance.Stats, error) {
	return p.inner.FindCover(s)
}
func (p *passthrough) FindCovered(s *subscription.Subscription) (uint64, bool, dominance.Stats, error) {
	return p.inner.FindCovered(s)
}
func (p *passthrough) Subscription(id uint64) (*subscription.Subscription, bool) {
	return p.inner.Subscription(id)
}
func (p *passthrough) Len() int                     { return p.inner.Len() }
func (p *passthrough) Mode() core.Mode              { return p.inner.Mode() }
func (p *passthrough) Schema() *subscription.Schema { return p.inner.Schema() }
func (p *passthrough) Stats() core.ProviderStats    { return p.inner.Stats() }
func (p *passthrough) Close()                       { p.inner.Close() }

// forwarding handles every capability: one genuine forward, the rest
// declared away with reasons.
//
//sfc:nocap BatchWriter fixture: the wrapped batch path is intentionally absent here
//sfc:nocap Rebalancer fixture: wrapping freezes the partition
//sfc:nocap Persister fixture: nothing durable behind this wrapper
//sfc:nocap CoveredDrainer fixture: drains are routed around this wrapper
//sfc:nocap Enumerator fixture: enumeration stays on the inner provider
//sfc:nocap BulkInserter fixture: bulk loads bypass this wrapper
type forwarding struct {
	passthrough
}

func (f *forwarding) CoverQueryBatch(subs []*subscription.Subscription) []core.QueryResult {
	return core.CoverQueries(f.inner, subs)
}

// holder holds providers without being one — a broker routing table,
// not a wrapper — so the rule does not apply.
type holder struct {
	fwd  core.Provider
	supp core.Provider
}

func (h *holder) Len() int { return h.fwd.Len() + h.supp.Len() }
