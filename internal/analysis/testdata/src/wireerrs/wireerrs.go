// Package wireerrsfix seeds untyped wire refusals against a local
// Response frame type, plus the typed and suppressed shapes wireerrs
// accepts.
package wireerrsfix

// Response mirrors the daemon's wire frame shape.
type Response struct {
	OK    bool
	Code  string
	Error string
}

// Protocol error codes.
const (
	CodeBadRequest = "bad_request"
	CodeOpFailed   = "op_failed"
)

// refuseTyped is the contract: a refusal with a declared code constant.
func refuseTyped() *Response {
	return &Response{OK: false, Code: CodeBadRequest, Error: "malformed request"}
}

// refuseMissing sends a refusal the client cannot dispatch on.
func refuseMissing() *Response {
	return &Response{OK: false, Error: "something went wrong"} // want `refusal Response without a protocol error code`
}

// refuseInline invents a code at the call site, so the protocol surface
// is no longer enumerable.
func refuseInline() *Response {
	return &Response{OK: false, Code: "oops", Error: "bad"} // want `refusal Code is an inline value`
}

// implicitRefusal leaves OK to its zero value — still a refusal frame.
func implicitRefusal() *Response {
	return &Response{Error: "bad"} // want `refusal Response without a protocol error code`
}

// okFrame is not a refusal; no code required.
func okFrame() *Response { return &Response{OK: true} }

// helperCode routes the code through a parameter: accepted, the
// constants live at the call sites.
func helperCode(code, msg string) *Response {
	return &Response{OK: false, Code: code, Error: msg}
}

var _ = helperCode(CodeOpFailed, "x")

// suppressed documents the escape hatch.
func suppressed() *Response {
	//sfc:rawerr fixture: the annotation must silence the finding
	return &Response{OK: false, Error: "free-form"}
}
