// Package walorderfix seeds walorder violations and the legitimate
// shapes it must accept: log-then-apply, err-guarded rollback, and
// annotated replay.
package walorderfix

import (
	"sfccover/internal/core"
	"sfccover/internal/subscription"
)

// store declares WAL append primitives, putting this package under the
// claim→log→apply rule.
type store struct{}

func (s *store) appendAdd(sid uint64) error    { return nil }
func (s *store) appendRemove(sid uint64) error { return nil }

type durable struct {
	inner core.Provider
	st    *store
}

// badRemove applies the removal before logging it: a crash between the
// two loses the subscription from disk but not from the log.
func (d *durable) badRemove(sid uint64) error {
	if err := d.inner.Remove(sid); err != nil { // want `destructive Remove precedes the first WAL append`
		return err
	}
	return d.st.appendRemove(sid)
}

// badUnlogged mutates without any WAL append in sight.
func (d *durable) badUnlogged(sid uint64) error {
	return d.inner.Remove(sid) // want `mutates provider state but badUnlogged never appends to the WAL`
}

// goodRemove logs first, applies second.
func (d *durable) goodRemove(sid uint64) error {
	if err := d.st.appendRemove(sid); err != nil {
		return err
	}
	return d.inner.Remove(sid)
}

// goodRollback inserts, logs, and compensates inside the err guard — the
// one place a destructive call may precede nothing.
func (d *durable) goodRollback(sub *subscription.Subscription) error {
	id, err := d.inner.Insert(sub)
	if err != nil {
		return err
	}
	if err := d.st.appendAdd(id); err != nil {
		d.inner.Remove(id) // err-guarded rollback: legitimate
		return err
	}
	return nil
}

// goodTransitive logs through a helper that reaches a primitive.
func (d *durable) goodTransitive(sid uint64) error {
	if err := d.logRemove(sid); err != nil {
		return err
	}
	return d.inner.Remove(sid)
}

func (d *durable) logRemove(sid uint64) error { return d.st.appendRemove(sid) }

// replay re-applies records already on disk; the annotation waives the
// rule for the whole function.
//
//sfc:walok fixture: recovery replay applies records already on disk
func (d *durable) replay(subs []*subscription.Subscription) error {
	for _, s := range subs {
		if _, err := d.inner.Insert(s); err != nil {
			return err
		}
	}
	return nil
}

// lineSuppressed documents the call-level escape hatch.
func (d *durable) lineSuppressed(sub *subscription.Subscription) ([]core.Drained, error) {
	if dr, ok := d.inner.(core.CoveredDrainer); ok {
		//sfc:walok fixture: the drained set is unknowable before draining
		out, err := dr.DrainCovered(sub)
		if err != nil {
			return nil, err
		}
		for _, it := range out {
			if err := d.st.appendRemove(it.ID); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	return nil, nil
}
