// Package hotpathfix seeds hotpathclock violations and the patterns it
// must accept: trace-elected branches, line suppressions, cold code.
package hotpathfix

import (
	"time"

	"sfccover/internal/obs"
)

type engine struct {
	o *obs.Observer
	h *obs.Histogram
}

// badClock reads the clock with no election at all.
//
//sfc:hotpath
func (e *engine) badClock() time.Duration {
	t0 := time.Now()      // want `time\.Now on a //sfc:hotpath function`
	return time.Since(t0) // want `time\.Since on a //sfc:hotpath function`
}

// badFetch takes the registry lock per call.
//
//sfc:hotpath
func (e *engine) badFetch(d time.Duration) {
	e.o.Hist("query").Observe(d) // want `fetches from the histogram registry`
}

// badFetchElected shows election does not excuse a registry fetch: the
// lock costs the same inside a traced branch.
//
//sfc:hotpath
func (e *engine) badFetchElected(d time.Duration) {
	if tr := e.o.SampleTrace("query"); tr != nil {
		e.o.Hist("query").Observe(d) // want `fetches from the histogram registry`
	}
}

// goodElected pays for its clock only on trace-elected queries.
//
//sfc:hotpath
func (e *engine) goodElected() {
	tr := e.o.SampleTrace("query")
	if tr != nil {
		t0 := time.Now()
		e.h.Observe(time.Since(t0))
	}
}

// goodConjunct elects through the right operand of &&.
//
//sfc:hotpath
func (e *engine) goodConjunct(tr *obs.QueryTrace) {
	if e.h != nil && tr != nil {
		e.h.Observe(time.Since(time.Now()))
	}
}

// goodElseElected elects through the else branch of == nil.
//
//sfc:hotpath
func (e *engine) goodElseElected(tr *obs.QueryTrace) {
	if tr == nil {
		e.h.Observe(0)
	} else {
		e.h.Observe(time.Since(time.Now()))
	}
}

// goodSuppressed documents the line-level escape hatch.
//
//sfc:hotpath
func (e *engine) goodSuppressed() time.Time {
	//sfc:allowclock fixture: the annotation must silence the finding
	return time.Now()
}

// bareSuppression lacks a reason, so it suppresses nothing.
//
//sfc:hotpath
func (e *engine) bareSuppression() time.Time {
	//sfc:allowclock
	return time.Now() // want `time\.Now on a //sfc:hotpath function`
}

// coldPath is unannotated: out of the analyzer's scope.
func (e *engine) coldPath() time.Time { return time.Now() }
