package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
}

// listEntry is the subset of `go list -json` output the loader needs.
type listEntry struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
}

// Load enumerates the packages matching patterns (resolved relative to
// dir, the module root) and type-checks each from source. Dependencies
// are imported from the compiler's export data, which `go list -export`
// produces as a side effect — so loading needs only the Go toolchain,
// no third-party analysis framework. Test files are not loaded; the
// invariants under analysis live in non-test code.
func Load(dir string, patterns ...string) (*token.FileSet, []*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	entries, err := goList(dir, patterns)
	if err != nil {
		return nil, nil, err
	}

	exports := make(map[string]string, len(entries))
	for _, e := range entries {
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	var pkgs []*Package
	for _, e := range entries {
		if e.DepOnly || e.Standard || e.Name == "" || len(e.GoFiles) == 0 {
			continue
		}
		pkg, err := check(fset, imp, e)
		if err != nil {
			return nil, nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(a, b int) bool { return pkgs[a].ImportPath < pkgs[b].ImportPath })
	return fset, pkgs, nil
}

// goList shells out to `go list -export -deps -json`, which compiles
// whatever is stale and reports every listed package plus its full
// dependency closure (DepOnly marks the closure-only entries).
func goList(dir string, patterns []string) ([]listEntry, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,Name,GoFiles,Export,Standard,DepOnly",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var entries []listEntry
	dec := json.NewDecoder(&stdout)
	for dec.More() {
		var e listEntry
		if err := dec.Decode(&e); err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// check parses and type-checks one package from source.
func check(fset *token.FileSet, imp types.Importer, e listEntry) (*Package, error) {
	files := make([]*ast.File, len(e.GoFiles))
	for i, name := range e.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(e.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", name, err)
		}
		files[i] = f
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	pkg, err := conf.Check(e.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", e.ImportPath, err)
	}
	return &Package{ImportPath: e.ImportPath, Dir: e.Dir, Files: files, Pkg: pkg, Info: info}, nil
}

// Run executes the analyzers over the loaded packages and returns every
// diagnostic, ordered by position.
func Run(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     fset,
				Files:    pkg.Files,
				Pkg:      pkg.Pkg,
				Info:     pkg.Info,
				diags:    &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %v", a.Name, pkg.ImportPath, err)
			}
		}
	}
	sort.Slice(diags, func(a, b int) bool {
		if diags[a].Pos.Filename != diags[b].Pos.Filename {
			return diags[a].Pos.Filename < diags[b].Pos.Filename
		}
		if diags[a].Pos.Line != diags[b].Pos.Line {
			return diags[a].Pos.Line < diags[b].Pos.Line
		}
		return diags[a].Analyzer < diags[b].Analyzer
	})
	return diags, nil
}

// ModuleRoot walks up from dir to the enclosing go.mod directory, so
// tests (whose working directory is their package) can resolve the
// module the fixtures live in.
func ModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		abs = parent
	}
}
