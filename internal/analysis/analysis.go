// Package analysis is the project's static-analysis suite: five
// analyzers that mechanically enforce the invariants the system's
// correctness and performance claims rest on — the claim→log→apply
// ordering of the persist path, the zero-measured-cost telemetry budget
// of the hot query path, the atomic/alignment discipline of the
// lock-free structures, capability forwarding across provider wrappers,
// and typed wire refusals in the daemon.
//
// The framework mirrors golang.org/x/tools/go/analysis in miniature —
// an Analyzer runs over one type-checked package and reports position
// diagnostics — but is built on the standard library alone: packages
// are enumerated with `go list -export -deps -json` and type-checked
// from source with go/types, importing dependencies from the compiler's
// export data (see load.go). That keeps the linter runnable with
// nothing but the Go toolchain: `go run ./cmd/sfclint ./...`.
//
// Invariant escape hatches are source annotations, one comment
// directive per rule, each requiring a reason:
//
//	//sfc:hotpath                      (on a func: opt into hotpathclock)
//	//sfc:allowclock <reason>          (suppress a hotpathclock finding)
//	//sfc:walok <reason>               (suppress a walorder finding)
//	//sfc:noatomicguard <reason>       (suppress an atomicalign finding)
//	//sfc:wrapper                      (on a type: opt into capforward)
//	//sfc:nocap <Iface> <reason>       (suppress one capforward capability)
//	//sfc:rawerr <reason>              (suppress a wireerrs finding)
//
// DESIGN.md's "Invariant catalog" section lists each enforced invariant
// with its analyzer and escape hatch.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check. Run inspects a single type-checked
// package through its Pass and reports findings via Pass.Report.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and CI output.
	Name string
	// Doc is a one-line description of the enforced invariant.
	Doc string
	// Run executes the check over one package.
	Run func(*Pass) error
}

// Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags      *[]Diagnostic
	directives map[string][]Directive // file name -> directives, line-sorted
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Directive is one parsed //sfc:<name> <args> source annotation.
type Directive struct {
	Name string // "hotpath", "nocap", ...
	Args string // everything after the name, trimmed
	Line int    // line the comment sits on
}

// DirectivePrefix introduces an annotation comment.
const DirectivePrefix = "//sfc:"

// parseDirectives indexes every //sfc: comment in the pass's files by
// file name. Called lazily; the index is retained for the pass.
func (p *Pass) parseDirectives() {
	if p.directives != nil {
		return
	}
	p.directives = make(map[string][]Directive)
	for _, f := range p.Files {
		name := p.Fset.Position(f.Pos()).Filename
		var ds []Directive
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if d, ok := ParseDirective(c.Text); ok {
					d.Line = p.Fset.Position(c.Pos()).Line
					ds = append(ds, d)
				}
			}
		}
		sort.Slice(ds, func(a, b int) bool { return ds[a].Line < ds[b].Line })
		p.directives[name] = ds
	}
}

// ParseDirective parses one comment line as an //sfc: annotation.
func ParseDirective(text string) (Directive, bool) {
	if !strings.HasPrefix(text, DirectivePrefix) {
		return Directive{}, false
	}
	rest := strings.TrimPrefix(text, DirectivePrefix)
	name, args, _ := strings.Cut(rest, " ")
	name = strings.TrimSpace(name)
	if name == "" {
		return Directive{}, false
	}
	return Directive{Name: name, Args: strings.TrimSpace(args)}, true
}

// DocDirective finds a named directive in a declaration's doc comment
// groups (any of which may be nil).
func DocDirective(name string, docs ...*ast.CommentGroup) (Directive, bool) {
	for _, doc := range docs {
		if doc == nil {
			continue
		}
		for _, c := range doc.List {
			if d, ok := ParseDirective(c.Text); ok && d.Name == name {
				return d, true
			}
		}
	}
	return Directive{}, false
}

// DocDirectives collects every directive with the given name from the
// doc comment groups (for repeatable annotations like //sfc:nocap).
func DocDirectives(name string, docs ...*ast.CommentGroup) []Directive {
	var out []Directive
	for _, doc := range docs {
		if doc == nil {
			continue
		}
		for _, c := range doc.List {
			if d, ok := ParseDirective(c.Text); ok && d.Name == name {
				out = append(out, d)
			}
		}
	}
	return out
}

// Suppressed reports whether pos is covered by a named suppression
// directive with a non-empty reason: the directive must sit on the same
// line as pos or on the line directly above it. Reasons are mandatory —
// a bare directive suppresses nothing, so every escape hatch in the
// tree documents why it is sound.
func (p *Pass) Suppressed(pos token.Pos, name string) bool {
	p.parseDirectives()
	position := p.Fset.Position(pos)
	for _, d := range p.directives[position.Filename] {
		if d.Name != name || d.Args == "" {
			continue
		}
		if d.Line == position.Line || d.Line == position.Line-1 {
			return true
		}
	}
	return false
}

// ImportWithSuffix finds a (directly) imported package whose path ends
// with the given suffix, e.g. "internal/core". Analyzers use it to
// locate the project packages whose types they key on, which keeps them
// working against testdata fixtures living under a different module
// prefix.
func ImportWithSuffix(pkg *types.Package, suffix string) *types.Package {
	if strings.HasSuffix(pkg.Path(), suffix) {
		return pkg
	}
	for _, imp := range pkg.Imports() {
		if strings.HasSuffix(imp.Path(), suffix) {
			return imp
		}
	}
	return nil
}

// namedOrPointee unwraps one level of pointer and reports the named
// type underneath, if any.
func namedOrPointee(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// isPkgType reports whether t (possibly behind a pointer) is the named
// type pkgSuffix.name, matching the declaring package by path suffix.
func isPkgType(t types.Type, pkgSuffix, name string) bool {
	n := namedOrPointee(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Name() == name && strings.HasSuffix(n.Obj().Pkg().Path(), pkgSuffix)
}

// calleeFunc resolves a call expression to the declared func or method
// object it invokes, nil for indirect calls through function values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// funcIsFrom reports whether fn is the named function or method of a
// package whose path ends in pkgSuffix.
func funcIsFrom(fn *types.Func, pkgSuffix, name string) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	return fn.Name() == name && strings.HasSuffix(fn.Pkg().Path(), pkgSuffix)
}
