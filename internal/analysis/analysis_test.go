package analysis_test

import (
	"testing"

	"sfccover/internal/analysis"
	"sfccover/internal/analysis/analysistest"
)

func TestHotPathClock(t *testing.T) {
	analysistest.Run(t, analysis.HotPathClock, "hotpathclock")
}

func TestWALOrder(t *testing.T) {
	analysistest.Run(t, analysis.WALOrder, "walorder")
}

func TestAtomicAlign(t *testing.T) {
	analysistest.Run(t, analysis.AtomicAlign, "atomicalign")
}

func TestCapForward(t *testing.T) {
	analysistest.Run(t, analysis.CapForward, "capforward")
}

func TestWireErrs(t *testing.T) {
	analysistest.Run(t, analysis.WireErrs, "wireerrs")
}

func TestDirectiveParsing(t *testing.T) {
	d, ok := analysis.ParseDirective("//sfc:nocap Enumerator dumps are unbounded")
	if !ok || d.Name != "nocap" || d.Args != "Enumerator dumps are unbounded" {
		t.Fatalf("ParseDirective = %+v, %v", d, ok)
	}
	if _, ok := analysis.ParseDirective("// ordinary comment"); ok {
		t.Fatal("ordinary comment parsed as directive")
	}
	if _, ok := analysis.ParseDirective("//sfc:"); ok {
		t.Fatal("empty directive name parsed as directive")
	}
}
