package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// CapForward catches the silent-capability-loss bug class that has
// bitten every provider wrapper so far: a type that wraps a
// core.Provider (a struct implementing Provider with a field that is
// itself a Provider, or one annotated //sfc:wrapper) must either
// forward every optional capability interface or declare why not with
// //sfc:nocap <Iface> <reason> on the type's doc comment. Without the
// forward, a wrapped engine silently degrades: batch queries fall back
// to loops, rebalancing goes dark, drains stop reaching the inner
// store.
var CapForward = &Analyzer{
	Name: "capforward",
	Doc:  "provider wrappers must forward every optional capability interface or carry //sfc:nocap <Iface> <reason>",
	Run:  runCapForward,
}

// capabilities is the optional capability surface of internal/core, in
// report order.
var capabilities = []string{
	"BatchQuerier",
	"BatchWriter",
	"Rebalancer",
	"Persister",
	"CoveredDrainer",
	"Enumerator",
	"BulkInserter",
}

func runCapForward(pass *Pass) error {
	core := ImportWithSuffix(pass.Pkg, "internal/core")
	if core == nil {
		return nil // package is nowhere near the provider surface
	}
	provider := lookupInterface(core, "Provider")
	if provider == nil {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				checkWrapper(pass, core, provider, gd, ts)
			}
		}
	}
	return nil
}

func checkWrapper(pass *Pass, core *types.Package, provider *types.Interface, gd *ast.GenDecl, ts *ast.TypeSpec) {
	obj, ok := pass.Info.Defs[ts.Name].(*types.TypeName)
	if !ok {
		return
	}
	named, ok := obj.Type().(*types.Named)
	if !ok {
		return
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return
	}
	ptr := types.NewPointer(named)
	if !types.Implements(ptr, provider) {
		return // not itself a provider, so nothing downstream is lost
	}
	_, optIn := DocDirective("wrapper", ts.Doc, gd.Doc)
	if !optIn && !holdsProviderField(st, provider) {
		return
	}

	nocaps := make(map[string]bool)
	for _, d := range DocDirectives("nocap", ts.Doc, gd.Doc) {
		iface, reason, _ := strings.Cut(d.Args, " ")
		if iface != "" && strings.TrimSpace(reason) != "" {
			nocaps[iface] = true
		}
	}
	for _, capName := range capabilities {
		iface := lookupInterface(core, capName)
		if iface == nil {
			continue
		}
		if types.Implements(ptr, iface) || nocaps[capName] {
			continue
		}
		pass.Reportf(ts.Name.Pos(), "%s wraps a core.Provider but does not forward %s; implement it or annotate //sfc:nocap %s <reason>", ts.Name.Name, capName, capName)
	}
}

// holdsProviderField reports whether any struct field is itself a
// Provider — the structural signature of a wrapper.
func holdsProviderField(st *types.Struct, provider *types.Interface) bool {
	for i := 0; i < st.NumFields(); i++ {
		ft := st.Field(i).Type()
		if types.Implements(ft, provider) {
			return true
		}
		if _, ok := ft.Underlying().(*types.Interface); !ok {
			if types.Implements(types.NewPointer(ft), provider) {
				return true
			}
		}
	}
	return false
}

// lookupInterface resolves a named interface from a package scope.
func lookupInterface(pkg *types.Package, name string) *types.Interface {
	obj := pkg.Scope().Lookup(name)
	if obj == nil {
		return nil
	}
	iface, _ := obj.Type().Underlying().(*types.Interface)
	return iface
}
