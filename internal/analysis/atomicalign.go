package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// AtomicAlign enforces the alignment and access discipline the
// lock-free structures (PR 4's boundary table, PR 6's histogram shards)
// depend on:
//
//   - a struct field passed to a raw 64-bit sync/atomic call
//     (atomic.AddInt64 and friends) must sit at an 8-byte offset under
//     GOARCH=386 sizes — on 32-bit platforms a misaligned 64-bit atomic
//     faults at runtime (typed atomic.Int64/Uint64 are exempt: the
//     compiler aligns them everywhere);
//   - a field accessed through raw atomics must never also be accessed
//     plainly in the same package — a plain read beside an atomic write
//     is a data race the race detector only catches if the schedule
//     cooperates;
//   - in a cache-line-padded struct (one with a `_ [N]byte` pad field),
//     no atomic field may follow the pad — a trailing atomic shares its
//     line with the next array element, defeating the pad — and the pad
//     must fill the struct to a 64-byte multiple.
//
// Suppress with //sfc:noatomicguard <reason>.
var AtomicAlign = &Analyzer{
	Name: "atomicalign",
	Doc:  "64-bit atomics must be alignment-safe on 32-bit platforms, never mixed with plain access, and padded fields must stay padded",
	Run:  runAtomicAlign,
}

// rawAtomic64 lists the sync/atomic functions whose operand must be
// 8-byte aligned on 32-bit platforms.
var rawAtomic64 = map[string]bool{
	"AddInt64": true, "AddUint64": true,
	"LoadInt64": true, "LoadUint64": true,
	"StoreInt64": true, "StoreUint64": true,
	"SwapInt64": true, "SwapUint64": true,
	"CompareAndSwapInt64": true, "CompareAndSwapUint64": true,
}

// rawAtomic32 widens the mixed-access check to 32-bit raw atomics.
var rawAtomic32 = map[string]bool{
	"AddInt32": true, "AddUint32": true,
	"LoadInt32": true, "LoadUint32": true,
	"StoreInt32": true, "StoreUint32": true,
	"SwapInt32": true, "SwapUint32": true,
	"CompareAndSwapInt32": true, "CompareAndSwapUint32": true,
}

var (
	sizes386   = types.SizesFor("gc", "386")
	sizesCache = types.SizesFor("gc", "amd64")
)

const cacheLine = 64

func runAtomicAlign(pass *Pass) error {
	// Pass 1: every struct field handed to a raw sync/atomic call, with
	// the selector nodes that did so (excluded from the plain-access
	// scan below).
	atomicFields := make(map[*types.Var]bool)
	atomicSelectors := make(map[*ast.SelectorExpr]bool)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			if !rawAtomic64[fn.Name()] && !rawAtomic32[fn.Name()] {
				return true
			}
			field, sel := addressedField(pass, call.Args[0])
			if field == nil {
				return true
			}
			atomicFields[field] = true
			atomicSelectors[sel] = true
			if rawAtomic64[fn.Name()] {
				checkFieldOffset(pass, call, sel, field)
			}
			return true
		})
	}

	// Pass 2: plain (non-atomic) access to those same fields.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || atomicSelectors[sel] {
				return true
			}
			selection, ok := pass.Info.Selections[sel]
			if !ok {
				return true
			}
			field, ok := selection.Obj().(*types.Var)
			if !ok || !atomicFields[field] {
				return true
			}
			if pass.Suppressed(sel.Pos(), "noatomicguard") {
				return true
			}
			pass.Reportf(sel.Pos(), "field %s is accessed with sync/atomic elsewhere in this package; plain access races with it (use the atomic API or annotate //sfc:noatomicguard <reason>)", field.Name())
			return true
		})
	}

	// Pass 3: pad discipline of structs declared in this package.
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if _, ok := ts.Type.(*ast.StructType); !ok {
					continue
				}
				checkPadDiscipline(pass, ts)
			}
		}
	}
	return nil
}

// addressedField resolves an argument of the form &x.f to the struct
// field object and its selector node.
func addressedField(pass *Pass, arg ast.Expr) (*types.Var, *ast.SelectorExpr) {
	un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
	if !ok {
		return nil, nil
	}
	sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
	if !ok {
		return nil, nil
	}
	selection, ok := pass.Info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return nil, nil
	}
	field, _ := selection.Obj().(*types.Var)
	return field, sel
}

// checkFieldOffset verifies the field sits at an 8-byte offset within
// its struct under GOARCH=386 sizes.
func checkFieldOffset(pass *Pass, call *ast.CallExpr, sel *ast.SelectorExpr, field *types.Var) {
	selection := pass.Info.Selections[sel]
	named := namedOrPointee(selection.Recv())
	if named == nil {
		return
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return
	}
	fields := make([]*types.Var, st.NumFields())
	idx := -1
	for i := range fields {
		fields[i] = st.Field(i)
		if fields[i] == field {
			idx = i
		}
	}
	if idx < 0 {
		return // promoted from an embedded struct; offset not knowable here
	}
	offsets := sizes386.Offsetsof(fields)
	if offsets[idx]%8 == 0 {
		return
	}
	if pass.Suppressed(call.Pos(), "noatomicguard") {
		return
	}
	pass.Reportf(call.Pos(), "64-bit atomic on %s.%s, which sits at offset %d under GOARCH=386; move it to an 8-byte offset or use atomic.Int64/Uint64 (aligned on every platform)", named.Obj().Name(), field.Name(), offsets[idx])
}

// checkPadDiscipline enforces the cache-line-padded shard pattern: no
// atomic field after the pad, and the pad must fill the line.
func checkPadDiscipline(pass *Pass, ts *ast.TypeSpec) {
	obj, ok := pass.Info.Defs[ts.Name]
	if !ok {
		return
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		return
	}
	padSeen := false
	hasPad := false
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if isPadField(f) {
			padSeen, hasPad = true, true
			continue
		}
		if padSeen && isAtomicType(f.Type()) {
			if !pass.Suppressed(f.Pos(), "noatomicguard") {
				pass.Reportf(f.Pos(), "atomic field %s follows the cache-line pad in %s; it shares a line with the next array element — move it before the pad", f.Name(), ts.Name.Name)
			}
			padSeen = false // one report per run of trailing atomics
		}
	}
	if hasPad {
		size := sizesCache.Sizeof(st)
		if size%cacheLine != 0 {
			if !pass.Suppressed(ts.Name.Pos(), "noatomicguard") {
				pass.Reportf(ts.Name.Pos(), "%s carries a cache-line pad but its size is %d bytes, not a multiple of %d; adjacent array elements will share a line", ts.Name.Name, size, cacheLine)
			}
		}
	}
}

// isPadField recognizes the `_ [N]byte` padding idiom.
func isPadField(f *types.Var) bool {
	if f.Name() != "_" {
		return false
	}
	arr, ok := f.Type().Underlying().(*types.Array)
	if !ok {
		return false
	}
	basic, ok := arr.Elem().Underlying().(*types.Basic)
	return ok && basic.Kind() == types.Uint8
}

// isAtomicType reports whether t is one of sync/atomic's typed values.
func isAtomicType(t types.Type) bool {
	n := namedOrPointee(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	if n.Obj().Pkg().Path() != "sync/atomic" {
		return false
	}
	return strings.HasPrefix(n.Obj().Name(), "Int") ||
		strings.HasPrefix(n.Obj().Name(), "Uint") ||
		n.Obj().Name() == "Pointer" || n.Obj().Name() == "Bool" || n.Obj().Name() == "Value"
}
