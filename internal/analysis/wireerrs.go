package analysis

import (
	"go/ast"
	"go/types"
)

// WireErrs keeps daemon refusals machine-mappable: in a package that
// declares the wire Response type (OK / Code / Error fields), every
// refusal frame — a Response literal with OK: false, or with an Error
// but no OK — must set Code, and must set it from a declared constant,
// never an inline string. Raw fmt.Errorf text reaches clients as an
// opaque ServerError; typed codes are what RemoteProvider and retry
// policies dispatch on. Suppress with //sfc:rawerr <reason>.
var WireErrs = &Analyzer{
	Name: "wireerrs",
	Doc:  "wire refusal frames must carry a typed protocol error code from a declared constant",
	Run:  runWireErrs,
}

func runWireErrs(pass *Pass) error {
	resp := localResponseType(pass)
	if resp == nil {
		return nil // not a wire-protocol package
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			t := pass.Info.TypeOf(lit)
			if t == nil || namedOrPointee(t) != resp {
				return true
			}
			checkResponseLit(pass, lit)
			return true
		})
	}
	return nil
}

// localResponseType finds a struct named Response declared in this
// package carrying OK, Code and Error fields — the wire frame shape.
func localResponseType(pass *Pass) *types.Named {
	obj, ok := pass.Pkg.Scope().Lookup("Response").(*types.TypeName)
	if !ok {
		return nil
	}
	named, ok := obj.Type().(*types.Named)
	if !ok {
		return nil
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	want := map[string]bool{"OK": false, "Code": false, "Error": false}
	for i := 0; i < st.NumFields(); i++ {
		if _, tracked := want[st.Field(i).Name()]; tracked {
			want[st.Field(i).Name()] = true
		}
	}
	return ifAll(want, named)
}

func ifAll(want map[string]bool, named *types.Named) *types.Named {
	for _, ok := range want {
		if !ok {
			return nil
		}
	}
	return named
}

// checkResponseLit validates one Response literal: refusals need a
// constant Code.
func checkResponseLit(pass *Pass, lit *ast.CompositeLit) {
	var okExpr, codeExpr ast.Expr
	hasError := false
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		switch key.Name {
		case "OK":
			okExpr = kv.Value
		case "Code":
			codeExpr = kv.Value
		case "Error":
			hasError = true
		}
	}

	refusal := false
	if okExpr != nil {
		if id, ok := ast.Unparen(okExpr).(*ast.Ident); ok && id.Name == "false" {
			refusal = true
		}
	} else if hasError {
		refusal = true // zero-value OK is false: an implicit refusal
	}
	if !refusal || pass.Suppressed(lit.Pos(), "rawerr") {
		return
	}

	if codeExpr == nil {
		pass.Reportf(lit.Pos(), "refusal Response without a protocol error code; set Code from a declared constant so clients get a mappable ServerError (or annotate //sfc:rawerr <reason>)")
		return
	}
	if !isDeclaredConst(pass, codeExpr) {
		pass.Reportf(codeExpr.Pos(), "refusal Code is an inline value; declare a named code constant so the protocol surface stays enumerable (or annotate //sfc:rawerr <reason>)")
	}
}

// isDeclaredConst reports whether e resolves to a declared named
// constant (possibly via a helper parameter — any non-literal constant
// or string-typed variable fed from one is accepted; only inline
// literals are rejected).
func isDeclaredConst(pass *Pass, e ast.Expr) bool {
	switch v := ast.Unparen(e).(type) {
	case *ast.BasicLit:
		return false
	case *ast.Ident:
		return v.Name != "nil"
	case *ast.SelectorExpr:
		return true
	default:
		// Conversions, calls, etc.: accept anything the type checker
		// resolved; the rule targets the bare-literal antipattern.
		return pass.Info.TypeOf(e) != nil
	}
}
