package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// WALOrder enforces the claim→log→apply rule that makes crash recovery
// sound (PR 5): in any package that owns WAL append primitives
// (appendAdd / appendRemove / appendBatch methods), a function that
// mutates a wrapped core provider must also append to the WAL, and
// destructive mutations (Remove / RemoveBatch / RemoveAll /
// DrainCovered) must not precede the first WAL append on the
// straight-line path — memory must never run ahead of disk. A mutation
// inside an `err != nil` guard is exempt: that is the rollback arm of a
// failed append. Suppress with //sfc:walok <reason> on the call line or
// the function's doc comment (e.g. recovery replay, which re-applies
// records already on disk).
var WALOrder = &Analyzer{
	Name: "walorder",
	Doc:  "provider state mutation must not precede the corresponding WAL append (claim→log→apply)",
	Run:  runWALOrder,
}

// walPrimitives are the method names that constitute a WAL append; a
// package is subject to walorder only if it declares at least one.
var walPrimitives = map[string]bool{
	"appendAdd":    true,
	"appendRemove": true,
	"appendBatch":  true,
}

// destructiveMutations lose state that a crash before the append could
// never recover, so they are order-checked, not just presence-checked.
var destructiveMutations = map[string]bool{
	"Remove":       true,
	"RemoveBatch":  true,
	"RemoveAll":    true,
	"DrainCovered": true,
}

// mutationIfaces are the internal/core types whose method calls count
// as provider state mutation.
var mutationIfaces = []string{"Provider", "BatchWriter", "BulkInserter", "CoveredDrainer"}

func runWALOrder(pass *Pass) error {
	logFuncs := collectLogFuncs(pass)
	if logFuncs == nil {
		return nil // package declares no WAL primitives; rule not in force
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if _, ok := DocDirective("walok", fd.Doc); ok {
				continue
			}
			checkWALOrder(pass, fd, logFuncs)
		}
	}
	return nil
}

// collectLogFuncs finds every function in the package that reaches a
// WAL append primitive, transitively, by fixpoint over direct calls.
// Returns nil if the package declares no primitive at all.
func collectLogFuncs(pass *Pass) map[*types.Func]bool {
	logFuncs := make(map[*types.Func]bool)
	type fnBody struct {
		fn   *types.Func
		body *ast.BlockStmt
	}
	var fns []fnBody
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			// Primitives qualify only as methods: a free helper that
			// happens to share the name (e.g. a record encoder) is not
			// an append to this store's log.
			if walPrimitives[fn.Name()] && fd.Recv != nil {
				logFuncs[fn] = true
			}
			fns = append(fns, fnBody{fn, fd.Body})
		}
	}
	if len(logFuncs) == 0 {
		return nil
	}
	for changed := true; changed; {
		changed = false
		for _, f := range fns {
			if logFuncs[f.fn] {
				continue
			}
			ast.Inspect(f.body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if callee := calleeFunc(pass.Info, call); callee != nil && logFuncs[callee] {
					logFuncs[f.fn] = true
					changed = true
					return false
				}
				return true
			})
		}
	}
	return logFuncs
}

// checkWALOrder verifies one function: every provider mutation needs a
// WAL append somewhere in the function, and destructive mutations must
// come after the first append unless err-guarded (rollback).
func checkWALOrder(pass *Pass, fd *ast.FuncDecl, logFuncs map[*types.Func]bool) {
	fn, _ := pass.Info.Defs[fd.Name].(*types.Func)
	if fn != nil && walPrimitives[fn.Name()] {
		return // the primitives themselves sit below the rule
	}

	// First pass: the position of the first WAL append on the
	// straight-line spelling of the function.
	firstLog := token.NoPos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if firstLog.IsValid() {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if callee := calleeFunc(pass.Info, call); callee != nil && (logFuncs[callee] || walPrimitives[callee.Name()]) {
				firstLog = call.Pos()
				return false
			}
		}
		return true
	})

	walkErrGuarded(fd.Body, false, func(n ast.Node, errGuarded bool) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		callee := calleeFunc(pass.Info, call)
		if callee == nil || !isProviderMutation(pass, call, callee) {
			return
		}
		if pass.Suppressed(call.Pos(), "walok") {
			return
		}
		if !firstLog.IsValid() {
			pass.Reportf(call.Pos(), "%s mutates provider state but %s never appends to the WAL; log before applying or annotate //sfc:walok <reason>", callee.Name(), fd.Name.Name)
			return
		}
		if destructiveMutations[callee.Name()] && call.Pos() < firstLog && !errGuarded {
			pass.Reportf(call.Pos(), "destructive %s precedes the first WAL append in %s; claim, log, then apply (or annotate //sfc:walok <reason>)", callee.Name(), fd.Name.Name)
		}
	})
}

// walkErrGuarded walks the AST tracking whether the current node sits
// inside the then branch of an `err != nil` check — the rollback arm of
// a failed append, where compensating mutations are legitimate.
func walkErrGuarded(n ast.Node, guarded bool, visit func(ast.Node, bool)) {
	if n == nil {
		return
	}
	visit(n, guarded)
	if ifs, ok := n.(*ast.IfStmt); ok {
		walkErrGuarded(ifs.Init, guarded, visit)
		walkErrGuarded(ifs.Cond, guarded, visit)
		walkErrGuarded(ifs.Body, guarded || isErrNilCheck(ifs.Cond), visit)
		if ifs.Else != nil {
			walkErrGuarded(ifs.Else, guarded, visit)
		}
		return
	}
	for _, child := range children(n) {
		walkErrGuarded(child, guarded, visit)
	}
}

// isErrNilCheck recognizes `<ident> != nil` where the identifier is
// named err or ends in Err (the conventional failed-append guard).
func isErrNilCheck(cond ast.Expr) bool {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || be.Op != token.NEQ {
		return false
	}
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	isErr := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return false
		}
		return id.Name == "err" || len(id.Name) > 3 && id.Name[len(id.Name)-3:] == "Err" ||
			len(id.Name) > 3 && id.Name[:3] == "err"
	}
	return isNil(be.X) && isErr(be.Y) || isNil(be.Y) && isErr(be.X)
}

// isProviderMutation reports whether the call mutates provider state:
// a mutation-named method invoked on a value typed as one of the
// internal/core capability interfaces, or the core.AddAll /
// core.RemoveAll package helpers.
func isProviderMutation(pass *Pass, call *ast.CallExpr, callee *types.Func) bool {
	if funcIsFrom(callee, "internal/core", "AddAll") || funcIsFrom(callee, "internal/core", "RemoveAll") {
		return true
	}
	switch callee.Name() {
	case "Add", "Insert", "AddBatch", "InsertBatch", "Remove", "RemoveBatch", "DrainCovered":
	default:
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	recv := pass.Info.TypeOf(sel.X)
	if recv == nil {
		return false
	}
	for _, iface := range mutationIfaces {
		if isPkgType(recv, "internal/core", iface) {
			return true
		}
	}
	return false
}
