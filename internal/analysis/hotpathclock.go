package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotPathClock enforces PR 6's recording budget on the hot query path:
// a function annotated //sfc:hotpath (query, probe and batch-item paths
// in engine, dominance, sfcarray, obs) must not read the clock
// (time.Now / time.Since) except inside a trace-elected branch — one
// guarded by a nil check of an *obs.QueryTrace — and must never fetch
// histograms from the obs registry (Observer.Hist / Registry.Hist take
// the registry lock; hot paths cache the pointer at construction).
// Suppress a finding with //sfc:allowclock <reason> on the call line or
// the function's doc comment.
var HotPathClock = &Analyzer{
	Name: "hotpathclock",
	Doc:  "//sfc:hotpath functions must not read clocks outside trace-elected branches nor fetch histograms from the registry",
	Run:  runHotPathClock,
}

func runHotPathClock(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if _, ok := DocDirective("hotpath", fd.Doc); !ok {
				continue
			}
			_, fnAllowed := DocDirective("allowclock", fd.Doc)
			w := &hotpathWalker{pass: pass, fnAllowed: fnAllowed}
			w.walk(fd.Body, false)
		}
	}
	return nil
}

// hotpathWalker walks one annotated function, tracking whether the
// current node sits inside a trace-elected branch.
type hotpathWalker struct {
	pass      *Pass
	fnAllowed bool // //sfc:allowclock on the function doc (with reason)
}

func (w *hotpathWalker) walk(n ast.Node, elected bool) {
	if n == nil {
		return
	}
	if ifs, ok := n.(*ast.IfStmt); ok {
		w.walk(ifs.Init, elected)
		w.walk(ifs.Cond, elected)
		thenElected, elseElected := w.condElectsTrace(ifs.Cond)
		w.walk(ifs.Body, elected || thenElected)
		if ifs.Else != nil {
			w.walk(ifs.Else, elected || elseElected)
		}
		return
	}
	if call, ok := n.(*ast.CallExpr); ok {
		w.checkCall(call, elected)
	}
	for _, child := range children(n) {
		w.walk(child, elected)
	}
}

func (w *hotpathWalker) checkCall(call *ast.CallExpr, elected bool) {
	fn := calleeFunc(w.pass.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	switch {
	case fn.Pkg().Path() == "time" && (fn.Name() == "Now" || fn.Name() == "Since"):
		if elected || w.suppressed(call.Pos()) {
			return
		}
		w.pass.Reportf(call.Pos(), "time.%s on a //sfc:hotpath function outside a trace-elected branch (guard with `if tr != nil` on an *obs.QueryTrace, or annotate //sfc:allowclock <reason>)", fn.Name())
	case isRegistryFetch(fn):
		if w.suppressed(call.Pos()) {
			return
		}
		w.pass.Reportf(call.Pos(), "%s.%s fetches from the histogram registry on a //sfc:hotpath function; resolve the histogram once at construction and cache the pointer", recvTypeName(fn), fn.Name())
	}
}

func (w *hotpathWalker) suppressed(pos token.Pos) bool {
	return w.fnAllowed || w.pass.Suppressed(pos, "allowclock")
}

// isRegistryFetch matches the obs registry's lock-taking lookup surface:
// (*obs.Observer).Hist, (*obs.Registry).Hist and (*obs.Observer).Registry.
func isRegistryFetch(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	switch fn.Name() {
	case "Hist":
		return isPkgType(recv, "internal/obs", "Observer") || isPkgType(recv, "internal/obs", "Registry")
	case "Registry":
		return isPkgType(recv, "internal/obs", "Observer")
	}
	return false
}

func recvTypeName(fn *types.Func) string {
	sig := fn.Type().(*types.Signature)
	if n := namedOrPointee(sig.Recv().Type()); n != nil {
		return n.Obj().Name()
	}
	return "receiver"
}

// condElectsTrace decides whether an if condition proves an
// *obs.QueryTrace is non-nil in the then branch (tr != nil, possibly as
// a conjunct) or in the else branch (tr == nil).
func (w *hotpathWalker) condElectsTrace(cond ast.Expr) (thenElected, elseElected bool) {
	switch e := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch e.Op {
		case token.NEQ:
			if w.isTraceNilCheck(e.X, e.Y) {
				return true, false
			}
		case token.EQL:
			if w.isTraceNilCheck(e.X, e.Y) {
				return false, true
			}
		case token.LAND:
			// Both conjuncts hold in the then branch, so either side
			// electing suffices; the else branch proves nothing.
			lt, _ := w.condElectsTrace(e.X)
			rt, _ := w.condElectsTrace(e.Y)
			return lt || rt, false
		}
	}
	return false, false
}

// isTraceNilCheck reports whether one side is the nil literal and the
// other an expression of type *obs.QueryTrace.
func (w *hotpathWalker) isTraceNilCheck(x, y ast.Expr) bool {
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	isTrace := func(e ast.Expr) bool {
		t := w.pass.Info.TypeOf(e)
		return t != nil && isPkgType(t, "internal/obs", "QueryTrace")
	}
	return (isNil(x) && isTrace(y)) || (isNil(y) && isTrace(x))
}

// children returns a node's direct AST children, via ast.Inspect with a
// depth cut at 1.
func children(n ast.Node) []ast.Node {
	var out []ast.Node
	first := true
	ast.Inspect(n, func(child ast.Node) bool {
		if first {
			first = false
			return true
		}
		if child != nil {
			out = append(out, child)
		}
		return false
	})
	return out
}
