package engine

import (
	"fmt"
	"sync"
	"testing"

	"sfccover/internal/core"
	"sfccover/internal/subscription"
	"sfccover/internal/workload"
)

func testSchema(t testing.TB) *subscription.Schema {
	t.Helper()
	return subscription.MustSchema(10, "stock", "volume", "price")
}

func testSubs(t testing.TB, schema *subscription.Schema, n int, seed int64) []*subscription.Subscription {
	t.Helper()
	subs, err := workload.Subscriptions(workload.SubSpec{
		Schema: schema, N: n, WidthFrac: 0.3, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return subs
}

func TestConfigValidation(t *testing.T) {
	schema := testSchema(t)
	cases := []struct {
		name string
		cfg  Config
	}{
		{"no schema", Config{}},
		{"negative shards", Config{Detector: core.Config{Schema: schema}, Shards: -1}},
		{"negative workers", Config{Detector: core.Config{Schema: schema}, Workers: -2}},
		{"bad partition", Config{Detector: core.Config{Schema: schema}, Partition: "modulo"}},
		{"bad detector", Config{Detector: core.Config{Schema: schema, Mode: core.ModeApprox, Epsilon: 7}}},
	}
	for _, tc := range cases {
		if _, err := New(tc.cfg); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestDefaults(t *testing.T) {
	e := MustNew(Config{Detector: core.Config{Schema: testSchema(t)}})
	defer e.Close()
	if got := e.NumShards(); got != DefaultShards {
		t.Errorf("NumShards = %d, want %d", got, DefaultShards)
	}
	if e.Len() != 0 {
		t.Errorf("empty engine Len = %d", e.Len())
	}
}

// TestExactParity: in exact mode the engine's answer must agree with a
// single exact detector on the existence of a cover, for every partition
// strategy and several shard counts.
func TestExactParity(t *testing.T) {
	schema := testSchema(t)
	stored := testSubs(t, schema, 500, 1)
	queries := testSubs(t, schema, 300, 2)

	ref := core.MustNew(core.Config{Schema: schema, Mode: core.ModeExact, Strategy: core.StrategyLinear})
	for _, s := range stored {
		if _, err := ref.Insert(s); err != nil {
			t.Fatal(err)
		}
	}

	for _, part := range []Partition{PartitionHash, PartitionPrefix} {
		for _, shards := range []int{1, 3, 8} {
			t.Run(fmt.Sprintf("%s/%d", part, shards), func(t *testing.T) {
				e := MustNew(Config{
					Detector:  core.Config{Schema: schema, Mode: core.ModeExact, Strategy: core.StrategyLinear},
					Shards:    shards,
					Partition: part,
				})
				defer e.Close()
				for _, s := range stored {
					if _, err := e.Insert(s); err != nil {
						t.Fatal(err)
					}
				}
				if e.Len() != len(stored) {
					t.Fatalf("Len = %d, want %d", e.Len(), len(stored))
				}
				total := 0
				for _, n := range e.ShardSizes() {
					total += n
				}
				if total != len(stored) {
					t.Fatalf("ShardSizes sum = %d, want %d", total, len(stored))
				}
				for i, q := range queries {
					_, want, _, err := ref.FindCover(q)
					if err != nil {
						t.Fatal(err)
					}
					_, got, _, err := e.FindCover(q)
					if err != nil {
						t.Fatal(err)
					}
					if got != want {
						t.Errorf("query %d: engine found=%v, reference found=%v", i, got, want)
					}
				}
			})
		}
	}
}

// TestApproxSoundness: in approximate mode every claimed cover must be
// genuine, and the reported id must resolve to the covering subscription.
// Planted parent/child pairs with generous slack guarantee the search
// finds a healthy fraction of the covers.
func TestApproxSoundness(t *testing.T) {
	schema := subscription.MustSchema(10, "volume", "price")
	pairs, err := workload.Covers(workload.CoverSpec{
		Schema: schema, N: 200, SlackFrac: 0.2, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	e := MustNew(Config{
		Detector: core.Config{Schema: schema, Mode: core.ModeApprox, Epsilon: 0.3, MaxCubes: 20000},
		Shards:   4, Partition: PartitionPrefix,
	})
	defer e.Close()

	parents := make([]*subscription.Subscription, len(pairs))
	children := make([]*subscription.Subscription, len(pairs))
	for i, p := range pairs {
		parents[i] = p.Parent
		children[i] = p.Child
	}
	for _, p := range parents {
		if _, err := e.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	results := e.CoverQueryBatch(children)
	hits := 0
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("query %d: %v", i, r.Err)
		}
		if !r.Covered {
			continue // approximate misses are allowed
		}
		hits++
		cover, ok := e.Subscription(r.CoveredBy)
		if !ok {
			t.Fatalf("query %d: cover id %d does not resolve", i, r.CoveredBy)
		}
		if !cover.Covers(children[i]) {
			t.Errorf("query %d: claimed cover is not genuine", i)
		}
	}
	if hits < len(pairs)/2 {
		t.Errorf("recall too low: %d/%d planted covers found", hits, len(pairs))
	}
	tot := e.Totals()
	if tot.Queries != len(results) {
		t.Errorf("Totals.Queries = %d, want %d", tot.Queries, len(results))
	}
	if tot.Hits != hits {
		t.Errorf("Totals.Hits = %d, want %d", tot.Hits, hits)
	}
	if tot.ShardSearches < tot.Queries {
		t.Errorf("ShardSearches %d < Queries %d", tot.ShardSearches, tot.Queries)
	}
}

func TestRemove(t *testing.T) {
	schema := testSchema(t)
	e := MustNew(Config{
		Detector: core.Config{Schema: schema, Mode: core.ModeExact, Strategy: core.StrategyLinear},
		Shards:   4,
	})
	defer e.Close()
	subs := testSubs(t, schema, 64, 4)
	ids := make([]uint64, len(subs))
	for i, s := range subs {
		id, err := e.Insert(s)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	for i, id := range ids {
		got, ok := e.Subscription(id)
		if !ok || !got.Equal(subs[i]) {
			t.Fatalf("id %d does not round-trip", id)
		}
	}
	errs := e.RemoveBatch(ids)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("remove %d: %v", i, err)
		}
	}
	if e.Len() != 0 {
		t.Fatalf("Len after removal = %d", e.Len())
	}
	if err := e.Remove(ids[0]); err == nil {
		t.Error("double remove should fail")
	}
	if err := e.Remove(2); err == nil {
		t.Error("remove of reserved id should fail")
	}
	if _, ok := e.Subscription(1); ok {
		t.Error("reserved id should not resolve")
	}
}

func TestSchemaMismatch(t *testing.T) {
	e := MustNew(Config{Detector: core.Config{Schema: testSchema(t)}})
	defer e.Close()
	other := subscription.MustSchema(10, "stock", "volume", "price")
	s := subscription.New(other)
	if _, err := e.Insert(s); err == nil {
		t.Error("Insert across schemas should fail")
	}
	if _, _, _, err := e.FindCover(s); err == nil {
		t.Error("FindCover across schemas should fail")
	}
	if _, _, _, err := e.Add(s); err == nil {
		t.Error("Add across schemas should fail")
	}
}

func TestCoverQueryBatchMatchesSingle(t *testing.T) {
	schema := testSchema(t)
	e := MustNew(Config{
		Detector: core.Config{Schema: schema, Mode: core.ModeExact, Strategy: core.StrategyLinear},
		Shards:   4,
	})
	defer e.Close()
	for _, s := range testSubs(t, schema, 400, 5) {
		if _, err := e.Insert(s); err != nil {
			t.Fatal(err)
		}
	}
	queries := testSubs(t, schema, 200, 6)
	batch := e.CoverQueryBatch(queries)
	if len(batch) != len(queries) {
		t.Fatalf("batch returned %d results for %d queries", len(batch), len(queries))
	}
	for i, q := range queries {
		if batch[i].Err != nil {
			t.Fatalf("query %d: %v", i, batch[i].Err)
		}
		_, want, _, err := e.FindCover(q)
		if err != nil {
			t.Fatal(err)
		}
		if batch[i].Covered != want {
			t.Errorf("query %d: batch=%v single=%v", i, batch[i].Covered, want)
		}
	}
}

func TestPrefixPartitionIsStable(t *testing.T) {
	schema := testSchema(t)
	e := MustNew(Config{
		Detector: core.Config{Schema: schema}, Shards: 16, Partition: PartitionPrefix,
	})
	defer e.Close()
	for _, s := range testSubs(t, schema, 256, 7) {
		p := s.Point()
		first := e.shardFor(p)
		if first < 0 || first >= e.NumShards() {
			t.Fatalf("shard %d out of range", first)
		}
		if again := e.shardFor(p); again != first {
			t.Fatalf("shardFor not deterministic: %d then %d", first, again)
		}
	}
}

// TestConcurrentMixedOps hammers the engine from many goroutines; run
// under -race it validates the locking story.
func TestConcurrentMixedOps(t *testing.T) {
	schema := subscription.MustSchema(10, "volume", "price")
	e := MustNew(Config{
		Detector: core.Config{Schema: schema, Mode: core.ModeApprox, Epsilon: 0.4, MaxCubes: 2000},
		Shards:   4, Workers: 8,
	})
	defer e.Close()

	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			subs := testSubs(t, schema, 60, int64(100+g))
			results := e.AddBatch(subs)
			ids := make([]uint64, 0, len(results))
			for _, r := range results {
				if r.Err != nil {
					t.Error(r.Err)
					return
				}
				ids = append(ids, r.ID)
			}
			for _, q := range e.CoverQueryBatch(subs) {
				// Approximate queries may miss covers; only hard failures
				// are errors here.
				if q.Err != nil {
					t.Error(q.Err)
					return
				}
			}
			for _, err := range e.RemoveBatch(ids) {
				if err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if e.Len() != 0 {
		t.Fatalf("Len after concurrent churn = %d", e.Len())
	}
}

// TestRoutedApproxParity: the prefix+SFC plan probes the same cube
// sequence as a single detector over the same point set, so its
// found/miss outcome must match a single approximate detector exactly,
// at every shard count.
func TestRoutedApproxParity(t *testing.T) {
	schema := subscription.MustSchema(10, "volume", "price")
	cfg := core.Config{Schema: schema, Mode: core.ModeApprox, Epsilon: 0.3, MaxCubes: 10000}
	stored := testSubs(t, schema, 600, 20)
	queries := testSubs(t, schema, 300, 21)

	ref := core.MustNew(cfg)
	for _, s := range stored {
		if _, err := ref.Insert(s); err != nil {
			t.Fatal(err)
		}
	}
	for _, shards := range []int{1, 4, 16} {
		e := MustNew(Config{Detector: cfg, Shards: shards, Partition: PartitionPrefix})
		for _, s := range stored {
			if _, err := e.Insert(s); err != nil {
				t.Fatal(err)
			}
		}
		for i, q := range queries {
			_, want, wantStats, err := ref.FindCover(q)
			if err != nil {
				t.Fatal(err)
			}
			_, got, gotStats, err := e.FindCover(q)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("shards %d, query %d: engine found=%v, detector found=%v", shards, i, got, want)
			}
			if gotStats.CubesGenerated != wantStats.CubesGenerated {
				t.Errorf("shards %d, query %d: %d cubes vs detector's %d",
					shards, i, gotStats.CubesGenerated, wantStats.CubesGenerated)
			}
		}
		tot := e.Totals()
		if tot.ShardSearches != tot.Queries {
			t.Errorf("shards %d: routed plan should search once per query, got %d/%d",
				shards, tot.ShardSearches, tot.Queries)
		}
		e.Close()
	}
}

// TestRoutedRemove exercises the id lifecycle on the prefix+SFC plan.
func TestRoutedRemove(t *testing.T) {
	schema := subscription.MustSchema(10, "volume", "price")
	e := MustNew(Config{
		Detector:  core.Config{Schema: schema, Mode: core.ModeApprox, Epsilon: 0.3, MaxCubes: 5000},
		Shards:    4,
		Partition: PartitionPrefix,
	})
	defer e.Close()
	subs := testSubs(t, schema, 64, 22)
	ids := make([]uint64, len(subs))
	for i, s := range subs {
		id, err := e.Insert(s)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	for i, id := range ids {
		got, ok := e.Subscription(id)
		if !ok || !got.Equal(subs[i]) {
			t.Fatalf("id %d does not round-trip", id)
		}
	}
	for _, err := range e.RemoveBatch(ids) {
		if err != nil {
			t.Fatal(err)
		}
	}
	if e.Len() != 0 {
		t.Fatalf("Len after removal = %d", e.Len())
	}
	if err := e.Remove(ids[0]); err == nil {
		t.Error("double remove should fail")
	}
	if _, ok := e.Subscription(1); ok {
		t.Error("unassigned id should not resolve")
	}
}

// TestFindCovered exercises the reverse query on both plans.
func TestFindCovered(t *testing.T) {
	schema := subscription.MustSchema(10, "volume", "price")
	pairs, err := workload.Covers(workload.CoverSpec{
		Schema: schema, N: 100, SlackFrac: 0.2, Seed: 23,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, part := range []Partition{PartitionHash, PartitionPrefix} {
		t.Run(string(part)+"/exact", func(t *testing.T) {
			e := MustNew(Config{
				Detector:  core.Config{Schema: schema, Mode: core.ModeExact, Strategy: core.StrategyLinear},
				Shards:    4,
				Partition: part,
			})
			defer e.Close()
			childIDs := make(map[uint64]bool)
			for _, p := range pairs {
				id, err := e.Insert(p.Child)
				if err != nil {
					t.Fatal(err)
				}
				childIDs[id] = true
			}
			for i, p := range pairs {
				id, found, _, err := e.FindCovered(p.Parent)
				if err != nil {
					t.Fatal(err)
				}
				if !found {
					t.Fatalf("pair %d: exact FindCovered must find the planted child", i)
				}
				if !childIDs[id] {
					t.Fatalf("pair %d: FindCovered returned unknown id %d", i, id)
				}
			}
		})
		t.Run(string(part)+"/approx", func(t *testing.T) {
			e := MustNew(Config{
				Detector: core.Config{
					Schema: schema, Mode: core.ModeApprox, Epsilon: 0.3,
					MaxCubes: 10000, TrackCovered: true,
				},
				Shards:    4,
				Partition: part,
			})
			defer e.Close()
			for _, p := range pairs {
				if _, err := e.Insert(p.Child); err != nil {
					t.Fatal(err)
				}
			}
			hits := 0
			for i, p := range pairs {
				id, found, _, err := e.FindCovered(p.Parent)
				if err != nil {
					t.Fatal(err)
				}
				if !found {
					continue // approximate misses are allowed
				}
				hits++
				covered, ok := e.Subscription(id)
				if !ok {
					t.Fatalf("pair %d: id %d does not resolve", i, id)
				}
				if !p.Parent.Covers(covered) {
					t.Errorf("pair %d: claimed covered subscription is not genuine", i)
				}
			}
			if hits < len(pairs)/2 {
				t.Errorf("reverse recall too low: %d/%d", hits, len(pairs))
			}
		})
	}
	// Approximate FindCovered without TrackCovered is an error.
	e := MustNew(Config{
		Detector:  core.Config{Schema: schema, Mode: core.ModeApprox, Epsilon: 0.3},
		Partition: PartitionPrefix,
	})
	defer e.Close()
	if _, _, _, err := e.FindCovered(pairs[0].Parent); err == nil {
		t.Error("approximate FindCovered without TrackCovered should fail")
	}
}

// TestAddBatchBulkLoad exercises the shard-grouped insert path: a cold
// batch lands whole (ids unique and resolvable, shard sizes consistent),
// no query in a cold batch observes a batch-mate (all uncovered), and a
// second batch of planted children sees the first batch's parents.
func TestAddBatchBulkLoad(t *testing.T) {
	schema := subscription.MustSchema(10, "volume", "price")
	pairs, err := workload.Covers(workload.CoverSpec{
		Schema: schema, N: 300, SlackFrac: 0.2, Seed: 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	parents := make([]*subscription.Subscription, len(pairs))
	children := make([]*subscription.Subscription, len(pairs))
	for i, p := range pairs {
		parents[i] = p.Parent
		children[i] = p.Child
	}
	for _, part := range []Partition{PartitionHash, PartitionPrefix} {
		t.Run(string(part), func(t *testing.T) {
			e := MustNew(Config{
				Detector:  core.Config{Schema: schema, Mode: core.ModeExact, Strategy: core.StrategyLinear},
				Shards:    4,
				Partition: part,
			})
			defer e.Close()
			first := e.AddBatch(parents)
			seen := make(map[uint64]bool)
			for i, r := range first {
				if r.Err != nil {
					t.Fatalf("parent %d: %v", i, r.Err)
				}
				if r.Covered {
					t.Fatalf("parent %d: cold-batch query observed a batch-mate", i)
				}
				if seen[r.ID] {
					t.Fatalf("duplicate id %d", r.ID)
				}
				seen[r.ID] = true
				got, ok := e.Subscription(r.ID)
				if !ok || !got.Equal(parents[i]) {
					t.Fatalf("parent %d: id %d does not round-trip", i, r.ID)
				}
			}
			if e.Len() != len(parents) {
				t.Fatalf("Len = %d, want %d", e.Len(), len(parents))
			}
			total := 0
			for _, n := range e.ShardSizes() {
				total += n
			}
			if total != len(parents) {
				t.Fatalf("ShardSizes sum = %d", total)
			}
			// Exact mode: every planted child must see its parent.
			for i, r := range e.AddBatch(children) {
				if r.Err != nil {
					t.Fatalf("child %d: %v", i, r.Err)
				}
				if !r.Covered {
					t.Fatalf("child %d: exact query missed its planted parent", i)
				}
			}
			// Everything must be removable (indexes in sync with stores).
			ids := make([]uint64, 0, 2*len(pairs))
			for id := range seen {
				ids = append(ids, id)
			}
			for _, err := range e.RemoveBatch(ids) {
				if err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestAddBatchBulkLoadMirror checks the bulk path keeps the mirrored
// (TrackCovered) index in sync on the routed plan.
func TestAddBatchBulkLoadMirror(t *testing.T) {
	schema := subscription.MustSchema(10, "volume", "price")
	pairs, err := workload.Covers(workload.CoverSpec{
		Schema: schema, N: 100, SlackFrac: 0.2, Seed: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	e := MustNew(Config{
		Detector: core.Config{
			Schema: schema, Mode: core.ModeApprox, Epsilon: 0.3,
			MaxCubes: 10000, TrackCovered: true,
		},
		Shards:    4,
		Partition: PartitionPrefix,
	})
	defer e.Close()
	children := make([]*subscription.Subscription, len(pairs))
	for i, p := range pairs {
		children[i] = p.Child
	}
	ids := make([]uint64, 0, len(children))
	for i, r := range e.AddBatch(children) {
		if r.Err != nil {
			t.Fatalf("child %d: %v", i, r.Err)
		}
		ids = append(ids, r.ID)
	}
	hits := 0
	for _, p := range pairs {
		_, found, _, err := e.FindCovered(p.Parent)
		if err != nil {
			t.Fatal(err)
		}
		if found {
			hits++
		}
	}
	if hits < len(pairs)/2 {
		t.Fatalf("mirror recall after bulk load too low: %d/%d", hits, len(pairs))
	}
	// Removal goes through both indexes; any desync fails here.
	for _, err := range e.RemoveBatch(ids) {
		if err != nil {
			t.Fatal(err)
		}
	}
	if e.Len() != 0 {
		t.Fatalf("Len = %d", e.Len())
	}
}

func TestEmptyBatches(t *testing.T) {
	e := MustNew(Config{Detector: core.Config{Schema: testSchema(t)}})
	defer e.Close()
	if got := e.AddBatch(nil); len(got) != 0 {
		t.Errorf("AddBatch(nil) returned %d results", len(got))
	}
	if got := e.CoverQueryBatch(nil); len(got) != 0 {
		t.Errorf("CoverQueryBatch(nil) returned %d results", len(got))
	}
	if got := e.RemoveBatch(nil); len(got) != 0 {
		t.Errorf("RemoveBatch(nil) returned %d results", len(got))
	}
}
