package engine

import (
	"errors"
	"sync"
	"testing"

	"sfccover/internal/core"
	"sfccover/internal/subscription"
)

// TestDoubleCloseAndUseAfterClose is the regression for the recovery
// paths that tear providers down: a second Close must be a specified
// no-op, and batch operations issued after Close must report
// core.ErrProviderClosed instead of panicking on the torn-down worker
// pool (the pre-fix behavior was a send on a closed channel).
func TestDoubleCloseAndUseAfterClose(t *testing.T) {
	schema := subscription.MustSchema(8, "x", "y")
	e := MustNew(Config{
		Detector: core.Config{Schema: schema, Mode: core.ModeExact, Strategy: core.StrategyLinear},
		Shards:   2,
		Workers:  2,
	})
	s := subscription.MustParse(schema, "x >= 3")
	id, err := e.Insert(s)
	if err != nil {
		t.Fatal(err)
	}

	e.Close()
	e.Close() // the regression: must not panic or hang

	for _, r := range e.AddBatch([]*subscription.Subscription{s}) {
		if !errors.Is(r.Err, core.ErrProviderClosed) {
			t.Fatalf("AddBatch after Close = %v, want ErrProviderClosed", r.Err)
		}
	}
	for _, r := range e.CoverQueryBatch([]*subscription.Subscription{s}) {
		if !errors.Is(r.Err, core.ErrProviderClosed) {
			t.Fatalf("CoverQueryBatch after Close = %v, want ErrProviderClosed", r.Err)
		}
	}
	for _, err := range e.RemoveBatch([]uint64{id}) {
		if !errors.Is(err, core.ErrProviderClosed) {
			t.Fatalf("RemoveBatch after Close = %v, want ErrProviderClosed", err)
		}
	}
	if _, err := e.InsertBatch([]*subscription.Subscription{s}); !errors.Is(err, core.ErrProviderClosed) {
		t.Fatalf("InsertBatch after Close = %v, want ErrProviderClosed", err)
	}
}

// TestCloseRacesBatches drives Close against in-flight batches: every
// batch must either complete on the live pool or fail with the typed
// error — never panic. Run with -race in CI's crash-recovery gate.
func TestCloseRacesBatches(t *testing.T) {
	schema := subscription.MustSchema(8, "x", "y")
	e := MustNew(Config{
		Detector: core.Config{Schema: schema, Mode: core.ModeExact, Strategy: core.StrategyLinear},
		Shards:   2,
		Workers:  2,
	})
	s := subscription.MustParse(schema, "x >= 3")
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				for _, r := range e.AddBatch([]*subscription.Subscription{s, s, s}) {
					if r.Err != nil && !errors.Is(r.Err, core.ErrProviderClosed) {
						t.Errorf("AddBatch mid-close: %v", r.Err)
						return
					}
				}
			}
		}()
	}
	e.Close()
	wg.Wait()
}
