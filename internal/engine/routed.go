package engine

import (
	"fmt"
	"sort"
	"sync"

	"sfccover/internal/core"
	"sfccover/internal/dominance"
	"sfccover/internal/obs"
	"sfccover/internal/subscription"
)

// routed is the shared-decomposition plan for PartitionPrefix + the SFC
// strategy: one logical index whose SFC arrays are partitioned by key
// range (dominance.ShardedIndex), plus a co-partitioned subscription
// store. A query decomposes once, outside any lock, and each cube probe
// takes only the brief read lock of the key slice it lands in — the
// "mostly lock-free" read path. Updates lock one store stripe and one
// index slice.
type routed struct {
	mode     core.Mode
	eps      float64
	maxCoord uint32
	idx      *dominance.ShardedIndex
	mirror   *dominance.ShardedIndex // non-nil iff TrackCovered
	stores   []routedStore
}

// routedStore is one store stripe, aligned with the index's key slices.
type routedStore struct {
	mu   sync.Mutex
	subs map[uint64]*subscription.Subscription // keyed by engine id
	next uint64                                // next local id, starting at 1
}

// newRouted builds the plan from the normalized detector template (whose
// MaxCubes already uses the dominance convention: 0 = unlimited).
func newRouted(det core.Config, shards int) (*routed, error) {
	schema := det.Schema
	dcfg := dominance.Config{
		Dims: schema.Dims(), Bits: schema.Bits(),
		Curve: det.Curve, Array: det.Array, Seed: det.Seed, MaxCubes: det.MaxCubes,
		CacheSize: det.DecompCacheSize, Adaptive: det.AdaptiveBudget,
	}
	idx, err := dominance.NewSharded(dcfg, shards)
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	r := &routed{
		mode:     det.Mode,
		eps:      det.Epsilon,
		maxCoord: schema.MaxValue(),
		idx:      idx,
		stores:   make([]routedStore, shards),
	}
	if det.TrackCovered {
		mcfg := dcfg
		mcfg.Seed++
		if r.mirror, err = dominance.NewSharded(mcfg, shards); err != nil {
			return nil, fmt.Errorf("engine: %w", err)
		}
	}
	for i := range r.stores {
		r.stores[i].subs = make(map[uint64]*subscription.Subscription)
		r.stores[i].next = 1
	}
	return r, nil
}

// mirrorPoint reflects a transformed point through the universe's center:
// dominance among mirrored points is reverse covering.
func (r *routed) mirrorPoint(p []uint32) []uint32 {
	out := make([]uint32, len(p))
	for i, v := range p {
		out[i] = r.maxCoord - v
	}
	return out
}

func (r *routed) shardFor(p []uint32) int { return r.idx.ShardFor(p) }

// cacheStats sums the decomposition-cache counters across the primary
// and (when present) the mirror index.
func (r *routed) cacheStats() (hits, misses uint64) {
	hits, misses = r.idx.CacheStats()
	if r.mirror != nil {
		h, m := r.mirror.CacheStats()
		hits += h
		misses += m
	}
	return hits, misses
}

func (r *routed) length() int {
	n := 0
	for i := range r.stores {
		st := &r.stores[i]
		st.mu.Lock()
		n += len(st.subs)
		st.mu.Unlock()
	}
	return n
}

// shardSizes reports the INDEX slice occupancies, not the store stripe
// sizes: the index slices are what queries probe and what rebalancing
// moves, so they are the layout skew diagnostics must observe. (Store
// stripes are assigned at insert time and never migrate — an id encodes
// its stripe — so after a rebalance the two layouts diverge by design.)
func (r *routed) shardSizes() []int {
	return r.idx.ShardSizes()
}

// rebalance implements the engine's rebalancer capability: while the
// primary index's occupancy skew exceeds target, equalize the most
// imbalanced adjacent slice pair, spending at most maxMoves boundary
// moves across the primary and (when present) the mirror index. The
// mirror indexes reflected points, so its skew is independent and it is
// rebalanced against its own occupancy.
// skew reports the worst occupancy skew across the primary and (when
// present) the mirror index — the background trigger's signal, so a
// balanced primary cannot mask a hot mirror slice.
func (r *routed) skew() float64 {
	s := core.SkewOf(r.idx.ShardSizes())
	if r.mirror != nil {
		if m := core.SkewOf(r.mirror.ShardSizes()); m > s {
			s = m
		}
	}
	return s
}

func (r *routed) rebalance(target float64, maxMoves int) core.RebalanceResult {
	res := core.RebalanceResult{SkewBefore: r.skew()}
	budget := maxMoves
	rebalanceIndex(r.idx, target, &budget, &res)
	if r.mirror != nil {
		rebalanceIndex(r.mirror, target, &budget, &res)
	}
	// Like the trigger signal, the reported skews take the worst index:
	// a pass driven by a hot mirror must not read as a no-op.
	res.SkewAfter = r.skew()
	return res
}

// rebalanceIndex drives one index toward target skew, decrementing budget
// per boundary move and folding the moves into res.
func rebalanceIndex(idx *dominance.ShardedIndex, target float64, budget *int, res *core.RebalanceResult) {
	n := idx.NumShards()
	if n < 2 {
		return
	}
	for *budget > 0 {
		sizes := idx.ShardSizes()
		if core.SkewOf(sizes) <= target {
			return
		}
		// Rank adjacent pairs by imbalance and equalize the worst one
		// that can actually move; keys can pin a pair (a single hot key
		// cannot split), in which case the next-worst pair gets its turn.
		pairs := make([]int, n-1)
		for i := range pairs {
			pairs[i] = i
		}
		sort.Slice(pairs, func(a, b int) bool {
			return pairDiff(sizes, pairs[a]) > pairDiff(sizes, pairs[b])
		})
		moved := 0
		for _, i := range pairs {
			if pairDiff(sizes, i) <= 1 {
				break
			}
			if m := idx.EqualizePair(i); m > 0 {
				moved = m
				break
			}
		}
		if moved == 0 {
			return // as balanced as the key distribution allows
		}
		res.Moves++
		res.Migrated += moved
		*budget--
	}
}

func pairDiff(sizes []int, i int) int {
	d := sizes[i] - sizes[i+1]
	if d < 0 {
		return -d
	}
	return d
}

func (r *routed) insert(s *subscription.Subscription) (uint64, error) {
	p := s.Point()
	shard := r.idx.ShardFor(p)
	st := &r.stores[shard]
	st.mu.Lock()
	defer st.mu.Unlock()
	id := encodeID(len(r.stores), shard, st.next)
	st.next++
	st.subs[id] = s.Clone()
	r.idx.Insert(p, id)
	if r.mirror != nil {
		r.mirror.Insert(r.mirrorPoint(p), id)
	}
	return id, nil
}

// insertBatch groups the batch by destination key slice and bulk-loads
// each slice: the stripe mutex and the index slice lock are each taken
// once per shard group instead of once per item. Groups load in parallel
// through the supplied runner; the lock order within a group (stripe,
// then slice) matches insert's, so the paths cannot deadlock.
func (r *routed) insertBatch(subs []*subscription.Subscription, par func(n int, fn func(i int))) ([]uint64, []error) {
	ids := make([]uint64, len(subs))
	errs := make([]error, len(subs))
	points := make([][]uint32, len(subs))
	groups := make([][]int, len(r.stores))
	for i, s := range subs {
		points[i] = s.Point()
		shard := r.idx.ShardFor(points[i])
		groups[shard] = append(groups[shard], i)
	}
	active := make([]int, 0, len(groups))
	for shard, g := range groups {
		if len(g) > 0 {
			active = append(active, shard)
		}
	}
	par(len(active), func(gi int) {
		shard := active[gi]
		group := groups[shard]
		ps := make([][]uint32, len(group))
		groupIDs := make([]uint64, len(group))
		st := &r.stores[shard]
		st.mu.Lock()
		for k, i := range group {
			id := encodeID(len(r.stores), shard, st.next)
			st.next++
			st.subs[id] = subs[i].Clone()
			ps[k] = points[i]
			groupIDs[k] = id
			ids[i] = id
		}
		r.idx.InsertBatch(ps, groupIDs)
		if r.mirror != nil {
			for k := range ps {
				ps[k] = r.mirrorPoint(ps[k])
			}
			r.mirror.InsertBatch(ps, groupIDs)
		}
		st.mu.Unlock()
	})
	return ids, errs
}

func (r *routed) remove(id uint64) error {
	shard, _ := decodeID(len(r.stores), id)
	st := &r.stores[shard]
	st.mu.Lock()
	defer st.mu.Unlock()
	s, ok := st.subs[id]
	if !ok {
		return fmt.Errorf("engine: no subscription with id %d", id)
	}
	p := s.Point()
	if !r.idx.Delete(p, id) {
		return fmt.Errorf("engine: index out of sync for id %d", id)
	}
	if r.mirror != nil && !r.mirror.Delete(r.mirrorPoint(p), id) {
		return fmt.Errorf("engine: mirror index out of sync for id %d", id)
	}
	delete(st.subs, id)
	return nil
}

func (r *routed) subscription(id uint64) (*subscription.Subscription, bool) {
	shard, _ := decodeID(len(r.stores), id)
	st := &r.stores[shard]
	st.mu.Lock()
	defer st.mu.Unlock()
	s, ok := st.subs[id]
	if !ok {
		return nil, false
	}
	return s.Clone(), true
}

// setObserver implements the backend observability hook: the sharded
// index (and its mirror) sample run-probe latencies into "run_probe".
func (r *routed) setObserver(o *obs.Observer) {
	r.idx.SetObserver(o)
	if r.mirror != nil {
		r.mirror.SetObserver(o)
	}
}

// findCover runs one shared-decomposition search; the returned ids are
// engine ids because that is what the index stores. A non-nil trace
// collects the decomposition/probe stage timings and per-slice probe
// counts inside the sharded index.
func (r *routed) findCover(s *subscription.Subscription, tr *obs.QueryTrace) (QueryResult, int) {
	switch r.mode {
	case core.ModeOff:
		return QueryResult{}, 0
	case core.ModeExact:
		return r.query(r.idx, s.Point(), 0, tr)
	default: // ModeApprox
		return r.query(r.idx, s.Point(), r.eps, tr)
	}
}

func (r *routed) findCovered(s *subscription.Subscription, tr *obs.QueryTrace) (QueryResult, int) {
	switch r.mode {
	case core.ModeOff:
		return QueryResult{}, 0
	case core.ModeExact:
		// Direct scan, like a Detector's exact FindCovered: always
		// available, O(n).
		probed := 0
		for i := range r.stores {
			st := &r.stores[i]
			st.mu.Lock()
			for id, cand := range st.subs {
				if s.Covers(cand) {
					st.mu.Unlock()
					return QueryResult{Covered: true, CoveredBy: id}, probed + 1
				}
			}
			st.mu.Unlock()
			probed++
		}
		return QueryResult{}, probed
	}
	// ModeApprox.
	if r.mirror == nil {
		return QueryResult{Err: fmt.Errorf("engine: approximate FindCovered requires Config.Detector.TrackCovered")}, 0
	}
	return r.query(r.mirror, r.mirrorPoint(s.Point()), r.eps, tr)
}

func (r *routed) query(idx *dominance.ShardedIndex, p []uint32, eps float64, tr *obs.QueryTrace) (QueryResult, int) {
	id, found, stats, err := idx.QueryTraced(p, eps, tr)
	if err != nil {
		return QueryResult{Err: err}, 0
	}
	return QueryResult{Covered: found, CoveredBy: id, Stats: stats}, 1
}
