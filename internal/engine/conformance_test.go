package engine_test

import (
	"testing"

	"sfccover/internal/core"
	"sfccover/internal/core/coretest"
	"sfccover/internal/engine"
)

// TestEngineProviderConformance runs the shared core.Provider battery
// over both partition plans: through the Provider seam an engine must be
// indistinguishable from the reference Detector.
func TestEngineProviderConformance(t *testing.T) {
	schema := coretest.Schema()
	for _, part := range []engine.Partition{engine.PartitionHash, engine.PartitionPrefix} {
		t.Run(string(part), func(t *testing.T) {
			coretest.RunProviderConformance(t, schema, func(t *testing.T) core.Provider {
				// Default (SFC) strategy: PartitionPrefix then exercises
				// the routed shared-decomposition plan through the
				// battery, PartitionHash the fan-out plan.
				return engine.MustNew(engine.Config{
					Detector:  core.Config{Schema: schema, Mode: core.ModeExact},
					Shards:    4,
					Partition: part,
					Workers:   4,
				})
			})
		})
	}
}
