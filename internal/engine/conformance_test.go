package engine_test

import (
	"testing"
	"time"

	"sfccover/internal/core"
	"sfccover/internal/core/coretest"
	"sfccover/internal/engine"
)

// TestEngineProviderConformance runs the shared core.Provider battery
// over both partition plans: through the Provider seam an engine must be
// indistinguishable from the reference Detector.
func TestEngineProviderConformance(t *testing.T) {
	schema := coretest.Schema()
	for _, part := range []engine.Partition{engine.PartitionHash, engine.PartitionPrefix} {
		t.Run(string(part), func(t *testing.T) {
			coretest.RunProviderConformance(t, schema, func(t *testing.T) core.Provider {
				// Default (SFC) strategy: PartitionPrefix then exercises
				// the routed shared-decomposition plan through the
				// battery, PartitionHash the fan-out plan.
				return engine.MustNew(engine.Config{
					Detector:  core.Config{Schema: schema, Mode: core.ModeExact},
					Shards:    4,
					Partition: part,
					Workers:   4,
				})
			})
		})
	}
}

// TestEngineConformanceMidRebalance runs the same battery against a
// prefix engine whose slice boundaries are being moved the whole time: a
// background goroutine hammers Rebalance (and the engine's own trigger is
// armed at the lowest legal threshold) while every behavioral assertion
// runs. Provider semantics must be indistinguishable from the quiescent
// engine's.
func TestEngineConformanceMidRebalance(t *testing.T) {
	schema := coretest.Schema()
	coretest.RunProviderConformance(t, schema, func(t *testing.T) core.Provider {
		e := engine.MustNew(engine.Config{
			Detector:           core.Config{Schema: schema, Mode: core.ModeExact},
			Shards:             4,
			Partition:          engine.PartitionPrefix,
			Workers:            4,
			RebalanceThreshold: 1.01,
			RebalanceInterval:  time.Millisecond,
		})
		stop := make(chan struct{})
		done := make(chan struct{})
		go func() {
			defer close(done)
			for {
				select {
				case <-stop:
					return
				default:
					if _, err := e.Rebalance(); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
		t.Cleanup(func() {
			close(stop)
			<-done
		})
		return e
	})
}
