package engine

import (
	"fmt"
	"time"

	"sfccover/internal/core"
	"sfccover/internal/dominance"
	"sfccover/internal/obs"
	"sfccover/internal/sfc"
	"sfccover/internal/subscription"
)

// fanout is the independent-shards plan: N complete core.Detectors, each
// owning a slice of the subscription set. Updates touch one shard; a
// covering query fans out across the shards — home shard first, stopping
// at the first hit — because a cover can live anywhere. Used for
// PartitionHash, and for PartitionPrefix under the non-SFC strategies
// (where there is no shared decomposition to exploit).
type fanout struct {
	dets  []*core.Detector
	place func(p []uint32) int
	// shardHist, when an observer is attached, times the per-shard
	// searches of traced queries; riding the trace sample keeps the
	// untraced hot path free of clock reads.
	shardHist *obs.Histogram
}

// setObserver implements the backend observability hook: traced
// queries time per-shard searches into "shard_search", and each
// detector wires its own index so run probes feed "run_probe".
func (f *fanout) setObserver(o *obs.Observer) {
	f.shardHist = o.Hist("shard_search")
	for _, d := range f.dets {
		d.SetObserver(o)
	}
}

// newFanout builds the plan from the validated detector template.
func newFanout(det core.Config, shards int, part Partition) (*fanout, error) {
	f := &fanout{dets: make([]*core.Detector, shards)}
	for i := range f.dets {
		sc := det
		// Spread seeds so shards build independent randomized structures;
		// stride 2 leaves room for each detector's mirror index (Seed+1).
		sc.Seed = det.Seed + int64(i)*2
		d, err := core.New(sc)
		if err != nil {
			return nil, fmt.Errorf("engine: shard %d: %w", i, err)
		}
		f.dets[i] = d
	}
	if part == PartitionPrefix {
		name := det.Curve
		if name == "" {
			name = "z"
		}
		schema := det.Schema
		curve, err := sfc.New(name, sfc.Config{Dims: schema.Dims(), Bits: schema.Bits()})
		if err != nil {
			return nil, fmt.Errorf("engine: partition curve: %w", err)
		}
		// The placement prefix mirrors the sharded index's initial layout,
		// derived from the schema's key width rather than hard-coded.
		keyLen := schema.Dims() * schema.Bits()
		prefixBits := dominance.PrefixBits(keyLen)
		f.place = func(p []uint32) int {
			top, _ := curve.Key(p).ShrN(keyLen - prefixBits).Uint64()
			return int(top * uint64(shards) >> uint(prefixBits))
		}
	} else {
		f.place = func(p []uint32) int { return hashPoint(p, shards) }
	}
	return f, nil
}

func (f *fanout) shardFor(p []uint32) int { return f.place(p) }

// cacheStats sums the decomposition-cache counters across the shard
// detectors.
func (f *fanout) cacheStats() (hits, misses uint64) {
	for _, d := range f.dets {
		h, m := d.CacheStats()
		hits += h
		misses += m
	}
	return hits, misses
}

func (f *fanout) length() int {
	n := 0
	for _, d := range f.dets {
		n += d.Len()
	}
	return n
}

func (f *fanout) shardSizes() []int {
	sizes := make([]int, len(f.dets))
	for i, d := range f.dets {
		sizes[i] = d.Len()
	}
	return sizes
}

func (f *fanout) insert(s *subscription.Subscription) (uint64, error) {
	shard := f.place(s.Point())
	local, err := f.dets[shard].Insert(s)
	if err != nil {
		return 0, err
	}
	return encodeID(len(f.dets), shard, local), nil
}

// insertBatch groups the batch by home shard and bulk-loads each shard's
// group through Detector.InsertBatch — one detector lock acquisition per
// shard instead of one per item. Shard groups load in parallel through
// the supplied runner.
func (f *fanout) insertBatch(subs []*subscription.Subscription, par func(n int, fn func(i int))) ([]uint64, []error) {
	ids := make([]uint64, len(subs))
	errs := make([]error, len(subs))
	groups := make([][]int, len(f.dets))
	for i, s := range subs {
		shard := f.place(s.Point())
		groups[shard] = append(groups[shard], i)
	}
	active := make([]int, 0, len(groups))
	for shard, g := range groups {
		if len(g) > 0 {
			active = append(active, shard)
		}
	}
	par(len(active), func(gi int) {
		shard := active[gi]
		group := groups[shard]
		batch := make([]*subscription.Subscription, len(group))
		for k, i := range group {
			batch[k] = subs[i]
		}
		local, err := f.dets[shard].InsertBatch(batch)
		for k, i := range group {
			if err != nil {
				errs[i] = err
				continue
			}
			ids[i] = encodeID(len(f.dets), shard, local[k])
		}
	})
	return ids, errs
}

func (f *fanout) remove(id uint64) error {
	shard, local := decodeID(len(f.dets), id)
	return f.dets[shard].Remove(local)
}

func (f *fanout) subscription(id uint64) (*subscription.Subscription, bool) {
	shard, local := decodeID(len(f.dets), id)
	return f.dets[shard].Subscription(local)
}

// findCover fans the query out: home shard first, then the rest, stopping
// at the first hit. With a trace attached, the aggregate shard-search
// time lands in one "shard_search" stage (Count = shards probed).
func (f *fanout) findCover(s *subscription.Subscription, tr *obs.QueryTrace) (QueryResult, int) {
	home := f.place(s.Point())
	var res QueryResult
	probed := 0
	var spent time.Duration
	for i := 0; i < len(f.dets); i++ {
		shard := (home + i) % len(f.dets)
		var t0 time.Time
		if tr != nil {
			t0 = time.Now()
		}
		id, found, stats, err := f.dets[shard].FindCoverTraced(s, tr)
		if tr != nil {
			d := time.Since(t0)
			f.shardHist.Observe(d)
			spent += d
		}
		if err != nil {
			return QueryResult{Err: err}, probed
		}
		probed++
		tr.TouchSlice(shard)
		mergeStats(&res.Stats, stats, i == 0)
		if found {
			res.Covered = true
			res.CoveredBy = encodeID(len(f.dets), shard, id)
			break
		}
	}
	tr.AddStage("shard_search", spent, probed)
	return res, probed
}

// findCovered fans the reverse query out over every shard.
func (f *fanout) findCovered(s *subscription.Subscription, tr *obs.QueryTrace) (QueryResult, int) {
	var res QueryResult
	probed := 0
	var spent time.Duration
	for shard, d := range f.dets {
		var t0 time.Time
		if tr != nil {
			t0 = time.Now()
		}
		id, found, stats, err := d.FindCoveredTraced(s, tr)
		if tr != nil {
			dt := time.Since(t0)
			f.shardHist.Observe(dt)
			spent += dt
		}
		if err != nil {
			return QueryResult{Err: err}, probed
		}
		probed++
		tr.TouchSlice(shard)
		mergeStats(&res.Stats, stats, shard == 0)
		if found {
			res.Covered = true
			res.CoveredBy = encodeID(len(f.dets), shard, id)
			break
		}
	}
	tr.AddStage("shard_search", spent, probed)
	return res, probed
}
