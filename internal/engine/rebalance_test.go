package engine

import (
	"errors"
	"sync"
	"testing"
	"time"

	"sfccover/internal/core"
	"sfccover/internal/subscription"
	"sfccover/internal/workload"
)

// Approximate mode with a tight probe budget keeps the searches cheap on
// mid-domain rectangles (exhaustive SFC search over the 60-bit key space
// can enumerate astronomically many cubes). Answers remain deterministic:
// the cube sequence is a pure function of the query, and every probe
// returns the globally smallest (key, id) of its range regardless of the
// slice layout — which is what makes the bit-identical-across-rebalance
// assertions below meaningful.
func approxDetector(schema *subscription.Schema, trackCovered bool) core.Config {
	return core.Config{
		Schema: schema, Mode: core.ModeApprox, Epsilon: 0.3,
		MaxCubes: 5000, TrackCovered: trackCovered,
	}
}

// hotspotSubs builds the adversarial clustered population that skews
// curve-prefix slices.
func hotspotSubs(t testing.TB, schema *subscription.Schema, n int, seed int64) []*subscription.Subscription {
	t.Helper()
	subs, err := workload.Subscriptions(workload.SubSpec{
		Schema: schema, N: n, Dist: workload.DistHotspot,
		WidthFrac: 0.02, HotspotFrac: 0.9, HotspotWidthFrac: 0.04, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return subs
}

func prefixEngine(t testing.TB, schema *subscription.Schema, cfg Config) *Engine {
	t.Helper()
	cfg.Detector.Schema = schema
	cfg.Partition = PartitionPrefix
	if cfg.Shards == 0 {
		cfg.Shards = 8
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

// TestSkewDetectionOnPrefixPlan is the regression pinning that the
// SkewRatio metric actually detects a clustered workload on the prefix
// plan — the trigger signal the rebalancer is driven by.
func TestSkewDetectionOnPrefixPlan(t *testing.T) {
	schema := testSchema(t)
	// ModeOff: only placement matters for skew detection, so skip the
	// covering queries entirely.
	e := prefixEngine(t, schema, Config{Detector: core.Config{Schema: schema, Mode: core.ModeOff}, Workers: 4})
	subs := hotspotSubs(t, schema, 2000, 11)
	for _, r := range e.AddBatch(subs) {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	ps := e.Stats()
	if ps.SkewRatio < 4 {
		t.Fatalf("hotspot workload must skew the prefix slices: SkewRatio = %.2f, sizes %v", ps.SkewRatio, ps.ShardSizes)
	}
	if ps.Rebalances != 0 || ps.BoundaryMoves != 0 || ps.MigratedEntries != 0 {
		t.Fatalf("no rebalance ran, counters must be zero: %+v", ps)
	}
}

// TestRebalanceConvergesAndPreservesAnswers: after manual rebalancing the
// skew converges toward 1.0 and every cover answer is bit-identical to
// the pre-rebalance answers (exact mode makes them deterministic).
func TestRebalanceConvergesAndPreservesAnswers(t *testing.T) {
	schema := testSchema(t)
	e := prefixEngine(t, schema, Config{
		Detector: approxDetector(schema, true),
		Workers:  4,
	})
	subs := hotspotSubs(t, schema, 2000, 12)
	for _, r := range e.AddBatch(subs) {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	probes := hotspotSubs(t, schema, 300, 13)
	type answer struct {
		id    uint64
		found bool
	}
	before := make([]answer, len(probes))
	beforeCovered := make([]answer, len(probes))
	for i, p := range probes {
		id, found, _, err := e.FindCover(p)
		if err != nil {
			t.Fatal(err)
		}
		before[i] = answer{id, found}
		id, found, _, err = e.FindCovered(p)
		if err != nil {
			t.Fatal(err)
		}
		beforeCovered[i] = answer{id, found}
	}

	skewBefore := e.Stats().SkewRatio
	var last core.RebalanceResult
	totalMoves := 0
	for pass := 0; pass < 20; pass++ {
		res, err := e.Rebalance()
		if err != nil {
			t.Fatal(err)
		}
		totalMoves += res.Moves
		last = res
		if res.Moves == 0 {
			break
		}
	}
	if totalMoves == 0 {
		t.Fatal("rebalance moved nothing on a skewed engine")
	}
	ps := e.Stats()
	if ps.SkewRatio >= skewBefore {
		t.Fatalf("SkewRatio %.2f did not improve on %.2f", ps.SkewRatio, skewBefore)
	}
	if ps.SkewRatio > 2 {
		t.Fatalf("SkewRatio should converge toward 1.0, still %.2f (sizes %v)", ps.SkewRatio, ps.ShardSizes)
	}
	if last.SkewAfter > last.SkewBefore {
		t.Fatalf("pass reported worsening skew: %+v", last)
	}
	if ps.Rebalances == 0 || ps.BoundaryMoves != totalMoves {
		t.Fatalf("counters out of sync: %d rebalances, %d moves (want %d)", ps.Rebalances, ps.BoundaryMoves, totalMoves)
	}
	if e.Len() != len(subs) {
		t.Fatalf("Len = %d after rebalance, want %d", e.Len(), len(subs))
	}

	for i, p := range probes {
		id, found, _, err := e.FindCover(p)
		if err != nil {
			t.Fatal(err)
		}
		if (answer{id, found}) != before[i] {
			t.Fatalf("probe %d: FindCover = (%d,%v) after rebalance, want (%d,%v)", i, id, found, before[i].id, before[i].found)
		}
		id, found, _, err = e.FindCovered(p)
		if err != nil {
			t.Fatal(err)
		}
		if (answer{id, found}) != beforeCovered[i] {
			t.Fatalf("probe %d: FindCovered = (%d,%v) after rebalance, want (%d,%v)", i, id, found, beforeCovered[i].id, beforeCovered[i].found)
		}
	}
}

// TestRebalanceRemovalAfterMigration: ids assigned before a rebalance
// must keep resolving and removing after entries migrated between slices.
func TestRebalanceRemovalAfterMigration(t *testing.T) {
	schema := testSchema(t)
	e := prefixEngine(t, schema, Config{Detector: approxDetector(schema, false), Workers: 4})
	subs := hotspotSubs(t, schema, 1200, 14)
	res := e.AddBatch(subs)
	for pass := 0; pass < 20; pass++ {
		r, err := e.Rebalance()
		if err != nil {
			t.Fatal(err)
		}
		if r.Moves == 0 {
			break
		}
	}
	for i, r := range res {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if got, ok := e.Subscription(r.ID); !ok || !got.Equal(subs[i]) {
			t.Fatalf("id %d no longer resolves after rebalance", r.ID)
		}
		if err := e.Remove(r.ID); err != nil {
			t.Fatalf("Remove(%d) after rebalance: %v", r.ID, err)
		}
	}
	if e.Len() != 0 {
		t.Fatalf("Len = %d after removing everything", e.Len())
	}
}

// TestRebalanceUnsupported: hash partitions have no movable boundaries.
func TestRebalanceUnsupported(t *testing.T) {
	schema := testSchema(t)
	e := MustNew(Config{Detector: core.Config{Schema: schema}, Shards: 4, Partition: PartitionHash, Workers: 2})
	defer e.Close()
	if _, err := e.Rebalance(); !errors.Is(err, core.ErrRebalanceUnsupported) {
		t.Fatalf("Rebalance on hash partition = %v, want ErrRebalanceUnsupported", err)
	}
}

func TestRebalanceConfigValidation(t *testing.T) {
	schema := testSchema(t)
	if _, err := New(Config{Detector: core.Config{Schema: schema}, RebalanceThreshold: 0.5}); err == nil {
		t.Fatal("threshold <= 1 must fail")
	}
	if _, err := New(Config{Detector: core.Config{Schema: schema}, RebalanceMaxMoves: -1}); err == nil {
		t.Fatal("negative move cap must fail")
	}
}

// TestBackgroundRebalanceTrigger: with a threshold and a short interval,
// a skewed engine must rebalance itself without a manual call.
func TestBackgroundRebalanceTrigger(t *testing.T) {
	schema := testSchema(t)
	e := prefixEngine(t, schema, Config{
		Detector:           approxDetector(schema, false),
		Workers:            4,
		RebalanceThreshold: 2,
		RebalanceInterval:  20 * time.Millisecond,
	})
	subs := hotspotSubs(t, schema, 1500, 15)
	for _, r := range e.AddBatch(subs) {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	// The trigger is armed from construction, so under a slow load (-race)
	// it may fire mid-load; either the skew is still visible or the
	// background pass has already started fixing it — both prove the
	// workload skewed.
	if ps := e.Stats(); ps.SkewRatio < 2 && ps.Rebalances == 0 {
		t.Fatalf("precondition: workload not skewed (%.2f) and no rebalance ran", ps.SkewRatio)
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		ps := e.Stats()
		if ps.Rebalances > 0 && ps.SkewRatio < 2 {
			return // triggered and converged below the threshold
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("background rebalancer never converged: %+v", e.Stats())
}

// TestConcurrentQueriesDuringRebalance hammers batch queries while
// rebalance passes run, comparing every answer against an identical
// engine that never rebalances; meaningful under -race and the
// acceptance check that answers stay bit-identical mid-migration.
func TestConcurrentQueriesDuringRebalance(t *testing.T) {
	schema := testSchema(t)
	mk := func() *Engine {
		// A tight probe budget keeps the -race run cheap; the coverage
		// target is the probe/migration retry protocol, not search depth.
		det := approxDetector(schema, false)
		det.MaxCubes = 500
		return prefixEngine(t, schema, Config{Detector: det, Workers: 4})
	}
	subject, control := mk(), mk()
	subs := hotspotSubs(t, schema, 800, 16)
	for _, e := range []*Engine{subject, control} {
		for _, r := range e.AddBatch(subs) {
			if r.Err != nil {
				t.Fatal(r.Err)
			}
		}
	}
	probes := hotspotSubs(t, schema, 60, 17)
	want := control.CoverQueryBatch(probes)

	stop := make(chan struct{})
	rebalDone := make(chan struct{})
	go func() {
		defer close(rebalDone)
		for {
			select {
			case <-stop:
				return
			default:
				if _, err := subject.Rebalance(); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 10; round++ {
				got := subject.CoverQueryBatch(probes)
				for i := range got {
					if got[i].Err != nil {
						t.Errorf("round %d probe %d: %v", round, i, got[i].Err)
						return
					}
					if got[i].Covered != want[i].Covered || got[i].CoveredBy != want[i].CoveredBy {
						t.Errorf("round %d probe %d: (%v,%d) != control (%v,%d)",
							round, i, got[i].Covered, got[i].CoveredBy, want[i].Covered, want[i].CoveredBy)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	<-rebalDone
}
