// Package engine scales covering detection past a single Detector by
// partitioning the subscription set across N shards and serving batched
// operations from a fixed worker pool. Two partitioning strategies select
// two different execution plans:
//
//   - PartitionHash spreads subscriptions uniformly (FNV-1a over the
//     transformed point) across N independent core.Detector shards. A
//     covering query is global — a cover of s may live in any shard — so
//     each query fans out across the shards (home shard first, stopping at
//     the first hit). Shard sizes stay balanced under any workload, and
//     batches parallelize across the per-shard locks.
//
//   - PartitionPrefix splits the space filling curve's key space into N
//     contiguous slices (with the SFC strategy; other strategies fall back
//     to the fan-out plan with curve-prefix placement). Because a standard
//     cube occupies one contiguous key range, a query decomposes its
//     region once — outside any lock — and routes each cube's range to the
//     one or two slices it intersects: the expensive enumeration is never
//     duplicated across shards, and the read path contends only on brief
//     per-probe read locks. This is dominance.ShardedIndex underneath.
//
// Either way the per-shard approximation guarantee survives aggregation:
// every shard reports only genuine covers, hence so does the engine, and
// in exact mode the engine's answer matches a single detector's.
package engine

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"sfccover/internal/core"
	"sfccover/internal/dominance"
	"sfccover/internal/obs"
	"sfccover/internal/subscription"
)

// Partition selects how subscriptions are assigned to shards.
type Partition string

const (
	// PartitionHash assigns each subscription by a hash of its transformed
	// point: uniform shard sizes, whole-query fan-out.
	PartitionHash Partition = "hash"
	// PartitionPrefix assigns each subscription by the most significant
	// bits of its SFC key: curve-adjacent subscriptions share a shard and
	// (with the SFC strategy) queries share one decomposition across
	// shards, probing only the slices each cube range intersects.
	PartitionPrefix Partition = "prefix"
)

// Config parameterizes an Engine.
type Config struct {
	// Detector is the per-shard detector template (schema, mode, epsilon,
	// strategy, curve, ...). Seed is re-derived per shard so shards build
	// independent index structures. TrackCovered additionally maintains
	// mirrored indexes so FindCovered works in approximate mode.
	Detector core.Config
	// Shards is the number of partitions (default DefaultShards).
	Shards int
	// Partition selects the sharding strategy (default PartitionHash).
	Partition Partition
	// Workers sizes the batch worker pool (default GOMAXPROCS).
	Workers int
	// RebalanceThreshold arms the background rebalancer: when the
	// occupancy skew ratio (ProviderStats.SkewRatio) reaches it, the
	// engine rebalances slice boundaries until skew falls to the
	// hysteresis target 1 + (threshold-1)/2. Must exceed 1 when set;
	// 0 disables the background trigger (manual Rebalance always works).
	// Only the curve-prefix plan has movable boundaries; the setting is
	// inert on hash partitions, which stay balanced by construction.
	RebalanceThreshold float64
	// RebalanceInterval is the background rebalancer's poll period
	// (default DefaultRebalanceInterval when a threshold is set).
	RebalanceInterval time.Duration
	// RebalanceMaxMoves caps boundary moves per rebalance pass — the
	// migration-rate cap bounding how much index churn one pass (or one
	// background tick) may cause (default 2×Shards).
	RebalanceMaxMoves int
	// Obs is the engine's observer: latency histograms at every tier,
	// sampled query traces and the slow-query log. Leave nil to have the
	// engine build one with default settings; telemetry is on by default
	// and cheap enough to stay on (set TelemetryOff to disable it
	// entirely).
	Obs *obs.Observer
	// TelemetryOff disables all latency recording and tracing. The
	// benchmark suite uses it to pin the telemetry overhead bound; it is
	// not meant for production configurations.
	TelemetryOff bool
}

// DefaultShards is the shard count used when Config leaves Shards zero.
const DefaultShards = 8

// DefaultRebalanceInterval is the background rebalancer's poll period
// when Config sets a threshold but no interval.
const DefaultRebalanceInterval = 2 * time.Second

// Totals aggregates engine-level counters: logical engine operations, so
// a single query that fanned out to four shards adds one to Queries and
// four to ShardSearches.
type Totals struct {
	// Queries is the number of logical cover (and covered) queries served.
	Queries int
	// Hits is how many found a cover.
	Hits int
	// RunsProbed and CubesGenerated sum the search costs, in the paper's
	// cost units.
	RunsProbed     int
	CubesGenerated int
	// ShardSearches is the number of per-shard searches issued; the ratio
	// ShardSearches/Queries measures fan-out (1.0 = every query resolved
	// in its home shard; always 1.0 on the prefix+SFC plan, which shares
	// one search across shards).
	ShardSearches int
}

// QueryResult is one CoverQueryBatch outcome. For queries that fanned out,
// Stats aggregates the search cost over every shard probed: RunsProbed and
// CubesGenerated are summed and VolumeFraction is the minimum over probed
// shards (the conservative per-shard guarantee). It is an alias of the
// core type so engine batches satisfy core.BatchQuerier directly.
type QueryResult = core.QueryResult

// AddResult is one AddBatch outcome: the id assigned to the inserted
// subscription plus the result of the pre-insert covering query. (The
// single-item Add returns plain values instead, matching core.Provider.)
// It is an alias of the core type so engine batches satisfy
// core.BatchWriter directly.
type AddResult = core.AddResult

// backend is one of the two execution plans behind the Engine API.
// findCover/findCovered return the result plus the number of per-shard
// searches issued. insertBatch groups its inserts by destination shard
// and bulk-loads each shard under one lock acquisition, parallelizing the
// shard groups through the supplied runner.
type backend interface {
	insert(s *subscription.Subscription) (uint64, error)
	insertBatch(subs []*subscription.Subscription, par func(n int, fn func(i int))) ([]uint64, []error)
	remove(id uint64) error
	subscription(id uint64) (*subscription.Subscription, bool)
	findCover(s *subscription.Subscription, tr *obs.QueryTrace) (QueryResult, int)
	findCovered(s *subscription.Subscription, tr *obs.QueryTrace) (QueryResult, int)
	shardFor(p []uint32) int
	length() int
	shardSizes() []int
	// cacheStats sums the decomposition-cache hit/miss counters across
	// the plan's SFC indexes (zeros when the strategy has none or the
	// cache is disabled).
	cacheStats() (hits, misses uint64)
	// setObserver attaches latency histograms to the plan's search
	// internals (shard searches, run probes). Called once at
	// construction, before the engine serves traffic.
	setObserver(o *obs.Observer)
}

// rebalancer is the optional backend capability behind Engine.Rebalance:
// only the routed plan has movable slice boundaries.
type rebalancer interface {
	// rebalance moves boundaries until occupancy skew falls to target or
	// maxMoves boundary moves have run, and reports the pass.
	rebalance(target float64, maxMoves int) core.RebalanceResult
	// skew is the trigger signal: the worst occupancy skew across every
	// index with movable boundaries (primary AND mirror — a balanced
	// primary must not mask a hot mirror slice).
	skew() float64
}

// Engine is a sharded, concurrent covering-detection engine. All methods
// are safe for concurrent use; batch items are processed in parallel with
// no ordering guarantee between items of the same batch.
type Engine struct {
	cfg    Config
	schema *subscription.Schema
	be     backend

	tasks     chan func()
	closeOnce sync.Once
	wg        sync.WaitGroup
	// closeMu guards the worker pool's lifetime: batch operations hold the
	// read side for their whole run, Close takes the write side before
	// tearing the pool down, and closed flips under it — so a batch op
	// either completes on a live pool or observes closed and reports
	// core.ErrProviderClosed, never a send on a closed channel.
	closeMu sync.RWMutex
	closed  bool

	stopRebalance chan struct{}
	rebalanceWG   sync.WaitGroup
	// rebalanceMu serializes whole passes (manual calls racing the
	// background loop), so per-pass counters and results stay coherent.
	rebalanceMu sync.Mutex

	queries       atomic.Int64
	hits          atomic.Int64
	runsProbed    atomic.Int64
	cubes         atomic.Int64
	shardSearches atomic.Int64

	rebalances      atomic.Int64
	boundaryMoves   atomic.Int64
	migratedEntries atomic.Int64

	// obs is the engine's observer; nil when Config.TelemetryOff. The
	// histogram pointers below are resolved once at construction so the
	// hot paths never touch the registry lock.
	obs          *obs.Observer
	hQuery       *obs.Histogram
	hCovered     *obs.Histogram
	hInsert      *obs.Histogram
	hRemove      *obs.Histogram
	hAddBatch    *obs.Histogram
	hInsertBatch *obs.Histogram
	hQueryBatch  *obs.Histogram
	hRemoveBatch *obs.Histogram
}

// New builds an Engine.
func New(cfg Config) (*Engine, error) {
	if cfg.Detector.Schema == nil {
		return nil, fmt.Errorf("engine: config needs a schema")
	}
	if cfg.Shards == 0 {
		cfg.Shards = DefaultShards
	}
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("engine: invalid shard count %d", cfg.Shards)
	}
	if cfg.Partition == "" {
		cfg.Partition = PartitionHash
	}
	if cfg.Partition != PartitionHash && cfg.Partition != PartitionPrefix {
		return nil, fmt.Errorf("engine: unknown partition strategy %q", cfg.Partition)
	}
	if cfg.Workers == 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("engine: invalid worker count %d", cfg.Workers)
	}
	if cfg.RebalanceThreshold != 0 && cfg.RebalanceThreshold <= 1 {
		return nil, fmt.Errorf("engine: rebalance threshold %v must exceed 1 (a skew ratio)", cfg.RebalanceThreshold)
	}
	if cfg.RebalanceThreshold != 0 && cfg.RebalanceInterval == 0 {
		cfg.RebalanceInterval = DefaultRebalanceInterval
	}
	if cfg.RebalanceMaxMoves < 0 {
		return nil, fmt.Errorf("engine: invalid rebalance move cap %d", cfg.RebalanceMaxMoves)
	}
	if cfg.RebalanceMaxMoves == 0 {
		cfg.RebalanceMaxMoves = 2 * cfg.Shards
	}
	// One template detector validates the config and resolves its defaults
	// (strategy, MaxCubes) for both plans.
	template, err := core.New(cfg.Detector)
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	norm := template.Config()

	e := &Engine{
		cfg:    cfg,
		schema: cfg.Detector.Schema,
		tasks:  make(chan func(), cfg.Workers),
	}
	if cfg.Partition == PartitionPrefix && norm.Strategy == core.StrategySFC {
		// norm's MaxCubes uses the dominance convention (0 = unlimited).
		e.be, err = newRouted(norm, cfg.Shards)
	} else {
		// The shard detectors re-normalize the raw config themselves;
		// passing norm would re-interpret "unlimited" (0) as the default.
		e.be, err = newFanout(cfg.Detector, cfg.Shards, cfg.Partition)
	}
	if err != nil {
		return nil, err
	}
	if !cfg.TelemetryOff {
		if cfg.Obs == nil {
			cfg.Obs = obs.New(obs.Config{})
			e.cfg.Obs = cfg.Obs
		}
		e.obs = cfg.Obs
		e.hQuery = e.obs.Hist("engine_query")
		e.hCovered = e.obs.Hist("engine_covered")
		e.hInsert = e.obs.Hist("engine_insert")
		e.hRemove = e.obs.Hist("engine_remove")
		e.hAddBatch = e.obs.Hist("engine_add_batch")
		e.hInsertBatch = e.obs.Hist("engine_insert_batch")
		e.hQueryBatch = e.obs.Hist("engine_query_batch")
		e.hRemoveBatch = e.obs.Hist("engine_remove_batch")
		e.be.setObserver(e.obs)
	}
	e.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go func() {
			defer e.wg.Done()
			for task := range e.tasks {
				task()
			}
		}()
	}
	if _, ok := e.be.(rebalancer); ok && cfg.RebalanceThreshold > 0 {
		e.stopRebalance = make(chan struct{})
		e.rebalanceWG.Add(1)
		go e.rebalanceLoop()
	}
	return e, nil
}

// rebalanceLoop is the background trigger: every RebalanceInterval it
// reads the occupancy skew and, once it crosses RebalanceThreshold, runs
// one bounded rebalance pass down to the hysteresis target. The
// threshold/target gap keeps the loop from oscillating around the
// trigger, and RebalanceMaxMoves bounds the migration each tick may do.
func (e *Engine) rebalanceLoop() {
	defer e.rebalanceWG.Done()
	ticker := time.NewTicker(e.cfg.RebalanceInterval)
	defer ticker.Stop()
	rb := e.be.(rebalancer) // vetted before the loop was started
	for {
		select {
		case <-e.stopRebalance:
			return
		case <-ticker.C:
			if rb.skew() >= e.cfg.RebalanceThreshold {
				e.Rebalance() //nolint:errcheck // the backend was vetted at start
			}
		}
	}
}

// rebalanceTarget is the hysteresis target a pass rebalances down to.
func (e *Engine) rebalanceTarget() float64 {
	if e.cfg.RebalanceThreshold > 1 {
		return 1 + (e.cfg.RebalanceThreshold-1)/2
	}
	// Manual rebalancing with no configured threshold: drive as close to
	// balanced as the key distribution allows.
	return 1
}

// Rebalance runs one bounded rebalance pass: while occupancy skew exceeds
// the hysteresis target, the most imbalanced adjacent slice pair is
// equalized, up to Config.RebalanceMaxMoves boundary moves. Cover answers
// are unaffected — a migration moves where entries are indexed, never
// what a query returns — and queries keep running during the pass,
// blocking only on the short per-pair write barriers. Engines on the
// hash partition (or non-SFC strategies) return
// core.ErrRebalanceUnsupported: their fan-out plan has no movable
// boundaries (and hash placement cannot skew by key locality).
func (e *Engine) Rebalance() (core.RebalanceResult, error) {
	rb, ok := e.be.(rebalancer)
	if !ok {
		return core.RebalanceResult{}, core.ErrRebalanceUnsupported
	}
	e.rebalanceMu.Lock()
	res := rb.rebalance(e.rebalanceTarget(), e.cfg.RebalanceMaxMoves)
	e.rebalanceMu.Unlock()
	if res.Moves > 0 {
		e.rebalances.Add(1)
		e.boundaryMoves.Add(int64(res.Moves))
		e.migratedEntries.Add(int64(res.Migrated))
	}
	return res, nil
}

// MustNew is New for known-good configurations.
func MustNew(cfg Config) *Engine {
	e, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return e
}

// Close stops the worker pool and the background rebalancer, waiting for
// in-flight batches to drain first. Close is idempotent — a second call is
// a specified no-op — and batch operations issued after it fail with
// core.ErrProviderClosed instead of panicking on the torn-down pool.
func (e *Engine) Close() {
	e.closeOnce.Do(func() {
		if e.stopRebalance != nil {
			close(e.stopRebalance)
			e.rebalanceWG.Wait()
		}
		e.closeMu.Lock()
		e.closed = true
		e.closeMu.Unlock()
		close(e.tasks)
		e.wg.Wait()
	})
}

// guarded runs fn under the close guard: fn executes with the worker pool
// pinned live, or not at all (returning core.ErrProviderClosed after
// Close).
func (e *Engine) guarded(fn func()) error {
	e.closeMu.RLock()
	defer e.closeMu.RUnlock()
	if e.closed {
		return core.ErrProviderClosed
	}
	fn()
	return nil
}

// NumShards returns the configured shard count.
func (e *Engine) NumShards() int { return e.cfg.Shards }

// Config returns the engine's configuration with defaults resolved
// (Shards, Partition, Workers; the detector template as given). Service
// layers use it to derive compatible side indexes — the sfcd server
// builds its per-link namespace detectors from Config().Detector.
func (e *Engine) Config() Config { return e.cfg }

// PartitionStrategy returns the configured partition strategy.
func (e *Engine) PartitionStrategy() Partition { return e.cfg.Partition }

// Mode returns the per-shard detection mode.
func (e *Engine) Mode() core.Mode { return e.cfg.Detector.Mode }

// Schema returns the engine's attribute schema.
func (e *Engine) Schema() *subscription.Schema { return e.schema }

// Len returns the total number of held subscriptions.
func (e *Engine) Len() int { return e.be.length() }

// ShardSizes returns the per-shard subscription counts, for balance
// diagnostics.
func (e *Engine) ShardSizes() []int { return e.be.shardSizes() }

// shardFor maps a subscription's transformed point to its home shard.
func (e *Engine) shardFor(p []uint32) int { return e.be.shardFor(p) }

// record folds one logical query's outcome into the engine counters.
//
//sfc:hotpath
func (e *Engine) record(res QueryResult, searches int) {
	e.queries.Add(1)
	if res.Covered {
		e.hits.Add(1)
	}
	e.runsProbed.Add(int64(res.Stats.RunsProbed))
	e.cubes.Add(int64(res.Stats.CubesGenerated))
	e.shardSearches.Add(int64(searches))
}

func (e *Engine) checkSchema(s *subscription.Subscription) error {
	if s.Schema() != e.schema {
		return fmt.Errorf("engine: subscription schema differs from engine schema")
	}
	return nil
}

// findCover runs one logical covering query and records it: counters
// always, latency when telemetry is on, and a full trace record for the
// 1-in-TraceSample queries the observer elects (slow ones land in the
// slow-query log).
//
//sfc:hotpath
func (e *Engine) findCover(s *subscription.Subscription) QueryResult {
	return e.findCoverTraced(s, e.obs.SampleTrace("query"))
}

// findCoverHot is findCover for batch items. On machines without a fast
// clock path a time.Now pair costs a measurable slice of a hot covering
// query, so batch items skip per-item timing unless the observer elects
// them for tracing: the engine_query histogram then holds every
// single-op call exactly plus a 1-in-TraceSample sample of batch
// traffic (unbiased, only the count is scaled), while the batch-level
// histogram still times every batch call.
//
//sfc:hotpath
func (e *Engine) findCoverHot(s *subscription.Subscription) QueryResult {
	tr := e.obs.SampleTrace("query")
	if tr != nil {
		return e.findCoverTraced(s, tr)
	}
	if err := e.checkSchema(s); err != nil {
		return QueryResult{Err: err}
	}
	res, searches := e.be.findCover(s, nil)
	if res.Err != nil {
		return res
	}
	e.record(res, searches)
	return res
}

// findCoverTraced is findCover with an explicit (possibly nil) trace.
func (e *Engine) findCoverTraced(s *subscription.Subscription, tr *obs.QueryTrace) QueryResult {
	if err := e.checkSchema(s); err != nil {
		return QueryResult{Err: err}
	}
	var t0 time.Time
	if e.hQuery != nil || tr != nil {
		t0 = time.Now()
	}
	res, searches := e.be.findCover(s, tr)
	if res.Err != nil {
		return res
	}
	e.record(res, searches)
	if e.hQuery != nil || tr != nil {
		d := time.Since(t0)
		e.hQuery.Observe(d)
		if tr != nil {
			tr.Cost = dominance.CostOf(res.Stats)
			e.obs.FinishTrace(tr, d)
		}
	}
	return res
}

// TraceCover runs one covering query with tracing forced on and returns
// the sealed trace alongside the result: per-stage timings, per-slice
// probe counts and the query's cost stats. It backs the daemon's trace
// wire op. The query still counts toward every engine total and
// histogram; the trace also lands in the slow-query log when it
// qualifies.
func (e *Engine) TraceCover(s *subscription.Subscription) (QueryResult, *obs.QueryTrace) {
	tr := e.obs.StartTrace("query")
	if tr == nil {
		// Telemetry is off; trace this one query anyway — the caller
		// asked for it explicitly.
		tr = &obs.QueryTrace{Op: "query", Start: time.Now()}
	}
	res := e.findCoverTraced(s, tr)
	if tr.Total == 0 && res.Err == nil {
		tr.Total = time.Since(tr.Start)
	}
	return res, tr
}

// FindCover searches the shards for a subscription covering s. The
// approximate-mode guarantee is preserved: a reported cover is always
// genuine.
func (e *Engine) FindCover(s *subscription.Subscription) (id uint64, found bool, stats dominance.Stats, err error) {
	res := e.findCover(s)
	return res.CoveredBy, res.Covered, res.Stats, res.Err
}

// FindCovered searches for a subscription that s covers — the reverse
// question, used at unsubscription time. Exact mode scans directly;
// approximate mode requires Config.Detector.TrackCovered (mirrored
// indexes) and may miss, but never misreports.
func (e *Engine) FindCovered(s *subscription.Subscription) (id uint64, found bool, stats dominance.Stats, err error) {
	if err := e.checkSchema(s); err != nil {
		return 0, false, stats, err
	}
	tr := e.obs.SampleTrace("covered")
	var t0 time.Time
	if e.hCovered != nil || tr != nil {
		t0 = time.Now()
	}
	res, searches := e.be.findCovered(s, tr)
	if res.Err != nil {
		return 0, false, res.Stats, res.Err
	}
	e.record(res, searches)
	if e.hCovered != nil || tr != nil {
		d := time.Since(t0)
		e.hCovered.Observe(d)
		if tr != nil {
			tr.Cost = dominance.CostOf(res.Stats)
			e.obs.FinishTrace(tr, d)
		}
	}
	return res.CoveredBy, res.Covered, res.Stats, nil
}

// Observer returns the engine's observer (nil when Config.TelemetryOff):
// the latency histogram registry and the slow-query log. Service layers
// adopt it so daemon-level op timings land in the same registry as the
// engine's own stages.
func (e *Engine) Observer() *obs.Observer { return e.obs }

// Add runs the router arrival path: query for a cover, then insert s into
// its home shard either way. The signature matches core.Provider (and the
// single Detector), so routers can swap backends freely.
func (e *Engine) Add(s *subscription.Subscription) (id uint64, covered bool, coveredBy uint64, err error) {
	res := e.findCover(s)
	if res.Err != nil {
		return 0, false, 0, res.Err
	}
	id, err = e.be.insert(s)
	if err != nil {
		return 0, false, 0, err
	}
	return id, res.Covered, res.CoveredBy, nil
}

// Insert stores s unconditionally (no covering query) and returns its id.
func (e *Engine) Insert(s *subscription.Subscription) (uint64, error) {
	if err := e.checkSchema(s); err != nil {
		return 0, err
	}
	defer observeSince(e.hInsert, time.Now())
	return e.be.insert(s)
}

// Remove deletes a previously inserted subscription by engine id.
func (e *Engine) Remove(id uint64) error {
	defer observeSince(e.hRemove, time.Now())
	return e.be.remove(id)
}

// Subscription returns the held subscription with the given engine id.
func (e *Engine) Subscription(id uint64) (*subscription.Subscription, bool) {
	return e.be.subscription(id)
}

// Totals returns a snapshot of the engine-level counters.
func (e *Engine) Totals() Totals {
	return Totals{
		Queries:        int(e.queries.Load()),
		Hits:           int(e.hits.Load()),
		RunsProbed:     int(e.runsProbed.Load()),
		CubesGenerated: int(e.cubes.Load()),
		ShardSearches:  int(e.shardSearches.Load()),
	}
}

// Stats implements core.Provider: the engine totals plus the per-shard
// occupancy layout, including the max/min slice ratio that makes
// curve-prefix skew observable before rebalancing.
func (e *Engine) Stats() core.ProviderStats {
	tot := e.Totals()
	ps := core.ProviderStats{
		Queries:         tot.Queries,
		Hits:            tot.Hits,
		RunsProbed:      tot.RunsProbed,
		CubesGenerated:  tot.CubesGenerated,
		ShardSearches:   tot.ShardSearches,
		Rebalances:      int(e.rebalances.Load()),
		BoundaryMoves:   int(e.boundaryMoves.Load()),
		MigratedEntries: int(e.migratedEntries.Load()),
	}
	ps.DecompCacheHits, ps.DecompCacheMisses = e.be.cacheStats()
	ps.SetShardSizes(e.be.shardSizes())
	return ps
}

var _ core.Provider = (*Engine)(nil)
var _ core.BatchQuerier = (*Engine)(nil)
var _ core.BatchWriter = (*Engine)(nil)
var _ core.Rebalancer = (*Engine)(nil)
var _ core.BulkInserter = (*Engine)(nil)

// run executes fn(0..n-1) on the worker pool, in contiguous chunks to
// amortize dispatch, and waits for completion.
func (e *Engine) run(n int, fn func(i int)) {
	if n == 0 {
		return
	}
	chunks := 2 * e.cfg.Workers
	if chunks > n {
		chunks = n
	}
	if chunks <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(chunks)
	for c := 0; c < chunks; c++ {
		lo, hi := c*n/chunks, (c+1)*n/chunks
		e.tasks <- func() {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}
	}
	wg.Wait()
}

// AddBatch runs the arrival path for every subscription: all covering
// queries run concurrently first, then the inserts are grouped by
// destination shard and bulk-loaded one shard at a time — one lock
// acquisition per shard instead of one per item. Results align with the
// input slice; failures are reported per item. Batch items are mutually
// unordered and no item's query observes another batch item's insert
// (covering misses are safe, so that is a correct outcome).
func (e *Engine) AddBatch(subs []*subscription.Subscription) []AddResult {
	defer observeSince(e.hAddBatch, time.Now())
	out := make([]AddResult, len(subs))
	err := e.guarded(func() {
		e.run(len(subs), func(i int) { out[i].QueryResult = e.findCoverHot(subs[i]) })
		valid := make([]int, 0, len(subs))
		batch := make([]*subscription.Subscription, 0, len(subs))
		for i := range out {
			if out[i].Err == nil {
				valid = append(valid, i)
				batch = append(batch, subs[i])
			}
		}
		ids, errs := e.be.insertBatch(batch, e.run)
		for k, i := range valid {
			if errs[k] != nil {
				out[i].Err = errs[k]
				continue
			}
			out[i].ID = ids[k]
		}
	})
	if err != nil {
		for i := range out {
			out[i] = AddResult{QueryResult: QueryResult{Err: err}}
		}
	}
	return out
}

// InsertBatch stores every subscription unconditionally — no pre-insert
// covering queries — grouped by destination shard and bulk-loaded one
// shard at a time, and returns the assigned ids aligned with the input.
// This is the core.BulkInserter recovery path: rebuilding an engine from a
// persisted subscription dump pays the sorted bulk-load cost, not one
// covering query per entry.
func (e *Engine) InsertBatch(subs []*subscription.Subscription) ([]uint64, error) {
	defer observeSince(e.hInsertBatch, time.Now())
	for _, s := range subs {
		if err := e.checkSchema(s); err != nil {
			return nil, err
		}
	}
	var ids []uint64
	var errs []error
	if err := e.guarded(func() { ids, errs = e.be.insertBatch(subs, e.run) }); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return ids, nil
}

// CoverQueryBatch runs FindCover for every subscription concurrently,
// without inserting anything. Results align with the input slice.
func (e *Engine) CoverQueryBatch(subs []*subscription.Subscription) []QueryResult {
	defer observeSince(e.hQueryBatch, time.Now())
	out := make([]QueryResult, len(subs))
	err := e.guarded(func() {
		e.run(len(subs), func(i int) { out[i] = e.findCoverHot(subs[i]) })
	})
	if err != nil {
		for i := range out {
			out[i] = QueryResult{Err: err}
		}
	}
	return out
}

// RemoveBatch deletes the given ids concurrently. The returned slice
// aligns with the input; entries are nil on success.
func (e *Engine) RemoveBatch(ids []uint64) []error {
	defer observeSince(e.hRemoveBatch, time.Now())
	out := make([]error, len(ids))
	err := e.guarded(func() {
		e.run(len(ids), func(i int) { out[i] = e.Remove(ids[i]) })
	})
	if err != nil {
		for i := range out {
			out[i] = err
		}
	}
	return out
}

// --- shared helpers -----------------------------------------------------

// observeSince records the time elapsed since t0 into h; h may be nil
// (telemetry off), which makes the deferred call a cheap no-op.
func observeSince(h *obs.Histogram, t0 time.Time) {
	if h != nil {
		h.Observe(time.Since(t0))
	}
}

// encodeID folds a shard index into a shard-local id; decodeID inverts
// it. Local ids start at 1, so engine ids are always >= the shard count.
func encodeID(shards, shard int, local uint64) uint64 {
	return local*uint64(shards) + uint64(shard)
}

func decodeID(shards int, id uint64) (shard int, local uint64) {
	n := uint64(shards)
	return int(id % n), id / n
}

// hashPoint is the PartitionHash placement function.
func hashPoint(p []uint32, n int) int {
	h := fnv.New64a()
	var buf [4]byte
	for _, v := range p {
		buf[0], buf[1], buf[2], buf[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
		h.Write(buf[:])
	}
	return int(h.Sum64() % uint64(n))
}

// mergeStats folds one shard's search cost into an aggregate.
func mergeStats(agg *dominance.Stats, s dominance.Stats, first bool) {
	agg.RunsProbed += s.RunsProbed
	agg.CubesGenerated += s.CubesGenerated
	agg.Found = agg.Found || s.Found
	if first {
		agg.M = s.M
		agg.AspectRatio = s.AspectRatio
		agg.VolumeFraction = s.VolumeFraction
	} else if s.VolumeFraction < agg.VolumeFraction {
		agg.VolumeFraction = s.VolumeFraction
	}
}
