package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewRectValidation(t *testing.T) {
	if _, err := NewRect(nil, nil); err == nil {
		t.Error("empty corners should fail")
	}
	if _, err := NewRect([]uint32{1}, []uint32{1, 2}); err == nil {
		t.Error("dimension mismatch should fail")
	}
	if _, err := NewRect([]uint32{5}, []uint32{4}); err == nil {
		t.Error("inverted range should fail")
	}
	r, err := NewRect([]uint32{1, 2}, []uint32{3, 2})
	if err != nil {
		t.Fatalf("valid rect rejected: %v", err)
	}
	if r.Dims() != 2 || r.Side(0) != 3 || r.Side(1) != 1 {
		t.Errorf("unexpected rect: %v", r)
	}
}

func TestRectCopiesCorners(t *testing.T) {
	lo := []uint32{1, 1}
	hi := []uint32{2, 2}
	r := MustRect(lo, hi)
	lo[0] = 99
	if r.Lo[0] != 1 {
		t.Error("NewRect must copy its corner slices")
	}
}

func TestVolume(t *testing.T) {
	r := MustRect([]uint32{0, 0}, []uint32{255, 255})
	if got := r.Volume(); got != 65536 {
		t.Errorf("Volume = %v, want 65536", got)
	}
	unit := MustRect([]uint32{7}, []uint32{7})
	if got := unit.Volume(); got != 1 {
		t.Errorf("unit volume = %v", got)
	}
}

func TestContainsAndIntersects(t *testing.T) {
	r := MustRect([]uint32{2, 2}, []uint32{5, 5})
	tests := []struct {
		p    []uint32
		want bool
	}{
		{[]uint32{2, 2}, true},
		{[]uint32{5, 5}, true},
		{[]uint32{3, 4}, true},
		{[]uint32{1, 3}, false},
		{[]uint32{3, 6}, false},
	}
	for _, tt := range tests {
		if got := r.Contains(tt.p); got != tt.want {
			t.Errorf("Contains(%v) = %v", tt.p, got)
		}
	}

	other := MustRect([]uint32{5, 5}, []uint32{9, 9})
	if !r.Intersects(other) {
		t.Error("touching rects must intersect (closed boxes)")
	}
	disjoint := MustRect([]uint32{6, 0}, []uint32{9, 1})
	if r.Intersects(disjoint) {
		t.Error("disjoint rects must not intersect")
	}
	inner := MustRect([]uint32{3, 3}, []uint32{4, 4})
	if !r.ContainsRect(inner) || inner.ContainsRect(r) {
		t.Error("ContainsRect misbehaves")
	}
}

func TestIntersectsIsSymmetricAndReflexive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	randRect := func() Rect {
		lo := []uint32{uint32(rng.Intn(16)), uint32(rng.Intn(16))}
		hi := []uint32{lo[0] + uint32(rng.Intn(8)), lo[1] + uint32(rng.Intn(8))}
		return MustRect(lo, hi)
	}
	for i := 0; i < 200; i++ {
		a, b := randRect(), randRect()
		if a.Intersects(b) != b.Intersects(a) {
			t.Fatalf("asymmetric intersection: %v %v", a, b)
		}
		if !a.Intersects(a) {
			t.Fatalf("rect should intersect itself: %v", a)
		}
		if a.ContainsRect(b) && !a.Intersects(b) {
			t.Fatalf("containment implies intersection: %v %v", a, b)
		}
	}
}

func TestExtremalValidation(t *testing.T) {
	if _, err := NewExtremal(nil, 4); err == nil {
		t.Error("empty lens should fail")
	}
	if _, err := NewExtremal([]uint64{1}, 0); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := NewExtremal([]uint64{0}, 4); err == nil {
		t.Error("zero length should fail")
	}
	if _, err := NewExtremal([]uint64{17}, 4); err == nil {
		t.Error("length > 2^k should fail")
	}
	if _, err := NewExtremal([]uint64{16}, 4); err != nil {
		t.Error("length == 2^k must be allowed")
	}
}

func TestExtremalRect(t *testing.T) {
	e := MustExtremal([]uint64{3, 16}, 4)
	r := e.Rect()
	want := MustRect([]uint32{13, 0}, []uint32{15, 15})
	if !r.Equal(want) {
		t.Errorf("Rect() = %v, want %v", r, want)
	}
	if e.Volume() != 48 {
		t.Errorf("Volume = %v", e.Volume())
	}
}

func TestAspectRatio(t *testing.T) {
	tests := []struct {
		lens []uint64
		want int
	}{
		{[]uint64{8, 8, 8}, 0},
		{[]uint64{8, 15}, 0},  // both 4-bit
		{[]uint64{7, 8}, 1},   // 3-bit vs 4-bit
		{[]uint64{1, 255}, 7}, // 1-bit vs 8-bit
		{[]uint64{255, 1, 8}, 7},
	}
	for _, tt := range tests {
		e := MustExtremal(tt.lens, 10)
		if got := e.AspectRatio(); got != tt.want {
			t.Errorf("AspectRatio(%v) = %d, want %d", tt.lens, got, tt.want)
		}
	}
}

func TestTruncateContainment(t *testing.T) {
	// R(t(ℓ,m)) is contained in R(ℓ) and volumes shrink monotonically in m.
	f := func(a, b uint16, mRaw uint8) bool {
		la := uint64(a%1023) + 1
		lb := uint64(b%1023) + 1
		m := int(mRaw%10) + 1
		e := MustExtremal([]uint64{la, lb}, 10)
		tr := e.Truncate(m)
		if tr.Empty() {
			return false // m >= 1 keeps the top bit, never empty
		}
		return tr.Len[0] <= la && tr.Len[1] <= lb &&
			e.Rect().ContainsRect(tr.Rect())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSubMatchesBitPrefix(t *testing.T) {
	e := MustExtremal([]uint64{0b1011, 0b110}, 4)
	s := e.Sub(1)
	if s.Len[0] != 0b1010 || s.Len[1] != 0b110 {
		t.Errorf("Sub(1) lens = %v", s.Len)
	}
	s3 := e.Sub(3)
	if s3.Len[0] != 0b1000 || s3.Len[1] != 0 {
		t.Errorf("Sub(3) lens = %v", s3.Len)
	}
	if !s3.Empty() {
		t.Error("Sub(3) should be empty (dimension collapsed)")
	}
}

func TestQueryRegion(t *testing.T) {
	e := QueryRegion([]uint32{0, 15, 7}, 4)
	want := []uint64{16, 1, 9}
	for i := range want {
		if e.Len[i] != want[i] {
			t.Errorf("QueryRegion len[%d] = %d, want %d", i, e.Len[i], want[i])
		}
	}
	r := e.Rect()
	if !r.Contains([]uint32{0, 15, 7}) {
		t.Error("query point must be inside its own query region")
	}
	if !r.Contains([]uint32{15, 15, 15}) {
		t.Error("max corner must be inside the query region")
	}
}

func TestDominates(t *testing.T) {
	if !Dominates([]uint32{3, 4}, []uint32{3, 4}) {
		t.Error("point dominates itself")
	}
	if !Dominates([]uint32{5, 9}, []uint32{3, 4}) {
		t.Error("componentwise-greater dominates")
	}
	if Dominates([]uint32{5, 3}, []uint32{3, 4}) {
		t.Error("mixed comparison must not dominate")
	}
}

func TestDominatesIffInQueryRegion(t *testing.T) {
	// p dominates q  <=>  p lies in QueryRegion(q).
	f := func(p0, p1, q0, q1 uint8) bool {
		p := []uint32{uint32(p0), uint32(p1)}
		q := []uint32{uint32(q0), uint32(q1)}
		return Dominates(p, q) == QueryRegion(q, 8).Rect().Contains(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
