// Package geom models the d-dimensional discrete universe of the paper:
// axis-aligned rectangles of cells in [0, 2^k - 1]^d, the extremal
// rectangles R(ℓ) anchored at the maximum corner, volumes and the paper's
// bit-length aspect ratio α = b(ℓ_max) − b(ℓ_min).
package geom

import (
	"fmt"

	"sfccover/internal/bits"
)

// Rect is a closed axis-aligned box of cells: Lo[i] <= x_i <= Hi[i].
// The zero value is not a valid rectangle; construct with NewRect.
type Rect struct {
	Lo, Hi []uint32
}

// NewRect builds a rectangle from inclusive corner coordinates. It returns
// an error when the slices disagree in length, are empty, or lo > hi on any
// dimension.
func NewRect(lo, hi []uint32) (Rect, error) {
	if len(lo) == 0 || len(lo) != len(hi) {
		return Rect{}, fmt.Errorf("geom: corner dimension mismatch: %d vs %d", len(lo), len(hi))
	}
	for i := range lo {
		if lo[i] > hi[i] {
			return Rect{}, fmt.Errorf("geom: inverted range on dimension %d: [%d,%d]", i, lo[i], hi[i])
		}
	}
	return Rect{Lo: append([]uint32(nil), lo...), Hi: append([]uint32(nil), hi...)}, nil
}

// MustRect is NewRect for statically known-good literals (tests, examples).
func MustRect(lo, hi []uint32) Rect {
	r, err := NewRect(lo, hi)
	if err != nil {
		panic(err)
	}
	return r
}

// Dims returns the number of dimensions.
func (r Rect) Dims() int { return len(r.Lo) }

// Side returns the side length (cell count) along dimension i.
func (r Rect) Side(i int) uint64 { return uint64(r.Hi[i]) - uint64(r.Lo[i]) + 1 }

// Volume returns the number of cells in r as a float64. Universes are
// capped at d*k <= 512 bits but practical volumes stay far below the
// float64 overflow threshold of 2^1024, so float64 is exact enough for the
// (1−ε) coverage accounting the algorithm performs.
func (r Rect) Volume() float64 {
	v := 1.0
	for i := range r.Lo {
		v *= float64(r.Side(i))
	}
	return v
}

// Contains reports whether the cell p lies inside r.
func (r Rect) Contains(p []uint32) bool {
	for i := range r.Lo {
		if p[i] < r.Lo[i] || p[i] > r.Hi[i] {
			return false
		}
	}
	return true
}

// ContainsRect reports whether o is entirely inside r.
func (r Rect) ContainsRect(o Rect) bool {
	for i := range r.Lo {
		if o.Lo[i] < r.Lo[i] || o.Hi[i] > r.Hi[i] {
			return false
		}
	}
	return true
}

// Intersects reports whether r and o share at least one cell.
func (r Rect) Intersects(o Rect) bool {
	for i := range r.Lo {
		if o.Hi[i] < r.Lo[i] || o.Lo[i] > r.Hi[i] {
			return false
		}
	}
	return true
}

// Equal reports whether r and o are the same box.
func (r Rect) Equal(o Rect) bool {
	if r.Dims() != o.Dims() {
		return false
	}
	for i := range r.Lo {
		if r.Lo[i] != o.Lo[i] || r.Hi[i] != o.Hi[i] {
			return false
		}
	}
	return true
}

func (r Rect) String() string { return fmt.Sprintf("Rect{lo=%v hi=%v}", r.Lo, r.Hi) }

// Extremal is the paper's extremal rectangle R(ℓ): the box whose corner is
// pinned at (2^k−1, ..., 2^k−1) and whose side length along dimension i is
// Len[i], with 1 <= Len[i] <= 2^k.
type Extremal struct {
	Len []uint64
	K   int
}

// NewExtremal validates side lengths against the universe size 2^k.
func NewExtremal(lens []uint64, k int) (Extremal, error) {
	if len(lens) == 0 {
		return Extremal{}, fmt.Errorf("geom: extremal rectangle needs at least one dimension")
	}
	if k <= 0 || k > 32 {
		return Extremal{}, fmt.Errorf("geom: universe bits k=%d out of range [1,32]", k)
	}
	for i, l := range lens {
		if l < 1 || l > 1<<uint(k) {
			return Extremal{}, fmt.Errorf("geom: side %d length %d out of range [1,2^%d]", i, l, k)
		}
	}
	return Extremal{Len: append([]uint64(nil), lens...), K: k}, nil
}

// MustExtremal is NewExtremal for known-good literals.
func MustExtremal(lens []uint64, k int) Extremal {
	e, err := NewExtremal(lens, k)
	if err != nil {
		panic(err)
	}
	return e
}

// Rect materializes the extremal rectangle as a concrete box:
// dimension i spans [2^k − Len[i], 2^k − 1].
func (e Extremal) Rect() Rect {
	max := uint64(1) << uint(e.K)
	lo := make([]uint32, len(e.Len))
	hi := make([]uint32, len(e.Len))
	for i, l := range e.Len {
		lo[i] = uint32(max - l)
		hi[i] = uint32(max - 1)
	}
	return Rect{Lo: lo, Hi: hi}
}

// Volume returns the cell count of R(ℓ).
func (e Extremal) Volume() float64 {
	v := 1.0
	for _, l := range e.Len {
		v *= float64(l)
	}
	return v
}

// AspectRatio returns α = b(ℓ_max) − b(ℓ_min), the paper's bit-length
// aspect ratio (≈ log2 of the classical longest/shortest ratio).
func (e Extremal) AspectRatio() int {
	bmin, bmax := bits.B(e.Len[0]), bits.B(e.Len[0])
	for _, l := range e.Len[1:] {
		b := bits.B(l)
		if b < bmin {
			bmin = b
		}
		if b > bmax {
			bmax = b
		}
	}
	return bmax - bmin
}

// Truncate returns R(t(ℓ,m)): every side length truncated to its m most
// significant bits (Section 3.1). The result is contained in e and, by
// Lemma 3.2, covers at least a (1 − 2d/2^m) fraction of e's volume.
func (e Extremal) Truncate(m int) Extremal {
	return Extremal{Len: bits.TVec(e.Len, m), K: e.K}
}

// Sub returns R(S_i(ℓ)) — side lengths restricted to bits i and above —
// which Lemma 3.4 identifies as the region occupied by all standard cubes
// of side 2^i or larger in the greedy partition. The zero-length case
// (S_i(ℓ_j) = 0 for some j) yields an empty region; Empty reports it.
func (e Extremal) Sub(i int) Extremal {
	return Extremal{Len: bits.SVec(e.Len, i), K: e.K}
}

// Empty reports whether any side length is zero (possible only for
// truncated/sub rectangles, since NewExtremal requires positive lengths).
func (e Extremal) Empty() bool {
	for _, l := range e.Len {
		if l == 0 {
			return true
		}
	}
	return false
}

// QueryRegion builds the extremal rectangle of the dominance query at point
// q: the region [q_1, 2^k−1] × ... × [q_d, 2^k−1], whose side lengths are
// ℓ_i = 2^k − q_i.
func QueryRegion(q []uint32, k int) Extremal {
	lens := make([]uint64, len(q))
	max := uint64(1) << uint(k)
	for i, x := range q {
		lens[i] = max - uint64(x)
	}
	return Extremal{Len: lens, K: k}
}

// Dominates reports whether point a dominates point b: a_i >= b_i on every
// dimension. This is the covering test after the Edelsbrunner–Overmars
// transform.
func Dominates(a, b []uint32) bool {
	for i := range a {
		if a[i] < b[i] {
			return false
		}
	}
	return true
}
