package persist_test

import (
	"fmt"
	"testing"
	"time"

	"sfccover/internal/core"
	"sfccover/internal/engine"
	"sfccover/internal/persist"
	"sfccover/internal/subscription"
	"sfccover/internal/workload"
)

// The cold-start benchmarks compare the two recovery sources: a data dir
// holding one snapshot (the sorted dump feeds the engine's bulk-load
// path directly) versus the same population as raw WAL records (replay
// reconstructs the mirror map first, then bulk-loads). Run with -bench
// Recover; the numbers are recorded in EXPERIMENTS.md.

func benchSubs(b *testing.B, schema *subscription.Schema, n int) []*subscription.Subscription {
	b.Helper()
	subs, err := workload.Subscriptions(workload.SubSpec{
		Schema: schema, N: n, Dist: workload.DistUniform, WidthFrac: 0.05, Seed: 42,
	})
	if err != nil {
		b.Fatal(err)
	}
	return subs
}

// seedDir populates a fresh data dir so that n subscriptions survive and
// returns it. churn additionally writes (and removes) 2n transient
// subscriptions first — dead log weight that only compaction can shed.
// snapshotted selects whether the final state lands as one snapshot (WAL
// compacted away) or stays as raw WAL records.
func seedDir(b *testing.B, schema *subscription.Schema, subs []*subscription.Subscription, snapshotted, churn bool) string {
	b.Helper()
	dir := b.TempDir()
	st, err := persist.Open(dir, schema, persist.Options{})
	if err != nil {
		b.Fatal(err)
	}
	det := core.MustNew(core.Config{Schema: schema, Mode: core.ModeOff})
	d, err := st.Durable("", det)
	if err != nil {
		b.Fatal(err)
	}
	if churn {
		transient := benchSubs(b, schema, 2*len(subs))
		var sids []uint64
		for _, r := range d.AddBatch(transient) {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
			sids = append(sids, r.ID)
		}
		for _, err := range d.RemoveBatch(sids) {
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	for _, r := range d.AddBatch(subs) {
		if r.Err != nil {
			b.Fatal(r.Err)
		}
	}
	if snapshotted {
		if err := d.Snapshot(); err != nil {
			b.Fatal(err)
		}
	}
	d.Close()
	if err := st.Close(); err != nil {
		b.Fatal(err)
	}
	return dir
}

func benchRecover(b *testing.B, snapshotted, churn bool) {
	schema := subscription.MustSchema(10, "volume", "price")
	for _, n := range []int{10000, 50000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			subs := benchSubs(b, schema, n)
			dir := seedDir(b, schema, subs, snapshotted, churn)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st, err := persist.Open(dir, schema, persist.Options{})
				if err != nil {
					b.Fatal(err)
				}
				eng := engine.MustNew(engine.Config{
					Detector:  core.Config{Schema: schema, Mode: core.ModeOff},
					Shards:    8,
					Partition: engine.PartitionPrefix,
				})
				d, err := st.Durable("", eng)
				if err != nil {
					b.Fatal(err)
				}
				if d.Len() != n {
					b.Fatalf("recovered %d of %d", d.Len(), n)
				}
				b.StopTimer()
				d.Close()
				st.Close()
				b.StartTimer()
			}
		})
	}
}

// BenchmarkRecoverFromSnapshot measures boot from a compacted dir: one
// snapshot file, no WAL replay.
func BenchmarkRecoverFromSnapshot(b *testing.B) { benchRecover(b, true, false) }

// BenchmarkRecoverFromWAL measures boot from raw log records: full
// segment replay, then the same bulk load.
func BenchmarkRecoverFromWAL(b *testing.B) { benchRecover(b, false, false) }

// BenchmarkRecoverFromChurnedWAL measures boot from a log carrying 4n
// dead records (2n transient adds + their removes) ahead of the n live
// ones — the case periodic snapshots exist for.
func BenchmarkRecoverFromChurnedWAL(b *testing.B) { benchRecover(b, false, true) }

// BenchmarkRecoverFromChurnedSnapshot is the same churned history after
// one snapshot compacted it away.
func BenchmarkRecoverFromChurnedSnapshot(b *testing.B) { benchRecover(b, true, true) }

// BenchmarkDurableAddBatch measures the write-path overhead the WAL adds
// to the engine's batched arrival path.
func BenchmarkDurableAddBatch(b *testing.B) {
	schema := subscription.MustSchema(10, "volume", "price")
	subs := benchSubs(b, schema, 10000)
	for _, durable := range []bool{false, true} {
		name := "engine-bare"
		if durable {
			name = "engine-durable"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				eng := engine.MustNew(engine.Config{
					Detector:  core.Config{Schema: schema, Mode: core.ModeOff},
					Shards:    8,
					Partition: engine.PartitionPrefix,
				})
				var p core.Provider = eng
				var st *persist.Store
				if durable {
					var err error
					st, err = persist.Open(b.TempDir(), schema, persist.Options{})
					if err != nil {
						b.Fatal(err)
					}
					p, err = st.Durable("", eng)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.StartTimer()
				for _, r := range core.AddAll(p, subs) {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
				b.StopTimer()
				p.Close()
				if st != nil {
					st.Close()
				}
				b.StartTimer()
			}
		})
	}
}

// BenchmarkDurableInsertSync compares the three WAL durability settings
// on the per-append path group commit exists for: a stream of single
// inserts. "sync" pays one fsync per append, "group" (SyncEvery) returns
// after the buffered write and lets the store's sync loop fold the whole
// window into one fsync, "nosync" leaves flushing to the OS entirely.
// Run with -bench InsertSync; the margin is recorded in EXPERIMENTS.md.
func BenchmarkDurableInsertSync(b *testing.B) {
	schema := subscription.MustSchema(10, "volume", "price")
	for _, mode := range []struct {
		name string
		opts persist.Options
	}{
		{"sync", persist.Options{Sync: true}},
		{"group-5ms", persist.Options{SyncEvery: 5 * time.Millisecond}},
		{"nosync", persist.Options{}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			subs := benchSubs(b, schema, 4096)
			st, err := persist.Open(b.TempDir(), schema, mode.opts)
			if err != nil {
				b.Fatal(err)
			}
			det := core.MustNew(core.Config{Schema: schema, Mode: core.ModeOff})
			d, err := st.Durable("", det)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := d.Insert(subs[i%len(subs)]); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			d.Close()
			if err := st.Close(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkDurableAddBatchSync is the batch-path companion: AddBatch
// already folds its whole batch into one segment write (and one fsync
// under Sync), so group commit's win here comes from folding *batches*
// into one sync window rather than records. Run with -bench AddBatchSync.
func BenchmarkDurableAddBatchSync(b *testing.B) {
	schema := subscription.MustSchema(10, "volume", "price")
	const batch = 64
	for _, mode := range []struct {
		name string
		opts persist.Options
	}{
		{"sync", persist.Options{Sync: true}},
		{"group-5ms", persist.Options{SyncEvery: 5 * time.Millisecond}},
		{"nosync", persist.Options{}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			subs := benchSubs(b, schema, 4096)
			st, err := persist.Open(b.TempDir(), schema, mode.opts)
			if err != nil {
				b.Fatal(err)
			}
			det := core.MustNew(core.Config{Schema: schema, Mode: core.ModeOff})
			d, err := st.Durable("", det)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				lo := (i * batch) % (len(subs) - batch)
				for _, r := range d.AddBatch(subs[lo : lo+batch]) {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
			b.StopTimer()
			d.Close()
			if err := st.Close(); err != nil {
				b.Fatal(err)
			}
		})
	}
}
