// Package persist makes subscription state durable: a write-ahead log of
// add/remove records riding the binary subscription wire encoding
// (length-prefixed, CRC32-protected, segment-rotated) plus point-in-time
// snapshots, with log compaction after each snapshot. What is persisted is
// the subscription set itself — never the derived cube/curve index, which
// recovery rebuilds through the engine's sorted bulk-load path — so the
// durable form stays compact and survives index-layout changes.
//
// A Store owns one data dir and every link namespace inside it; a
// DurableProvider wraps any core.Provider with logging and recovery for
// one link. Crash tolerance is the package's contract: appends are
// sequential, so a crash leaves at most a torn tail record in the newest
// segment, which replay drops silently; any damage a crash cannot explain
// (broken records mid-stream, checksum-failing snapshots) is refused with
// ErrCorrupt instead of silently dropping subscriptions. Snapshots land
// via temp-file + fsync + atomic rename, and old segments are deleted only
// after the snapshot that supersedes them is durable, so recovery always
// has a consistent base to start from.
package persist

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"syscall"
	"time"

	"sfccover/internal/subscription"
)

// DefaultSegmentBytes is the WAL rotation threshold when Options leaves
// SegmentBytes zero.
const DefaultSegmentBytes = 4 << 20

// Options parameterizes a Store.
type Options struct {
	// SegmentBytes rotates the WAL to a fresh segment once the current one
	// crosses this size (0 = DefaultSegmentBytes).
	SegmentBytes int64
	// Sync fsyncs the segment after every append. Off by default: the
	// process-crash guarantee (torn-tail tolerance) holds either way, Sync
	// additionally bounds loss on power failure at a heavy throughput
	// cost. Snapshots are always fsynced regardless.
	Sync bool
	// SyncEvery enables group commit: appends return after the write
	// lands in the file (no per-append fsync) and a store-owned ticker
	// fsyncs the segment at most once per interval, coalescing every
	// append in the window into one Sync. The process-crash guarantee is
	// identical to Sync (the OS holds the written bytes); power-failure
	// loss is bounded by the interval instead of zero. Mutually exclusive
	// with Sync. Rotation, snapshots and Close still fsync immediately.
	SyncEvery time.Duration
	// WriteHook, when non-nil, observes — and may veto — every WAL write
	// before it reaches the file: the crash battery uses it to fail
	// appends after a chosen byte. A vetoed write behaves like a crash at
	// that byte: the record never lands and the append reports the hook's
	// error. Production code leaves it nil.
	WriteHook func(segment string, offset int64, p []byte) error
}

// StoreStats is the durability counter snapshot.
type StoreStats struct {
	// Snapshots counts snapshots taken over the store's lifetime.
	Snapshots int
	// WALRecords and WALBytes sum the records and bytes appended to the
	// log over the store's lifetime (compaction never decrements them).
	WALRecords int
	WALBytes   int64
	// Links is the number of link namespaces holding at least one
	// subscription; Entries the total subscription count across them.
	Links   int
	Entries int
}

// Store is the durable home of every link namespace under one data dir.
// It keeps an authoritative in-memory mirror of the persisted state (link
// -> sid -> wire payload) so snapshots serialize without consulting the
// wrapped providers, and serializes WAL appends from any number of
// DurableProviders. All methods are safe for concurrent use.
type Store struct {
	dir    string
	schema *subscription.Schema
	opts   Options

	mu      sync.Mutex
	state   map[string]map[uint64][]byte
	w       *walWriter
	wrapped map[string]bool
	lock    *os.File // flock'd LOCK file: one live store per data dir
	closed  bool

	snapshots  int
	walRecords int
	walBytes   int64
	// dirtyRecords counts records not yet covered by a snapshot: appends
	// since the last one, plus anything replayed from the WAL at Open.
	// Snapshot early-returns at zero, so an idle daemon's periodic
	// snapshots cost nothing instead of rewriting full state forever.
	dirtyRecords int
	hasSnapshot  bool

	// pos is the replication stream position: the count of WAL records
	// ever applied in this dir's history. It survives restarts (snapshots
	// carry it as basePos, replay advances it) and is what a follower
	// hands back to resume the primary's stream. Never decremented.
	pos uint64
	// ring buffers the most recent records so followers resuming from a
	// slightly stale position replay from memory instead of forcing a
	// full-state reset.
	ring    replRing
	tailers map[*Tailer]struct{}

	// syncStop/syncDone bracket the group-commit goroutine when
	// SyncEvery is set; nil otherwise.
	syncStop chan struct{}
	syncDone chan struct{}
}

// Open recovers the durable state under dir (creating it when absent) and
// readies the store for appends. Recovery loads the newest snapshot —
// whose schema header must match schema, or ErrSchemaMismatch — and
// replays every WAL segment from the snapshot's cutoff on, tolerating a
// torn tail record in the newest segment and refusing anything worse with
// ErrCorrupt. Appends after Open go to a fresh segment.
func Open(dir string, schema *subscription.Schema, opts Options) (*Store, error) {
	if schema == nil {
		return nil, fmt.Errorf("persist: open needs a schema")
	}
	if opts.SegmentBytes == 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if opts.SegmentBytes < 0 {
		return nil, fmt.Errorf("persist: invalid segment size %d", opts.SegmentBytes)
	}
	if opts.SyncEvery < 0 {
		return nil, fmt.Errorf("persist: invalid sync interval %v", opts.SyncEvery)
	}
	if opts.Sync && opts.SyncEvery > 0 {
		return nil, fmt.Errorf("persist: Sync and SyncEvery are mutually exclusive")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: creating data dir: %w", err)
	}
	// One live store per data dir: a second opener (two daemons pointed
	// at the same -data-dir) would recover a stale mirror, hand out
	// overlapping sids and compact the first store's segments away. The
	// flock turns that silent divergence into a clean refusal, and dies
	// with the process, so a crash never wedges the dir.
	lock, err := os.OpenFile(filepath.Join(dir, "LOCK"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("persist: opening data dir lock: %w", err)
	}
	if err := syscall.Flock(int(lock.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		lock.Close()
		return nil, fmt.Errorf("persist: data dir %s is held by another live store: %w", dir, err)
	}
	st := &Store{
		dir:     dir,
		schema:  schema,
		opts:    opts,
		state:   make(map[string]map[uint64][]byte),
		wrapped: make(map[string]bool),
		lock:    lock,
		tailers: make(map[*Tailer]struct{}),
	}
	maxSeq, err := st.recover()
	if err != nil {
		lock.Close()
		return nil, err
	}
	st.ring.reset(st.pos)
	st.w = &walWriter{dir: dir, opts: opts}
	if err := st.w.openSegment(maxSeq + 1); err != nil {
		lock.Close()
		return nil, err
	}
	if opts.SyncEvery > 0 {
		st.syncStop = make(chan struct{})
		st.syncDone = make(chan struct{})
		go st.syncLoop()
	}
	return st, nil
}

// syncLoop is the group-commit ticker: one fsync per interval covers
// every append in the window. A failed sync wedges the writer, so the
// loop itself never needs to report anything — the next append does.
func (st *Store) syncLoop() {
	defer close(st.syncDone)
	t := time.NewTicker(st.opts.SyncEvery)
	defer t.Stop()
	for {
		select {
		case <-st.syncStop:
			return
		case <-t.C:
			st.mu.Lock()
			if !st.closed {
				_ = st.w.sync()
			}
			st.mu.Unlock()
		}
	}
}

// recover loads snapshot + WAL into st.state and returns the highest
// sequence number seen in the dir.
func (st *Store) recover() (uint64, error) {
	snaps, err := listSeqs(st.dir, "snap-", ".snap")
	if err != nil {
		return 0, err
	}
	var cutoff, maxSeq uint64
	if len(snaps) > 0 {
		cutoff = snaps[len(snaps)-1]
		maxSeq = cutoff
		data, err := os.ReadFile(filepath.Join(st.dir, snapshotName(cutoff)))
		if err != nil {
			return 0, fmt.Errorf("persist: reading snapshot: %w", err)
		}
		st.state, st.pos, err = decodeSnapshot(st.schema, data)
		if err != nil {
			return 0, err
		}
		st.hasSnapshot = true
	}
	segs, err := listSeqs(st.dir, "wal-", ".log")
	if err != nil {
		return 0, err
	}
	for i, seq := range segs {
		if seq > maxSeq {
			maxSeq = seq
		}
		if seq < cutoff {
			continue // compacted into the snapshot; a crash mid-compaction leaves these behind harmlessly
		}
		final := i == len(segs)-1
		err := replaySegment(filepath.Join(st.dir, segmentName(seq)), final, func(r record) {
			st.dirtyRecords++
			st.pos++
			switch r.op {
			case opAdd:
				link := st.state[r.link]
				if link == nil {
					link = make(map[uint64][]byte)
					st.state[r.link] = link
				}
				link[r.sid] = r.payload
			case opRem:
				if link := st.state[r.link]; link != nil {
					delete(link, r.sid)
					if len(link) == 0 {
						delete(st.state, r.link)
					}
				}
			}
		})
		if err != nil {
			return 0, err
		}
	}
	return maxSeq, nil
}

// Dir returns the store's data dir.
func (st *Store) Dir() string { return st.dir }

// Schema returns the schema the data dir is bound to.
func (st *Store) Schema() *subscription.Schema { return st.schema }

// Links returns the names of every link namespace holding at least one
// subscription, sorted.
func (st *Store) Links() []string {
	st.mu.Lock()
	defer st.mu.Unlock()
	names := make([]string, 0, len(st.state))
	for name, link := range st.state {
		if len(link) > 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// Entries returns the persisted subscriptions of one link, sorted by sid
// ascending — the order the snapshot stores and the bulk-load path wants.
func (st *Store) Entries(link string) []Entry {
	st.mu.Lock()
	defer st.mu.Unlock()
	state := st.state[link]
	out := make([]Entry, 0, len(state))
	for sid, payload := range state {
		out = append(out, Entry{SID: sid, Payload: append([]byte(nil), payload...)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].SID < out[j].SID })
	return out
}

// Stats returns the durability counters.
func (st *Store) Stats() StoreStats {
	st.mu.Lock()
	defer st.mu.Unlock()
	ss := StoreStats{
		Snapshots:  st.snapshots,
		WALRecords: st.walRecords,
		WALBytes:   st.walBytes,
	}
	for _, link := range st.state {
		if len(link) > 0 {
			ss.Links++
			ss.Entries += len(link)
		}
	}
	return ss
}

// appendAdd logs one subscription arrival and mirrors it. The mirror is
// updated only when the record landed, so the snapshot state never runs
// ahead of the log.
func (st *Store) appendAdd(link string, sid uint64, payload []byte) error {
	return st.append(record{op: opAdd, link: link, sid: sid, payload: payload})
}

// appendRemove logs one subscription removal and mirrors it.
func (st *Store) appendRemove(link string, sid uint64) error {
	return st.append(record{op: opRem, link: link, sid: sid})
}

func (st *Store) append(r record) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return ErrClosed
	}
	n, err := st.w.append(r)
	if err != nil {
		return err
	}
	st.committed([]record{r}, n)
	return nil
}

// appendBatch logs a whole batch of records under one lock acquisition
// and one segment write — the batch write paths' amortization (one
// syscall per batch, not per record). All-or-nothing: either every
// record lands or none does.
func (st *Store) appendBatch(rs []record) error {
	if len(rs) == 0 {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return ErrClosed
	}
	n, err := st.w.appendBatch(rs)
	if err != nil {
		return err
	}
	st.committed(rs, n)
	return nil
}

// committed folds a batch of landed records into every in-memory view:
// counters, the state mirror, the stream position, the replication ring
// and any live tailers. Called with st.mu held, after the records are in
// the log — the stream never runs ahead of the WAL, so a follower can
// only ever apply records the primary could itself recover.
func (st *Store) committed(rs []record, n int) {
	st.walRecords += len(rs)
	st.walBytes += int64(n)
	st.dirtyRecords += len(rs)
	base := st.pos
	st.pos += uint64(len(rs))
	for _, r := range rs {
		st.mirror(r)
	}
	st.ring.push(rs)
	st.notifyTailers(rs, base)
}

// mirror folds one landed record into the in-memory state. Called with
// st.mu held, after the record is on disk.
func (st *Store) mirror(r record) {
	switch r.op {
	case opAdd:
		link := st.state[r.link]
		if link == nil {
			link = make(map[uint64][]byte)
			st.state[r.link] = link
		}
		link[r.sid] = append([]byte(nil), r.payload...)
	case opRem:
		if link := st.state[r.link]; link != nil {
			delete(link, r.sid)
			if len(link) == 0 {
				delete(st.state, r.link)
			}
		}
	}
}

// Snapshot writes a point-in-time snapshot of every link namespace and
// compacts the log behind it: the WAL rotates to a fresh segment, the
// snapshot (covering everything before the rotation) lands durably, and
// only then are the superseded segments and older snapshots deleted — so
// a crash at any point leaves a recoverable dir. Appends block for the
// duration; answers served by wrapped providers do not.
func (st *Store) Snapshot() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return ErrClosed
	}
	if st.dirtyRecords == 0 && st.hasSnapshot {
		// Nothing logged since the last snapshot already covered
		// everything: rewriting identical full state would cost disk I/O
		// per periodic tick on an idle daemon for nothing.
		return nil
	}
	if err := st.w.rotate(); err != nil {
		return err
	}
	cutoff := st.w.seq
	if err := writeSnapshot(st.dir, cutoff, encodeSnapshot(st.schema, st.state, st.pos)); err != nil {
		return err
	}
	st.snapshots++
	st.dirtyRecords = 0
	st.hasSnapshot = true
	st.compact(cutoff)
	return nil
}

// compact deletes WAL segments and snapshots superseded by the snapshot
// at cutoff. Best effort: leftovers are skipped by sequence on recovery.
func (st *Store) compact(cutoff uint64) {
	if segs, err := listSeqs(st.dir, "wal-", ".log"); err == nil {
		for _, seq := range segs {
			if seq < cutoff {
				os.Remove(filepath.Join(st.dir, segmentName(seq)))
			}
		}
	}
	if snaps, err := listSeqs(st.dir, "snap-", ".snap"); err == nil {
		for _, seq := range snaps {
			if seq < cutoff {
				os.Remove(filepath.Join(st.dir, snapshotName(seq)))
			}
		}
	}
}

// Close flushes and closes the log and releases the data-dir lock.
// Wrapped providers must not log afterwards; a second Close (and any
// later append) reports ErrClosed.
func (st *Store) Close() error {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return ErrClosed
	}
	st.closed = true
	st.closeTailers(ErrClosed)
	st.mu.Unlock()
	// Stop the group-commit goroutine outside the lock (its ticks take
	// st.mu); closed is already set, so no append can slip in between.
	if st.syncStop != nil {
		close(st.syncStop)
		<-st.syncDone
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	err := st.w.close()
	if cerr := st.lock.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("persist: releasing data dir lock: %w", cerr)
	}
	return err
}
