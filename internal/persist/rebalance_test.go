package persist_test

import (
	"fmt"
	"sync"
	"testing"

	"sfccover/internal/core"
	"sfccover/internal/engine"
	"sfccover/internal/persist"
	"sfccover/internal/subscription"
	"sfccover/internal/workload"
)

// TestSnapshotMidRebalanceRecovery pins the rebalancing × persistence
// interaction: a snapshot races an in-flight Rebalance on a curve-prefix
// engine, and recovery from that data dir must be indistinguishable from
// a clean rebuild of the same subscription set — identical
// FindCover/FindCovered answers, identical occupancy skew, and zero
// rebalance counters (persistence stores the subscription set, never the
// slice layout, so a recovered engine starts from the clean-build
// boundaries no matter what the rebalancer was doing when the snapshot
// was cut).
func TestSnapshotMidRebalanceRecovery(t *testing.T) {
	schema := subscription.MustSchema(10, "volume", "price")
	mkEngine := func() *engine.Engine {
		return engine.MustNew(engine.Config{
			Detector: core.Config{
				Schema: schema, Mode: core.ModeApprox, Epsilon: 0.3,
				MaxCubes: 5000, TrackCovered: true, Seed: 3,
			},
			Shards:    8,
			Partition: engine.PartitionPrefix,
			Workers:   4,
		})
	}
	subs, err := workload.Subscriptions(workload.SubSpec{
		Schema: schema, N: 2000, Dist: workload.DistHotspot,
		WidthFrac: 0.02, HotspotFrac: 0.9, HotspotWidthFrac: 0.04, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	probes, err := workload.Subscriptions(workload.SubSpec{
		Schema: schema, N: 200, Dist: workload.DistHotspot,
		WidthFrac: 0.01, HotspotFrac: 0.9, HotspotWidthFrac: 0.04, Seed: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The answer fingerprint records only (found, stats-free) outcomes:
	// hotspot probes can have many covers, so the id is pinned only
	// through Subscription round-trips below, not in the fingerprint.
	fingerprint := func(p core.Provider) string {
		out := ""
		for i, q := range probes {
			_, found, _, err := p.FindCover(q)
			if err != nil {
				t.Fatal(err)
			}
			out += fmt.Sprintf("c%d:%v;", i, found)
			_, found, _, err = p.FindCovered(q)
			if err != nil {
				t.Fatal(err)
			}
			out += fmt.Sprintf("r%d:%v;", i, found)
		}
		return out
	}

	dir := t.TempDir()
	st, err := persist.Open(dir, schema, persist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := st.Durable("", mkEngine())
	if err != nil {
		t.Fatal(err)
	}
	var sids []uint64
	for _, r := range d.AddBatch(subs) {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		sids = append(sids, r.ID)
	}
	// Race the snapshot against a rebalance pass of the skewed engine:
	// the snapshot must cut a consistent subscription image regardless of
	// which entries are mid-migration.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := d.Rebalance(); err != nil {
			t.Error(err)
		}
	}()
	if err := d.Snapshot(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	d.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Clean rebuild: the same subscriptions bulk-loaded into a fresh
	// engine of the same configuration, never rebalanced, never crashed.
	clean := mkEngine()
	defer clean.Close()
	if _, err := clean.InsertBatch(subs); err != nil {
		t.Fatal(err)
	}
	cleanStats := clean.Stats()

	st2, err := persist.Open(dir, schema, persist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	rec, err := st2.Durable("", mkEngine())
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()

	if rec.Len() != len(subs) {
		t.Fatalf("recovered Len = %d, want %d", rec.Len(), len(subs))
	}
	if got, want := fingerprint(rec), fingerprint(clean); got != want {
		t.Fatalf("recovered answers diverge from the clean rebuild:\n got %.120s…\nwant %.120s…", got, want)
	}
	recStats := rec.Stats()
	if recStats.SkewRatio != cleanStats.SkewRatio {
		t.Fatalf("recovered SkewRatio %.3f != clean rebuild %.3f (layout must come from the clean build, not the mid-flight one)",
			recStats.SkewRatio, cleanStats.SkewRatio)
	}
	if recStats.Rebalances != 0 || recStats.BoundaryMoves != 0 || recStats.MigratedEntries != 0 {
		t.Fatalf("recovered engine carries rebalance history: %+v", recStats)
	}
	if recStats.Rebalances != cleanStats.Rebalances || recStats.BoundaryMoves != cleanStats.BoundaryMoves {
		t.Fatalf("recovered rebalance counters diverge from clean rebuild: %+v vs %+v", recStats, cleanStats)
	}
	// Durable sids survive: every stored sid round-trips on the recovered
	// provider to the same rectangle it was assigned for.
	for i, sid := range sids {
		got, ok := rec.Subscription(sid)
		if !ok || !got.Equal(subs[i]) {
			t.Fatalf("sid %d does not round-trip after mid-rebalance snapshot recovery", sid)
		}
	}
}
