package persist

import (
	"errors"
	"fmt"
	"sort"
)

// Replication rides the WAL: every record a Store commits is also pushed,
// in commit order, to any number of Tailers, each identified only by a
// stream position — the count of records ever applied in the dir's
// history. A follower stores that position durably (snapshots carry it as
// basePos), hands it back after a restart, and the primary resumes the
// stream from there: out of the in-memory ring when the follower is close
// behind, or as a full-state reset when it is not. Records are idempotent
// under re-application (an add overwrites, a remove of an absent sid is a
// no-op), so a re-streamed overlap can never diverge a follower — the
// divergence test pins that bit-identically.

// Typed failures of the replication path.
var (
	// ErrReplicationGap reports an ApplyReplicated batch whose base is
	// ahead of the store's position: records are missing in between, and
	// applying the batch would silently skip them. The follower must
	// re-request the stream from its own position.
	ErrReplicationGap = errors.New("persist: replication stream has a gap")
	// ErrTailerLagged reports a tailer whose consumer fell behind the
	// ring: the stream ended, and the follower must re-request from its
	// applied position (getting a ring replay or a reset as appropriate).
	ErrTailerLagged = errors.New("persist: replication tailer lagged behind the ring")
	// ErrTailerClosed reports a tailer torn down by its own Close.
	ErrTailerClosed = errors.New("persist: replication tailer closed")
	// ErrHasProviders refuses replicated writes on a store that is also
	// feeding live DurableProviders: the providers' in-memory indexes
	// would not see the records and would serve stale answers. Only a
	// follower store — no wrapped links — may apply a stream.
	ErrHasProviders = errors.New("persist: store has live providers; cannot apply a replication stream")
)

// Record is one replicated WAL entry in exported form. The zero value of
// Remove makes the common case (an add) the zero case.
type Record struct {
	Remove  bool
	Link    string
	SID     uint64
	Payload []byte // adds only
}

func exportRecord(r record) Record {
	return Record{Remove: r.op == opRem, Link: r.link, SID: r.sid, Payload: r.payload}
}

func importRecord(r Record) record {
	op := opAdd
	if r.Remove {
		op = opRem
	}
	return record{op: op, link: r.Link, sid: r.SID, payload: r.Payload}
}

// EncodeRecords serializes records in the WAL segment wire form
// (self-delimiting, CRC-protected) — the same bytes a segment holds, so
// the stream and the log can never drift apart in format.
func EncodeRecords(recs []Record) []byte {
	var buf []byte
	for _, r := range recs {
		buf = appendRecord(buf, importRecord(r))
	}
	return buf
}

// DecodeRecords parses a blob produced by EncodeRecords. Strict: a torn
// or checksum-broken record anywhere is an error — unlike segment replay
// there is no crash that could explain a torn stream frame.
func DecodeRecords(data []byte) ([]Record, error) {
	var out []Record
	rest := data
	for len(rest) > 0 {
		var r record
		var err error
		r, rest, err = decodeRecord(rest)
		if errors.Is(err, errTorn) {
			return nil, fmt.Errorf("%w: torn record in replication frame", ErrCorrupt)
		}
		if err != nil {
			return nil, err
		}
		out = append(out, exportRecord(r))
	}
	return out, nil
}

// replRingMax bounds the in-memory catch-up buffer. At typical record
// sizes (tens of bytes plus the payload) this is a few MB — enough to
// absorb a follower's reconnect backoff without forcing a reset.
const replRingMax = 16384

// replRing is the recent-records buffer. recs[i] holds the record at
// stream position base+1+i; push keeps the window at most replRingMax
// records wide, trimming with hysteresis so steady-state appends don't
// copy the slice every time.
type replRing struct {
	base uint64
	recs []record
}

func (g *replRing) reset(pos uint64) {
	g.base, g.recs = pos, nil
}

func (g *replRing) push(rs []record) {
	g.recs = append(g.recs, rs...)
	if len(g.recs) > replRingMax+replRingMax/2 {
		drop := len(g.recs) - replRingMax
		g.base += uint64(drop)
		g.recs = append([]record(nil), g.recs[drop:]...)
	}
}

// from returns the records after stream position pos, or ok=false when
// pos is outside the window (trimmed away below, or beyond the head —
// a divergent history).
func (g *replRing) from(pos uint64) ([]record, bool) {
	if pos < g.base || pos > g.base+uint64(len(g.recs)) {
		return nil, false
	}
	return g.recs[pos-g.base:], true
}

// TailBatch is one hop of a replication stream. When Reset is false,
// Recs are the records at stream positions Base+1..Pos, to be applied via
// ApplyReplicated. When Reset is true, Recs are a full-state dump (adds
// only) at position Pos, to be installed via InstallState — the follower
// was too far behind (or ahead, after a divergent history) to catch up
// record-by-record.
type TailBatch struct {
	Reset bool
	Base  uint64
	Recs  []Record
	Pos   uint64
}

// Tailer is one follower's live view of the store's commit stream.
// Next() yields batches in commit order, starting from the position
// handed to Tail. Not safe for concurrent Next calls.
type Tailer struct {
	st      *Store
	initial []TailBatch
	ch      chan TailBatch
	err     error // set under st.mu before ch is closed
}

// tailerBuf is the per-tailer live-batch backlog. A consumer slower than
// this many commit batches is lagged and re-syncs — bounding the memory
// one stuck follower can pin.
const tailerBuf = 64

// Tail opens a replication stream resuming after stream position from
// (0 = from the beginning). The first batches replay history — out of
// the ring when from is inside the window, as a Reset dump otherwise —
// and every commit after the call follows live, with no gap between the
// two (both are cut under the same lock).
func (st *Store) Tail(from uint64) (*Tailer, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return nil, ErrClosed
	}
	t := &Tailer{st: st, ch: make(chan TailBatch, tailerBuf)}
	if recs, ok := st.ring.from(from); ok {
		if len(recs) > 0 {
			batch := TailBatch{Base: from, Recs: make([]Record, len(recs)), Pos: st.pos}
			for i, r := range recs {
				batch.Recs[i] = exportRecord(r)
			}
			t.initial = []TailBatch{batch}
		}
	} else {
		// Too far behind the ring window — or ahead of us entirely, which
		// means a divergent history (an old primary rejoining with records
		// we never saw). Either way the catch-up is a full-state reset.
		t.initial = []TailBatch{st.dumpLocked()}
	}
	st.tailers[t] = struct{}{}
	return t, nil
}

// dumpLocked serializes the full mirror as a Reset batch at the current
// position. Called with st.mu held.
func (st *Store) dumpLocked() TailBatch {
	names := make([]string, 0, len(st.state))
	for name := range st.state {
		names = append(names, name)
	}
	sort.Strings(names)
	batch := TailBatch{Reset: true, Pos: st.pos}
	for _, name := range names {
		state := st.state[name]
		sids := make([]uint64, 0, len(state))
		for sid := range state {
			sids = append(sids, sid)
		}
		sort.Slice(sids, func(i, j int) bool { return sids[i] < sids[j] })
		for _, sid := range sids {
			batch.Recs = append(batch.Recs, Record{Link: name, SID: sid, Payload: state[sid]})
		}
	}
	return batch
}

// notifyTailers pushes a freshly committed batch to every live tailer.
// Called with st.mu held. A tailer whose backlog is full is lagged:
// its stream ends with ErrTailerLagged and it re-syncs from its applied
// position, so one stuck follower cannot block commits or pin unbounded
// memory.
func (st *Store) notifyTailers(rs []record, base uint64) {
	if len(st.tailers) == 0 {
		return
	}
	batch := TailBatch{Base: base, Recs: make([]Record, len(rs)), Pos: base + uint64(len(rs))}
	for i, r := range rs {
		batch.Recs[i] = exportRecord(r)
	}
	for t := range st.tailers {
		select {
		case t.ch <- batch:
		default:
			t.err = ErrTailerLagged
			close(t.ch)
			delete(st.tailers, t)
		}
	}
}

// closeTailers ends every live stream with err. Called with st.mu held.
func (st *Store) closeTailers(err error) {
	for t := range st.tailers {
		t.err = err
		close(t.ch)
		delete(st.tailers, t)
	}
}

// Next returns the stream's next batch, blocking until one is committed,
// cancel is closed, or the stream ends (store closed, tailer lagged or
// Close'd — the error says which).
func (t *Tailer) Next(cancel <-chan struct{}) (TailBatch, error) {
	if len(t.initial) > 0 {
		b := t.initial[0]
		t.initial = t.initial[1:]
		return b, nil
	}
	select {
	case b, ok := <-t.ch:
		if !ok {
			return TailBatch{}, t.err
		}
		return b, nil
	case <-cancel:
		return TailBatch{}, ErrTailerClosed
	}
}

// Close tears the stream down; a blocked Next returns ErrTailerClosed.
// Idempotent.
func (t *Tailer) Close() {
	t.st.mu.Lock()
	defer t.st.mu.Unlock()
	if _, live := t.st.tailers[t]; live {
		t.err = ErrTailerClosed
		close(t.ch)
		delete(t.st.tailers, t)
	}
}

// Pos returns the replication stream position: the count of records ever
// applied in this dir's history.
func (st *Store) Pos() uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.pos
}

// ApplyReplicated commits a streamed batch whose first record sits at
// stream position base+1. Overlap with already-applied records (base <
// Pos) is deduplicated by position — a re-streamed or duplicated window
// is applied once, which with idempotent records keeps the follower
// bit-identical to the primary. A batch that starts beyond Pos is refused
// with ErrReplicationGap; a store with live DurableProviders is refused
// with ErrHasProviders (followers serve reads only).
func (st *Store) ApplyReplicated(base uint64, recs []Record) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return ErrClosed
	}
	if len(st.wrapped) > 0 {
		return ErrHasProviders
	}
	if base > st.pos {
		return fmt.Errorf("%w: batch starts at %d, store is at %d", ErrReplicationGap, base, st.pos)
	}
	skip := st.pos - base
	if skip >= uint64(len(recs)) {
		return nil // the whole batch is a duplicate of applied history
	}
	rs := make([]record, 0, uint64(len(recs))-skip)
	for _, r := range recs[skip:] {
		rs = append(rs, importRecord(r))
	}
	n, err := st.w.appendBatch(rs)
	if err != nil {
		return err
	}
	st.committed(rs, n)
	return nil
}

// InstallState replaces the store's entire durable state with a Reset
// dump at stream position pos: the WAL rotates, a snapshot of the dump
// lands (carrying pos as its base), the mirror and ring are swapped, and
// the superseded log is compacted away. This is the follower's answer to
// a Reset batch — equivalent to a cold copy of the primary's dir, without
// a WAL full of removes for state it never had. Refused on stores with
// live providers.
func (st *Store) InstallState(recs []Record, pos uint64) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return ErrClosed
	}
	if len(st.wrapped) > 0 {
		return ErrHasProviders
	}
	state := make(map[string]map[uint64][]byte)
	for _, r := range recs {
		if r.Remove {
			continue // a dump carries adds only; tolerate rather than corrupt
		}
		link := state[r.Link]
		if link == nil {
			link = make(map[uint64][]byte)
			state[r.Link] = link
		}
		link[r.SID] = append([]byte(nil), r.Payload...)
	}
	if err := st.w.rotate(); err != nil {
		return err
	}
	cutoff := st.w.seq
	if err := writeSnapshot(st.dir, cutoff, encodeSnapshot(st.schema, state, pos)); err != nil {
		return err
	}
	st.state = state
	st.pos = pos
	st.ring.reset(pos)
	st.snapshots++
	st.dirtyRecords = 0
	st.hasSnapshot = true
	// Chained tailers (a follower tailing this follower) hold positions
	// from the replaced history; end their streams so they re-sync.
	st.closeTailers(ErrTailerLagged)
	st.compact(cutoff)
	return nil
}
