package persist

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"sfccover/internal/core"
	"sfccover/internal/subscription"
)

func testSchema() *subscription.Schema { return subscription.MustSchema(8, "x", "y") }

// The test family is an anti-chain of one-sided min constraints:
// rect(i) = (x >= 2i && y >= 2(K−i)). rect(j) covers rect(i) iff j <= i
// AND j >= i, so no member covers another, and each probe below has
// exactly one covering (or covered) member — recovery comparisons can
// demand bit-identical ids even though FindCover returns "any" cover.
// One-sided constraints also keep exact SFC queries cheap: the dominance
// region hugs the domain's top corner (per-axis sides lo+1 and max−hi+1,
// and every hi is max), so exhaustive decomposition stays tiny where
// mid-domain rectangles would explode (the paper's aspect-ratio caveat).
const familyK = 16

// rect returns the i-th anti-chain member.
func rect(t testing.TB, schema *subscription.Schema, i int) *subscription.Subscription {
	t.Helper()
	if i < 0 || i > familyK {
		t.Fatalf("rect index %d out of the anti-chain's range", i)
	}
	return subscription.MustParse(schema, fmt.Sprintf("x >= %d && y >= %d", 2*i, 2*(familyK-i)))
}

// inner returns a probe covered by rect(i) and no other family member.
func inner(t testing.TB, schema *subscription.Schema, i int) *subscription.Subscription {
	t.Helper()
	return subscription.MustParse(schema, fmt.Sprintf("x >= %d && y >= %d", 2*i+1, 2*(familyK-i)+1))
}

// wider returns a probe that covers rect(i) and no other family member.
func wider(t testing.TB, schema *subscription.Schema, i int) *subscription.Subscription {
	t.Helper()
	lo := 2*i - 1
	if lo < 0 {
		lo = 0
	}
	return subscription.MustParse(schema, fmt.Sprintf("x >= %d && y >= %d", lo, 2*(familyK-i)-1))
}

// payload marshals a subscription for direct store appends.
func payload(t testing.TB, s *subscription.Subscription) []byte {
	t.Helper()
	raw, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func TestStoreRoundTrip(t *testing.T) {
	schema := testSchema()
	dir := t.TempDir()
	st, err := Open(dir, schema, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.appendAdd("a", 1, payload(t, rect(t, schema, 0))); err != nil {
		t.Fatal(err)
	}
	if err := st.appendAdd("a", 2, payload(t, rect(t, schema, 1))); err != nil {
		t.Fatal(err)
	}
	if err := st.appendAdd("b", 7, payload(t, rect(t, schema, 2))); err != nil {
		t.Fatal(err)
	}
	if err := st.appendRemove("a", 2); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, schema, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if links := st2.Links(); len(links) != 2 || links[0] != "a" || links[1] != "b" {
		t.Fatalf("Links = %v, want [a b]", links)
	}
	a := st2.Entries("a")
	if len(a) != 1 || a[0].SID != 1 {
		t.Fatalf("Entries(a) = %+v, want the single surviving sid 1", a)
	}
	got, err := subscription.UnmarshalSubscription(schema, a[0].Payload)
	if err != nil || !got.Equal(rect(t, schema, 0)) {
		t.Fatalf("recovered payload does not round-trip: %v %v", got, err)
	}
	if b := st2.Entries("b"); len(b) != 1 || b[0].SID != 7 {
		t.Fatalf("Entries(b) = %+v", b)
	}
}

func TestStoreSnapshotCompaction(t *testing.T) {
	schema := testSchema()
	dir := t.TempDir()
	st, err := Open(dir, schema, Options{SegmentBytes: 64}) // force rotation
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := st.appendAdd("", uint64(i+1), payload(t, rect(t, schema, i))); err != nil {
			t.Fatal(err)
		}
	}
	segsBefore, _ := listSeqs(dir, "wal-", ".log")
	if len(segsBefore) < 2 {
		t.Fatalf("expected rotation to produce several segments, got %d", len(segsBefore))
	}
	if err := st.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if ss := st.Stats(); ss.Snapshots != 1 || ss.Entries != 8 {
		t.Fatalf("Stats = %+v", ss)
	}
	// Compaction must leave only the post-snapshot segment(s) and one
	// snapshot file.
	segs, _ := listSeqs(dir, "wal-", ".log")
	snaps, _ := listSeqs(dir, "snap-", ".snap")
	if len(snaps) != 1 {
		t.Fatalf("snapshots on disk = %v, want exactly one", snaps)
	}
	for _, seq := range segs {
		if seq < snaps[0] {
			t.Fatalf("segment %d survived compaction below cutoff %d", seq, snaps[0])
		}
	}
	// Post-snapshot appends replay on top of the snapshot.
	if err := st.appendRemove("", 3); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir, schema, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := len(st2.Entries("")); got != 7 {
		t.Fatalf("recovered %d entries, want 7", got)
	}
	for _, e := range st2.Entries("") {
		if e.SID == 3 {
			t.Fatal("sid 3 was removed after the snapshot but resurrected on recovery")
		}
	}
}

func TestStoreSchemaMismatch(t *testing.T) {
	schema := testSchema()
	dir := t.TempDir()
	st, err := Open(dir, schema, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.appendAdd("", 1, payload(t, rect(t, schema, 0))); err != nil {
		t.Fatal(err)
	}
	if err := st.Snapshot(); err != nil {
		t.Fatal(err)
	}
	st.Close()
	if _, err := Open(dir, subscription.MustSchema(10, "x", "y"), Options{}); !errors.Is(err, ErrSchemaMismatch) {
		t.Fatalf("Open under a different bit width = %v, want ErrSchemaMismatch", err)
	}
	if _, err := Open(dir, subscription.MustSchema(8, "x", "z"), Options{}); !errors.Is(err, ErrSchemaMismatch) {
		t.Fatalf("Open under different attrs = %v, want ErrSchemaMismatch", err)
	}
}

func TestStoreCloseSemantics(t *testing.T) {
	st, err := Open(t.TempDir(), testSchema(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("second Close = %v, want ErrClosed", err)
	}
	if err := st.appendAdd("", 1, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after Close = %v, want ErrClosed", err)
	}
	if err := st.Snapshot(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Snapshot after Close = %v, want ErrClosed", err)
	}
}

func TestCorruptSnapshotRefused(t *testing.T) {
	schema := testSchema()
	dir := t.TempDir()
	st, err := Open(dir, schema, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.appendAdd("", 1, payload(t, rect(t, schema, 0))); err != nil {
		t.Fatal(err)
	}
	if err := st.Snapshot(); err != nil {
		t.Fatal(err)
	}
	st.Close()
	snaps, _ := listSeqs(dir, "snap-", ".snap")
	path := filepath.Join(dir, snapshotName(snaps[0]))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, schema, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open over a bit-flipped snapshot = %v, want ErrCorrupt", err)
	}
}

func TestCorruptMidStreamSegmentRefused(t *testing.T) {
	schema := testSchema()
	dir := t.TempDir()
	st, err := Open(dir, schema, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := st.appendAdd("", uint64(i+1), payload(t, rect(t, schema, i))); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()
	segs, _ := listSeqs(dir, "wal-", ".log")
	if len(segs) < 2 {
		t.Fatalf("need at least 2 segments, got %d", len(segs))
	}
	// Truncate a NON-final segment: a crash cannot do this, so recovery
	// must refuse rather than silently drop its tail.
	path := filepath.Join(dir, segmentName(segs[0]))
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-3); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, schema, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open over a torn mid-stream segment = %v, want ErrCorrupt", err)
	}
}

func TestWriteHookFailureBehavesLikeCrash(t *testing.T) {
	schema := testSchema()
	dir := t.TempDir()
	var budget = 200 // bytes of WAL the "disk" accepts before failing
	boom := errors.New("injected crash")
	st, err := Open(dir, schema, Options{
		WriteHook: func(segment string, off int64, p []byte) error {
			if budget -= len(p); budget < 0 {
				return boom
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	logged := 0
	for i := 0; i < 20; i++ {
		if err := st.appendAdd("", uint64(i+1), payload(t, rect(t, schema, i%8))); err != nil {
			if !errors.Is(err, boom) {
				t.Fatalf("append failed with %v, want the injected error", err)
			}
			break
		}
		logged++
	}
	if logged == 0 || logged == 20 {
		t.Fatalf("injection never fired usefully (logged %d)", logged)
	}
	// Abandon the store as a crash would (no Close) and recover: exactly
	// the records that landed before the injected failure survive. A real
	// crash kills the process and with it the dir flock; dying in-process
	// is simulated by dropping the lock handle.
	st.lock.Close()
	st2, err := Open(dir, schema, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := len(st2.Entries("")); got != logged {
		t.Fatalf("recovered %d entries, want the %d logged before the crash", got, logged)
	}
}

// TestDurableDetectorRecovery pins the core durability contract on the
// single-detector backend: recovered providers answer with the same
// durable sids the pre-restart ones assigned.
func TestDurableDetectorRecovery(t *testing.T) {
	schema := testSchema()
	dir := t.TempDir()
	newDetector := func() core.Provider {
		return core.MustNew(core.Config{Schema: schema, Mode: core.ModeExact, Strategy: core.StrategyLinear})
	}

	st, err := Open(dir, schema, Options{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := st.Durable("", newDetector())
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]uint64, 6)
	for i := range ids {
		if ids[i], err = d.Insert(rect(t, schema, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Remove(ids[4]); err != nil {
		t.Fatal(err)
	}
	liveAnswers := coverAnswers(t, schema, d, 6)
	d.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, schema, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	d2, err := st2.Durable("", newDetector())
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.Len() != 5 {
		t.Fatalf("recovered Len = %d, want 5", d2.Len())
	}
	if got := coverAnswers(t, schema, d2, 6); got != liveAnswers {
		t.Fatalf("recovered answers diverge:\n got %v\nwant %v", got, liveAnswers)
	}
	// New sids continue past the recovered ceiling — no reuse.
	newID, err := d2.Insert(rect(t, schema, 10))
	if err != nil {
		t.Fatal(err)
	}
	for _, old := range ids {
		if newID == old {
			t.Fatalf("recovered provider reused sid %d", newID)
		}
	}
	// Enumerator serves the recovered dump, sorted.
	subs := d2.Subscriptions()
	if len(subs) != 6 {
		t.Fatalf("Subscriptions() = %d entries, want 6", len(subs))
	}
	for i := 1; i < len(subs); i++ {
		if subs[i].ID <= subs[i-1].ID {
			t.Fatal("Subscriptions() not sorted by id")
		}
	}
}

// coverAnswers fingerprints FindCover/FindCovered over the disjoint probe
// family: the exact (id, found) pairs, which must be bit-identical between
// a recovered provider and its never-crashed twin.
func coverAnswers(t testing.TB, schema *subscription.Schema, p core.Provider, n int) string {
	t.Helper()
	out := ""
	for i := 0; i < n; i++ {
		id, found, _, err := p.FindCover(inner(t, schema, i))
		if err != nil {
			t.Fatal(err)
		}
		out += fmt.Sprintf("c%d:%v/%d;", i, found, id)
		id, found, _, err = p.FindCovered(wider(t, schema, i))
		if err != nil {
			t.Fatal(err)
		}
		out += fmt.Sprintf("r%d:%v/%d;", i, found, id)
	}
	return out
}

func TestDurableDoubleWrapRefused(t *testing.T) {
	schema := testSchema()
	st, err := Open(t.TempDir(), schema, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	mk := func() core.Provider {
		return core.MustNew(core.Config{Schema: schema, Mode: core.ModeExact, Strategy: core.StrategyLinear})
	}
	d, err := st.Durable("x", mk())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Durable("x", mk()); err == nil {
		t.Fatal("wrapping the same link twice must fail")
	}
	d.Close()
	d2, err := st.Durable("x", mk())
	if err != nil {
		t.Fatalf("re-wrapping after Close: %v", err)
	}
	d2.Close()
}

func TestDurablePurge(t *testing.T) {
	schema := testSchema()
	dir := t.TempDir()
	st, err := Open(dir, schema, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mk := func() core.Provider {
		return core.MustNew(core.Config{Schema: schema, Mode: core.ModeExact, Strategy: core.StrategyLinear})
	}
	d, err := st.Durable("gone", mk())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Insert(rect(t, schema, 0)); err != nil {
		t.Fatal(err)
	}
	if err := d.Purge(); err != nil {
		t.Fatal(err)
	}
	d.Close()
	st.Close()
	st2, err := Open(dir, schema, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if links := st2.Links(); len(links) != 0 {
		t.Fatalf("purged link resurrected: %v", links)
	}
}

// TestStoreSingleOpener pins the data-dir lock: a second live store over
// the same dir must be refused (two daemons on one -data-dir would
// silently diverge), and the lock dies with Close.
func TestStoreSingleOpener(t *testing.T) {
	schema := testSchema()
	dir := t.TempDir()
	st, err := Open(dir, schema, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, schema, Options{}); err == nil {
		t.Fatal("second Open over a live store must be refused")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir, schema, Options{})
	if err != nil {
		t.Fatalf("reopen after Close: %v", err)
	}
	st2.Close()
}

// TestRemoveLogFailureRestoresClaim pins the claim → log → apply
// ordering: a remove whose log write fails must leave the subscription
// held, mapped and persisted — memory never runs ahead of durable state.
func TestRemoveLogFailureRestoresClaim(t *testing.T) {
	schema := testSchema()
	dir := t.TempDir()
	fail := false
	boom := errors.New("injected write failure")
	st, err := Open(dir, schema, Options{
		WriteHook: func(string, int64, []byte) error {
			if fail {
				return boom
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	d, err := st.Durable("", core.MustNew(core.Config{Schema: schema, Mode: core.ModeExact, Strategy: core.StrategyLinear}))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	sid, err := d.Insert(rect(t, schema, 1))
	if err != nil {
		t.Fatal(err)
	}
	fail = true
	if err := d.Remove(sid); !errors.Is(err, boom) {
		t.Fatalf("Remove under failing log = %v, want the injected error", err)
	}
	if errs := d.RemoveBatch([]uint64{sid}); !errors.Is(errs[0], boom) {
		t.Fatalf("RemoveBatch under failing log = %v, want the injected error", errs[0])
	}
	fail = false
	// The failed removes changed nothing: still held, still answering,
	// still removable.
	if d.Len() != 1 {
		t.Fatalf("Len = %d after failed removes, want 1", d.Len())
	}
	if got, ok := d.Subscription(sid); !ok || !got.Equal(rect(t, schema, 1)) {
		t.Fatal("sid lost its mapping after a failed remove")
	}
	if _, found, _, err := d.FindCover(inner(t, schema, 1)); err != nil || !found {
		t.Fatalf("FindCover after failed remove = (%v,%v), want a hit", found, err)
	}
	if err := d.Remove(sid); err != nil {
		t.Fatalf("remove after recovery from log failure: %v", err)
	}
	if d.Len() != 0 {
		t.Fatalf("Len = %d after successful remove", d.Len())
	}
}

// TestIdleSnapshotSkipped pins the no-op snapshot path: with nothing
// logged since the last snapshot, Snapshot must neither rotate the WAL
// nor rewrite the snapshot file.
func TestIdleSnapshotSkipped(t *testing.T) {
	schema := testSchema()
	dir := t.TempDir()
	st, err := Open(dir, schema, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.appendAdd("", 1, payload(t, rect(t, schema, 0))); err != nil {
		t.Fatal(err)
	}
	if err := st.Snapshot(); err != nil {
		t.Fatal(err)
	}
	segs1, _ := listSeqs(dir, "wal-", ".log")
	if err := st.Snapshot(); err != nil { // idle: must be a no-op
		t.Fatal(err)
	}
	segs2, _ := listSeqs(dir, "wal-", ".log")
	if st.Stats().Snapshots != 1 {
		t.Fatalf("idle snapshot was not skipped: %d snapshots", st.Stats().Snapshots)
	}
	if len(segs2) != len(segs1) {
		t.Fatalf("idle snapshot rotated the WAL: %v -> %v", segs1, segs2)
	}
	// New records re-arm it.
	if err := st.appendRemove("", 1); err != nil {
		t.Fatal(err)
	}
	if err := st.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if st.Stats().Snapshots != 2 {
		t.Fatalf("dirty snapshot skipped: %d snapshots", st.Stats().Snapshots)
	}
}

// TestFailedAppendLeavesNoTornBytes pins the snip-on-failure behavior: a
// vetoed (failed) append must leave the segment at its last record
// boundary so later successful appends are not stranded behind torn
// bytes that replay would drop.
func TestFailedAppendLeavesNoTornBytes(t *testing.T) {
	schema := testSchema()
	dir := t.TempDir()
	fail := false
	boom := errors.New("injected write failure")
	st, err := Open(dir, schema, Options{
		WriteHook: func(string, int64, []byte) error {
			if fail {
				return boom
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.appendAdd("", 1, payload(t, rect(t, schema, 0))); err != nil {
		t.Fatal(err)
	}
	fail = true
	if err := st.appendAdd("", 2, payload(t, rect(t, schema, 1))); !errors.Is(err, boom) {
		t.Fatalf("append under failing disk = %v, want the injected error", err)
	}
	fail = false
	// The disk "recovered": the next append must land and be replayable.
	if err := st.appendAdd("", 3, payload(t, rect(t, schema, 2))); err != nil {
		t.Fatalf("append after disk recovery: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir, schema, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	entries := st2.Entries("")
	if len(entries) != 2 || entries[0].SID != 1 || entries[1].SID != 3 {
		t.Fatalf("recovered %+v, want exactly sids 1 and 3 (the failed 2 snipped, the later 3 preserved)", entries)
	}
}

// TestDurableInsertBatch pins the bulk-insert capability added to the
// durable wrapper: one batch, durable sids out, a single log write that
// replays under the same sids after a restart — and all-or-nothing
// rollback out of the wrapped provider when that log write fails.
func TestDurableInsertBatch(t *testing.T) {
	schema := testSchema()
	dir := t.TempDir()
	newDetector := func() core.Provider {
		return core.MustNew(core.Config{Schema: schema, Mode: core.ModeExact, Strategy: core.StrategyLinear})
	}

	st, err := Open(dir, schema, Options{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := st.Durable("", newDetector())
	if err != nil {
		t.Fatal(err)
	}
	var _ core.BulkInserter = d // the capability capforward demanded

	subs := make([]*subscription.Subscription, 4)
	for i := range subs {
		subs[i] = rect(t, schema, i)
	}
	sids, err := d.InsertBatch(subs)
	if err != nil {
		t.Fatal(err)
	}
	if len(sids) != 4 {
		t.Fatalf("InsertBatch returned %d sids, want 4", len(sids))
	}
	seen := map[uint64]bool{}
	for _, sid := range sids {
		if seen[sid] {
			t.Fatalf("InsertBatch reused sid %d inside one batch", sid)
		}
		seen[sid] = true
	}
	if d.Len() != 4 {
		t.Fatalf("Len after batch = %d, want 4", d.Len())
	}
	liveAnswers := coverAnswers(t, schema, d, 4)
	d.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, schema, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	d2, err := st2.Durable("", newDetector())
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.Len() != 4 {
		t.Fatalf("recovered Len = %d, want 4", d2.Len())
	}
	if got := coverAnswers(t, schema, d2, 4); got != liveAnswers {
		t.Fatalf("recovered answers diverge:\n got %v\nwant %v", got, liveAnswers)
	}
	// The batch's sids survived recovery verbatim, and stay live handles:
	// removing through one must stick.
	for _, sid := range sids {
		if _, ok := d2.Subscription(sid); !ok {
			t.Fatalf("sid %d from the pre-restart batch is gone after recovery", sid)
		}
	}
	if err := d2.Remove(sids[2]); err != nil {
		t.Fatalf("Remove(recovered batch sid): %v", err)
	}
	if d2.Len() != 3 {
		t.Fatalf("Len after removing one batch member = %d, want 3", d2.Len())
	}

	// Rollback: a failed log write must leave the wrapped provider empty —
	// no subscription may be queryable that the log never recorded.
	dir2 := t.TempDir()
	st3, err := Open(dir2, schema, Options{})
	if err != nil {
		t.Fatal(err)
	}
	d3, err := st3.Durable("", newDetector())
	if err != nil {
		t.Fatal(err)
	}
	if err := st3.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := d3.InsertBatch(subs); !errors.Is(err, ErrClosed) {
		t.Fatalf("InsertBatch on closed store = %v, want ErrClosed", err)
	}
	if d3.Len() != 0 {
		t.Fatalf("wrapped provider holds %d subscriptions after a failed batch log, want 0", d3.Len())
	}
}
