package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"syscall"
)

// The write-ahead log is a sequence of segment files named
// wal-<seq>.log, seq a 16-digit hex number that increases monotonically
// across rotations and snapshots. Each segment starts with a 6-byte magic
// and carries length-prefixed, CRC-protected records:
//
//	segment: "SFCW1\n" | record*
//	record:  uvarint bodyLen | body | crc32(body) (4 bytes LE)
//	body:    op byte ('A' add / 'R' remove)
//	         | uvarint len(link) | link
//	         | uvarint sid
//	         | (add only) uvarint len(payload) | payload
//
// The payload is the subscription's binary wire encoding — the same bytes
// brokers exchange — so the persisted form is schema-checked on decode and
// stays compact (the subscription set, never the derived index).
//
// Crash tolerance: appends are strictly sequential, so a crash leaves at
// most a torn record at the tail of the newest segment. Replay accepts a
// clean prefix: a truncated or CRC-broken tail record in the FINAL segment
// ends replay silently (the record never committed); the same damage in an
// earlier segment — which a crash cannot produce — is reported as
// ErrCorrupt. Records are idempotent under re-replay (an add overwrites,
// a remove of an absent sid is a no-op), so a duplicated segment cannot
// diverge recovered state.
const (
	walMagic      = "SFCW1\n"
	opAdd    byte = 'A'
	opRem    byte = 'R'
)

// Typed failures of the recovery path.
var (
	// ErrCorrupt reports durable state damaged in a way a crash cannot
	// explain: a broken record before the final segment's tail, a snapshot
	// whose checksum does not verify, bad magic bytes. Recovery refuses to
	// guess at such state rather than silently dropping subscriptions.
	ErrCorrupt = errors.New("persist: durable state is corrupt")
	// ErrClosed reports an operation on a closed Store.
	ErrClosed = errors.New("persist: store is closed")
	// ErrSchemaMismatch reports a data dir written under a different
	// schema (bit width or attribute names differ).
	ErrSchemaMismatch = errors.New("persist: data dir was written under a different schema")
)

// record is one decoded WAL entry.
type record struct {
	op      byte
	link    string
	sid     uint64
	payload []byte
}

// appendRecord encodes one record onto buf in the segment wire form.
func appendRecord(buf []byte, r record) []byte {
	body := make([]byte, 0, 2+len(r.link)+binary.MaxVarintLen64+len(r.payload)+binary.MaxVarintLen32)
	body = append(body, r.op)
	body = binary.AppendUvarint(body, uint64(len(r.link)))
	body = append(body, r.link...)
	body = binary.AppendUvarint(body, r.sid)
	if r.op == opAdd {
		body = binary.AppendUvarint(body, uint64(len(r.payload)))
		body = append(body, r.payload...)
	}
	buf = binary.AppendUvarint(buf, uint64(len(body)))
	buf = append(buf, body...)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(body))
	return append(buf, crc[:]...)
}

// errTorn marks an incomplete or checksum-broken tail; replaySegment
// translates it to a clean stop (final segment) or ErrCorrupt (earlier).
var errTorn = errors.New("persist: torn record")

// decodeRecord decodes one record from data, returning the remainder.
func decodeRecord(data []byte) (record, []byte, error) {
	bodyLen, n := binary.Uvarint(data)
	if n <= 0 {
		return record{}, nil, errTorn
	}
	rest := data[n:]
	if bodyLen > uint64(len(rest)) || bodyLen+4 > uint64(len(rest)) {
		return record{}, nil, errTorn
	}
	body, crc := rest[:bodyLen], rest[bodyLen:bodyLen+4]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(crc) {
		return record{}, nil, errTorn
	}
	rest = rest[bodyLen+4:]
	r, err := decodeBody(body)
	if err != nil {
		// The checksum verified, so this is a writer bug or hand-edited
		// state, not a crash: surface it as corruption.
		return record{}, nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return r, rest, nil
}

// decodeBody decodes a checksum-verified record body.
func decodeBody(body []byte) (record, error) {
	if len(body) < 1 {
		return record{}, errors.New("empty record body")
	}
	r := record{op: body[0]}
	if r.op != opAdd && r.op != opRem {
		return record{}, fmt.Errorf("unknown record op 0x%02x", r.op)
	}
	rest := body[1:]
	linkLen, n := binary.Uvarint(rest)
	if n <= 0 || linkLen > uint64(len(rest)-n) {
		return record{}, errors.New("truncated link")
	}
	rest = rest[n:]
	r.link = string(rest[:linkLen])
	rest = rest[linkLen:]
	r.sid, n = binary.Uvarint(rest)
	if n <= 0 {
		return record{}, errors.New("truncated sid")
	}
	rest = rest[n:]
	if r.op == opAdd {
		payLen, n := binary.Uvarint(rest)
		if n <= 0 || payLen != uint64(len(rest)-n) {
			return record{}, errors.New("payload length does not match record body")
		}
		r.payload = append([]byte(nil), rest[n:]...)
	} else if len(rest) != 0 {
		return record{}, fmt.Errorf("%d trailing bytes in remove record", len(rest))
	}
	return r, nil
}

// replaySegment decodes every record of one segment file into apply.
// final marks the newest segment, whose torn tail is a tolerated crash
// artifact; anywhere else damage is ErrCorrupt.
func replaySegment(path string, final bool, apply func(record)) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("persist: reading segment: %w", err)
	}
	return replayBytes(data, filepath.Base(path), final, apply)
}

// replayBytes decodes a segment's raw bytes (the fuzz targets drive it
// directly).
func replayBytes(data []byte, name string, final bool, apply func(record)) error {
	if len(data) < len(walMagic) || string(data[:len(walMagic)]) != walMagic {
		if final && len(data) < len(walMagic) && strings.HasPrefix(walMagic, string(data)) {
			return nil // crash between create and header write
		}
		return fmt.Errorf("%w: segment %s has bad magic", ErrCorrupt, name)
	}
	rest := data[len(walMagic):]
	for len(rest) > 0 {
		var r record
		var err error
		r, rest, err = decodeRecord(rest)
		if errors.Is(err, errTorn) {
			if final {
				return nil
			}
			return fmt.Errorf("%w: torn record before the final segment (%s)", ErrCorrupt, name)
		}
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		apply(r)
	}
	return nil
}

// walWriter appends records to the current segment, rotating to a fresh
// file once SegmentBytes is crossed.
type walWriter struct {
	dir     string
	opts    Options
	f       *os.File
	seq     uint64
	written int64
	// dirty marks bytes written to the current segment since its last
	// fsync — the group-commit tick syncs only when set, so an idle
	// daemon's interval timer costs nothing.
	dirty bool
	// err wedges the writer: set when a failed append could not be
	// snipped back to the last record boundary, so continuing would put
	// acked records after torn bytes that replay silently drops. Every
	// later append reports it.
	err error
}

func segmentName(seq uint64) string  { return fmt.Sprintf("wal-%016x.log", seq) }
func snapshotName(seq uint64) string { return fmt.Sprintf("snap-%016x.snap", seq) }

// parseSeq extracts the sequence number from a segment or snapshot name.
func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	seq, err := strconv.ParseUint(name[len(prefix):len(name)-len(suffix)], 16, 64)
	return seq, err == nil
}

// createSegment creates the segment file for seq and writes its header,
// without touching the writer's current segment.
func (w *walWriter) createSegment(seq uint64) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(w.dir, segmentName(seq)), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("persist: creating segment: %w", err)
	}
	if err := w.write(f, segmentName(seq), 0, []byte(walMagic)); err != nil {
		f.Close()
		return nil, err
	}
	// The segment's directory entry must survive a crash too, or a synced
	// record could sit in a file recovery never lists.
	if err := syncDir(w.dir); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// openSegment makes seq the writer's current segment.
func (w *walWriter) openSegment(seq uint64) error {
	f, err := w.createSegment(seq)
	if err != nil {
		return err
	}
	w.f, w.seq, w.written = f, seq, int64(len(walMagic))
	w.dirty = true // header written, not yet fsynced
	return nil
}

// write puts p at the segment's current offset, through the crash-
// injection hook when one is installed.
func (w *walWriter) write(f *os.File, name string, off int64, p []byte) error {
	if w.opts.WriteHook != nil {
		if err := w.opts.WriteHook(name, off, p); err != nil {
			return err
		}
	}
	if _, err := f.Write(p); err != nil {
		return fmt.Errorf("persist: writing segment: %w", err)
	}
	return nil
}

// append encodes r onto the current segment, rotating first when the
// segment is full. The new segment's seq is current+1.
func (w *walWriter) append(r record) (int, error) {
	return w.appendBytes(appendRecord(nil, r))
}

// appendBatch encodes a whole batch into one buffer and lands it with a
// single write (and, with Sync, a single fsync).
func (w *walWriter) appendBatch(rs []record) (int, error) {
	var buf []byte
	for _, r := range rs {
		buf = appendRecord(buf, r)
	}
	return w.appendBytes(buf)
}

func (w *walWriter) appendBytes(buf []byte) (int, error) {
	if w.err != nil {
		return 0, w.err
	}
	if w.written >= w.opts.SegmentBytes && w.opts.SegmentBytes > 0 {
		if err := w.rotate(); err != nil {
			return 0, err
		}
	}
	if err := w.write(w.f, segmentName(w.seq), w.written, buf); err != nil {
		w.snip(err)
		return 0, err
	}
	w.dirty = true
	if w.opts.Sync {
		if err := w.f.Sync(); err != nil {
			// The record is reported failed (callers roll their state
			// back), so it must not survive on disk to resurrect at
			// recovery: snip it.
			w.snip(err)
			return 0, fmt.Errorf("persist: syncing segment: %w", err)
		}
		w.dirty = false
	}
	w.written += int64(len(buf))
	return len(buf), nil
}

// sync is the group-commit tick: one fsync covers every append since the
// last one. A failed interval sync wedges the writer — records appended
// during the window were acked under a bounded-loss promise that just
// broke, so every later append surfaces the failure instead of quietly
// widening the window.
func (w *walWriter) sync() error {
	if w.err != nil {
		return w.err
	}
	if !w.dirty || w.f == nil {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		w.err = fmt.Errorf("persist: group-commit sync failed: %w", err)
		return w.err
	}
	w.dirty = false
	return nil
}

// snip restores the segment to its last record boundary after a failed
// append — a partial write would otherwise sit as torn bytes mid-file,
// and replay drops everything after a torn record. If the boundary
// cannot be restored, the writer wedges: all later appends report the
// failure instead of acking records recovery would silently lose.
func (w *walWriter) snip(cause error) {
	if err := w.f.Truncate(w.written); err != nil {
		w.err = fmt.Errorf("persist: wal writer failed: %v (and truncating to the last record boundary failed: %v)", cause, err)
		return
	}
	if _, err := w.f.Seek(w.written, 0); err != nil {
		w.err = fmt.Errorf("persist: wal writer failed: %v (and seeking to the last record boundary failed: %v)", cause, err)
	}
}

// rotate opens the next segment, then retires the current one. The new
// segment is created FIRST: if creation fails (disk full), the writer
// keeps its current segment and stays append-able — a failed rotation
// must not wedge the store.
func (w *walWriter) rotate() error {
	f, err := w.createSegment(w.seq + 1)
	if err != nil {
		return err
	}
	old := w.f
	w.f, w.seq, w.written = f, w.seq+1, int64(len(walMagic))
	w.dirty = true // the fresh segment's header is not fsynced yet
	if old != nil {
		if err := old.Sync(); err != nil {
			old.Close()
			return fmt.Errorf("persist: syncing retired segment: %w", err)
		}
		if err := old.Close(); err != nil {
			return fmt.Errorf("persist: closing retired segment: %w", err)
		}
	}
	return nil
}

func (w *walWriter) close() error {
	if w.f == nil {
		return nil
	}
	err := w.f.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}

// listSeqs returns the sorted sequence numbers of the files in dir
// matching prefix/suffix.
func listSeqs(dir, prefix, suffix string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("persist: reading data dir: %w", err)
	}
	var seqs []uint64
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if seq, ok := parseSeq(e.Name(), prefix, suffix); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// syncDir flushes directory metadata so renames and creates survive a
// crash. Filesystems that do not implement directory fsync report ENOTSUP
// or EINVAL; that documented pair is tolerated (the create/rename itself
// still happened), but any other failure is surfaced to the caller —
// group commit must not claim durability the directory cannot provide.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("persist: opening dir for metadata sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, syscall.ENOTSUP) && !errors.Is(err, syscall.EINVAL) {
		return fmt.Errorf("persist: syncing dir metadata: %w", err)
	}
	return nil
}
