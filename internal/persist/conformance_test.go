package persist_test

import (
	"testing"

	"sfccover/internal/core"
	"sfccover/internal/core/coretest"
	"sfccover/internal/engine"
	"sfccover/internal/persist"
)

// TestDurableProviderConformance runs the shared core.Provider battery
// against the durable wrapper over both in-process backends: wrapping
// must change nothing about Provider semantics (and the battery's
// persister-snapshot subtest exercises the capability the wrapper adds).
func TestDurableProviderConformance(t *testing.T) {
	schema := coretest.Schema()
	backends := map[string]func(t *testing.T) core.Provider{
		"detector": func(t *testing.T) core.Provider {
			return core.MustNew(core.Config{Schema: schema, Mode: core.ModeExact})
		},
		"engine-prefix": func(t *testing.T) core.Provider {
			return engine.MustNew(engine.Config{
				Detector:  core.Config{Schema: schema, Mode: core.ModeExact},
				Shards:    4,
				Partition: engine.PartitionPrefix,
				Workers:   2,
			})
		},
	}
	for name, mk := range backends {
		t.Run(name, func(t *testing.T) {
			coretest.RunProviderConformance(t, schema, func(t *testing.T) core.Provider {
				st, err := persist.Open(t.TempDir(), schema, persist.Options{})
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { st.Close() })
				d, err := st.Durable("", mk(t))
				if err != nil {
					t.Fatal(err)
				}
				return d
			})
		})
	}
}

// TestDurablePersistenceConformance runs the snapshot→restore→re-run
// battery: one data dir per subtest, reopened (store and provider both)
// between the populate and verify halves.
func TestDurablePersistenceConformance(t *testing.T) {
	schema := coretest.Schema()
	backends := map[string]func(t *testing.T) core.Provider{
		"detector": func(t *testing.T) core.Provider {
			return core.MustNew(core.Config{Schema: schema, Mode: core.ModeExact})
		},
		"engine-hash": func(t *testing.T) core.Provider {
			return engine.MustNew(engine.Config{
				Detector: core.Config{Schema: schema, Mode: core.ModeExact},
				Shards:   4, Partition: engine.PartitionHash, Workers: 2,
			})
		},
		"engine-prefix": func(t *testing.T) core.Provider {
			return engine.MustNew(engine.Config{
				Detector: core.Config{Schema: schema, Mode: core.ModeExact},
				Shards:   4, Partition: engine.PartitionPrefix, Workers: 2,
			})
		},
	}
	for name, mk := range backends {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			var st *persist.Store
			coretest.RunPersistenceConformance(t, schema, func(t *testing.T) core.Provider {
				if st != nil {
					if err := st.Close(); err != nil {
						t.Fatal(err)
					}
				}
				var err error
				st, err = persist.Open(dir, schema, persist.Options{})
				if err != nil {
					t.Fatal(err)
				}
				d, err := st.Durable("", mk(t))
				if err != nil {
					t.Fatal(err)
				}
				return d
			})
			if st != nil {
				st.Close()
			}
		})
	}
}
