package persist

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"

	"sfccover/internal/subscription"
)

// A snapshot is one self-validating file, snap-<seq>.snap, holding the
// full subscription state of every link namespace at a point in time. The
// seq names the first WAL segment whose records post-date the snapshot:
// recovery loads the newest valid snapshot and replays only segments with
// seq >= it.
//
//	snapshot: "SFCS2\n"
//	          | uvarint bits | uvarint numAttrs | (uvarint len | name)*
//	          | uvarint basePos
//	          | uvarint numLinks
//	          | link*                      (sorted by name)
//	          | crc32(everything above) (4 bytes LE)
//	link:     uvarint len(name) | name
//	          | uvarint numEntries
//	          | (uvarint sid | uvarint len(payload) | payload)*   (sid ascending)
//
// The schema header makes a data dir self-describing: opening it under a
// different schema fails with ErrSchemaMismatch instead of misdecoding
// payloads. Entries are sorted by sid so recovery can feed the engine's
// sorted bulk-load path directly, and the decoder enforces the order (a
// violation is ErrCorrupt, not a silent reorder).
//
// basePos is the replication stream position the snapshot covers: the
// count of WAL records ever applied in this dir's history up to the
// snapshot point. Recovery seeds Store.Pos from it (plus whatever the WAL
// replays on top), which is how a follower knows where to resume the
// primary's stream after its own restart. SFCS2 bumped the magic when the
// field was added; SFCS1 dirs predate any release and are refused as
// corrupt rather than carrying a second decode path forever.
const snapMagic = "SFCS2\n"

// Entry is one persisted subscription: its durable sid and its binary
// wire payload.
type Entry struct {
	SID     uint64
	Payload []byte
}

// encodeSnapshot serializes the per-link state. links maps link name to
// sid -> payload; basePos is the replication stream position the state
// corresponds to.
func encodeSnapshot(schema *subscription.Schema, links map[string]map[uint64][]byte, basePos uint64) []byte {
	buf := append([]byte(nil), snapMagic...)
	buf = binary.AppendUvarint(buf, uint64(schema.Bits()))
	attrs := schema.Attrs()
	buf = binary.AppendUvarint(buf, uint64(len(attrs)))
	for _, a := range attrs {
		buf = binary.AppendUvarint(buf, uint64(len(a)))
		buf = append(buf, a...)
	}
	buf = binary.AppendUvarint(buf, basePos)
	names := make([]string, 0, len(links))
	for name := range links {
		names = append(names, name)
	}
	sort.Strings(names)
	buf = binary.AppendUvarint(buf, uint64(len(names)))
	for _, name := range names {
		state := links[name]
		buf = binary.AppendUvarint(buf, uint64(len(name)))
		buf = append(buf, name...)
		sids := make([]uint64, 0, len(state))
		for sid := range state {
			sids = append(sids, sid)
		}
		sort.Slice(sids, func(i, j int) bool { return sids[i] < sids[j] })
		buf = binary.AppendUvarint(buf, uint64(len(sids)))
		for _, sid := range sids {
			buf = binary.AppendUvarint(buf, sid)
			buf = binary.AppendUvarint(buf, uint64(len(state[sid])))
			buf = append(buf, state[sid]...)
		}
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(buf))
	return append(buf, crc[:]...)
}

// snapCursor tracks a decode position with uniform truncation errors.
type snapCursor struct {
	rest []byte
}

func (c *snapCursor) uvarint(what string) (uint64, error) {
	v, n := binary.Uvarint(c.rest)
	if n <= 0 {
		return 0, fmt.Errorf("%w: snapshot truncated at %s", ErrCorrupt, what)
	}
	c.rest = c.rest[n:]
	return v, nil
}

func (c *snapCursor) bytes(n uint64, what string) ([]byte, error) {
	if n > uint64(len(c.rest)) {
		return nil, fmt.Errorf("%w: snapshot truncated at %s", ErrCorrupt, what)
	}
	out := c.rest[:n]
	c.rest = c.rest[n:]
	return out, nil
}

// decodeSnapshot parses and checksum-verifies a snapshot file's bytes,
// returning the per-link state and the stream basePos it covers. A nil
// schema skips the schema check (the fuzz target's mode); otherwise bits
// and attribute names must match exactly.
func decodeSnapshot(schema *subscription.Schema, data []byte) (map[string]map[uint64][]byte, uint64, error) {
	if len(data) < len(snapMagic)+4 || string(data[:len(snapMagic)]) != snapMagic {
		return nil, 0, fmt.Errorf("%w: snapshot has bad magic", ErrCorrupt)
	}
	body, crc := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(crc) {
		return nil, 0, fmt.Errorf("%w: snapshot checksum mismatch", ErrCorrupt)
	}
	c := &snapCursor{rest: body[len(snapMagic):]}
	bits, err := c.uvarint("schema bits")
	if err != nil {
		return nil, 0, err
	}
	numAttrs, err := c.uvarint("attr count")
	if err != nil {
		return nil, 0, err
	}
	attrs := make([]string, 0, numAttrs)
	for i := uint64(0); i < numAttrs; i++ {
		n, err := c.uvarint("attr name length")
		if err != nil {
			return nil, 0, err
		}
		name, err := c.bytes(n, "attr name")
		if err != nil {
			return nil, 0, err
		}
		attrs = append(attrs, string(name))
	}
	if schema != nil {
		if int(bits) != schema.Bits() || len(attrs) != schema.NumAttrs() {
			return nil, 0, fmt.Errorf("%w: snapshot has %d bits and %d attrs, schema has %d and %d",
				ErrSchemaMismatch, bits, len(attrs), schema.Bits(), schema.NumAttrs())
		}
		for i, a := range schema.Attrs() {
			if attrs[i] != a {
				return nil, 0, fmt.Errorf("%w: snapshot attribute %d is %q, schema says %q", ErrSchemaMismatch, i, attrs[i], a)
			}
		}
	}
	basePos, err := c.uvarint("stream base position")
	if err != nil {
		return nil, 0, err
	}
	numLinks, err := c.uvarint("link count")
	if err != nil {
		return nil, 0, err
	}
	links := make(map[string]map[uint64][]byte)
	for i := uint64(0); i < numLinks; i++ {
		n, err := c.uvarint("link name length")
		if err != nil {
			return nil, 0, err
		}
		nameB, err := c.bytes(n, "link name")
		if err != nil {
			return nil, 0, err
		}
		name := string(nameB)
		if _, dup := links[name]; dup {
			return nil, 0, fmt.Errorf("%w: duplicate link %q in snapshot", ErrCorrupt, name)
		}
		count, err := c.uvarint("entry count")
		if err != nil {
			return nil, 0, err
		}
		state := make(map[uint64][]byte)
		prev, first := uint64(0), true
		for j := uint64(0); j < count; j++ {
			sid, err := c.uvarint("entry sid")
			if err != nil {
				return nil, 0, err
			}
			if !first && sid <= prev {
				return nil, 0, fmt.Errorf("%w: snapshot entries out of order in link %q", ErrCorrupt, name)
			}
			prev, first = sid, false
			plen, err := c.uvarint("payload length")
			if err != nil {
				return nil, 0, err
			}
			payload, err := c.bytes(plen, "payload")
			if err != nil {
				return nil, 0, err
			}
			state[sid] = append([]byte(nil), payload...)
		}
		links[name] = state
	}
	if len(c.rest) != 0 {
		return nil, 0, fmt.Errorf("%w: %d trailing snapshot bytes", ErrCorrupt, len(c.rest))
	}
	return links, basePos, nil
}

// writeSnapshot durably lands encoded snapshot bytes under seq: temp
// file, fsync, atomic rename, directory sync. A crash at any point leaves
// either no snap-<seq>.snap or a complete one — never a torn snapshot
// under the final name.
func writeSnapshot(dir string, seq uint64, data []byte) error {
	tmp := filepath.Join(dir, snapshotName(seq)+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("persist: creating snapshot: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("persist: writing snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("persist: syncing snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("persist: closing snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, snapshotName(seq))); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("persist: publishing snapshot: %w", err)
	}
	// The rename must itself survive a crash, or compaction could delete
	// segments a recovery would still need.
	return syncDir(dir)
}
