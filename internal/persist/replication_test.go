package persist

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"sfccover/internal/core"
)

// rec builds an add record for the i-th anti-chain member.
func addRec(t *testing.T, link string, sid uint64, i int) Record {
	t.Helper()
	return Record{Link: link, SID: sid, Payload: payload(t, rect(t, testSchema(), i))}
}

// applyBatch lands one tail batch on a follower store through whichever
// path its shape demands, exactly as the daemon's stream consumer does.
func applyBatch(t *testing.T, st *Store, b TailBatch) {
	t.Helper()
	if b.Reset {
		if err := st.InstallState(b.Recs, b.Pos); err != nil {
			t.Fatalf("InstallState: %v", err)
		}
		return
	}
	if err := st.ApplyReplicated(b.Base, b.Recs); err != nil {
		t.Fatalf("ApplyReplicated(base %d): %v", b.Base, err)
	}
}

// demandSameState compares two stores' durable state bit-for-bit: same
// links, same sids, same payload bytes.
func demandSameState(t *testing.T, got, want *Store) {
	t.Helper()
	gl, wl := got.Links(), want.Links()
	if fmt.Sprint(gl) != fmt.Sprint(wl) {
		t.Fatalf("links diverge: got %v, want %v", gl, wl)
	}
	for _, link := range wl {
		ge, we := got.Entries(link), want.Entries(link)
		if len(ge) != len(we) {
			t.Fatalf("link %q: %d entries, want %d", link, len(ge), len(we))
		}
		for i := range we {
			if ge[i].SID != we[i].SID || !bytes.Equal(ge[i].Payload, we[i].Payload) {
				t.Fatalf("link %q entry %d diverges: sid %d vs %d", link, i, ge[i].SID, we[i].SID)
			}
		}
	}
}

// TestTailStreamsCommitsInOrder: a tailer opened at the follower's
// position sees every commit after it, in order, and applying them
// converges the follower to the primary's exact state.
func TestTailStreamsCommitsInOrder(t *testing.T) {
	schema := testSchema()
	primary, err := Open(t.TempDir(), schema, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	follower, err := Open(t.TempDir(), schema, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()

	tail, err := primary.Tail(follower.Pos())
	if err != nil {
		t.Fatal(err)
	}
	defer tail.Close()

	if err := primary.appendAdd("a", 1, payload(t, rect(t, schema, 0))); err != nil {
		t.Fatal(err)
	}
	if err := primary.appendAdd("a", 2, payload(t, rect(t, schema, 1))); err != nil {
		t.Fatal(err)
	}
	if err := primary.appendAdd("b", 7, payload(t, rect(t, schema, 2))); err != nil {
		t.Fatal(err)
	}
	if err := primary.appendRemove("a", 2); err != nil {
		t.Fatal(err)
	}

	cancel := make(chan struct{})
	for i := 0; follower.Pos() < primary.Pos(); i++ {
		if i > 16 {
			t.Fatalf("follower stuck at %d of %d after %d batches", follower.Pos(), primary.Pos(), i)
		}
		b, err := tail.Next(cancel)
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		applyBatch(t, follower, b)
	}
	demandSameState(t, follower, primary)
}

// TestReplicationDedupAndGap: overlap with applied history deduplicates
// by position, a batch beyond the position is refused as a gap, and a
// store feeding live providers refuses streams entirely.
func TestReplicationDedupAndGap(t *testing.T) {
	schema := testSchema()
	st, err := Open(t.TempDir(), schema, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	recs := []Record{
		addRec(t, "a", 1, 0),
		addRec(t, "a", 2, 1),
		{Remove: true, Link: "a", SID: 1},
	}
	if err := st.ApplyReplicated(0, recs); err != nil {
		t.Fatal(err)
	}
	if got := st.Pos(); got != 3 {
		t.Fatalf("Pos = %d, want 3", got)
	}
	// The whole batch again: a duplicate window, applied zero times more.
	if err := st.ApplyReplicated(0, recs); err != nil {
		t.Fatalf("duplicate window refused: %v", err)
	}
	if got := st.Pos(); got != 3 {
		t.Fatalf("Pos moved to %d on a duplicate window", got)
	}
	// Overlapping window carrying one new record: only the tail applies.
	if err := st.ApplyReplicated(1, []Record{recs[1], recs[2], addRec(t, "b", 9, 3)}); err != nil {
		t.Fatal(err)
	}
	if got := st.Pos(); got != 4 {
		t.Fatalf("Pos = %d after overlap, want 4", got)
	}
	// A batch starting beyond the position would skip records: refused.
	if err := st.ApplyReplicated(10, recs); !errors.Is(err, ErrReplicationGap) {
		t.Fatalf("gap batch: %v, want ErrReplicationGap", err)
	}
	// Wrapping a provider flips the store to primary duty: streams refused.
	d, err := st.Durable("live", core.MustNew(core.Config{Schema: schema}))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := st.ApplyReplicated(4, []Record{addRec(t, "c", 1, 4)}); !errors.Is(err, ErrHasProviders) {
		t.Fatalf("stream onto a providing store: %v, want ErrHasProviders", err)
	}
}

// TestReStreamedWindowsConvergeBitIdentical is the follower-divergence
// battery: the same history delivered with duplicated and re-streamed
// overlapping windows — what reconnects produce — must land the follower
// on the primary's exact durable state, and a cold recovery of the
// follower's dir must preserve both the state and the stream position.
func TestReStreamedWindowsConvergeBitIdentical(t *testing.T) {
	schema := testSchema()
	primary, err := Open(t.TempDir(), schema, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()

	history := []Record{
		addRec(t, "", 1, 0),
		addRec(t, "", 2, 1),
		addRec(t, "L", 1, 2),
		{Remove: true, Link: "", SID: 2},
		addRec(t, "L", 2, 3),
		addRec(t, "", 3, 4),
		{Remove: true, Link: "L", SID: 1},
		addRec(t, "M", 5, 5),
	}
	for _, r := range history {
		var err error
		if r.Remove {
			err = primary.appendRemove(r.Link, r.SID)
		} else {
			err = primary.appendAdd(r.Link, r.SID, r.Payload)
		}
		if err != nil {
			t.Fatal(err)
		}
	}

	fdir := t.TempDir()
	follower, err := Open(fdir, schema, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Windows overlap, duplicate and re-stream from zero mid-way — every
	// base is at or below the follower's position, as the protocol
	// guarantees, and idempotent records make the rest safe.
	windows := []struct{ base, end uint64 }{
		{0, 3}, {1, 5}, {0, 4}, {3, 8}, {0, 8}, {6, 8},
	}
	for _, w := range windows {
		if err := follower.ApplyReplicated(w.base, history[w.base:w.end]); err != nil {
			t.Fatalf("window [%d,%d): %v", w.base, w.end, err)
		}
	}
	if follower.Pos() != primary.Pos() {
		t.Fatalf("Pos = %d, want %d", follower.Pos(), primary.Pos())
	}
	demandSameState(t, follower, primary)

	// Cold recovery: the follower's dir replays to the same state and the
	// same stream position, so a restarted follower resumes, not resets.
	if err := follower.Close(); err != nil {
		t.Fatal(err)
	}
	recovered, err := Open(fdir, schema, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	if recovered.Pos() != primary.Pos() {
		t.Fatalf("recovered Pos = %d, want %d", recovered.Pos(), primary.Pos())
	}
	demandSameState(t, recovered, primary)
}

// TestResetDumpInstallsAndSurvivesRestart: a follower outside the ring
// window (here: claiming a divergent position ahead of the primary) gets
// a Reset dump; installing it replaces local state wholesale, adopts the
// primary's position, and both survive a cold recovery.
func TestResetDumpInstallsAndSurvivesRestart(t *testing.T) {
	schema := testSchema()
	primary, err := Open(t.TempDir(), schema, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	for i := 0; i < 4; i++ {
		if err := primary.appendAdd("a", uint64(i+1), payload(t, rect(t, schema, i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := primary.appendRemove("a", 2); err != nil {
		t.Fatal(err)
	}

	tail, err := primary.Tail(primary.Pos() + 100) // divergent: ahead of the primary
	if err != nil {
		t.Fatal(err)
	}
	defer tail.Close()
	b, err := tail.Next(make(chan struct{}))
	if err != nil {
		t.Fatal(err)
	}
	if !b.Reset {
		t.Fatalf("divergent position got a plain batch (base %d), want a Reset dump", b.Base)
	}

	fdir := t.TempDir()
	follower, err := Open(fdir, schema, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Pre-existing local state the dump must wipe.
	if err := follower.appendAdd("stale", 9, payload(t, rect(t, schema, 9))); err != nil {
		t.Fatal(err)
	}
	applyBatch(t, follower, b)
	if follower.Pos() != primary.Pos() {
		t.Fatalf("Pos = %d after install, want %d", follower.Pos(), primary.Pos())
	}
	demandSameState(t, follower, primary)

	if err := follower.Close(); err != nil {
		t.Fatal(err)
	}
	recovered, err := Open(fdir, schema, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	if recovered.Pos() != primary.Pos() {
		t.Fatalf("recovered Pos = %d, want %d", recovered.Pos(), primary.Pos())
	}
	demandSameState(t, recovered, primary)
}

// TestGroupCommitTornTailBattery: with SyncEvery (group commit) the
// window since the last fsync is exposed to power failure. Simulate every
// interesting tear of that window — each record boundary and a mid-record
// cut — and demand recovery to exactly the clean prefix: records wholly
// before the cut survive, the torn record and everything after it are
// gone, and recovery itself never errors (a torn tail is a crash artifact,
// not corruption).
func TestGroupCommitTornTailBattery(t *testing.T) {
	schema := testSchema()
	live := t.TempDir()
	// An interval the test never reaches keeps every append unsynced: the
	// whole log is one exposed window, the worst case.
	st, err := Open(live, schema, Options{SyncEvery: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	type step struct {
		remove  bool
		link    string
		sid     uint64
		rectIdx int
		offset  int64 // segment size after the record landed
	}
	steps := []step{
		{link: "a", sid: 1, rectIdx: 0},
		{link: "a", sid: 2, rectIdx: 1},
		{link: "b", sid: 1, rectIdx: 2},
		{remove: true, link: "a", sid: 1},
		{link: "b", sid: 2, rectIdx: 3},
		{remove: true, link: "b", sid: 1},
		{link: "a", sid: 3, rectIdx: 4},
	}
	seq, _ := finalSegment(t, live)
	seg := filepath.Join(live, segmentName(seq))
	for i := range steps {
		s := &steps[i]
		var err error
		if s.remove {
			err = st.appendRemove(s.link, s.sid)
		} else {
			err = st.appendAdd(s.link, s.sid, payload(t, rect(t, schema, s.rectIdx)))
		}
		if err != nil {
			t.Fatal(err)
		}
		fi, err := os.Stat(seg)
		if err != nil {
			t.Fatal(err)
		}
		s.offset = fi.Size()
	}

	// wantState replays the first n steps into the expected mirror.
	wantState := func(n int) map[string]map[uint64][]byte {
		state := map[string]map[uint64][]byte{}
		for _, s := range steps[:n] {
			if s.remove {
				delete(state[s.link], s.sid)
				continue
			}
			if state[s.link] == nil {
				state[s.link] = map[uint64][]byte{}
			}
			state[s.link][s.sid] = payload(t, rect(t, schema, s.rectIdx))
		}
		return state
	}

	type cutpoint struct {
		name     string
		offset   int64
		survived int
	}
	var cuts []cutpoint
	for i, s := range steps {
		cuts = append(cuts,
			cutpoint{fmt.Sprintf("boundary-%d", i+1), s.offset, i + 1},
			// One byte short of the boundary tears record i: it and
			// everything after must vanish.
			cutpoint{fmt.Sprintf("torn-%d", i+1), s.offset - 1, i},
		)
	}

	for _, cut := range cuts {
		t.Run(cut.name, func(t *testing.T) {
			dir := cloneDir(t, live)
			if err := os.Truncate(filepath.Join(dir, segmentName(seq)), cut.offset); err != nil {
				t.Fatal(err)
			}
			rst, err := Open(dir, schema, Options{SyncEvery: time.Hour})
			if err != nil {
				t.Fatalf("recovery after tear at %d bytes: %v", cut.offset, err)
			}
			defer rst.Close()
			if got, want := rst.Pos(), uint64(cut.survived); got != want {
				t.Fatalf("Pos = %d, want %d surviving records", got, want)
			}
			want := wantState(cut.survived)
			for link, sids := range want {
				if len(sids) == 0 {
					continue
				}
				entries := rst.Entries(link)
				if len(entries) != len(sids) {
					t.Fatalf("link %q: %d entries, want %d", link, len(entries), len(sids))
				}
				for _, e := range entries {
					if !bytes.Equal(sids[e.SID], e.Payload) {
						t.Fatalf("link %q sid %d: payload diverges from the clean prefix", link, e.SID)
					}
				}
			}
		})
	}
}

// TestSyncOptionsValidation: the group-commit knob composes with nothing
// else that fsyncs per append.
func TestSyncOptionsValidation(t *testing.T) {
	schema := testSchema()
	if _, err := Open(t.TempDir(), schema, Options{Sync: true, SyncEvery: time.Second}); err == nil {
		t.Fatal("Sync together with SyncEvery must be refused")
	}
	if _, err := Open(t.TempDir(), schema, Options{SyncEvery: -time.Second}); err == nil {
		t.Fatal("negative SyncEvery must be refused")
	}
}
