package persist

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sfccover/internal/core"
	"sfccover/internal/engine"
	"sfccover/internal/subscription"
)

// The crash battery: drive a deterministic workload (adds, removes, a
// mid-stream snapshot, segment rotations) against a durable provider
// while journaling, for every operation, where its WAL record ended. Then
// for every crash point — every byte offset of the final segment — clone
// the data dir, truncate it there, recover, and demand bit-identical
// FindCover/FindCovered answers against a never-crashed twin built by
// replaying exactly the operations whose records survived the cut.
//
// The Detector backend runs the full per-byte sweep; the engine backends
// (hash and curve-prefix) and the remote backend (in internal/sfcd) run
// the same battery at record granularity plus torn mid-record offsets.

// op is one journaled workload step.
type op struct {
	remove  bool
	link    string
	rectIdx int    // add: which rect
	sid     uint64 // remove: which durable sid
	// seq/offset locate the op's WAL record: the byte offset after the
	// record in segment seq. An op survives a crash at byte N of the
	// final segment iff seq < finalSeq or offset <= N.
	seq    uint64
	offset int64
}

// crashWorkload drives the canonical battery workload against providers
// built by mk (one per link), journaling every op's record location.
// Returns the journal; the store is left un-Closed, as a crash would.
func crashWorkload(t *testing.T, st *Store, mk func() core.Provider) []op {
	t.Helper()
	schema := st.Schema()
	provs := map[string]*DurableProvider{}
	for _, link := range []string{"", "L"} {
		d, err := st.Durable(link, mk())
		if err != nil {
			t.Fatal(err)
		}
		provs[link] = d
	}
	var journal []op
	sids := map[string][]uint64{}
	locate := func() (uint64, int64) {
		t.Helper()
		segs, err := listSeqs(st.dir, "wal-", ".log")
		if err != nil || len(segs) == 0 {
			t.Fatalf("locating final segment: %v (%d segs)", err, len(segs))
		}
		seq := segs[len(segs)-1]
		fi, err := os.Stat(filepath.Join(st.dir, segmentName(seq)))
		if err != nil {
			t.Fatal(err)
		}
		return seq, fi.Size()
	}
	add := func(link string, i int) {
		t.Helper()
		sid, err := provs[link].Insert(rect(t, schema, i))
		if err != nil {
			t.Fatal(err)
		}
		sids[link] = append(sids[link], sid)
		seq, off := locate()
		journal = append(journal, op{link: link, rectIdx: i, seq: seq, offset: off})
	}
	remove := func(link string, k int) {
		t.Helper()
		sid := sids[link][k]
		if err := provs[link].Remove(sid); err != nil {
			t.Fatal(err)
		}
		seq, off := locate()
		journal = append(journal, op{remove: true, link: link, sid: sid, seq: seq, offset: off})
	}

	for i := 0; i < 5; i++ {
		add("", i)
		add("L", i+5)
	}
	remove("", 2)
	remove("L", 0)
	if err := st.Snapshot(); err != nil {
		t.Fatal(err)
	}
	for i := 10; i < 14; i++ {
		add("", i)
	}
	add("L", 14)
	remove("", 5) // rect 10, logged after the snapshot
	add("L", 15)
	return journal
}

// cloneDir copies every regular file of src into a fresh temp dir.
func cloneDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// finalSegment returns the newest segment's seq and size.
func finalSegment(t *testing.T, dir string) (uint64, int64) {
	t.Helper()
	segs, err := listSeqs(dir, "wal-", ".log")
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments in %s", dir)
	}
	seq := segs[len(segs)-1]
	fi, err := os.Stat(filepath.Join(dir, segmentName(seq)))
	if err != nil {
		t.Fatal(err)
	}
	return seq, fi.Size()
}

// twinFor builds the never-crashed twin of a crash point: a fresh durable
// provider pair that executes exactly the journal prefix surviving the
// cut. Deterministic sid assignment makes its ids the ground truth the
// recovered provider must reproduce bit-identically.
func twinFor(t *testing.T, schema *subscription.Schema, mk func() core.Provider, journal []op, finalSeq uint64, n int64) (map[string]*DurableProvider, func()) {
	t.Helper()
	st, err := Open(t.TempDir(), schema, Options{})
	if err != nil {
		t.Fatal(err)
	}
	provs := map[string]*DurableProvider{}
	for _, link := range []string{"", "L"} {
		d, err := st.Durable(link, mk())
		if err != nil {
			t.Fatal(err)
		}
		provs[link] = d
	}
	for _, o := range journal {
		if o.seq > finalSeq || (o.seq == finalSeq && o.offset > n) {
			continue // this record did not survive the crash
		}
		if o.remove {
			if err := provs[o.link].Remove(o.sid); err != nil {
				t.Fatal(err)
			}
		} else if _, err := provs[o.link].Insert(rect(t, schema, o.rectIdx)); err != nil {
			t.Fatal(err)
		}
	}
	return provs, func() {
		for _, d := range provs {
			d.Close()
		}
		st.Close()
	}
}

// probeFingerprint fingerprints both covering directions over the whole
// rect family (stored or not) for one provider.
func probeFingerprint(t *testing.T, schema *subscription.Schema, p core.Provider) string {
	t.Helper()
	return fmt.Sprintf("len=%d;%s", p.Len(), coverAnswers(t, schema, p, 16))
}

// runCrashBattery is the shared battery body. byteGranular sweeps every
// byte of the final segment; otherwise the crash points are each record
// boundary plus a torn offset inside each record.
func runCrashBattery(t *testing.T, schema *subscription.Schema, mk func() core.Provider, byteGranular bool) {
	live := t.TempDir()
	st, err := Open(live, schema, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	journal := crashWorkload(t, st, mk)
	// Abandon st without Close: the on-disk state is the crash image.
	finalSeq, finalSize := finalSegment(t, live)

	var points []int64
	if byteGranular {
		for n := int64(0); n <= finalSize; n++ {
			points = append(points, n)
		}
	} else {
		// Record boundaries plus one torn offset: the byte-granular sweep
		// already exercises every torn position on the Detector backend.
		points = append(points, int64(len(walMagic)))
		torn := false
		for _, o := range journal {
			if o.seq == finalSeq {
				if !torn {
					points = append(points, o.offset-3)
					torn = true
				}
				points = append(points, o.offset)
			}
		}
		points = append(points, finalSize)
	}

	for _, n := range points {
		if n < 0 || n > finalSize {
			continue
		}
		n := n
		t.Run(fmt.Sprintf("crash@%d", n), func(t *testing.T) {
			dir := cloneDir(t, live)
			if err := os.Truncate(filepath.Join(dir, segmentName(finalSeq)), n); err != nil {
				t.Fatal(err)
			}
			rst, err := Open(dir, schema, Options{})
			if err != nil {
				t.Fatalf("recovery at crash point %d: %v", n, err)
			}
			defer rst.Close()
			twins, closeTwins := twinFor(t, schema, mk, journal, finalSeq, n)
			defer closeTwins()
			for _, link := range []string{"", "L"} {
				rec, err := rst.Durable(link, mk())
				if err != nil {
					t.Fatalf("link %q: %v", link, err)
				}
				got := probeFingerprint(t, schema, rec)
				want := probeFingerprint(t, schema, twins[link])
				rec.Close()
				if got != want {
					t.Fatalf("link %q diverges at crash point %d:\n got %s\nwant %s", link, n, got, want)
				}
				if n == finalSize && !strings.Contains(want, "true") {
					t.Fatalf("vacuous battery: the full-state twin finds no covers on link %q: %s", link, want)
				}
			}
		})
	}
}

func detectorBackend(schema *subscription.Schema) func() core.Provider {
	return func() core.Provider {
		return core.MustNew(core.Config{Schema: schema, Mode: core.ModeExact, Strategy: core.StrategyLinear})
	}
}

func engineBackend(t *testing.T, schema *subscription.Schema, part engine.Partition) func() core.Provider {
	return func() core.Provider {
		// Exact mode over the SFC index: the anti-chain family's one-sided
		// constraints keep exhaustive decomposition cheap, and TrackCovered
		// makes recovery rebuild the mirrored index too.
		e, err := engine.New(engine.Config{
			Detector: core.Config{
				Schema: schema, Mode: core.ModeExact,
				TrackCovered: true, Seed: 7,
			},
			Shards:    4,
			Partition: part,
			Workers:   2,
		})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
}

// TestCrashRecoveryDetectorEveryByte sweeps every byte offset of the
// final WAL segment as a crash point on the Detector backend.
func TestCrashRecoveryDetectorEveryByte(t *testing.T) {
	schema := testSchema()
	runCrashBattery(t, schema, detectorBackend(schema), true)
}

// TestCrashRecoveryEngineHash runs the battery at record granularity on
// the hash-partitioned engine.
func TestCrashRecoveryEngineHash(t *testing.T) {
	schema := testSchema()
	runCrashBattery(t, schema, engineBackend(t, schema, engine.PartitionHash), false)
}

// TestCrashRecoveryEnginePrefix runs the battery at record granularity on
// the curve-prefix engine (the shared-decomposition plan).
func TestCrashRecoveryEnginePrefix(t *testing.T) {
	schema := testSchema()
	runCrashBattery(t, schema, engineBackend(t, schema, engine.PartitionPrefix), false)
}

// TestCrashDuplicatedSegment replays a duplicated final segment: record
// idempotency must make recovery identical to the never-crashed twin.
func TestCrashDuplicatedSegment(t *testing.T) {
	schema := testSchema()
	live := t.TempDir()
	st, err := Open(live, schema, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	mk := detectorBackend(schema)
	journal := crashWorkload(t, st, mk)
	finalSeq, finalSize := finalSegment(t, live)

	dir := cloneDir(t, live)
	data, err := os.ReadFile(filepath.Join(dir, segmentName(finalSeq)))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, segmentName(finalSeq+1)), data, 0o644); err != nil {
		t.Fatal(err)
	}
	rst, err := Open(dir, schema, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rst.Close()
	twins, closeTwins := twinFor(t, schema, mk, journal, finalSeq, finalSize)
	defer closeTwins()
	for _, link := range []string{"", "L"} {
		rec, err := rst.Durable(link, mk())
		if err != nil {
			t.Fatal(err)
		}
		got, want := probeFingerprint(t, schema, rec), probeFingerprint(t, schema, twins[link])
		rec.Close()
		if got != want {
			t.Fatalf("duplicated segment diverges on link %q:\n got %s\nwant %s", link, got, want)
		}
	}
}

// TestCrashMidCompactionLeftovers: a crash between snapshot publication
// and old-segment deletion leaves superseded segments behind; recovery
// must skip them by sequence, not replay stale records over the snapshot.
func TestCrashMidCompactionLeftovers(t *testing.T) {
	schema := testSchema()
	live := t.TempDir()
	st, err := Open(live, schema, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	mk := detectorBackend(schema)
	journal := crashWorkload(t, st, mk)
	finalSeq, finalSize := finalSegment(t, live)

	dir := cloneDir(t, live)
	// Resurrect a stale pre-cutoff segment holding a record that was
	// superseded: an add of a long-removed sid. If recovery replayed it,
	// the removed subscription would resurrect.
	stale := appendRecord(nil, record{op: opAdd, link: "", sid: 3, payload: payload(t, rect(t, schema, 2))})
	if err := os.WriteFile(filepath.Join(dir, segmentName(1)), append([]byte(walMagic), stale...), 0o644); err != nil {
		t.Fatal(err)
	}
	rst, err := Open(dir, schema, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rst.Close()
	twins, closeTwins := twinFor(t, schema, mk, journal, finalSeq, finalSize)
	defer closeTwins()
	for _, link := range []string{"", "L"} {
		rec, err := rst.Durable(link, mk())
		if err != nil {
			t.Fatal(err)
		}
		got, want := probeFingerprint(t, schema, rec), probeFingerprint(t, schema, twins[link])
		rec.Close()
		if got != want {
			t.Fatalf("stale segment leaked into recovery on link %q:\n got %s\nwant %s", link, got, want)
		}
	}
}
