package persist

import (
	"bytes"
	"testing"

	"sfccover/internal/subscription"
)

// fuzzSeedBytes builds a realistic WAL segment and snapshot for the seed
// corpora.
func fuzzSeedBytes(tb testing.TB) (segment, snapshot []byte) {
	schema := subscription.MustSchema(8, "x", "y")
	pay := func(expr string) []byte {
		raw, err := subscription.MustParse(schema, expr).MarshalBinary()
		if err != nil {
			tb.Fatal(err)
		}
		return raw
	}
	segment = []byte(walMagic)
	segment = appendRecord(segment, record{op: opAdd, link: "", sid: 1, payload: pay("x >= 3")})
	segment = appendRecord(segment, record{op: opAdd, link: "b0-n1", sid: 2, payload: pay("x <= 9 && y in [4,5]")})
	segment = appendRecord(segment, record{op: opRem, link: "", sid: 1})
	snapshot = encodeSnapshot(schema, map[string]map[uint64][]byte{
		"":      {1: pay("x >= 3")},
		"b0-n1": {2: pay("y == 7"), 9: pay("x in [1,200]")},
	}, 7)
	return segment, snapshot
}

// FuzzWALDecode hardens segment replay against arbitrary bytes: replay
// must never panic, every decoded record must survive an
// encode-decode-encode round trip, and the tolerated-torn-tail rule must
// be consistent (a segment that replays cleanly as non-final replays
// identically as final).
func FuzzWALDecode(f *testing.F) {
	seg, _ := fuzzSeedBytes(f)
	f.Add(seg)
	f.Add([]byte(walMagic))
	f.Add([]byte{})
	f.Add(append([]byte(walMagic), 0x05, 'A', 0x00, 0x01, 0xDE, 0xAD, 0xBE, 0xEF))
	f.Fuzz(func(t *testing.T, data []byte) {
		var strict []record
		strictErr := replayBytes(data, "fuzz", false, func(r record) { strict = append(strict, r) })
		var tolerant []record
		if err := replayBytes(data, "fuzz", true, func(r record) { tolerant = append(tolerant, r) }); err != nil && strictErr == nil {
			t.Fatalf("final replay failed where strict replay succeeded: %v", err)
		}
		if strictErr == nil && len(strict) != len(tolerant) {
			t.Fatalf("strict replay decoded %d records, tolerant %d, from identical clean bytes", len(strict), len(tolerant))
		}
		for _, r := range tolerant {
			re := appendRecord(nil, r)
			back, rest, err := decodeRecord(re)
			if err != nil || len(rest) != 0 {
				t.Fatalf("re-encoded record does not decode: %v (%d leftover)", err, len(rest))
			}
			if back.op != r.op || back.link != r.link || back.sid != r.sid || !bytes.Equal(back.payload, r.payload) {
				t.Fatalf("record round trip changed %+v into %+v", r, back)
			}
		}
	})
}

// FuzzSnapshotDecode hardens snapshot decoding against arbitrary bytes:
// decode must never panic, and whatever decodes must re-encode (under the
// seed schema) into bytes that decode back to the identical state.
func FuzzSnapshotDecode(f *testing.F) {
	_, snap := fuzzSeedBytes(f)
	f.Add(snap)
	f.Add([]byte(snapMagic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		links, basePos, err := decodeSnapshot(nil, data)
		if err != nil {
			return
		}
		// Whatever decoded is structurally sound: re-encoding it under any
		// schema and decoding again must reproduce it exactly.
		schema := subscription.MustSchema(8, "x", "y")
		re := encodeSnapshot(schema, links, basePos)
		back, backPos, err := decodeSnapshot(schema, re)
		if err != nil {
			t.Fatalf("re-encoded snapshot does not decode: %v", err)
		}
		if backPos != basePos {
			t.Fatalf("round trip changed basePos %d -> %d", basePos, backPos)
		}
		if len(back) != len(links) {
			t.Fatalf("round trip changed link count %d -> %d", len(links), len(back))
		}
		for name, state := range links {
			bstate, ok := back[name]
			if !ok || len(bstate) != len(state) {
				t.Fatalf("round trip lost link %q", name)
			}
			for sid, payload := range state {
				if !bytes.Equal(bstate[sid], payload) {
					t.Fatalf("round trip changed link %q sid %d payload", name, sid)
				}
			}
		}
	})
}
