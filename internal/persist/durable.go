package persist

import (
	"fmt"
	"sync"

	"sfccover/internal/core"
	"sfccover/internal/dominance"
	"sfccover/internal/subscription"
)

// DurableProvider makes any core.Provider durable: every add and remove
// is logged to the store's WAL before the call returns, and construction
// (Store.Durable) rebuilds the wrapped provider from the recovered
// subscription dump via the bulk-load path. The wrapper owns the id
// space callers see — durable sids, stable across restarts — and maps
// them to whatever ids the wrapped provider assigns in this incarnation,
// so a recovered provider answers FindCover/FindCovered with the same
// sids the pre-crash one did.
//
// A DurableProvider forwards the wrapped provider's optional capabilities
// (batch queries and writes, rebalancing, covered-set drains) with id
// translation at the boundary, and adds core.Persister (Snapshot) and
// core.Enumerator (the recovered dump) of its own. Close closes the
// wrapped provider and releases the link for re-wrapping; the Store is
// closed separately by its owner.
type DurableProvider struct {
	inner core.Provider
	store *Store
	link  string

	mu      sync.Mutex
	toInner map[uint64]uint64 // durable sid -> inner id
	toOuter map[uint64]uint64 // inner id -> durable sid
	nextSID uint64
}

var _ core.Provider = (*DurableProvider)(nil)
var _ core.BatchQuerier = (*DurableProvider)(nil)
var _ core.BatchWriter = (*DurableProvider)(nil)
var _ core.Rebalancer = (*DurableProvider)(nil)
var _ core.CoveredDrainer = (*DurableProvider)(nil)
var _ core.Persister = (*DurableProvider)(nil)
var _ core.Enumerator = (*DurableProvider)(nil)
var _ core.BulkInserter = (*DurableProvider)(nil)

// Durable wraps inner with durability for one link namespace, bulk-loading
// the link's recovered subscriptions into it first. inner must be empty
// (recovery owns its content), share the store's schema, and not already
// be wrapped for the same link.
func (st *Store) Durable(link string, inner core.Provider) (*DurableProvider, error) {
	if inner.Schema() != st.schema {
		return nil, fmt.Errorf("persist: provider schema differs from store schema")
	}
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return nil, ErrClosed
	}
	if st.wrapped[link] {
		st.mu.Unlock()
		return nil, fmt.Errorf("persist: link %q is already wrapped", link)
	}
	st.wrapped[link] = true
	st.mu.Unlock()

	d := &DurableProvider{
		inner:   inner,
		store:   st,
		link:    link,
		toInner: make(map[uint64]uint64),
		toOuter: make(map[uint64]uint64),
		nextSID: 1,
	}
	if err := d.load(); err != nil {
		st.mu.Lock()
		delete(st.wrapped, link)
		st.mu.Unlock()
		return nil, err
	}
	return d, nil
}

// load rebuilds inner from the link's recovered entries: payloads decode
// against the schema, the sorted dump feeds the provider's bulk-load
// capability when it has one, and the sid maps are seeded.
//
//sfc:walok recovery replays records already on disk; appending them again would double the log every boot
func (d *DurableProvider) load() error {
	if d.inner.Len() != 0 {
		// Enforced even with nothing to recover: pre-existing
		// subscriptions would have no sid mappings (covers silently
		// suppressed) and would never be persisted.
		return fmt.Errorf("persist: wrapping link %q needs an empty provider, got %d held subscriptions", d.link, d.inner.Len())
	}
	entries := d.store.Entries(d.link)
	if len(entries) == 0 {
		return nil
	}
	subs := make([]*subscription.Subscription, len(entries))
	for i, e := range entries {
		s, err := subscription.UnmarshalSubscription(d.inner.Schema(), e.Payload)
		if err != nil {
			return fmt.Errorf("%w: link %q sid %d payload does not decode: %v", ErrCorrupt, d.link, e.SID, err)
		}
		subs[i] = s
	}
	var ids []uint64
	if bi, ok := d.inner.(core.BulkInserter); ok {
		var err error
		if ids, err = bi.InsertBatch(subs); err != nil {
			return fmt.Errorf("persist: bulk-loading link %q: %w", d.link, err)
		}
	} else {
		ids = make([]uint64, len(subs))
		for i, s := range subs {
			id, err := d.inner.Insert(s)
			if err != nil {
				return fmt.Errorf("persist: loading link %q: %w", d.link, err)
			}
			ids[i] = id
		}
	}
	for i, e := range entries {
		d.toInner[e.SID] = ids[i]
		d.toOuter[ids[i]] = e.SID
		if e.SID >= d.nextSID {
			d.nextSID = e.SID + 1
		}
	}
	return nil
}

// Link returns the provider's namespace in the store.
func (d *DurableProvider) Link() string { return d.link }

// Store returns the backing store.
func (d *DurableProvider) Store() *Store { return d.store }

// assign claims the next durable sid for an inner id.
func (d *DurableProvider) assign(innerID uint64) uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	sid := d.nextSID
	d.nextSID++
	d.toInner[sid] = innerID
	d.toOuter[innerID] = sid
	return sid
}

// unmap drops a sid's translation entries.
func (d *DurableProvider) unmap(sid uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if innerID, ok := d.toInner[sid]; ok {
		delete(d.toInner, sid)
		delete(d.toOuter, innerID)
	}
}

// outer translates an inner id to its durable sid. A hit that raced a
// concurrent removal translates to a miss — the serialization where the
// removal came first.
func (d *DurableProvider) outer(innerID uint64, found bool) (uint64, bool) {
	if !found {
		return 0, false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	sid, ok := d.toOuter[innerID]
	return sid, ok
}

// logAdd persists one arrival, rolling the insert back out of the inner
// provider when the log rejects it so memory never runs ahead of disk.
func (d *DurableProvider) logAdd(sid, innerID uint64, s *subscription.Subscription) error {
	payload, err := s.MarshalBinary()
	if err == nil {
		err = d.store.appendAdd(d.link, sid, payload)
	}
	if err != nil {
		d.unmap(sid)
		d.inner.Remove(innerID) //nolint:errcheck // best-effort rollback of our own insert
		return err
	}
	return nil
}

// Add runs the arrival path on the wrapped provider and logs the insert.
func (d *DurableProvider) Add(s *subscription.Subscription) (id uint64, covered bool, coveredBy uint64, err error) {
	innerID, covered, coveredByInner, err := d.inner.Add(s)
	if err != nil {
		return 0, false, 0, err
	}
	sid := d.assign(innerID)
	if err := d.logAdd(sid, innerID, s); err != nil {
		return 0, false, 0, err
	}
	coveredSID, ok := d.outer(coveredByInner, covered)
	return sid, ok, coveredSID, nil
}

// Insert stores s unconditionally and logs it.
func (d *DurableProvider) Insert(s *subscription.Subscription) (uint64, error) {
	innerID, err := d.inner.Insert(s)
	if err != nil {
		return 0, err
	}
	sid := d.assign(innerID)
	if err := d.logAdd(sid, innerID, s); err != nil {
		return 0, err
	}
	return sid, nil
}

// Remove deletes a subscription by durable sid: the sid is claimed out
// of the id maps, the removal is logged, and only then does the wrapped
// provider drop it — so a failed log write (disk full, closed store)
// restores the claim and leaves memory and durable state agreeing that
// the subscription is still held. (A crash between log and apply loses
// only an unacknowledged removal, which recovery completes.)
func (d *DurableProvider) Remove(sid uint64) error {
	d.mu.Lock()
	innerID, ok := d.toInner[sid]
	if ok {
		delete(d.toInner, sid)
		delete(d.toOuter, innerID)
	}
	d.mu.Unlock()
	if !ok {
		return fmt.Errorf("persist: no subscription with id %d", sid)
	}
	if err := d.store.appendRemove(d.link, sid); err != nil {
		d.mu.Lock()
		d.toInner[sid] = innerID
		d.toOuter[innerID] = sid
		d.mu.Unlock()
		return err
	}
	return d.inner.Remove(innerID)
}

// FindCover searches the wrapped provider, translating the answer to its
// durable sid.
func (d *DurableProvider) FindCover(s *subscription.Subscription) (id uint64, found bool, stats dominance.Stats, err error) {
	innerID, found, stats, err := d.inner.FindCover(s)
	if err != nil {
		return 0, false, stats, err
	}
	sid, ok := d.outer(innerID, found)
	return sid, ok, stats, nil
}

// FindCovered searches the wrapped provider for a subscription s covers.
func (d *DurableProvider) FindCovered(s *subscription.Subscription) (id uint64, found bool, stats dominance.Stats, err error) {
	innerID, found, stats, err := d.inner.FindCovered(s)
	if err != nil {
		return 0, false, stats, err
	}
	sid, ok := d.outer(innerID, found)
	return sid, ok, stats, nil
}

// CoverQueryBatch implements core.BatchQuerier through the wrapped
// provider's batch capability (or per-item queries), translating ids.
func (d *DurableProvider) CoverQueryBatch(subs []*subscription.Subscription) []core.QueryResult {
	out := core.CoverQueries(d.inner, subs)
	for i := range out {
		if out[i].Err != nil {
			continue
		}
		out[i].CoveredBy, out[i].Covered = d.outer(out[i].CoveredBy, out[i].Covered)
	}
	return out
}

// AddBatch implements core.BatchWriter: the arrival path runs on the
// wrapped provider's batch capability, then the whole batch's add records
// land through one log write (one lock acquisition, one syscall — the
// same amortization the engine's shard-grouped insert buys in memory).
// The log write is all-or-nothing: a failure rolls every batch insert
// back out of the wrapped provider and occupies every slot.
func (d *DurableProvider) AddBatch(subs []*subscription.Subscription) []core.AddResult {
	out := core.AddAll(d.inner, subs)
	type pending struct {
		slot    int
		sid     uint64
		innerID uint64
	}
	var pendings []pending
	var batch []record
	for i := range out {
		if out[i].Err != nil {
			continue
		}
		payload, err := subs[i].MarshalBinary()
		if err != nil {
			d.inner.Remove(out[i].ID) //nolint:errcheck // best-effort rollback of our own insert
			out[i] = core.AddResult{QueryResult: core.QueryResult{Err: err}}
			continue
		}
		sid := d.assign(out[i].ID)
		pendings = append(pendings, pending{slot: i, sid: sid, innerID: out[i].ID})
		batch = append(batch, record{op: opAdd, link: d.link, sid: sid, payload: payload})
	}
	if err := d.store.appendBatch(batch); err != nil {
		for _, p := range pendings {
			d.unmap(p.sid)
			d.inner.Remove(p.innerID) //nolint:errcheck // best-effort rollback of our own insert
			out[p.slot] = core.AddResult{QueryResult: core.QueryResult{Err: err}}
		}
		return out
	}
	for _, p := range pendings {
		out[p.slot].ID = p.sid
		out[p.slot].CoveredBy, out[p.slot].Covered = d.outer(out[p.slot].CoveredBy, out[p.slot].Covered)
	}
	return out
}

// InsertBatch implements core.BulkInserter over durable sids: the whole
// batch lands in the wrapped provider — through its own bulk capability
// when it has one — and then through one log write, the same
// amortization AddBatch buys. All-or-nothing: a marshal, insert, or log
// failure rolls every insert of this batch back out of the wrapped
// provider.
func (d *DurableProvider) InsertBatch(subs []*subscription.Subscription) ([]uint64, error) {
	if len(subs) == 0 {
		return nil, nil
	}
	payloads := make([][]byte, len(subs))
	for i, s := range subs {
		p, err := s.MarshalBinary()
		if err != nil {
			return nil, err
		}
		payloads[i] = p
	}
	var innerIDs []uint64
	if bi, ok := d.inner.(core.BulkInserter); ok {
		ids, err := bi.InsertBatch(subs)
		if err != nil {
			return nil, err
		}
		innerIDs = ids
	} else {
		for _, s := range subs {
			id, err := d.inner.Insert(s)
			if err != nil {
				for _, prev := range innerIDs {
					d.inner.Remove(prev) //nolint:errcheck // best-effort rollback of our own insert
				}
				return nil, err
			}
			innerIDs = append(innerIDs, id)
		}
	}
	sids := make([]uint64, len(subs))
	batch := make([]record, len(subs))
	for i, innerID := range innerIDs {
		sids[i] = d.assign(innerID)
		batch[i] = record{op: opAdd, link: d.link, sid: sids[i], payload: payloads[i]}
	}
	if err := d.store.appendBatch(batch); err != nil {
		for i, sid := range sids {
			d.unmap(sid)
			d.inner.Remove(innerIDs[i]) //nolint:errcheck // best-effort rollback of our own insert
		}
		return nil, err
	}
	return sids, nil
}

// RemoveBatch implements core.BatchWriter over durable sids, with the
// same claim → log → apply ordering as Remove: the batch's remove
// records land through one log write before the wrapped provider drops
// anything, and a failed log write restores every claim.
func (d *DurableProvider) RemoveBatch(sids []uint64) []error {
	out := make([]error, len(sids))
	innerIDs := make([]uint64, 0, len(sids))
	slots := make([]int, 0, len(sids))
	batch := make([]record, 0, len(sids))
	d.mu.Lock()
	for i, sid := range sids {
		if innerID, ok := d.toInner[sid]; ok {
			delete(d.toInner, sid)
			delete(d.toOuter, innerID)
			innerIDs = append(innerIDs, innerID)
			slots = append(slots, i)
			batch = append(batch, record{op: opRem, link: d.link, sid: sid})
		} else {
			out[i] = fmt.Errorf("persist: no subscription with id %d", sid)
		}
	}
	d.mu.Unlock()
	if err := d.store.appendBatch(batch); err != nil {
		d.mu.Lock()
		for k, i := range slots {
			d.toInner[sids[i]] = innerIDs[k]
			d.toOuter[innerIDs[k]] = sids[i]
			out[i] = err
		}
		d.mu.Unlock()
		return out
	}
	errs := core.RemoveAll(d.inner, innerIDs)
	for k, i := range slots {
		if errs[k] != nil {
			out[i] = errs[k]
		}
	}
	return out
}

// DrainCovered implements core.CoveredDrainer: the wrapped provider's
// one-pass drain when it has the capability, the FindCovered pop loop
// otherwise — either way every drained subscription is logged removed,
// the whole drain through one log write. A failed log write re-inserts
// the drained subscriptions into the wrapped provider (under fresh inner
// ids, remapped to their original sids) so memory never runs ahead of
// durable state.
func (d *DurableProvider) DrainCovered(s *subscription.Subscription) ([]core.Drained, error) {
	if dr, ok := d.inner.(core.CoveredDrainer); ok {
		//sfc:walok the drained set is unknowable before draining; a failed log write re-inserts it below, so memory never outruns disk
		drained, err := dr.DrainCovered(s)
		if err != nil {
			return nil, err
		}
		out := make([]core.Drained, 0, len(drained))
		batch := make([]record, 0, len(drained))
		for _, it := range drained {
			sid, ok := d.outer(it.ID, true)
			if !ok {
				continue // raced a concurrent removal; nothing to log
			}
			batch = append(batch, record{op: opRem, link: d.link, sid: sid})
			out = append(out, core.Drained{ID: sid, Sub: it.Sub})
		}
		if err := d.store.appendBatch(batch); err != nil {
			for _, it := range out {
				innerID, insErr := d.inner.Insert(it.Sub)
				if insErr != nil {
					return nil, fmt.Errorf("%v (and restoring drained id %d failed: %v)", err, it.ID, insErr)
				}
				d.mu.Lock()
				d.toInner[it.ID] = innerID
				d.toOuter[innerID] = it.ID
				d.mu.Unlock()
			}
			return nil, err
		}
		for _, it := range out {
			d.unmap(it.ID)
		}
		return out, nil
	}
	var out []core.Drained
	for {
		sid, found, _, err := d.FindCovered(s)
		if err != nil {
			return out, err
		}
		if !found {
			return out, nil
		}
		sub, ok := d.Subscription(sid)
		if !ok {
			return out, fmt.Errorf("persist: id %d vanished mid-drain", sid)
		}
		if err := d.Remove(sid); err != nil {
			return out, err
		}
		out = append(out, core.Drained{ID: sid, Sub: sub})
	}
}

// Rebalance implements core.Rebalancer when the wrapped provider does;
// otherwise it reports core.ErrRebalanceUnsupported. Rebalancing moves
// where entries are indexed, never what is persisted, so the log is
// untouched.
func (d *DurableProvider) Rebalance() (core.RebalanceResult, error) {
	if rb, ok := d.inner.(core.Rebalancer); ok {
		return rb.Rebalance()
	}
	return core.RebalanceResult{}, core.ErrRebalanceUnsupported
}

// Snapshot implements core.Persister: a snapshot of the whole store (all
// links — the log is shared, so compaction is all-or-nothing).
func (d *DurableProvider) Snapshot() error { return d.store.Snapshot() }

// Subscriptions implements core.Enumerator from the store's mirror,
// sorted by sid.
func (d *DurableProvider) Subscriptions() []core.Drained {
	entries := d.store.Entries(d.link)
	out := make([]core.Drained, 0, len(entries))
	for _, e := range entries { // Entries is already sid-sorted
		s, err := subscription.UnmarshalSubscription(d.inner.Schema(), e.Payload)
		if err != nil {
			continue // the payload decoded at load time; cannot happen
		}
		out = append(out, core.Drained{ID: e.SID, Sub: s})
	}
	return out
}

// Subscription resolves a durable sid to its held subscription.
func (d *DurableProvider) Subscription(sid uint64) (*subscription.Subscription, bool) {
	d.mu.Lock()
	innerID, ok := d.toInner[sid]
	d.mu.Unlock()
	if !ok {
		return nil, false
	}
	return d.inner.Subscription(innerID)
}

// Len returns the number of held subscriptions.
func (d *DurableProvider) Len() int { return d.inner.Len() }

// Mode returns the wrapped provider's detection mode.
func (d *DurableProvider) Mode() core.Mode { return d.inner.Mode() }

// Schema returns the wrapped provider's schema.
func (d *DurableProvider) Schema() *subscription.Schema { return d.inner.Schema() }

// Stats returns the wrapped provider's snapshot with the store's
// durability counters folded in. The counters are store-wide — the log
// and its snapshots are shared by every link in the data dir.
func (d *DurableProvider) Stats() core.ProviderStats {
	ps := d.inner.Stats()
	ss := d.store.Stats()
	ps.Snapshots = ss.Snapshots
	ps.WALRecords = ss.WALRecords
	ps.WALBytes = ss.WALBytes
	return ps
}

// Purge logs the removal of every subscription the link holds — the
// durable side of a namespace teardown, so a purged namespace does not
// resurrect on the next boot. The whole purge lands through one log
// write, all-or-nothing. The wrapped provider is not touched.
func (d *DurableProvider) Purge() error {
	entries := d.store.Entries(d.link)
	batch := make([]record, len(entries))
	for i, e := range entries {
		batch[i] = record{op: opRem, link: d.link, sid: e.SID}
	}
	if err := d.store.appendBatch(batch); err != nil {
		return err
	}
	for _, e := range entries {
		d.unmap(e.SID)
	}
	return nil
}

// Close closes the wrapped provider and releases the link name for
// re-wrapping. The store stays open; close it separately.
func (d *DurableProvider) Close() {
	d.inner.Close()
	d.Release()
}

// Release detaches the wrapper from its store link without closing the
// wrapped provider — for owners whose provider outlives the wrapper (the
// daemon server does not own its engine).
func (d *DurableProvider) Release() {
	d.store.mu.Lock()
	delete(d.store.wrapped, d.link)
	d.store.mu.Unlock()
}
