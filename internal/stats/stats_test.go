package stats

import (
	"math"
	"strings"
	"testing"
)

func TestSummarize(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary: %+v", s)
	}
	s := Summarize([]float64{4, 1, 3, 2, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Fatalf("summary: %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2)) > 1e-9 {
		t.Fatalf("std = %v, want sqrt(2)", s.Std)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Summarize mutated input")
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 10}, {1, 40}, {0.5, 25}, {1.5, 40}, {-1, 10},
	}
	for _, tt := range tests {
		if got := Percentile(sorted, tt.p); got != tt.want {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if Percentile(nil, 0.5) != 0 {
		t.Error("empty percentile should be 0")
	}
}

func TestGrowthExponent(t *testing.T) {
	// y = 3 x^2 exactly.
	xs := []float64{1, 2, 4, 8, 16}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 * x * x
	}
	if e := GrowthExponent(xs, ys); math.Abs(e-2) > 1e-9 {
		t.Fatalf("exponent = %v, want 2", e)
	}
	// Constant y -> exponent 0.
	if e := GrowthExponent(xs, []float64{5, 5, 5, 5, 5}); math.Abs(e) > 1e-9 {
		t.Fatalf("constant exponent = %v", e)
	}
	if !math.IsNaN(GrowthExponent([]float64{1}, []float64{1})) {
		t.Fatal("single point should be NaN")
	}
	if !math.IsNaN(GrowthExponent([]float64{0, -1}, []float64{1, 2})) {
		t.Fatal("no usable points should be NaN")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("name", "count", "ratio")
	tb.AddRow("alpha", 12, 0.5)
	tb.AddRow("beta-long-name", 3, 1234567.0)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "name") || !strings.Contains(lines[0], "ratio") {
		t.Fatalf("header missing: %q", lines[0])
	}
	if !strings.Contains(lines[2], "alpha") || !strings.Contains(lines[2], "0.500") {
		t.Fatalf("row 1 wrong: %q", lines[2])
	}
	if !strings.Contains(lines[3], "1234567") {
		t.Fatalf("integer-valued float should render bare: %q", lines[3])
	}
	tb.AddRow("gamma", 1, 1234567.5)
	if !strings.Contains(tb.String(), "1.23e+06") {
		t.Fatalf("large non-integer float not compacted: %s", tb.String())
	}
	// All rows align to the same width.
	if len(lines[0]) != len(lines[1]) {
		t.Fatalf("separator misaligned: %d vs %d", len(lines[0]), len(lines[1]))
	}
}

func TestTableIntegerFloats(t *testing.T) {
	tb := NewTable("v")
	tb.AddRow(42.0)
	if !strings.Contains(tb.String(), "42") || strings.Contains(tb.String(), "42.000") {
		t.Fatalf("integer float should render bare: %s", tb.String())
	}
}
