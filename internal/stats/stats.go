// Package stats provides the small numeric and rendering helpers the
// experiment harness uses: summaries (mean/percentiles), geometric series
// fits for growth-rate checks, and fixed-width text tables matching the
// row/column layout reported in EXPERIMENTS.md.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary describes a sample.
type Summary struct {
	N        int
	Mean     float64
	Std      float64
	Min, Max float64
	P50, P90 float64
	P99      float64
}

// Summarize computes a Summary of xs. An empty sample yields a zero Summary.
func Summarize(xs []float64) Summary {
	var s Summary
	s.N = len(xs)
	if s.N == 0 {
		return s
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var sum, sumSq float64
	for _, x := range sorted {
		sum += x
		sumSq += x * x
	}
	mean := sum / float64(s.N)
	s.Mean = mean
	variance := sumSq/float64(s.N) - mean*mean
	if variance > 0 {
		s.Std = math.Sqrt(variance)
	}
	s.Min = sorted[0]
	s.Max = sorted[s.N-1]
	s.P50 = Percentile(sorted, 0.50)
	s.P90 = Percentile(sorted, 0.90)
	s.P99 = Percentile(sorted, 0.99)
	return s
}

// Percentile returns the p-quantile (0 <= p <= 1) of an ascending-sorted
// sample using nearest-rank interpolation.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// GrowthExponent fits y ≈ c·x^e by least squares in log-log space and
// returns e. It is the tool the harness uses to check claims like
// "exhaustive cost grows as ℓ^(d−1)". Non-positive pairs are skipped;
// fewer than two usable points yield NaN.
func GrowthExponent(xs, ys []float64) float64 {
	var lx, ly []float64
	for i := range xs {
		if i < len(ys) && xs[i] > 0 && ys[i] > 0 {
			lx = append(lx, math.Log(xs[i]))
			ly = append(ly, math.Log(ys[i]))
		}
	}
	n := float64(len(lx))
	if n < 2 {
		return math.NaN()
	}
	var sx, sy, sxx, sxy float64
	for i := range lx {
		sx += lx[i]
		sy += ly[i]
		sxx += lx[i] * lx[i]
		sxy += lx[i] * ly[i]
	}
	denom := n*sxx - sx*sx
	if denom == 0 {
		return math.NaN()
	}
	return (n*sxy - sx*sy) / denom
}

// Table renders fixed-width text tables.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable starts a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == math.Trunc(v) && math.Abs(v) < 1e9:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 1e6 || (v != 0 && math.Abs(v) < 1e-3):
		return fmt.Sprintf("%.3g", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	cols := len(t.header)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.header)
	for _, r := range t.rows {
		measure(r)
	}
	var b strings.Builder
	writeRow := func(r []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(r) {
				cell = r[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	sep := make([]string, cols)
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
