package broker

import (
	"testing"

	"sfccover/internal/core"
	"sfccover/internal/subscription"
)

// TestMultiHopUncover exercises the uncover cascade across several hops: a
// wide subscription suppresses a narrow one at an intermediate broker;
// withdrawing the wide one must re-establish the narrow subscription's
// routing state along the whole path.
func TestMultiHopUncover(t *testing.T) {
	schema := testSchema()
	n := MustNetwork(Line(4), Config{Schema: schema, Mode: core.ModeExact})
	wideClient, _ := n.AttachClient(0)
	narrowClient, _ := n.AttachClient(1)
	pub, _ := n.AttachClient(3)

	wide := subscription.MustParse(schema, "price <= 200")
	narrow := subscription.MustParse(schema, "price in [10,20]")

	if err := n.Subscribe(wideClient.ID, wide); err != nil {
		t.Fatal(err)
	}
	n.Drain()
	if err := n.Subscribe(narrowClient.ID, narrow); err != nil {
		t.Fatal(err)
	}
	n.Drain()
	// narrow is suppressed at broker 1 toward broker 2 (wide already
	// forwarded there) but forwarded toward broker 0 (wide arrived from 0,
	// so nothing covering was ever *sent* toward 0).
	if got := n.Metrics().SuppressedForwards; got != 1 {
		t.Fatalf("suppressed = %d, want 1", got)
	}

	// Withdraw the wide subscription; the retraction travels 0->1->2->3
	// and each hop re-forwards the narrow subscription.
	if err := n.Unsubscribe(wideClient.ID, wide); err != nil {
		t.Fatal(err)
	}
	n.Drain()

	inRange, _ := subscription.ParseEvent(schema, "topic = 0, price = 15")
	outRange, _ := subscription.ParseEvent(schema, "topic = 0, price = 100")
	if err := n.Publish(pub.ID, inRange); err != nil {
		t.Fatal(err)
	}
	if err := n.Publish(pub.ID, outRange); err != nil {
		t.Fatal(err)
	}
	n.Drain()

	if len(narrowClient.Received) != 1 {
		t.Fatalf("narrow client received %d events, want exactly the in-range one", len(narrowClient.Received))
	}
	if len(wideClient.Received) != 0 {
		t.Fatal("unsubscribed wide client must receive nothing")
	}
	if m := n.Metrics(); m.ProtocolErrors != 0 {
		t.Fatalf("protocol errors: %d", m.ProtocolErrors)
	}
}

// TestUncoverChainOfCovers checks the re-forward scan when the removed
// cover was itself covering several subscriptions at different widths.
func TestUncoverChainOfCovers(t *testing.T) {
	schema := testSchema()
	n := MustNetwork(Line(3), Config{Schema: schema, Mode: core.ModeExact})
	c, _ := n.AttachClient(0)
	pub, _ := n.AttachClient(2)

	widest := subscription.MustParse(schema, "price <= 250")
	mid := subscription.MustParse(schema, "price <= 100")
	narrow := subscription.MustParse(schema, "price in [5,10]")
	for _, s := range []*subscription.Subscription{widest, mid, narrow} {
		if err := n.Subscribe(c.ID, s); err != nil {
			t.Fatal(err)
		}
		n.Drain()
	}
	// Only the widest was forwarded.
	if got := n.Metrics().SubscribeMsgs; got != 2 {
		t.Fatalf("forwarded %d msgs, want 2 (widest down 2 links)", got)
	}

	if err := n.Unsubscribe(c.ID, widest); err != nil {
		t.Fatal(err)
	}
	n.Drain()

	// mid must now be forwarded; narrow stays suppressed (covered by mid).
	ev60, _ := subscription.ParseEvent(schema, "topic = 1, price = 60")
	ev7, _ := subscription.ParseEvent(schema, "topic = 1, price = 7")
	ev200, _ := subscription.ParseEvent(schema, "topic = 1, price = 200")
	for _, ev := range []subscription.Event{ev60, ev7, ev200} {
		if err := n.Publish(pub.ID, ev); err != nil {
			t.Fatal(err)
		}
	}
	n.Drain()
	// c holds mid and narrow: expects ev60 (mid) and ev7 (both), not ev200.
	if len(c.Received) != 2 {
		t.Fatalf("received %d events, want 2", len(c.Received))
	}
	if m := n.Metrics(); m.ProtocolErrors != 0 {
		t.Fatalf("protocol errors: %d", m.ProtocolErrors)
	}
}

// TestApproxUncoverSafety runs subscription withdrawal under approximate
// covering: even when the approximate detector misses covers, the uncover
// path must keep delivery intact.
func TestApproxUncoverSafety(t *testing.T) {
	schema := testSchema()
	ops := genWorkload(schema, 17, 150, 6)
	want := oracleDeliveries(ops, 6)
	got := runWorkload(t, Config{
		Schema: schema, Mode: core.ModeApprox, Epsilon: 0.2, MaxCubes: 2000,
	}, Line(5), ops, 6)
	for c := range want {
		if len(got[c]) != len(want[c]) {
			t.Fatalf("client %d: %d events vs oracle %d", c, len(got[c]), len(want[c]))
		}
	}
}
