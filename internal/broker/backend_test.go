package broker

import (
	"fmt"
	"testing"
	"time"

	"sfccover/internal/core"
	"sfccover/internal/subscription"
)

var allBackends = []Backend{BackendDetector, BackendEngineHash, BackendEnginePrefix}

func TestBackendValidation(t *testing.T) {
	cfg := Config{Schema: testSchema(), Mode: core.ModeExact, Backend: "quantum"}
	if _, err := NewNetwork(Line(2), cfg); err == nil {
		t.Fatal("unknown backend must fail")
	}
}

// eventsEqual reports whether two delivery sequences are bit-identical:
// same length, same order, same attribute values.
func eventsEqual(a, b []subscription.Event) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		for k := range a[i] {
			if a[i][k] != b[i][k] {
				return false
			}
		}
	}
	return true
}

// TestBackendsDeliverIdentically pins the acceptance property: for every
// topology/mode combination, event deliveries are bit-identical between
// the single-detector backend and both engine backends — including after
// covering-subscription removal, which the workload exercises both via
// its random unsubscribes and via a planted wide-cover withdrawal.
func TestBackendsDeliverIdentically(t *testing.T) {
	schema := testSchema()
	const nClients = 6
	ops := genWorkload(schema, 404, 110, nClients)
	// Plant a guaranteed covering-removal sequence on top of the random
	// workload: a wide cover arrives, suppresses the narrows, and is
	// withdrawn before the publishes.
	wide := subscription.MustParse(schema, "price <= 220")
	narrow1 := subscription.MustParse(schema, "price in [10,20]")
	narrow2 := subscription.MustParse(schema, "price in [30,60] && topic in [0,99]")
	probe := make(subscription.Event, schema.NumAttrs())
	probe[0], probe[1] = 50, 15
	planted := []workloadOp{
		{kind: 0, client: 0, sub: wide},
		{kind: 0, client: 1, sub: narrow1},
		{kind: 0, client: 2, sub: narrow2},
		{kind: 1, client: 0, sub: wide},
		{kind: 2, client: 3, event: probe},
	}
	ops = append(planted, ops...)

	topos := map[string]Topology{
		"line5": Line(5),
		"star6": Star(6),
		"tree7": BalancedTree(7),
	}
	configs := map[string]Config{
		"off":    {Schema: schema, Mode: core.ModeOff},
		"exact":  {Schema: schema, Mode: core.ModeExact, Strategy: core.StrategyLinear},
		"approx": {Schema: schema, Mode: core.ModeApprox, Epsilon: 0.3, MaxCubes: 3000},
	}
	for topoName, topo := range topos {
		for cfgName, base := range configs {
			t.Run(topoName+"/"+cfgName, func(t *testing.T) {
				var ref [][]subscription.Event
				for _, backend := range allBackends {
					cfg := base
					cfg.Backend = backend
					cfg.Shards = 2
					cfg.BatchSize = 4
					got := runWorkload(t, cfg, topo, ops, nClients)
					if ref == nil {
						ref = got // detector backend is the reference
						continue
					}
					for c := range ref {
						if !eventsEqual(got[c], ref[c]) {
							t.Fatalf("backend %s: client %d deliveries differ from detector backend (%d vs %d events)",
								backend, c, len(got[c]), len(ref[c]))
						}
					}
				}
			})
		}
	}
}

// TestRebalancingBackendDeliversIdentically pins the acceptance property
// for online rebalancing: an engine-prefix network whose per-link
// background rebalancers are armed at the most aggressive legal settings
// (so boundaries move while the workload runs) must deliver bit-identically
// to the single-detector reference, in every mode.
func TestRebalancingBackendDeliversIdentically(t *testing.T) {
	schema := testSchema()
	const nClients = 6
	ops := genWorkload(schema, 505, 110, nClients)
	configs := map[string]Config{
		"exact":  {Schema: schema, Mode: core.ModeExact, Strategy: core.StrategyLinear},
		"approx": {Schema: schema, Mode: core.ModeApprox, Epsilon: 0.3, MaxCubes: 3000},
	}
	for cfgName, base := range configs {
		t.Run(cfgName, func(t *testing.T) {
			ref := base
			ref.Backend = BackendDetector
			want := runWorkload(t, ref, BalancedTree(7), ops, nClients)

			cfg := base
			cfg.Backend = BackendEnginePrefix
			cfg.Shards = 4
			cfg.BatchSize = 4
			cfg.RebalanceThreshold = 1.01
			cfg.RebalanceInterval = time.Millisecond
			got := runWorkload(t, cfg, BalancedTree(7), ops, nClients)
			for c := range want {
				if !eventsEqual(got[c], want[c]) {
					t.Fatalf("client %d deliveries differ under rebalancing (%d vs %d events)",
						c, len(got[c]), len(want[c]))
				}
			}
		})
	}
}

// TestApproxCoverRemovalResubscribes is the regression test for the
// ε-approximate unsubscription path: an approximate cover suppresses a
// narrow subscription; when the cover is removed, the previously
// suppressed subscription must resume receiving events — under every
// backend.
func TestApproxCoverRemovalResubscribes(t *testing.T) {
	schema := testSchema()
	wide := subscription.MustParse(schema, "price <= 200")
	narrow := subscription.MustParse(schema, "price in [10,20]")
	for _, backend := range allBackends {
		t.Run(string(backend), func(t *testing.T) {
			n := MustNetwork(Line(4), Config{
				Schema: schema, Mode: core.ModeApprox, Epsilon: 0.2, MaxCubes: 5000,
				Backend: backend, Shards: 2,
			})
			defer n.Close()
			wideClient, _ := n.AttachClient(0)
			narrowClient, _ := n.AttachClient(0)
			pub, _ := n.AttachClient(3)

			if err := n.Subscribe(wideClient.ID, wide); err != nil {
				t.Fatal(err)
			}
			n.Drain()
			if err := n.Subscribe(narrowClient.ID, narrow); err != nil {
				t.Fatal(err)
			}
			n.Drain()
			// The approximate search must detect this generous cover; the
			// test is vacuous otherwise.
			if got := n.Metrics().SuppressedForwards; got == 0 {
				t.Fatal("approximate detection missed the planted cover; widen it or raise MaxCubes")
			}
			if n.SuppressedEntries() == 0 {
				t.Fatal("suppressed set must track the withheld subscription")
			}

			if err := n.Unsubscribe(wideClient.ID, wide); err != nil {
				t.Fatal(err)
			}
			n.Drain()
			if n.SuppressedEntries() != 0 {
				t.Fatalf("suppressed entries after cover removal = %d, want 0", n.SuppressedEntries())
			}

			inRange, _ := subscription.ParseEvent(schema, "topic = 0, price = 15")
			outRange, _ := subscription.ParseEvent(schema, "topic = 0, price = 150")
			if err := n.Publish(pub.ID, inRange); err != nil {
				t.Fatal(err)
			}
			if err := n.Publish(pub.ID, outRange); err != nil {
				t.Fatal(err)
			}
			n.Drain()
			if len(narrowClient.Received) != 1 {
				t.Fatalf("previously suppressed subscriber received %d events, want 1", len(narrowClient.Received))
			}
			if len(wideClient.Received) != 0 {
				t.Fatal("unsubscribed wide client must receive nothing")
			}
			if m := n.Metrics(); m.ProtocolErrors != 0 {
				t.Fatalf("protocol errors: %d", m.ProtocolErrors)
			}
		})
	}
}

// TestUnsubscribeSuppressedSubscription pins the suppressed-set
// bookkeeping: when a client withdraws a subscription that was never
// forwarded (it was suppressed), its suppressed-set entry must die with
// it, so a later cover removal does not resurrect a dead subscription.
func TestUnsubscribeSuppressedSubscription(t *testing.T) {
	schema := testSchema()
	for _, backend := range allBackends {
		t.Run(string(backend), func(t *testing.T) {
			n := MustNetwork(Line(3), Config{
				Schema: schema, Mode: core.ModeExact, Backend: backend, Shards: 2,
			})
			defer n.Close()
			c, _ := n.AttachClient(0)
			pub, _ := n.AttachClient(2)
			wide := subscription.MustParse(schema, "price <= 200")
			narrow := subscription.MustParse(schema, "price in [10,20]")
			for _, s := range []*subscription.Subscription{wide, narrow} {
				if err := n.Subscribe(c.ID, s); err != nil {
					t.Fatal(err)
				}
				n.Drain()
			}
			if n.SuppressedEntries() == 0 {
				t.Fatal("narrow must be suppressed somewhere")
			}
			// Withdraw the suppressed narrow first, then the wide cover.
			if err := n.Unsubscribe(c.ID, narrow); err != nil {
				t.Fatal(err)
			}
			n.Drain()
			if n.SuppressedEntries() != 0 {
				t.Fatalf("suppressed entries after narrow unsubscribe = %d, want 0", n.SuppressedEntries())
			}
			subMsgsBefore := n.Metrics().SubscribeMsgs
			if err := n.Unsubscribe(c.ID, wide); err != nil {
				t.Fatal(err)
			}
			n.Drain()
			// Nothing may be re-forwarded: the only covered subscription is
			// already dead.
			if got := n.Metrics().SubscribeMsgs; got != subMsgsBefore {
				t.Fatalf("cover removal re-forwarded a dead subscription (%d -> %d subscribe msgs)",
					subMsgsBefore, got)
			}
			ev, _ := subscription.ParseEvent(schema, "topic = 0, price = 15")
			if err := n.Publish(pub.ID, ev); err != nil {
				t.Fatal(err)
			}
			n.Drain()
			if len(c.Received) != 0 {
				t.Fatalf("fully unsubscribed client received %d events", len(c.Received))
			}
			if m := n.Metrics(); m.ProtocolErrors != 0 {
				t.Fatalf("protocol errors: %d", m.ProtocolErrors)
			}
		})
	}
}

// TestEngineBackendTableParity: in exact mode the covering decisions are
// mode-determined, so routing-table footprints must agree exactly across
// backends, not just deliveries.
func TestEngineBackendTableParity(t *testing.T) {
	schema := testSchema()
	const nClients = 6
	ops := genWorkload(schema, 77, 120, nClients)
	type footprint struct {
		rows, fwd, supp int
		metrics         Metrics
	}
	var ref *footprint
	for _, backend := range allBackends {
		n := MustNetwork(BalancedTree(7), Config{
			Schema: schema, Mode: core.ModeExact, Strategy: core.StrategyLinear, Backend: backend, Shards: 3,
		})
		clients := make([]*Client, nClients)
		for i := range clients {
			cl, err := n.AttachClient(i % n.NumBrokers())
			if err != nil {
				t.Fatal(err)
			}
			clients[i] = cl
		}
		for _, op := range ops {
			var err error
			switch op.kind {
			case 0:
				err = n.Subscribe(clients[op.client].ID, op.sub)
			case 1:
				err = n.Unsubscribe(clients[op.client].ID, op.sub)
			case 2:
				err = n.Publish(clients[op.client].ID, op.event)
			}
			if err != nil {
				t.Fatal(err)
			}
			n.Drain()
		}
		fp := footprint{
			rows: n.TableRows(), fwd: n.ForwardedEntries(), supp: n.SuppressedEntries(),
			metrics: n.Metrics(),
		}
		n.Close()
		if fp.metrics.ProtocolErrors != 0 {
			t.Fatalf("backend %s: protocol errors %d", backend, fp.metrics.ProtocolErrors)
		}
		if ref == nil {
			ref = &fp
			continue
		}
		if fp != *ref {
			t.Fatalf("backend %s footprint %+v differs from detector backend %+v", backend, fp, *ref)
		}
	}
}

// TestConcurrentEngineBackend runs the goroutine-per-broker runtime over
// engine-backed links; under -race this validates the locking story of
// brokers driving engines.
func TestConcurrentEngineBackend(t *testing.T) {
	schema := testSchema()
	const nClients = 6
	ops := genWorkload(schema, 11, 80, nClients)
	want := phasedOracle(ops, nClients)
	for _, backend := range []Backend{BackendEngineHash, BackendEnginePrefix} {
		t.Run(string(backend), func(t *testing.T) {
			got, m := runConcurrentPhased(t, Config{
				Schema: schema, Mode: core.ModeApprox, Epsilon: 0.3, MaxCubes: 2000,
				Backend: backend, Shards: 2, BatchSize: 8,
			}, BalancedTree(7), ops, nClients)
			if m.ProtocolErrors != 0 {
				t.Fatalf("protocol errors: %d", m.ProtocolErrors)
			}
			for c := range want {
				if eventMultiset(got[c]) != eventMultiset(want[c]) {
					t.Fatalf("client %d delivery multiset differs from oracle", c)
				}
			}
		})
	}
}

// TestBatchSizeInsensitivity: the covered-set re-forward chunking must not
// change deliveries (chunking affects traffic at most, never safety).
func TestBatchSizeInsensitivity(t *testing.T) {
	schema := testSchema()
	const nClients = 5
	ops := genWorkload(schema, 900, 90, nClients)
	var ref [][]subscription.Event
	for _, batch := range []int{0, 1, 3, 64} {
		cfg := Config{
			Schema: schema, Mode: core.ModeExact, Strategy: core.StrategyLinear,
			Backend: BackendEnginePrefix, Shards: 2, BatchSize: batch,
		}
		got := runWorkload(t, cfg, Star(5), ops, nClients)
		if ref == nil {
			ref = got
			continue
		}
		for c := range ref {
			if !eventsEqual(got[c], ref[c]) {
				t.Fatalf("batch size %d: client %d deliveries differ", batch, c)
			}
		}
	}
}

func ExampleConfig_backend() {
	schema := subscription.MustSchema(8, "topic", "price")
	n := MustNetwork(Line(3), Config{
		Schema:  schema,
		Mode:    core.ModeApprox,
		Epsilon: 0.2,
		Backend: BackendEnginePrefix,
		Shards:  4,
	})
	defer n.Close()
	sub, _ := n.AttachClient(0)
	pub, _ := n.AttachClient(2)
	_ = n.Subscribe(sub.ID, subscription.MustParse(schema, "price <= 100"))
	n.Drain()
	_ = n.Publish(pub.ID, subscription.Event{3, 42})
	n.Drain()
	fmt.Println(len(sub.Received), "event delivered")
	// Output: 1 event delivered
}
