package broker

import (
	"fmt"
	"math/rand"
)

// Topology describes an acyclic broker overlay: n brokers (ids 0..n-1)
// connected by undirected links forming a tree, the standard deployment
// shape of Siena-style content-based routing networks.
type Topology struct {
	N     int
	Edges [][2]int
}

// Line returns a path topology 0-1-2-...-(n-1).
func Line(n int) Topology {
	t := Topology{N: n}
	for i := 0; i+1 < n; i++ {
		t.Edges = append(t.Edges, [2]int{i, i + 1})
	}
	return t
}

// Star returns a hub-and-spoke topology with broker 0 at the center.
func Star(n int) Topology {
	t := Topology{N: n}
	for i := 1; i < n; i++ {
		t.Edges = append(t.Edges, [2]int{0, i})
	}
	return t
}

// BalancedTree returns a complete binary tree with n brokers, rooted at 0.
func BalancedTree(n int) Topology {
	t := Topology{N: n}
	for i := 1; i < n; i++ {
		t.Edges = append(t.Edges, [2]int{(i - 1) / 2, i})
	}
	return t
}

// RandomTree returns a uniformly random recursive tree: broker i attaches
// to a uniformly chosen earlier broker. Deterministic for a given seed.
func RandomTree(n int, seed int64) Topology {
	rng := rand.New(rand.NewSource(seed))
	t := Topology{N: n}
	for i := 1; i < n; i++ {
		t.Edges = append(t.Edges, [2]int{rng.Intn(i), i})
	}
	return t
}

// validate checks that the topology is a connected tree over N brokers.
func (t Topology) validate() error {
	if t.N < 1 {
		return fmt.Errorf("broker: topology needs at least one broker")
	}
	if len(t.Edges) != t.N-1 {
		return fmt.Errorf("broker: tree over %d brokers needs %d edges, got %d", t.N, t.N-1, len(t.Edges))
	}
	adj := make([][]int, t.N)
	for _, e := range t.Edges {
		a, b := e[0], e[1]
		if a < 0 || a >= t.N || b < 0 || b >= t.N {
			return fmt.Errorf("broker: edge %v out of range", e)
		}
		if a == b {
			return fmt.Errorf("broker: self-loop at %d", a)
		}
		adj[a] = append(adj[a], b)
		adj[b] = append(adj[b], a)
	}
	seen := make([]bool, t.N)
	stack := []int{0}
	seen[0] = true
	count := 0
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		count++
		for _, w := range adj[v] {
			if !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	if count != t.N {
		return fmt.Errorf("broker: topology is disconnected (%d of %d reachable)", count, t.N)
	}
	return nil
}
