package broker

import (
	"fmt"

	"sfccover/internal/core"
	"sfccover/internal/engine"
)

// Backend selects the covering-detection provider each broker link runs.
// Every backend drives the identical routing state machine through the
// core.Provider interface; the safety tests pin bit-identical event
// deliveries across all of them.
type Backend string

const (
	// BackendDetector (the default) backs each link with a single-lock
	// core.Detector.
	BackendDetector Backend = "detector"
	// BackendEngineHash backs each link with a hash-sharded engine.
	BackendEngineHash Backend = "engine-hash"
	// BackendEnginePrefix backs each link with a curve-prefix sharded
	// engine (the shared-decomposition plan under the SFC strategy).
	BackendEnginePrefix Backend = "engine-prefix"
)

// brokerEngineWorkers sizes the per-link engine worker pools. Broker links
// issue small batches (the covered-set re-forward probes), so a deep pool
// per link would only multiply idle goroutines across the overlay.
const brokerEngineWorkers = 2

// suppSeedOffset separates the suppressed-set provider's index randomness
// from the forwarded-set provider's on the same link.
const suppSeedOffset = int64(1) << 32

// newForwardedProvider builds the forwarded-set provider for one link,
// per the configured backend.
func (cfg Config) newForwardedProvider(seed int64) (core.Provider, error) {
	dc := core.Config{
		Schema:   cfg.Schema,
		Mode:     cfg.Mode,
		Epsilon:  cfg.Epsilon,
		Strategy: cfg.Strategy,
		MaxCubes: cfg.MaxCubes,
		Seed:     seed,
	}
	switch cfg.Backend {
	case "", BackendDetector:
		return core.New(dc)
	case BackendEngineHash, BackendEnginePrefix:
		part := engine.PartitionHash
		if cfg.Backend == BackendEnginePrefix {
			part = engine.PartitionPrefix
		}
		return engine.New(engine.Config{
			Detector:  dc,
			Shards:    cfg.Shards,
			Partition: part,
			Workers:   brokerEngineWorkers,
		})
	default:
		return nil, fmt.Errorf("broker: unknown backend %q", cfg.Backend)
	}
}

// newSuppressedProvider builds the suppressed-set provider for one link:
// always a single exact-mode Detector, regardless of Config.Backend. The
// covered set computed at unsubscription time must be exact — a missed
// member would never be re-forwarded and events would be lost, unlike
// covering misses, which only cost redundant traffic. Exact FindCovered
// is a plain scan, so an engine's worker pool and sharded index would
// only add per-link goroutines and lock round trips for identical
// answers.
func (cfg Config) newSuppressedProvider(seed int64) (core.Provider, error) {
	return core.New(core.Config{
		Schema:   cfg.Schema,
		Mode:     core.ModeExact,
		Strategy: cfg.Strategy,
		MaxCubes: cfg.MaxCubes,
		Seed:     seed,
	})
}
