package broker

import (
	"context"
	"fmt"

	"sfccover/internal/core"
	"sfccover/internal/engine"
	"sfccover/internal/persist"
	"sfccover/internal/sfcd"
)

// Backend selects the covering-detection provider each broker link runs.
// Every backend drives the identical routing state machine through the
// core.Provider interface; the safety tests pin bit-identical event
// deliveries across all of them.
type Backend string

const (
	// BackendDetector (the default) backs each link with a single-lock
	// core.Detector.
	BackendDetector Backend = "detector"
	// BackendEngineHash backs each link with a hash-sharded engine.
	BackendEngineHash Backend = "engine-hash"
	// BackendEnginePrefix backs each link with a curve-prefix sharded
	// engine (the shared-decomposition plan under the SFC strategy).
	BackendEnginePrefix Backend = "engine-prefix"
	// BackendRemote backs every link with an isolated namespace on one
	// shared sfcd daemon (Config.DaemonAddr) or a replicated daemon
	// cluster (Config.DaemonAddrs, with client-side failover): the whole
	// overlay's forwarded sets live in a single remote process, reached
	// over one pipelined connection. Covering detection then runs in the
	// daemon's configured mode — the daemon is the authority, Config.Mode
	// applies only to the local exact suppressed sets. Networks with this
	// backend own the connection; call Close when done.
	BackendRemote Backend = "remote"
)

// brokerEngineWorkers sizes the per-link engine worker pools. Broker links
// issue small batches (the covered-set re-forward probes), so a deep pool
// per link would only multiply idle goroutines across the overlay.
const brokerEngineWorkers = 2

// suppSeedOffset separates the suppressed-set provider's index randomness
// from the forwarded-set provider's on the same link.
const suppSeedOffset = int64(1) << 32

// providerSource builds the per-link providers of one network. For the
// in-process backends it is stateless unless Config.DataDir makes the
// links durable, in which case it owns the persist.Store every link logs
// to; for BackendRemote it owns the single pipelined daemon connection
// that every link's provider multiplexes over.
type providerSource struct {
	cfg    Config
	client *sfcd.Client   // non-nil iff cfg.Backend == BackendRemote
	store  *persist.Store // non-nil iff cfg.DataDir is set
}

// newProviderSource validates the backend choice and, for BackendRemote,
// dials the shared daemon; Config.DataDir opens (and recovers) the
// durable store behind the in-process backends.
func newProviderSource(cfg Config) (*providerSource, error) {
	switch cfg.Backend {
	case "", BackendDetector, BackendEngineHash, BackendEnginePrefix:
		ps := &providerSource{cfg: cfg}
		if cfg.DataDir != "" {
			store, err := persist.Open(cfg.DataDir, cfg.Schema, persist.Options{})
			if err != nil {
				return nil, fmt.Errorf("broker: opening data dir: %w", err)
			}
			ps.store = store
		}
		return ps, nil
	case BackendRemote:
		if cfg.DaemonAddr == "" && len(cfg.DaemonAddrs) == 0 {
			return nil, fmt.Errorf("broker: backend %q needs Config.DaemonAddr or Config.DaemonAddrs", cfg.Backend)
		}
		if cfg.DataDir != "" {
			return nil, fmt.Errorf("broker: backend %q persists on the daemon (-data-dir there), not through Config.DataDir", cfg.Backend)
		}
		client, err := sfcd.DialContext(context.Background(), sfcd.DialConfig{
			Addr:           cfg.DaemonAddr,
			Addrs:          cfg.DaemonAddrs,
			Schema:         cfg.Schema,
			RequestTimeout: cfg.DaemonTimeout,
		})
		if err != nil {
			return nil, fmt.Errorf("broker: dialing daemon: %w", err)
		}
		return &providerSource{cfg: cfg, client: client}, nil
	default:
		return nil, fmt.Errorf("broker: unknown backend %q", cfg.Backend)
	}
}

// Close releases the shared daemon connection and the durable store, if
// any. Per-link providers are closed by their owners first (remote ones
// unlink their namespaces over this connection; durable ones release
// their store links).
func (ps *providerSource) Close() {
	if ps.client != nil {
		ps.client.Close() //nolint:errcheck // single Close per source
	}
	if ps.store != nil {
		ps.store.Close() //nolint:errcheck // single Close per source
	}
}

// durable wraps a freshly built link provider with logging and recovery
// under the given store link name; without a store it is the identity.
func (ps *providerSource) durable(link string, p core.Provider, err error) (core.Provider, error) {
	if err != nil || ps.store == nil {
		return p, err
	}
	d, err := ps.store.Durable(link, p)
	if err != nil {
		p.Close()
		return nil, err
	}
	return d, nil
}

// forwarded builds the forwarded-set provider for the link broker->neighbor.
func (ps *providerSource) forwarded(brokerID, neighborID int, seed int64) (core.Provider, error) {
	if ps.client != nil {
		// One namespace per directed link on the shared daemon; LinkPrefix
		// keeps networks sharing a daemon out of each other's namespaces.
		return ps.client.Provider(fmt.Sprintf("%sb%d-n%d", ps.cfg.LinkPrefix, brokerID, neighborID))
	}
	cfg := ps.cfg
	dc := core.Config{
		Schema:          cfg.Schema,
		Mode:            cfg.Mode,
		Epsilon:         cfg.Epsilon,
		Strategy:        cfg.Strategy,
		Curve:           cfg.Curve,
		MaxCubes:        cfg.MaxCubes,
		DecompCacheSize: cfg.DecompCacheSize,
		AdaptiveBudget:  cfg.AdaptiveBudget,
		Seed:            seed,
	}
	link := fmt.Sprintf("fwd-b%d-n%d", brokerID, neighborID)
	switch cfg.Backend {
	case "", BackendDetector:
		p, err := core.New(dc)
		return ps.durable(link, p, err)
	default: // BackendEngineHash, BackendEnginePrefix (validated in newProviderSource)
		part := engine.PartitionHash
		if cfg.Backend == BackendEnginePrefix {
			part = engine.PartitionPrefix
		}
		p, err := engine.New(engine.Config{
			Detector:           dc,
			Shards:             cfg.Shards,
			Partition:          part,
			Workers:            brokerEngineWorkers,
			RebalanceThreshold: cfg.RebalanceThreshold,
			RebalanceInterval:  cfg.RebalanceInterval,
		})
		return ps.durable(link, p, err)
	}
}

// suppressed builds the suppressed-set provider for the link
// broker->neighbor: always a local, single, exact-mode Detector,
// regardless of Config.Backend — even BackendRemote. The covered set
// computed at unsubscription time must be exact — a missed member would
// never be re-forwarded and events would be lost, unlike covering misses,
// which only cost redundant traffic. Exact FindCovered (and the one-scan
// DrainCovered the unsubscription path prefers) is a plain scan, so an
// engine's worker pool, a sharded index, or a network round trip would
// only add cost for identical answers. With Config.DataDir the suppressed
// set is durable too: losing it across a restart would strand every
// suppressed subscription when its cover is later retracted.
func (ps *providerSource) suppressed(brokerID, neighborID int, seed int64) (core.Provider, error) {
	cfg := ps.cfg
	p, err := core.New(core.Config{
		Schema:   cfg.Schema,
		Mode:     core.ModeExact,
		Strategy: cfg.Strategy,
		MaxCubes: cfg.MaxCubes,
		Seed:     seed,
	})
	return ps.durable(fmt.Sprintf("supp-b%d-n%d", brokerID, neighborID), p, err)
}
