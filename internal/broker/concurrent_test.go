package broker

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"sfccover/internal/core"
	"sfccover/internal/subscription"
)

// runConcurrentPhased executes the workload on a Concurrent network in
// three quiesced phases (subscribes, unsubscribes, publishes) so the
// expected deliveries are well defined despite concurrent processing.
func runConcurrentPhased(t *testing.T, cfg Config, topo Topology, ops []workloadOp, nClients int) ([][]subscription.Event, Metrics) {
	t.Helper()
	c, err := NewConcurrent(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	clients := make([]*Client, nClients)
	for i := range clients {
		cl, err := c.AttachClient(i % c.NumBrokers())
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = cl
	}
	c.Start()
	// Phase 1: all subscribes, concurrently from several goroutines.
	var wg sync.WaitGroup
	for _, op := range ops {
		if op.kind != 0 {
			continue
		}
		op := op
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := c.Subscribe(clients[op.client].ID, op.sub); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	c.Flush()
	// Phase 2: all unsubscribes.
	for _, op := range ops {
		if op.kind != 1 {
			continue
		}
		if err := c.Unsubscribe(clients[op.client].ID, op.sub); err != nil {
			t.Error(err)
		}
	}
	c.Flush()
	// Phase 3: all publishes.
	for _, op := range ops {
		if op.kind != 2 {
			continue
		}
		if err := c.Publish(clients[op.client].ID, op.event); err != nil {
			t.Error(err)
		}
	}
	c.Flush()

	out := make([][]subscription.Event, nClients)
	for i, cl := range clients {
		out[i] = cl.Received
	}
	return out, c.Metrics()
}

// phasedOracle computes expected deliveries for the phased execution:
// every publish sees the post-phase-2 subscription state.
func phasedOracle(ops []workloadOp, nClients int) [][]subscription.Event {
	live := make(map[int][]*subscription.Subscription)
	for _, op := range ops {
		if op.kind == 0 {
			live[op.client] = append(live[op.client], op.sub)
		}
	}
	for _, op := range ops {
		if op.kind != 1 {
			continue
		}
		for i, s := range live[op.client] {
			if s.Equal(op.sub) {
				live[op.client] = append(live[op.client][:i], live[op.client][i+1:]...)
				break
			}
		}
	}
	out := make([][]subscription.Event, nClients)
	for _, op := range ops {
		if op.kind != 2 {
			continue
		}
		for cID := 0; cID < nClients; cID++ {
			for _, s := range live[cID] {
				if s.Matches(op.event) {
					out[cID] = append(out[cID], op.event)
					break
				}
			}
		}
	}
	return out
}

// eventMultiset canonicalizes deliveries for order-insensitive comparison
// (concurrent interleavings may reorder deliveries of distinct events).
func eventMultiset(evs []subscription.Event) string {
	strs := make([]string, len(evs))
	for i, e := range evs {
		strs[i] = fmt.Sprintf("%v", e)
	}
	sort.Strings(strs)
	return strings.Join(strs, "|")
}

func TestConcurrentMatchesOracle(t *testing.T) {
	schema := testSchema()
	const nClients = 8
	ops := genWorkload(schema, 321, 150, nClients)
	want := phasedOracle(ops, nClients)

	for name, cfg := range map[string]Config{
		"off":    {Schema: schema, Mode: core.ModeOff},
		"exact":  {Schema: schema, Mode: core.ModeExact, Strategy: core.StrategyLinear},
		"approx": {Schema: schema, Mode: core.ModeApprox, Epsilon: 0.3, MaxCubes: 2000},
	} {
		t.Run(name, func(t *testing.T) {
			got, m := runConcurrentPhased(t, cfg, BalancedTree(7), ops, nClients)
			if m.ProtocolErrors != 0 {
				t.Fatalf("protocol errors: %d", m.ProtocolErrors)
			}
			for cID := range want {
				if len(got[cID]) != len(want[cID]) {
					t.Fatalf("client %d received %d events, oracle %d", cID, len(got[cID]), len(want[cID]))
				}
				// Compare value multisets: raw event payloads, not the
				// rough letter fingerprint alone.
				if eventMultiset(got[cID]) != eventMultiset(want[cID]) {
					t.Fatalf("client %d delivery multiset differs", cID)
				}
			}
		})
	}
}

func TestConcurrentMatchesSequential(t *testing.T) {
	// Same phased workload through the sequential simulator: final
	// delivery multisets and table sizes must agree (the state machines
	// are identical; only scheduling differs).
	schema := testSchema()
	const nClients = 6
	ops := genWorkload(schema, 55, 100, nClients)
	cfg := Config{Schema: schema, Mode: core.ModeExact, Strategy: core.StrategyLinear}

	// Sequential, phased the same way.
	seq := MustNetwork(BalancedTree(7), cfg)
	clients := make([]*Client, nClients)
	for i := range clients {
		cl, err := seq.AttachClient(i % seq.NumBrokers())
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = cl
	}
	for _, op := range ops {
		if op.kind == 0 {
			if err := seq.Subscribe(clients[op.client].ID, op.sub); err != nil {
				t.Fatal(err)
			}
		}
	}
	seq.Drain()
	for _, op := range ops {
		if op.kind == 1 {
			if err := seq.Unsubscribe(clients[op.client].ID, op.sub); err != nil {
				t.Fatal(err)
			}
		}
	}
	seq.Drain()
	for _, op := range ops {
		if op.kind == 2 {
			if err := seq.Publish(clients[op.client].ID, op.event); err != nil {
				t.Fatal(err)
			}
		}
	}
	seq.Drain()

	got, m := runConcurrentPhased(t, cfg, BalancedTree(7), ops, nClients)
	if m.ProtocolErrors != 0 {
		t.Fatalf("concurrent protocol errors: %d", m.ProtocolErrors)
	}
	for i, cl := range clients {
		if eventMultiset(got[i]) != eventMultiset(cl.Received) {
			t.Fatalf("client %d deliveries differ between runtimes", i)
		}
	}
	if m.Deliveries != seq.Metrics().Deliveries {
		t.Fatalf("deliveries differ: concurrent %d vs sequential %d", m.Deliveries, seq.Metrics().Deliveries)
	}
}

func TestConcurrentLifecycle(t *testing.T) {
	schema := testSchema()
	c, err := NewConcurrent(Line(3), Config{Schema: schema, Mode: core.ModeOff})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := c.AttachClient(0)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	c.Start() // idempotent
	if _, err := c.AttachClient(1); err == nil {
		t.Error("AttachClient after Start must fail")
	}
	if err := c.Subscribe(999, subscription.New(schema)); err == nil {
		t.Error("unknown client must fail")
	}
	if err := c.Unsubscribe(cl.ID, subscription.New(schema)); err == nil {
		t.Error("unknown subscription must fail")
	}
	if err := c.Publish(cl.ID, subscription.Event{1}); err == nil {
		t.Error("wrong arity must fail")
	}
	if err := c.Subscribe(cl.ID, subscription.New(schema)); err != nil {
		t.Fatal(err)
	}
	c.Flush()
	ev, _ := subscription.ParseEvent(schema, "topic = 1, price = 2")
	if err := c.Publish(cl.ID, ev); err != nil {
		t.Fatal(err)
	}
	c.Flush()
	if len(cl.Received) != 1 {
		t.Fatalf("received %d, want 1", len(cl.Received))
	}
	c.Close()
	c.Close() // idempotent
}
