package broker

import (
	"testing"

	"sfccover/internal/core"
	"sfccover/internal/subscription"
)

// TestNetworkDataDirSurvivesRestart pins the broker durability contract:
// a network rebuilt over the same DataDir recovers every link's forwarded
// and suppressed set — id maps included — so that re-subscribing the same
// client population after a restart converges without re-flooding the
// overlay (every would-be forward is recognized as a duplicate), and
// event delivery afterwards is bit-identical to a network that never
// restarted.
func TestNetworkDataDirSurvivesRestart(t *testing.T) {
	schema := subscription.MustSchema(8, "stock", "price")
	topo := Line(3)
	baseCfg := Config{
		Schema:   schema,
		Mode:     core.ModeExact,
		Strategy: core.StrategyLinear,
		Seed:     9,
	}
	subs := []*subscription.Subscription{
		subscription.MustParse(schema, "stock <= 200"),               // wide: forwarded
		subscription.MustParse(schema, "stock <= 100 && price >= 3"), // covered by wide: suppressed
		subscription.MustParse(schema, "price >= 200"),               // independent: forwarded
	}
	events := []subscription.Event{
		{50, 10},
		{150, 250},
		{250, 201},
	}

	// drive subscribes the population (clients on brokers 0 and 2) and
	// publishes the events from broker 1, returning deliveries per client
	// and the network's metrics.
	drive := func(n *Network) ([][]subscription.Event, Metrics) {
		c0, err := n.AttachClient(0)
		if err != nil {
			t.Fatal(err)
		}
		c2, err := n.AttachClient(2)
		if err != nil {
			t.Fatal(err)
		}
		pub, err := n.AttachClient(1)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range subs {
			if err := n.Subscribe(c0.ID, s); err != nil {
				t.Fatal(err)
			}
		}
		if err := n.Subscribe(c2.ID, subs[0]); err != nil {
			t.Fatal(err)
		}
		n.Drain()
		for _, e := range events {
			if err := n.Publish(pub.ID, e); err != nil {
				t.Fatal(err)
			}
		}
		n.Drain()
		return [][]subscription.Event{c0.Received, c2.Received}, n.Metrics()
	}

	// Baseline: one network, never restarted.
	baseline := MustNetwork(topo, baseCfg)
	wantDeliveries, _ := drive(baseline)
	baseline.Close()

	// Durable run: drive, snapshot, close ("restart"), rebuild over the
	// same dir.
	dir := t.TempDir()
	cfg := baseCfg
	cfg.DataDir = dir
	n1 := MustNetwork(topo, cfg)
	_, firstMetrics := drive(n1)
	if err := n1.Snapshot(); err != nil {
		t.Fatal(err)
	}
	n1.Close()

	n2, err := NewNetwork(topo, cfg)
	if err != nil {
		t.Fatalf("rebuilding over the data dir: %v", err)
	}
	defer n2.Close()
	// The link state came back: forwarded and suppressed sets hold what
	// they held at shutdown.
	if got, want := n2.ForwardedEntries(), n1.ForwardedEntries(); got != want {
		t.Fatalf("recovered ForwardedEntries = %d, want %d", got, want)
	}
	if got, want := n2.SuppressedEntries(), n1.SuppressedEntries(); got != want {
		t.Fatalf("recovered SuppressedEntries = %d, want %d", got, want)
	}

	// Re-running the identical workload on the recovered network must
	// deliver identically to the never-restarted baseline...
	gotDeliveries, metrics := drive(n2)
	for ci := range wantDeliveries {
		if len(gotDeliveries[ci]) != len(wantDeliveries[ci]) {
			t.Fatalf("client %d deliveries after restart = %d, want %d", ci, len(gotDeliveries[ci]), len(wantDeliveries[ci]))
		}
		for ei := range wantDeliveries[ci] {
			for k, v := range wantDeliveries[ci][ei] {
				if gotDeliveries[ci][ei][k] != v {
					t.Fatalf("client %d event %d diverges after restart: %v vs %v",
						ci, ei, gotDeliveries[ci][ei], wantDeliveries[ci][ei])
				}
			}
		}
	}
	// ...without re-flooding: every re-subscription finds its rectangle
	// already forwarded (or suppressed), so zero subscribe messages cross
	// the overlay where the cold run needed several.
	if firstMetrics.SubscribeMsgs == 0 {
		t.Fatal("cold run forwarded nothing; the re-flood assertion below would be vacuous")
	}
	if metrics.SubscribeMsgs != 0 {
		t.Fatalf("recovered network re-forwarded %d subscriptions; recovered id maps must absorb them as duplicates/suppressed",
			metrics.SubscribeMsgs)
	}
	if metrics.ProtocolErrors != 0 {
		t.Fatalf("recovered network hit %d protocol errors", metrics.ProtocolErrors)
	}
}
