package broker

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sfccover/internal/obs"
	"sfccover/internal/subscription"
)

// Concurrent runs every broker of an overlay as its own goroutine (an
// actor owning its routing state), connected by buffered channels. It
// reuses the exact same broker state machine as the sequential Network —
// only the environment differs: sends become channel writes, metrics
// become atomics, deliveries lock the client.
//
// Ordering note: the covering protocol needs FIFO delivery per link
// (an unsubscribe retraction must not overtake its re-forwards); each
// broker's handler emits messages sequentially into the destination's
// inbox channel, which Go channels preserve. Cross-link interleaving is
// unconstrained, exactly as in a real deployment, so tests quiesce
// (Flush) between phases before asserting.
//
// Usage: build with NewConcurrent, AttachClient before Start, then
// Subscribe/Publish freely from any goroutine; Flush waits for quiescence;
// Close shuts the actors down.
type Concurrent struct {
	net     *Network
	inboxes []chan message // pump -> actor, unbuffered
	intake  []chan message // senders -> pump
	done    chan struct{}
	actors  sync.WaitGroup

	inflight sync.WaitGroup // counts queued-but-unprocessed messages

	mu      sync.Mutex // guards clients' Received and deliveries counter
	started bool

	subscribeMsgs   atomic.Int64
	unsubscribeMsgs atomic.Int64
	eventMsgs       atomic.Int64
	deliveries      atomic.Int64
	suppressed      atomic.Int64
	duplicates      atomic.Int64
	protocolErrors  atomic.Int64
}

// NewConcurrent builds a concurrent overlay. The topology and config rules
// are those of NewNetwork.
func NewConcurrent(topo Topology, cfg Config) (*Concurrent, error) {
	n, err := NewNetwork(topo, cfg)
	if err != nil {
		return nil, err
	}
	c := &Concurrent{
		net:     n,
		inboxes: make([]chan message, len(n.brokers)),
		intake:  make([]chan message, len(n.brokers)),
		done:    make(chan struct{}),
	}
	for i, b := range n.brokers {
		c.inboxes[i] = make(chan message)
		c.intake[i] = make(chan message, 64)
		b.env = c // swap the environment: same state machine, new world
	}
	return c, nil
}

// pump is an unbounded FIFO mailbox between intake and the actor's inbox.
// Brokers sending into a busy peer would otherwise deadlock on full
// buffered channels (A blocked sending to B while B is blocked sending to
// A); the pump is always ready to receive, so sends never block for long
// and per-link FIFO order is preserved.
func (c *Concurrent) pump(intake <-chan message, inbox chan<- message) {
	defer c.actors.Done()
	var buf []message
	for {
		var out chan<- message
		var head message
		if len(buf) > 0 {
			out = inbox
			head = buf[0]
		}
		select {
		case <-c.done:
			return
		case m := <-intake:
			buf = append(buf, m)
		case out <- head:
			buf = buf[1:]
		}
	}
}

// AttachClient creates a client on the given broker. Must be called before
// Start.
func (c *Concurrent) AttachClient(brokerID int) (*Client, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.started {
		return nil, fmt.Errorf("broker: AttachClient after Start")
	}
	return c.net.AttachClient(brokerID)
}

// Start launches one goroutine per broker.
func (c *Concurrent) Start() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.started {
		return
	}
	c.started = true
	for i, b := range c.net.brokers {
		c.actors.Add(2)
		go c.pump(c.intake[i], c.inboxes[i])
		go c.run(b, c.inboxes[i])
	}
}

func (c *Concurrent) run(b *Broker, inbox chan message) {
	defer c.actors.Done()
	for {
		select {
		case <-c.done:
			return
		case m := <-inbox:
			switch m.kind {
			case msgSubscribe:
				b.handleSubscribe(m.from, m.sub)
			case msgUnsubscribe:
				b.handleUnsubscribe(m.from, m.sub)
			case msgEvent:
				b.handleEvent(m.from, m.event, m.at)
			}
			c.inflight.Done()
		}
	}
}

// enqueue implements environment.
func (c *Concurrent) enqueue(m message) {
	c.inflight.Add(1)
	c.intake[m.to] <- m
}

// deliver implements environment.
func (c *Concurrent) deliver(clientID int, e subscription.Event) {
	c.mu.Lock()
	cl := c.net.clients[clientID]
	cl.Received = append(cl.Received, append(subscription.Event(nil), e...))
	c.mu.Unlock()
	c.deliveries.Add(1)
}

// bump implements environment.
func (c *Concurrent) bump(id metricID) {
	switch id {
	case metricSubscribeMsgs:
		c.subscribeMsgs.Add(1)
	case metricUnsubscribeMsgs:
		c.unsubscribeMsgs.Add(1)
	case metricEventMsgs:
		c.eventMsgs.Add(1)
	case metricDeliveries:
		c.deliveries.Add(1)
	case metricSuppressed:
		c.suppressed.Add(1)
	case metricDuplicate:
		c.duplicates.Add(1)
	case metricProtocolError:
		c.protocolErrors.Add(1)
	}
}

// Subscribe registers a subscription for the client and injects it at the
// client's broker. Safe for concurrent use after Start.
func (c *Concurrent) Subscribe(clientID int, s *subscription.Subscription) error {
	c.mu.Lock()
	cl, ok := c.net.clients[clientID]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("broker: no client %d", clientID)
	}
	if s.Schema() != c.net.cfg.Schema {
		c.mu.Unlock()
		return fmt.Errorf("broker: subscription schema differs from network schema")
	}
	cl.subs = append(cl.subs, s.Clone())
	c.mu.Unlock()
	c.enqueue(message{
		to: cl.Broker, from: iface{kind: ifClient, id: clientID}, sub: s.Clone(), kind: msgSubscribe,
	})
	return nil
}

// Unsubscribe withdraws one previously registered identical subscription.
func (c *Concurrent) Unsubscribe(clientID int, s *subscription.Subscription) error {
	c.mu.Lock()
	cl, ok := c.net.clients[clientID]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("broker: no client %d", clientID)
	}
	found := false
	for i, held := range cl.subs {
		if held.Equal(s) {
			cl.subs = append(cl.subs[:i], cl.subs[i+1:]...)
			found = true
			break
		}
	}
	c.mu.Unlock()
	if !found {
		return fmt.Errorf("broker: client %d holds no such subscription", clientID)
	}
	c.enqueue(message{
		to: cl.Broker, from: iface{kind: ifClient, id: clientID}, sub: s.Clone(), kind: msgUnsubscribe,
	})
	return nil
}

// Publish injects an event at the client's broker.
func (c *Concurrent) Publish(clientID int, e subscription.Event) error {
	c.mu.Lock()
	cl, ok := c.net.clients[clientID]
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("broker: no client %d", clientID)
	}
	if len(e) != c.net.cfg.Schema.NumAttrs() {
		return fmt.Errorf("broker: event has %d attributes, schema needs %d", len(e), c.net.cfg.Schema.NumAttrs())
	}
	c.enqueue(message{
		to: cl.Broker, from: iface{kind: ifClient, id: clientID},
		event: append(subscription.Event(nil), e...), kind: msgEvent,
		at: time.Now(),
	})
	return nil
}

// Flush blocks until every queued message — including those generated
// while draining — has been processed. Callers must not inject new work
// concurrently with Flush if they need a true quiescence point.
func (c *Concurrent) Flush() { c.inflight.Wait() }

// Close stops all broker goroutines and releases the per-link providers.
// Pending messages are abandoned, so Flush first for a clean shutdown.
func (c *Concurrent) Close() {
	c.mu.Lock()
	if !c.started {
		c.started = true // prevent a later Start
		c.mu.Unlock()
		c.net.Close()
		return
	}
	c.mu.Unlock()
	select {
	case <-c.done:
		return // already closed
	default:
	}
	close(c.done)
	c.actors.Wait()
	c.net.Close()
}

// Metrics returns a snapshot of the counters. Only stable at quiescence.
func (c *Concurrent) Metrics() Metrics {
	return Metrics{
		SubscribeMsgs:      int(c.subscribeMsgs.Load()),
		UnsubscribeMsgs:    int(c.unsubscribeMsgs.Load()),
		EventMsgs:          int(c.eventMsgs.Load()),
		Deliveries:         int(c.deliveries.Load()),
		SuppressedForwards: int(c.suppressed.Load()),
		DuplicateForwards:  int(c.duplicates.Load()),
		ProtocolErrors:     int(c.protocolErrors.Load()),
	}
}

// DeliveryLatency returns a snapshot of the overlay's end-to-end event
// delivery latency histogram. The histograms are lock-free, so the
// snapshot is safe (and meaningful) even while traffic is in flight.
func (c *Concurrent) DeliveryLatency() obs.Snapshot { return c.net.DeliveryLatency() }

// ForwardLatency returns a snapshot of the per-link covering-query
// latency histogram.
func (c *Concurrent) ForwardLatency() obs.Snapshot { return c.net.ForwardLatency() }

// TableRows reports the total routing-table rows. Only stable at
// quiescence.
func (c *Concurrent) TableRows() int { return c.net.TableRows() }

// NumBrokers returns the overlay size.
func (c *Concurrent) NumBrokers() int { return c.net.NumBrokers() }
