package broker

import (
	"fmt"
	"math/rand"
	"testing"

	"sfccover/internal/core"
	"sfccover/internal/subscription"
)

func testSchema() *subscription.Schema {
	return subscription.MustSchema(8, "topic", "price")
}

func TestTopologyValidate(t *testing.T) {
	if err := (Topology{N: 0}).validate(); err == nil {
		t.Error("empty topology must fail")
	}
	if err := (Topology{N: 3, Edges: [][2]int{{0, 1}}}).validate(); err == nil {
		t.Error("too few edges must fail")
	}
	if err := (Topology{N: 3, Edges: [][2]int{{0, 1}, {0, 1}}}).validate(); err == nil {
		t.Error("duplicate edge (disconnected) must fail")
	}
	if err := (Topology{N: 2, Edges: [][2]int{{0, 5}}}).validate(); err == nil {
		t.Error("out-of-range edge must fail")
	}
	if err := (Topology{N: 2, Edges: [][2]int{{0, 0}}}).validate(); err == nil {
		t.Error("self loop must fail")
	}
	for _, topo := range []Topology{Line(1), Line(5), Star(6), BalancedTree(7), RandomTree(12, 3)} {
		if err := topo.validate(); err != nil {
			t.Errorf("built-in topology invalid: %v", err)
		}
	}
}

func TestNewNetworkValidation(t *testing.T) {
	if _, err := NewNetwork(Line(3), Config{}); err == nil {
		t.Error("missing schema must fail")
	}
	if _, err := NewNetwork(Topology{N: 2}, Config{Schema: testSchema()}); err == nil {
		t.Error("bad topology must fail")
	}
	if _, err := NewNetwork(Line(3), Config{Schema: testSchema(), Mode: core.ModeApprox}); err == nil {
		t.Error("approx without epsilon must fail")
	}
}

func TestBasicDelivery(t *testing.T) {
	schema := testSchema()
	n := MustNetwork(Line(3), Config{Schema: schema, Mode: core.ModeExact})
	subr, err := n.AttachClient(0)
	if err != nil {
		t.Fatal(err)
	}
	pubr, err := n.AttachClient(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Subscribe(subr.ID, subscription.MustParse(schema, "topic == 3 && price <= 100")); err != nil {
		t.Fatal(err)
	}
	n.Drain()

	match, _ := subscription.ParseEvent(schema, "topic = 3, price = 50")
	miss, _ := subscription.ParseEvent(schema, "topic = 4, price = 50")
	if err := n.Publish(pubr.ID, match); err != nil {
		t.Fatal(err)
	}
	if err := n.Publish(pubr.ID, miss); err != nil {
		t.Fatal(err)
	}
	n.Drain()

	if len(subr.Received) != 1 {
		t.Fatalf("subscriber received %d events, want 1", len(subr.Received))
	}
	if subr.Received[0][0] != 3 || subr.Received[0][1] != 50 {
		t.Fatalf("wrong event delivered: %v", subr.Received[0])
	}
	if len(pubr.Received) != 0 {
		t.Fatal("publisher without subscription should receive nothing")
	}
	if m := n.Metrics(); m.ProtocolErrors != 0 {
		t.Fatalf("protocol errors: %d", m.ProtocolErrors)
	}
}

func TestSelfDeliveryWhenSubscribed(t *testing.T) {
	schema := testSchema()
	n := MustNetwork(Line(1), Config{Schema: schema, Mode: core.ModeOff})
	c, _ := n.AttachClient(0)
	if err := n.Subscribe(c.ID, subscription.New(schema)); err != nil {
		t.Fatal(err)
	}
	n.Drain()
	ev, _ := subscription.ParseEvent(schema, "topic = 1, price = 2")
	if err := n.Publish(c.ID, ev); err != nil {
		t.Fatal(err)
	}
	n.Drain()
	if len(c.Received) != 1 {
		t.Fatalf("self delivery: got %d events", len(c.Received))
	}
}

func TestCoveringSuppressesForwarding(t *testing.T) {
	schema := testSchema()
	flood := MustNetwork(Line(4), Config{Schema: schema, Mode: core.ModeOff})
	exact := MustNetwork(Line(4), Config{Schema: schema, Mode: core.ModeExact})

	for _, n := range []*Network{flood, exact} {
		c, _ := n.AttachClient(0)
		if err := n.Subscribe(c.ID, subscription.MustParse(schema, "price <= 200")); err != nil {
			t.Fatal(err)
		}
		if err := n.Subscribe(c.ID, subscription.MustParse(schema, "price in [10,20]")); err != nil {
			t.Fatal(err)
		}
		n.Drain()
	}
	mf, me := flood.Metrics(), exact.Metrics()
	// Flooding forwards both subs down the 3 links: 6 messages. Exact
	// covering forwards only the wide one: 3 messages.
	if mf.SubscribeMsgs != 6 {
		t.Fatalf("flood forwarded %d, want 6", mf.SubscribeMsgs)
	}
	if me.SubscribeMsgs != 3 {
		t.Fatalf("exact forwarded %d, want 3", me.SubscribeMsgs)
	}
	// The narrow subscription is suppressed once, at the edge broker; it
	// never travels further, so downstream brokers have nothing to suppress.
	if me.SuppressedForwards != 1 {
		t.Fatalf("exact suppressed %d, want 1", me.SuppressedForwards)
	}
	if flood.TableRows() <= exact.TableRows() {
		t.Fatalf("flood table (%d) should exceed exact table (%d)", flood.TableRows(), exact.TableRows())
	}
}

func TestUnsubscribeUncoversSuppressed(t *testing.T) {
	schema := testSchema()
	n := MustNetwork(Line(3), Config{Schema: schema, Mode: core.ModeExact})
	sub1, _ := n.AttachClient(0)
	pub, _ := n.AttachClient(2)

	wide := subscription.MustParse(schema, "price <= 200")
	narrow := subscription.MustParse(schema, "price in [10,20]")
	if err := n.Subscribe(sub1.ID, wide); err != nil {
		t.Fatal(err)
	}
	if err := n.Subscribe(sub1.ID, narrow); err != nil {
		t.Fatal(err)
	}
	n.Drain()
	// The narrow subscription was suppressed at the edge broker.
	if got := n.Metrics().SuppressedForwards; got != 1 {
		t.Fatalf("suppressed = %d, want 1", got)
	}

	if err := n.Unsubscribe(sub1.ID, wide); err != nil {
		t.Fatal(err)
	}
	n.Drain()

	// The narrow subscription must now be routable end to end.
	ev, _ := subscription.ParseEvent(schema, "topic = 0, price = 15")
	outside, _ := subscription.ParseEvent(schema, "topic = 0, price = 150")
	if err := n.Publish(pub.ID, ev); err != nil {
		t.Fatal(err)
	}
	if err := n.Publish(pub.ID, outside); err != nil {
		t.Fatal(err)
	}
	n.Drain()
	if len(sub1.Received) != 1 {
		t.Fatalf("received %d events after uncovering, want 1", len(sub1.Received))
	}
	if m := n.Metrics(); m.ProtocolErrors != 0 {
		t.Fatalf("protocol errors: %d", m.ProtocolErrors)
	}
}

func TestDuplicateSubscriptionRefcount(t *testing.T) {
	schema := testSchema()
	n := MustNetwork(Line(2), Config{Schema: schema, Mode: core.ModeExact})
	a, _ := n.AttachClient(0)
	b, _ := n.AttachClient(0)
	pub, _ := n.AttachClient(1)
	s := subscription.MustParse(schema, "topic == 1")
	if err := n.Subscribe(a.ID, s); err != nil {
		t.Fatal(err)
	}
	if err := n.Subscribe(b.ID, s); err != nil {
		t.Fatal(err)
	}
	n.Drain()
	if err := n.Unsubscribe(a.ID, s); err != nil {
		t.Fatal(err)
	}
	n.Drain()
	ev, _ := subscription.ParseEvent(schema, "topic = 1, price = 9")
	if err := n.Publish(pub.ID, ev); err != nil {
		t.Fatal(err)
	}
	n.Drain()
	if len(a.Received) != 0 {
		t.Fatal("unsubscribed client received an event")
	}
	if len(b.Received) != 1 {
		t.Fatalf("remaining subscriber received %d events, want 1", len(b.Received))
	}
	if m := n.Metrics(); m.ProtocolErrors != 0 {
		t.Fatalf("protocol errors: %d", m.ProtocolErrors)
	}
}

// workloadOp drives the randomized safety test.
type workloadOp struct {
	kind   int // 0 subscribe, 1 unsubscribe, 2 publish
	client int
	sub    *subscription.Subscription
	event  subscription.Event
}

// genWorkload builds a deterministic mixed workload over nClients clients.
func genWorkload(schema *subscription.Schema, seed int64, nOps, nClients int) []workloadOp {
	rng := rand.New(rand.NewSource(seed))
	var ops []workloadOp
	live := make(map[int][]*subscription.Subscription)
	maxV := int(schema.MaxValue())
	randSub := func() *subscription.Subscription {
		s := subscription.New(schema)
		for _, attr := range schema.Attrs() {
			if rng.Float64() < 0.3 {
				continue // leave attribute unconstrained
			}
			lo := rng.Intn(maxV + 1)
			hi := lo + rng.Intn(maxV+1-lo)
			if err := s.SetRange(attr, uint32(lo), uint32(hi)); err != nil {
				panic(err)
			}
		}
		return s
	}
	for i := 0; i < nOps; i++ {
		c := rng.Intn(nClients)
		switch {
		case rng.Float64() < 0.45:
			s := randSub()
			live[c] = append(live[c], s)
			ops = append(ops, workloadOp{kind: 0, client: c, sub: s})
		case rng.Float64() < 0.35 && len(live[c]) > 0:
			j := rng.Intn(len(live[c]))
			s := live[c][j]
			live[c] = append(live[c][:j], live[c][j+1:]...)
			ops = append(ops, workloadOp{kind: 1, client: c, sub: s})
		default:
			e := make(subscription.Event, schema.NumAttrs())
			for a := range e {
				e[a] = uint32(rng.Intn(maxV + 1))
			}
			ops = append(ops, workloadOp{kind: 2, client: c, event: e})
		}
	}
	return ops
}

// runWorkload executes the workload on a fresh network in the given mode
// and returns per-client delivered events.
func runWorkload(t *testing.T, cfg Config, topo Topology, ops []workloadOp, nClients int) [][]subscription.Event {
	t.Helper()
	n := MustNetwork(topo, cfg)
	defer n.Close()
	clients := make([]*Client, nClients)
	for i := range clients {
		c, err := n.AttachClient(i % n.NumBrokers())
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = c
	}
	for _, op := range ops {
		var err error
		switch op.kind {
		case 0:
			err = n.Subscribe(clients[op.client].ID, op.sub)
		case 1:
			err = n.Unsubscribe(clients[op.client].ID, op.sub)
		case 2:
			err = n.Publish(clients[op.client].ID, op.event)
		}
		if err != nil {
			t.Fatal(err)
		}
		n.Drain()
	}
	if m := n.Metrics(); m.ProtocolErrors != 0 {
		t.Fatalf("mode %v: protocol errors: %d", cfg.Mode, m.ProtocolErrors)
	}
	out := make([][]subscription.Event, nClients)
	for i, c := range clients {
		out[i] = c.Received
	}
	return out
}

// oracleDeliveries computes the expected deliveries directly from the
// workload: a client receives an event iff it holds a matching live
// subscription at publish time.
func oracleDeliveries(ops []workloadOp, nClients int) [][]subscription.Event {
	live := make(map[int][]*subscription.Subscription)
	out := make([][]subscription.Event, nClients)
	for _, op := range ops {
		switch op.kind {
		case 0:
			live[op.client] = append(live[op.client], op.sub)
		case 1:
			for i, s := range live[op.client] {
				if s.Equal(op.sub) {
					live[op.client] = append(live[op.client][:i], live[op.client][i+1:]...)
					break
				}
			}
		case 2:
			for c := 0; c < nClients; c++ {
				for _, s := range live[c] {
					if s.Matches(op.event) {
						out[c] = append(out[c], op.event)
						break
					}
				}
			}
		}
	}
	return out
}

func TestDeliverySafetyAcrossModes(t *testing.T) {
	// The paper's central premise: covering — exact or approximate, even
	// with a hard per-query budget — changes how many subscriptions are
	// propagated, never which events are delivered.
	schema := testSchema()
	const nClients = 8
	ops := genWorkload(schema, 99, 120, nClients)
	want := oracleDeliveries(ops, nClients)

	topos := map[string]Topology{
		"line5": Line(5),
		"tree7": BalancedTree(7),
		"rand9": RandomTree(9, 4),
	}
	configs := map[string]Config{
		"off":          {Schema: schema, Mode: core.ModeOff},
		"exact-linear": {Schema: schema, Mode: core.ModeExact, Strategy: core.StrategyLinear},
		"exact-kd":     {Schema: schema, Mode: core.ModeExact, Strategy: core.StrategyKDTree},
		"approx":       {Schema: schema, Mode: core.ModeApprox, Epsilon: 0.3, MaxCubes: 3000},
		"approx-tight": {Schema: schema, Mode: core.ModeApprox, Epsilon: 0.05, MaxCubes: 500},
	}
	for topoName, topo := range topos {
		for cfgName, cfg := range configs {
			t.Run(topoName+"/"+cfgName, func(t *testing.T) {
				got := runWorkload(t, cfg, topo, ops, nClients)
				for c := range want {
					if len(got[c]) != len(want[c]) {
						t.Fatalf("client %d received %d events, oracle says %d",
							c, len(got[c]), len(want[c]))
					}
					for i := range want[c] {
						for a := range want[c][i] {
							if got[c][i][a] != want[c][i][a] {
								t.Fatalf("client %d event %d differs: %v vs %v",
									c, i, got[c][i], want[c][i])
							}
						}
					}
				}
			})
		}
	}
}

func TestCoveringModeOrderingOnTableSizes(t *testing.T) {
	// exact <= approx <= off in propagated subscriptions and table rows.
	schema := testSchema()
	const nClients = 6
	ops := genWorkload(schema, 7, 150, nClients)
	// Strip publishes; this test is about propagation volume.
	var subsOnly []workloadOp
	for _, op := range ops {
		if op.kind != 2 {
			subsOnly = append(subsOnly, op)
		}
	}
	topo := BalancedTree(15)
	results := make(map[string]int)
	msgs := make(map[string]int)
	for name, cfg := range map[string]Config{
		"off":    {Schema: schema, Mode: core.ModeOff},
		"approx": {Schema: schema, Mode: core.ModeApprox, Epsilon: 0.25, MaxCubes: 3000},
		"exact":  {Schema: schema, Mode: core.ModeExact, Strategy: core.StrategyLinear},
	} {
		n := MustNetwork(topo, cfg)
		clients := make([]*Client, nClients)
		for i := range clients {
			c, err := n.AttachClient(i % n.NumBrokers())
			if err != nil {
				t.Fatal(err)
			}
			clients[i] = c
		}
		for _, op := range subsOnly {
			var err error
			if op.kind == 0 {
				err = n.Subscribe(clients[op.client].ID, op.sub)
			} else {
				err = n.Unsubscribe(clients[op.client].ID, op.sub)
			}
			if err != nil {
				t.Fatal(err)
			}
			n.Drain()
		}
		results[name] = n.TableRows()
		msgs[name] = n.Metrics().SubscribeMsgs
		if m := n.Metrics(); m.ProtocolErrors != 0 {
			t.Fatalf("%s: protocol errors %d", name, m.ProtocolErrors)
		}
	}
	if !(results["exact"] <= results["approx"] && results["approx"] <= results["off"]) {
		t.Fatalf("table rows not ordered: exact=%d approx=%d off=%d",
			results["exact"], results["approx"], results["off"])
	}
	if !(msgs["exact"] <= msgs["approx"] && msgs["approx"] <= msgs["off"]) {
		t.Fatalf("subscribe msgs not ordered: exact=%d approx=%d off=%d",
			msgs["exact"], msgs["approx"], msgs["off"])
	}
	if results["exact"] >= results["off"] {
		t.Fatal("exact covering should strictly shrink tables on this workload")
	}
	t.Logf("table rows: exact=%d approx=%d off=%d; subscribe msgs: exact=%d approx=%d off=%d",
		results["exact"], results["approx"], results["off"],
		msgs["exact"], msgs["approx"], msgs["off"])
}

func TestClientAPIValidation(t *testing.T) {
	schema := testSchema()
	n := MustNetwork(Line(2), Config{Schema: schema, Mode: core.ModeOff})
	if _, err := n.AttachClient(9); err == nil {
		t.Error("attach to unknown broker must fail")
	}
	if err := n.Subscribe(42, subscription.New(schema)); err == nil {
		t.Error("subscribe from unknown client must fail")
	}
	if err := n.Unsubscribe(42, subscription.New(schema)); err == nil {
		t.Error("unsubscribe from unknown client must fail")
	}
	if err := n.Publish(42, subscription.Event{1, 2}); err == nil {
		t.Error("publish from unknown client must fail")
	}
	c, _ := n.AttachClient(0)
	if err := n.Unsubscribe(c.ID, subscription.New(schema)); err == nil {
		t.Error("unsubscribe of unknown subscription must fail")
	}
	if err := n.Publish(c.ID, subscription.Event{1}); err == nil {
		t.Error("publish with wrong arity must fail")
	}
	other := subscription.MustSchema(8, "topic", "price")
	if err := n.Subscribe(c.ID, subscription.New(other)); err == nil {
		t.Error("foreign schema must fail")
	}
	if err := n.Subscribe(c.ID, subscription.New(schema)); err != nil {
		t.Error(err)
	}
	if got := len(c.Subscriptions()); got != 1 {
		t.Errorf("Subscriptions() = %d, want 1", got)
	}
}

func TestCoverTotalsAccounting(t *testing.T) {
	schema := testSchema()
	n := MustNetwork(Line(3), Config{Schema: schema, Mode: core.ModeExact})
	c, _ := n.AttachClient(0)
	for i := 0; i < 5; i++ {
		s := subscription.MustParse(schema, fmt.Sprintf("price in [%d,%d]", i*10, i*10+5))
		if err := n.Subscribe(c.ID, s); err != nil {
			t.Fatal(err)
		}
	}
	n.Drain()
	tot := n.CoverTotals()
	if tot.Queries == 0 {
		t.Fatal("expected cover queries to be counted")
	}
	if n.ForwardedEntries() == 0 {
		t.Fatal("expected forwarded entries")
	}
}
