package broker

import (
	"testing"

	"sfccover/internal/core"
	"sfccover/internal/engine"
	"sfccover/internal/sfcd"
	"sfccover/internal/subscription"
)

// startTestDaemon boots an sfcd daemon whose detector template matches
// the broker config's covering parameters, so remote link namespaces run
// the same detection the in-process backends would.
func startTestDaemon(t *testing.T, cfg Config) string {
	t.Helper()
	eng, err := engine.New(engine.Config{
		Detector: core.Config{
			Schema:   cfg.Schema,
			Mode:     cfg.Mode,
			Epsilon:  cfg.Epsilon,
			Strategy: cfg.Strategy,
			MaxCubes: cfg.MaxCubes,
			Seed:     cfg.Seed,
		},
		Shards:  2,
		Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := sfcd.NewServer(eng)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		eng.Close()
	})
	return addr.String()
}

// TestRemoteBackendDeliversIdentically is the acceptance property for the
// shared-daemon deployment: with every broker link backed by a namespace
// on one live daemon, event deliveries are bit-identical to the
// single-detector backend — across topologies and covering modes. (The
// covering decisions themselves may differ in approximate mode — the
// daemon's index randomness is its own — which is exactly what the safety
// property tolerates: covering changes traffic, never deliveries.)
func TestRemoteBackendDeliversIdentically(t *testing.T) {
	schema := testSchema()
	const nClients = 6
	ops := genWorkload(schema, 404, 110, nClients)
	// The planted covering-removal sequence from the in-process parity
	// test: a wide cover arrives, suppresses the narrows, and is
	// withdrawn before the publishes.
	wide := subscription.MustParse(schema, "price <= 220")
	narrow1 := subscription.MustParse(schema, "price in [10,20]")
	narrow2 := subscription.MustParse(schema, "price in [30,60] && topic in [0,99]")
	probe := make(subscription.Event, schema.NumAttrs())
	probe[0], probe[1] = 50, 15
	planted := []workloadOp{
		{kind: 0, client: 0, sub: wide},
		{kind: 0, client: 1, sub: narrow1},
		{kind: 0, client: 2, sub: narrow2},
		{kind: 1, client: 0, sub: wide},
		{kind: 2, client: 3, event: probe},
	}
	ops = append(planted, ops...)

	topos := map[string]Topology{
		"line5": Line(5),
		"tree7": BalancedTree(7),
	}
	configs := map[string]Config{
		"off":    {Schema: schema, Mode: core.ModeOff},
		"exact":  {Schema: schema, Mode: core.ModeExact, Strategy: core.StrategyLinear},
		"approx": {Schema: schema, Mode: core.ModeApprox, Epsilon: 0.3, MaxCubes: 3000},
	}
	for topoName, topo := range topos {
		for cfgName, base := range configs {
			t.Run(topoName+"/"+cfgName, func(t *testing.T) {
				ref := runWorkload(t, base, topo, ops, nClients)

				remote := base
				remote.Backend = BackendRemote
				remote.DaemonAddr = startTestDaemon(t, base)
				remote.LinkPrefix = topoName + "-" + cfgName + "/"
				got := runWorkload(t, remote, topo, ops, nClients)
				for c := range ref {
					if !eventsEqual(got[c], ref[c]) {
						t.Fatalf("remote backend: client %d deliveries differ from detector backend (%d vs %d events)",
							c, len(got[c]), len(ref[c]))
					}
				}
			})
		}
	}
}

// TestRemoteBackendValidation pins the configuration errors: a missing
// daemon address and an unreachable daemon both fail network construction
// cleanly.
func TestRemoteBackendValidation(t *testing.T) {
	cfg := Config{Schema: testSchema(), Mode: core.ModeExact, Backend: BackendRemote}
	if _, err := NewNetwork(Line(2), cfg); err == nil {
		t.Fatal("BackendRemote without DaemonAddr must fail")
	}
	cfg.DaemonAddr = "127.0.0.1:1" // nothing listens there
	if _, err := NewNetwork(Line(2), cfg); err == nil {
		t.Fatal("BackendRemote with an unreachable daemon must fail")
	}
}

// TestRemoteBackendDaemonLossFloods pins the degradation contract: when
// the shared daemon dies mid-run, covering state is gone but no event may
// be lost — brokers fall back to flooding (forwarding unconditionally),
// recording protocol errors. The delicate path is cover withdrawal: the
// suppressed set is local, so the covered set still pops, and the failing
// re-screen probes must forward rather than drop.
func TestRemoteBackendDaemonLossFloods(t *testing.T) {
	schema := testSchema()
	base := Config{Schema: schema, Mode: core.ModeExact, Strategy: core.StrategyLinear}
	eng, err := engine.New(engine.Config{
		Detector: core.Config{Schema: schema, Mode: base.Mode, Strategy: base.Strategy},
		Shards:   2,
		Workers:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	srv := sfcd.NewServer(eng)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cfg := base
	cfg.Backend = BackendRemote
	cfg.DaemonAddr = addr.String()
	n := MustNetwork(Line(3), cfg)
	defer n.Close()
	wideClient, _ := n.AttachClient(0)
	narrowClient, _ := n.AttachClient(0)
	pub, _ := n.AttachClient(2)

	wide := subscription.MustParse(schema, "price <= 200")
	narrow := subscription.MustParse(schema, "price in [10,20]")
	for _, c := range []struct {
		id  int
		sub *subscription.Subscription
	}{{wideClient.ID, wide}, {narrowClient.ID, narrow}} {
		if err := n.Subscribe(c.id, c.sub); err != nil {
			t.Fatal(err)
		}
		n.Drain()
	}
	if n.SuppressedEntries() == 0 {
		t.Fatal("narrow must be suppressed under the wide cover")
	}

	// The daemon dies with suppressed state outstanding.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	// Withdrawing the cover now runs the resubscription path against a
	// dead daemon: the narrow subscription must be re-forwarded (flooding
	// fallback), not silently dropped.
	if err := n.Unsubscribe(wideClient.ID, wide); err != nil {
		t.Fatal(err)
	}
	n.Drain()

	inRange, _ := subscription.ParseEvent(schema, "topic = 0, price = 15")
	if err := n.Publish(pub.ID, inRange); err != nil {
		t.Fatal(err)
	}
	n.Drain()
	if len(narrowClient.Received) != 1 {
		t.Fatalf("suppressed subscriber received %d events after daemon loss, want 1", len(narrowClient.Received))
	}
	if len(wideClient.Received) != 0 {
		t.Fatal("unsubscribed wide client must receive nothing")
	}
	if n.Metrics().ProtocolErrors == 0 {
		t.Fatal("daemon loss must be visible as protocol errors")
	}
}

// TestRemoteBackendReleasesNamespaces pins the lifecycle contract with a
// long-lived shared daemon: closing the network unlinks every link
// namespace, so daemon memory does not grow with simulation runs.
func TestRemoteBackendReleasesNamespaces(t *testing.T) {
	schema := testSchema()
	base := Config{Schema: schema, Mode: core.ModeExact, Strategy: core.StrategyLinear}
	addr := startTestDaemon(t, base)

	cfg := base
	cfg.Backend = BackendRemote
	cfg.DaemonAddr = addr
	n := MustNetwork(Line(3), cfg)
	c, err := n.AttachClient(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Subscribe(c.ID, subscription.MustParse(schema, "price <= 100")); err != nil {
		t.Fatal(err)
	}
	n.Drain()
	if n.ForwardedEntries() == 0 {
		t.Fatal("the subscription must land in some remote forwarded set")
	}
	n.Close()

	// A fresh network with the same (default) link prefix sees empty
	// namespaces: the daemon did not retain the closed network's state.
	n2 := MustNetwork(Line(3), cfg)
	defer n2.Close()
	if got := n2.ForwardedEntries(); got != 0 {
		t.Fatalf("daemon retained %d forwarded entries after network close", got)
	}
}
