// Package broker simulates a distributed content-based publish/subscribe
// network of the kind the paper targets (Siena, Gryphon, REBECA): brokers
// form an acyclic overlay, subscriptions propagate through the overlay so
// that events published anywhere reach every matching subscriber, and each
// broker suppresses the forwarding of subscriptions that are covered by
// ones it already forwarded — using a core.Provider (a single Detector or
// a sharded engine, per Config.Backend) in any of the paper's modes
// (off / exact / ε-approximate). At unsubscription time the suppressed
// set is queried with FindCovered for exactly the subscriptions the
// retracted cover was holding back, which are then re-screened and
// re-forwarded where needed.
//
// The simulation is deterministic: messages are processed from a single
// FIFO queue, and all iteration orders are fixed. The safety property the
// tests pin down is the paper's central premise: covering (exact or
// approximate) changes how many subscriptions are propagated, never which
// events are delivered.
package broker

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"sfccover/internal/core"
	"sfccover/internal/obs"
	"sfccover/internal/sfcd"
	"sfccover/internal/subscription"
)

// Config parameterizes every broker's covering providers.
type Config struct {
	// Schema is the pub/sub attribute schema (required).
	Schema *subscription.Schema
	// Mode is the covering-detection mode each broker runs; ModeOff floods.
	Mode core.Mode
	// Epsilon is the approximation parameter for core.ModeApprox.
	Epsilon float64
	// Strategy selects the exact-search backend; empty means SFC.
	Strategy core.Strategy
	// MaxCubes caps per-query work in SFC searches (0 = unlimited).
	MaxCubes int
	// Curve selects the space filling curve for SFC searches: "z"
	// (default), "hilbert", "gray" or "onion".
	Curve string
	// DecompCacheSize bounds each link index's decomposition cache
	// (0 = default, negative disables); see core.Config.DecompCacheSize.
	DecompCacheSize int
	// AdaptiveBudget derives per-query budgets from observed workload
	// statistics; see core.Config.AdaptiveBudget.
	AdaptiveBudget bool
	// Seed derives the deterministic randomness of the SFC arrays.
	Seed int64
	// Backend selects the per-link covering provider: a single Detector
	// (default), a hash-sharded engine, a curve-prefix engine, or link
	// namespaces on a shared sfcd daemon. Networks with engine backends
	// own worker pools and remote-backed networks own a daemon
	// connection; call Close when done.
	Backend Backend
	// Shards is the per-link shard count for the engine backends
	// (0 = the engine default).
	Shards int
	// DaemonAddr is the shared sfcd daemon's TCP address (required for
	// BackendRemote unless DaemonAddrs is set, ignored otherwise). All
	// links of all brokers multiplex one pipelined connection to it.
	DaemonAddr string
	// DaemonAddrs lists a replicated daemon cluster's addresses
	// (BackendRemote). Setting it puts the shared connection in failover
	// mode: a lost daemon is redialed across the list — DaemonAddr first,
	// if also set — until a primary answers, and link namespaces
	// re-resolve server-side on the next request (daemon links are
	// materialized lazily by name, so a promoted follower rebuilds them
	// from its replicated WAL). Ops in flight at the failure still fail
	// typed with ErrDaemonConnectionLost; the routing layer decides what
	// is safe to reissue.
	DaemonAddrs []string
	// DaemonTimeout is the per-operation deadline on daemon calls
	// (BackendRemote; 0 = none).
	DaemonTimeout time.Duration
	// LinkPrefix namespaces this network's links on the shared daemon, so
	// several networks (or several runs) can share one daemon without
	// colliding (BackendRemote; empty is fine for a dedicated daemon).
	LinkPrefix string
	// BatchSize chunks the covered-set re-forward probes issued at
	// unsubscription time through the provider's batch interface
	// (0 = the whole covered set in one batch).
	BatchSize int
	// RebalanceThreshold arms each engine-backed link's background slice
	// rebalancer: when a link's curve-prefix occupancy skew reaches it,
	// the engine moves slice boundaries back toward balance (must exceed
	// 1 when set; 0 disables; inert on non-prefix backends, whose
	// placement cannot skew by key locality).
	RebalanceThreshold float64
	// RebalanceInterval is the background rebalancer's poll period
	// (0 = the engine default).
	RebalanceInterval time.Duration
	// DataDir makes every in-process link provider durable: forwarded and
	// suppressed sets ride one persist.Store (WAL + snapshots) under this
	// directory, and a network rebuilt over the same dir recovers them —
	// including the per-link id maps, restored from the recovered
	// providers — so a broker restart does not re-flood the overlay.
	// In-process backends only; with BackendRemote the daemon's own
	// -data-dir is the durability seam, and combining the two is refused.
	// Snapshot compaction is explicit: call Network.Snapshot.
	DataDir string
}

// Metrics aggregates network-wide counters. Subscription/unsubscription
// message counts are the quantity the paper's optimization reduces.
type Metrics struct {
	// SubscribeMsgs counts broker-to-broker subscribe messages.
	SubscribeMsgs int
	// UnsubscribeMsgs counts broker-to-broker unsubscribe messages.
	UnsubscribeMsgs int
	// EventMsgs counts broker-to-broker event messages.
	EventMsgs int
	// Deliveries counts events handed to clients.
	Deliveries int
	// SuppressedForwards counts subscription forwards avoided thanks to a
	// detected cover.
	SuppressedForwards int
	// DuplicateForwards counts forwards avoided because the identical
	// subscription was already forwarded on that link.
	DuplicateForwards int
	// ProtocolErrors counts internal inconsistencies (always zero unless
	// the simulation itself is buggy).
	ProtocolErrors int
}

// ifaceKind distinguishes the two sides a broker talks to.
type ifaceKind int

const (
	ifNeighbor ifaceKind = iota + 1
	ifClient
)

// iface identifies a message source/sink at a broker: a neighboring broker
// or an attached client.
type iface struct {
	kind ifaceKind
	id   int
}

func (i iface) key() string {
	if i.kind == ifNeighbor {
		return "n" + strconv.Itoa(i.id)
	}
	return "c" + strconv.Itoa(i.id)
}

// message is a queued simulation step.
type message struct {
	to    int // destination broker
	from  iface
	sub   *subscription.Subscription // subscribe/unsubscribe payload
	event subscription.Event         // event payload
	kind  msgKind
	// at is the event's origin timestamp, stamped at Publish and
	// propagated unchanged through every forwarding hop, so delivery
	// latency measures publish-to-client end to end. Zero on
	// subscribe/unsubscribe messages.
	at time.Time
}

type msgKind int

const (
	msgSubscribe msgKind = iota + 1
	msgUnsubscribe
	msgEvent
)

// Client is an endpoint attached to one broker.
type Client struct {
	// ID is the network-unique client id.
	ID int
	// Broker is the id of the broker the client is attached to.
	Broker int
	// Received records delivered events in delivery order.
	Received []subscription.Event

	subs []*subscription.Subscription
}

// Subscriptions returns the client's live subscriptions.
func (c *Client) Subscriptions() []*subscription.Subscription {
	out := make([]*subscription.Subscription, len(c.subs))
	for i, s := range c.subs {
		out[i] = s.Clone()
	}
	return out
}

// Network is a deterministic simulation of a broker overlay.
type Network struct {
	cfg     Config
	src     *providerSource
	brokers []*Broker
	clients map[int]*Client
	nextCli int
	queue   []message
	metrics Metrics
	lat     *linkLatency
}

// linkLatency holds the overlay's latency histograms, shared by every
// broker (and by both runtimes — the Concurrent wrapper reuses the
// Network's). delivery measures publish to client hand-off, end to end
// across hops; forward measures the covering query a subscription
// forward waits on (the paper's per-link detection cost, as latency).
type linkLatency struct {
	delivery *obs.Histogram
	forward  *obs.Histogram
}

// environment is the world a broker's state machine acts on: it sends
// messages, delivers events to clients and bumps metrics. The sequential
// Network implements it directly; the Concurrent runtime implements it
// with channels and atomics, reusing the identical state machine.
type environment interface {
	enqueue(m message)
	deliver(clientID int, e subscription.Event)
	bump(counter metricID)
}

// metricID names a Metrics counter for environment.bump.
type metricID int

const (
	metricSubscribeMsgs metricID = iota
	metricUnsubscribeMsgs
	metricEventMsgs
	metricDeliveries
	metricSuppressed
	metricDuplicate
	metricProtocolError
)

// Broker is one routing node.
type Broker struct {
	id        int
	env       environment
	neighbors []int // sorted
	table     map[string]*tableRow
	out       map[int]*neighborState // per neighbor
	clients   []int                  // sorted attachment order
	batch     int                    // covered-set re-probe chunk size (0 = all)
	lat       *linkLatency           // overlay-shared latency histograms
}

// tableRow is one routing-table entry: a subscription together with the
// interface it arrived from.
type tableRow struct {
	sub   *subscription.Subscription
	from  iface
	count int // reference count for repeated identical subscribes
}

// neighborState tracks the link state toward one neighbor through two
// covering providers. fwd holds the forwarded set — the covering queries
// that suppress redundant forwards run against it, in the configured mode.
// supp holds the suppressed set — every subscription withheld from this
// link because a forwarded one covered it. supp always runs ModeExact:
// at unsubscription time FindCovered against it yields the *exact* set of
// subscriptions the retracted cover had been suppressing, which is the
// set that must be re-screened for forwarding (a miss there would lose
// events, unlike covering misses, which only cost redundant traffic).
type neighborState struct {
	fwd  core.Provider
	ids  map[string]uint64 // subKey -> fwd provider id
	supp core.Provider
	sups map[string]uint64 // subKey -> supp provider id
	// degraded marks a link whose forwarded-set provider may have
	// diverged from the wire — a Remove failed, so the provider (a remote
	// daemon, typically) may still hold a cover whose retraction was
	// already sent. Covering answers from a diverged set cannot be
	// trusted for suppression (a stale cover would suppress subscriptions
	// the neighbor no longer covers — silent event loss), so a degraded
	// link floods: every subscription is forwarded unconditionally.
	degraded bool
}

// NewNetwork builds the overlay and its per-link covering detectors.
func NewNetwork(topo Topology, cfg Config) (*Network, error) {
	if err := topo.validate(); err != nil {
		return nil, err
	}
	if cfg.Schema == nil {
		return nil, fmt.Errorf("broker: config needs a schema")
	}
	src, err := newProviderSource(cfg)
	if err != nil {
		return nil, err
	}
	n := &Network{
		cfg: cfg, src: src, clients: make(map[int]*Client),
		lat: &linkLatency{delivery: obs.NewHistogram(), forward: obs.NewHistogram()},
	}
	n.brokers = make([]*Broker, topo.N)
	for i := range n.brokers {
		n.brokers[i] = &Broker{
			id:    i,
			env:   n,
			lat:   n.lat,
			table: make(map[string]*tableRow),
			out:   make(map[int]*neighborState),
		}
	}
	for _, e := range topo.Edges {
		n.brokers[e[0]].neighbors = append(n.brokers[e[0]].neighbors, e[1])
		n.brokers[e[1]].neighbors = append(n.brokers[e[1]].neighbors, e[0])
	}
	for _, b := range n.brokers {
		b.batch = cfg.BatchSize
		sort.Ints(b.neighbors)
		for _, j := range b.neighbors {
			seed := cfg.Seed + int64(b.id)<<16 + int64(j)
			fwd, err := src.forwarded(b.id, j, seed)
			if err != nil {
				n.Close()
				return nil, fmt.Errorf("broker: building provider %d->%d: %w", b.id, j, err)
			}
			supp, err := src.suppressed(b.id, j, seed+suppSeedOffset)
			if err != nil {
				fwd.Close()
				n.Close()
				return nil, fmt.Errorf("broker: building suppressed-set provider %d->%d: %w", b.id, j, err)
			}
			st := &neighborState{
				fwd: fwd, ids: make(map[string]uint64),
				supp: supp, sups: make(map[string]uint64),
			}
			st.restoreIDMaps()
			b.out[j] = st
		}
	}
	n.restoreTables()
	return n, nil
}

// restoreTables rebuilds neighbor routing-table rows from recovered link
// state: the rows broker j holds for neighbor b are, by construction,
// exactly the forwarded set of the link b->j — every subscribe message b
// ever sent j that was not retracted. Client rows are not restored;
// clients re-attach and re-subscribe after a restart, and the recovered
// id maps absorb those re-subscriptions without new forwards.
func (n *Network) restoreTables() {
	for _, b := range n.brokers {
		for _, j := range b.neighbors {
			en, ok := b.out[j].fwd.(core.Enumerator)
			if !ok {
				continue
			}
			from := iface{kind: ifNeighbor, id: b.id}
			peer := n.brokers[j]
			for _, it := range en.Subscriptions() {
				rowKey := subKey(it.Sub) + "@" + from.key()
				if _, exists := peer.table[rowKey]; !exists {
					peer.table[rowKey] = &tableRow{sub: it.Sub, from: from, count: 1}
				}
			}
		}
	}
}

// restoreIDMaps rebuilds the link's derived id maps from recovered
// durable providers (the Enumerator capability): after a restart the
// forwarded and suppressed sets come back populated, and the broker must
// know which rectangle maps to which provider id — otherwise re-arriving
// subscriptions would be re-forwarded (duplicate traffic) and retractions
// could not find their entries. Providers without the capability (fresh
// in-memory ones, remote namespaces) leave the maps empty, as before.
func (st *neighborState) restoreIDMaps() {
	if en, ok := st.fwd.(core.Enumerator); ok {
		for _, it := range en.Subscriptions() {
			st.ids[subKey(it.Sub)] = it.ID
		}
	}
	if en, ok := st.supp.(core.Enumerator); ok {
		for _, it := range en.Subscriptions() {
			st.sups[subKey(it.Sub)] = it.ID
		}
	}
}

// Snapshot writes a point-in-time snapshot of the network's durable link
// state and compacts the WAL behind it. It is a no-op error on networks
// built without Config.DataDir.
func (n *Network) Snapshot() error {
	if n.src == nil || n.src.store == nil {
		return fmt.Errorf("broker: network has no durable store (Config.DataDir unset)")
	}
	return n.src.store.Snapshot()
}

// DaemonFailoverStats reports the shared daemon connection's lifecycle
// counters (connections lost, reconnects, failovers to another replica).
// The second return is false on networks whose backend is not
// BackendRemote. Harnesses killing a primary mid-run watch Reconnects to
// know when the overlay has re-established its connection and traffic can
// resume without tripping over the corpse of the old one.
func (n *Network) DaemonFailoverStats() (sfcd.FailoverStats, bool) {
	if n.src == nil || n.src.client == nil {
		return sfcd.FailoverStats{}, false
	}
	return n.src.client.FailoverStats(), true
}

// Close releases every per-link provider and, for BackendRemote, the
// shared daemon connection (per-link namespaces are unlinked first, so a
// long-lived shared daemon does not accumulate dead namespaces). Engine
// backends own worker pools, so networks built with them must be closed;
// with the default detector backend Close is a cheap no-op. The network
// must not be used afterwards.
func (n *Network) Close() {
	for _, b := range n.brokers {
		for _, st := range b.out {
			st.fwd.Close()
			st.supp.Close()
		}
	}
	if n.src != nil {
		n.src.Close()
	}
}

// MustNetwork is NewNetwork for known-good arguments.
func MustNetwork(topo Topology, cfg Config) *Network {
	n, err := NewNetwork(topo, cfg)
	if err != nil {
		panic(err)
	}
	return n
}

// NumBrokers returns the overlay size.
func (n *Network) NumBrokers() int { return len(n.brokers) }

// Metrics returns a snapshot of the aggregate counters.
func (n *Network) Metrics() Metrics { return n.metrics }

// TableRows returns the total number of routing-table entries across all
// brokers — the paper's "size of routing tables".
func (n *Network) TableRows() int {
	total := 0
	for _, b := range n.brokers {
		total += len(b.table)
	}
	return total
}

// ForwardedEntries returns the total size of all per-link forwarded sets.
func (n *Network) ForwardedEntries() int {
	total := 0
	for _, b := range n.brokers {
		for _, st := range b.out {
			total += st.fwd.Len()
		}
	}
	return total
}

// SuppressedEntries returns the total size of all per-link suppressed
// sets — the subscriptions the covering optimization is currently keeping
// off the wire.
func (n *Network) SuppressedEntries() int {
	total := 0
	for _, b := range n.brokers {
		for _, st := range b.out {
			total += st.supp.Len()
		}
	}
	return total
}

// CoverTotals sums query counters across every per-link forwarded-set
// provider (the suppressed-set providers' exact bookkeeping queries are
// not included).
func (n *Network) CoverTotals() core.Totals {
	var tot core.Totals
	for _, b := range n.brokers {
		for _, j := range b.neighbors {
			ps := b.out[j].fwd.Stats()
			tot.Queries += ps.Queries
			tot.Hits += ps.Hits
			tot.RunsProbed += ps.RunsProbed
			tot.CubesGenerated += ps.CubesGenerated
		}
	}
	return tot
}

// AttachClient creates a client on the given broker and returns it.
func (n *Network) AttachClient(brokerID int) (*Client, error) {
	if brokerID < 0 || brokerID >= len(n.brokers) {
		return nil, fmt.Errorf("broker: no broker %d", brokerID)
	}
	c := &Client{ID: n.nextCli, Broker: brokerID}
	n.nextCli++
	n.clients[c.ID] = c
	n.brokers[brokerID].clients = append(n.brokers[brokerID].clients, c.ID)
	return c, nil
}

// Subscribe registers a subscription for the client and propagates it.
// Call Drain to let the propagation settle.
func (n *Network) Subscribe(clientID int, s *subscription.Subscription) error {
	c, ok := n.clients[clientID]
	if !ok {
		return fmt.Errorf("broker: no client %d", clientID)
	}
	if s.Schema() != n.cfg.Schema {
		return fmt.Errorf("broker: subscription schema differs from network schema")
	}
	c.subs = append(c.subs, s.Clone())
	n.queue = append(n.queue, message{
		to: c.Broker, from: iface{kind: ifClient, id: clientID}, sub: s.Clone(), kind: msgSubscribe,
	})
	return nil
}

// Unsubscribe withdraws one previously registered identical subscription.
func (n *Network) Unsubscribe(clientID int, s *subscription.Subscription) error {
	c, ok := n.clients[clientID]
	if !ok {
		return fmt.Errorf("broker: no client %d", clientID)
	}
	for i, held := range c.subs {
		if held.Equal(s) {
			c.subs = append(c.subs[:i], c.subs[i+1:]...)
			n.queue = append(n.queue, message{
				to: c.Broker, from: iface{kind: ifClient, id: clientID}, sub: s.Clone(), kind: msgUnsubscribe,
			})
			return nil
		}
	}
	return fmt.Errorf("broker: client %d holds no such subscription", clientID)
}

// Publish injects an event at the client's broker. Matching subscribers —
// including the publisher itself, if subscribed — receive it during Drain.
func (n *Network) Publish(clientID int, e subscription.Event) error {
	c, ok := n.clients[clientID]
	if !ok {
		return fmt.Errorf("broker: no client %d", clientID)
	}
	if len(e) != n.cfg.Schema.NumAttrs() {
		return fmt.Errorf("broker: event has %d attributes, schema needs %d", len(e), n.cfg.Schema.NumAttrs())
	}
	n.queue = append(n.queue, message{
		to: c.Broker, from: iface{kind: ifClient, id: clientID},
		event: append(subscription.Event(nil), e...), kind: msgEvent,
		at: time.Now(),
	})
	return nil
}

// Drain processes queued messages until the network is quiescent,
// returning the number of messages processed.
func (n *Network) Drain() int {
	processed := 0
	for len(n.queue) > 0 {
		m := n.queue[0]
		n.queue = n.queue[1:]
		processed++
		b := n.brokers[m.to]
		switch m.kind {
		case msgSubscribe:
			b.handleSubscribe(m.from, m.sub)
		case msgUnsubscribe:
			b.handleUnsubscribe(m.from, m.sub)
		case msgEvent:
			b.handleEvent(m.from, m.event, m.at)
		}
	}
	return processed
}

// subKey canonicalizes a subscription's constraint rectangle.
func subKey(s *subscription.Subscription) string {
	var sb strings.Builder
	for i := 0; i < s.Schema().NumAttrs(); i++ {
		r := s.Range(i)
		if i > 0 {
			sb.WriteByte('|')
		}
		sb.WriteString(strconv.FormatUint(uint64(r.Lo), 10))
		sb.WriteByte('-')
		sb.WriteString(strconv.FormatUint(uint64(r.Hi), 10))
	}
	return sb.String()
}

func (b *Broker) handleSubscribe(from iface, s *subscription.Subscription) {
	rowKey := subKey(s) + "@" + from.key()
	if row, ok := b.table[rowKey]; ok {
		row.count++
		return // forwarding state already reflects this subscription
	}
	b.table[rowKey] = &tableRow{sub: s, from: from, count: 1}
	for _, j := range b.neighbors {
		if from.kind == ifNeighbor && from.id == j {
			continue
		}
		b.forwardIfUncovered(j, s)
	}
}

// forwardIfUncovered implements the covering optimization on one link: the
// subscription is forwarded unless an already-forwarded subscription covers
// it (or the identical subscription is already forwarded). Suppressed
// subscriptions are recorded in the link's suppressed-set provider so
// unsubscription can later compute the exact covered set to re-forward.
func (b *Broker) forwardIfUncovered(j int, s *subscription.Subscription) {
	st := b.out[j]
	key := subKey(s)
	if _, dup := st.ids[key]; dup {
		b.env.bump(metricDuplicate)
		return
	}
	if st.degraded {
		b.forward(j, st, key, s)
		return
	}
	t0 := time.Now()
	_, covered, _, err := st.fwd.FindCover(s)
	b.lat.forward.Observe(time.Since(t0))
	if err != nil {
		// Covering detection is unavailable (a remote provider's daemon
		// may be unreachable): degrade to flooding. Forwarding costs only
		// redundant traffic; a subscription that is neither forwarded nor
		// suppressed would silently lose events.
		b.env.bump(metricProtocolError)
		b.forward(j, st, key, s)
		return
	}
	if covered {
		b.env.bump(metricSuppressed)
		b.suppress(st, key, s)
		return
	}
	b.forward(j, st, key, s)
}

// forward inserts s into the link's forwarded set and sends it. Any
// suppressed-set entry for the rectangle is retired first: in approximate
// mode a later probe can miss the cover that suppressed an earlier
// identical row, and forwarding must win over suppression or a future
// cover removal would re-forward an already-forwarded rectangle.
//
// The subscribe message goes on the wire even if the forwarded-set
// insert fails (again: a remote provider's daemon may be down). The
// failure costs link-state bookkeeping — the eventual unsubscribe will
// find no forwarded id and leave a stale row at the neighbor, harmless
// extra traffic — but never a lost delivery.
func (b *Broker) forward(j int, st *neighborState, key string, s *subscription.Subscription) {
	b.dropSuppressed(st, key)
	id, err := st.fwd.Insert(s)
	if err != nil {
		b.env.bump(metricProtocolError)
	} else {
		st.ids[key] = id
	}
	b.env.bump(metricSubscribeMsgs)
	b.env.enqueue(message{
		to: j, from: iface{kind: ifNeighbor, id: b.id}, sub: s.Clone(), kind: msgSubscribe,
	})
}

// suppress records s in the link's suppressed set (once per rectangle:
// identical rows from different interfaces share the entry).
func (b *Broker) suppress(st *neighborState, key string, s *subscription.Subscription) {
	if _, ok := st.sups[key]; ok {
		return
	}
	sid, err := st.supp.Insert(s)
	if err != nil {
		b.env.bump(metricProtocolError)
		return
	}
	st.sups[key] = sid
}

// dropSuppressed retires the suppressed-set entry for key, if present.
func (b *Broker) dropSuppressed(st *neighborState, key string) {
	sid, ok := st.sups[key]
	if !ok {
		return
	}
	if err := st.supp.Remove(sid); err != nil {
		b.env.bump(metricProtocolError)
		return
	}
	delete(st.sups, key)
}

func (b *Broker) handleUnsubscribe(from iface, s *subscription.Subscription) {
	rowKey := subKey(s) + "@" + from.key()
	row, ok := b.table[rowKey]
	if !ok {
		b.env.bump(metricProtocolError)
		return
	}
	row.count--
	if row.count > 0 {
		return
	}
	delete(b.table, rowKey)
	key := subKey(s)
	for _, j := range b.neighbors {
		if from.kind == ifNeighbor && from.id == j {
			continue
		}
		// Some other live table row carrying the same rectangle toward j
		// keeps the link state — forwarded or suppressed — justified.
		if b.hasOtherSource(key, j) {
			continue
		}
		st := b.out[j]
		id, forwarded := st.ids[key]
		if !forwarded {
			// The subscription was suppressed on this link: nothing to
			// retract on the wire, but its suppressed-set entry dies with
			// the last table row.
			b.dropSuppressed(st, key)
			continue
		}
		if err := st.fwd.Remove(id); err != nil {
			// The forwarded-set entry may be unreachable (a remote
			// provider's daemon down) or the removal may have been lost
			// in flight; the retraction and the covered-set resubscription
			// below must proceed anyway — skipping them would strand every
			// suppressed subscription this cover was holding back. But the
			// provider may now hold state the wire has retracted, so its
			// covering answers can no longer justify suppression on this
			// link: degrade it to flooding.
			b.env.bump(metricProtocolError)
			st.degraded = true
		}
		delete(st.ids, key)
		b.env.bump(metricUnsubscribeMsgs)
		b.env.enqueue(message{
			to: j, from: iface{kind: ifNeighbor, id: b.id}, sub: s.Clone(), kind: msgUnsubscribe,
		})
		b.resubscribeCovered(j, st, s)
	}
}

// resubscribeCovered implements the paper's unsubscription protocol: the
// retracted subscription's covered set — exactly the suppressed
// subscriptions it covers, popped from the suppressed-set provider via
// FindCovered — is re-screened against the remaining forwarded set and
// re-forwarded wherever no other cover remains. The probes go through
// core.CoverQueries in BatchSize chunks, so engine backends answer them
// on their batch path.
func (b *Broker) resubscribeCovered(j int, st *neighborState, removed *subscription.Subscription) {
	uncovered := b.popCovered(st, removed)
	if len(uncovered) == 0 {
		return
	}
	// FindCovered pops in provider-internal order; sort by rectangle so
	// the re-forward sequence is deterministic across runs and backends.
	sort.Slice(uncovered, func(x, y int) bool {
		return subKey(uncovered[x]) < subKey(uncovered[y])
	})
	// A degraded link cannot trust the forwarded set's covering answers
	// (a stale cover — possibly the very one being retracted — would
	// re-suppress subscriptions the neighbor no longer covers): flood the
	// whole covered set instead of re-screening it.
	if st.degraded {
		for _, sub := range uncovered {
			b.forward(j, st, subKey(sub), sub)
		}
		return
	}
	batch := b.batch
	if batch <= 0 {
		batch = len(uncovered)
	}
	// Subscriptions re-forwarded earlier in this pass can themselves cover
	// later ones; batch probes cannot see them (they are screened against
	// the forwarded set as of the chunk's start), so re-check directly —
	// exactly, which keeps the suppression justified.
	var reforwarded []*subscription.Subscription
	coveredByReforwarded := func(s *subscription.Subscription) bool {
		for _, f := range reforwarded {
			if f.Covers(s) {
				return true
			}
		}
		return false
	}
	for lo := 0; lo < len(uncovered); lo += batch {
		hi := lo + batch
		if hi > len(uncovered) {
			hi = len(uncovered)
		}
		chunk := uncovered[lo:hi]
		for i, res := range core.CoverQueries(st.fwd, chunk) {
			sub := chunk[i]
			key := subKey(sub)
			if res.Err != nil {
				// The subscription is already popped from the suppressed
				// set; dropping it here would lose its events forever.
				// With covering state unavailable, forward it — the
				// flooding fallback is always safe.
				b.env.bump(metricProtocolError)
				b.forward(j, st, key, sub)
				reforwarded = append(reforwarded, sub)
				continue
			}
			if res.Covered || coveredByReforwarded(sub) {
				b.env.bump(metricSuppressed)
				b.suppress(st, key, sub)
				continue
			}
			b.forward(j, st, key, sub)
			reforwarded = append(reforwarded, sub)
		}
	}
}

// popCovered drains from the link's suppressed set every subscription the
// removed one covers. The suppressed-set provider runs ModeExact, so the
// result is the exact covered set — the invariant "every suppressed
// subscription is covered by some forwarded one" guarantees no suppressed
// subscription outside it lost its cover.
//
// Providers with the drain capability (the Detector, which is what
// suppressed sets run on) collect the whole covered set in one scan;
// the FindCovered/Subscription/Remove pop loop below costs one full scan
// per covered member and remains only as the fallback for providers
// without it.
func (b *Broker) popCovered(st *neighborState, removed *subscription.Subscription) []*subscription.Subscription {
	if dr, ok := st.supp.(core.CoveredDrainer); ok {
		drained, err := dr.DrainCovered(removed)
		if err != nil {
			b.env.bump(metricProtocolError)
			return nil
		}
		out := make([]*subscription.Subscription, len(drained))
		for i, it := range drained {
			delete(st.sups, subKey(it.Sub))
			out[i] = it.Sub
		}
		return out
	}
	var out []*subscription.Subscription
	for {
		sid, found, _, err := st.supp.FindCovered(removed)
		if err != nil {
			b.env.bump(metricProtocolError)
			return out
		}
		if !found {
			return out
		}
		sub, ok := st.supp.Subscription(sid)
		if !ok {
			b.env.bump(metricProtocolError)
			return out
		}
		if err := st.supp.Remove(sid); err != nil {
			b.env.bump(metricProtocolError)
			return out
		}
		delete(st.sups, subKey(sub))
		out = append(out, sub)
	}
}

// hasOtherSource reports whether some other live table row carries the same
// subscription rectangle toward neighbor j.
func (b *Broker) hasOtherSource(key string, j int) bool {
	for _, r := range b.table {
		if r.from.kind == ifNeighbor && r.from.id == j {
			continue
		}
		if subKey(r.sub) == key {
			return true
		}
	}
	return false
}

// sortedRows returns table rows in a deterministic order.
func (b *Broker) sortedRows() []*tableRow {
	keys := make([]string, 0, len(b.table))
	for k := range b.table {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	rows := make([]*tableRow, len(keys))
	for i, k := range keys {
		rows[i] = b.table[k]
	}
	return rows
}

func (b *Broker) handleEvent(from iface, e subscription.Event, at time.Time) {
	delivered := make(map[int]bool)
	forward := make(map[int]bool)
	for _, r := range b.sortedRows() {
		if !r.sub.Matches(e) {
			continue
		}
		switch r.from.kind {
		case ifClient:
			if !delivered[r.from.id] {
				delivered[r.from.id] = true
				if !at.IsZero() {
					b.lat.delivery.Observe(time.Since(at))
				}
				b.env.deliver(r.from.id, e)
			}
		case ifNeighbor:
			if !(from.kind == ifNeighbor && from.id == r.from.id) {
				forward[r.from.id] = true
			}
		}
	}
	targets := make([]int, 0, len(forward))
	for j := range forward {
		targets = append(targets, j)
	}
	sort.Ints(targets)
	for _, j := range targets {
		b.env.bump(metricEventMsgs)
		b.env.enqueue(message{
			to: j, from: iface{kind: ifNeighbor, id: b.id},
			event: append(subscription.Event(nil), e...), kind: msgEvent,
			at: at,
		})
	}
}

// DeliveryLatency returns a snapshot of the overlay's end-to-end event
// delivery latency histogram (publish to client hand-off, across hops).
// Use obs.Snapshot.Quantile for percentiles and Sub for interval deltas.
func (n *Network) DeliveryLatency() obs.Snapshot { return n.lat.delivery.Snapshot() }

// ForwardLatency returns a snapshot of the per-link covering-query
// latency histogram: the time subscription forwards spend waiting on
// FindCover against the link's forwarded set.
func (n *Network) ForwardLatency() obs.Snapshot { return n.lat.forward.Snapshot() }

// enqueue implements environment for the sequential Network.
func (n *Network) enqueue(m message) { n.queue = append(n.queue, m) }

// deliver implements environment for the sequential Network.
func (n *Network) deliver(clientID int, e subscription.Event) {
	c := n.clients[clientID]
	c.Received = append(c.Received, append(subscription.Event(nil), e...))
	n.metrics.Deliveries++
}

// bump implements environment for the sequential Network.
func (n *Network) bump(id metricID) {
	switch id {
	case metricSubscribeMsgs:
		n.metrics.SubscribeMsgs++
	case metricUnsubscribeMsgs:
		n.metrics.UnsubscribeMsgs++
	case metricEventMsgs:
		n.metrics.EventMsgs++
	case metricDeliveries:
		n.metrics.Deliveries++
	case metricSuppressed:
		n.metrics.SuppressedForwards++
	case metricDuplicate:
		n.metrics.DuplicateForwards++
	case metricProtocolError:
		n.metrics.ProtocolErrors++
	}
}
