// Package experiments regenerates every quantitative artifact of the paper
// — Figures 1 and 2, the Theorem 3.1 upper bound, the Theorem 4.1 lower
// bound — and the system evaluation the paper motivates (recall vs ε,
// routing-table reduction, query scaling, data-structure and curve
// ablations). Each experiment writes a self-describing table; cmd/coverbench
// is the CLI driver and bench_test.go wraps each one in a testing.B.
package experiments

import (
	"fmt"
	"io"
	"sort"
)

// Experiment is one reproducible table/figure generator.
type Experiment struct {
	// ID is the experiment identifier (E1..E11).
	ID string
	// Title summarizes what is reproduced.
	Title string
	// Paper states the paper's claim for the artifact.
	Paper string
	// Run executes the experiment, writing its table to w. quick trades
	// sample counts for speed (used by -quick and the benchmarks).
	Run func(w io.Writer, quick bool) error
}

// All returns every experiment in ID order.
func All() []Experiment {
	exps := []Experiment{
		{
			ID:    "E1",
			Title: "Figure 2: run counts of the 256x256 vs 257x257 dominance queries (Z curve)",
			Paper: "1 run vs 385 runs; the largest run covers >99% of the 257x257 region",
			Run:   runE1,
		},
		{
			ID:    "E2",
			Title: "Figure 1: the same rectangle needs 2 runs on the Hilbert curve and 3 on the Z curve",
			Paper: "Hilbert and Z run counts differ by small constant factors on the same region",
			Run:   runE2,
		},
		{
			ID:    "E3",
			Title: "Theorem 3.1: approximate query cost is independent of the region side length",
			Paper: "cost <= m*(2^alpha*(2^m-1))^(d-1), independent of l; exhaustive cost grows as l^(d-1)",
			Run:   runE3,
		},
		{
			ID:    "E4",
			Title: "Theorem 4.1: exhaustive cost on the adversarial family grows as (2^(alpha-1)*l_d)^(d-1)",
			Paper: "runs(R0) >= (2^(alpha-1)*l_d)^(d-1); approximate cost stays flat on the same regions",
			Run:   runE4,
		},
		{
			ID:    "E5",
			Title: "Aspect-ratio dependence of approximate cost",
			Paper: "the 2^(alpha*(d-1)) factor of Theorem 3.1 dominates once alpha grows",
			Run:   runE5,
		},
		{
			ID:    "E6",
			Title: "Dimension dependence of approximate cost",
			Paper: "cost grows as (2d/eps)^(d-1) with the dimension d = 2*beta",
			Run:   runE6,
		},
		{
			ID:    "E7",
			Title: "Covering-detection recall vs epsilon and cover tightness",
			Paper: "approximate search finds most covers when subscriptions are well distributed",
			Run:   runE7,
		},
		{
			ID:    "E8",
			Title: "Broker network: routing-table size and propagation traffic vs covering mode",
			Paper: "covering reduces subscriptions propagated and routing-table size; approximate retains most of the reduction",
			Run:   runE8,
		},
		{
			ID:    "E9",
			Title: "Query latency vs number of indexed subscriptions",
			Paper: "approximate covering cost is sublinear in n (first such algorithm, Section 1.3)",
			Run:   runE9,
		},
		{
			ID:    "E10",
			Title: "Ablation: SFC-array implementation (treap vs skip list)",
			Paper: "the SFC array can be any dynamic ordered structure (Section 2)",
			Run:   runE10,
		},
		{
			ID:    "E11",
			Title: "Ablation: curve choice (Z vs Hilbert vs Gray vs Onion)",
			Paper: "Z and Hilbert perform within a constant fraction of each other [MJFS01]",
			Run:   runE11,
		},
		{
			ID:    "E12",
			Title: "Ablation: probe order (descending vs ascending cube volume)",
			Paper: "Section 5 probes cubes in descending order of volume",
			Run:   runE12,
		},
		{
			ID:    "E13",
			Title: "Broker network under sustained subscription churn",
			Paper: "covering remains a pure optimization under dynamic subscriptions (Section 1)",
			Run:   runE13,
		},
	}
	sort.Slice(exps, func(i, j int) bool { return idOrder(exps[i].ID) < idOrder(exps[j].ID) })
	return exps
}

func idOrder(id string) int {
	var n int
	fmt.Sscanf(id, "E%d", &n)
	return n
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// header writes the experiment banner.
func header(w io.Writer, e Experiment) {
	fmt.Fprintf(w, "== %s: %s\n", e.ID, e.Title)
	fmt.Fprintf(w, "   paper: %s\n\n", e.Paper)
}
