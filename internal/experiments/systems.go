package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"sfccover/internal/bits"
	"sfccover/internal/broker"
	"sfccover/internal/core"
	"sfccover/internal/cubes"
	"sfccover/internal/dominance"
	"sfccover/internal/sfc"
	"sfccover/internal/sfcarray"
	"sfccover/internal/stats"
	"sfccover/internal/subscription"
	"sfccover/internal/workload"
)

// runE7 measures covering-detection recall against cover tightness and
// epsilon — the system-level consequence of the truncated corner: the
// approximate search skips the part of the dominance region adjacent to
// the query point, which is exactly where barely-wider covers live.
func runE7(w io.Writer, quick bool) error {
	e, _ := ByID("E7")
	header(w, e)
	pairsN := 400
	if quick {
		pairsN = 120
	}
	for _, sc := range []struct {
		name  string
		attrs []string
		bits  int
		eps   []float64
		cap   int
	}{
		{"beta=1 (d=2)", []string{"price"}, 12, []float64{0.3, 0.1, 0.05, 0.01}, core.UnlimitedCubes},
		{"beta=2 (d=4)", []string{"price", "volume"}, 10, []float64{0.4, 0.2, 0.1}, 30000},
	} {
		schema := subscription.MustSchema(sc.bits, sc.attrs...)
		n := pairsN
		if len(sc.attrs) == 2 {
			n = pairsN / 2
		}
		tb := stats.NewTable("slack", "eps", "recall", "mean probes/query", "mean volume frac")
		for _, slack := range []struct {
			name string
			frac float64
		}{{"tight 1%", 0.01}, {"medium 5%", 0.05}, {"wide 15%", 0.15}} {
			pairs, err := workload.Covers(workload.CoverSpec{
				Schema: schema, N: n, SlackFrac: slack.frac, Seed: 71,
			})
			if err != nil {
				return err
			}
			for _, eps := range sc.eps {
				det, err := core.New(core.Config{
					Schema: schema, Mode: core.ModeApprox, Epsilon: eps, MaxCubes: sc.cap,
				})
				if err != nil {
					return err
				}
				for _, p := range pairs {
					if _, err := det.Insert(p.Parent); err != nil {
						return err
					}
				}
				found := 0
				var probes, volFrac float64
				for _, p := range pairs {
					_, ok, st, err := det.FindCover(p.Child)
					if err != nil {
						return err
					}
					if ok {
						found++
					}
					probes += float64(st.RunsProbed)
					volFrac += float64(st.VolumeFraction)
				}
				tb.AddRow(slack.name, eps,
					float64(found)/float64(len(pairs)),
					probes/float64(len(pairs)),
					volFrac/float64(len(pairs)))
			}
		}
		fmt.Fprintf(w, "%s, %d planted covers:\n%s\n", sc.name, n, tb)
	}
	fmt.Fprintln(w, "paper: recall is high for well-distributed (generous) covers; tight covers sit in the")
	fmt.Fprintln(w, "       skipped corner near the query point — the cost of the (1-eps) volume guarantee")
	return nil
}

// runE8 runs the broker network under each covering mode and reports the
// propagation metrics the paper's optimization targets.
func runE8(w io.Writer, quick bool) error {
	e, _ := ByID("E8")
	header(w, e)
	schema := subscription.MustSchema(8, "topic", "price")
	nSubs, nClients, nEvents := 300, 24, 100
	topo := broker.BalancedTree(31)
	if quick {
		nSubs, nClients, nEvents = 100, 12, 40
		topo = broker.BalancedTree(15)
	}
	// A mixture of broad and narrow interests, all with both-sided
	// constraints: narrow subscriptions tend to be covered by broad ones
	// at generous slack — the paper's "well distributed" regime — and
	// both-sided ranges keep the query regions' aspect ratios moderate
	// (unconstrained attributes produce unit-length region sides; see E5).
	broad, err := workload.Subscriptions(workload.SubSpec{
		Schema: schema, N: nSubs / 2, Dist: workload.DistUniform,
		WidthFrac: 0.5, UnconstrainedProb: 0, Seed: 81,
	})
	if err != nil {
		return err
	}
	narrow, err := workload.Subscriptions(workload.SubSpec{
		Schema: schema, N: nSubs - nSubs/2, Dist: workload.DistUniform,
		WidthFrac: 0.1, UnconstrainedProb: 0, Seed: 83,
	})
	if err != nil {
		return err
	}
	subs := make([]*subscription.Subscription, 0, nSubs)
	for i := 0; i < len(broad) || i < len(narrow); i++ {
		if i < len(broad) {
			subs = append(subs, broad[i])
		}
		if i < len(narrow) {
			subs = append(subs, narrow[i])
		}
	}
	events, err := workload.Events(workload.EventSpec{Schema: schema, N: nEvents, Seed: 82})
	if err != nil {
		return err
	}

	type result struct {
		name                  string
		tableRows, subMsgs    int
		suppressed, eventMsgs int
		deliveries            int
		meanProbes            float64
	}
	var results []result
	var refDeliveries int
	configs := []struct {
		name string
		cfg  broker.Config
	}{
		{"flood (off)", broker.Config{Schema: schema, Mode: core.ModeOff}},
		{"exact (linear)", broker.Config{Schema: schema, Mode: core.ModeExact, Strategy: core.StrategyLinear}},
		{"approx eps=0.4", broker.Config{Schema: schema, Mode: core.ModeApprox, Epsilon: 0.4, MaxCubes: 10000}},
		{"approx eps=0.15", broker.Config{Schema: schema, Mode: core.ModeApprox, Epsilon: 0.15, MaxCubes: 10000}},
	}
	for _, c := range configs {
		n, err := broker.NewNetwork(topo, c.cfg)
		if err != nil {
			return err
		}
		clients := make([]*broker.Client, nClients)
		for i := range clients {
			cl, err := n.AttachClient(i % n.NumBrokers())
			if err != nil {
				return err
			}
			clients[i] = cl
		}
		for i, s := range subs {
			if err := n.Subscribe(clients[i%nClients].ID, s); err != nil {
				return err
			}
		}
		n.Drain()
		for i, ev := range events {
			if err := n.Publish(clients[i%nClients].ID, ev); err != nil {
				return err
			}
		}
		n.Drain()
		m := n.Metrics()
		if m.ProtocolErrors != 0 {
			return fmt.Errorf("E8: %s produced %d protocol errors", c.name, m.ProtocolErrors)
		}
		tot := n.CoverTotals()
		meanProbes := 0.0
		if tot.Queries > 0 {
			meanProbes = float64(tot.RunsProbed) / float64(tot.Queries)
		}
		if refDeliveries == 0 {
			refDeliveries = m.Deliveries
		} else if m.Deliveries != refDeliveries {
			return fmt.Errorf("E8: %s delivered %d events, flood delivered %d — covering broke routing",
				c.name, m.Deliveries, refDeliveries)
		}
		results = append(results, result{
			name: c.name, tableRows: n.TableRows(), subMsgs: m.SubscribeMsgs,
			suppressed: m.SuppressedForwards, eventMsgs: m.EventMsgs,
			deliveries: m.Deliveries, meanProbes: meanProbes,
		})
	}
	tb := stats.NewTable("mode", "table rows", "sub msgs", "suppressed", "event msgs", "deliveries", "mean probes/query")
	for _, r := range results {
		tb.AddRow(r.name, r.tableRows, r.subMsgs, r.suppressed, r.eventMsgs, r.deliveries, r.meanProbes)
	}
	fmt.Fprintf(w, "%d brokers, %d clients, %d subscriptions, %d events:\n%s\n",
		topo.N, nClients, nSubs, nEvents, tb)
	fmt.Fprintln(w, "paper: covering shrinks tables and propagation traffic; deliveries are identical across")
	fmt.Fprintln(w, "       modes (safety), and approximate covering retains most of exact covering's savings")
	return nil
}

// runE9 measures per-query latency against the number of indexed
// subscriptions for the approximate SFC index and the exact baselines.
func runE9(w io.Writer, quick bool) error {
	e, _ := ByID("E9")
	header(w, e)
	const d, k = 4, 14
	sizes := []int{1000, 10000, 100000}
	queries := 200
	if quick {
		sizes = []int{1000, 10000}
		queries = 50
	}
	rng := rand.New(rand.NewSource(91))
	genPoint := func() []uint32 {
		p := make([]uint32, d)
		for i := range p {
			p[i] = uint32(rng.Int63n(1 << k))
		}
		return p
	}

	tb := stats.NewTable("n",
		"approx hit us", "linear hit us", "kd hit us",
		"approx miss us", "linear miss us", "kd miss us", "approx found%")
	for _, n := range sizes {
		approx := dominance.MustIndex(dominance.Config{Dims: d, Bits: k, MaxCubes: 50000})
		lin := dominance.NewLinear()
		kd := dominance.NewKDTree(d)
		for i := 0; i < n; i++ {
			p := genPoint()
			approx.Insert(p, uint64(i))
			lin.Insert(p, uint64(i))
			kd.Insert(p, uint64(i))
		}
		// Hit-heavy queries: uniform points, almost always dominated.
		hitQs := make([][]uint32, queries)
		for i := range hitQs {
			hitQs[i] = genPoint()
		}
		// Miss queries: points hugging the max corner, where no indexed
		// point dominates. Exact baselines must do their full worst-case
		// work to prove the miss; this is where sublinearity in n shows.
		missQs := make([][]uint32, queries)
		for i := range missQs {
			q := make([]uint32, d)
			for j := range q {
				q[j] = uint32(uint64(1)<<k - 1 - uint64(rng.Intn(4)))
			}
			missQs[i] = q
		}

		var approxFound int
		timeQueries := func(idx func(q []uint32), qs [][]uint32) float64 {
			start := time.Now()
			for _, q := range qs {
				idx(q)
			}
			return float64(time.Since(start).Microseconds()) / float64(len(qs))
		}
		approxHit := timeQueries(func(q []uint32) {
			if _, ok, _, err := approx.Query(q, 0.3); err == nil && ok {
				approxFound++
			}
		}, hitQs)
		linHit := timeQueries(func(q []uint32) { lin.QueryDominating(q) }, hitQs)
		kdHit := timeQueries(func(q []uint32) { kd.QueryDominating(q) }, hitQs)
		approxMiss := timeQueries(func(q []uint32) { approx.Query(q, 0.3) }, missQs)
		linMiss := timeQueries(func(q []uint32) { lin.QueryDominating(q) }, missQs)
		kdMiss := timeQueries(func(q []uint32) { kd.QueryDominating(q) }, missQs)

		tb.AddRow(n, approxHit, linHit, kdHit, approxMiss, linMiss, kdMiss,
			100*float64(approxFound)/float64(queries))
	}
	fmt.Fprintln(w, tb)

	// Exhaustive SFC on a small universe, for scale.
	exN := 2000
	exQueries := 20
	if quick {
		exQueries = 5
	}
	ex := dominance.MustIndex(dominance.Config{Dims: d, Bits: 6})
	rng2 := rand.New(rand.NewSource(92))
	for i := 0; i < exN; i++ {
		p := make([]uint32, d)
		for j := range p {
			p[j] = uint32(rng2.Int63n(1 << 6))
		}
		ex.Insert(p, uint64(i))
	}
	start := time.Now()
	var runsTotal int
	for i := 0; i < exQueries; i++ {
		q := make([]uint32, d)
		for j := range q {
			q[j] = uint32(rng2.Int63n(1 << 6))
		}
		_, _, st, err := ex.Query(q, 0)
		if err != nil {
			return err
		}
		runsTotal += st.RunsProbed
	}
	exT := time.Since(start)
	fmt.Fprintf(w, "exhaustive SFC reference (d=4 but only k=6, n=%d): %.0f us/query, mean %d runs probed\n",
		exN, float64(exT.Microseconds())/float64(exQueries), runsTotal/exQueries)
	fmt.Fprintln(w, "paper: approximate query cost does not scale with n (index probes are O(log n));")
	fmt.Fprintln(w, "       linear scan grows with n; exhaustive SFC is infeasible beyond tiny universes")
	return nil
}

// runE10 compares the two SFC-array implementations.
func runE10(w io.Writer, quick bool) error {
	e, _ := ByID("E10")
	header(w, e)
	n := 200000
	probes := 200000
	if quick {
		n, probes = 20000, 20000
	}
	tb := stats.NewTable("implementation", "insert ns/op", "probe ns/op", "delete ns/op")
	for _, impl := range []string{"treap", "skiplist"} {
		arr, err := sfcarray.New(impl, 7)
		if err != nil {
			return err
		}
		rng := rand.New(rand.NewSource(11))
		keys := make([]uint64, n)
		for i := range keys {
			keys[i] = rng.Uint64()
		}
		start := time.Now()
		for i, kv := range keys {
			arr.Insert(keyOf(kv), uint64(i))
		}
		insertT := time.Since(start)

		start = time.Now()
		var hits int
		for i := 0; i < probes; i++ {
			lo := rng.Uint64()
			if _, ok := arr.FirstInRange(keyOf(lo), keyOf(lo|0xFFFFFFFF)); ok {
				hits++
			}
		}
		probeT := time.Since(start)

		start = time.Now()
		for i, kv := range keys {
			if !arr.Delete(keyOf(kv), uint64(i)) {
				return fmt.Errorf("E10: %s lost a key", impl)
			}
		}
		deleteT := time.Since(start)
		tb.AddRow(impl,
			float64(insertT.Nanoseconds())/float64(n),
			float64(probeT.Nanoseconds())/float64(probes),
			float64(deleteT.Nanoseconds())/float64(n))
	}
	fmt.Fprintln(w, tb)
	fmt.Fprintln(w, "paper: any dynamic ordered structure works for the SFC array; both give O(log n) ops")
	return nil
}

// runE11 compares curves along the two axes where the choice matters: how
// well each curve merges a region's cubes into runs (exhaustive cost), and
// how expensive its key encoding makes every probe (approximate cost).
func runE11(w io.Writer, quick bool) error {
	e, _ := ByID("E11")
	header(w, e)

	// Part 1: exhaustive run counts on random extremal regions.
	const k2 = 10
	trials := 300
	if quick {
		trials = 60
	}
	rng := rand.New(rand.NewSource(3))
	curves2 := map[string]sfc.Curve{
		"z":       sfc.MustZ(2, k2),
		"hilbert": sfc.MustHilbert(2, k2),
		"gray":    sfc.MustGray(2, k2),
		"onion":   sfc.MustOnion(2, k2),
	}
	runSums := map[string]float64{}
	var cubeSum float64
	for t := 0; t < trials; t++ {
		ext, err := workload.RandomExtremal(rng, 2, k2, 1+rng.Intn(2))
		if err != nil {
			return err
		}
		part, err := cubes.Decompose(ext.Rect(), k2)
		if err != nil {
			return err
		}
		cubeSum += float64(len(part))
		for name, c := range curves2 {
			runSums[name] += float64(len(cubes.Runs(c, part)))
		}
	}
	tb := stats.NewTable("curve", "mean exhaustive runs (d=2)", "runs/cubes", "vs hilbert")
	for _, name := range []string{"hilbert", "gray", "z", "onion"} {
		tb.AddRow(name, runSums[name]/float64(trials),
			runSums[name]/cubeSum, runSums[name]/runSums["hilbert"])
	}
	fmt.Fprintf(w, "run-merging quality over %d random extremal regions (cubes are curve-independent):\n%s\n", trials, tb)
	fmt.Fprintln(w, "note: at d=2 shell order coincides with Z digit order, so onion == z; they diverge at d>=3")

	// Part 1b: d=3, where the onion reordering actually differs from Z.
	const k3 = 7
	curves3 := map[string]sfc.Curve{
		"z":       sfc.MustZ(3, k3),
		"hilbert": sfc.MustHilbert(3, k3),
		"gray":    sfc.MustGray(3, k3),
		"onion":   sfc.MustOnion(3, k3),
	}
	runSums3 := map[string]float64{}
	var cubeSum3 float64
	for t := 0; t < trials; t++ {
		ext, err := workload.RandomExtremal(rng, 3, k3, 1+rng.Intn(2))
		if err != nil {
			return err
		}
		part, err := cubes.Decompose(ext.Rect(), k3)
		if err != nil {
			return err
		}
		cubeSum3 += float64(len(part))
		for name, c := range curves3 {
			runSums3[name] += float64(len(cubes.Runs(c, part)))
		}
	}
	tb3 := stats.NewTable("curve", "mean exhaustive runs (d=3)", "runs/cubes", "vs hilbert")
	for _, name := range []string{"hilbert", "gray", "z", "onion"} {
		tb3.AddRow(name, runSums3[name]/float64(trials),
			runSums3[name]/cubeSum3, runSums3[name]/runSums3["hilbert"])
	}
	fmt.Fprintf(w, "\nrun-merging quality over %d random extremal regions at d=3:\n%s\n", trials, tb3)

	// Part 2: probe cost — same cube enumeration, different key encodings.
	const d, k = 4, 14
	const eps = 0.2
	queries := 30
	if quick {
		queries = 8
	}
	qs := make([][]uint32, queries)
	for i := range qs {
		q := make([]uint32, d)
		l := uint64(1)<<12 - 1 - uint64(rng.Intn(1024))
		for j := range q {
			q[j] = uint32(uint64(1)<<k - l)
		}
		qs[i] = q
	}
	tb2 := stats.NewTable("curve", "probes/query", "us/query (empty index)", "ns/probe")
	for _, curve := range []string{"z", "hilbert", "gray", "onion"} {
		idx := dominance.MustIndex(dominance.Config{Dims: d, Bits: k, Curve: curve})
		var probes int
		start := time.Now()
		for _, q := range qs {
			_, _, st, err := idx.Query(q, eps)
			if err != nil {
				return err
			}
			probes += st.RunsProbed
		}
		elapsed := time.Since(start)
		tb2.AddRow(curve,
			float64(probes)/float64(queries),
			float64(elapsed.Microseconds())/float64(queries),
			float64(elapsed.Nanoseconds())/float64(probes))
	}
	fmt.Fprintln(w, tb2)
	fmt.Fprintln(w, "paper: Z and Hilbert (and Gray) behave within constant factors of each other [MJFS01];")
	fmt.Fprintln(w, "       Hilbert merges runs best but costs more per key; Z is the cheapest to encode;")
	fmt.Fprintln(w, "       the recursive onion approximation merges barely better than Z on extremal regions")
	fmt.Fprintln(w, "       yet pays the most per key — Hilbert remains the merge-quality choice")
	return nil
}

func keyOf(v uint64) bits.Key { return bits.KeyFromUint64(v) }
