package experiments

import (
	"io"
	"strings"
	"testing"
)

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 13 {
		t.Fatalf("expected 13 experiments, got %d", len(all))
	}
	for i, e := range all {
		if e.ID == "" || e.Title == "" || e.Paper == "" || e.Run == nil {
			t.Fatalf("experiment %d incomplete: %+v", i, e)
		}
		if i > 0 && idOrder(all[i-1].ID) >= idOrder(e.ID) {
			t.Fatalf("experiments out of order at %s", e.ID)
		}
	}
	if _, ok := ByID("E1"); !ok {
		t.Fatal("ByID(E1) missing")
	}
	if _, ok := ByID("E99"); ok {
		t.Fatal("ByID(E99) should miss")
	}
}

// TestAllExperimentsRunQuick executes every experiment with quick
// parameters; each must complete without error and produce a table.
func TestAllExperimentsRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow; skipped with -short")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var sb strings.Builder
			if err := e.Run(&sb, true); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			out := sb.String()
			if !strings.Contains(out, e.ID+":") {
				t.Errorf("%s output missing banner", e.ID)
			}
			if !strings.Contains(out, "---") {
				t.Errorf("%s output missing a table", e.ID)
			}
		})
	}
}

// TestE1ExactFigures pins the exact Figure 2 numbers through the
// experiment path.
func TestE1ExactFigures(t *testing.T) {
	var sb strings.Builder
	e, _ := ByID("E1")
	if err := e.Run(&sb, false); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"514", "385", "0.992"} {
		if !strings.Contains(out, want) {
			t.Errorf("E1 output missing %q:\n%s", want, out)
		}
	}
}

func TestExperimentErrorsPropagate(t *testing.T) {
	// Writing to a failing writer must not panic; experiments report
	// errors through Run's return where they check them.
	e, _ := ByID("E1")
	if err := e.Run(io.Discard, true); err != nil {
		t.Fatal(err)
	}
}
