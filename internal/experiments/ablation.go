package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"sfccover/internal/cubes"
	"sfccover/internal/geom"
	"sfccover/internal/sfc"
	"sfccover/internal/sfcarray"
	"sfccover/internal/stats"
	"sfccover/internal/subscription"
	"sfccover/internal/workload"
)

// runE12 ablates the Section 5 probe order. The paper searches cubes in
// descending volume order ("in the descending order of their volume");
// this experiment runs the identical truncated search with ascending order
// instead and counts probes until the search terminates (first hit, or the
// whole truncated partition on a miss). Both orders search the same cube
// set, so recall is identical — the order buys probes, not correctness.
func runE12(w io.Writer, quick bool) error {
	e, _ := ByID("E12")
	header(w, e)
	const k = 12
	const eps = 0.1
	nPairs := 300
	if quick {
		nPairs = 80
	}
	schema := subscription.MustSchema(k, "price")
	curve := sfc.MustZ(schema.Dims(), k)

	tb := stats.NewTable("slack", "order", "recall", "mean probes (hits)", "mean probes (misses)")
	for _, slack := range []struct {
		name string
		frac float64
	}{{"tight 1%", 0.01}, {"generous 10%", 0.10}} {
		pairs, err := workload.Covers(workload.CoverSpec{
			Schema: schema, N: nPairs, SlackFrac: slack.frac, Seed: 121,
		})
		if err != nil {
			return err
		}
		// Index the parents once per order (fresh array each time so the
		// treap shape is identical).
		for _, order := range []string{"descending (paper)", "ascending"} {
			arr := sfcarray.NewTreap(9)
			for i, p := range pairs {
				arr.Insert(curve.Key(p.Parent.Point()), uint64(i))
			}
			// Interleave with decoy parents far away so misses also occur.
			rng := rand.New(rand.NewSource(5))
			missQs := make([][]uint32, nPairs/3)
			for i := range missQs {
				s := subscription.New(schema)
				lo := uint32(rng.Intn(1 << (k - 2)))
				if err := s.SetRange("price", lo, lo+50); err != nil {
					return err
				}
				missQs[i] = s.Point()
			}

			var hitProbes, missProbes, hits, misses float64
			search := func(q []uint32) (bool, int) {
				region := geom.QueryRegion(q, k)
				target, _, err := cubes.TruncateExtremal(region, eps)
				if err != nil {
					panic(err)
				}
				probes := 0
				found := false
				levels := make([]int, 0, k+1)
				for lvl := k; lvl >= 0; lvl-- {
					levels = append(levels, lvl)
				}
				if order == "ascending" {
					for i, j := 0, len(levels)-1; i < j; i, j = i+1, j-1 {
						levels[i], levels[j] = levels[j], levels[i]
					}
				}
				for _, lvl := range levels {
					if found {
						break
					}
					if err := cubes.EnumLevelVisit(target, lvl, func(corner []uint32, side uint64) bool {
						probes++
						r := sfc.CubeRange(curve, corner, side)
						if _, ok := arr.FirstInRange(r.Lo, r.Hi); ok {
							found = true
							return false
						}
						return true
					}); err != nil {
						panic(err)
					}
				}
				return found, probes
			}
			for _, p := range pairs {
				found, probes := search(p.Child.Point())
				if found {
					hits++
					hitProbes += float64(probes)
				} else {
					misses++
					missProbes += float64(probes)
				}
			}
			for _, q := range missQs {
				found, probes := search(q)
				if found {
					hits++
					hitProbes += float64(probes)
				} else {
					misses++
					missProbes += float64(probes)
				}
			}
			recall := hits / float64(len(pairs)+len(missQs))
			meanHit, meanMiss := 0.0, 0.0
			if hits > 0 {
				meanHit = hitProbes / hits
			}
			if misses > 0 {
				meanMiss = missProbes / misses
			}
			tb.AddRow(slack.name, order, recall, meanHit, meanMiss)
		}
	}
	fmt.Fprintln(w, tb)
	fmt.Fprintln(w, "paper: probing largest cubes first maximizes volume per probe; ascending order")
	fmt.Fprintln(w, "       burns probes on slivers before reaching the bulk (same cubes, same recall)")
	return nil
}
