package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"sfccover/internal/broker"
	"sfccover/internal/core"
	"sfccover/internal/stats"
	"sfccover/internal/subscription"
	"sfccover/internal/workload"
)

// runE13 drives the broker network through sustained subscription churn —
// interleaved subscribe/unsubscribe rounds — and tracks routing-table size
// over time per covering mode. Unsubscription is the stress case for
// covering: every retraction of a forwarded subscription triggers the
// uncover scan that re-forwards what it had been suppressing, so tables
// must neither leak nor lose routability. The experiment ends with a
// delivery-equivalence probe across all modes.
func runE13(w io.Writer, quick bool) error {
	e, _ := ByID("E13")
	header(w, e)
	schema := subscription.MustSchema(8, "topic", "price")
	rounds, subsPerRound, unsubsPerRound := 8, 30, 15
	topo := broker.BalancedTree(15)
	nClients := 12
	if quick {
		rounds, subsPerRound, unsubsPerRound = 4, 15, 7
		topo = broker.BalancedTree(7)
		nClients = 6
	}

	// One pre-generated churn schedule shared by every mode.
	pool, err := workload.Subscriptions(workload.SubSpec{
		Schema: schema, N: rounds * subsPerRound, Dist: workload.DistUniform,
		WidthFrac: 0.3, UnconstrainedProb: 0, Seed: 131,
	})
	if err != nil {
		return err
	}
	events, err := workload.Events(workload.EventSpec{Schema: schema, N: 60, Seed: 132})
	if err != nil {
		return err
	}

	type sample struct{ rows, unsubMsgs int }
	configs := []struct {
		name string
		cfg  broker.Config
	}{
		{"flood", broker.Config{Schema: schema, Mode: core.ModeOff}},
		{"exact", broker.Config{Schema: schema, Mode: core.ModeExact, Strategy: core.StrategyLinear}},
		{"approx 0.3", broker.Config{Schema: schema, Mode: core.ModeApprox, Epsilon: 0.3, MaxCubes: 5000}},
	}
	history := make(map[string][]sample)
	deliveries := make(map[string]int)
	for _, c := range configs {
		n, err := broker.NewNetwork(topo, c.cfg)
		if err != nil {
			return err
		}
		clients := make([]*broker.Client, nClients)
		for i := range clients {
			cl, err := n.AttachClient(i % n.NumBrokers())
			if err != nil {
				return err
			}
			clients[i] = cl
		}
		rng := rand.New(rand.NewSource(133)) // same schedule for every mode
		type liveSub struct {
			client int
			sub    *subscription.Subscription
		}
		var live []liveSub
		next := 0
		for r := 0; r < rounds; r++ {
			for i := 0; i < subsPerRound; i++ {
				cID := rng.Intn(nClients)
				s := pool[next]
				next++
				if err := n.Subscribe(clients[cID].ID, s); err != nil {
					return err
				}
				live = append(live, liveSub{cID, s})
			}
			n.Drain()
			for i := 0; i < unsubsPerRound && len(live) > 0; i++ {
				j := rng.Intn(len(live))
				ls := live[j]
				live = append(live[:j], live[j+1:]...)
				if err := n.Unsubscribe(clients[ls.client].ID, ls.sub); err != nil {
					return err
				}
			}
			n.Drain()
			history[c.name] = append(history[c.name], sample{
				rows: n.TableRows(), unsubMsgs: n.Metrics().UnsubscribeMsgs,
			})
		}
		// Delivery-equivalence probe after all churn.
		for i, ev := range events {
			if err := n.Publish(clients[i%nClients].ID, ev); err != nil {
				return err
			}
		}
		n.Drain()
		m := n.Metrics()
		if m.ProtocolErrors != 0 {
			return fmt.Errorf("E13: %s: %d protocol errors", c.name, m.ProtocolErrors)
		}
		deliveries[c.name] = m.Deliveries
	}

	for _, c := range configs[1:] {
		if deliveries[c.name] != deliveries[configs[0].name] {
			return fmt.Errorf("E13: %s delivered %d events, flood delivered %d — churn broke routing",
				c.name, deliveries[c.name], deliveries[configs[0].name])
		}
	}

	tb := stats.NewTable("round", "flood rows", "exact rows", "approx rows", "exact unsub msgs", "approx unsub msgs")
	for r := 0; r < rounds; r++ {
		tb.AddRow(r+1,
			history["flood"][r].rows,
			history["exact"][r].rows,
			history["approx 0.3"][r].rows,
			history["exact"][r].unsubMsgs,
			history["approx 0.3"][r].unsubMsgs)
	}
	fmt.Fprintln(w, tb)
	fmt.Fprintf(w, "post-churn deliveries identical across modes: %d each\n", deliveries["flood"])
	fmt.Fprintln(w, "paper: covering must survive unsubscription (uncover/re-forward); tables stay ordered")
	fmt.Fprintln(w, "       exact <= approx <= flood throughout the churn, and routing stays correct")
	return nil
}
