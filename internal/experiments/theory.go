package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"sfccover/internal/cubes"
	"sfccover/internal/dominance"
	"sfccover/internal/geom"
	"sfccover/internal/sfc"
	"sfccover/internal/stats"
	"sfccover/internal/workload"
)

// runE1 reproduces Figure 2 exactly: the 256x256 extremal query region is a
// single run on the Z curve while 257x257 shatters into 385 runs, most of
// them covering a vanishing fraction of the region.
func runE1(w io.Writer, _ bool) error {
	e, _ := ByID("E1")
	header(w, e)
	const k = 10
	z := sfc.MustZ(2, k)
	tb := stats.NewTable("query region", "cubes", "runs", "largest-run volume share", "smallest-run volume share")
	for _, side := range []uint64{256, 257} {
		ext := geom.MustExtremal([]uint64{side, side}, k)
		partition, err := cubes.Decompose(ext.Rect(), k)
		if err != nil {
			return err
		}
		runs := cubes.Runs(z, partition)
		cubes.SortByVolumeDesc(partition)
		largest := partition[0].Volume() / ext.Volume()
		smallest := partition[len(partition)-1].Volume() / ext.Volume()
		tb.AddRow(fmt.Sprintf("%dx%d", side, side), len(partition), len(runs), largest, smallest)
	}
	fmt.Fprintln(w, tb)
	fmt.Fprintln(w, "paper: 1 run vs 385 runs; largest run >99%, small runs ~0.0015% each")
	return nil
}

// runE2 reproduces Figure 1: a rectangle that the Hilbert curve covers in 2
// runs needs 3 on the Z curve, plus a whole-universe sweep comparing mean
// run counts per curve.
func runE2(w io.Writer, quick bool) error {
	e, _ := ByID("E2")
	header(w, e)
	const k = 4
	z := sfc.MustZ(2, k)
	h := sfc.MustHilbert(2, k)
	g := sfc.MustGray(2, k)

	// Find the first rectangle (row-major) with Hilbert=2 and Z=3 runs.
	found := false
	var fx0, fy0, fx1, fy1 uint32
	n := uint32(1) << k
scan:
	for x0 := uint32(0); x0 < n; x0++ {
		for y0 := uint32(0); y0 < n; y0++ {
			for x1 := x0; x1 < n; x1++ {
				for y1 := y0; y1 < n; y1++ {
					r := geom.MustRect([]uint32{x0, y0}, []uint32{x1, y1})
					part, err := cubes.Decompose(r, k)
					if err != nil {
						return err
					}
					if len(cubes.Runs(h, part)) == 2 && len(cubes.Runs(z, part)) == 3 {
						fx0, fy0, fx1, fy1 = x0, y0, x1, y1
						found = true
						break scan
					}
				}
			}
		}
	}
	if !found {
		return fmt.Errorf("E2: no Figure-1 witness rectangle found")
	}
	fmt.Fprintf(w, "witness rectangle [%d,%d]x[%d,%d] in a %dx%d universe: hilbert=2 runs, z=3 runs (Figure 1)\n\n",
		fx0, fx1, fy0, fy1, n, n)

	// Sweep: mean runs over random rectangles per curve.
	trials := 2000
	if quick {
		trials = 300
	}
	rng := rand.New(rand.NewSource(2))
	sums := map[string]float64{}
	for t := 0; t < trials; t++ {
		x0, y0 := uint32(rng.Intn(int(n))), uint32(rng.Intn(int(n)))
		x1 := x0 + uint32(rng.Intn(int(n-x0)))
		y1 := y0 + uint32(rng.Intn(int(n-y0)))
		r := geom.MustRect([]uint32{x0, y0}, []uint32{x1, y1})
		part, err := cubes.Decompose(r, k)
		if err != nil {
			return err
		}
		for _, c := range []sfc.Curve{z, h, g} {
			sums[c.Name()] += float64(len(cubes.Runs(c, part)))
		}
	}
	tb := stats.NewTable("curve", "mean runs per random rectangle", "ratio vs hilbert")
	for _, name := range []string{"hilbert", "z", "gray"} {
		tb.AddRow(name, sums[name]/float64(trials), sums[name]/sums["hilbert"])
	}
	fmt.Fprintln(w, tb)
	fmt.Fprintln(w, "paper: curves based on recursive partitioning stay within small constant factors [MJFS01]")
	return nil
}

// runE3 validates Theorem 3.1: sweep the side length of an alpha=0 query
// region over six octaves; the approximate cost must stay flat (growth
// exponent ~0) and below the Lemma 3.7 bound, while the exhaustive
// partition grows as l^(d-1).
func runE3(w io.Writer, quick bool) error {
	e, _ := ByID("E3")
	header(w, e)
	const d, k = 4, 16
	idx := dominance.MustIndex(dominance.Config{Dims: d, Bits: k})
	epsilons := []float64{0.5, 0.3, 0.2, 0.1}
	if quick {
		epsilons = []float64{0.5, 0.3}
	}
	exps := []uint{8, 10, 12, 14}

	tb := stats.NewTable("eps", "m", "bound m*(2^m-1)^(d-1)", "side 2^8-1", "side 2^10-1", "side 2^12-1", "side 2^14-1", "growth exp")
	for _, eps := range epsilons {
		m, err := cubes.ChooseM(eps, d)
		if err != nil {
			return err
		}
		bound := cubes.UpperBoundCubes(m, 0, d)
		row := []interface{}{eps, m, bound}
		var ls, cs []float64
		for _, ex := range exps {
			l := uint64(1)<<ex - 1
			q := make([]uint32, d)
			for i := range q {
				q[i] = uint32(uint64(1)<<k - l)
			}
			_, _, st, err := idx.Query(q, eps)
			if err != nil {
				return err
			}
			if float64(st.CubesGenerated) > bound {
				return fmt.Errorf("E3: measured %d cubes exceeds bound %v (eps=%v, l=%d)", st.CubesGenerated, bound, eps, l)
			}
			row = append(row, st.CubesGenerated)
			ls = append(ls, float64(l))
			cs = append(cs, float64(st.CubesGenerated))
		}
		row = append(row, stats.GrowthExponent(ls, cs))
		tb.AddRow(row...)
	}
	fmt.Fprintln(w, tb)

	// The exhaustive contrast on the same regions, at a size where full
	// decomposition is feasible.
	tb2 := stats.NewTable("side (d=2, k=16)", "exhaustive cubes", "exhaustive runs")
	var ls, rs []float64
	for _, ex := range []uint{6, 8, 10, 12} {
		l := uint64(1)<<ex - 1
		ext := geom.MustExtremal([]uint64{l, l}, k)
		part, err := cubes.Decompose(ext.Rect(), k)
		if err != nil {
			return err
		}
		runs := cubes.Runs(sfc.MustZ(2, k), part)
		tb2.AddRow(fmt.Sprintf("2^%d-1", ex), len(part), len(runs))
		ls = append(ls, float64(l))
		rs = append(rs, float64(len(runs)))
	}
	fmt.Fprintln(w, tb2)
	fmt.Fprintf(w, "exhaustive growth exponent vs side length: %.2f (theory: d-1 = 1 for d=2)\n",
		stats.GrowthExponent(ls, rs))
	fmt.Fprintln(w, "paper: approximate cost independent of side length; exhaustive grows as l^(d-1)")
	return nil
}

// runE4 measures the Theorem 4.1 adversarial family: runs of an exhaustive
// search grow as (2^(alpha-1)*l_d)^(d-1), while the approximate search on
// the same regions stays cheap.
func runE4(w io.Writer, quick bool) error {
	e, _ := ByID("E4")
	header(w, e)
	const k = 16
	gammas := []int{3, 4, 5, 6, 7, 8, 9}
	if quick {
		gammas = []int{3, 4, 5, 6}
	}
	for _, cfg := range []struct{ d, alpha int }{{2, 1}, {2, 3}, {3, 1}} {
		if cfg.d == 3 && quick {
			continue
		}
		idx := dominance.MustIndex(dominance.Config{Dims: cfg.d, Bits: k})
		z := sfc.MustZ(cfg.d, k)
		tb := stats.NewTable("gamma", "l_d = 2^gamma-1", "exhaustive runs", "bound (2^(a-1)*l_d)^(d-1)", "approx cubes (eps=0.2)")
		var ls, rs []float64
		gs := gammas
		if cfg.d == 3 {
			gs = gammas[:4] // keep 3-d partitions tractable
		}
		for _, gamma := range gs {
			ext, err := workload.AdversarialExtremal(cfg.d, k, cfg.alpha, gamma)
			if err != nil {
				return err
			}
			part, err := cubes.Decompose(ext.Rect(), k)
			if err != nil {
				return err
			}
			runs := cubes.Runs(z, part)
			bound := cubes.LowerBoundRuns(cfg.alpha, ext.Len[cfg.d-1], cfg.d)
			q := make([]uint32, cfg.d)
			for i := range q {
				q[i] = uint32(uint64(1)<<k - ext.Len[i])
			}
			_, _, st, err := idx.Query(q, 0.2)
			if err != nil {
				return err
			}
			if float64(len(runs)) < bound {
				return fmt.Errorf("E4: runs %d below the proven lower bound %v", len(runs), bound)
			}
			tb.AddRow(gamma, ext.Len[cfg.d-1], len(runs), bound, st.CubesGenerated)
			ls = append(ls, float64(ext.Len[cfg.d-1]))
			rs = append(rs, float64(len(runs)))
		}
		fmt.Fprintf(w, "d=%d, alpha=%d:\n%s", cfg.d, cfg.alpha, tb.String())
		fmt.Fprintf(w, "growth exponent of runs vs l_d: %.2f (theory: d-1 = %d)\n\n",
			stats.GrowthExponent(ls, rs), cfg.d-1)
	}
	fmt.Fprintln(w, "paper: exhaustive cost is Omega((2^(alpha-1)*l_d)^(d-1)); approximate cost does not grow with l_d")
	return nil
}

// runE5 sweeps the aspect ratio: approximate cost should pick up the
// 2^(alpha*(d-1)) factor of Theorem 3.1.
func runE5(w io.Writer, quick bool) error {
	e, _ := ByID("E5")
	header(w, e)
	const d, k = 3, 16
	const eps = 0.3
	samples := 5
	alphas := []int{0, 1, 2, 3, 4}
	if quick {
		samples = 3
		alphas = []int{0, 1, 2, 3}
	}
	idx := dominance.MustIndex(dominance.Config{Dims: d, Bits: k})
	rng := rand.New(rand.NewSource(5))
	tb := stats.NewTable("alpha", "mean approx cubes", "vs alpha=0", "2^(alpha*(d-1))")
	var base float64
	var as, cs []float64
	for _, alpha := range alphas {
		var total float64
		for s := 0; s < samples; s++ {
			ext, err := workload.RandomExtremal(rng, d, k, alpha)
			if err != nil {
				return err
			}
			q := make([]uint32, d)
			for i := range q {
				q[i] = uint32(uint64(1)<<k - ext.Len[i])
			}
			_, _, st, err := idx.Query(q, eps)
			if err != nil {
				return err
			}
			total += float64(st.CubesGenerated)
		}
		mean := total / float64(samples)
		if alpha == 0 {
			base = mean
		}
		tb.AddRow(alpha, mean, mean/base, math.Pow(2, float64(alpha*(d-1))))
		as = append(as, math.Pow(2, float64(alpha)))
		cs = append(cs, mean)
	}
	fmt.Fprintln(w, tb)
	fmt.Fprintf(w, "growth exponent of cost vs 2^alpha: %.2f (theory: up to d-1 = %d)\n", stats.GrowthExponent(as, cs), d-1)
	fmt.Fprintln(w, "paper: small aspect ratio is the friendly regime; cost picks up 2^(alpha*(d-1)) otherwise")
	return nil
}

// runE6 sweeps the dimension at fixed eps and alpha=0.
func runE6(w io.Writer, quick bool) error {
	e, _ := ByID("E6")
	header(w, e)
	const k = 14
	const eps = 0.5
	dims := []int{2, 3, 4, 5, 6}
	if quick {
		dims = []int{2, 3, 4}
	}
	tb := stats.NewTable("d", "beta=d/2", "m", "measured cubes", "bound m*(2^m-1)^(d-1)")
	for _, d := range dims {
		idx := dominance.MustIndex(dominance.Config{Dims: d, Bits: k})
		m, err := cubes.ChooseM(eps, d)
		if err != nil {
			return err
		}
		l := uint64(1)<<12 - 1
		q := make([]uint32, d)
		for i := range q {
			q[i] = uint32(uint64(1)<<k - l)
		}
		_, _, st, err := idx.Query(q, eps)
		if err != nil {
			return err
		}
		bound := cubes.UpperBoundCubes(m, 0, d)
		if float64(st.CubesGenerated) > bound {
			return fmt.Errorf("E6: measured %d exceeds bound %v at d=%d", st.CubesGenerated, bound, d)
		}
		tb.AddRow(d, float64(d)/2, m, st.CubesGenerated, bound)
	}
	fmt.Fprintln(w, tb)
	fmt.Fprintln(w, "paper: the (2d/eps)^(d-1) dependence makes small beta the practical regime")
	return nil
}
