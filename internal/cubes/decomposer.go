package cubes

import (
	"fmt"

	"sfccover/internal/geom"
	"sfccover/internal/sfc"
)

// Decomposer is reusable scratch for the greedy standard-cube
// decompositions: cube corners live in one flat backing array and the
// recursion stack, refinement frontier and run buffers are kept between
// calls, so a worker that owns a Decomposer performs decompositions with
// zero allocations in steady state.
//
// The cubes (and runs) returned by its methods alias the Decomposer's
// arenas and are valid only until the next call; callers that retain
// them must copy. A Decomposer is not safe for concurrent use — give
// each worker its own.
type Decomposer struct {
	arena    []uint32  // flat corner storage, one d-coordinate group per cube
	stack    []cubeRef // DFS stack (Decompose)
	frontier []cubeRef // BFS frontier (DecomposeBudget)
	next     []cubeRef // BFS next level
	refs     []cubeRef // emitted cubes as arena references
	out      []Cube    // materialized headers over the arena
	ranges   []sfc.KeyRange
}

// cubeRef names a standard cube by its corner's arena offset and side:
// offsets stay valid across arena growth where slices would not.
type cubeRef struct {
	off  int
	side uint64
}

// alloc reserves one d-coordinate corner group and returns its offset.
func (dc *Decomposer) alloc(d int) int {
	off := len(dc.arena)
	for i := 0; i < d; i++ {
		dc.arena = append(dc.arena, 0)
	}
	return off
}

// materialize builds the []Cube view of the emitted refs over the arena.
func (dc *Decomposer) materialize(d int) []Cube {
	if cap(dc.out) < len(dc.refs) {
		dc.out = make([]Cube, len(dc.refs))
	}
	dc.out = dc.out[:len(dc.refs)]
	for i, ref := range dc.refs {
		dc.out[i] = Cube{Corner: dc.arena[ref.off : ref.off+d : ref.off+d], Side: ref.side}
	}
	return dc.out
}

func checkUniverse(r geom.Rect, k int) error {
	if k < 1 || k > 32 {
		return fmt.Errorf("cubes: universe bits k=%d out of range [1,32]", k)
	}
	max := uint64(1) << uint(k)
	for i := 0; i < r.Dims(); i++ {
		if uint64(r.Hi[i]) >= max {
			return fmt.Errorf("cubes: rectangle exceeds universe on dimension %d: hi=%d >= 2^%d", i, r.Hi[i], k)
		}
	}
	return nil
}

// Decompose is the scratch-buffer form of the package-level Decompose:
// the same greedy minimal partition (Lemma 3.3) in the same
// recursive-partition order, emitted into the Decomposer's arenas.
//
//sfc:hotpath
func (dc *Decomposer) Decompose(r geom.Rect, k int) ([]Cube, error) {
	if err := checkUniverse(r, k); err != nil {
		return nil, err
	}
	d := r.Dims()
	dc.arena = dc.arena[:0]
	dc.refs = dc.refs[:0]
	root := dc.alloc(d)
	dc.stack = append(dc.stack[:0], cubeRef{root, uint64(1) << uint(k)})
	for len(dc.stack) > 0 {
		top := dc.stack[len(dc.stack)-1]
		dc.stack = dc.stack[:len(dc.stack)-1]
		intersects, inside := cubeRelation(r, dc.arena[top.off:top.off+d], top.side)
		if !intersects {
			continue
		}
		if inside {
			dc.refs = append(dc.refs, top)
			continue
		}
		// side == 1 cannot reach here: a unit cube intersecting r is inside it.
		half := top.side / 2
		// Children pushed in reverse mask order pop in ascending order,
		// reproducing the recursive-partition order exactly.
		for mask := 1<<uint(d) - 1; mask >= 0; mask-- {
			off := dc.alloc(d)
			parent := dc.arena[top.off : top.off+d] // re-slice: alloc may have grown the arena
			child := dc.arena[off : off+d]
			for i := 0; i < d; i++ {
				child[i] = parent[i]
				if mask>>uint(i)&1 == 1 {
					child[i] = uint32(uint64(parent[i]) + half)
				}
			}
			dc.stack = append(dc.stack, cubeRef{off, half})
		}
	}
	return dc.materialize(d), nil
}

// DecomposeBudget is the scratch-buffer form of the package-level
// DecomposeBudget: identical stopping semantics, cubes emitted into the
// Decomposer's arenas.
//
//sfc:hotpath
func (dc *Decomposer) DecomposeBudget(r geom.Rect, k int, targetVolume float64, maxCubes int) (BudgetResult, error) {
	if err := checkUniverse(r, k); err != nil {
		return BudgetResult{}, err
	}
	d := r.Dims()
	dc.arena = dc.arena[:0]
	dc.refs = dc.refs[:0]
	root := dc.alloc(d)
	dc.frontier = append(dc.frontier[:0], cubeRef{root, uint64(1) << uint(k)})

	res := BudgetResult{LowestLevelComplete: true}
	level := k
	for side := uint64(1) << uint(k); side >= 1 && len(dc.frontier) > 0; side /= 2 {
		dc.next = dc.next[:0]
		emittedThisLevel := false
		for _, ref := range dc.frontier {
			intersects, inside := cubeRelation(r, dc.arena[ref.off:ref.off+d], ref.side)
			if !intersects {
				continue
			}
			if inside {
				dc.refs = append(dc.refs, ref)
				vol := 1.0
				for i := 0; i < d; i++ {
					vol *= float64(ref.side)
				}
				res.Volume += vol
				if !emittedThisLevel {
					emittedThisLevel = true
					res.LowestLevel = level
				}
				if maxCubes > 0 && len(dc.refs) >= maxCubes {
					res.LowestLevelComplete = false
					res.Cubes = dc.materialize(d)
					return res, nil
				}
				continue
			}
			half := ref.side / 2
			for mask := 0; mask < 1<<uint(d); mask++ {
				off := dc.alloc(d)
				parent := dc.arena[ref.off : ref.off+d]
				child := dc.arena[off : off+d]
				for i := 0; i < d; i++ {
					child[i] = parent[i]
					if mask>>uint(i)&1 == 1 {
						child[i] = uint32(uint64(parent[i]) + half)
					}
				}
				dc.next = append(dc.next, cubeRef{off, half})
			}
		}
		if targetVolume > 0 && res.Volume >= targetVolume {
			res.Cubes = dc.materialize(d)
			return res, nil
		}
		dc.frontier, dc.next = dc.next, dc.frontier
		level--
	}
	res.Complete = true
	res.Cubes = dc.materialize(d)
	return res, nil
}

// Runs is the scratch-buffer form of the package-level Runs: cube key
// ranges are collected into a reused buffer and merged in place. The
// returned runs alias the Decomposer and are valid until the next call.
//
//sfc:hotpath
func (dc *Decomposer) Runs(c sfc.Curve, cs []Cube) []sfc.KeyRange {
	if cap(dc.ranges) < len(cs) {
		dc.ranges = make([]sfc.KeyRange, len(cs))
	}
	dc.ranges = dc.ranges[:len(cs)]
	for i, cube := range cs {
		dc.ranges[i] = sfc.CubeRange(c, cube.Corner, cube.Side)
	}
	return sfc.MergeRangesInPlace(dc.ranges)
}

// cloneCubes deep-copies cubes out of a Decomposer's arena, giving each
// its own corner slice (the ownership contract of the package-level
// entry points).
func cloneCubes(cs []Cube) []Cube {
	if len(cs) == 0 {
		return nil
	}
	out := make([]Cube, len(cs))
	for i, c := range cs {
		out[i] = Cube{Corner: append([]uint32(nil), c.Corner...), Side: c.Side}
	}
	return out
}
