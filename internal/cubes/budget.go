package cubes

import (
	"fmt"

	"sfccover/internal/geom"
)

// BudgetResult is the outcome of a budgeted decomposition.
type BudgetResult struct {
	// Cubes is the emitted prefix of the greedy partition in descending
	// side order (the probe order of the Section 5 algorithm).
	Cubes []Cube
	// Volume is the total volume of the emitted cubes.
	Volume float64
	// Complete reports whether the emitted cubes are the entire partition
	// of the rectangle (no stopping condition fired).
	Complete bool
	// LowestLevel is the level (log2 side) of the smallest cubes emitted.
	// Zero-valued when no cubes were emitted.
	LowestLevel int
	// LowestLevelComplete reports whether every partition cube at
	// LowestLevel was emitted. The volume target only stops at level
	// boundaries, so it always leaves this true; only the hard maxCubes
	// cap can interrupt a level midway.
	LowestLevelComplete bool
}

// DecomposeBudget produces the greedy standard-cube partition of r in
// descending cube-size order — largest cubes first, exactly the order the
// Section 5 search probes — stopping early once the accumulated volume
// reaches targetVolume (<= 0 means no volume target) or once maxCubes cubes
// have been emitted (0 means unlimited).
//
// It runs a breadth-first refinement: the frontier at each level holds the
// standard cubes of that size that straddle r's boundary; contained cubes
// are emitted, disjoint ones dropped, straddling ones split. Because all
// cubes of side 2^(j+1) are emitted before any of side 2^j, the emitted
// prefix is always the maximum-volume subset of the partition for its
// cardinality, which is what makes early stopping sound: the skipped
// suffix has the smallest possible volume.
//
// The volume target is only checked at level boundaries, so when it fires
// the emitted set is all partition cubes of side >= the stop level — for an
// extremal rectangle R(ℓ) that is exactly the extremal rectangle R(S_j(ℓ))
// of Lemma 3.4, which gives the searched region a clean closed form. The
// maxCubes cap, in contrast, is a hard resource limit and may cut a level
// midway (reported via LowestLevelComplete).
func DecomposeBudget(r geom.Rect, k int, targetVolume float64, maxCubes int) (BudgetResult, error) {
	d := r.Dims()
	if k < 1 || k > 32 {
		return BudgetResult{}, fmt.Errorf("cubes: universe bits k=%d out of range [1,32]", k)
	}
	max := uint64(1) << uint(k)
	for i := 0; i < d; i++ {
		if uint64(r.Hi[i]) >= max {
			return BudgetResult{}, fmt.Errorf("cubes: rectangle exceeds universe on dimension %d", i)
		}
	}

	res := BudgetResult{LowestLevelComplete: true}
	frontier := []Cube{{Corner: make([]uint32, d), Side: max}}
	level := k
	for side := max; side >= 1 && len(frontier) > 0; side /= 2 {
		var next []Cube
		emittedThisLevel := false
		for _, cube := range frontier {
			cr := cube.Rect()
			if !r.Intersects(cr) {
				continue
			}
			if r.ContainsRect(cr) {
				res.Cubes = append(res.Cubes, cube)
				res.Volume += cube.Volume()
				if !emittedThisLevel {
					emittedThisLevel = true
					res.LowestLevel = level
				}
				if maxCubes > 0 && len(res.Cubes) >= maxCubes {
					res.LowestLevelComplete = false
					return res, nil
				}
				continue
			}
			half := cube.Side / 2
			for mask := 0; mask < 1<<uint(d); mask++ {
				child := make([]uint32, d)
				for i := 0; i < d; i++ {
					child[i] = cube.Corner[i]
					if mask>>uint(i)&1 == 1 {
						child[i] = uint32(uint64(cube.Corner[i]) + half)
					}
				}
				next = append(next, Cube{Corner: child, Side: half})
			}
		}
		if targetVolume > 0 && res.Volume >= targetVolume {
			return res, nil
		}
		frontier = next
		level--
	}
	res.Complete = true
	return res, nil
}
