package cubes

import (
	"sfccover/internal/geom"
)

// BudgetResult is the outcome of a budgeted decomposition.
type BudgetResult struct {
	// Cubes is the emitted prefix of the greedy partition in descending
	// side order (the probe order of the Section 5 algorithm).
	Cubes []Cube
	// Volume is the total volume of the emitted cubes.
	Volume float64
	// Complete reports whether the emitted cubes are the entire partition
	// of the rectangle (no stopping condition fired).
	Complete bool
	// LowestLevel is the level (log2 side) of the smallest cubes emitted.
	// Zero-valued when no cubes were emitted.
	LowestLevel int
	// LowestLevelComplete reports whether every partition cube at
	// LowestLevel was emitted. The volume target only stops at level
	// boundaries, so it always leaves this true; only the hard maxCubes
	// cap can interrupt a level midway.
	LowestLevelComplete bool
}

// DecomposeBudget produces the greedy standard-cube partition of r in
// descending cube-size order — largest cubes first, exactly the order the
// Section 5 search probes — stopping early once the accumulated volume
// reaches targetVolume (<= 0 means no volume target) or once maxCubes cubes
// have been emitted (0 means unlimited).
//
// It runs a breadth-first refinement: the frontier at each level holds the
// standard cubes of that size that straddle r's boundary; contained cubes
// are emitted, disjoint ones dropped, straddling ones split. Because all
// cubes of side 2^(j+1) are emitted before any of side 2^j, the emitted
// prefix is always the maximum-volume subset of the partition for its
// cardinality, which is what makes early stopping sound: the skipped
// suffix has the smallest possible volume.
//
// The volume target is only checked at level boundaries, so when it fires
// the emitted set is all partition cubes of side >= the stop level — for an
// extremal rectangle R(ℓ) that is exactly the extremal rectangle R(S_j(ℓ))
// of Lemma 3.4, which gives the searched region a clean closed form. The
// maxCubes cap, in contrast, is a hard resource limit and may cut a level
// midway (reported via LowestLevelComplete).
func DecomposeBudget(r geom.Rect, k int, targetVolume float64, maxCubes int) (BudgetResult, error) {
	var dc Decomposer
	res, err := dc.DecomposeBudget(r, k, targetVolume, maxCubes)
	if err != nil {
		return BudgetResult{}, err
	}
	res.Cubes = cloneCubes(res.Cubes)
	return res, nil
}
