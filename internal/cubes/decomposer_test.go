package cubes

import (
	"math/rand"
	"testing"

	"sfccover/internal/geom"
	"sfccover/internal/sfc"
)

func randomRect(rng *rand.Rand, d, k int) geom.Rect {
	max := uint32(1)<<uint(k) - 1
	lo := make([]uint32, d)
	hi := make([]uint32, d)
	for i := 0; i < d; i++ {
		a, b := rng.Uint32()&max, rng.Uint32()&max
		if a > b {
			a, b = b, a
		}
		lo[i], hi[i] = a, b
	}
	return geom.MustRect(lo, hi)
}

func sameCubes(t *testing.T, label string, got, want []Cube) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: cube count %d, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i].Side != want[i].Side {
			t.Fatalf("%s: cube %d side %d, want %d", label, i, got[i].Side, want[i].Side)
		}
		for j := range got[i].Corner {
			if got[i].Corner[j] != want[i].Corner[j] {
				t.Fatalf("%s: cube %d corner %v, want %v", label, i, got[i].Corner, want[i].Corner)
			}
		}
	}
}

// TestDecomposerMatchesDecompose checks the arena-backed decomposer
// against the package-level entry point — same cubes, same order —
// while reusing one Decomposer across many rectangles.
func TestDecomposerMatchesDecompose(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var dc Decomposer
	for trial := 0; trial < 60; trial++ {
		d := 1 + rng.Intn(3)
		k := 2 + rng.Intn(5)
		r := randomRect(rng, d, k)
		want, err := Decompose(r, k)
		if err != nil {
			t.Fatal(err)
		}
		got, err := dc.Decompose(r, k)
		if err != nil {
			t.Fatal(err)
		}
		sameCubes(t, "decompose", got, want)
		curve := sfc.MustZ(d, k)
		wantRuns := Runs(curve, want)
		gotRuns := dc.Runs(curve, got)
		if len(gotRuns) != len(wantRuns) {
			t.Fatalf("runs: %d, want %d", len(gotRuns), len(wantRuns))
		}
		for i := range gotRuns {
			if gotRuns[i] != wantRuns[i] {
				t.Fatalf("run %d: %v, want %v", i, gotRuns[i], wantRuns[i])
			}
		}
	}
}

// TestDecomposerBudgetMatches checks the budgeted form under every
// stopping condition: no stop, volume target, hard cap.
func TestDecomposerBudgetMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var dc Decomposer
	for trial := 0; trial < 60; trial++ {
		d := 1 + rng.Intn(3)
		k := 2 + rng.Intn(5)
		r := randomRect(rng, d, k)
		target := 0.0
		if trial%3 == 1 {
			target = (1 - 0.3) * r.Volume()
		}
		maxCubes := 0
		if trial%3 == 2 {
			maxCubes = 1 + rng.Intn(20)
		}
		want, err := DecomposeBudget(r, k, target, maxCubes)
		if err != nil {
			t.Fatal(err)
		}
		got, err := dc.DecomposeBudget(r, k, target, maxCubes)
		if err != nil {
			t.Fatal(err)
		}
		sameCubes(t, "budget", got.Cubes, want.Cubes)
		if got.Volume != want.Volume || got.Complete != want.Complete ||
			got.LowestLevel != want.LowestLevel || got.LowestLevelComplete != want.LowestLevelComplete {
			t.Fatalf("budget result %+v, want %+v", got, want)
		}
	}
}

// TestDecomposerSteadyStateZeroAlloc pins the tentpole property: after
// warmup, decompose + runs on the same worker allocate nothing.
func TestDecomposerSteadyStateZeroAlloc(t *testing.T) {
	var dc Decomposer
	r := geom.MustRect([]uint32{3, 1}, []uint32{13, 14})
	curve := sfc.MustZ(2, 4)
	work := func() {
		cs, err := dc.Decompose(r, 4)
		if err != nil {
			t.Fatal(err)
		}
		dc.Runs(curve, cs)
		if _, err := dc.DecomposeBudget(r, 4, 0.7*r.Volume(), 0); err != nil {
			t.Fatal(err)
		}
	}
	work() // warm the arenas
	if allocs := testing.AllocsPerRun(100, work); allocs != 0 {
		t.Fatalf("steady-state decomposition allocates %v per run, want 0", allocs)
	}
}

// TestLevelEnumSteadyStateZeroAlloc pins the same property for the
// Appendix-A enumerator scratch.
func TestLevelEnumSteadyStateZeroAlloc(t *testing.T) {
	var le LevelEnum
	e := geom.MustExtremal([]uint64{13, 6}, 4)
	n := 0
	visit := func(corner []uint32, side uint64) bool { n++; return true }
	work := func() {
		for level := e.K; level >= 0; level-- {
			if err := le.Visit(e, level, visit); err != nil {
				t.Fatal(err)
			}
		}
	}
	work()
	if allocs := testing.AllocsPerRun(100, work); allocs != 0 {
		t.Fatalf("steady-state enumeration allocates %v per run, want 0", allocs)
	}
}

// TestRectInto checks the scratch form against Rect.
func TestRectInto(t *testing.T) {
	c := Cube{Corner: []uint32{4, 8, 0}, Side: 4}
	lo := make([]uint32, 3)
	hi := make([]uint32, 3)
	got := c.RectInto(lo, hi)
	want := c.Rect()
	if !got.Equal(want) {
		t.Fatalf("RectInto = %v, want %v", got, want)
	}
	if &got.Lo[0] != &lo[0] || &got.Hi[0] != &hi[0] {
		t.Fatal("RectInto should alias the caller's scratch")
	}
}
