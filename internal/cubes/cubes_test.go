package cubes

import (
	"math/big"
	"math/rand"
	"testing"

	"sfccover/internal/geom"
	"sfccover/internal/sfc"
)

func TestDecomposeValidation(t *testing.T) {
	r := geom.MustRect([]uint32{0, 0}, []uint32{20, 20})
	if _, err := Decompose(r, 4); err == nil {
		t.Error("rect beyond universe must fail")
	}
	if _, err := Decompose(r, 0); err == nil {
		t.Error("k=0 must fail")
	}
	if _, err := Decompose(r, 33); err == nil {
		t.Error("k=33 must fail")
	}
}

// checkPartition verifies that the cubes exactly tile the rectangle.
func checkPartition(t *testing.T, r geom.Rect, cs []Cube, k int) {
	t.Helper()
	covered := make(map[[3]uint32]int)
	d := r.Dims()
	for _, c := range cs {
		if c.Side == 0 || c.Side&(c.Side-1) != 0 {
			t.Fatalf("side %d not a power of two", c.Side)
		}
		for i, lo := range c.Corner {
			if uint64(lo)%c.Side != 0 {
				t.Fatalf("cube %v not aligned on dimension %d", c, i)
			}
		}
		if !r.ContainsRect(c.Rect()) {
			t.Fatalf("cube %v leaks outside %v", c, r)
		}
		var cell [3]uint32
		var rec func(dim int)
		rec = func(dim int) {
			if dim == d {
				covered[cell]++
				return
			}
			for v := uint64(0); v < c.Side; v++ {
				cell[dim] = uint32(uint64(c.Corner[dim]) + v)
				rec(dim + 1)
			}
		}
		rec(0)
	}
	want := int(r.Volume())
	if len(covered) != want {
		t.Fatalf("covered %d cells, want %d", len(covered), want)
	}
	for cell, n := range covered {
		if n != 1 {
			t.Fatalf("cell %v covered %d times", cell, n)
		}
		if !r.Contains(cell[:d]) {
			t.Fatalf("cell %v outside rect", cell)
		}
	}
}

func TestDecomposePartitionsRandomRects(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 60; trial++ {
		d := 2 + rng.Intn(2) // 2 or 3 dims
		k := 3
		if d == 2 {
			k = 4
		}
		n := uint32(1) << uint(k)
		lo := make([]uint32, d)
		hi := make([]uint32, d)
		for i := 0; i < d; i++ {
			a, b := uint32(rng.Intn(int(n))), uint32(rng.Intn(int(n)))
			if a > b {
				a, b = b, a
			}
			lo[i], hi[i] = a, b
		}
		r := geom.MustRect(lo, hi)
		cs, err := Decompose(r, k)
		if err != nil {
			t.Fatal(err)
		}
		checkPartition(t, r, cs, k)
	}
}

func TestDecomposeWholeUniverseIsOneCube(t *testing.T) {
	r := geom.MustRect([]uint32{0, 0}, []uint32{15, 15})
	cs, err := Decompose(r, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 1 || cs[0].Side != 16 {
		t.Fatalf("whole universe should be a single cube, got %v", cs)
	}
	if cs[0].Level() != 4 {
		t.Errorf("Level = %d, want 4", cs[0].Level())
	}
	if cs[0].Volume() != 256 {
		t.Errorf("Volume = %v, want 256", cs[0].Volume())
	}
}

func TestDecomposeMatchesCensusOnExtremalRects(t *testing.T) {
	// Lemma 3.4/3.5: the closed-form census equals the greedy partition's
	// per-level counts for extremal rectangles.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 80; trial++ {
		d := 2 + rng.Intn(2)
		k := 4
		if d == 3 {
			k = 3
		}
		lens := make([]uint64, d)
		for i := range lens {
			lens[i] = uint64(rng.Intn(1<<uint(k))) + 1
		}
		e := geom.MustExtremal(lens, k)
		cs, err := Decompose(e.Rect(), k)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]int64, k+1)
		for _, c := range cs {
			got[c.Level()]++
		}
		census := LevelCensus(e)
		for lvl := 0; lvl <= k; lvl++ {
			if census[lvl].Cmp(big.NewInt(got[lvl])) != 0 {
				t.Fatalf("lens=%v k=%d level %d: census %v, greedy %d", lens, k, lvl, census[lvl], got[lvl])
			}
		}
	}
}

func TestEnumMatchesDecomposeOnExtremalRects(t *testing.T) {
	// The Appendix-A enumeration must produce exactly the greedy partition.
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 80; trial++ {
		d := 2 + rng.Intn(2)
		k := 4
		if d == 3 {
			k = 3
		}
		lens := make([]uint64, d)
		for i := range lens {
			lens[i] = uint64(rng.Intn(1<<uint(k))) + 1
		}
		e := geom.MustExtremal(lens, k)
		want, err := Decompose(e.Rect(), k)
		if err != nil {
			t.Fatal(err)
		}
		got, err := EnumAllCubes(e)
		if err != nil {
			t.Fatal(err)
		}
		type sig struct {
			c0, c1, c2 uint32
			side       uint64
		}
		mk := func(c Cube) sig {
			s := sig{side: c.Side, c0: c.Corner[0], c1: c.Corner[1]}
			if len(c.Corner) > 2 {
				s.c2 = c.Corner[2]
			}
			return s
		}
		wantSet := make(map[sig]int)
		for _, c := range want {
			wantSet[mk(c)]++
		}
		for _, c := range got {
			wantSet[mk(c)]--
		}
		for s, n := range wantSet {
			if n != 0 {
				t.Fatalf("lens=%v k=%d: cube multiset mismatch at %+v (delta %d); greedy %d enum %d",
					lens, k, s, n, len(want), len(got))
			}
		}
	}
}

func TestEnumFullUniverse(t *testing.T) {
	// ℓ_j = 2^k on every dimension: one cube, the universe itself.
	e := geom.MustExtremal([]uint64{16, 16}, 4)
	cs, err := EnumAllCubes(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 1 || cs[0].Side != 16 || cs[0].Corner[0] != 0 || cs[0].Corner[1] != 0 {
		t.Fatalf("full universe enum = %v", cs)
	}
}

func TestEnumLevelCubesRejectsBadLevel(t *testing.T) {
	e := geom.MustExtremal([]uint64{3, 3}, 4)
	if _, err := EnumLevelCubes(e, -1); err == nil {
		t.Error("negative level must fail")
	}
	if _, err := EnumLevelCubes(e, 5); err == nil {
		t.Error("level > k must fail")
	}
}

func TestFigure2RunCounts(t *testing.T) {
	// Figure 2: in a 2-d Z-indexed universe, the 256x256 extremal query
	// region is a single run while the 257x257 one needs 385 runs, with
	// the largest run covering more than 99% of the region.
	z := sfc.MustZ(2, 10)

	small := geom.MustExtremal([]uint64{256, 256}, 10)
	cs, err := Decompose(small.Rect(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 1 {
		t.Fatalf("256x256: %d cubes, want 1", len(cs))
	}
	if runs := Runs(z, cs); len(runs) != 1 {
		t.Fatalf("256x256: %d runs, want 1", len(runs))
	}

	big257 := geom.MustExtremal([]uint64{257, 257}, 10)
	cs257, err := Decompose(big257.Rect(), 10)
	if err != nil {
		t.Fatal(err)
	}
	// Census: one 256-cube + 513 unit cells = 514 cubes.
	if len(cs257) != 514 {
		t.Fatalf("257x257: %d cubes, want 514", len(cs257))
	}
	runs := Runs(z, cs257)
	if len(runs) != 385 {
		t.Fatalf("257x257: %d runs, want 385 (Figure 2)", len(runs))
	}
	// Largest cube covers 256^2/257^2 > 99% of the region.
	SortByVolumeDesc(cs257)
	if frac := cs257[0].Volume() / big257.Volume(); frac <= 0.99 {
		t.Fatalf("largest cube covers %.4f, want > 0.99", frac)
	}
}

func TestRunsNeverExceedCubes(t *testing.T) {
	// Lemma 3.1: runs(T) <= cubes(T), for every curve.
	rng := rand.New(rand.NewSource(23))
	curves := []sfc.Curve{sfc.MustZ(2, 6), sfc.MustHilbert(2, 6), sfc.MustGray(2, 6)}
	for trial := 0; trial < 40; trial++ {
		lens := []uint64{uint64(rng.Intn(63)) + 1, uint64(rng.Intn(63)) + 1}
		e := geom.MustExtremal(lens, 6)
		cs, err := Decompose(e.Rect(), 6)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range curves {
			runs := Runs(c, cs)
			if len(runs) > len(cs) {
				t.Fatalf("%s lens=%v: %d runs > %d cubes", c.Name(), lens, len(runs), len(cs))
			}
			if len(runs) == 0 {
				t.Fatalf("%s lens=%v: no runs", c.Name(), lens)
			}
		}
	}
}

func TestChooseM(t *testing.T) {
	if _, err := ChooseM(0, 2); err == nil {
		t.Error("eps=0 must fail")
	}
	if _, err := ChooseM(1, 2); err == nil {
		t.Error("eps=1 must fail")
	}
	if _, err := ChooseM(0.5, 0); err == nil {
		t.Error("d=0 must fail")
	}
	m, err := ChooseM(0.05, 4)
	if err != nil {
		t.Fatal(err)
	}
	// 2d/eps = 160, log2 = 7.32 -> m = 8.
	if m != 8 {
		t.Errorf("ChooseM(0.05,4) = %d, want 8", m)
	}
}

func TestLemma32VolumeGuarantee(t *testing.T) {
	// vol(R^m(ℓ)) / vol(R(ℓ)) >= 1 - eps with m = ChooseM(eps, d).
	rng := rand.New(rand.NewSource(31))
	epsilons := []float64{0.3, 0.1, 0.05, 0.01}
	for trial := 0; trial < 200; trial++ {
		d := 2 + rng.Intn(5)
		k := 8 + rng.Intn(9)
		lens := make([]uint64, d)
		for i := range lens {
			lens[i] = uint64(rng.Int63n(1<<uint(k))) + 1
		}
		e := geom.MustExtremal(lens, k)
		for _, eps := range epsilons {
			tr, m, err := TruncateExtremal(e, eps)
			if err != nil {
				t.Fatal(err)
			}
			if tr.Empty() {
				t.Fatalf("truncation emptied region: lens=%v m=%d", lens, m)
			}
			ratio := tr.Volume() / e.Volume()
			if ratio < 1-eps {
				t.Fatalf("lens=%v eps=%v m=%d: ratio %v < %v", lens, eps, m, ratio, 1-eps)
			}
			if !e.Rect().ContainsRect(tr.Rect()) {
				t.Fatalf("truncated region escapes original")
			}
		}
	}
}

func TestSortByVolumeDesc(t *testing.T) {
	cs := []Cube{
		{Corner: []uint32{4, 0}, Side: 1},
		{Corner: []uint32{0, 0}, Side: 4},
		{Corner: []uint32{2, 0}, Side: 2},
		{Corner: []uint32{1, 0}, Side: 1},
	}
	SortByVolumeDesc(cs)
	if cs[0].Side != 4 || cs[1].Side != 2 {
		t.Fatalf("not sorted by side: %v", cs)
	}
	if cs[2].Corner[0] != 1 || cs[3].Corner[0] != 4 {
		t.Fatalf("ties not broken by corner: %v", cs)
	}
}

func TestUpperAndLowerBoundFormulas(t *testing.T) {
	// Spot-check the closed forms used by the experiment harness.
	if got := UpperBoundCubes(3, 0, 2); got != 3*7 {
		t.Errorf("UpperBoundCubes(3,0,2) = %v, want 21", got)
	}
	if got := LowerBoundRuns(1, 8, 2); got != 8 {
		t.Errorf("LowerBoundRuns(1,8,2) = %v, want 8", got)
	}
	if got := LowerBoundRuns(0, 16, 3); got != 64 {
		t.Errorf("LowerBoundRuns(0,16,3) = %v, want 64", got)
	}
}

func TestCensusTotalMatchesTheSum(t *testing.T) {
	e := geom.MustExtremal([]uint64{257, 257}, 10)
	total := CensusTotal(LevelCensus(e))
	if total.Cmp(big.NewInt(514)) != 0 {
		t.Fatalf("census total = %v, want 514", total)
	}
}
