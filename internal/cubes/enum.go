package cubes

import (
	"fmt"

	"sfccover/internal/bits"
	"sfccover/internal/geom"
)

// EnumLevelCubes enumerates the set D_i — the standard cubes of side 2^i in
// the greedy partition of the extremal rectangle R(ℓ) — using the paper's
// Appendix-A algorithm (Algorithms 1–3 driven by Equation 1), which emits
// each cube in O(d·k) time without touching the rest of the partition.
//
// The space occupied by D_i is first decomposed into disjoint rectangles,
// one per instance of the selection vector P (P[x] is the index of a
// nonzero bit chosen from ℓ_x, with exactly one dimension s pinned to
// P[s] = i and earlier dimensions forced above i to avoid duplicates); the
// cubes inside each rectangle are then enumerated by instantiating the free
// bits of the coordinate vector Q per Equation 1.
func EnumLevelCubes(e geom.Extremal, level int) ([]Cube, error) {
	var out []Cube
	err := EnumLevelVisit(e, level, func(corner []uint32, side uint64) bool {
		out = append(out, Cube{Corner: append([]uint32(nil), corner...), Side: side})
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// EnumLevelVisit is the callback form of EnumLevelCubes: visit is
// called once per cube of D_i with the cube's minimum corner and side. The
// corner slice is reused between calls and must not be retained. Returning
// false stops the enumeration early (EnumLevelVisit still returns nil).
// This is the query hot path: the Section 5 search probes each cube's key
// range the moment it is enumerated and stops at the first hit. Callers
// that enumerate repeatedly should hold a LevelEnum instead — this form
// allocates its enumerator state per call.
func EnumLevelVisit(e geom.Extremal, level int, visit func(corner []uint32, side uint64) bool) error {
	var le LevelEnum
	return le.Visit(e, level, visit)
}

// LevelEnum is reusable scratch for the Appendix-A level enumeration:
// the selection and coordinate vectors (and the enumerator frame) are
// kept between calls, so a worker that owns a LevelEnum enumerates with
// zero allocations in steady state. Not safe for concurrent use.
type LevelEnum struct {
	en enumerator
}

// Visit is EnumLevelVisit against the reusable state.
//
//sfc:hotpath
func (le *LevelEnum) Visit(e geom.Extremal, level int, visit func(corner []uint32, side uint64) bool) error {
	d := len(e.Len)
	k := e.K
	if level < 0 || level > k {
		return fmt.Errorf("cubes: level %d out of range [0,%d]", level, k)
	}
	en := &le.en
	if cap(en.p) < d {
		en.p = make([]int, d)
		en.q = make([]uint32, d)
	}
	en.p, en.q = en.p[:d], en.q[:d]
	en.lens, en.d, en.k, en.i = e.Len, d, k, level
	en.visit, en.stopped = visit, false
	// Algorithm 1: one pass per dimension s whose length has bit i set.
	for s := 0; s < d && !en.stopped; s++ {
		if bits.BitOf(e.Len[s], level) == 1 {
			en.s = s
			en.enumRectangles(0)
		}
	}
	// Drop the references so the scratch does not pin caller state.
	en.visit, en.lens = nil, nil
	return nil
}

type enumerator struct {
	lens    []uint64
	d, k    int
	i       int      // cube level: side 2^i
	s       int      // dimension pinned to bit exactly i
	p       []int    // current selection vector P
	q       []uint32 // current coordinate vector Q (reused)
	visit   func(corner []uint32, side uint64) bool
	stopped bool
}

// enumRectangles is Algorithm 3: choose a nonzero bit P[t] from ℓ_t for
// every dimension t, with the constraints that keep rectangles disjoint.
func (en *enumerator) enumRectangles(t int) {
	if en.stopped {
		return
	}
	advance := func() {
		if t == en.d-1 {
			en.compKeys(0)
		} else {
			en.enumRectangles(t + 1)
		}
	}
	switch {
	case t == en.s:
		en.p[t] = en.i
		advance()
	case t < en.s:
		// Dimensions before s must select strictly above i (duplicates guard).
		for y := bits.B(en.lens[t]) - 1; y >= en.i+1 && !en.stopped; y-- {
			if bits.BitOf(en.lens[t], y) == 1 {
				en.p[t] = y
				advance()
			}
		}
	default: // t > en.s
		for y := bits.B(en.lens[t]) - 1; y >= en.i && !en.stopped; y-- {
			if bits.BitOf(en.lens[t], y) == 1 {
				en.p[t] = y
				advance()
			}
		}
	}
}

// compKeys is Algorithm 2: instantiate the coordinate vector Q for the
// rectangle denoted by P, one dimension at a time, enumerating every
// combination of the free bits below P[t] (Equation 1). The fixed bits are
//
//	Q_{t,y} = ¬ℓ_{t,y} for y in (P[t], k−1],
//	Q_{t,y} =  ℓ_{t,y} for y = P[t],
//	Q_{t,y} ∈ {0,1}    for y in [i, P[t]),   and 0 below i (cube alignment).
func (en *enumerator) compKeys(t int) {
	var base uint32
	for y := en.p[t] + 1; y < en.k; y++ {
		if bits.BitOf(en.lens[t], y) == 0 {
			base |= 1 << uint(y)
		}
	}
	// P[t] == k occurs only for ℓ_t = 2^k (full span); that bit lies outside
	// the k-bit coordinate and contributes nothing to the corner.
	if en.p[t] < en.k && bits.BitOf(en.lens[t], en.p[t]) == 1 {
		base |= 1 << uint(en.p[t])
	}
	freeLo, freeHi := en.i, en.p[t] // free bit positions are [freeLo, freeHi)
	if freeHi > en.k {
		freeHi = en.k
	}
	nFree := freeHi - freeLo
	for inst := uint64(0); inst < 1<<uint(nFree) && !en.stopped; inst++ {
		en.q[t] = base | uint32(inst)<<uint(freeLo)
		if t == en.d-1 {
			if !en.visit(en.q, 1<<uint(en.i)) {
				en.stopped = true
			}
		} else {
			en.compKeys(t + 1)
		}
	}
}

// EnumAllCubes runs EnumLevelCubes for every level, yielding the complete
// greedy partition of R(ℓ) via the Appendix-A route (for cross-validation
// against Decompose, and for callers that want the partition level-major,
// largest cubes first).
func EnumAllCubes(e geom.Extremal) ([]Cube, error) {
	var out []Cube
	for level := e.K; level >= 0; level-- {
		cs, err := EnumLevelCubes(e, level)
		if err != nil {
			return nil, err
		}
		out = append(out, cs...)
	}
	return out, nil
}
