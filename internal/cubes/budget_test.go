package cubes

import (
	"math/rand"
	"testing"

	"sfccover/internal/geom"
)

func TestDecomposeBudgetUnlimitedMatchesDecompose(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 60; trial++ {
		d := 2 + rng.Intn(2)
		k := 4
		if d == 3 {
			k = 3
		}
		n := 1 << uint(k)
		lo := make([]uint32, d)
		hi := make([]uint32, d)
		for i := 0; i < d; i++ {
			a, b := uint32(rng.Intn(n)), uint32(rng.Intn(n))
			if a > b {
				a, b = b, a
			}
			lo[i], hi[i] = a, b
		}
		r := geom.MustRect(lo, hi)
		want, err := Decompose(r, k)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecomposeBudget(r, k, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Complete {
			t.Fatal("unlimited budget must complete")
		}
		if len(got.Cubes) != len(want) {
			t.Fatalf("budget found %d cubes, greedy %d", len(got.Cubes), len(want))
		}
		if got.Volume != r.Volume() {
			t.Fatalf("volume %v != rect volume %v", got.Volume, r.Volume())
		}
		// Descending side order.
		for i := 1; i < len(got.Cubes); i++ {
			if got.Cubes[i].Side > got.Cubes[i-1].Side {
				t.Fatalf("cubes not in descending side order at %d: %v then %v",
					i, got.Cubes[i-1], got.Cubes[i])
			}
		}
	}
}

func TestDecomposeBudgetVolumeTarget(t *testing.T) {
	// 257x257 region: the 256-cube alone covers >99%, so a 0.99 volume
	// target must stop after very few cubes.
	e := geom.MustExtremal([]uint64{257, 257}, 10)
	target := 0.99 * e.Volume()
	res, err := DecomposeBudget(e.Rect(), 10, target, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Complete {
		t.Fatal("volume target should stop early")
	}
	if res.Volume < target {
		t.Fatalf("stopped below target: %v < %v", res.Volume, target)
	}
	if len(res.Cubes) > 2 {
		t.Fatalf("needed %d cubes to reach 99%%, expected <= 2", len(res.Cubes))
	}
}

func TestDecomposeBudgetMaxCubes(t *testing.T) {
	e := geom.MustExtremal([]uint64{257, 257}, 10)
	res, err := DecomposeBudget(e.Rect(), 10, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Complete || len(res.Cubes) != 10 {
		t.Fatalf("maxCubes: complete=%v n=%d", res.Complete, len(res.Cubes))
	}
	// The emitted prefix must be the largest cubes of the partition.
	if res.Cubes[0].Side != 256 {
		t.Fatalf("first cube side = %d, want 256", res.Cubes[0].Side)
	}
}

func TestDecomposeBudgetValidation(t *testing.T) {
	r := geom.MustRect([]uint32{0}, []uint32{31})
	if _, err := DecomposeBudget(r, 4, 0, 0); err == nil {
		t.Error("rect beyond universe must fail")
	}
	if _, err := DecomposeBudget(r, 0, 0, 0); err == nil {
		t.Error("k=0 must fail")
	}
}
