// Package cubes implements the standard-cube machinery of Sections 3 and 5:
// the greedy minimal partition of a region into standard cubes (Lemma 3.3),
// the closed-form per-level census for extremal rectangles (Lemmas 3.4–3.5),
// the Appendix-A key-enumeration algorithms, the t(ℓ,m) truncation that
// turns an exhaustive dominance query into an ε-approximate one
// (Lemma 3.2), and the conversion of cube partitions into SFC runs.
package cubes

import (
	"fmt"
	"math"
	"math/big"
	"sort"

	"sfccover/internal/bits"
	"sfccover/internal/geom"
	"sfccover/internal/sfc"
)

// Cube is a standard cube: a cube of the recursive bisection of the
// universe, with power-of-two side length and corner aligned to its side.
type Cube struct {
	Corner []uint32 // minimum corner, one coordinate per dimension
	Side   uint64   // power of two; 2^32 for the whole k=32 universe
}

// Level returns log2(Side), the depth complement of the cube: cells are
// level 0, the whole universe is level k.
func (c Cube) Level() int {
	lvl := 0
	for s := c.Side; s > 1; s >>= 1 {
		lvl++
	}
	return lvl
}

// Volume returns Side^d as a float64.
func (c Cube) Volume() float64 {
	v := 1.0
	for range c.Corner {
		v *= float64(c.Side)
	}
	return v
}

// Rect materializes the cube as a geometry rectangle.
func (c Cube) Rect() geom.Rect {
	return c.RectInto(make([]uint32, len(c.Corner)), make([]uint32, len(c.Corner)))
}

// RectInto is Rect writing into caller-provided scratch: lo and hi must
// each hold Dims coordinates. The returned rectangle aliases them, so
// hot paths can rematerialize cubes without allocating.
func (c Cube) RectInto(lo, hi []uint32) geom.Rect {
	for i, l := range c.Corner {
		lo[i] = l
		hi[i] = uint32(uint64(l) + c.Side - 1)
	}
	return geom.Rect{Lo: lo, Hi: hi}
}

// cubeRelation classifies the standard cube (corner, side) against r
// without materializing a rectangle: intersects reports a shared cell,
// inside that the cube lies entirely within r.
func cubeRelation(r geom.Rect, corner []uint32, side uint64) (intersects, inside bool) {
	inside = true
	for i, lo := range corner {
		hi := uint64(lo) + side - 1
		if hi < uint64(r.Lo[i]) || uint64(lo) > uint64(r.Hi[i]) {
			return false, false
		}
		if uint64(lo) < uint64(r.Lo[i]) || hi > uint64(r.Hi[i]) {
			inside = false
		}
	}
	return true, inside
}

func (c Cube) String() string { return fmt.Sprintf("Cube{corner=%v side=%d}", c.Corner, c.Side) }

// Decompose partitions the rectangle into the minimum number of standard
// cubes of the 2^k-per-dimension universe (the greedy partition of
// Lemma 3.3: every cell is grouped into the largest standard cube that
// still fits inside the rectangle). Cubes are emitted in recursive-
// partition order.
//
// The cost is proportional to the output size times d, which Theorem 4.1
// shows can be as large as Ω((2^(α−1)ℓ)^(d−1)) — that expense is exactly
// the paper's case for approximate search, so callers wanting bounded work
// must truncate the region first (see TruncateExtremal).
func Decompose(r geom.Rect, k int) ([]Cube, error) {
	var dc Decomposer
	cs, err := dc.Decompose(r, k)
	if err != nil {
		return nil, err
	}
	return cloneCubes(cs), nil
}

// Runs converts a cube partition into the minimal set of SFC runs: each
// cube is a single contiguous key range (Fact 2.1) and adjacent ranges are
// merged, so len(Runs(...)) == runs(T) <= cubes(T) (Lemma 3.1).
func Runs(c sfc.Curve, cs []Cube) []sfc.KeyRange {
	ranges := make([]sfc.KeyRange, len(cs))
	for i, cube := range cs {
		ranges[i] = sfc.CubeRange(c, cube.Corner, cube.Side)
	}
	return sfc.MergeRanges(ranges)
}

// SortByVolumeDesc orders cubes largest-first, the probe order of the
// Section 5 algorithm (biggest volume gain per run access first).
// Ties are broken by corner order to keep the sort deterministic.
func SortByVolumeDesc(cs []Cube) {
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].Side != cs[j].Side {
			return cs[i].Side > cs[j].Side
		}
		a, b := cs[i].Corner, cs[j].Corner
		for x := range a {
			if a[x] != b[x] {
				return a[x] < b[x]
			}
		}
		return false
	})
}

// ChooseM returns the truncation parameter m = ⌈log2(2d/ε)⌉ of Lemma 3.2:
// truncating every side length of the query region to its m most
// significant bits retains at least a (1−ε) fraction of its volume.
func ChooseM(eps float64, d int) (int, error) {
	if eps <= 0 || eps >= 1 {
		return 0, fmt.Errorf("cubes: epsilon %v out of range (0,1)", eps)
	}
	if d < 1 {
		return 0, fmt.Errorf("cubes: dimension %d < 1", d)
	}
	return int(math.Ceil(math.Log2(2 * float64(d) / eps))), nil
}

// TruncateExtremal applies t(ℓ,m) with the Lemma 3.2 choice of m for the
// given ε, returning the truncated extremal rectangle R^m(ℓ) together with
// the m used. The truncated region is contained in e and covers at least a
// (1−ε) fraction of its volume.
func TruncateExtremal(e geom.Extremal, eps float64) (geom.Extremal, int, error) {
	m, err := ChooseM(eps, len(e.Len))
	if err != nil {
		return geom.Extremal{}, 0, err
	}
	return e.Truncate(m), m, nil
}

// LevelCensus returns, for an extremal rectangle R(ℓ), the exact number of
// standard cubes of side 2^i in its minimal partition for each
// i = 0..k (Lemmas 3.4–3.5):
//
//	N_i = (∏_j S_i(ℓ_j) − ∏_j S_{i+1}(ℓ_j)) / 2^(i·d)   when O_i = 1,
//	N_i = 0                                              when O_i = 0,
//
// computed exactly with big integers. Indices at or above b(ℓ_min) are
// zero by Lemma 3.4.
func LevelCensus(e geom.Extremal) []*big.Int {
	d := len(e.Len)
	counts := make([]*big.Int, e.K+1)
	for i := range counts {
		counts[i] = new(big.Int)
	}
	bmin := bits.B(e.Len[0])
	for _, l := range e.Len[1:] {
		if b := bits.B(l); b < bmin {
			bmin = b
		}
	}
	prodS := func(i int) *big.Int {
		p := big.NewInt(1)
		for _, l := range e.Len {
			p.Mul(p, new(big.Int).SetUint64(bits.S(l, i)))
		}
		return p
	}
	for i := 0; i < bmin; i++ {
		oi := false
		for _, l := range e.Len {
			if bits.BitOf(l, i) == 1 {
				oi = true
				break
			}
		}
		if !oi {
			continue
		}
		diff := prodS(i)
		diff.Sub(diff, prodS(i+1))
		diff.Rsh(diff, uint(i*d))
		counts[i] = diff
	}
	return counts
}

// CensusTotal sums a LevelCensus, giving cubes(R(ℓ)) exactly.
func CensusTotal(counts []*big.Int) *big.Int {
	total := new(big.Int)
	for _, c := range counts {
		total.Add(total, c)
	}
	return total
}

// UpperBoundCubes evaluates the Lemma 3.7 bound m·(2^α(2^m − 1))^(d−1) on
// cubes(R^m(ℓ)) for aspect ratio α, truncation m and dimension d.
func UpperBoundCubes(m, alpha, d int) float64 {
	base := math.Pow(2, float64(alpha)) * (math.Pow(2, float64(m)) - 1)
	return float64(m) * math.Pow(base, float64(d-1))
}

// LowerBoundRuns evaluates the Theorem 4.1 bound (2^(α−1)·ℓ_d)^(d−1) on
// runs(R(ℓ)) for the adversarial family with shortest side ℓ_d.
func LowerBoundRuns(alpha int, shortest uint64, d int) float64 {
	return math.Pow(math.Pow(2, float64(alpha))*float64(shortest)/2, float64(d-1))
}
