package bits

import "sync"

// Byte-spread lookup tables for fast interleaving: spreadTables[d][b] holds
// the bits of byte b spaced out with stride d, so interleaving reduces to
// table lookups and shifted ORs instead of per-bit loops. Built lazily once
// per process; ~35 KB total for all strides.
var (
	spreadOnce   sync.Once
	spreadTables [maxSpreadDim + 1][256]uint64
)

const maxSpreadDim = 8 // a spread byte needs bit 7*d+7 < 64, so d <= 8

func initSpreadTables() {
	for d := 1; d <= maxSpreadDim; d++ {
		for b := 0; b < 256; b++ {
			var v uint64
			for t := 0; t < 8; t++ {
				if b>>uint(t)&1 == 1 {
					v |= 1 << uint(t*d)
				}
			}
			spreadTables[d][b] = v
		}
	}
}

// orShifted ORs the low bits of v into the key starting at bit position
// shift (counted from the least significant bit).
func (k *Key) orShifted(v uint64, shift int) {
	if v == 0 {
		return
	}
	word := KeyWords - 1 - shift/64
	off := uint(shift % 64)
	k.w[word] |= v << off
	if off != 0 && word > 0 {
		if hi := v >> (64 - off); hi != 0 {
			k.w[word-1] |= hi
		}
	}
}

// interleaveFast is the lookup-table implementation of Interleave for
// dimensions up to maxSpreadDim. Bit i of coordinate j lands at key bit
// i*d + (d-1-j); processing coordinates a byte at a time, the byte covering
// bits [8t, 8t+8) contributes spread(b) << (8t*d + (d-1-j)).
func interleaveFast(coords []uint32, k int) Key {
	spreadOnce.Do(initSpreadTables)
	d := len(coords)
	table := &spreadTables[d]
	nBytes := (k + 7) / 8
	var key Key
	for j, x := range coords {
		if k < 32 {
			x &= 1<<uint(k) - 1 // ignore bits beyond the universe
		}
		base := d - 1 - j
		for t := 0; t < nBytes; t++ {
			b := byte(x >> uint(8*t))
			if b != 0 {
				key.orShifted(table[b], 8*t*d+base)
			}
		}
	}
	return key
}
