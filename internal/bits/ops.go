package bits

import mbits "math/bits"

// B returns b(x), the number of bits in the binary representation of x with
// the most significant bit equal to 1. B(0) is 0; the paper only applies b
// to positive side lengths. For example B(9) = 4.
func B(x uint64) int { return mbits.Len64(x) }

// T returns t(x, m): the integer formed by retaining the m most significant
// bits of x and setting the rest to zero. When m >= b(x) the value is x
// itself; when m <= 0 the value is 0.
func T(x uint64, m int) uint64 {
	b := B(x)
	if m >= b {
		return x
	}
	if m <= 0 {
		return 0
	}
	drop := uint(b - m)
	return x >> drop << drop
}

// S returns S_i(x): the result of keeping only the bits of x at positions
// i and above (positions count from 0 at the least significant bit), per
// the paper's definition S_i(x) = sum_{j=i}^{b(x)-1} x_j 2^j.
func S(x uint64, i int) uint64 {
	if i <= 0 {
		return x
	}
	if i >= 64 {
		return 0
	}
	return x >> uint(i) << uint(i)
}

// TVec applies T element-wise: t(ℓ, m) in the paper's vector notation.
func TVec(xs []uint64, m int) []uint64 {
	out := make([]uint64, len(xs))
	for i, x := range xs {
		out[i] = T(x, m)
	}
	return out
}

// SVec applies S element-wise: S_i(ℓ) in the paper's vector notation.
func SVec(xs []uint64, i int) []uint64 {
	out := make([]uint64, len(xs))
	for j, x := range xs {
		out[j] = S(x, i)
	}
	return out
}

// BitOf returns bit j of x (0 = least significant), the paper's x_j.
func BitOf(x uint64, j int) uint64 {
	if j < 0 || j >= 64 {
		return 0
	}
	return x >> uint(j) & 1
}

// Interleave builds a d*k-bit key from d coordinates of k bits each by bit
// interleaving, starting from dimension 1 at the most significant position
// within each group, exactly as the Z curve in the paper: for coordinates
// (3, 5) = (011, 101)2 the key is (011011)2 = 27.
func Interleave(coords []uint32, k int) Key {
	d := len(coords)
	if d >= 1 && d <= maxSpreadDim {
		return interleaveFast(coords, k)
	}
	return interleaveSlow(coords, k)
}

// interleaveSlow is the reference per-bit implementation, used for
// dimensions beyond the lookup tables and as the oracle in tests.
func interleaveSlow(coords []uint32, k int) Key {
	d := len(coords)
	var key Key
	pos := d*k - 1 // bit position from the LSB, walked from the key's MSB down
	for g := 0; g < k; g++ {
		coordBit := uint(k - 1 - g)
		for j := 0; j < d; j++ {
			if coords[j]>>coordBit&1 != 0 {
				key.w[KeyWords-1-pos/64] |= 1 << uint(pos%64)
			}
			pos--
		}
	}
	return key
}

// Deinterleave inverts Interleave, recovering d coordinates of k bits each.
func Deinterleave(key Key, d, k int) []uint32 {
	coords := make([]uint32, d)
	pos := d*k - 1
	for g := 0; g < k; g++ {
		coordBit := uint(k - 1 - g)
		for j := 0; j < d; j++ {
			if key.w[KeyWords-1-pos/64]>>uint(pos%64)&1 != 0 {
				coords[j] |= 1 << coordBit
			}
			pos--
		}
	}
	return coords
}
