package bits

import (
	"math/rand"
	"testing"
)

// TestFastInterleaveMatchesReference cross-checks the lookup-table path
// against the per-bit reference for every supported dimension and
// resolution, including boundary coordinates.
func TestFastInterleaveMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for d := 1; d <= maxSpreadDim; d++ {
		for _, k := range []int{1, 7, 8, 9, 16, 17, 31, 32} {
			if d*k > KeyBits {
				continue
			}
			for trial := 0; trial < 200; trial++ {
				coords := make([]uint32, d)
				for i := range coords {
					switch trial % 4 {
					case 0:
						coords[i] = uint32(rng.Int63()) & (1<<uint(k) - 1)
					case 1:
						coords[i] = 0
					case 2:
						coords[i] = 1<<uint(k) - 1 // all ones
					default:
						coords[i] = 1 << uint(rng.Intn(k)) // single bit
					}
				}
				fast := interleaveFast(coords, k)
				slow := interleaveSlow(coords, k)
				if fast != slow {
					t.Fatalf("d=%d k=%d coords=%v: fast %v != slow %v", d, k, coords, fast, slow)
				}
			}
		}
	}
}

// TestFastInterleaveMasksOutOfRangeBits ensures coordinates with stray
// bits above the universe resolution do not corrupt the key.
func TestFastInterleaveMasksOutOfRangeBits(t *testing.T) {
	clean := interleaveFast([]uint32{0b101, 0b011}, 3)
	dirty := interleaveFast([]uint32{0b101 | 0xFFFFFF00 | 1<<3, 0b011 | 1<<5}, 3)
	if clean != dirty {
		t.Fatalf("out-of-range coordinate bits leaked into the key")
	}
}

func TestOrShiftedAcrossWordBoundary(t *testing.T) {
	var k Key
	k.orShifted(0xFF, 60) // straddles words KeyWords-1 / KeyWords-2
	for pos := 60; pos < 68; pos++ {
		if k.Bit(pos) != 1 {
			t.Fatalf("bit %d not set", pos)
		}
	}
	if k.Bit(59) != 0 || k.Bit(68) != 0 {
		t.Fatal("neighbouring bits disturbed")
	}
}

func BenchmarkInterleaveFastD4K16(b *testing.B) {
	coords := []uint32{0xABCD, 0x1234, 0xF0F0, 0x5555}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = interleaveFast(coords, 16)
	}
}

func BenchmarkInterleaveSlowD4K16(b *testing.B) {
	coords := []uint32{0xABCD, 0x1234, 0xF0F0, 0x5555}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = interleaveSlow(coords, 16)
	}
}
