package bits

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKeyFromUint64RoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		got, ok := KeyFromUint64(v).Uint64()
		return ok && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKeyCmpMatchesUint64(t *testing.T) {
	f := func(a, b uint64) bool {
		ka, kb := KeyFromUint64(a), KeyFromUint64(b)
		switch {
		case a < b:
			return ka.Cmp(kb) == -1 && ka.Less(kb)
		case a > b:
			return ka.Cmp(kb) == 1 && !ka.Less(kb)
		default:
			return ka.Cmp(kb) == 0 && ka.Equal(kb)
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKeyIncDecMatchUint64(t *testing.T) {
	f := func(v uint64) bool {
		k := KeyFromUint64(v)
		if v < ^uint64(0) {
			inc, ok := k.Inc()
			got, fits := inc.Uint64()
			if !ok || !fits || got != v+1 {
				return false
			}
		}
		if v > 0 {
			dec, ok := k.Dec()
			got, fits := dec.Uint64()
			if !ok || !fits || got != v-1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKeyIncCarriesAcrossWords(t *testing.T) {
	var k Key
	k.w[KeyWords-1] = ^uint64(0)
	k.w[KeyWords-2] = 5
	inc, ok := k.Inc()
	if !ok {
		t.Fatal("Inc reported overflow on non-maximal key")
	}
	if inc.w[KeyWords-1] != 0 || inc.w[KeyWords-2] != 6 {
		t.Fatalf("carry failed: got %v", inc)
	}
	dec, ok := inc.Dec()
	if !ok || dec != k {
		t.Fatalf("Dec(Inc(k)) != k: got %v want %v", dec, k)
	}
}

func TestKeyIncOverflow(t *testing.T) {
	var k Key
	for i := range k.w {
		k.w[i] = ^uint64(0)
	}
	if _, ok := k.Inc(); ok {
		t.Fatal("Inc on all-ones key should report overflow")
	}
}

func TestKeyDecOnZero(t *testing.T) {
	var k Key
	if _, ok := k.Dec(); ok {
		t.Fatal("Dec on zero should report underflow")
	}
}

func TestSetBitGetBit(t *testing.T) {
	var k Key
	positions := []int{0, 1, 63, 64, 65, 127, 128, 300, 511}
	for _, p := range positions {
		k = k.SetBit(p, 1)
	}
	for _, p := range positions {
		if k.Bit(p) != 1 {
			t.Fatalf("bit %d not set", p)
		}
	}
	if k.Bit(2) != 0 || k.Bit(200) != 0 {
		t.Fatal("unexpected set bit")
	}
	for _, p := range positions {
		k = k.SetBit(p, 0)
	}
	if !k.IsZero() {
		t.Fatalf("clearing all bits should leave zero, got %v", k)
	}
}

func TestLowMask(t *testing.T) {
	tests := []struct {
		n    int
		want uint64
	}{
		{0, 0},
		{1, 1},
		{3, 7},
		{63, 1<<63 - 1},
	}
	for _, tt := range tests {
		got, ok := LowMask(tt.n).Uint64()
		if !ok || got != tt.want {
			t.Errorf("LowMask(%d) = %d, want %d", tt.n, got, tt.want)
		}
	}
	wide := LowMask(130)
	for p := 0; p < 130; p++ {
		if wide.Bit(p) != 1 {
			t.Fatalf("LowMask(130) bit %d clear", p)
		}
	}
	if wide.Bit(130) != 0 {
		t.Fatal("LowMask(130) bit 130 set")
	}
}

func TestClearLowSetLow(t *testing.T) {
	k := KeyFromUint64(0b101101)
	if got, _ := k.ClearLow(3).Uint64(); got != 0b101000 {
		t.Errorf("ClearLow(3) = %b", got)
	}
	if got, _ := k.SetLow(3).Uint64(); got != 0b101111 {
		t.Errorf("SetLow(3) = %b", got)
	}
}

func TestShr1AndShrN(t *testing.T) {
	f := func(v uint64, n uint8) bool {
		k := KeyFromUint64(v)
		if got, _ := k.Shr1().Uint64(); got != v>>1 {
			return false
		}
		s := int(n % 64)
		got, _ := k.ShrN(s).Uint64()
		return got == v>>uint(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShrNAcrossWords(t *testing.T) {
	var k Key
	k.w[0] = 0xdeadbeefcafef00d
	shifted := k.ShrN(64 * (KeyWords - 1))
	if got, ok := shifted.Uint64(); !ok || got != 0xdeadbeefcafef00d {
		t.Fatalf("ShrN whole words: got %x ok=%v", got, ok)
	}
	shifted = k.ShrN(64*(KeyWords-1) + 4)
	if got, _ := shifted.Uint64(); got != 0xdeadbeefcafef00d>>4 {
		t.Fatalf("ShrN partial: got %x", got)
	}
	if !k.ShrN(KeyBits).IsZero() {
		t.Fatal("ShrN(KeyBits) should be zero")
	}
}

func TestShlNInvertsShrN(t *testing.T) {
	var k Key
	k.w[KeyWords-1] = 0xdeadbeefcafef00d
	// Round trips hold while n + k.Len() <= KeyBits (no bits pushed out).
	for _, n := range []int{0, 1, 5, 63, 64, 65, 128, 64 * (KeyWords - 1)} {
		if got := k.ShlN(n).ShrN(n); got != k {
			t.Fatalf("ShlN(%d) then ShrN(%d) = %v, want %v", n, n, got, k)
		}
	}
	nibble := KeyFromUint64(0xd)
	if got := nibble.ShlN(KeyBits - 4).ShrN(KeyBits - 4); got != nibble {
		t.Fatalf("top-nibble round trip = %v, want %v", got, nibble)
	}
	if !k.ShlN(KeyBits).IsZero() {
		t.Fatal("ShlN(KeyBits) should be zero")
	}
	// Bits pushed past the top are discarded.
	var top Key
	top.w[0] = 1 << 63
	if !top.ShlN(1).IsZero() {
		t.Fatal("ShlN must discard overflow bits")
	}
	if got := KeyFromUint64(3).ShlN(64 * (KeyWords - 1)); got.w[0] != 3 {
		t.Fatalf("ShlN whole words: w[0] = %x, want 3", got.w[0])
	}
}

func TestKeyLen(t *testing.T) {
	if got := (Key{}).Len(); got != 0 {
		t.Fatalf("Len(0) = %d", got)
	}
	if got := KeyFromUint64(9).Len(); got != 4 {
		t.Fatalf("Len(9) = %d, want 4", got)
	}
	var k Key
	k = k.SetBit(300, 1)
	if got := k.Len(); got != 301 {
		t.Fatalf("Len(bit 300) = %d, want 301", got)
	}
}

func TestGrayRoundTrip64(t *testing.T) {
	f := func(v uint64) bool {
		k := KeyFromUint64(v)
		g := k.Gray()
		want := v ^ v>>1
		if got, _ := g.Uint64(); got != want {
			return false
		}
		return g.GrayInv() == k
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGrayRoundTripWide(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		var k Key
		for i := range k.w {
			k.w[i] = rng.Uint64()
		}
		if got := k.Gray().GrayInv(); got != k {
			t.Fatalf("GrayInv(Gray(k)) != k for %v", k)
		}
		if got := k.GrayInv().Gray(); got != k {
			t.Fatalf("Gray(GrayInv(k)) != k for %v", k)
		}
	}
}

func TestGrayAdjacencyProperty(t *testing.T) {
	// Consecutive integers must have Gray codes differing in exactly one bit.
	prev := KeyFromUint64(0).Gray()
	for v := uint64(1); v < 4096; v++ {
		cur := KeyFromUint64(v).Gray()
		diff := cur.Xor(prev)
		ones := 0
		for p := 0; p < 16; p++ {
			ones += int(diff.Bit(p))
		}
		if ones != 1 {
			t.Fatalf("gray(%d) and gray(%d) differ in %d bits", v-1, v, ones)
		}
		prev = cur
	}
}

func TestBitwiseOps(t *testing.T) {
	f := func(a, b uint64) bool {
		ka, kb := KeyFromUint64(a), KeyFromUint64(b)
		or, _ := ka.Or(kb).Uint64()
		and, _ := ka.And(kb).Uint64()
		xor, _ := ka.Xor(kb).Uint64()
		andNot, _ := ka.AndNot(kb).Uint64()
		return or == a|b && and == a&b && xor == a^b && andNot == a&^b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKeyString(t *testing.T) {
	if got := KeyFromUint64(255).String(); got != "0xff" {
		t.Errorf("String = %q", got)
	}
	var k Key
	k.w[KeyWords-2] = 1
	if got := k.String(); got != "0x10000000000000000" {
		t.Errorf("String wide = %q", got)
	}
}

func TestBitPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range bit position")
		}
	}()
	var k Key
	k.Bit(KeyBits)
}
