// Package bits provides fixed-width multiword binary keys and the bit-level
// operators the paper defines on side lengths: b(x), t(x, m) and S_i(x).
//
// A space-filling-curve key for a d-dimensional universe with 2^k cells per
// dimension is a d*k-bit integer. The package supports keys up to KeyBits
// bits, stored most-significant-word first, so ordinary word-wise comparison
// yields numeric order.
package bits

import (
	"fmt"
	mbits "math/bits"
)

const (
	// KeyWords is the number of 64-bit words in a Key.
	KeyWords = 8
	// KeyBits is the maximum key width supported (d*k must not exceed it).
	KeyBits = KeyWords * 64
)

// Key is an unsigned KeyBits-bit integer. The zero value is the key 0.
// Word 0 holds the most significant bits; bit positions used by the methods
// count from the least significant bit (position 0) upward.
type Key struct {
	w [KeyWords]uint64
}

// KeyFromUint64 returns a Key whose numeric value is v.
func KeyFromUint64(v uint64) Key {
	var k Key
	k.w[KeyWords-1] = v
	return k
}

// Uint64 returns the numeric value of k if it fits in 64 bits.
// ok is false when the key has bits set above position 63.
func (k Key) Uint64() (v uint64, ok bool) {
	for i := 0; i < KeyWords-1; i++ {
		if k.w[i] != 0 {
			return 0, false
		}
	}
	return k.w[KeyWords-1], true
}

// Cmp compares two keys numerically, returning -1, 0 or +1.
func (k Key) Cmp(o Key) int {
	for i := 0; i < KeyWords; i++ {
		switch {
		case k.w[i] < o.w[i]:
			return -1
		case k.w[i] > o.w[i]:
			return 1
		}
	}
	return 0
}

// Less reports whether k < o numerically.
func (k Key) Less(o Key) bool { return k.Cmp(o) < 0 }

// Equal reports whether k == o.
func (k Key) Equal(o Key) bool { return k == o }

// IsZero reports whether the key is numerically zero.
func (k Key) IsZero() bool { return k == Key{} }

// Bit returns the bit at position pos (0 = least significant).
func (k Key) Bit(pos int) uint {
	word, off := posIndex(pos)
	return uint(k.w[word]>>off) & 1
}

// SetBit returns a copy of k with the bit at position pos set to b (0 or 1).
func (k Key) SetBit(pos int, b uint) Key {
	word, off := posIndex(pos)
	if b == 0 {
		k.w[word] &^= 1 << off
	} else {
		k.w[word] |= 1 << off
	}
	return k
}

func posIndex(pos int) (word, off uint) {
	if pos < 0 || pos >= KeyBits {
		panic(fmt.Sprintf("bits: key bit position %d out of range [0,%d)", pos, KeyBits))
	}
	return uint(KeyWords - 1 - pos/64), uint(pos % 64)
}

// Inc returns k+1. ok is false on wraparound past the maximum key.
func (k Key) Inc() (sum Key, ok bool) {
	for i := KeyWords - 1; i >= 0; i-- {
		k.w[i]++
		if k.w[i] != 0 {
			return k, true
		}
	}
	return k, false
}

// Dec returns k-1. ok is false when k is zero.
func (k Key) Dec() (diff Key, ok bool) {
	if k.IsZero() {
		return k, false
	}
	for i := KeyWords - 1; i >= 0; i-- {
		k.w[i]--
		if k.w[i] != ^uint64(0) {
			return k, true
		}
	}
	return k, true
}

// Or returns the bitwise OR of k and o.
func (k Key) Or(o Key) Key {
	for i := 0; i < KeyWords; i++ {
		k.w[i] |= o.w[i]
	}
	return k
}

// And returns the bitwise AND of k and o.
func (k Key) And(o Key) Key {
	for i := 0; i < KeyWords; i++ {
		k.w[i] &= o.w[i]
	}
	return k
}

// Xor returns the bitwise XOR of k and o.
func (k Key) Xor(o Key) Key {
	for i := 0; i < KeyWords; i++ {
		k.w[i] ^= o.w[i]
	}
	return k
}

// AndNot returns k with the bits of o cleared (k &^ o).
func (k Key) AndNot(o Key) Key {
	for i := 0; i < KeyWords; i++ {
		k.w[i] &^= o.w[i]
	}
	return k
}

// Shr1 returns k logically shifted right by one bit.
func (k Key) Shr1() Key {
	var out Key
	var carry uint64
	for i := 0; i < KeyWords; i++ {
		out.w[i] = k.w[i]>>1 | carry<<63
		carry = k.w[i] & 1
	}
	return out
}

// LowMask returns a key with the low n bits set and all others clear.
func LowMask(n int) Key {
	if n < 0 || n > KeyBits {
		panic(fmt.Sprintf("bits: LowMask width %d out of range [0,%d]", n, KeyBits))
	}
	var k Key
	for i := KeyWords - 1; i >= 0 && n > 0; i-- {
		if n >= 64 {
			k.w[i] = ^uint64(0)
			n -= 64
		} else {
			k.w[i] = 1<<uint(n) - 1
			n = 0
		}
	}
	return k
}

// ClearLow returns k with the low n bits cleared.
func (k Key) ClearLow(n int) Key { return k.AndNot(LowMask(n)) }

// SetLow returns k with the low n bits set.
func (k Key) SetLow(n int) Key { return k.Or(LowMask(n)) }

// Len returns the minimum number of bits needed to represent k
// (0 for the zero key), i.e. the paper's b(x) generalized to keys.
func (k Key) Len() int {
	for i := 0; i < KeyWords; i++ {
		if k.w[i] != 0 {
			return (KeyWords-1-i)*64 + mbits.Len64(k.w[i])
		}
	}
	return 0
}

// String renders the key as 0x-prefixed hexadecimal with leading zeros
// trimmed to the most significant nonzero word.
func (k Key) String() string {
	i := 0
	for i < KeyWords-1 && k.w[i] == 0 {
		i++
	}
	s := fmt.Sprintf("0x%x", k.w[i])
	for i++; i < KeyWords; i++ {
		s += fmt.Sprintf("%016x", k.w[i])
	}
	return s
}

// GrayInv returns the binary number whose standard reflected Gray code is k,
// i.e. the inverse of g(x) = x XOR (x >> 1), computed over all KeyBits bits.
func (k Key) GrayInv() Key {
	// Prefix-XOR scan: shift-and-fold doubling over the full key width.
	out := k
	for shift := 1; shift < KeyBits; shift *= 2 {
		out = out.Xor(out.ShrN(shift))
	}
	return out
}

// Gray returns the standard reflected Gray code of k: k XOR (k >> 1).
func (k Key) Gray() Key { return k.Xor(k.Shr1()) }

// ShlN returns k logically shifted left by n bits; bits shifted past
// position KeyBits-1 are discarded.
func (k Key) ShlN(n int) Key {
	if n < 0 {
		panic("bits: negative shift")
	}
	if n >= KeyBits {
		return Key{}
	}
	wordShift, bitShift := n/64, uint(n%64)
	var out Key
	for i := 0; i < KeyWords-wordShift; i++ {
		src := i + wordShift
		out.w[i] = k.w[src] << bitShift
		if bitShift > 0 && src < KeyWords-1 {
			out.w[i] |= k.w[src+1] >> (64 - bitShift)
		}
	}
	return out
}

// ShrN returns k logically shifted right by n bits.
func (k Key) ShrN(n int) Key {
	if n < 0 {
		panic("bits: negative shift")
	}
	if n >= KeyBits {
		return Key{}
	}
	wordShift, bitShift := n/64, uint(n%64)
	var out Key
	for i := KeyWords - 1; i >= wordShift; i-- {
		src := i - wordShift
		out.w[i] = k.w[src] >> bitShift
		if bitShift > 0 && src > 0 {
			out.w[i] |= k.w[src-1] << (64 - bitShift)
		}
	}
	return out
}
