package bits

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBExamples(t *testing.T) {
	tests := []struct {
		x    uint64
		want int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {9, 4}, {255, 8}, {256, 9},
		{1 << 63, 64},
	}
	for _, tt := range tests {
		if got := B(tt.x); got != tt.want {
			t.Errorf("B(%d) = %d, want %d", tt.x, got, tt.want)
		}
	}
}

func TestTProperties(t *testing.T) {
	// t(x,m) keeps the m most significant bits: t(x,m) <= x,
	// b(t(x,m)) == b(x) for m >= 1, and x - t(x,m) < 2^(b(x)-m).
	f := func(x uint64, mRaw uint8) bool {
		if x == 0 {
			return T(x, int(mRaw)) == 0
		}
		m := int(mRaw%64) + 1
		tx := T(x, m)
		if tx > x || B(tx) != B(x) {
			return false
		}
		if m < B(x) && x-tx >= 1<<uint(B(x)-m) {
			return false
		}
		if m >= B(x) && tx != x {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTExamples(t *testing.T) {
	tests := []struct {
		x    uint64
		m    int
		want uint64
	}{
		{0b1011, 1, 0b1000},
		{0b1011, 2, 0b1000},
		{0b1011, 3, 0b1010},
		{0b1011, 4, 0b1011},
		{0b1011, 9, 0b1011},
		{0b1011, 0, 0},
		{1, 1, 1},
	}
	for _, tt := range tests {
		if got := T(tt.x, tt.m); got != tt.want {
			t.Errorf("T(%b,%d) = %b, want %b", tt.x, tt.m, got, tt.want)
		}
	}
}

func TestSExamples(t *testing.T) {
	tests := []struct {
		x    uint64
		i    int
		want uint64
	}{
		{0b101101, 0, 0b101101},
		{0b101101, 1, 0b101100},
		{0b101101, 2, 0b101100},
		{0b101101, 3, 0b101000},
		{0b101101, 6, 0},
		{0b101101, 64, 0},
		{0b101101, -1, 0b101101},
	}
	for _, tt := range tests {
		if got := S(tt.x, tt.i); got != tt.want {
			t.Errorf("S(%b,%d) = %b, want %b", tt.x, tt.i, got, tt.want)
		}
	}
}

func TestSRecurrence(t *testing.T) {
	// S_i(x) = S_{i+1}(x) + x_i * 2^i (the identity Lemma 3.6 relies on).
	f := func(x uint64, iRaw uint8) bool {
		i := int(iRaw % 63)
		return S(x, i) == S(x, i+1)+BitOf(x, i)<<uint(i)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVecOps(t *testing.T) {
	xs := []uint64{0b1011, 0b110, 0b1}
	tv := TVec(xs, 2)
	want := []uint64{0b1000, 0b110, 0b1}
	for i := range tv {
		if tv[i] != want[i] {
			t.Errorf("TVec[%d] = %b, want %b", i, tv[i], want[i])
		}
	}
	sv := SVec(xs, 1)
	wantS := []uint64{0b1010, 0b110, 0}
	for i := range sv {
		if sv[i] != wantS[i] {
			t.Errorf("SVec[%d] = %b, want %b", i, sv[i], wantS[i])
		}
	}
}

func TestInterleavePaperExample(t *testing.T) {
	// Coordinates (3,5) = (011,101)2 interleave to key (011011)2 = 27
	// with dimension 1 occupying the most significant slot of each group.
	key := Interleave([]uint32{3, 5}, 3)
	if got, _ := key.Uint64(); got != 27 {
		t.Fatalf("Interleave((3,5),3) = %d, want 27", got)
	}
}

func TestInterleaveRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		d := 1 + rng.Intn(8)
		k := 1 + rng.Intn(16)
		coords := make([]uint32, d)
		for i := range coords {
			coords[i] = uint32(rng.Intn(1 << uint(k)))
		}
		key := Interleave(coords, k)
		back := Deinterleave(key, d, k)
		for i := range coords {
			if back[i] != coords[i] {
				t.Fatalf("roundtrip d=%d k=%d: coords %v -> %v", d, k, coords, back)
			}
		}
	}
}

func TestInterleaveOrderMatchesZOrder2D(t *testing.T) {
	// In 2-d with k=2 the Z order of cells (x1 is the high bit of each
	// group) visits (0,0),(0,1),(1,0),(1,1),(0,2),(0,3),... Verify keys
	// are unique and cover [0, 2^(dk)).
	seen := make(map[uint64]bool)
	for x1 := uint32(0); x1 < 4; x1++ {
		for x2 := uint32(0); x2 < 4; x2++ {
			v, ok := Interleave([]uint32{x1, x2}, 2).Uint64()
			if !ok {
				t.Fatal("key does not fit")
			}
			if seen[v] {
				t.Fatalf("duplicate key %d", v)
			}
			seen[v] = true
			if v >= 16 {
				t.Fatalf("key %d out of range", v)
			}
		}
	}
	if len(seen) != 16 {
		t.Fatalf("expected 16 distinct keys, got %d", len(seen))
	}
}

func TestInterleaveMonotoneInCoordinates(t *testing.T) {
	// Increasing any single coordinate strictly increases the key when all
	// other coordinates are held fixed (true for bit interleaving).
	f := func(a, b uint16, other uint16) bool {
		x, y := uint32(a), uint32(b)
		if x == y {
			return true
		}
		if x > y {
			x, y = y, x
		}
		k1 := Interleave([]uint32{x, uint32(other)}, 16)
		k2 := Interleave([]uint32{y, uint32(other)}, 16)
		return k1.Less(k2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
