// Package sfcarray implements the paper's "SFC array": the dynamic ordered
// data structure that stores indexed points sorted by their space-filling-
// curve keys (Section 2). The paper notes it "could be implemented using
// any dynamic unidimensional data structure such as a binary tree or a skip
// list"; both are provided — a randomized treap and a skip list — behind a
// common interface, so the choice can be benchmarked (experiment E10).
//
// Entries are (key, id) pairs; several ids may share one key (distinct
// subscriptions can map to the same cell). Every operation the dominance
// search needs — insert, delete and "is there anything in this key range,
// and if so give me one" — costs O(log n) expected time, which is why a
// run probe is cheap regardless of the run's length.
package sfcarray

import (
	"fmt"

	"sfccover/internal/bits"
)

// Index is a dynamic ordered multiset of (key, id) entries.
type Index interface {
	// Insert adds an entry. Duplicate (key, id) pairs are allowed and
	// stored separately.
	Insert(k bits.Key, id uint64)
	// Delete removes one entry matching (key, id) exactly, reporting
	// whether one was found.
	Delete(k bits.Key, id uint64) bool
	// FirstInRange returns the id of the entry with the smallest key in
	// [lo, hi] (ties broken by smallest id). ok is false when the range is
	// empty. This single probe is the unit of cost in the paper's analysis:
	// one run access.
	FirstInRange(lo, hi bits.Key) (id uint64, ok bool)
	// VisitRange calls visit for every entry with key in [lo, hi] in
	// ascending (key, id) order, stopping early if visit returns false.
	VisitRange(lo, hi bits.Key, visit func(k bits.Key, id uint64) bool)
	// InsertSorted adds a batch of entries that the caller has already
	// sorted in ascending (key, id) order, exploiting the order to beat
	// len(keys) independent Inserts: a cold structure is built bottom-up
	// and a warm one is merged in a single pass instead of one descent per
	// entry. Passing an unsorted batch corrupts the structure. ids aligns
	// with keys.
	InsertSorted(keys []bits.Key, ids []uint64)
	// Len returns the number of entries stored.
	Len() int
}

// New constructs an index implementation by name: "treap" or "skiplist".
// The seed makes the structure's internal randomness reproducible.
func New(impl string, seed int64) (Index, error) {
	switch impl {
	case "treap":
		return NewTreap(seed), nil
	case "skiplist":
		return NewSkipList(seed), nil
	default:
		return nil, fmt.Errorf("sfcarray: unknown implementation %q", impl)
	}
}

// EntryLess orders entries by key, then id, giving a strict total order on
// (key, id) pairs.
func EntryLess(k1 bits.Key, id1 uint64, k2 bits.Key, id2 uint64) bool {
	switch k1.Cmp(k2) {
	case -1:
		return true
	case 1:
		return false
	default:
		return id1 < id2
	}
}
