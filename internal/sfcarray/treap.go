package sfcarray

import (
	"math/rand"

	"sfccover/internal/bits"
)

// Treap is a randomized balanced binary search tree over (key, id) entries:
// a BST in (key, id) order that is simultaneously a max-heap in random
// priorities, giving O(log n) expected depth for every operation.
// The zero value is not usable; construct with NewTreap.
type Treap struct {
	root *treapNode
	rng  *rand.Rand
	size int
}

type treapNode struct {
	key         bits.Key
	id          uint64
	prio        uint64
	left, right *treapNode
}

// NewTreap returns an empty treap whose rebalancing coin flips are driven
// by the given seed (deterministic across runs).
func NewTreap(seed int64) *Treap {
	return &Treap{rng: rand.New(rand.NewSource(seed))}
}

var _ Index = (*Treap)(nil)

// Len implements Index.
func (t *Treap) Len() int { return t.size }

// Insert implements Index.
func (t *Treap) Insert(k bits.Key, id uint64) {
	t.root = t.insert(t.root, &treapNode{key: k, id: id, prio: t.rng.Uint64()})
	t.size++
}

func (t *Treap) insert(n, nw *treapNode) *treapNode {
	if n == nil {
		return nw
	}
	if EntryLess(nw.key, nw.id, n.key, n.id) {
		n.left = t.insert(n.left, nw)
		if n.left.prio > n.prio {
			n = rotateRight(n)
		}
	} else {
		n.right = t.insert(n.right, nw)
		if n.right.prio > n.prio {
			n = rotateLeft(n)
		}
	}
	return n
}

func rotateRight(n *treapNode) *treapNode {
	l := n.left
	n.left = l.right
	l.right = n
	return l
}

func rotateLeft(n *treapNode) *treapNode {
	r := n.right
	n.right = r.left
	r.left = n
	return r
}

// InsertSorted implements Index: the batch is assembled into a treap of
// its own in O(len) time with the rightmost-spine construction (possible
// only because the batch is sorted), then merged into the held treap with
// a split-based union — O(m log(n/m)) when the batch occupies a key range
// disjoint from most of the tree, which is the bulk-load and slice-
// migration case.
func (t *Treap) InsertSorted(keys []bits.Key, ids []uint64) {
	t.root = unionTreap(t.root, t.buildSorted(keys, ids))
	t.size += len(keys)
}

// buildSorted builds a treap from entries in ascending (key, id) order by
// maintaining the rightmost spine as a stack of decreasing priorities:
// each new node pops the spine's smaller-priority tail, adopts it as a
// left subtree, and becomes the new spine tip. Every node is pushed and
// popped at most once, so the build is O(len).
func (t *Treap) buildSorted(keys []bits.Key, ids []uint64) *treapNode {
	var spine []*treapNode
	for i := range keys {
		n := &treapNode{key: keys[i], id: ids[i], prio: t.rng.Uint64()}
		var popped *treapNode
		for len(spine) > 0 && spine[len(spine)-1].prio < n.prio {
			popped = spine[len(spine)-1]
			spine = spine[:len(spine)-1]
		}
		n.left = popped
		if len(spine) > 0 {
			spine[len(spine)-1].right = n
		}
		spine = append(spine, n)
	}
	if len(spine) == 0 {
		return nil
	}
	return spine[0]
}

// splitTreap splits n into the entries sorting strictly before (k, id) and
// the rest, preserving heap order in both halves.
func splitTreap(n *treapNode, k bits.Key, id uint64) (l, r *treapNode) {
	if n == nil {
		return nil, nil
	}
	if EntryLess(n.key, n.id, k, id) {
		n.right, r = splitTreap(n.right, k, id)
		return n, r
	}
	l, n.left = splitTreap(n.left, k, id)
	return l, n
}

// unionTreap merges two treaps over arbitrary (possibly interleaved) key
// ranges: the higher-priority root wins, the other treap is split around
// it, and the halves merge into its subtrees.
func unionTreap(a, b *treapNode) *treapNode {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if a.prio < b.prio {
		a, b = b, a
	}
	l, r := splitTreap(b, a.key, a.id)
	a.left = unionTreap(a.left, l)
	a.right = unionTreap(a.right, r)
	return a
}

// Delete implements Index.
func (t *Treap) Delete(k bits.Key, id uint64) bool {
	var deleted bool
	t.root, deleted = t.delete(t.root, k, id)
	if deleted {
		t.size--
	}
	return deleted
}

func (t *Treap) delete(n *treapNode, k bits.Key, id uint64) (*treapNode, bool) {
	if n == nil {
		return nil, false
	}
	var deleted bool
	switch {
	case EntryLess(k, id, n.key, n.id):
		n.left, deleted = t.delete(n.left, k, id)
	case EntryLess(n.key, n.id, k, id):
		n.right, deleted = t.delete(n.right, k, id)
	default:
		// Found: rotate down until a child slot frees up.
		switch {
		case n.left == nil:
			return n.right, true
		case n.right == nil:
			return n.left, true
		case n.left.prio > n.right.prio:
			n = rotateRight(n)
			n.right, deleted = t.delete(n.right, k, id)
		default:
			n = rotateLeft(n)
			n.left, deleted = t.delete(n.left, k, id)
		}
	}
	return n, deleted
}

// FirstInRange implements Index with a single root-to-leaf descent.
//
//sfc:hotpath
func (t *Treap) FirstInRange(lo, hi bits.Key) (uint64, bool) {
	var best *treapNode
	for n := t.root; n != nil; {
		if n.key.Cmp(lo) >= 0 {
			best = n // candidate; smaller keys may exist on the left
			n = n.left
		} else {
			n = n.right
		}
	}
	if best == nil || best.key.Cmp(hi) > 0 {
		return 0, false
	}
	return best.id, true
}

// VisitRange implements Index by in-order traversal with subtree pruning.
func (t *Treap) VisitRange(lo, hi bits.Key, visit func(bits.Key, uint64) bool) {
	t.visit(t.root, lo, hi, visit)
}

func (t *Treap) visit(n *treapNode, lo, hi bits.Key, visit func(bits.Key, uint64) bool) bool {
	if n == nil {
		return true
	}
	if n.key.Cmp(lo) >= 0 {
		if !t.visit(n.left, lo, hi, visit) {
			return false
		}
	}
	if n.key.Cmp(lo) >= 0 && n.key.Cmp(hi) <= 0 {
		if !visit(n.key, n.id) {
			return false
		}
	}
	if n.key.Cmp(hi) <= 0 {
		if !t.visit(n.right, lo, hi, visit) {
			return false
		}
	}
	return true
}
