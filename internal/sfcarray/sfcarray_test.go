package sfcarray

import (
	"math/rand"
	"sort"
	"testing"

	"sfccover/internal/bits"
)

// refModel is a trivially correct reference implementation used to validate
// both real implementations under random operation sequences.
type refModel struct {
	entries []refEntry
}

type refEntry struct {
	key bits.Key
	id  uint64
}

func (m *refModel) Insert(k bits.Key, id uint64) {
	m.entries = append(m.entries, refEntry{k, id})
	sort.Slice(m.entries, func(i, j int) bool {
		return EntryLess(m.entries[i].key, m.entries[i].id, m.entries[j].key, m.entries[j].id)
	})
}

func (m *refModel) Delete(k bits.Key, id uint64) bool {
	for i, e := range m.entries {
		if e.key.Equal(k) && e.id == id {
			m.entries = append(m.entries[:i], m.entries[i+1:]...)
			return true
		}
	}
	return false
}

func (m *refModel) FirstInRange(lo, hi bits.Key) (uint64, bool) {
	for _, e := range m.entries {
		if e.key.Cmp(lo) >= 0 {
			if e.key.Cmp(hi) <= 0 {
				return e.id, true
			}
			return 0, false
		}
	}
	return 0, false
}

func (m *refModel) VisitRange(lo, hi bits.Key, visit func(bits.Key, uint64) bool) {
	for _, e := range m.entries {
		if e.key.Cmp(lo) >= 0 && e.key.Cmp(hi) <= 0 {
			if !visit(e.key, e.id) {
				return
			}
		}
	}
}

func (m *refModel) Len() int { return len(m.entries) }

func implementations(t *testing.T) map[string]Index {
	t.Helper()
	treap, err := New("treap", 1)
	if err != nil {
		t.Fatal(err)
	}
	sl, err := New("skiplist", 1)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Index{"treap": treap, "skiplist": sl}
}

func TestNewUnknownImpl(t *testing.T) {
	if _, err := New("btree", 1); err == nil {
		t.Fatal("unknown implementation must fail")
	}
}

func TestBasicInsertFind(t *testing.T) {
	for name, idx := range implementations(t) {
		t.Run(name, func(t *testing.T) {
			k := func(v uint64) bits.Key { return bits.KeyFromUint64(v) }
			idx.Insert(k(10), 1)
			idx.Insert(k(20), 2)
			idx.Insert(k(30), 3)
			if idx.Len() != 3 {
				t.Fatalf("Len = %d", idx.Len())
			}
			if id, ok := idx.FirstInRange(k(15), k(25)); !ok || id != 2 {
				t.Fatalf("FirstInRange(15,25) = %d,%v", id, ok)
			}
			if _, ok := idx.FirstInRange(k(21), k(29)); ok {
				t.Fatal("empty range reported non-empty")
			}
			if id, ok := idx.FirstInRange(k(0), k(100)); !ok || id != 1 {
				t.Fatalf("FirstInRange(0,100) = %d,%v; want smallest key's id", id, ok)
			}
			if !idx.Delete(k(20), 2) {
				t.Fatal("delete existing failed")
			}
			if idx.Delete(k(20), 2) {
				t.Fatal("double delete succeeded")
			}
			if _, ok := idx.FirstInRange(k(15), k(25)); ok {
				t.Fatal("deleted entry still found")
			}
		})
	}
}

func TestDuplicateKeysDistinctIDs(t *testing.T) {
	for name, idx := range implementations(t) {
		t.Run(name, func(t *testing.T) {
			k := bits.KeyFromUint64(42)
			idx.Insert(k, 7)
			idx.Insert(k, 3)
			idx.Insert(k, 9)
			if id, ok := idx.FirstInRange(k, k); !ok || id != 3 {
				t.Fatalf("FirstInRange on duplicates = %d,%v; want smallest id 3", id, ok)
			}
			if !idx.Delete(k, 3) {
				t.Fatal("delete by id failed")
			}
			if id, ok := idx.FirstInRange(k, k); !ok || id != 7 {
				t.Fatalf("after delete: %d,%v; want 7", id, ok)
			}
			if idx.Len() != 2 {
				t.Fatalf("Len = %d, want 2", idx.Len())
			}
		})
	}
}

func TestRandomOpsAgainstReference(t *testing.T) {
	for name := range implementations(t) {
		t.Run(name, func(t *testing.T) {
			idx, err := New(name, 99)
			if err != nil {
				t.Fatal(err)
			}
			ref := &refModel{}
			rng := rand.New(rand.NewSource(123))
			var live []refEntry
			for op := 0; op < 3000; op++ {
				switch {
				case len(live) == 0 || rng.Float64() < 0.5:
					k := bits.KeyFromUint64(uint64(rng.Intn(500)))
					id := uint64(rng.Intn(100))
					idx.Insert(k, id)
					ref.Insert(k, id)
					live = append(live, refEntry{k, id})
				case rng.Float64() < 0.6:
					i := rng.Intn(len(live))
					e := live[i]
					got := idx.Delete(e.key, e.id)
					want := ref.Delete(e.key, e.id)
					if got != want {
						t.Fatalf("op %d: Delete mismatch got=%v want=%v", op, got, want)
					}
					live = append(live[:i], live[i+1:]...)
				default:
					// Delete of a likely-absent entry.
					k := bits.KeyFromUint64(uint64(rng.Intn(500)))
					id := uint64(rng.Intn(100))
					got := idx.Delete(k, id)
					want := ref.Delete(k, id)
					if got != want {
						t.Fatalf("op %d: absent Delete mismatch got=%v want=%v", op, got, want)
					}
					if want {
						for i, e := range live {
							if e.key.Equal(k) && e.id == id {
								live = append(live[:i], live[i+1:]...)
								break
							}
						}
					}
				}
				if idx.Len() != ref.Len() {
					t.Fatalf("op %d: Len mismatch %d vs %d", op, idx.Len(), ref.Len())
				}
				// Random range queries after each op.
				lo := uint64(rng.Intn(500))
				hi := lo + uint64(rng.Intn(100))
				kLo, kHi := bits.KeyFromUint64(lo), bits.KeyFromUint64(hi)
				gotID, gotOK := idx.FirstInRange(kLo, kHi)
				wantID, wantOK := ref.FirstInRange(kLo, kHi)
				if gotOK != wantOK || (gotOK && gotID != wantID) {
					t.Fatalf("op %d: FirstInRange(%d,%d) = (%d,%v), want (%d,%v)",
						op, lo, hi, gotID, gotOK, wantID, wantOK)
				}
			}
		})
	}
}

// dump collects the full (key, id) sequence of an index in visit order.
func dump(idx Index) []refEntry {
	var out []refEntry
	idx.VisitRange(bits.Key{}, bits.LowMask(bits.KeyBits), func(k bits.Key, id uint64) bool {
		out = append(out, refEntry{k, id})
		return true
	})
	return out
}

func TestInsertSortedMatchesReference(t *testing.T) {
	for name := range implementations(t) {
		t.Run(name, func(t *testing.T) {
			idx, err := New(name, 42)
			if err != nil {
				t.Fatal(err)
			}
			ref := &refModel{}
			rng := rand.New(rand.NewSource(5))
			// Warm structure: random item-by-item inserts first, so the
			// sorted batches below merge into existing content.
			for i := 0; i < 300; i++ {
				k := bits.KeyFromUint64(uint64(rng.Intn(1000)))
				id := uint64(i)
				idx.Insert(k, id)
				ref.Insert(k, id)
			}
			// Several sorted batches: interleaved keys, duplicates of both
			// keys and (key, id) pairs already present.
			for batch := 0; batch < 5; batch++ {
				n := 100 + rng.Intn(200)
				entries := make([]refEntry, n)
				for i := range entries {
					entries[i] = refEntry{bits.KeyFromUint64(uint64(rng.Intn(1000))), uint64(rng.Intn(400))}
				}
				sort.Slice(entries, func(i, j int) bool {
					return EntryLess(entries[i].key, entries[i].id, entries[j].key, entries[j].id)
				})
				keys := make([]bits.Key, n)
				ids := make([]uint64, n)
				for i, e := range entries {
					keys[i], ids[i] = e.key, e.id
					ref.Insert(e.key, e.id)
				}
				idx.InsertSorted(keys, ids)
				if idx.Len() != ref.Len() {
					t.Fatalf("batch %d: Len = %d, want %d", batch, idx.Len(), ref.Len())
				}
			}
			got, want := dump(idx), ref.entries
			if len(got) != len(want) {
				t.Fatalf("dump has %d entries, want %d", len(got), len(want))
			}
			for i := range got {
				if !got[i].key.Equal(want[i].key) || got[i].id != want[i].id {
					t.Fatalf("entry %d: got %v, want %v", i, got[i], want[i])
				}
			}
			// The merged structure must still answer range probes and
			// support deletion of batch-loaded entries.
			if !idx.Delete(want[0].key, want[0].id) {
				t.Fatal("cannot delete a bulk-loaded entry")
			}
		})
	}
}

func TestInsertSortedColdBuild(t *testing.T) {
	for name := range implementations(t) {
		t.Run(name, func(t *testing.T) {
			idx, err := New(name, 7)
			if err != nil {
				t.Fatal(err)
			}
			idx.InsertSorted(nil, nil) // empty batch is a no-op
			n := 5000
			keys := make([]bits.Key, n)
			ids := make([]uint64, n)
			for i := 0; i < n; i++ {
				keys[i] = bits.KeyFromUint64(uint64(i * 3))
				ids[i] = uint64(i)
			}
			idx.InsertSorted(keys, ids)
			if idx.Len() != n {
				t.Fatalf("Len = %d, want %d", idx.Len(), n)
			}
			// Cold-built structures must stay efficiently searchable: probe
			// every 97th key and a few misses.
			for i := 0; i < n; i += 97 {
				if id, ok := idx.FirstInRange(keys[i], keys[i]); !ok || id != ids[i] {
					t.Fatalf("FirstInRange(key %d) = %d,%v", i, id, ok)
				}
			}
			if _, ok := idx.FirstInRange(bits.KeyFromUint64(1), bits.KeyFromUint64(2)); ok {
				t.Fatal("found an entry between the stride")
			}
		})
	}
}

func TestVisitRangeOrderAndEarlyStop(t *testing.T) {
	for name, idx := range implementations(t) {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			inserted := make([]refEntry, 0, 200)
			for i := 0; i < 200; i++ {
				k := bits.KeyFromUint64(uint64(rng.Intn(100)))
				id := uint64(i)
				idx.Insert(k, id)
				inserted = append(inserted, refEntry{k, id})
			}
			sort.Slice(inserted, func(i, j int) bool {
				return EntryLess(inserted[i].key, inserted[i].id, inserted[j].key, inserted[j].id)
			})
			lo, hi := bits.KeyFromUint64(20), bits.KeyFromUint64(60)
			var want []refEntry
			for _, e := range inserted {
				if e.key.Cmp(lo) >= 0 && e.key.Cmp(hi) <= 0 {
					want = append(want, e)
				}
			}
			var got []refEntry
			idx.VisitRange(lo, hi, func(k bits.Key, id uint64) bool {
				got = append(got, refEntry{k, id})
				return true
			})
			if len(got) != len(want) {
				t.Fatalf("visited %d entries, want %d", len(got), len(want))
			}
			for i := range got {
				if !got[i].key.Equal(want[i].key) || got[i].id != want[i].id {
					t.Fatalf("entry %d: got %v want %v", i, got[i], want[i])
				}
			}
			// Early stop: visit only 3.
			count := 0
			idx.VisitRange(lo, hi, func(bits.Key, uint64) bool {
				count++
				return count < 3
			})
			if count != 3 {
				t.Fatalf("early stop visited %d, want 3", count)
			}
		})
	}
}

func TestEmptyIndexQueries(t *testing.T) {
	for name, idx := range implementations(t) {
		t.Run(name, func(t *testing.T) {
			if idx.Len() != 0 {
				t.Fatal("new index not empty")
			}
			if _, ok := idx.FirstInRange(bits.KeyFromUint64(0), bits.KeyFromUint64(100)); ok {
				t.Fatal("empty index found something")
			}
			if idx.Delete(bits.KeyFromUint64(5), 1) {
				t.Fatal("delete on empty succeeded")
			}
			visited := false
			idx.VisitRange(bits.KeyFromUint64(0), bits.KeyFromUint64(100), func(bits.Key, uint64) bool {
				visited = true
				return true
			})
			if visited {
				t.Fatal("VisitRange on empty index visited entries")
			}
		})
	}
}

func TestWideKeysBeyond64Bits(t *testing.T) {
	// Keys wider than one word must order correctly.
	for name, idx := range implementations(t) {
		t.Run(name, func(t *testing.T) {
			var hiKey bits.Key
			hiKey = hiKey.SetBit(200, 1)
			loKey := bits.KeyFromUint64(^uint64(0)) // large 64-bit value, still < hiKey
			idx.Insert(hiKey, 2)
			idx.Insert(loKey, 1)
			id, ok := idx.FirstInRange(bits.KeyFromUint64(0), hiKey)
			if !ok || id != 1 {
				t.Fatalf("expected 64-bit key first, got %d,%v", id, ok)
			}
			var lo201 bits.Key
			lo201 = lo201.SetBit(199, 1)
			id, ok = idx.FirstInRange(lo201, hiKey)
			if !ok || id != 2 {
				t.Fatalf("expected wide key, got %d,%v", id, ok)
			}
		})
	}
}
