package sfcarray

import (
	"math/rand"

	"sfccover/internal/bits"
)

const (
	maxLevel = 24
	// pBits controls the level distribution: one extra level per two coin
	// flips of a fair bit, i.e. p = 1/2.
	pBits = 1
)

// SkipList is a classic Pugh skip list over (key, id) entries, the second
// "dynamic unidimensional data structure" the paper suggests for the SFC
// array. Construct with NewSkipList.
type SkipList struct {
	head  *slNode
	level int // highest level currently in use, 1-based
	rng   *rand.Rand
	size  int
}

type slNode struct {
	key  bits.Key
	id   uint64
	next []*slNode
}

// NewSkipList returns an empty skip list with deterministic level draws.
func NewSkipList(seed int64) *SkipList {
	return &SkipList{
		head:  &slNode{next: make([]*slNode, maxLevel)},
		level: 1,
		rng:   rand.New(rand.NewSource(seed)),
	}
}

var _ Index = (*SkipList)(nil)

// Len implements Index.
func (s *SkipList) Len() int { return s.size }

func (s *SkipList) randomLevel() int {
	lvl := 1
	for lvl < maxLevel && s.rng.Int63()&(1<<pBits-1) == 0 {
		lvl++
	}
	return lvl
}

// less reports whether node n sorts strictly before (k, id); nil counts as
// +infinity.
func less(n *slNode, k bits.Key, id uint64) bool {
	if n == nil {
		return false
	}
	return EntryLess(n.key, n.id, k, id)
}

// Insert implements Index.
func (s *SkipList) Insert(k bits.Key, id uint64) {
	update := make([]*slNode, maxLevel)
	x := s.head
	for i := s.level - 1; i >= 0; i-- {
		for less(x.next[i], k, id) {
			x = x.next[i]
		}
		update[i] = x
	}
	lvl := s.randomLevel()
	if lvl > s.level {
		for i := s.level; i < lvl; i++ {
			update[i] = s.head
		}
		s.level = lvl
	}
	n := &slNode{key: k, id: id, next: make([]*slNode, lvl)}
	for i := 0; i < lvl; i++ {
		n.next[i] = update[i].next[i]
		update[i].next[i] = n
	}
	s.size++
}

// InsertSorted implements Index with one monotone merge pass: because the
// batch ascends, the per-level insertion frontier only ever moves forward,
// so the search for entry j resumes where entry j-1's ended instead of
// restarting from the head — O(n + m) node hops overall instead of m
// independent O(log n) descents.
func (s *SkipList) InsertSorted(keys []bits.Key, ids []uint64) {
	if len(keys) == 0 {
		return
	}
	update := make([]*slNode, maxLevel)
	for i := range update {
		update[i] = s.head
	}
	for j := range keys {
		k, id := keys[j], ids[j]
		for i := s.level - 1; i >= 0; i-- {
			x := update[i]
			for less(x.next[i], k, id) {
				x = x.next[i]
			}
			update[i] = x
		}
		lvl := s.randomLevel()
		if lvl > s.level {
			// New levels start at the head; nothing precedes the frontier
			// there yet.
			s.level = lvl
		}
		n := &slNode{key: k, id: id, next: make([]*slNode, lvl)}
		for i := 0; i < lvl; i++ {
			n.next[i] = update[i].next[i]
			update[i].next[i] = n
		}
		s.size++
	}
}

// Delete implements Index.
func (s *SkipList) Delete(k bits.Key, id uint64) bool {
	update := make([]*slNode, maxLevel)
	x := s.head
	for i := s.level - 1; i >= 0; i-- {
		for less(x.next[i], k, id) {
			x = x.next[i]
		}
		update[i] = x
	}
	target := x.next[0]
	if target == nil || !target.key.Equal(k) || target.id != id {
		return false
	}
	for i := 0; i < len(target.next); i++ {
		if update[i].next[i] == target {
			update[i].next[i] = target.next[i]
		}
	}
	for s.level > 1 && s.head.next[s.level-1] == nil {
		s.level--
	}
	s.size--
	return true
}

// seek returns the first node with key >= lo.
func (s *SkipList) seek(lo bits.Key) *slNode {
	x := s.head
	for i := s.level - 1; i >= 0; i-- {
		for x.next[i] != nil && x.next[i].key.Less(lo) {
			x = x.next[i]
		}
	}
	return x.next[0]
}

// FirstInRange implements Index.
//
//sfc:hotpath
func (s *SkipList) FirstInRange(lo, hi bits.Key) (uint64, bool) {
	n := s.seek(lo)
	if n == nil || n.key.Cmp(hi) > 0 {
		return 0, false
	}
	return n.id, true
}

// VisitRange implements Index.
func (s *SkipList) VisitRange(lo, hi bits.Key, visit func(bits.Key, uint64) bool) {
	for n := s.seek(lo); n != nil && n.key.Cmp(hi) <= 0; n = n.next[0] {
		if !visit(n.key, n.id) {
			return
		}
	}
}
