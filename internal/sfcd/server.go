package sfcd

import (
	"bufio"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"

	"sfccover/internal/engine"
	"sfccover/internal/subscription"
)

// Server serves the sfcd protocol on top of one Engine. Connections are
// handled concurrently; within a connection, requests are answered in
// order.
type Server struct {
	eng    *engine.Engine
	schema *subscription.Schema

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer wraps an engine in a protocol server. The server does not own
// the engine: Close stops serving but leaves the engine usable.
func NewServer(eng *engine.Engine) *Server {
	return &Server{
		eng:    eng,
		schema: eng.Schema(),
		conns:  make(map[net.Conn]struct{}),
	}
}

// Listen binds addr (e.g. "127.0.0.1:7421", ":0" for an ephemeral port)
// and starts accepting connections in the background. It returns the bound
// address.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("sfcd: %w", err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return nil, errors.New("sfcd: server is closed")
	}
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.acceptLoop(ln)
	}()
	return ln.Addr(), nil
}

// Serve accepts connections on ln until the listener fails or the server
// is closed. It is the blocking alternative to Listen for callers that
// manage their own listener.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("sfcd: server is closed")
	}
	s.ln = ln
	s.mu.Unlock()
	return s.acceptLoop(ln)
}

func (s *Server) acceptLoop(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("sfcd: accept: %w", err)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handleConn(conn)
		}()
	}
}

// Close stops the listener, drops every open connection and waits for the
// handlers to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
	return nil
}

func (s *Server) dropConn(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	conn.Close()
}

func (s *Server) handleConn(conn net.Conn) {
	defer s.dropConn(conn)
	scanner := bufio.NewScanner(conn)
	scanner.Buffer(make([]byte, 64<<10), MaxLineBytes)
	out := bufio.NewWriter(conn)
	enc := json.NewEncoder(out)
	for scanner.Scan() {
		line := scanner.Bytes()
		if len(line) == 0 {
			continue
		}
		var req Request
		resp := Response{OK: true}
		if err := json.Unmarshal(line, &req); err != nil {
			resp = Response{OK: false, Error: fmt.Sprintf("malformed request: %v", err)}
		} else {
			resp = s.serve(req)
		}
		resp.ID = req.ID
		if err := enc.Encode(&resp); err != nil {
			return
		}
		if err := out.Flush(); err != nil {
			return
		}
	}
}

// serve dispatches one request.
func (s *Server) serve(req Request) Response {
	switch req.Op {
	case "ping":
		return Response{OK: true}
	case "hello":
		return Response{
			OK:        true,
			Bits:      s.schema.Bits(),
			Attrs:     s.schema.Attrs(),
			Shards:    s.eng.NumShards(),
			Partition: string(s.eng.PartitionStrategy()),
			Mode:      s.eng.Mode().String(),
		}
	case "subscribe":
		sub, err := s.decodeSub(req.Payload)
		if err != nil {
			return errResponse(err)
		}
		sid, covered, coveredBy, err := s.eng.Add(sub)
		if err != nil {
			return errResponse(err)
		}
		return Response{OK: true, Result: &Result{SID: sid, Covered: covered, CoveredBy: coveredBy}}
	case "subscribe_batch":
		subs, errs := s.decodeSubs(req.Payloads)
		results := make([]Result, len(subs))
		added := s.eng.AddBatch(compact(subs))
		j := 0
		for i := range subs {
			switch {
			case errs[i] != nil:
				results[i] = Result{Error: errs[i].Error()}
			case added[j].Err != nil:
				results[i] = Result{Error: added[j].Err.Error()}
				j++
			default:
				r := added[j]
				results[i] = Result{SID: r.ID, Covered: r.Covered, CoveredBy: r.CoveredBy}
				j++
			}
		}
		return Response{OK: true, Results: results}
	case "unsubscribe":
		if err := s.eng.Remove(req.SID); err != nil {
			return errResponse(err)
		}
		return Response{OK: true, Result: &Result{SID: req.SID}}
	case "unsubscribe_batch":
		errs := s.eng.RemoveBatch(req.SIDs)
		results := make([]Result, len(errs))
		for i, err := range errs {
			results[i] = Result{SID: req.SIDs[i]}
			if err != nil {
				results[i].Error = err.Error()
			}
		}
		return Response{OK: true, Results: results}
	case "query":
		sub, err := s.decodeSub(req.Payload)
		if err != nil {
			return errResponse(err)
		}
		id, found, _, err := s.eng.FindCover(sub)
		if err != nil {
			return errResponse(err)
		}
		return Response{OK: true, Result: &Result{Covered: found, CoveredBy: id}}
	case "query_batch":
		subs, errs := s.decodeSubs(req.Payloads)
		queried := s.eng.CoverQueryBatch(compact(subs))
		results := make([]Result, len(subs))
		j := 0
		for i := range subs {
			switch {
			case errs[i] != nil:
				results[i] = Result{Error: errs[i].Error()}
			case queried[j].Err != nil:
				results[i] = Result{Error: queried[j].Err.Error()}
				j++
			default:
				results[i] = Result{Covered: queried[j].Covered, CoveredBy: queried[j].CoveredBy}
				j++
			}
		}
		return Response{OK: true, Results: results}
	case "covered":
		sub, err := s.decodeSub(req.Payload)
		if err != nil {
			return errResponse(err)
		}
		id, found, _, err := s.eng.FindCovered(sub)
		if err != nil {
			return errResponse(err)
		}
		return Response{OK: true, Result: &Result{Covered: found, CoveredBy: id}}
	case "match":
		sub, err := s.decodeEventAsSub(req.Payload)
		if err != nil {
			return errResponse(err)
		}
		id, found, _, err := s.eng.FindCover(sub)
		if err != nil {
			return errResponse(err)
		}
		return Response{OK: true, Result: &Result{Covered: found, CoveredBy: id}}
	case "stats":
		ps := s.eng.Stats()
		return Response{OK: true, Stats: &Stats{
			Queries:        ps.Queries,
			Hits:           ps.Hits,
			RunsProbed:     ps.RunsProbed,
			CubesGenerated: ps.CubesGenerated,
			ShardSearches:  ps.ShardSearches,
			Subscriptions:  ps.Subscriptions,
			ShardSizes:     ps.ShardSizes,
			MaxShardSize:   ps.MaxShardSize,
			MinShardSize:   ps.MinShardSize,
			SkewRatio:      ps.SkewRatio,
		}}
	case "metrics":
		return Response{OK: true, Metrics: RenderPrometheus(s.eng.Stats())}
	default:
		return Response{OK: false, Error: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

func errResponse(err error) Response { return Response{OK: false, Error: err.Error()} }

// decodeSub decodes one base64 binary subscription payload.
func (s *Server) decodeSub(payload string) (*subscription.Subscription, error) {
	raw, err := base64.StdEncoding.DecodeString(payload)
	if err != nil {
		return nil, fmt.Errorf("payload is not base64: %w", err)
	}
	return subscription.UnmarshalSubscription(s.schema, raw)
}

// decodeSubs decodes a batch; per-item failures leave a nil subscription
// and a non-nil error at the same index.
func (s *Server) decodeSubs(payloads []string) ([]*subscription.Subscription, []error) {
	subs := make([]*subscription.Subscription, len(payloads))
	errs := make([]error, len(payloads))
	for i, p := range payloads {
		subs[i], errs[i] = s.decodeSub(p)
	}
	return subs, errs
}

// decodeEventAsSub decodes a binary event and lifts it to the degenerate
// subscription that constrains every attribute to the event's value; its
// covers are exactly the subscriptions matching the event.
func (s *Server) decodeEventAsSub(payload string) (*subscription.Subscription, error) {
	raw, err := base64.StdEncoding.DecodeString(payload)
	if err != nil {
		return nil, fmt.Errorf("payload is not base64: %w", err)
	}
	ev, err := subscription.UnmarshalEvent(s.schema, raw)
	if err != nil {
		return nil, err
	}
	sub := subscription.New(s.schema)
	for i, attr := range s.schema.Attrs() {
		if err := sub.SetEq(attr, ev[i]); err != nil {
			return nil, err
		}
	}
	return sub, nil
}

// compact copies the non-nil entries (failed decodes leave holes) so
// batches reach the engine dense.
func compact(subs []*subscription.Subscription) []*subscription.Subscription {
	out := make([]*subscription.Subscription, 0, len(subs))
	for _, s := range subs {
		if s != nil {
			out = append(out, s)
		}
	}
	return out
}
