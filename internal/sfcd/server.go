package sfcd

import (
	"bufio"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"sfccover/internal/core"
	"sfccover/internal/engine"
	"sfccover/internal/obs"
	"sfccover/internal/persist"
	"sfccover/internal/subscription"
)

// ServerConfig parameterizes the daemon's hardening knobs; the zero value
// is fully permissive (no connection limit, no read timeout).
type ServerConfig struct {
	// MaxConns caps concurrently open client connections (0 = unlimited).
	// A connection beyond the cap receives one connection-level error
	// frame (code "conn_limit") and is closed.
	MaxConns int
	// ReadTimeout bounds the wait for the next request line on a
	// connection (0 = none). A connection that stays idle — or stalls
	// mid-line — past the timeout is reaped, freeing its MaxConns slot.
	ReadTimeout time.Duration
}

// connInflight bounds how many of one connection's pipelined requests are
// served concurrently; further lines queue in the read loop. It trades
// goroutine fan-out against the memory of buffered responses.
const connInflight = 32

// Server serves the sfcd protocol on top of one Engine. Connections are
// handled concurrently, and so are the pipelined requests within one
// connection: each request line is dispatched to its own handler (bounded
// by connInflight) and responses are written as they complete — out of
// request order when a slow covering query overlaps a fast ping. Clients
// match responses to requests by id.
//
// Besides the engine — the shared namespace — the server lazily maintains
// one isolated provider per named link (see the package comment on link
// namespaces), built from the engine's detector template.
type Server struct {
	eng    *engine.Engine
	schema *subscription.Schema
	scfg   ServerConfig
	// shared answers the empty-link namespace: the engine itself, or its
	// durable wrapper when the server runs with a store.
	shared core.Provider
	store  *persist.Store

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	linkMu sync.Mutex
	links  map[string]core.Provider

	// obs is adopted from the engine (nil when the engine runs with
	// TelemetryOff): wire-op dispatch latencies are recorded into it, so
	// the daemon's op histograms and the engine's internal stage
	// histograms share one registry and one exposition.
	obs *obs.Observer
	// opLat holds the pre-resolved per-op histograms the request path
	// records into (nil when obs is nil).
	opLat *opHists

	// primary is false while the server is a read-only follower draining
	// a primary's replication stream; Promote flips it (exactly once) to
	// true. The atomic store publishes the hydrated shared provider and
	// links: serve() loads it before touching either, so an op observing
	// true also observes the completed hydration.
	primary atomic.Bool
	// promoteMu serializes Promote against itself and Close.
	promoteMu sync.Mutex
	// followAddr/followStop/followDone bracket the follower tail loop;
	// nil on servers born primary.
	followAddr     string
	followStop     chan struct{}
	followDone     chan struct{}
	stopFollowOnce sync.Once

	// Replication telemetry, rendered by MetricsText. The counters split
	// by side: streamed/followers count the primary serving tails,
	// applied/resets/reconnects count the follower consuming one.
	repStreamed   obs.Counter // records streamed out to followers
	repApplied    obs.Counter // records applied from the primary's stream
	repResets     obs.Counter // full-state resets installed
	repReconnects obs.Counter // stream (re)connect attempts
	repFollowers  obs.Gauge   // live follower streams being served
	repPrimaryPos obs.Gauge   // primary's stream position, as last seen
}

// NewServer wraps an engine in a protocol server with permissive
// hardening defaults. The server does not own the engine: Close stops
// serving but leaves the engine usable.
func NewServer(eng *engine.Engine) *Server {
	return NewServerWith(eng, ServerConfig{})
}

// NewServerWith wraps an engine in a protocol server with the given
// hardening configuration.
func NewServerWith(eng *engine.Engine, cfg ServerConfig) *Server {
	s := &Server{
		eng:    eng,
		schema: eng.Schema(),
		scfg:   cfg,
		shared: eng,
		conns:  make(map[net.Conn]struct{}),
		links:  make(map[string]core.Provider),
		obs:    eng.Observer(),
	}
	if s.obs != nil {
		s.opLat = newOpHists(s.obs.Hist)
	}
	s.primary.Store(true)
	return s
}

// NewPersistentServer wraps an engine in a protocol server whose
// subscription state is durable under the store: the shared engine is
// recovered from (and logs to) the store's empty link, every named link
// namespace recorded in the store is rebuilt eagerly at boot — so a
// restarted daemon serves its full pre-crash state before the first
// request — and links created later log from their first subscription.
// The engine must be freshly built (recovery bulk-loads into it); the
// store must be freshly opened and outlive the server. The caller still
// owns both: Close stops serving without closing engine or store, but it
// does close the recovered link namespaces.
func NewPersistentServer(eng *engine.Engine, store *persist.Store, cfg ServerConfig) (*Server, error) {
	if store.Schema() != eng.Schema() {
		return nil, fmt.Errorf("sfcd: store schema differs from engine schema")
	}
	s := NewServerWith(eng, cfg)
	s.store = store
	if err := s.hydrate(); err != nil {
		return nil, err
	}
	return s, nil
}

// hydrate wraps the engine in the store's shared link and eagerly
// rebuilds every named link namespace the store records — the boot path
// of a persistent primary, and the promotion path of a follower whose
// store just finished draining the stream. On failure everything built
// so far is unwound: the store links are released (a retry over the same
// open store would otherwise hit "already wrapped") and the orphaned
// detectors closed.
func (s *Server) hydrate() error {
	shared, err := s.store.Durable("", s.eng)
	if err != nil {
		return fmt.Errorf("sfcd: recovering shared engine: %w", err)
	}
	s.shared = shared
	for _, link := range s.store.Links() {
		if link == "" {
			continue
		}
		p, err := s.buildLink(link)
		if err != nil {
			s.linkMu.Lock()
			links := s.links
			s.links = make(map[string]core.Provider)
			s.linkMu.Unlock()
			for _, built := range links {
				built.Close()
			}
			shared.Release()
			s.shared = s.eng
			return fmt.Errorf("sfcd: recovering link %q: %w", link, err)
		}
		s.linkMu.Lock()
		s.links[link] = p
		s.linkMu.Unlock()
	}
	return nil
}

// NewFollowerServer wraps an engine in a read-only follower: its store
// tails the primary at primaryAddr (reconnecting with jittered backoff
// across primary deaths) and the engine stays cold until Promote, which
// stops the stream and hydrates the engine from the drained store.
// Until then every state-touching op answers with code "not_primary";
// ping, hello, promote, replicate (chained followers) and the shared
// metrics page are served. The engine must be freshly built and the
// store freshly opened with no providers wrapped; the caller owns both,
// as with NewPersistentServer.
func NewFollowerServer(eng *engine.Engine, store *persist.Store, cfg ServerConfig, primaryAddr string) (*Server, error) {
	if store.Schema() != eng.Schema() {
		return nil, fmt.Errorf("sfcd: store schema differs from engine schema")
	}
	s := NewServerWith(eng, cfg)
	s.store = store
	s.primary.Store(false)
	s.followAddr = primaryAddr
	s.followStop = make(chan struct{})
	s.followDone = make(chan struct{})
	go s.followLoop()
	return s, nil
}

// Promote flips a follower to primary: the tail loop is stopped (the
// frame being applied completes first, so the stream is drained of
// everything received), the engine is hydrated from the store, and the
// full op surface opens. Idempotent on a primary. On hydration failure
// the server stays a follower with its stream stopped; Promote can be
// retried.
func (s *Server) Promote() error {
	s.promoteMu.Lock()
	defer s.promoteMu.Unlock()
	if s.primary.Load() {
		return nil
	}
	s.stopFollow()
	if err := s.hydrate(); err != nil {
		return err
	}
	s.primary.Store(true)
	return nil
}

// Role reports RolePrimary or RoleFollower.
func (s *Server) Role() string {
	if s.primary.Load() {
		return RolePrimary
	}
	return RoleFollower
}

// stopFollow ends the tail loop and waits for it. Safe to call multiple
// times and on servers born primary (no-op).
func (s *Server) stopFollow() {
	if s.followStop == nil {
		return
	}
	s.stopFollowOnce.Do(func() { close(s.followStop) })
	<-s.followDone
}

// SharedProvider returns the provider behind the empty-link namespace:
// the engine itself, or its durable wrapper on a persistent server.
// Metrics endpoints render from it so durability counters are visible.
func (s *Server) SharedProvider() core.Provider { return s.shared }

// Listen binds addr (e.g. "127.0.0.1:7421", ":0" for an ephemeral port)
// and starts accepting connections in the background. It returns the bound
// address.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("sfcd: %w", err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return nil, errors.New("sfcd: server is closed")
	}
	s.ln = ln
	s.wg.Add(1) // under s.mu: see the comment in acceptLoop
	s.mu.Unlock()
	go func() {
		defer s.wg.Done()
		s.acceptLoop(ln)
	}()
	return ln.Addr(), nil
}

// Serve accepts connections on ln until the listener fails or the server
// is closed. It is the blocking alternative to Listen for callers that
// manage their own listener.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("sfcd: server is closed")
	}
	s.ln = ln
	s.mu.Unlock()
	return s.acceptLoop(ln)
}

func (s *Server) acceptLoop(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("sfcd: accept: %w", err)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		if s.scfg.MaxConns > 0 && len(s.conns) >= s.scfg.MaxConns {
			// wg.Add must happen while s.mu still proves !s.closed: Close
			// sets closed under the same lock before wg.Wait, so Adding
			// here can never race a Wait that already observed zero.
			s.wg.Add(1)
			s.mu.Unlock()
			// Off the accept loop: refuse waits (bounded) for the client's
			// hello, and a dialer that sends nothing must not stall accepts.
			go func() {
				defer s.wg.Done()
				refuse(conn, s.scfg.MaxConns)
			}()
			continue
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.handleConn(conn)
		}()
	}
}

// refuse answers an over-limit connection with one clean connection-level
// error frame (id 0) and closes it, so clients fail with a diagnosis
// instead of a dropped connection. It consumes the client's first line
// (the hello) before closing: closing with unread data in the receive
// buffer provokes a TCP reset that can discard the error frame before
// the client reads it.
func refuse(conn net.Conn, limit int) {
	defer conn.Close()
	deadline := time.Now().Add(time.Second)
	conn.SetWriteDeadline(deadline)
	frame := Response{
		OK:    false,
		Code:  CodeConnLimit,
		Error: fmt.Sprintf("connection limit %d reached", limit),
	}
	line, err := json.Marshal(&frame)
	if err != nil {
		return
	}
	if _, err := conn.Write(append(line, '\n')); err != nil {
		return
	}
	conn.SetReadDeadline(deadline)
	br := bufio.NewReaderSize(conn, 4<<10)
	br.ReadString('\n') //nolint:errcheck // drain the hello, best effort
}

// Close stops the listener, drops every open connection, waits for the
// handlers to drain and releases the link-namespace providers.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.stopFollow()
	s.wg.Wait()
	s.linkMu.Lock()
	links := s.links
	s.links = make(map[string]core.Provider)
	s.linkMu.Unlock()
	for _, p := range links {
		p.Close()
	}
	if d, ok := s.shared.(*persist.DurableProvider); ok {
		// The engine is not ours to close, but the store link must be
		// released so a successor server can re-wrap it.
		d.Release()
	}
	return nil
}

func (s *Server) dropConn(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	conn.Close()
}

// connResponse is one writer-queue entry; closeAfter marks a
// connection-level (id 0) error frame, after which the connection dies.
type connResponse struct {
	resp       *Response
	closeAfter bool
}

// connState is the per-connection context handlers work against: the
// writer queue, plus what the one streaming op (replicate) needs — a
// signal that the read loop exited (the stream's cancellation) and a
// flag exempting the connection from idle reaping while it streams (a
// follower sends nothing after its replicate line, which is not idleness).
type connState struct {
	conn       net.Conn
	respCh     chan connResponse
	readerGone chan struct{}
	streaming  atomic.Bool
}

// handleConn pumps one connection: the read loop dispatches each request
// line to a pool of handler workers (grown on demand up to connInflight —
// persistent workers keep warmed-up stacks across requests, while an idle
// connection holds only what its pipelining depth ever needed), and a
// writer goroutine serializes the responses back, flushing only when its
// queue runs dry so bursts of pipelined completions share syscalls.
func (s *Server) handleConn(conn net.Conn) {
	defer s.dropConn(conn)
	cs := &connState{
		conn:       conn,
		respCh:     make(chan connResponse, connInflight),
		readerGone: make(chan struct{}),
	}
	respCh := cs.respCh
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		w := bufio.NewWriter(conn)
		enc := json.NewEncoder(w)
		broken := false
		for out := range respCh {
			if broken {
				continue // drain so handlers never block on a dead conn
			}
			if err := enc.Encode(out.resp); err != nil {
				broken = true
				continue
			}
			if out.closeAfter {
				// A connection-level error frame: flush it, then tear the
				// connection down as the protocol promises.
				w.Flush() //nolint:errcheck // the connection dies either way
				conn.Close()
				broken = true
				continue
			}
			if len(respCh) == 0 {
				// Give concurrently completing handlers one scheduler pass
				// to join this flush (see the client's writeLoop).
				runtime.Gosched()
			}
			if len(respCh) == 0 {
				if err := w.Flush(); err != nil {
					broken = true
				}
			}
		}
	}()

	lines := make(chan []byte) // unbuffered: a send means a worker has it
	var handlers sync.WaitGroup
	workers := 0
	scanner := bufio.NewScanner(conn)
	scanner.Buffer(make([]byte, 64<<10), MaxLineBytes)
	for {
		if s.scfg.ReadTimeout > 0 && !cs.streaming.Load() {
			conn.SetReadDeadline(time.Now().Add(s.scfg.ReadTimeout))
		}
		if !scanner.Scan() {
			break
		}
		if len(scanner.Bytes()) == 0 {
			continue
		}
		line := append([]byte(nil), scanner.Bytes()...) // Scan reuses its buffer
		select {
		case lines <- line: // an idle worker took it
		default:
			if workers < connInflight {
				workers++
				handlers.Add(1)
				go func() {
					defer handlers.Done()
					for l := range lines {
						s.handleLine(l, cs)
					}
				}()
			}
			lines <- line
		}
	}
	close(cs.readerGone) // cancels any replicate stream on this connection
	close(lines)
	handlers.Wait()
	close(respCh)
	<-writerDone
}

// handleLine parses and serves one request line, queueing the response
// (or, for the streaming replicate op, every frame of the stream) on the
// connection's writer. Lines the server cannot parse — and requests
// carrying the reserved id 0 — get a connection-level error frame: the
// response cannot be attributed to a request id, and a pipelining client
// must treat an id-0 frame as fatal (a stray one would otherwise poison
// response demultiplexing), so the connection is closed after it.
//
//sfc:hotpath
func (s *Server) handleLine(line []byte, cs *connState) {
	var req Request
	if err := json.Unmarshal(line, &req); err != nil {
		cs.respCh <- connResponse{
			resp:       &Response{OK: false, Code: CodeBadRequest, Error: fmt.Sprintf("malformed request: %v", err)},
			closeAfter: true,
		}
		return
	}
	if req.ID == 0 {
		cs.respCh <- connResponse{
			resp:       &Response{OK: false, Code: CodeBadRequest, Error: "request id 0 is reserved for connection-level frames"},
			closeAfter: true,
		}
		return
	}
	if req.Op == "replicate" {
		// The one streaming op: many response lines per request, open
		// until the stream ends. It occupies this worker slot for the
		// connection's lifetime and is not per-op latency metered (a
		// stream's duration is not a latency).
		s.serveReplicate(req, cs)
		return
	}
	var t0 time.Time
	if s.obs != nil {
		//sfc:allowclock one clock pair per request is the op histogram's contract: it times every daemon op exactly
		t0 = time.Now()
	}
	resp := s.serve(req)
	if s.obs != nil {
		//sfc:allowclock pairs with the t0 read above; the histogram itself is pre-resolved, not fetched
		s.opLat.observe(req.Op, time.Since(t0))
	}
	resp.ID = req.ID
	cs.respCh <- connResponse{resp: resp}
}

// linkSeed derives a link namespace's index seed from the engine
// template's, so distinct links build independent index randomness.
func linkSeed(base int64, link string) int64 {
	h := fnv.New64a()
	h.Write([]byte(link)) //nolint:errcheck // fnv never fails
	return base ^ int64(h.Sum64())
}

// buildLink constructs one named link namespace from the engine's
// detector template, durably wrapped when the server runs with a store.
func (s *Server) buildLink(link string) (core.Provider, error) {
	dc := s.eng.Config().Detector
	dc.Seed = linkSeed(dc.Seed, link)
	p, err := core.New(dc)
	if err != nil {
		return nil, err
	}
	if s.obs != nil {
		// Link detectors share the daemon's observer, so their run probes
		// land in the same "run_probe" histogram. Safe here: the detector
		// is not yet published to any other goroutine.
		p.SetObserver(s.obs)
	}
	if s.store == nil {
		return p, nil
	}
	d, err := s.store.Durable(link, p)
	if err != nil {
		p.Close()
		return nil, err
	}
	return d, nil
}

// provider resolves the namespace a request addresses: the shared engine
// for the empty link, a lazily created detector — cloned from the
// engine's template configuration — for any other.
func (s *Server) provider(link string) (core.Provider, error) {
	if link == "" {
		return s.shared, nil
	}
	s.linkMu.Lock()
	defer s.linkMu.Unlock()
	if p, ok := s.links[link]; ok {
		return p, nil
	}
	p, err := s.buildLink(link)
	if err != nil {
		return nil, fmt.Errorf("building link %q: %w", link, err)
	}
	s.links[link] = p
	return p, nil
}

// unlink tears a link namespace down; unknown links succeed (idempotent).
// On a persistent server unlink releases only the in-memory index: the
// namespace's durable state survives and the link rematerializes from it
// — subscriptions included — on its next use, which is what lets clients
// release runtime resources without forfeiting durability. (Destroying
// durable state is persist.DurableProvider.Purge, a store-owner
// decision, not a wire operation.)
func (s *Server) unlink(link string) *Response {
	if link == "" {
		return &Response{OK: false, Code: CodeBadRequest, Error: "cannot unlink the shared engine"}
	}
	s.linkMu.Lock()
	p, ok := s.links[link]
	delete(s.links, link)
	s.linkMu.Unlock()
	if ok {
		p.Close()
	}
	return &Response{OK: true}
}

// serve dispatches one request.
func (s *Server) serve(req Request) *Response {
	if !s.primary.Load() {
		// A follower's engine is cold: its state lives only in the store
		// mirror until promotion hydrates it. Refuse everything that
		// would touch (or lazily build) a provider; what remains is
		// liveness (ping, hello), the promotion trigger, the shared
		// metrics page and — for chained followers — the stream itself,
		// which reads the store, not the engine.
		switch req.Op {
		case "ping", "hello", "promote":
		case "metrics":
			if req.Link != "" {
				return &Response{OK: false, Code: CodeNotPrimary, Error: "daemon is a follower; link metrics are served by the primary"}
			}
			return &Response{OK: true, Metrics: s.MetricsText()}
		default:
			return &Response{OK: false, Code: CodeNotPrimary, Error: "daemon is a follower; promote it or address the primary"}
		}
	}
	switch req.Op {
	case "ping":
		return &Response{OK: true}
	case "hello":
		return &Response{
			OK:        true,
			Bits:      s.schema.Bits(),
			Attrs:     s.schema.Attrs(),
			Shards:    s.eng.NumShards(),
			Partition: string(s.eng.PartitionStrategy()),
			Mode:      s.eng.Mode().String(),
			Role:      s.Role(),
		}
	case "promote":
		if s.store == nil {
			return &Response{OK: false, Code: CodeUnsupported, Error: "daemon runs without a data dir"}
		}
		if err := s.Promote(); err != nil {
			return errResponse(err)
		}
		return &Response{OK: true, Role: s.Role()}
	case "unlink":
		return s.unlink(req.Link)
	case "trace":
		return s.trace(req)
	case "slowlog":
		return s.slowlog(req)
	}
	prov, err := s.provider(req.Link)
	if err != nil {
		return errResponse(err)
	}
	switch req.Op {
	case "subscribe":
		sub, err := s.decodeSub(req.Payload)
		if err != nil {
			return badRequest(err)
		}
		sid, covered, coveredBy, err := prov.Add(sub)
		if err != nil {
			return errResponse(err)
		}
		return &Response{OK: true, Result: &Result{SID: sid, Covered: covered, CoveredBy: coveredBy}}
	case "insert":
		sub, err := s.decodeSub(req.Payload)
		if err != nil {
			return badRequest(err)
		}
		sid, err := prov.Insert(sub)
		if err != nil {
			return errResponse(err)
		}
		return &Response{OK: true, Result: &Result{SID: sid}}
	case "subscribe_batch":
		subs, errs := s.decodeSubs(req.Payloads)
		return &Response{OK: true, Results: s.addBatch(prov, subs, errs)}
	case "unsubscribe":
		if err := prov.Remove(req.SID); err != nil {
			return errResponse(err)
		}
		return &Response{OK: true, Result: &Result{SID: req.SID}}
	case "unsubscribe_batch":
		results := make([]Result, len(req.SIDs))
		errs := removeBatch(prov, req.SIDs)
		for i, err := range errs {
			results[i] = Result{SID: req.SIDs[i]}
			if err != nil {
				results[i].Error = err.Error()
			}
		}
		return &Response{OK: true, Results: results}
	case "query":
		sub, err := s.decodeSub(req.Payload)
		if err != nil {
			return badRequest(err)
		}
		id, found, _, err := prov.FindCover(sub)
		if err != nil {
			return errResponse(err)
		}
		return &Response{OK: true, Result: &Result{Covered: found, CoveredBy: id}}
	case "query_batch":
		subs, errs := s.decodeSubs(req.Payloads)
		queried := core.CoverQueries(prov, compact(subs))
		results := make([]Result, len(subs))
		j := 0
		for i := range subs {
			switch {
			case errs[i] != nil:
				results[i] = Result{Error: errs[i].Error()}
			case queried[j].Err != nil:
				results[i] = Result{Error: queried[j].Err.Error()}
				j++
			default:
				results[i] = Result{Covered: queried[j].Covered, CoveredBy: queried[j].CoveredBy}
				j++
			}
		}
		return &Response{OK: true, Results: results}
	case "covered":
		sub, err := s.decodeSub(req.Payload)
		if err != nil {
			return badRequest(err)
		}
		id, found, _, err := prov.FindCovered(sub)
		if err != nil {
			return errResponse(err)
		}
		return &Response{OK: true, Result: &Result{Covered: found, CoveredBy: id}}
	case "get":
		sub, ok := prov.Subscription(req.SID)
		if !ok {
			return &Response{OK: false, Code: CodeOpFailed, Error: fmt.Sprintf("no subscription with id %d", req.SID)}
		}
		raw, err := sub.MarshalBinary()
		if err != nil {
			return errResponse(err)
		}
		return &Response{OK: true, Result: &Result{
			SID: req.SID, Payload: base64.StdEncoding.EncodeToString(raw),
		}}
	case "match":
		sub, err := s.decodeEventAsSub(req.Payload)
		if err != nil {
			return badRequest(err)
		}
		id, found, _, err := prov.FindCover(sub)
		if err != nil {
			return errResponse(err)
		}
		return &Response{OK: true, Result: &Result{Covered: found, CoveredBy: id}}
	case "stats":
		ps := prov.Stats()
		return &Response{OK: true, Stats: &Stats{
			Queries:           ps.Queries,
			Hits:              ps.Hits,
			RunsProbed:        ps.RunsProbed,
			CubesGenerated:    ps.CubesGenerated,
			ShardSearches:     ps.ShardSearches,
			DecompCacheHits:   ps.DecompCacheHits,
			DecompCacheMisses: ps.DecompCacheMisses,
			Subscriptions:     ps.Subscriptions,
			ShardSizes:        ps.ShardSizes,
			MaxShardSize:      ps.MaxShardSize,
			MinShardSize:      ps.MinShardSize,
			SkewRatio:         ps.SkewRatio,
			Rebalances:        ps.Rebalances,
			BoundaryMoves:     ps.BoundaryMoves,
			MigratedEntries:   ps.MigratedEntries,
			Snapshots:         ps.Snapshots,
			WALRecords:        ps.WALRecords,
			WALBytes:          ps.WALBytes,
		}}
	case "rebalance":
		rb, ok := prov.(core.Rebalancer)
		if !ok {
			return &Response{OK: false, Code: CodeUnsupported, Error: "provider does not support rebalancing"}
		}
		res, err := rb.Rebalance()
		if err != nil {
			if errors.Is(err, core.ErrRebalanceUnsupported) {
				return &Response{OK: false, Code: CodeUnsupported, Error: err.Error()}
			}
			return errResponse(err)
		}
		return &Response{OK: true, Rebalance: &RebalanceInfo{
			Moves:      res.Moves,
			Migrated:   res.Migrated,
			SkewBefore: res.SkewBefore,
			SkewAfter:  res.SkewAfter,
		}}
	case "snapshot":
		ps, ok := prov.(core.Persister)
		if !ok {
			return &Response{OK: false, Code: CodeUnsupported, Error: "daemon runs without a data dir"}
		}
		if err := ps.Snapshot(); err != nil {
			return errResponse(err)
		}
		return &Response{OK: true}
	case "metrics":
		if req.Link == "" {
			// The shared namespace gets the full daemon page: scalar
			// counters plus latency histograms and per-link gauges.
			return &Response{OK: true, Metrics: s.MetricsText()}
		}
		return &Response{OK: true, Metrics: RenderPrometheus(prov.Stats())}
	default:
		return &Response{OK: false, Code: CodeUnknownOp, Error: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

// addBatch runs the arrival path for a decoded batch against any
// provider, through the core.BatchWriter capability when the provider has
// one (the engine's parallel queries and shard-grouped bulk insert) and
// one Add at a time otherwise. Results align with the request payloads;
// decode failures occupy their slots.
func (s *Server) addBatch(prov core.Provider, subs []*subscription.Subscription, errs []error) []Result {
	results := make([]Result, len(subs))
	added := core.AddAll(prov, compact(subs))
	j := 0
	for i := range subs {
		switch {
		case errs[i] != nil:
			results[i] = Result{Error: errs[i].Error()}
		case added[j].Err != nil:
			results[i] = Result{Error: added[j].Err.Error()}
			j++
		default:
			r := added[j]
			results[i] = Result{SID: r.ID, Covered: r.Covered, CoveredBy: r.CoveredBy}
			j++
		}
	}
	return results
}

// removeBatch deletes a batch of ids through the provider's batch
// capability when available, one at a time otherwise.
func removeBatch(prov core.Provider, sids []uint64) []error {
	return core.RemoveAll(prov, sids)
}

func errResponse(err error) *Response {
	return &Response{OK: false, Code: CodeOpFailed, Error: err.Error()}
}

func badRequest(err error) *Response {
	return &Response{OK: false, Code: CodeBadRequest, Error: err.Error()}
}

// decodeSubPayload decodes one base64 binary subscription payload against
// a schema.
func decodeSubPayload(schema *subscription.Schema, payload string) (*subscription.Subscription, error) {
	raw, err := base64.StdEncoding.DecodeString(payload)
	if err != nil {
		return nil, fmt.Errorf("payload is not base64: %w", err)
	}
	return subscription.UnmarshalSubscription(schema, raw)
}

// decodeSub decodes one payload against the server schema.
func (s *Server) decodeSub(payload string) (*subscription.Subscription, error) {
	return decodeSubPayload(s.schema, payload)
}

// decodeSubs decodes a batch; per-item failures leave a nil subscription
// and a non-nil error at the same index.
func (s *Server) decodeSubs(payloads []string) ([]*subscription.Subscription, []error) {
	subs := make([]*subscription.Subscription, len(payloads))
	errs := make([]error, len(payloads))
	for i, p := range payloads {
		subs[i], errs[i] = s.decodeSub(p)
	}
	return subs, errs
}

// decodeEventAsSub decodes a binary event and lifts it to the degenerate
// subscription that constrains every attribute to the event's value; its
// covers are exactly the subscriptions matching the event.
func (s *Server) decodeEventAsSub(payload string) (*subscription.Subscription, error) {
	raw, err := base64.StdEncoding.DecodeString(payload)
	if err != nil {
		return nil, fmt.Errorf("payload is not base64: %w", err)
	}
	ev, err := subscription.UnmarshalEvent(s.schema, raw)
	if err != nil {
		return nil, err
	}
	sub := subscription.New(s.schema)
	for i, attr := range s.schema.Attrs() {
		if err := sub.SetEq(attr, ev[i]); err != nil {
			return nil, err
		}
	}
	return sub, nil
}

// compact copies the non-nil entries (failed decodes leave holes) so
// batches reach the provider dense.
func compact(subs []*subscription.Subscription) []*subscription.Subscription {
	out := make([]*subscription.Subscription, 0, len(subs))
	for _, s := range subs {
		if s != nil {
			out = append(out, s)
		}
	}
	return out
}
