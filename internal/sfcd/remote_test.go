package sfcd

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sfccover/internal/core"
	"sfccover/internal/core/coretest"
	"sfccover/internal/engine"
	"sfccover/internal/subscription"
)

// startExactServer boots an exact-mode daemon on schema and returns a
// dialed client.
func startExactServer(t *testing.T, schema *subscription.Schema) (*Server, *Client) {
	t.Helper()
	eng := engine.MustNew(engine.Config{
		Detector: core.Config{Schema: schema, Mode: core.ModeExact, Strategy: core.StrategyLinear},
		Shards:   4,
		Workers:  4,
	})
	srv := NewServer(eng)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(addr.String(), schema)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		c.Close()
		srv.Close()
		eng.Close()
	})
	return srv, c
}

// TestRemoteProviderConformance runs the shared core.Provider battery
// against daemon link namespaces over one pipelined connection — the
// acceptance bar for treating a remote daemon exactly like an in-process
// Detector or Engine. Each factory call gets a fresh link, i.e. a fresh
// empty namespace on the shared daemon.
func TestRemoteProviderConformance(t *testing.T) {
	schema := coretest.Schema()
	_, c := startExactServer(t, schema)
	var linkCounter atomic.Int64
	coretest.RunProviderConformance(t, schema, func(t *testing.T) core.Provider {
		p, err := c.Provider(fmt.Sprintf("conformance-%d", linkCounter.Add(1)))
		if err != nil {
			t.Fatal(err)
		}
		return p
	})
}

// TestLinkNamespaceIsolation pins the multiplexing semantics: namespaces
// on one daemon are fully isolated subscription sets, and unlink resets a
// namespace without touching its neighbors or the shared engine.
func TestLinkNamespaceIsolation(t *testing.T) {
	schema := coretest.Schema()
	_, c := startExactServer(t, schema)
	wide := subscription.MustParse(schema, "volume in [100,900] && price in [10,400]")
	narrow := subscription.MustParse(schema, "volume in [200,300] && price in [50,60]")

	provider := func(link string) *RemoteProvider {
		p, err := c.Provider(link)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	a, b, shared := provider("link-a"), provider("link-b"), provider("")

	if _, err := a.Insert(wide); err != nil {
		t.Fatal(err)
	}
	if _, found, _, err := a.FindCover(narrow); err != nil || !found {
		t.Fatalf("link-a FindCover = (%v, %v), want hit", found, err)
	}
	if _, found, _, err := b.FindCover(narrow); err != nil || found {
		t.Fatalf("link-b FindCover = (%v, %v), want miss (isolated namespace)", found, err)
	}
	if _, found, _, err := shared.FindCover(narrow); err != nil || found {
		t.Fatalf("shared engine FindCover = (%v, %v), want miss", found, err)
	}
	if a.Len() != 1 || b.Len() != 0 || shared.Len() != 0 {
		t.Fatalf("Len a/b/shared = %d/%d/%d, want 1/0/0", a.Len(), b.Len(), shared.Len())
	}

	// Closing a namespace releases it; a fresh provider on the same link
	// starts empty. Close is idempotent.
	a.Close()
	a.Close()
	if _, found, _, err := provider("link-a").FindCover(narrow); err != nil || found {
		t.Fatalf("re-linked namespace FindCover = (%v, %v), want empty", found, err)
	}
	// Closing the shared-engine view must not disturb the engine.
	if _, err := shared.Insert(wide); err != nil {
		t.Fatal(err)
	}
	shared.Close()
	if shared.Len() != 1 {
		t.Fatal("closing the shared-engine provider must not clear the engine")
	}
}

// TestRemoteProviderPipelinedConcurrency drives one RemoteProvider (one
// connection) from many goroutines under -race: adds, covering queries
// and removals interleave freely on the pipelined client, and every
// inserted subscription must round-trip and be removed exactly once.
func TestRemoteProviderPipelinedConcurrency(t *testing.T) {
	schema := coretest.Schema()
	_, c := startExactServer(t, schema)
	p, err := c.Provider("churn")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	const goroutines = 16
	const opsPerG = 25
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < opsPerG; i++ {
				lo := uint32((g*opsPerG + i) % 900)
				s := subscription.New(schema)
				if err := s.SetRange("volume", lo, lo+10); err != nil {
					errs <- err
					return
				}
				id, _, _, err := p.Add(s)
				if err != nil {
					errs <- err
					return
				}
				if _, found, _, err := p.FindCover(s); err != nil || !found {
					errs <- fmt.Errorf("g%d op%d: FindCover = (%v, %v), want own insert", g, i, found, err)
					return
				}
				if got, ok := p.Subscription(id); !ok || !got.Equal(s) {
					errs <- fmt.Errorf("g%d op%d: id %d does not round-trip", g, i, id)
					return
				}
				if err := p.Remove(id); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if n := p.Len(); n != 0 {
		t.Fatalf("Len = %d after balanced churn, want 0", n)
	}
}

// TestClientSurvivesServerRestartError pins the error surface of a lost
// daemon: in-flight and subsequent operations fail with
// ErrConnectionLost (never a hang, never a zero-value success), the
// client stays safely inert even after a replacement daemon appears, and
// recovery is an explicit re-dial.
func TestClientSurvivesServerRestartError(t *testing.T) {
	schema := coretest.Schema()
	eng := engine.MustNew(engine.Config{
		Detector: core.Config{Schema: schema, Mode: core.ModeExact, Strategy: core.StrategyLinear},
		Shards:   2,
		Workers:  2,
	})
	defer eng.Close()
	srv := NewServer(eng)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(addr.String(), schema)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sub := subscription.MustParse(schema, "volume in [1,5]")
	if _, _, _, err := c.Subscribe(bg, sub); err != nil {
		t.Fatal(err)
	}

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	// The dead connection surfaces as ErrConnectionLost on every op.
	deadline := time.Now().Add(5 * time.Second)
	for {
		err := c.Ping(bg)
		if err != nil {
			if !errors.Is(err, ErrConnectionLost) {
				t.Fatalf("op after server close = %v, want ErrConnectionLost", err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("ops kept succeeding after server close")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// A restarted daemon does not resurrect the old client: there is no
	// implicit reconnect, so the routing layer re-dials deliberately.
	srv2 := NewServerWith(eng, ServerConfig{})
	addr2, err := srv2.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	if err := c.Ping(bg); !errors.Is(err, ErrConnectionLost) {
		t.Fatalf("old client after restart = %v, want ErrConnectionLost", err)
	}
	c2, err := Dial(addr2.String(), schema)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if err := c2.Ping(bg); err != nil {
		t.Fatal(err)
	}
	// After an explicit Close, the closed-client error wins for new ops.
	c2.Close()
	if err := c2.Ping(bg); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("op on closed client = %v, want ErrClientClosed", err)
	}
}

// TestRequestContextCancellation pins context handling: a canceled
// context abandons only its own call, and a deadline'd dial against a
// mute endpoint fails with the context error instead of hanging.
func TestRequestContextCancellation(t *testing.T) {
	schema := coretest.Schema()
	_, c := startExactServer(t, schema)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := c.Ping(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Ping with canceled ctx = %v, want context.Canceled", err)
	}
	// The client is undisturbed: the next call succeeds.
	if err := c.Ping(bg); err != nil {
		t.Fatal(err)
	}
}
