package sfcd_test

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"sfccover/internal/core"
	"sfccover/internal/core/coretest"
	"sfccover/internal/engine"
	"sfccover/internal/persist"
	"sfccover/internal/sfcd"
	"sfccover/internal/subscription"
)

// daemon bundles one persistent daemon instance over a data dir.
type daemon struct {
	eng    *engine.Engine
	store  *persist.Store
	srv    *sfcd.Server
	client *sfcd.Client
}

// startDaemon boots engine + store + persistent server on dir and dials
// it.
func startDaemon(t *testing.T, schema *subscription.Schema, dir string) *daemon {
	t.Helper()
	eng, err := engine.New(engine.Config{
		Detector:  core.Config{Schema: schema, Mode: core.ModeExact, TrackCovered: true, Seed: 5},
		Shards:    4,
		Partition: engine.PartitionPrefix,
		Workers:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	store, err := persist.Open(dir, schema, persist.Options{})
	if err != nil {
		eng.Close()
		t.Fatal(err)
	}
	srv, err := sfcd.NewPersistentServer(eng, store, sfcd.ServerConfig{})
	if err != nil {
		store.Close()
		eng.Close()
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	client, err := sfcd.Dial(addr.String(), schema)
	if err != nil {
		t.Fatal(err)
	}
	return &daemon{eng: eng, store: store, srv: srv, client: client}
}

// stop tears the daemon down without snapshotting — the WAL alone must
// carry recovery.
func (d *daemon) stop(t *testing.T) {
	t.Helper()
	d.client.Close() //nolint:errcheck // the test owns a single Close
	d.srv.Close()
	d.eng.Close()
	if err := d.store.Close(); err != nil {
		t.Fatal(err)
	}
}

// antiRect is the anti-chain family of the persist battery (one-sided min
// constraints: unique covering answers, cheap exact SFC search).
func antiRect(t testing.TB, schema *subscription.Schema, i int) *subscription.Subscription {
	t.Helper()
	return subscription.MustParse(schema, fmt.Sprintf("x >= %d && y >= %d", 2*i, 2*(16-i)))
}

// remoteFingerprint captures Len plus both covering directions over the
// family through a RemoteProvider.
func remoteFingerprint(t *testing.T, schema *subscription.Schema, p core.Provider) string {
	t.Helper()
	out := fmt.Sprintf("len=%d;", p.Len())
	for i := 0; i < 16; i++ {
		probe := subscription.MustParse(schema, fmt.Sprintf("x >= %d && y >= %d", 2*i+1, 2*(16-i)+1))
		id, found, _, err := p.FindCover(probe)
		if err != nil {
			t.Fatal(err)
		}
		out += fmt.Sprintf("c%d:%v/%d;", i, found, id)
		lo := 2*i - 1
		if lo < 0 {
			lo = 0
		}
		widerProbe := subscription.MustParse(schema, fmt.Sprintf("x >= %d && y >= %d", lo, 2*(16-i)-1))
		id, found, _, err = p.FindCovered(widerProbe)
		if err != nil {
			t.Fatal(err)
		}
		out += fmt.Sprintf("r%d:%v/%d;", i, found, id)
	}
	return out
}

// finalWALSegment globs the data dir for its newest WAL segment.
func finalWALSegment(t *testing.T, dir string) (path string, size int64) {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no WAL segments in %s: %v", dir, err)
	}
	sort.Strings(matches) // zero-padded hex seqs sort lexicographically
	path = matches[len(matches)-1]
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, fi.Size()
}

func cloneDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// TestRemoteCrashRecoveryBattery is the Remote leg of the crash battery:
// a persistent daemon takes a workload across two link namespaces (with a
// mid-stream snapshot), and for every record boundary — and a torn offset
// inside every record — of the final WAL segment, a fresh daemon booted
// from the truncated dir must answer bit-identically to the live,
// never-crashed daemon as of that record.
func TestRemoteCrashRecoveryBattery(t *testing.T) {
	schema := subscription.MustSchema(8, "x", "y")
	live := t.TempDir()
	d := startDaemon(t, schema, live)

	shared, err := d.client.Provider("")
	if err != nil {
		t.Fatal(err)
	}
	linked, err := d.client.Provider("L")
	if err != nil {
		t.Fatal(err)
	}

	// Pre-snapshot phase.
	ctx := context.Background()
	var sharedSids []uint64
	for i := 0; i < 5; i++ {
		sid, err := shared.Insert(antiRect(t, schema, i))
		if err != nil {
			t.Fatal(err)
		}
		sharedSids = append(sharedSids, sid)
		if _, err := linked.Insert(antiRect(t, schema, i+5)); err != nil {
			t.Fatal(err)
		}
	}
	if err := shared.Remove(sharedSids[1]); err != nil {
		t.Fatal(err)
	}
	if err := d.client.Snapshot(ctx); err != nil {
		t.Fatal(err)
	}

	// Post-snapshot phase: after every op, record the final segment size
	// and the live fingerprints — the never-crashed truth for a crash
	// right after that op's record.
	type checkpoint struct {
		size  int64
		print map[string]string
	}
	snap := func() checkpoint {
		_, size := finalWALSegment(t, live)
		return checkpoint{size: size, print: map[string]string{
			"":  remoteFingerprint(t, schema, shared),
			"L": remoteFingerprint(t, schema, linked),
		}}
	}
	checkpoints := []checkpoint{snap()}
	for i := 10; i < 14; i++ {
		if _, err := shared.Insert(antiRect(t, schema, i)); err != nil {
			t.Fatal(err)
		}
		checkpoints = append(checkpoints, snap())
	}
	if err := shared.Remove(sharedSids[3]); err != nil {
		t.Fatal(err)
	}
	checkpoints = append(checkpoints, snap())
	if _, err := linked.Insert(antiRect(t, schema, 15)); err != nil {
		t.Fatal(err)
	}
	checkpoints = append(checkpoints, snap())
	d.stop(t)

	finalPath, _ := finalWALSegment(t, live)
	for ci, cp := range checkpoints {
		points := []int64{cp.size} // clean record boundary
		if ci+1 < len(checkpoints) {
			points = append(points, (cp.size+checkpoints[ci+1].size)/2) // torn inside the next record
		}
		for _, n := range points {
			t.Run(fmt.Sprintf("crash@%d", n), func(t *testing.T) {
				dir := cloneDir(t, live)
				if err := os.Truncate(filepath.Join(dir, filepath.Base(finalPath)), n); err != nil {
					t.Fatal(err)
				}
				rd := startDaemon(t, schema, dir)
				defer rd.stop(t)
				for link, want := range cp.print {
					rp, err := rd.client.Provider(link)
					if err != nil {
						t.Fatal(err)
					}
					if got := remoteFingerprint(t, schema, rp); got != want {
						t.Fatalf("link %q diverges at crash point %d:\n got %s\nwant %s", link, n, got, want)
					}
				}
			})
		}
	}
	// Guard against a vacuous battery: the final checkpoint must find
	// covers on both namespaces.
	for link, print := range checkpoints[len(checkpoints)-1].print {
		if !strings.Contains(print, "true") {
			t.Fatalf("vacuous battery on link %q: %s", link, print)
		}
	}
}

// TestRemotePersistenceConformance runs the shared snapshot→restore→
// re-run battery with a daemon restart between the halves: the remote
// provider recovered by a rebooted daemon must behave exactly like a
// local one recovered from its store.
func TestRemotePersistenceConformance(t *testing.T) {
	schema := coretest.Schema()
	dir := t.TempDir()
	var cur *daemon
	coretest.RunPersistenceConformance(t, schema, func(t *testing.T) core.Provider {
		if cur != nil {
			cur.stop(t)
		}
		cur = startDaemon(t, schema, dir)
		p, err := cur.client.Provider("conformance")
		if err != nil {
			t.Fatal(err)
		}
		return p
	})
	if cur != nil {
		cur.stop(t)
	}
}

// TestSnapshotUnsupportedWithoutDataDir pins the typed outcome on a
// daemon running without persistence.
func TestSnapshotUnsupportedWithoutDataDir(t *testing.T) {
	schema := subscription.MustSchema(8, "x", "y")
	eng, err := engine.New(engine.Config{
		Detector: core.Config{Schema: schema, Mode: core.ModeExact},
		Shards:   2, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	srv := sfcd.NewServer(eng)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := sfcd.Dial(addr.String(), schema)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var se *sfcd.ServerError
	if err := c.Snapshot(context.Background()); !errors.As(err, &se) || se.Code != sfcd.CodeUnsupported {
		t.Fatalf("Snapshot on a store-less daemon = %v, want a CodeUnsupported server error", err)
	}
	p, err := c.Provider("")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Snapshot(); !errors.Is(err, core.ErrSnapshotUnsupported) {
		t.Fatalf("RemoteProvider.Snapshot = %v, want core.ErrSnapshotUnsupported", err)
	}
}
