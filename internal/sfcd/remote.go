package sfcd

import (
	"context"
	"errors"
	"fmt"

	"sfccover/internal/core"
	"sfccover/internal/dominance"
	"sfccover/internal/subscription"
)

// RemoteProvider adapts one link namespace of a dialed sfcd daemon to
// core.Provider: the full Add/Insert/Remove/FindCover/FindCovered/Stats
// surface travels over the client's pipelined connection, so brokers and
// routers can point any provider seam at a shared daemon exactly as they
// would at an in-process Detector or Engine. Any number of providers —
// one per broker link, say — share a single Client and therefore a
// single TCP connection; their requests interleave without head-of-line
// blocking.
//
// Divergences forced by the interface: the per-query dominance.Stats are
// server-side aggregates (visible through Stats), so FindCover/FindCovered
// return zero-valued per-call stats; Len and Subscription have no error
// channel, so connection failures surface as 0 / not-found there and as
// real errors on the next erroring operation.
//
// Closing a RemoteProvider releases its link namespace on the daemon
// (best effort); it never closes the shared Client. Close the Client
// itself when all providers on it are done.
//
//sfc:wrapper
//sfc:nocap CoveredDrainer the wire protocol has no drain op; routers drain via the FindCovered/unsubscribe loop, which stays correct over the wire
//sfc:nocap Enumerator a full subscription dump has no wire op and would be an unbounded response frame; enumerate server-side
//sfc:nocap BulkInserter the wire batch op is subscribe_batch (AddBatch), which covering daemons need; a log-free bulk insert op does not exist remotely
type RemoteProvider struct {
	c    *Client
	link string
	mode core.Mode
	ctx  context.Context
}

var _ core.Provider = (*RemoteProvider)(nil)
var _ core.BatchQuerier = (*RemoteProvider)(nil)
var _ core.BatchWriter = (*RemoteProvider)(nil)
var _ core.Rebalancer = (*RemoteProvider)(nil)
var _ core.Persister = (*RemoteProvider)(nil)

// Provider returns a core.Provider over the given link namespace of the
// daemon. The empty link is the daemon's shared engine; any other link
// names an isolated subscription set, lazily materialized server-side
// from the engine's detector template (so its mode matches the daemon's).
func (c *Client) Provider(link string) (*RemoteProvider, error) {
	mode, err := core.ParseMode(c.mode)
	if err != nil {
		return nil, fmt.Errorf("sfcd: hello negotiated %w", err)
	}
	return &RemoteProvider{c: c, link: link, mode: mode, ctx: context.Background()}, nil
}

// Link returns the provider's namespace on the daemon.
func (r *RemoteProvider) Link() string { return r.link }

// checkSchema mirrors the local providers' pointer check so misuse fails
// identically whether the index is local or remote.
func (r *RemoteProvider) checkSchema(s *subscription.Subscription) error {
	if s.Schema() != r.c.schema {
		return errors.New("sfcd: subscription schema differs from client schema")
	}
	return nil
}

func (r *RemoteProvider) payload(s *subscription.Subscription) (string, error) {
	if err := r.checkSchema(s); err != nil {
		return "", err
	}
	return r.c.encodeSub(s)
}

// Add runs the router arrival path on the daemon: covering query, then
// insert either way.
func (r *RemoteProvider) Add(s *subscription.Subscription) (id uint64, covered bool, coveredBy uint64, err error) {
	payload, err := r.payload(s)
	if err != nil {
		return 0, false, 0, err
	}
	resp, err := r.c.do(r.ctx, &Request{Op: "subscribe", Link: r.link, Payload: payload})
	if err != nil {
		return 0, false, 0, err
	}
	if resp.Result == nil {
		return 0, false, 0, errors.New("sfcd: response carries no result")
	}
	return resp.Result.SID, resp.Result.Covered, resp.Result.CoveredBy, nil
}

// Insert stores s unconditionally and returns its id.
func (r *RemoteProvider) Insert(s *subscription.Subscription) (uint64, error) {
	payload, err := r.payload(s)
	if err != nil {
		return 0, err
	}
	resp, err := r.c.do(r.ctx, &Request{Op: "insert", Link: r.link, Payload: payload})
	if err != nil {
		return 0, err
	}
	if resp.Result == nil {
		return 0, errors.New("sfcd: response carries no result")
	}
	return resp.Result.SID, nil
}

// Remove deletes a previously inserted subscription by id.
func (r *RemoteProvider) Remove(id uint64) error {
	_, err := r.c.do(r.ctx, &Request{Op: "unsubscribe", Link: r.link, SID: id})
	return err
}

// FindCover searches the namespace for a subscription covering s. The
// per-call dominance stats are zero (they live server-side; see Stats).
func (r *RemoteProvider) FindCover(s *subscription.Subscription) (id uint64, found bool, stats dominance.Stats, err error) {
	payload, err := r.payload(s)
	if err != nil {
		return 0, false, stats, err
	}
	resp, err := r.c.do(r.ctx, &Request{Op: "query", Link: r.link, Payload: payload})
	if err != nil {
		return 0, false, stats, err
	}
	if resp.Result == nil {
		return 0, false, stats, errors.New("sfcd: response carries no result")
	}
	return resp.Result.CoveredBy, resp.Result.Covered, stats, nil
}

// FindCovered searches the namespace for a subscription that s covers.
func (r *RemoteProvider) FindCovered(s *subscription.Subscription) (id uint64, found bool, stats dominance.Stats, err error) {
	payload, err := r.payload(s)
	if err != nil {
		return 0, false, stats, err
	}
	resp, err := r.c.do(r.ctx, &Request{Op: "covered", Link: r.link, Payload: payload})
	if err != nil {
		return 0, false, stats, err
	}
	if resp.Result == nil {
		return 0, false, stats, errors.New("sfcd: response carries no result")
	}
	return resp.Result.CoveredBy, resp.Result.Covered, stats, nil
}

// CoverQueryBatch implements core.BatchQuerier: the whole batch rides one
// request line and fans out across the daemon's worker pool.
func (r *RemoteProvider) CoverQueryBatch(subs []*subscription.Subscription) []core.QueryResult {
	out := make([]core.QueryResult, len(subs))
	payloads := make([]string, len(subs))
	for i, s := range subs {
		p, err := r.payload(s)
		if err != nil {
			// Per-item validation failures poison only their own slot, as
			// with the engine's batch path.
			out[i] = core.QueryResult{Err: err}
			continue
		}
		payloads[i] = p
	}
	resp, err := r.c.do(r.ctx, &Request{Op: "query_batch", Link: r.link, Payloads: payloads})
	if err != nil {
		for i := range out {
			if out[i].Err == nil {
				out[i].Err = err
			}
		}
		return out
	}
	if len(resp.Results) != len(subs) {
		err := fmt.Errorf("sfcd: %d results for %d queries", len(resp.Results), len(subs))
		for i := range out {
			if out[i].Err == nil {
				out[i].Err = err
			}
		}
		return out
	}
	for i, res := range resp.Results {
		if out[i].Err != nil {
			continue
		}
		if res.Error != "" {
			out[i].Err = &ServerError{Code: CodeOpFailed, Msg: res.Error}
			continue
		}
		out[i] = core.QueryResult{Covered: res.Covered, CoveredBy: res.CoveredBy}
	}
	return out
}

// AddBatch implements core.BatchWriter: the whole arrival-path batch
// (covering query + insert per item) rides one subscribe_batch request
// line instead of one round trip per subscription — the churn-path
// amortization the wire op existed for.
func (r *RemoteProvider) AddBatch(subs []*subscription.Subscription) []core.AddResult {
	out := make([]core.AddResult, len(subs))
	payloads := make([]string, len(subs))
	for i, s := range subs {
		p, err := r.payload(s)
		if err != nil {
			// Per-item validation failures poison only their own slot.
			out[i].Err = err
			continue
		}
		payloads[i] = p
	}
	resp, err := r.c.do(r.ctx, &Request{Op: "subscribe_batch", Link: r.link, Payloads: payloads})
	if err == nil && len(resp.Results) != len(subs) {
		err = fmt.Errorf("sfcd: %d results for %d subscriptions", len(resp.Results), len(subs))
	}
	if err != nil {
		for i := range out {
			if out[i].Err == nil {
				out[i].Err = err
			}
		}
		return out
	}
	for i, res := range resp.Results {
		if out[i].Err != nil {
			continue
		}
		if res.Error != "" {
			out[i].Err = &ServerError{Code: CodeOpFailed, Msg: res.Error}
			continue
		}
		out[i] = core.AddResult{ID: res.SID, QueryResult: core.QueryResult{Covered: res.Covered, CoveredBy: res.CoveredBy}}
	}
	return out
}

// RemoveBatch implements core.BatchWriter over one unsubscribe_batch
// round trip. The returned slice aligns with ids; entries are nil on
// success.
func (r *RemoteProvider) RemoveBatch(ids []uint64) []error {
	out := make([]error, len(ids))
	fail := func(err error) []error {
		for i := range out {
			out[i] = err
		}
		return out
	}
	resp, err := r.c.do(r.ctx, &Request{Op: "unsubscribe_batch", Link: r.link, SIDs: ids})
	if err != nil {
		return fail(err)
	}
	if len(resp.Results) != len(ids) {
		return fail(fmt.Errorf("sfcd: %d results for %d ids", len(resp.Results), len(ids)))
	}
	for i, res := range resp.Results {
		if res.Error != "" {
			out[i] = &ServerError{Code: CodeOpFailed, Msg: res.Error}
		}
	}
	return out
}

// Rebalance implements core.Rebalancer by forwarding to the daemon: the
// addressed namespace rebalances server-side and reports the pass.
// Namespaces without the capability surface core.ErrRebalanceUnsupported,
// exactly like a local provider would.
func (r *RemoteProvider) Rebalance() (core.RebalanceResult, error) {
	resp, err := r.c.do(r.ctx, &Request{Op: "rebalance", Link: r.link})
	if err != nil {
		var se *ServerError
		if errors.As(err, &se) && se.Code == CodeUnsupported {
			return core.RebalanceResult{}, fmt.Errorf("%w: %s", core.ErrRebalanceUnsupported, se.Msg)
		}
		return core.RebalanceResult{}, err
	}
	if resp.Rebalance == nil {
		return core.RebalanceResult{}, errors.New("sfcd: response carries no rebalance outcome")
	}
	return core.RebalanceResult{
		Moves:      resp.Rebalance.Moves,
		Migrated:   resp.Rebalance.Migrated,
		SkewBefore: resp.Rebalance.SkewBefore,
		SkewAfter:  resp.Rebalance.SkewAfter,
	}, nil
}

// Snapshot implements core.Persister by forwarding to the daemon: its
// whole durable store (all links — the log is shared) snapshots and
// compacts. Daemons running without a data dir surface
// core.ErrSnapshotUnsupported, exactly like a local provider without a
// store would.
func (r *RemoteProvider) Snapshot() error {
	_, err := r.c.do(r.ctx, &Request{Op: "snapshot", Link: r.link})
	if err != nil {
		var se *ServerError
		if errors.As(err, &se) && se.Code == CodeUnsupported {
			return fmt.Errorf("%w: %s", core.ErrSnapshotUnsupported, se.Msg)
		}
		return err
	}
	return nil
}

// Subscription resolves an id to its held subscription. The Provider
// signature has no error channel, so connection trouble reads as
// not-found here and errors on the next operation that can report it.
func (r *RemoteProvider) Subscription(id uint64) (*subscription.Subscription, bool) {
	resp, err := r.c.do(r.ctx, &Request{Op: "get", Link: r.link, SID: id})
	if err != nil || resp.Result == nil {
		return nil, false
	}
	sub, err := decodeSubPayload(r.c.schema, resp.Result.Payload)
	if err != nil {
		return nil, false
	}
	return sub, true
}

// Len returns the number of held subscriptions in the namespace (0 when
// the daemon cannot be reached; see the type comment).
func (r *RemoteProvider) Len() int { return r.Stats().Subscriptions }

// Mode returns the daemon's detection mode, as negotiated at dial time.
func (r *RemoteProvider) Mode() core.Mode { return r.mode }

// Schema returns the client's attribute schema.
func (r *RemoteProvider) Schema() *subscription.Schema { return r.c.schema }

// Stats returns the namespace's uniform counter snapshot (zero-valued
// when the daemon cannot be reached).
func (r *RemoteProvider) Stats() core.ProviderStats {
	ws, err := r.stats()
	if err != nil {
		return core.ProviderStats{}
	}
	ps := core.ProviderStats{
		Queries:           ws.Queries,
		Hits:              ws.Hits,
		RunsProbed:        ws.RunsProbed,
		CubesGenerated:    ws.CubesGenerated,
		ShardSearches:     ws.ShardSearches,
		DecompCacheHits:   ws.DecompCacheHits,
		DecompCacheMisses: ws.DecompCacheMisses,
		Rebalances:        ws.Rebalances,
		BoundaryMoves:     ws.BoundaryMoves,
		MigratedEntries:   ws.MigratedEntries,
		Snapshots:         ws.Snapshots,
		WALRecords:        ws.WALRecords,
		WALBytes:          ws.WALBytes,
	}
	ps.SetShardSizes(ws.ShardSizes)
	return ps
}

func (r *RemoteProvider) stats() (Stats, error) {
	resp, err := r.c.do(r.ctx, &Request{Op: "stats", Link: r.link})
	if err != nil {
		return Stats{}, err
	}
	if resp.Stats == nil {
		return Stats{}, errors.New("sfcd: response carries no stats")
	}
	return *resp.Stats, nil
}

// Close releases the link namespace on the daemon (best effort — a lost
// connection makes it a no-op; the daemon reaps namespaces with the
// process). The shared Client stays open. Close is idempotent: unlink of
// an unknown or already-released link succeeds server-side.
func (r *RemoteProvider) Close() {
	if r.link == "" {
		return // the shared engine is not ours to tear down
	}
	r.c.do(r.ctx, &Request{Op: "unlink", Link: r.link}) //nolint:errcheck // best effort
}
