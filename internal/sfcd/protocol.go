// Package sfcd turns the sharded detection engine into a network service:
// a newline-delimited JSON protocol over TCP, carrying subscriptions and
// events in their binary wire format (base64-encoded), plus the matching
// client. One daemon serves many routers; batch operations map directly
// onto the engine's AddBatch/RemoveBatch/CoverQueryBatch so a single
// request line can amortize the round trip over hundreds of covering
// queries.
//
// Protocol: each line is one JSON request; the server answers each with
// one JSON response line, in request order per connection. Concurrency
// comes from concurrent connections and from the engine's worker pool
// underneath batch requests.
//
//	→ {"id":1,"op":"hello"}
//	← {"id":1,"ok":true,"bits":10,"attrs":["volume","price"],"shards":8,"partition":"hash","mode":"approx"}
//	→ {"id":2,"op":"subscribe","payload":"<base64 subscription wire>"}
//	← {"id":2,"ok":true,"sid":41,"covered":true,"coveredBy":17}
//	→ {"id":3,"op":"query_batch","payloads":["...","..."]}
//	← {"id":3,"ok":true,"results":[{"covered":true,"coveredBy":17},{"covered":false}]}
//
// Operations: hello, ping, subscribe, subscribe_batch, unsubscribe,
// unsubscribe_batch, query, query_batch, covered, match, stats, metrics.
//
// "covered" is the reverse covering query (engine FindCovered): does the
// store hold a subscription that the payload covers? Routers call it at
// unsubscription time to decide which suppressed subscriptions must be
// re-forwarded. "metrics" renders the stats counters in the Prometheus
// text exposition format for scrape-style monitoring.
//
// "match" answers event delivery: an event e is a degenerate subscription
// constraining every attribute to exactly its value, so "does any stored
// subscription match e" is precisely "is that point-subscription covered",
// and the engine's covering machinery answers it with the usual guarantee
// (a reported match is genuine; approximate mode may miss).
package sfcd

// Request is one protocol request line.
type Request struct {
	// ID is echoed in the response so clients can pipeline.
	ID uint64 `json:"id"`
	// Op selects the operation.
	Op string `json:"op"`
	// Payload carries one base64-encoded binary subscription (subscribe,
	// query) or event (match).
	Payload string `json:"payload,omitempty"`
	// Payloads carries a batch of base64-encoded subscriptions.
	Payloads []string `json:"payloads,omitempty"`
	// SID identifies a subscription to unsubscribe.
	SID uint64 `json:"sid,omitempty"`
	// SIDs identifies a batch of subscriptions to unsubscribe.
	SIDs []uint64 `json:"sids,omitempty"`
}

// Result is one per-item outcome inside a batch response.
type Result struct {
	// SID is the id assigned by subscribe operations.
	SID uint64 `json:"sid,omitempty"`
	// Covered reports whether a cover (or match) was found; CoveredBy is
	// the id of the covering subscription.
	Covered   bool   `json:"covered,omitempty"`
	CoveredBy uint64 `json:"coveredBy,omitempty"`
	// Error is the per-item failure, empty on success.
	Error string `json:"error,omitempty"`
}

// Stats is the counter snapshot returned by the stats operation: the
// engine's logical totals plus occupancy.
type Stats struct {
	Queries        int `json:"queries"`
	Hits           int `json:"hits"`
	RunsProbed     int `json:"runsProbed"`
	CubesGenerated int `json:"cubesGenerated"`
	ShardSearches  int `json:"shardSearches"`
	// Subscriptions is the number of currently held subscriptions.
	Subscriptions int `json:"subscriptions"`
	// ShardSizes is the per-shard subscription count.
	ShardSizes []int `json:"shardSizes"`
	// MaxShardSize/MinShardSize/SkewRatio summarize slice-occupancy
	// balance; SkewRatio is max/min with the denominator clamped to 1, so
	// curve-prefix skew is observable before rebalancing.
	MaxShardSize int     `json:"maxShardSize"`
	MinShardSize int     `json:"minShardSize"`
	SkewRatio    float64 `json:"skewRatio"`
}

// Response is one protocol response line.
type Response struct {
	// ID echoes the request id.
	ID uint64 `json:"id"`
	// OK reports whether the request succeeded; on failure Error explains.
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`

	// hello fields.
	Bits      int      `json:"bits,omitempty"`
	Attrs     []string `json:"attrs,omitempty"`
	Shards    int      `json:"shards,omitempty"`
	Partition string   `json:"partition,omitempty"`
	Mode      string   `json:"mode,omitempty"`

	// Single-operation outcome (subscribe, query, match, unsubscribe).
	Result *Result `json:"result,omitempty"`
	// Batch outcomes, aligned with the request's payloads/sids.
	Results []Result `json:"results,omitempty"`
	// Stats snapshot (stats op).
	Stats *Stats `json:"stats,omitempty"`
	// Metrics is the Prometheus text exposition (metrics op).
	Metrics string `json:"metrics,omitempty"`
}

// MaxLineBytes bounds one protocol line (a batch of ~64k subscriptions);
// longer lines terminate the connection.
const MaxLineBytes = 8 << 20
