// Package sfcd turns the sharded detection engine into a network service:
// a newline-delimited JSON protocol over TCP, carrying subscriptions and
// events in their binary wire format (base64-encoded), plus a pipelined
// client and a core.Provider implementation over it. One daemon serves
// many routers; batch operations map directly onto the engine's
// AddBatch/RemoveBatch/CoverQueryBatch so a single request line can
// amortize the round trip over hundreds of covering queries, and the
// pipelined client overlaps independent requests on one connection so
// that N concurrent callers never serialize on the wire.
//
// Protocol: each line is one JSON request carrying a client-chosen id;
// the server answers each request with one JSON response line echoing
// that id. Responses may arrive OUT OF ORDER — the server handles a
// connection's requests concurrently — so clients demultiplex by id.
// A response with id 0 that no request asked for is a connection-level
// error frame (e.g. the connection limit was hit); the connection is
// closed after it.
//
//	→ {"id":1,"op":"hello"}
//	← {"id":1,"ok":true,"bits":10,"attrs":["volume","price"],"shards":8,"partition":"hash","mode":"approx"}
//	→ {"id":2,"op":"subscribe","payload":"<base64 subscription wire>"}
//	← {"id":2,"ok":true,"result":{"sid":41,"covered":true,"coveredBy":17}}
//	→ {"id":3,"op":"query_batch","payloads":["...","..."]}
//	← {"id":3,"ok":true,"results":[{"covered":true,"coveredBy":17},{"covered":false}]}
//
// Operations: hello, ping, subscribe, subscribe_batch, insert,
// unsubscribe, unsubscribe_batch, query, query_batch, covered, get,
// match, stats, metrics, rebalance, snapshot, unlink, trace, slowlog,
// replicate, promote.
//
// "replicate" opens the replication stream: the caller (a follower
// daemon) sends its applied stream position and the server answers with
// an unbounded sequence of response lines — each carrying one RepFrame —
// until the stream ends with an error response. It is the one streaming
// op in an otherwise request/response protocol; see RepFrame for the
// catch-up/reset semantics. "promote" flips a read-only follower to
// primary once it has drained its stream (idempotent on a primary).
// Daemons running without a data dir answer both with code
// "unsupported"; a follower answers every state-touching op with code
// "not_primary" until promoted.
//
// "trace" runs one covering query with tracing forced on and returns the
// full trace record: per-stage timings (decomposition, probe loop, shard
// fan-out), per-slice probe counts and the query's cost stats. "slowlog"
// returns the daemon's ring of recent slow-query traces. Both address
// the shared engine only; link namespaces answer with code
// "unsupported".
//
// "snapshot" forces a point-in-time snapshot of the daemon's durable
// subscription state (all link namespaces — the write-ahead log is
// shared) and compacts the log behind it. Daemons running without a data
// dir answer with code "unsupported".
//
// "rebalance" runs one bounded slice-rebalance pass on the addressed
// provider (engine curve-prefix plans only; other configurations answer
// with code "unsupported") and reports the boundary moves, migrated
// entries and before/after occupancy skew.
//
// "insert" stores a subscription without the pre-insert covering query
// (the Provider.Insert path); "get" resolves a sid back to its stored
// subscription payload. "covered" is the reverse covering query (engine
// FindCovered): does the store hold a subscription that the payload
// covers? Routers call it at unsubscription time to decide which
// suppressed subscriptions must be re-forwarded. "metrics" renders the
// stats counters in the Prometheus text exposition format.
//
// "match" answers event delivery: an event e is a degenerate subscription
// constraining every attribute to exactly its value, so "does any stored
// subscription match e" is precisely "is that point-subscription covered",
// and the engine's covering machinery answers it with the usual guarantee
// (a reported match is genuine; approximate mode may miss).
//
// Link namespaces: every operation may carry a "link" field naming an
// isolated subscription namespace on the daemon. The empty link is the
// shared engine; any other link lazily materializes its own index built
// from the engine's detector template, and "unlink" tears it down. This
// is what lets one shared daemon back every broker link of an overlay:
// each link's forwarded set stays independent while all of them share one
// process, one connection and one schema.
package sfcd

// Request is one protocol request line.
type Request struct {
	// ID is echoed in the response; clients pipeline many requests and
	// demultiplex responses by it. IDs must be unique among a connection's
	// in-flight requests and must be non-zero (0 is reserved for
	// connection-level error frames).
	ID uint64 `json:"id"`
	// Op selects the operation.
	Op string `json:"op"`
	// Link selects the subscription namespace; empty is the shared engine.
	Link string `json:"link,omitempty"`
	// Payload carries one base64-encoded binary subscription (subscribe,
	// insert, query, covered) or event (match).
	Payload string `json:"payload,omitempty"`
	// Payloads carries a batch of base64-encoded subscriptions.
	Payloads []string `json:"payloads,omitempty"`
	// SID identifies a subscription to unsubscribe or get.
	SID uint64 `json:"sid,omitempty"`
	// SIDs identifies a batch of subscriptions to unsubscribe.
	SIDs []uint64 `json:"sids,omitempty"`
	// Pos is the replicate op's resume point: the follower's applied
	// stream position (0 = from the beginning).
	Pos uint64 `json:"pos,omitempty"`
}

// Result is one per-item outcome inside a batch response.
type Result struct {
	// SID is the id assigned by subscribe/insert operations.
	SID uint64 `json:"sid,omitempty"`
	// Covered reports whether a cover (or match) was found; CoveredBy is
	// the id of the covering subscription.
	Covered   bool   `json:"covered,omitempty"`
	CoveredBy uint64 `json:"coveredBy,omitempty"`
	// Payload is the base64-encoded subscription returned by get.
	Payload string `json:"payload,omitempty"`
	// Error is the per-item failure, empty on success.
	Error string `json:"error,omitempty"`
}

// Stats is the counter snapshot returned by the stats operation: the
// provider's logical totals plus occupancy, per link namespace.
type Stats struct {
	Queries        int `json:"queries"`
	Hits           int `json:"hits"`
	RunsProbed     int `json:"runsProbed"`
	CubesGenerated int `json:"cubesGenerated"`
	ShardSearches  int `json:"shardSearches"`
	// DecompCacheHits/DecompCacheMisses are the decomposition cache's
	// lifetime counters across the provider's SFC indexes (always zero
	// when the cache is disabled or the strategy has no SFC index).
	DecompCacheHits   uint64 `json:"decompCacheHits,omitempty"`
	DecompCacheMisses uint64 `json:"decompCacheMisses,omitempty"`
	// Subscriptions is the number of currently held subscriptions.
	Subscriptions int `json:"subscriptions"`
	// ShardSizes is the per-shard subscription count.
	ShardSizes []int `json:"shardSizes"`
	// MaxShardSize/MinShardSize/SkewRatio summarize slice-occupancy
	// balance; SkewRatio is max/min with the denominator clamped to 1, so
	// curve-prefix skew is observable before rebalancing.
	MaxShardSize int     `json:"maxShardSize"`
	MinShardSize int     `json:"minShardSize"`
	SkewRatio    float64 `json:"skewRatio"`
	// Rebalances/BoundaryMoves/MigratedEntries count what the online
	// rebalancer has done so far (always zero on providers without the
	// capability).
	Rebalances      int `json:"rebalances,omitempty"`
	BoundaryMoves   int `json:"boundaryMoves,omitempty"`
	MigratedEntries int `json:"migratedEntries,omitempty"`
	// Snapshots/WALRecords/WALBytes describe the durability layer: store-
	// wide snapshot count and lifetime log appends (always zero on daemons
	// running without a data dir).
	Snapshots  int   `json:"snapshots,omitempty"`
	WALRecords int   `json:"walRecords,omitempty"`
	WALBytes   int64 `json:"walBytes,omitempty"`
}

// RebalanceInfo is the outcome of a rebalance operation.
type RebalanceInfo struct {
	// Moves is the number of boundary moves the pass performed; Migrated
	// the number of index entries that crossed a boundary.
	Moves    int `json:"moves"`
	Migrated int `json:"migrated"`
	// SkewBefore/SkewAfter bracket the pass with the occupancy skew ratio.
	SkewBefore float64 `json:"skewBefore"`
	SkewAfter  float64 `json:"skewAfter"`
}

// Error codes carried by error frames (Response.Code). The code
// classifies the failure mechanically so clients can react without
// parsing the human-readable Error text.
const (
	// CodeBadRequest marks a request the server could not parse or decode.
	CodeBadRequest = "bad_request"
	// CodeUnknownOp marks an unrecognized operation.
	CodeUnknownOp = "unknown_op"
	// CodeConnLimit marks a connection refused by the -max-conns limit;
	// it arrives in a connection-level frame (id 0) and the connection is
	// closed after it.
	CodeConnLimit = "conn_limit"
	// CodeOpFailed marks an operation the provider rejected (unknown sid,
	// schema trouble, mode restrictions).
	CodeOpFailed = "op_failed"
	// CodeUnsupported marks an operation the addressed provider has no
	// capability for (rebalance on a non-prefix or detector-backed
	// namespace).
	CodeUnsupported = "unsupported"
	// CodeNotPrimary marks an operation refused because the daemon is a
	// read-only follower still draining a primary's replication stream;
	// clients should fail over to the (possibly newly promoted) primary.
	CodeNotPrimary = "not_primary"
)

// Role values carried in hello/promote responses (Response.Role).
const (
	RolePrimary  = "primary"
	RoleFollower = "follower"
)

// Response is one protocol response line.
type Response struct {
	// ID echoes the request id; 0 marks a connection-level error frame.
	ID uint64 `json:"id"`
	// OK reports whether the request succeeded; on failure Error explains
	// and Code classifies.
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
	Code  string `json:"code,omitempty"`

	// hello fields.
	Bits      int      `json:"bits,omitempty"`
	Attrs     []string `json:"attrs,omitempty"`
	Shards    int      `json:"shards,omitempty"`
	Partition string   `json:"partition,omitempty"`
	Mode      string   `json:"mode,omitempty"`
	// Role reports "primary" or "follower" in hello (and promote)
	// responses. Empty on daemons predating replication, which clients
	// treat as primary.
	Role string `json:"role,omitempty"`

	// Single-operation outcome (subscribe, insert, query, covered, get,
	// match, unsubscribe).
	Result *Result `json:"result,omitempty"`
	// Batch outcomes, aligned with the request's payloads/sids.
	Results []Result `json:"results,omitempty"`
	// Stats snapshot (stats op).
	Stats *Stats `json:"stats,omitempty"`
	// Metrics is the Prometheus text exposition (metrics op).
	Metrics string `json:"metrics,omitempty"`
	// Rebalance is the rebalance operation's outcome.
	Rebalance *RebalanceInfo `json:"rebalance,omitempty"`
	// Trace is the trace operation's record; Traces is the slowlog
	// operation's batch (newest first).
	Trace  *Trace  `json:"trace,omitempty"`
	Traces []Trace `json:"traces,omitempty"`
	// Rep is one replication stream frame (replicate op only). The op is
	// the protocol's single streaming exception: one request produces
	// many response lines, all echoing the request id, until an error
	// response ends the stream.
	Rep *RepFrame `json:"rep,omitempty"`
}

// RepFrame is one hop of a replication stream. Recs carries WAL records
// in the segment wire encoding (self-delimiting, CRC-protected),
// base64-encoded like every binary payload on this protocol.
//
// When Reset is false the records sit at stream positions Base+1..Pos
// and the follower applies them in place (idempotent; an overlap with
// already-applied history deduplicates by position). When Reset is true
// the frames carry a full-state dump at position Pos — the follower was
// too far behind the primary's in-memory ring (or ahead of it entirely,
// after a divergent history) — split across frames with More set on all
// but the last; the follower accumulates and installs the dump atomically
// once More is clear.
type RepFrame struct {
	Reset bool   `json:"reset,omitempty"`
	More  bool   `json:"more,omitempty"`
	Base  uint64 `json:"base,omitempty"`
	Pos   uint64 `json:"pos"`
	Recs  string `json:"recs,omitempty"`
}

// TraceStage is one timed step of a traced query.
type TraceStage struct {
	// Name identifies the step ("decompose", "truncate", "probes",
	// "enumerate_probes", "shard_search").
	Name string `json:"name"`
	// DurNS is the stage's wall time in nanoseconds.
	DurNS int64 `json:"durNs"`
	// Count is the stage's unit count where one exists (cubes generated,
	// probes issued, shards searched).
	Count int `json:"count,omitempty"`
}

// TraceCost is the wire mirror of the query's cost stats (the engine's
// QueryStats): the paper's cost model for one search.
type TraceCost struct {
	M              int     `json:"m,omitempty"`
	CubesGenerated int     `json:"cubesGenerated"`
	RunsProbed     int     `json:"runsProbed"`
	VolumeFraction float64 `json:"volumeFraction"`
	AspectRatio    int     `json:"aspectRatio"`
	Found          bool    `json:"found"`
}

// Trace is one query's full trace record, returned by the trace op and
// (in batches) by slowlog.
type Trace struct {
	// Op is the logical operation traced ("query", "covered").
	Op string `json:"op"`
	// StartUnixNS is when the engine began the query (Unix nanoseconds).
	StartUnixNS int64 `json:"startUnixNs"`
	// TotalNS is the end-to-end engine latency in nanoseconds.
	TotalNS int64 `json:"totalNs"`
	// Stages are the timed steps in execution order.
	Stages []TraceStage `json:"stages,omitempty"`
	// Slices counts run probes per key slice (index = slice number).
	Slices []int `json:"slices,omitempty"`
	// Cost is the query's cost-stats snapshot.
	Cost TraceCost `json:"cost"`
}

// MaxLineBytes bounds one protocol line (a batch of ~64k subscriptions);
// longer lines terminate the connection.
const MaxLineBytes = 8 << 20
