package sfcd

import (
	"bufio"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"slices"
	"time"

	"sfccover/internal/persist"
)

// Replication over the wire: a follower daemon dials its primary, sends
// the stream position its store has durably applied, and the primary's
// serveReplicate streams every WAL record from there on — out of the
// store's in-memory ring when the follower is close behind, as a
// full-state reset otherwise. The follower applies each frame through
// the store's replay path before reading the next, so its durable state
// is always a prefix of the primary's history and a re-streamed overlap
// (after a reconnect) deduplicates by position instead of diverging.

// maxRepFrameRecords bounds one stream frame so a large catch-up batch
// or reset dump splits across lines instead of hitting MaxLineBytes.
const maxRepFrameRecords = 1024

// followDialTimeout bounds one connection attempt to the primary.
const followDialTimeout = 5 * time.Second

// serveReplicate is the primary half: it turns one replicate request
// into an open-ended sequence of response frames, all echoing the
// request id, ending with an error response when the stream dies
// (store closed, follower lagged past the ring, connection gone). It
// occupies one of the connection's worker slots for as long as the
// stream lives.
func (s *Server) serveReplicate(req Request, cs *connState) {
	if s.store == nil {
		cs.respCh <- connResponse{resp: &Response{ID: req.ID, OK: false, Code: CodeUnsupported, Error: "daemon runs without a data dir"}}
		return
	}
	t, err := s.store.Tail(req.Pos)
	if err != nil {
		cs.respCh <- connResponse{resp: &Response{ID: req.ID, OK: false, Code: CodeOpFailed, Error: err.Error()}}
		return
	}
	defer t.Close()
	// The connection now carries an open-ended stream: the follower
	// sends nothing after its replicate line, which must not read as
	// idleness, so lift the read deadline for the connection's lifetime.
	cs.streaming.Store(true)
	cs.conn.SetReadDeadline(time.Time{})
	s.repFollowers.Add(1)
	defer s.repFollowers.Add(-1)
	for {
		b, err := t.Next(cs.readerGone)
		if err != nil {
			// Best effort: if the follower is still there, the error frame
			// tells it to re-request from its applied position.
			cs.respCh <- connResponse{resp: &Response{ID: req.ID, OK: false, Code: CodeOpFailed, Error: err.Error()}}
			return
		}
		for _, f := range repFrames(b) {
			cs.respCh <- connResponse{resp: &Response{ID: req.ID, OK: true, Rep: f}}
		}
		s.repStreamed.Add(uint64(len(b.Recs)))
	}
}

// repFrames splits one tail batch into wire frames of at most
// maxRepFrameRecords records each.
func repFrames(b persist.TailBatch) []*RepFrame {
	if len(b.Recs) == 0 {
		if b.Reset {
			// An empty store's dump still needs one frame: it carries the
			// position and tells the follower to clear its own state.
			return []*RepFrame{{Reset: true, Pos: b.Pos}}
		}
		return nil
	}
	var frames []*RepFrame
	for off := 0; off < len(b.Recs); off += maxRepFrameRecords {
		end := min(off+maxRepFrameRecords, len(b.Recs))
		chunk := b.Recs[off:end]
		f := &RepFrame{Recs: base64.StdEncoding.EncodeToString(persist.EncodeRecords(chunk))}
		if b.Reset {
			f.Reset = true
			f.More = end < len(b.Recs)
			f.Pos = b.Pos
		} else {
			f.Base = b.Base + uint64(off)
			f.Pos = f.Base + uint64(len(chunk))
		}
		frames = append(frames, f)
	}
	return frames
}

// followLoop keeps the store tailing the primary until stopped,
// redialing with jittered exponential backoff so a dead — or not yet
// listening — primary is retried without hammering, and a fleet of
// followers does not reconnect in lockstep.
func (s *Server) followLoop() {
	defer close(s.followDone)
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	attempt := 0
	for {
		select {
		case <-s.followStop:
			return
		default:
		}
		s.repReconnects.Inc()
		start := time.Now()
		err := s.followOnce()
		if err == nil {
			return // stopped cleanly mid-stream
		}
		if time.Since(start) > time.Minute {
			attempt = 0 // the stream was healthy for a while; back off from scratch
		}
		attempt++
		select {
		case <-s.followStop:
			return
		case <-time.After(followBackoff(rng, attempt)):
		}
	}
}

// followBackoff is the delay before reconnect attempt (1-based): 50ms
// doubling to a 2s cap, uniformly jittered over [d/2, d].
func followBackoff(rng *rand.Rand, attempt int) time.Duration {
	d := 50 * time.Millisecond << uint(min(attempt-1, 5))
	if d > 2*time.Second {
		d = 2 * time.Second
	}
	half := d / 2
	return half + time.Duration(rng.Int63n(int64(half)+1))
}

// followOnce runs one stream session: dial, schema handshake, replicate
// from the store's position, apply frames until the connection dies or
// the loop is stopped. Returns nil only when stopped; any other exit is
// an error the loop retries.
func (s *Server) followOnce() error {
	conn, err := net.DialTimeout("tcp", s.followAddr, followDialTimeout)
	if err != nil {
		return err
	}
	defer conn.Close()
	sessionDone := make(chan struct{})
	defer close(sessionDone)
	go func() {
		// The apply loop blocks in reads; closing the connection is the
		// only way a stop can interrupt it promptly.
		select {
		case <-s.followStop:
			conn.Close()
		case <-sessionDone:
		}
	}()
	stopped := func() bool {
		select {
		case <-s.followStop:
			return true
		default:
			return false
		}
	}
	enc := json.NewEncoder(conn)
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 64<<10), MaxLineBytes)
	readResp := func() (*Response, error) {
		for {
			if !sc.Scan() {
				if err := sc.Err(); err != nil {
					return nil, err
				}
				return nil, errors.New("stream closed")
			}
			if len(sc.Bytes()) == 0 {
				continue
			}
			resp := new(Response)
			if err := json.Unmarshal(sc.Bytes(), resp); err != nil {
				return nil, fmt.Errorf("malformed stream frame: %w", err)
			}
			return resp, nil
		}
	}
	// Schema handshake before applying a single record: a primary serving
	// a different schema must be refused, not replicated.
	if err := enc.Encode(Request{ID: 1, Op: "hello"}); err != nil {
		return err
	}
	hello, err := readResp()
	if err != nil {
		if stopped() {
			return nil
		}
		return err
	}
	if !hello.OK {
		return fmt.Errorf("primary refused hello: %s", hello.Error)
	}
	if hello.Bits != s.schema.Bits() || !slices.Equal(hello.Attrs, s.schema.Attrs()) {
		return fmt.Errorf("primary serves a different schema (%d bits, attrs %v)", hello.Bits, hello.Attrs)
	}
	if err := enc.Encode(Request{ID: 2, Op: "replicate", Pos: s.store.Pos()}); err != nil {
		return err
	}
	var resetRecs []persist.Record
	for {
		resp, err := readResp()
		if err != nil {
			if stopped() {
				return nil
			}
			return err
		}
		if !resp.OK {
			return fmt.Errorf("stream ended: %s (%s)", resp.Error, resp.Code)
		}
		if resp.Rep == nil {
			return fmt.Errorf("stream frame without rep payload (id %d)", resp.ID)
		}
		if err := s.applyFrame(resp.Rep, &resetRecs); err != nil {
			return err
		}
		if stopped() {
			return nil
		}
	}
}

// applyFrame lands one stream frame in the store. Reset frames
// accumulate in resetRecs until the dump's final frame installs them
// atomically; plain frames apply in place, deduplicated by position.
func (s *Server) applyFrame(f *RepFrame, resetRecs *[]persist.Record) error {
	var recs []persist.Record
	if f.Recs != "" {
		raw, err := base64.StdEncoding.DecodeString(f.Recs)
		if err != nil {
			return fmt.Errorf("stream frame payload is not base64: %w", err)
		}
		if recs, err = persist.DecodeRecords(raw); err != nil {
			return err
		}
	}
	if f.Reset {
		*resetRecs = append(*resetRecs, recs...)
		if f.More {
			return nil
		}
		if err := s.store.InstallState(*resetRecs, f.Pos); err != nil {
			return err
		}
		*resetRecs = nil
		s.repResets.Inc()
	} else if err := s.store.ApplyReplicated(f.Base, recs); err != nil {
		// A gap means this session missed frames (it cannot self-heal);
		// the reconnect re-requests from the store's applied position.
		return err
	} else {
		s.repApplied.Add(uint64(len(recs)))
	}
	s.repPrimaryPos.Set(int64(f.Pos))
	return nil
}
