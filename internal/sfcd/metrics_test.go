package sfcd

import (
	"regexp"
	"strconv"
	"strings"
	"testing"

	"sfccover/internal/core"
	"sfccover/internal/subscription"
)

func TestCoveredOp(t *testing.T) {
	schema := subscription.MustSchema(10, "volume", "price")
	_, addr := startServer(t, schema, core.ModeExact)
	c, err := Dial(addr, schema)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	narrow := subscription.MustParse(schema, "volume in [200,300] && price in [50,60]")
	broad := subscription.MustParse(schema, "volume in [100,900] && price in [10,400]")
	sid, _, _, err := c.Subscribe(bg, narrow)
	if err != nil {
		t.Fatal(err)
	}
	covered, coveredID, err := c.QueryCovered(bg, broad)
	if err != nil {
		t.Fatal(err)
	}
	if !covered || coveredID != sid {
		t.Fatalf("QueryCovered = (%v, %d), want (true, %d)", covered, coveredID, sid)
	}
	// A strictly narrower probe covers nothing in the store.
	tiny := subscription.MustParse(schema, "volume in [250,260] && price in [55,58]")
	if covered, _, err = c.QueryCovered(bg, tiny); err != nil {
		t.Fatal(err)
	} else if covered {
		t.Fatal("strictly narrower probe must not cover the store")
	}
}

// promLine matches one Prometheus text-exposition sample:
// name, optional {labels}, one float value.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? (-?[0-9]+(\.[0-9]+)?([eE][-+]?[0-9]+)?|NaN|[+-]Inf)$`)

// promComment matches the HELP/TYPE comment lines.
var promComment = regexp.MustCompile(`^# (HELP [a-zA-Z_:][a-zA-Z0-9_:]* .+|TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram|summary|untyped))$`)

func TestMetricsOpRendersParsableExposition(t *testing.T) {
	schema := subscription.MustSchema(10, "volume", "price")
	_, addr := startServer(t, schema, core.ModeExact)
	c, err := Dial(addr, schema)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Put some load on the counters first.
	broad := subscription.MustParse(schema, "volume in [100,900] && price in [10,400]")
	narrow := subscription.MustParse(schema, "volume in [200,300] && price in [50,60]")
	if _, _, _, err := c.Subscribe(bg, broad); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := c.Subscribe(bg, narrow); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Query(bg, narrow); err != nil {
		t.Fatal(err)
	}

	text, err := c.Metrics(bg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(text, "\n") {
		t.Fatal("exposition must end in a newline")
	}
	samples := make(map[string]float64)
	helped := make(map[string]bool)
	typed := make(map[string]bool)
	for i, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			if !promComment.MatchString(line) {
				t.Fatalf("line %d is not a valid HELP/TYPE comment: %q", i+1, line)
			}
			fields := strings.Fields(line)
			if fields[1] == "HELP" {
				helped[fields[2]] = true
			} else {
				typed[fields[2]] = true
			}
			continue
		}
		if !promLine.MatchString(line) {
			t.Fatalf("line %d is not a valid sample: %q", i+1, line)
		}
		name := line[:strings.IndexAny(line, "{ ")]
		v, err := strconv.ParseFloat(line[strings.LastIndex(line, " ")+1:], 64)
		if err != nil {
			t.Fatalf("line %d value: %v", i+1, err)
		}
		samples[name] = v // per-shard samples collapse; fine for this check
		// Histogram samples carry the _bucket/_sum/_count suffixes; their
		// HELP/TYPE comments name the base metric, per the exposition spec.
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if trimmed := strings.TrimSuffix(name, suffix); trimmed != name && typed[trimmed] {
				base = trimmed
				break
			}
		}
		if !helped[base] || !typed[base] {
			t.Fatalf("line %d: sample %q precedes its HELP/TYPE comments", i+1, name)
		}
	}
	if got := samples["sfcd_subscriptions"]; got != 2 {
		t.Fatalf("sfcd_subscriptions = %v, want 2", got)
	}
	if got := samples["sfcd_queries_total"]; got < 3 {
		t.Fatalf("sfcd_queries_total = %v, want >= 3", got)
	}
	if got := samples["sfcd_shards"]; got != 4 {
		t.Fatalf("sfcd_shards = %v, want 4", got)
	}
	if _, ok := samples["sfcd_shard_size"]; !ok {
		t.Fatal("per-shard sfcd_shard_size samples missing")
	}
	if _, ok := samples["sfcd_shard_skew_ratio"]; !ok {
		t.Fatal("sfcd_shard_skew_ratio missing")
	}
}

func TestStatsIncludesSkew(t *testing.T) {
	schema := subscription.MustSchema(10, "volume", "price")
	_, addr := startServer(t, schema, core.ModeExact)
	c, err := Dial(addr, schema)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, _, _, err := c.Subscribe(bg, subscription.MustParse(schema, "volume in [1,2]")); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats(bg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Subscriptions != 1 || st.MaxShardSize != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// One sub across 4 shards: min 0, clamped denominator -> skew = max.
	if st.SkewRatio != 1 {
		t.Fatalf("SkewRatio = %v, want 1 (max 1 / clamped min 1)", st.SkewRatio)
	}
}
