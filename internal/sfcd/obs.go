package sfcd

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"sfccover/internal/obs"
)

// maxLinkLabels bounds the cardinality of the per-link subscription
// gauge: the largest namespaces get their own label, everything past the
// cap aggregates into link="_other". Link names are client-chosen
// strings, so an unbounded label set would let one misbehaving router
// blow up every scrape.
const maxLinkLabels = 16

// opMetricName maps a wire op to the label recorded in the daemon's op
// latency histogram. Most ops keep their wire name; the unsubscribe pair
// is renamed to the engine's vocabulary so dashboards read
// query/insert/remove consistently across tiers.
func opMetricName(op string) string {
	switch op {
	case "unsubscribe":
		return "remove"
	case "unsubscribe_batch":
		return "remove_batch"
	}
	return op
}

// wireOps is the protocol's full op vocabulary, used to pre-resolve
// every op's latency histogram at construction. Keep it in sync with
// the serve dispatch switch; an op missing here still gets metered,
// through the cold registry path.
var wireOps = []string{
	"ping", "hello", "unlink", "trace", "slowlog",
	"subscribe", "insert", "subscribe_batch",
	"unsubscribe", "unsubscribe_batch",
	"query", "query_batch", "covered", "get", "match",
	"stats", "rebalance", "snapshot", "metrics", "promote",
	// "replicate" is deliberately absent: a stream's lifetime is not a
	// latency, so the streaming op is never metered per-request.
}

// opHists is the per-request path's view of the op latency histograms:
// every known wire op's histogram is resolved once, up front, so
// recording a request costs one read-only map index — never the
// registry's lock (Registry.Hist takes an RWMutex; sfclint's
// hotpathclock bans it on the request path). Both the server's and the
// client's request loops record through one of these.
type opHists struct {
	cold  func(op string) *obs.Histogram // registry fallback for unknown ops
	hists map[string]*obs.Histogram      // raw wire op -> histogram, read-only after construction
}

// newOpHists resolves every wire op's histogram from the given registry
// lookup (Observer.Hist or Registry.Hist), keyed by the raw wire op so
// the hot path skips the opMetricName rename too.
func newOpHists(hist func(op string) *obs.Histogram) *opHists {
	h := &opHists{cold: hist, hists: make(map[string]*obs.Histogram, len(wireOps))}
	for _, op := range wireOps {
		h.hists[op] = hist(opMetricName(op))
	}
	return h
}

// observe records one request's latency against its op. Nil-safe, so
// callers with telemetry off hold a nil *opHists and pay one branch.
//
//sfc:hotpath
func (h *opHists) observe(op string, d time.Duration) {
	if h == nil {
		return
	}
	if hist, ok := h.hists[op]; ok {
		hist.Observe(d)
		return
	}
	// Unknown op (a newer client against this vocabulary): the cold
	// registry lookup keeps it metered. The indirect call is outside
	// hotpathclock's reach, but it is also not on any known-op path.
	h.cold(opMetricName(op)).Observe(d)
}

// MetricsText renders the daemon's full Prometheus page: the shared
// provider's scalar counters, the op/stage latency histograms
// (sfcd_op_latency_seconds) and the bounded per-link subscription
// gauges. Served by the metrics op (empty link) and the HTTP /metrics
// endpoint.
func (s *Server) MetricsText() string {
	var sb strings.Builder
	// A follower's shared provider and links are cold until promotion
	// hydrates them (racing that hydration is the other reason to skip:
	// serve() orders provider access after the primary flag, and so does
	// this).
	primary := s.primary.Load()
	if primary {
		sb.WriteString(RenderPrometheus(s.shared.Stats()))
	}
	if s.obs != nil {
		obs.RenderHistograms(&sb, "sfcd_op_latency_seconds",
			"Latency of daemon operations and engine stages, by op.",
			s.obs.Registry().Snapshot())
	}
	if primary {
		s.renderLinkGauges(&sb)
	}
	s.renderReplication(&sb, primary)
	return sb.String()
}

// renderReplication appends the replication/role gauges: which side this
// daemon is, the stream positions both sides agree on, and the lifetime
// stream counters. Rendered on every daemon with a store so dashboards
// need no scrape-config split between primaries and followers.
func (s *Server) renderReplication(sb *strings.Builder, primary bool) {
	role := 0
	if primary {
		role = 1
	}
	fmt.Fprintf(sb, "# HELP sfcd_primary Whether this daemon serves as primary (1) or follower (0).\n# TYPE sfcd_primary gauge\nsfcd_primary %d\n", role)
	if s.store == nil {
		return
	}
	pos := s.store.Pos()
	fmt.Fprintf(sb, "# HELP sfcd_replication_pos Replication stream position this daemon has durably applied.\n# TYPE sfcd_replication_pos gauge\nsfcd_replication_pos %d\n", pos)
	fmt.Fprintf(sb, "# HELP sfcd_replication_followers Follower streams currently being served.\n# TYPE sfcd_replication_followers gauge\nsfcd_replication_followers %d\n", s.repFollowers.Value())
	fmt.Fprintf(sb, "# HELP sfcd_replication_streamed_records_total Records streamed out to followers.\n# TYPE sfcd_replication_streamed_records_total counter\nsfcd_replication_streamed_records_total %d\n", s.repStreamed.Value())
	fmt.Fprintf(sb, "# HELP sfcd_replication_applied_records_total Records applied from a primary's stream.\n# TYPE sfcd_replication_applied_records_total counter\nsfcd_replication_applied_records_total %d\n", s.repApplied.Value())
	fmt.Fprintf(sb, "# HELP sfcd_replication_resets_total Full-state resets installed from a primary's stream.\n# TYPE sfcd_replication_resets_total counter\nsfcd_replication_resets_total %d\n", s.repResets.Value())
	fmt.Fprintf(sb, "# HELP sfcd_replication_reconnects_total Stream connection attempts to the primary.\n# TYPE sfcd_replication_reconnects_total counter\nsfcd_replication_reconnects_total %d\n", s.repReconnects.Value())
	if !primary {
		primaryPos := s.repPrimaryPos.Value()
		lag := primaryPos - int64(pos)
		if lag < 0 {
			lag = 0
		}
		fmt.Fprintf(sb, "# HELP sfcd_replication_lag Records the primary has committed that this follower has not yet applied (as of the last stream frame).\n# TYPE sfcd_replication_lag gauge\nsfcd_replication_lag %d\n", lag)
	}
}

// renderLinkGauges appends a links-materialized gauge and a per-link
// subscription gauge capped at maxLinkLabels labels (largest first,
// remainder summed into link="_other").
func (s *Server) renderLinkGauges(sb *strings.Builder) {
	type linkSize struct {
		name string
		n    int
	}
	s.linkMu.Lock()
	sizes := make([]linkSize, 0, len(s.links))
	for name, p := range s.links {
		sizes = append(sizes, linkSize{name, p.Stats().Subscriptions})
	}
	s.linkMu.Unlock()
	if len(sizes) == 0 {
		return
	}
	sort.Slice(sizes, func(a, b int) bool {
		if sizes[a].n != sizes[b].n {
			return sizes[a].n > sizes[b].n
		}
		return sizes[a].name < sizes[b].name
	})
	fmt.Fprintf(sb, "# HELP sfcd_links Link namespaces currently materialized.\n# TYPE sfcd_links gauge\nsfcd_links %d\n", len(sizes))
	sb.WriteString("# HELP sfcd_link_subscriptions Subscriptions per link namespace (largest links; the rest aggregate into link=\"_other\").\n# TYPE sfcd_link_subscriptions gauge\n")
	other := 0
	for i, ls := range sizes {
		if i < maxLinkLabels {
			fmt.Fprintf(sb, "sfcd_link_subscriptions{link=\"%s\"} %d\n", obs.EscapeLabel(ls.name), ls.n)
			continue
		}
		other += ls.n
	}
	if len(sizes) > maxLinkLabels {
		fmt.Fprintf(sb, "sfcd_link_subscriptions{link=\"_other\"} %d\n", other)
	}
}

// traceToWire converts an engine trace record into its wire form.
func traceToWire(tr *obs.QueryTrace) Trace {
	t := Trace{
		Op:          tr.Op,
		StartUnixNS: tr.Start.UnixNano(),
		TotalNS:     int64(tr.Total),
		Slices:      append([]int(nil), tr.Slices...),
		Cost: TraceCost{
			M:              tr.Cost.M,
			CubesGenerated: tr.Cost.CubesGenerated,
			RunsProbed:     tr.Cost.RunsProbed,
			VolumeFraction: tr.Cost.VolumeFraction,
			AspectRatio:    tr.Cost.AspectRatio,
			Found:          tr.Cost.Found,
		},
	}
	for _, st := range tr.Stages {
		t.Stages = append(t.Stages, TraceStage{Name: st.Name, DurNS: int64(st.Dur), Count: st.Count})
	}
	return t
}

// trace serves the trace op: run one covering query against the shared
// engine with tracing forced on and return the full trace record
// alongside the query outcome. Link namespaces are plain detectors
// without the traced pipeline, so a non-empty link is unsupported.
func (s *Server) trace(req Request) *Response {
	if req.Link != "" {
		return &Response{OK: false, Code: CodeUnsupported, Error: "trace addresses the shared engine only"}
	}
	sub, err := s.decodeSub(req.Payload)
	if err != nil {
		return badRequest(err)
	}
	res, tr := s.eng.TraceCover(sub)
	if res.Err != nil {
		return errResponse(res.Err)
	}
	wire := traceToWire(tr)
	return &Response{
		OK:     true,
		Result: &Result{Covered: res.Covered, CoveredBy: res.CoveredBy},
		Trace:  &wire,
	}
}

// slowlog serves the slowlog op: the daemon's ring of recent slow-query
// traces, newest first. With telemetry off the response is an empty
// (but OK) batch.
func (s *Server) slowlog(req Request) *Response {
	if req.Link != "" {
		return &Response{OK: false, Code: CodeUnsupported, Error: "slowlog addresses the shared engine only"}
	}
	if s.obs == nil {
		return &Response{OK: true}
	}
	traces := s.obs.SlowLog().Snapshot()
	out := make([]Trace, len(traces))
	for i := range traces {
		out[i] = traceToWire(&traces[i])
	}
	return &Response{OK: true, Traces: out}
}
