package sfcd

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"testing"
	"time"

	"sfccover/internal/core"
	"sfccover/internal/core/coretest"
	"sfccover/internal/engine"
	"sfccover/internal/subscription"
)

// startHardenedServer boots a daemon with the given hardening knobs.
func startHardenedServer(t *testing.T, schema *subscription.Schema, scfg ServerConfig) string {
	t.Helper()
	eng := engine.MustNew(engine.Config{
		Detector: core.Config{Schema: schema, Mode: core.ModeExact, Strategy: core.StrategyLinear},
		Shards:   2,
		Workers:  2,
	})
	srv := NewServerWith(eng, scfg)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		eng.Close()
	})
	return addr.String()
}

// TestMaxConnsRefusesCleanly pins the connection limit: the over-limit
// dial is answered with one clean connection-level error frame (code
// conn_limit) instead of a silent drop, and the slot is reusable once a
// connection leaves.
func TestMaxConnsRefusesCleanly(t *testing.T) {
	schema := coretest.Schema()
	addr := startHardenedServer(t, schema, ServerConfig{MaxConns: 1})

	c1, err := Dial(addr, schema)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()

	_, err = Dial(addr, schema)
	if err == nil {
		t.Fatal("dial beyond MaxConns must fail")
	}
	var se *ServerError
	if !errors.As(err, &se) || se.Code != CodeConnLimit {
		t.Fatalf("refused dial error = %v, want a ServerError with code %q", err, CodeConnLimit)
	}

	// Releasing the held connection frees the slot (the server drops it
	// asynchronously, so poll briefly).
	c1.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		c2, err := Dial(addr, schema)
		if err == nil {
			c2.Close()
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot never freed after close: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestReadTimeoutReapsIdleConn pins the per-request read timeout: a
// connection that goes quiet past the deadline is reaped — observable as
// EOF on the raw connection — while an active connection is unaffected
// because every served request re-arms the deadline.
func TestReadTimeoutReapsIdleConn(t *testing.T) {
	schema := coretest.Schema()
	addr := startHardenedServer(t, schema, ServerConfig{ReadTimeout: 150 * time.Millisecond})

	// An active client outlives many timeout windows.
	c, err := Dial(addr, schema)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 5; i++ {
		if err := c.Ping(bg); err != nil {
			t.Fatalf("active connection reaped at ping %d: %v", i, err)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// A raw connection that stalls after one request is reaped: the next
	// read returns EOF well before the test deadline.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := fmt.Fprintln(conn, `{"id":1,"op":"ping"}`); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(conn)
	if !sc.Scan() {
		t.Fatalf("no ping response: %v", sc.Err())
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil || errors.Is(err, io.EOF) == false && !isClosedNetErr(err) {
		t.Fatalf("stalled connection read = %v, want EOF (reaped)", err)
	}

	// The idle client from above has also been reaped by now.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := c.Ping(bg); err != nil {
			if !errors.Is(err, ErrConnectionLost) {
				t.Fatalf("reaped client error = %v, want ErrConnectionLost", err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("idle pipelined client never reaped")
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// isClosedNetErr reports a connection-reset style error, which some
// platforms yield instead of EOF when the server closes mid-read.
func isClosedNetErr(err error) bool {
	var ne net.Error
	if errors.As(err, &ne) {
		return !ne.Timeout()
	}
	return errors.Is(err, net.ErrClosed)
}

// TestDialTimeoutAgainstMuteEndpoint pins that a daemon that accepts but
// never answers cannot hang Dial: the configured timeout fires.
func TestDialTimeoutAgainstMuteEndpoint(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close() // hold it open, answer nothing
		}
	}()
	start := time.Now()
	_, err = DialContext(context.Background(), DialConfig{
		Addr:        ln.Addr().String(),
		Schema:      coretest.Schema(),
		DialTimeout: 200 * time.Millisecond,
	})
	if err == nil {
		t.Fatal("dial against a mute endpoint must fail")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("mute dial error = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("dial took %v, timeout did not bound it", elapsed)
	}
}

// TestClientDoubleClose pins the specified double-Close outcome: the
// first Close returns nil, every later one is rejected with the typed
// ErrClientClosed — recovery code that tears a client down twice gets a
// diagnosis, not unspecified behavior.
func TestClientDoubleClose(t *testing.T) {
	schema := subscription.MustSchema(8, "x", "y")
	addr := startHardenedServer(t, schema, ServerConfig{})
	c, err := Dial(addr, schema)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("first Close = %v, want nil", err)
	}
	if err := c.Close(); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("second Close = %v, want ErrClientClosed", err)
	}
	if err := c.Ping(context.Background()); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("Ping after Close = %v, want ErrClientClosed", err)
	}
}

// TestRefuseSlowLorisDoesNotStallAccept pins that over-limit refusals
// run off the accept loop: a herd of mute over-limit dialers — each
// entitled to the refusal path's bounded first-line wait — must not
// serialize behind one another, stall the served connection, or delay a
// well-behaved dialer's conn_limit answer. Before refusals became
// asynchronous, each mute connection held the accept loop for its full
// wait, so the herd added tens of seconds of accept latency.
func TestRefuseSlowLorisDoesNotStallAccept(t *testing.T) {
	schema := coretest.Schema()
	addr := startHardenedServer(t, schema, ServerConfig{MaxConns: 1})

	c1, err := Dial(addr, schema)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()

	// 25 over-limit connections that never write a byte. Serialized
	// 1s-per-connection refusals would take 25s; the test allows 5.
	const herd = 25
	mutes := make([]net.Conn, 0, herd)
	defer func() {
		for _, m := range mutes {
			m.Close()
		}
	}()
	for i := 0; i < herd; i++ {
		m, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		mutes = append(mutes, m)
	}

	// The served connection keeps answering while the herd pends.
	if err := c1.Ping(bg); err != nil {
		t.Fatalf("served connection stalled by refusal herd: %v", err)
	}

	// A well-behaved over-limit dialer gets its typed refusal promptly:
	// Dial sends hello immediately, so the refusal path answers without
	// waiting out its first-line deadline — unless it is stuck in line
	// behind the mutes.
	start := time.Now()
	_, err = Dial(addr, schema)
	var se *ServerError
	if !errors.As(err, &se) || se.Code != CodeConnLimit {
		t.Fatalf("over-limit dial error = %v, want ServerError code %q", err, CodeConnLimit)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("refusal took %v, herd serialized the refusal path", elapsed)
	}

	if err := c1.Ping(bg); err != nil {
		t.Fatalf("served connection unhealthy after refusal storm: %v", err)
	}
}
