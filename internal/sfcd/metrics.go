package sfcd

import (
	"fmt"
	"strconv"
	"strings"

	"sfccover/internal/core"
)

// metricDef describes one exported metric: Prometheus name, type and help
// text. The order here is the order in the rendered exposition.
type metricDef struct {
	name, kind, help string
}

var scalarMetrics = []metricDef{
	{"sfcd_queries_total", "counter", "Logical covering queries served."},
	{"sfcd_hits_total", "counter", "Covering queries that found a cover."},
	{"sfcd_runs_probed_total", "counter", "SFC run probes issued, the paper's unit of query cost."},
	{"sfcd_cubes_generated_total", "counter", "Standard cubes generated across all searches."},
	{"sfcd_shard_searches_total", "counter", "Per-shard searches issued (fan-out)."},
	{"sfcd_decomp_cache_hits_total", "counter", "Decomposition cache hits across the provider's SFC indexes."},
	{"sfcd_decomp_cache_misses_total", "counter", "Decomposition cache misses across the provider's SFC indexes."},
	{"sfcd_subscriptions", "gauge", "Subscriptions currently held."},
	{"sfcd_shards", "gauge", "Configured shard count."},
	{"sfcd_shard_size_max", "gauge", "Largest shard occupancy."},
	{"sfcd_shard_size_min", "gauge", "Smallest shard occupancy."},
	{"sfcd_shard_skew_ratio", "gauge", "Max/min shard occupancy ratio (min clamped to 1); 1.0 is balanced."},
	{"sfcd_rebalances_total", "counter", "Rebalance passes that moved at least one slice boundary."},
	{"sfcd_boundary_moves_total", "counter", "Slice boundary moves performed by the rebalancer."},
	{"sfcd_migrated_entries_total", "counter", "Index entries migrated across slice boundaries."},
	{"sfcd_snapshots_total", "counter", "Durable-state snapshots taken (store-wide)."},
	{"sfcd_wal_records_total", "counter", "Write-ahead-log records appended over the store's lifetime."},
	{"sfcd_wal_bytes_total", "counter", "Write-ahead-log bytes appended over the store's lifetime."},
}

// RenderPrometheus renders a provider snapshot in the Prometheus text
// exposition format (version 0.0.4): for every metric a `# HELP` line, a
// `# TYPE` line and one sample line, plus one `sfcd_shard_size{shard="i"}`
// sample per shard. Integral counters are rendered from their native
// integer type — never through float64, whose 53-bit mantissa would
// silently round counters past 2^53 (lifetime WAL bytes get there).
func RenderPrometheus(ps core.ProviderStats) string {
	var sb strings.Builder
	values := []string{
		strconv.Itoa(ps.Queries),
		strconv.Itoa(ps.Hits),
		strconv.Itoa(ps.RunsProbed),
		strconv.Itoa(ps.CubesGenerated),
		strconv.Itoa(ps.ShardSearches),
		strconv.FormatUint(ps.DecompCacheHits, 10),
		strconv.FormatUint(ps.DecompCacheMisses, 10),
		strconv.Itoa(ps.Subscriptions),
		strconv.Itoa(ps.Shards),
		strconv.Itoa(ps.MaxShardSize),
		strconv.Itoa(ps.MinShardSize),
		formatSample(ps.SkewRatio),
		strconv.Itoa(ps.Rebalances),
		strconv.Itoa(ps.BoundaryMoves),
		strconv.Itoa(ps.MigratedEntries),
		strconv.Itoa(ps.Snapshots),
		strconv.Itoa(ps.WALRecords),
		strconv.FormatInt(ps.WALBytes, 10),
	}
	for i, m := range scalarMetrics {
		fmt.Fprintf(&sb, "# HELP %s %s\n# TYPE %s %s\n%s %s\n",
			m.name, m.help, m.name, m.kind, m.name, values[i])
	}
	sb.WriteString("# HELP sfcd_shard_size Per-shard subscription count.\n# TYPE sfcd_shard_size gauge\n")
	for i, n := range ps.ShardSizes {
		fmt.Fprintf(&sb, "sfcd_shard_size{shard=\"%d\"} %d\n", i, n)
	}
	return sb.String()
}

// formatSample prints a genuinely floating-point value (the skew ratio)
// the way Prometheus parsers expect: integral values without an
// exponent, ratios with a short decimal form. Integral counters do NOT
// go through here — see RenderPrometheus.
func formatSample(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
