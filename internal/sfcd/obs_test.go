package sfcd

import (
	"errors"
	"strconv"
	"strings"
	"testing"

	"sfccover/internal/core"
	"sfccover/internal/engine"
	"sfccover/internal/obs"
	"sfccover/internal/subscription"
)

// exerciseOps drives one of each core wire op so every op histogram has
// at least one observation.
func exerciseOps(t *testing.T, c *Client, schema *subscription.Schema) {
	t.Helper()
	broad := subscription.MustParse(schema, "volume in [100,900] && price in [10,400]")
	narrow := subscription.MustParse(schema, "volume in [200,300] && price in [50,60]")
	if _, _, _, err := c.Subscribe(bg, broad); err != nil {
		t.Fatal(err)
	}
	sid, err := c.Insert(bg, narrow)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Query(bg, narrow); err != nil {
		t.Fatal(err)
	}
	if err := c.Unsubscribe(bg, sid); err != nil {
		t.Fatal(err)
	}
}

// histSample is one parsed sfcd_op_latency_seconds_bucket sample.
type histSample struct {
	le    string
	value uint64
}

// parseOpHistogram extracts the bucket series, _sum and _count for one op
// label from a metrics page, preserving the rendered bucket order.
func parseOpHistogram(t *testing.T, text, op string) (buckets []histSample, sum float64, count uint64) {
	t.Helper()
	bucketPrefix := `sfcd_op_latency_seconds_bucket{op="` + op + `",le="`
	scalarSuffix := `{op="` + op + `"}`
	for _, line := range strings.Split(text, "\n") {
		switch {
		case strings.HasPrefix(line, bucketPrefix):
			rest := line[len(bucketPrefix):]
			q := strings.Index(rest, `"`)
			if q < 0 {
				t.Fatalf("malformed bucket line: %q", line)
			}
			v, err := strconv.ParseUint(rest[strings.LastIndex(rest, " ")+1:], 10, 64)
			if err != nil {
				t.Fatalf("bucket value in %q: %v", line, err)
			}
			buckets = append(buckets, histSample{le: rest[:q], value: v})
		case strings.HasPrefix(line, "sfcd_op_latency_seconds_sum"+scalarSuffix):
			v, err := strconv.ParseFloat(line[strings.LastIndex(line, " ")+1:], 64)
			if err != nil {
				t.Fatalf("sum value in %q: %v", line, err)
			}
			sum = v
		case strings.HasPrefix(line, "sfcd_op_latency_seconds_count"+scalarSuffix):
			v, err := strconv.ParseUint(line[strings.LastIndex(line, " ")+1:], 10, 64)
			if err != nil {
				t.Fatalf("count value in %q: %v", line, err)
			}
			count = v
		}
	}
	return buckets, sum, count
}

// TestMetricsIncludesOpLatencyHistograms is the exposition round-trip
// check: after real traffic the daemon's metrics page must carry
// parseable sfcd_op_latency_seconds histograms for the query, insert and
// remove ops, with cumulative buckets that increase monotonically, end
// in +Inf, and agree with _count.
func TestMetricsIncludesOpLatencyHistograms(t *testing.T) {
	schema := subscription.MustSchema(10, "volume", "price")
	_, addr := startServer(t, schema, core.ModeExact)
	c, err := Dial(addr, schema)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	exerciseOps(t, c, schema)

	text, err := c.Metrics(bg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "# TYPE sfcd_op_latency_seconds histogram") {
		t.Fatalf("metrics page lacks the histogram TYPE line:\n%s", text)
	}
	for _, op := range []string{"query", "insert", "remove", "subscribe"} {
		buckets, sum, count := parseOpHistogram(t, text, op)
		if len(buckets) == 0 {
			t.Fatalf("op %q: no bucket samples", op)
		}
		if count == 0 {
			t.Fatalf("op %q: _count is zero after traffic", op)
		}
		if sum <= 0 {
			t.Fatalf("op %q: _sum = %v, want > 0", op, sum)
		}
		last := buckets[len(buckets)-1]
		if last.le != "+Inf" {
			t.Fatalf("op %q: last bucket le = %q, want +Inf", op, last.le)
		}
		if last.value != count {
			t.Fatalf("op %q: +Inf bucket %d != _count %d", op, last.value, count)
		}
		var prev uint64
		for i, b := range buckets {
			if b.value < prev {
				t.Fatalf("op %q: bucket %d (le=%s) value %d below previous %d — cumulative buckets must be monotone",
					op, i, b.le, b.value, prev)
			}
			prev = b.value
		}
	}
	// The engine-internal stage histograms share the page.
	if !strings.Contains(text, `sfcd_op_latency_seconds_count{op="engine_query"}`) {
		t.Fatal("engine stage histogram engine_query missing from the page")
	}
}

// TestMetricsLinkGaugesEscapedAndCapped checks the per-link gauge block:
// labels are escaped and cardinality is capped with an _other aggregate.
func TestMetricsLinkGaugesEscapedAndCapped(t *testing.T) {
	schema := subscription.MustSchema(10, "volume", "price")
	_, addr := startServer(t, schema, core.ModeExact)
	c, err := Dial(addr, schema)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	sub := subscription.MustParse(schema, "volume in [1,5]")
	payload, err := c.encodeSub(sub)
	if err != nil {
		t.Fatal(err)
	}
	// One link with a label-hostile name, plus enough links to overflow
	// the cap. The hostile link gets 2 subscriptions so it sorts first.
	weird := "br\"0\\x\n"
	for i := 0; i < 2; i++ {
		if _, err := c.do(bg, &Request{Op: "subscribe", Link: weird, Payload: payload}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < maxLinkLabels+3; i++ {
		link := "link-" + strconv.Itoa(i)
		if _, err := c.do(bg, &Request{Op: "subscribe", Link: link, Payload: payload}); err != nil {
			t.Fatal(err)
		}
	}

	text, err := c.Metrics(bg)
	if err != nil {
		t.Fatal(err)
	}
	want := `sfcd_link_subscriptions{link="br\"0\\x\n"} 2`
	if !strings.Contains(text, want) {
		t.Fatalf("escaped link gauge %q missing from:\n%s", want, text)
	}
	if !strings.Contains(text, `sfcd_link_subscriptions{link="_other"}`) {
		t.Fatal("overflow links must aggregate into link=\"_other\"")
	}
	gauges := strings.Count(text, "sfcd_link_subscriptions{")
	if gauges != maxLinkLabels+1 {
		t.Fatalf("%d link gauge samples, want cap %d + _other", gauges, maxLinkLabels+1)
	}
	wantTotal := "sfcd_links " + strconv.Itoa(maxLinkLabels+4)
	if !strings.Contains(text, wantTotal) {
		t.Fatalf("materialized-links gauge %q missing", wantTotal)
	}
}

// TestTraceOp runs a forced-trace query end to end and checks the wire
// record carries stage timings, per-slice probe counts and cost stats.
func TestTraceOp(t *testing.T) {
	schema := subscription.MustSchema(10, "volume", "price")
	_, addr := startServer(t, schema, core.ModeApprox)
	c, err := Dial(addr, schema)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	broad := subscription.MustParse(schema, "volume in [100,900] && price in [10,400]")
	narrow := subscription.MustParse(schema, "volume in [200,300] && price in [50,60]")
	sid, _, _, err := c.Subscribe(bg, broad)
	if err != nil {
		t.Fatal(err)
	}
	covered, coveredBy, trace, err := c.TraceQuery(bg, narrow)
	if err != nil {
		t.Fatal(err)
	}
	if !covered || coveredBy != sid {
		t.Fatalf("TraceQuery = (%v, %d), want (true, %d)", covered, coveredBy, sid)
	}
	if trace.Op != "query" {
		t.Fatalf("trace.Op = %q, want query", trace.Op)
	}
	if trace.TotalNS <= 0 {
		t.Fatalf("trace.TotalNS = %d, want > 0", trace.TotalNS)
	}
	if trace.StartUnixNS <= 0 {
		t.Fatalf("trace.StartUnixNS = %d, want > 0", trace.StartUnixNS)
	}
	if len(trace.Stages) == 0 {
		t.Fatal("trace carries no stages")
	}
	for _, st := range trace.Stages {
		if st.Name == "" || st.DurNS < 0 {
			t.Fatalf("malformed stage %+v", st)
		}
	}
	if !trace.Cost.Found {
		t.Fatal("trace.Cost.Found = false for a covered query")
	}
	if trace.Cost.RunsProbed <= 0 {
		t.Fatalf("trace.Cost.RunsProbed = %d, want > 0", trace.Cost.RunsProbed)
	}
	if len(trace.Slices) == 0 {
		t.Fatal("trace carries no per-slice probe counts")
	}

	// The trace op addresses the shared engine only.
	_, err = c.do(bg, &Request{Op: "trace", Link: "x", Payload: "ignored"})
	var se *ServerError
	if !errors.As(err, &se) || se.Code != CodeUnsupported {
		t.Fatalf("trace on a link = %v, want code %q", err, CodeUnsupported)
	}
}

// TestSlowLogOp checks the slow-query ring end to end: with a negative
// threshold every traced query lands in the log, and the slowlog op
// returns them newest first with their cost stats.
func TestSlowLogOp(t *testing.T) {
	schema := subscription.MustSchema(10, "volume", "price")
	eng := engine.MustNew(engine.Config{
		Detector: core.Config{Schema: schema, Mode: core.ModeApprox, Epsilon: 0.3, MaxCubes: 10000},
		Shards:   4,
		Workers:  4,
		Obs:      obs.New(obs.Config{SlowThreshold: -1, TraceSample: 1}),
	})
	srv := NewServer(eng)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		eng.Close()
	})
	c, err := Dial(addr.String(), schema)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	broad := subscription.MustParse(schema, "volume in [100,900] && price in [10,400]")
	narrow := subscription.MustParse(schema, "volume in [200,300] && price in [50,60]")
	if _, _, _, err := c.Subscribe(bg, broad); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, _, err := c.Query(bg, narrow); err != nil {
			t.Fatal(err)
		}
	}
	traces, err := c.SlowLog(bg)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) == 0 {
		t.Fatal("slow log is empty with SlowThreshold -1 and TraceSample 1")
	}
	for _, tr := range traces {
		if tr.Op == "" || tr.TotalNS <= 0 {
			t.Fatalf("malformed slow-log trace %+v", tr)
		}
	}
	// Newest first: start times must not increase.
	for i := 1; i < len(traces); i++ {
		if traces[i].StartUnixNS > traces[i-1].StartUnixNS {
			t.Fatalf("slow log not newest-first: trace %d starts after trace %d", i, i-1)
		}
	}

	_, err = c.do(bg, &Request{Op: "slowlog", Link: "x"})
	var se *ServerError
	if !errors.As(err, &se) || se.Code != CodeUnsupported {
		t.Fatalf("slowlog on a link = %v, want code %q", err, CodeUnsupported)
	}
}

// TestClientLatencySnapshot checks the client-side round-trip histograms.
func TestClientLatencySnapshot(t *testing.T) {
	schema := subscription.MustSchema(10, "volume", "price")
	_, addr := startServer(t, schema, core.ModeExact)
	c, err := Dial(addr, schema)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	exerciseOps(t, c, schema)

	lat := c.Latency()
	for _, op := range []string{"query", "insert", "remove", "subscribe", "hello"} {
		s, ok := lat[op]
		if !ok || s.Count == 0 {
			t.Fatalf("client latency snapshot lacks op %q: %+v", op, lat)
		}
		if s.Quantile(0.5) < 0 {
			t.Fatalf("op %q: negative p50", op)
		}
	}
}
