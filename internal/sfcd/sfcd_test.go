package sfcd

import (
	"bufio"
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"

	"sfccover/internal/core"
	"sfccover/internal/engine"
	"sfccover/internal/subscription"
	"sfccover/internal/workload"
)

// bg is the context for test operations that need no deadline.
var bg = context.Background()

func startServer(t *testing.T, schema *subscription.Schema, mode core.Mode) (*Server, string) {
	t.Helper()
	cfg := core.Config{Schema: schema, Mode: mode}
	if mode == core.ModeExact {
		cfg.Strategy = core.StrategyLinear
	}
	if mode == core.ModeApprox {
		cfg.Epsilon = 0.3
		cfg.MaxCubes = 10000
	}
	eng := engine.MustNew(engine.Config{Detector: cfg, Shards: 4, Workers: 4})
	srv := NewServer(eng)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		eng.Close()
	})
	return srv, addr.String()
}

func TestEndToEnd(t *testing.T) {
	schema := subscription.MustSchema(10, "volume", "price")
	_, addr := startServer(t, schema, core.ModeExact)

	c, err := Dial(addr, schema)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if c.Shards() != 4 || c.Mode() != "exact" {
		t.Errorf("hello negotiated shards=%d mode=%q", c.Shards(), c.Mode())
	}
	if err := c.Ping(bg); err != nil {
		t.Fatal(err)
	}

	broad := subscription.MustParse(schema, "volume in [100,900] && price in [10,400]")
	narrow := subscription.MustParse(schema, "volume in [200,300] && price in [50,60]")

	sid, covered, _, err := c.Subscribe(bg, broad)
	if err != nil {
		t.Fatal(err)
	}
	if covered {
		t.Error("first subscription cannot be covered")
	}

	covered, coveredBy, err := c.Query(bg, narrow)
	if err != nil {
		t.Fatal(err)
	}
	if !covered || coveredBy != sid {
		t.Errorf("narrow should be covered by %d, got covered=%v by %d", sid, covered, coveredBy)
	}

	// An event inside the broad subscription matches; one outside does not.
	in, err := subscription.ParseEvent(schema, "volume = 500, price = 100")
	if err != nil {
		t.Fatal(err)
	}
	matched, matchedBy, err := c.Match(bg, in)
	if err != nil {
		t.Fatal(err)
	}
	if !matched || matchedBy != sid {
		t.Errorf("event should match %d, got matched=%v by %d", sid, matched, matchedBy)
	}
	out, err := subscription.ParseEvent(schema, "volume = 50, price = 1000")
	if err != nil {
		t.Fatal(err)
	}
	if matched, _, err := c.Match(bg, out); err != nil || matched {
		t.Errorf("event outside all subscriptions: matched=%v err=%v", matched, err)
	}

	// Second subscribe of the narrow subscription reports the cover.
	nsid, covered, coveredBy, err := c.Subscribe(bg, narrow)
	if err != nil {
		t.Fatal(err)
	}
	if !covered || coveredBy != sid {
		t.Errorf("subscribe(narrow): covered=%v by %d, want by %d", covered, coveredBy, sid)
	}

	stats, err := c.Stats(bg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Subscriptions != 2 {
		t.Errorf("stats.Subscriptions = %d, want 2", stats.Subscriptions)
	}
	if stats.Queries < 3 {
		t.Errorf("stats.Queries = %d, want >= 3", stats.Queries)
	}
	if len(stats.ShardSizes) != 4 {
		t.Errorf("stats.ShardSizes has %d entries, want 4", len(stats.ShardSizes))
	}

	if err := c.Unsubscribe(bg, nsid); err != nil {
		t.Fatal(err)
	}
	if err := c.Unsubscribe(bg, nsid); err == nil {
		t.Error("double unsubscribe should fail")
	}
	if covered, _, err := c.Query(bg, narrow); err != nil || !covered {
		t.Errorf("broad still stored: covered=%v err=%v", covered, err)
	}
}

func TestBatchOps(t *testing.T) {
	schema := subscription.MustSchema(10, "volume", "price")
	_, addr := startServer(t, schema, core.ModeExact)
	c, err := Dial(addr, schema)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	subs, err := workload.Subscriptions(workload.SubSpec{
		Schema: schema, N: 128, WidthFrac: 0.3, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	added, err := c.SubscribeBatch(bg, subs)
	if err != nil {
		t.Fatal(err)
	}
	sids := make([]uint64, len(added))
	for i, r := range added {
		if r.Error != "" {
			t.Fatalf("subscribe %d: %s", i, r.Error)
		}
		sids[i] = r.SID
	}

	queried, err := c.QueryBatch(bg, subs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range queried {
		if r.Error != "" {
			t.Fatalf("query %d: %s", i, r.Error)
		}
		if !r.Covered {
			t.Errorf("query %d: a stored subscription covers itself in exact mode", i)
		}
	}

	removed, err := c.UnsubscribeBatch(bg, sids)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range removed {
		if r.Error != "" {
			t.Fatalf("unsubscribe %d: %s", i, r.Error)
		}
	}
	stats, err := c.Stats(bg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Subscriptions != 0 {
		t.Errorf("stats.Subscriptions = %d after draining", stats.Subscriptions)
	}
}

func TestConcurrentClients(t *testing.T) {
	schema := subscription.MustSchema(10, "volume", "price")
	_, addr := startServer(t, schema, core.ModeExact)

	const clients = 6
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for g := 0; g < clients; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(addr, schema)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			subs, err := workload.Subscriptions(workload.SubSpec{
				Schema: schema, N: 40, WidthFrac: 0.2, Seed: int64(g),
			})
			if err != nil {
				errs <- err
				return
			}
			added, err := c.SubscribeBatch(bg, subs)
			if err != nil {
				errs <- err
				return
			}
			if _, err := c.QueryBatch(bg, subs); err != nil {
				errs <- err
				return
			}
			sids := make([]uint64, len(added))
			for i, r := range added {
				sids[i] = r.SID
			}
			if _, err := c.UnsubscribeBatch(bg, sids); err != nil {
				errs <- err
				return
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestDialSchemaMismatch(t *testing.T) {
	schema := subscription.MustSchema(10, "volume", "price")
	_, addr := startServer(t, schema, core.ModeExact)
	cases := map[string]*subscription.Schema{
		"attribute names": subscription.MustSchema(10, "volume", "qty"),
		"bit width":       subscription.MustSchema(8, "volume", "price"),
		"attribute count": subscription.MustSchema(10, "volume"),
	}
	for name, bad := range cases {
		_, err := Dial(addr, bad)
		if err == nil {
			t.Errorf("dial with mismatched %s should fail", name)
			continue
		}
		// The mismatch is typed so operators can branch on it (re-deploy
		// the daemon vs. fix the client) without string matching.
		if !errors.Is(err, ErrSchemaMismatch) {
			t.Errorf("mismatched %s: error %v is not ErrSchemaMismatch", name, err)
		}
	}
	// A matching schema still dials fine after the failures.
	c, err := Dial(addr, schema)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
}

// TestProtocolErrors speaks the wire protocol directly to exercise the
// server's failure paths.
func TestProtocolErrors(t *testing.T) {
	schema := subscription.MustSchema(10, "volume", "price")
	_, addr := startServer(t, schema, core.ModeExact)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	sc := bufio.NewScanner(conn)

	send := func(line string) Response {
		t.Helper()
		if _, err := fmt.Fprintln(conn, line); err != nil {
			t.Fatal(err)
		}
		if !sc.Scan() {
			t.Fatalf("no response to %q (err: %v)", line, sc.Err())
		}
		var resp Response
		if err := json.Unmarshal(sc.Bytes(), &resp); err != nil {
			t.Fatalf("malformed response %q: %v", sc.Text(), err)
		}
		return resp
	}

	if resp := send(`{"id":1,"op":"warp"}`); resp.OK || resp.Code != CodeUnknownOp {
		t.Errorf("unknown op must fail with %s, got %+v", CodeUnknownOp, resp)
	}
	if resp := send(`{"id":2,"op":"subscribe","payload":"!!!"}`); resp.OK || resp.Code != CodeBadRequest {
		t.Errorf("non-base64 payload must fail with %s, got %+v", CodeBadRequest, resp)
	}
	if resp := send(`{"id":3,"op":"subscribe","payload":"AAAA"}`); resp.OK {
		t.Error("malformed wire payload must fail")
	}
	if resp := send(`{"id":4,"op":"unsubscribe","sid":999}`); resp.OK || resp.Code != CodeOpFailed {
		t.Errorf("unknown sid must fail with %s, got %+v", CodeOpFailed, resp)
	}
	// A batch with one bad payload still succeeds per item.
	sub := subscription.MustParse(schema, "volume in [1,5]")
	raw, err := sub.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	req, err := json.Marshal(Request{ID: 5, Op: "subscribe_batch", Payloads: []string{
		"!!!", base64.StdEncoding.EncodeToString(raw),
	}})
	if err != nil {
		t.Fatal(err)
	}
	resp := send(string(req))
	if !resp.OK || len(resp.Results) != 2 {
		t.Fatalf("mixed batch: ok=%v results=%d", resp.OK, len(resp.Results))
	}
	if resp.Results[0].Error == "" {
		t.Error("bad item should carry an error")
	}
	if resp.Results[1].Error != "" || resp.Results[1].SID == 0 {
		t.Errorf("good item should succeed, got %+v", resp.Results[1])
	}
}

// TestConnectionLevelErrorFramesClose pins the fatal protocol failures:
// a line the server cannot attribute to a request id — unparseable JSON,
// or the reserved id 0 — gets one id-0 error frame and the connection is
// closed, exactly as the protocol documents (a pipelining client must
// treat stray id-0 frames as fatal, so the server must not keep serving
// past one).
func TestConnectionLevelErrorFramesClose(t *testing.T) {
	schema := subscription.MustSchema(10, "volume", "price")
	_, addr := startServer(t, schema, core.ModeExact)
	for name, line := range map[string]string{
		"malformed json": `not json`,
		"reserved id 0":  `{"id":0,"op":"ping"}`,
	} {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(conn)
		if _, err := fmt.Fprintln(conn, line); err != nil {
			t.Fatal(err)
		}
		if !sc.Scan() {
			t.Fatalf("%s: no error frame (err: %v)", name, sc.Err())
		}
		var resp Response
		if err := json.Unmarshal(sc.Bytes(), &resp); err != nil {
			t.Fatalf("%s: malformed frame %q: %v", name, sc.Text(), err)
		}
		if resp.OK || resp.ID != 0 || resp.Code != CodeBadRequest {
			t.Fatalf("%s: frame = %+v, want a connection-level %s frame", name, resp, CodeBadRequest)
		}
		// The connection dies after the frame.
		if sc.Scan() {
			t.Fatalf("%s: connection still serving after a connection-level error: %q", name, sc.Text())
		}
		conn.Close()
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	schema := subscription.MustSchema(10, "volume", "price")
	srv, addr := startServer(t, schema, core.ModeExact)
	c, err := Dial(addr, schema)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Ping(bg); err == nil {
		t.Error("ping after server close should fail")
	}
	if _, err := srv.Listen("127.0.0.1:0"); err == nil {
		t.Error("listen after close should fail")
	}
}

func TestApproxDaemonSoundness(t *testing.T) {
	schema := subscription.MustSchema(10, "volume", "price")
	_, addr := startServer(t, schema, core.ModeApprox)
	c, err := Dial(addr, schema)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	pairs, err := workload.Covers(workload.CoverSpec{
		Schema: schema, N: 100, SlackFrac: 0.2, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	parents := make([]*subscription.Subscription, len(pairs))
	children := make([]*subscription.Subscription, len(pairs))
	for i, p := range pairs {
		parents[i] = p.Parent
		children[i] = p.Child
	}
	if _, err := c.SubscribeBatch(bg, parents); err != nil {
		t.Fatal(err)
	}
	results, err := c.QueryBatch(bg, children)
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for i, r := range results {
		if r.Error != "" {
			t.Fatalf("query %d: %s", i, r.Error)
		}
		if r.Covered {
			hits++
		}
	}
	if hits < len(pairs)/2 {
		t.Errorf("recall too low through the daemon: %d/%d", hits, len(pairs))
	}
}
