package sfcd_test

import (
	"bufio"
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"sfccover/internal/core"
	"sfccover/internal/engine"
	"sfccover/internal/persist"
	"sfccover/internal/sfcd"
	"sfccover/internal/subscription"
)

var bg = context.Background()

// follower bundles one follower daemon tailing a primary's WAL stream.
type follower struct {
	eng   *engine.Engine
	store *persist.Store
	srv   *sfcd.Server
	addr  string
}

// startFollower boots a follower over dir streaming from primaryAddr,
// with the same engine configuration as startDaemon so post-promotion
// answers are comparable bit for bit.
func startFollower(t *testing.T, schema *subscription.Schema, dir, primaryAddr string) *follower {
	t.Helper()
	eng, err := engine.New(engine.Config{
		Detector:  core.Config{Schema: schema, Mode: core.ModeExact, TrackCovered: true, Seed: 5},
		Shards:    4,
		Partition: engine.PartitionPrefix,
		Workers:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	store, err := persist.Open(dir, schema, persist.Options{})
	if err != nil {
		eng.Close()
		t.Fatal(err)
	}
	srv, err := sfcd.NewFollowerServer(eng, store, sfcd.ServerConfig{}, primaryAddr)
	if err != nil {
		store.Close()
		eng.Close()
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return &follower{eng: eng, store: store, srv: srv, addr: addr.String()}
}

// stop tears the follower down (idempotent against a test that already
// closed parts of it).
func (f *follower) stop(t *testing.T) {
	t.Helper()
	f.srv.Close()
	f.eng.Close()
	if err := f.store.Close(); err != nil {
		t.Fatal(err)
	}
}

// awaitPos waits for the follower's stream position to reach target.
func (f *follower) awaitPos(t *testing.T, target uint64) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for f.store.Pos() < target {
		if time.Now().After(deadline) {
			t.Fatalf("follower stuck at stream position %d of %d", f.store.Pos(), target)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestFollowerStreamsAndServesAfterPromotion is the end-to-end
// replication pin at the daemon layer: a follower tails the primary's
// WAL over the wire, refuses state ops with a typed not_primary error
// while following, and after the primary dies a promote over the wire
// turns it into a primary serving bit-identical covering answers with
// the primary's subscription IDs intact.
func TestFollowerStreamsAndServesAfterPromotion(t *testing.T) {
	schema := subscription.MustSchema(8, "x", "y")
	primary := startDaemon(t, schema, t.TempDir())
	fol := startFollower(t, schema, t.TempDir(), primary.client.Addr())
	defer fol.stop(t)

	// Build state on the primary: the anti-chain family in the shared
	// namespace plus a private link, with a couple of removes so the
	// stream carries both record kinds.
	shared, err := primary.client.Provider("")
	if err != nil {
		t.Fatal(err)
	}
	linked, err := primary.client.Provider("L")
	if err != nil {
		t.Fatal(err)
	}
	var sids []uint64
	for i := 0; i < 16; i++ {
		id, err := shared.Insert(antiRect(t, schema, i))
		if err != nil {
			t.Fatal(err)
		}
		sids = append(sids, id)
	}
	for i := 0; i < 6; i++ {
		if _, err := linked.Insert(antiRect(t, schema, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := shared.Remove(sids[15]); err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"":  remoteFingerprint(t, schema, shared),
		"L": remoteFingerprint(t, schema, linked),
	}

	fol.awaitPos(t, primary.store.Pos())

	// A plain client may dial a follower on purpose (ping, metrics,
	// promote); state ops there fail typed, per op.
	fc, err := sfcd.Dial(fol.addr, schema)
	if err != nil {
		t.Fatalf("plain dial to follower: %v", err)
	}
	defer fc.Close()
	if err := fc.Ping(bg); err != nil {
		t.Fatalf("ping on follower: %v", err)
	}
	fshared, err := fc.Provider("")
	if err != nil {
		t.Fatal(err)
	}
	_, err = fshared.Insert(antiRect(t, schema, 3))
	var se *sfcd.ServerError
	if !errors.As(err, &se) || se.Code != sfcd.CodeNotPrimary {
		t.Fatalf("insert on follower error = %v, want ServerError code %q", err, sfcd.CodeNotPrimary)
	}

	// Kill the primary, promote the follower over the wire. A second
	// promote is a documented no-op.
	primary.stop(t)
	if err := fc.Promote(bg); err != nil {
		t.Fatalf("promote: %v", err)
	}
	if err := fc.Promote(bg); err != nil {
		t.Fatalf("second promote: %v", err)
	}
	if got := fol.srv.Role(); got != sfcd.RolePrimary {
		t.Fatalf("role after promote = %q, want %q", got, sfcd.RolePrimary)
	}

	flinked, err := fc.Provider("L")
	if err != nil {
		t.Fatal(err)
	}
	if got := remoteFingerprint(t, schema, fshared); got != want[""] {
		t.Fatalf("shared fingerprint diverged after promotion\n got %s\nwant %s", got, want[""])
	}
	if got := remoteFingerprint(t, schema, flinked); got != want["L"] {
		t.Fatalf("link fingerprint diverged after promotion\n got %s\nwant %s", got, want["L"])
	}

	// SID continuity: an ID the primary allocated addresses the same
	// subscription on the promoted follower.
	before := fshared.Len()
	if err := fshared.Remove(sids[3]); err != nil {
		t.Fatalf("remove primary-allocated sid on promoted follower: %v", err)
	}
	if got := fshared.Len(); got != before-1 {
		t.Fatalf("len after remove = %d, want %d", got, before-1)
	}
}

// TestClientFailoverAcrossPromotion drives the failover client through
// the full kill→promote sequence: a client holding both addresses keeps
// its subscription IDs valid, lands on the follower's address, and
// serves identical covering answers once the replacement connection is
// up. A background hammer pins that every error surfaced during the
// outage is typed — ErrConnectionLost or a context deadline — never a
// silent wrong answer or an unknown failure.
func TestClientFailoverAcrossPromotion(t *testing.T) {
	schema := subscription.MustSchema(8, "x", "y")
	primary := startDaemon(t, schema, t.TempDir())
	fol := startFollower(t, schema, t.TempDir(), primary.client.Addr())
	defer fol.stop(t)

	ctx, cancel := context.WithTimeout(bg, 30*time.Second)
	defer cancel()
	cl, err := sfcd.DialContext(ctx, sfcd.DialConfig{
		Addrs:          []string{primary.client.Addr(), fol.addr},
		Schema:         schema,
		RequestTimeout: 250 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	p, err := cl.Provider("")
	if err != nil {
		t.Fatal(err)
	}
	var sids []uint64
	for i := 0; i < 16; i++ {
		id, err := p.Insert(antiRect(t, schema, i))
		if err != nil {
			t.Fatal(err)
		}
		sids = append(sids, id)
	}
	want := remoteFingerprint(t, schema, p)
	fol.awaitPos(t, primary.store.Pos())

	// Hammer pings through the outage; every failure must be typed.
	var (
		hammerWg   sync.WaitGroup
		hammerStop = make(chan struct{})
		badErrs    = make(chan error, 64)
	)
	hammerWg.Add(1)
	go func() {
		defer hammerWg.Done()
		for {
			select {
			case <-hammerStop:
				return
			default:
			}
			hctx, hcancel := context.WithTimeout(bg, 50*time.Millisecond)
			err := cl.Ping(hctx)
			hcancel()
			if err != nil && !errors.Is(err, sfcd.ErrConnectionLost) &&
				!errors.Is(err, context.DeadlineExceeded) {
				select {
				case badErrs <- err:
				default:
				}
			}
		}
	}()

	primary.stop(t)
	if err := fol.srv.Promote(); err != nil {
		t.Fatal(err)
	}

	// Wait for the replacement connection, the same gate a real overlay
	// applies before resuming traffic.
	deadline := time.Now().Add(15 * time.Second)
	for cl.FailoverStats().Reconnects == 0 {
		if time.Now().After(deadline) {
			t.Fatal("client never reconnected after failover")
		}
		time.Sleep(time.Millisecond)
	}
	close(hammerStop)
	hammerWg.Wait()
	select {
	case err := <-badErrs:
		t.Fatalf("untyped error surfaced during outage: %v", err)
	default:
	}

	if got := cl.Addr(); got != fol.addr {
		t.Fatalf("client address after failover = %q, want follower %q", got, fol.addr)
	}
	fs := cl.FailoverStats()
	if fs.ConnLost == 0 || fs.Failovers == 0 {
		t.Fatalf("failover stats = %+v, want ConnLost and Failovers > 0", fs)
	}
	if got := remoteFingerprint(t, schema, p); got != want {
		t.Fatalf("fingerprint diverged across failover\n got %s\nwant %s", got, want)
	}
	if err := p.Remove(sids[0]); err != nil {
		t.Fatalf("remove primary-allocated sid after failover: %v", err)
	}
}

// TestClientCancelFailRace hammers one client from many goroutines with
// near-expired contexts — first against a healthy daemon, then through
// the daemon's death — pinning the pending-map cleanup under -race: a
// cancelled waiter and the reader's delivery must never scribble on a
// pooled request, and every surfaced error stays typed.
func TestClientCancelFailRace(t *testing.T) {
	schema := subscription.MustSchema(8, "x", "y")
	d := startDaemon(t, schema, t.TempDir())

	const goroutines = 8
	var wg sync.WaitGroup
	bad := make(chan error, 64)
	hammer := func(cl *sfcd.Client, iters int) {
		defer wg.Done()
		rng := rand.New(rand.NewSource(time.Now().UnixNano()))
		for i := 0; i < iters; i++ {
			ctx, cancel := context.WithTimeout(bg, time.Duration(rng.Intn(200))*time.Microsecond)
			err := cl.Ping(ctx)
			cancel()
			if err != nil && !errors.Is(err, context.DeadlineExceeded) &&
				!errors.Is(err, context.Canceled) &&
				!errors.Is(err, sfcd.ErrConnectionLost) &&
				!errors.Is(err, sfcd.ErrClientClosed) {
				select {
				case bad <- err:
				default:
				}
			}
		}
	}

	// Phase 1: healthy daemon. After the storm the client must still
	// work — no leaked or corrupted pending state.
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go hammer(d.client, 200)
	}
	wg.Wait()
	if err := d.client.Ping(bg); err != nil {
		t.Fatalf("client unhealthy after cancel storm: %v", err)
	}

	// Phase 2: same storm with the daemon dying mid-flight.
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go hammer(d.client, 400)
	}
	time.Sleep(2 * time.Millisecond)
	d.srv.Close()
	wg.Wait()
	d.client.Close() //nolint:errcheck // teardown
	d.eng.Close()
	if err := d.store.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-bad:
		t.Fatalf("untyped error under cancel/fail race: %v", err)
	default:
	}
}

// TestReplicateWireStream exercises the replicate op at the wire level,
// the way a non-Go follower would: hello, then replicate from position
// zero, reading frames until the stream catches up with the store. The
// frames must decode to the exact WAL records in commit order.
func TestReplicateWireStream(t *testing.T) {
	schema := subscription.MustSchema(8, "x", "y")
	d := startDaemon(t, schema, t.TempDir())
	defer d.stop(t)

	shared, err := d.client.Provider("")
	if err != nil {
		t.Fatal(err)
	}
	var sids []uint64
	for i := 0; i < 4; i++ {
		id, err := shared.Insert(antiRect(t, schema, i))
		if err != nil {
			t.Fatal(err)
		}
		sids = append(sids, id)
	}
	if err := shared.Remove(sids[1]); err != nil {
		t.Fatal(err)
	}
	target := d.store.Pos()

	conn, err := net.Dial("tcp", d.client.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	sc := bufio.NewScanner(conn)
	readResp := func() sfcd.Response {
		t.Helper()
		if !sc.Scan() {
			t.Fatalf("stream ended early: %v", sc.Err())
		}
		var resp sfcd.Response
		if err := json.Unmarshal(sc.Bytes(), &resp); err != nil {
			t.Fatalf("bad frame %q: %v", sc.Text(), err)
		}
		return resp
	}

	if _, err := fmt.Fprintln(conn, `{"id":1,"op":"hello"}`); err != nil {
		t.Fatal(err)
	}
	if resp := readResp(); !resp.OK || resp.Role != sfcd.RolePrimary {
		t.Fatalf("hello response = %+v", resp)
	}
	if _, err := fmt.Fprintln(conn, `{"id":2,"op":"replicate","pos":0}`); err != nil {
		t.Fatal(err)
	}

	var recs []persist.Record
	next := uint64(0)
	for next < target {
		resp := readResp()
		if !resp.OK || resp.Rep == nil {
			t.Fatalf("stream frame = %+v, want OK with rep", resp)
		}
		f := resp.Rep
		if f.Reset {
			t.Fatalf("fresh follower from pos 0 got a reset dump: %+v", f)
		}
		if f.Base != next {
			t.Fatalf("frame base = %d, want contiguous %d", f.Base, next)
		}
		raw, err := base64.StdEncoding.DecodeString(f.Recs)
		if err != nil {
			t.Fatal(err)
		}
		batch, err := persist.DecodeRecords(raw)
		if err != nil {
			t.Fatal(err)
		}
		if f.Pos != f.Base+uint64(len(batch)) {
			t.Fatalf("frame pos = %d, want base %d + %d records", f.Pos, f.Base, len(batch))
		}
		recs = append(recs, batch...)
		next = f.Pos
	}

	if uint64(len(recs)) != target {
		t.Fatalf("streamed %d records, store committed %d", len(recs), target)
	}
	// 4 inserts then 1 remove, in commit order.
	for i := 0; i < 4; i++ {
		if recs[i].Remove || recs[i].SID != sids[i] {
			t.Fatalf("record %d = %+v, want add of sid %d", i, recs[i], sids[i])
		}
	}
	if !recs[4].Remove || recs[4].SID != sids[1] {
		t.Fatalf("record 4 = %+v, want remove of sid %d", recs[4], sids[1])
	}
}
