package sfcd

import (
	"errors"
	"strings"
	"testing"

	"sfccover/internal/core"
	"sfccover/internal/engine"
	"sfccover/internal/subscription"
	"sfccover/internal/workload"
)

// startPrefixServer serves an engine on the curve-prefix plan — the one
// with movable slice boundaries. ModeOff keeps the arrival path to pure
// placement, which is all skew needs.
func startPrefixServer(t *testing.T, schema *subscription.Schema) string {
	t.Helper()
	eng := engine.MustNew(engine.Config{
		Detector:  core.Config{Schema: schema, Mode: core.ModeOff},
		Shards:    8,
		Partition: engine.PartitionPrefix,
		Workers:   4,
	})
	srv := NewServer(eng)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		eng.Close()
	})
	return addr.String()
}

func TestRebalanceOp(t *testing.T) {
	schema := subscription.MustSchema(10, "volume", "price")
	addr := startPrefixServer(t, schema)
	c, err := Dial(addr, schema)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	subs, err := workload.Subscriptions(workload.SubSpec{
		Schema: schema, N: 1500, Dist: workload.DistHotspot,
		WidthFrac: 0.02, HotspotFrac: 0.9, HotspotWidthFrac: 0.04, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.SubscribeBatch(bg, subs); err != nil {
		t.Fatal(err)
	}
	before, err := c.Stats(bg)
	if err != nil {
		t.Fatal(err)
	}
	if before.SkewRatio < 2 {
		t.Fatalf("precondition: hotspot load not skewed (%.2f, sizes %v)", before.SkewRatio, before.ShardSizes)
	}
	if before.Rebalances != 0 || before.BoundaryMoves != 0 {
		t.Fatalf("counters must start zero: %+v", before)
	}

	totalMoves, totalMigrated := 0, 0
	var last RebalanceInfo
	for pass := 0; pass < 20; pass++ {
		res, err := c.Rebalance(bg)
		if err != nil {
			t.Fatal(err)
		}
		totalMoves += res.Moves
		totalMigrated += res.Migrated
		last = res
		if res.Moves == 0 {
			break
		}
	}
	if totalMoves == 0 || totalMigrated == 0 {
		t.Fatalf("rebalance over the wire moved nothing (moves=%d migrated=%d)", totalMoves, totalMigrated)
	}
	if last.SkewAfter > last.SkewBefore {
		t.Fatalf("pass reported worsening skew: %+v", last)
	}

	after, err := c.Stats(bg)
	if err != nil {
		t.Fatal(err)
	}
	if after.SkewRatio >= before.SkewRatio {
		t.Fatalf("SkewRatio %.2f did not improve on %.2f", after.SkewRatio, before.SkewRatio)
	}
	if after.Subscriptions != before.Subscriptions {
		t.Fatalf("rebalance changed the population: %d -> %d", before.Subscriptions, after.Subscriptions)
	}
	if after.Rebalances < 1 || after.BoundaryMoves != totalMoves || after.MigratedEntries != totalMigrated {
		t.Fatalf("stats counters out of sync: %+v (want %d moves, %d migrated)", after, totalMoves, totalMigrated)
	}

	metrics, err := c.Metrics(bg)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"sfcd_rebalances_total", "sfcd_boundary_moves_total", "sfcd_migrated_entries_total"} {
		if !strings.Contains(metrics, name) {
			t.Errorf("metrics exposition lacks %s", name)
		}
		if strings.Contains(metrics, name+" 0\n") {
			t.Errorf("%s still zero after a rebalance", name)
		}
	}
}

// TestRebalanceOpUnsupported: a hash-partition daemon has no movable
// boundaries; the op must answer with the unsupported code, and the
// remote provider must translate it to core.ErrRebalanceUnsupported.
func TestRebalanceOpUnsupported(t *testing.T) {
	schema := subscription.MustSchema(10, "volume", "price")
	_, addr := startServer(t, schema, core.ModeExact) // PartitionHash underneath
	c, err := Dial(addr, schema)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	_, err = c.Rebalance(bg)
	var se *ServerError
	if !errors.As(err, &se) || se.Code != CodeUnsupported {
		t.Fatalf("Rebalance on hash daemon = %v, want ServerError[%s]", err, CodeUnsupported)
	}
	rp, err := c.Provider("")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rp.Rebalance(); !errors.Is(err, core.ErrRebalanceUnsupported) {
		t.Fatalf("RemoteProvider.Rebalance = %v, want ErrRebalanceUnsupported", err)
	}
}

// TestRemoteBatchWritePlumbing pins that AddBatch/RemoveBatch genuinely
// ride the batch wire ops in one round trip each and keep slot alignment
// through per-item failures.
func TestRemoteBatchWritePlumbing(t *testing.T) {
	schema := subscription.MustSchema(10, "volume", "price")
	_, addr := startServer(t, schema, core.ModeExact)
	c, err := Dial(addr, schema)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rp, err := c.Provider("batch-link")
	if err != nil {
		t.Fatal(err)
	}
	defer rp.Close()

	wide := subscription.MustParse(schema, "volume <= 1020 && price <= 1020")
	narrow := subscription.MustParse(schema, "volume in [5,1000] && price in [5,1000]")
	foreign := subscription.New(subscription.MustSchema(8, "volume", "price"))

	first := rp.AddBatch([]*subscription.Subscription{wide})
	if first[0].Err != nil || first[0].ID == 0 {
		t.Fatalf("AddBatch([wide]) = %+v", first[0])
	}
	res := rp.AddBatch([]*subscription.Subscription{narrow, foreign})
	if res[0].Err != nil || !res[0].Covered || res[0].CoveredBy != first[0].ID {
		t.Fatalf("AddBatch narrow = %+v, want covered by %d", res[0], first[0].ID)
	}
	if res[1].Err == nil {
		t.Fatal("foreign-schema slot must fail without poisoning the batch")
	}
	if rp.Len() != 2 {
		t.Fatalf("Len = %d, want 2", rp.Len())
	}
	errs := rp.RemoveBatch([]uint64{first[0].ID, 9999})
	if errs[0] != nil || errs[1] == nil {
		t.Fatalf("RemoveBatch = %v, want [nil, error]", errs)
	}
	if rp.Len() != 1 {
		t.Fatalf("Len = %d after batch remove, want 1", rp.Len())
	}
}
