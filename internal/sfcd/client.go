package sfcd

import (
	"bufio"
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"sfccover/internal/obs"
	"sfccover/internal/subscription"
)

// Sentinel errors of the client surface. Operation failures wrap one of
// these (or a *ServerError), so callers branch with errors.Is/errors.As
// instead of string matching.
var (
	// ErrSchemaMismatch is returned by Dial when the server's negotiated
	// schema (bit width, attribute names) differs from the client's.
	ErrSchemaMismatch = errors.New("sfcd: server schema differs from client schema")
	// ErrClientClosed is returned by operations issued after Close.
	ErrClientClosed = errors.New("sfcd: client is closed")
	// ErrConnectionLost is returned by operations that were in flight when
	// their connection failed (server restart, network drop). An op that
	// may have reached the server is never silently retried — the caller
	// decides whether its op is safe to reissue. What happens next depends
	// on the dial config: with a single Addr the failure is terminal and
	// callers dial a fresh client; with a replica list (DialConfig.Addrs)
	// the client reconnects in the background, ops whose request frame
	// provably never reached the socket are reissued transparently on the
	// replacement connection, and ops issued after the failure wait —
	// bounded by their context — for the next connection.
	ErrConnectionLost = errors.New("sfcd: connection lost")
	// ErrNotPrimary is returned when a failover client's dial finds the
	// daemon answering the hello as a follower: the failover path treats
	// it as a failed attempt and keeps cycling the replica list until one
	// of them is promoted. A plain (single-address) client accepts the
	// connection — pinging, scraping metrics and promoting all work on a
	// follower — and sees the not_primary refusal per state op instead.
	ErrNotPrimary = errors.New("sfcd: daemon is a follower, not a primary")
)

// errUnsent marks a connection failure observed before the request's frame
// was handed to the socket writer: the server cannot have seen the request,
// so reissuing it on the next connection is exactly-once safe. do wraps
// the terminal error with it and, in failover mode, retries instead of
// surfacing it. A frame the writer did pick up is never marked — the write
// may have partially reached the server, and a newline-framed request that
// made it out whole may have been applied with its response lost, so those
// fail typed with ErrConnectionLost like before.
var errUnsent = errors.New("request was never written")

// ServerError is an error frame the server answered a request with.
type ServerError struct {
	// Code classifies the failure (CodeBadRequest, CodeOpFailed, ...).
	Code string
	// Msg is the human-readable explanation.
	Msg string
}

// Error implements error.
func (e *ServerError) Error() string {
	if e.Code == "" {
		return "sfcd: server: " + e.Msg
	}
	return "sfcd: server [" + e.Code + "]: " + e.Msg
}

// DefaultDialTimeout bounds connection establishment plus the hello
// exchange when DialConfig leaves DialTimeout zero.
const DefaultDialTimeout = 10 * time.Second

// writeBacklog buffers the frame queue between callers and the writer
// goroutine: senders enqueue without a synchronous handoff, and the
// writer drains whole bursts into one flush.
const writeBacklog = 256

// DialConfig parameterizes DialContext.
type DialConfig struct {
	// Addr is the server's TCP address. Required unless Addrs is set, in
	// which case it is simply tried first.
	Addr string
	// Addrs lists the replica set's addresses and switches the client
	// into failover mode: a lost connection is redialed in the background
	// with jittered exponential backoff, cycling the whole list (Addr
	// first if set) until a primary answers. Ops in flight at the failure
	// still fail with ErrConnectionLost — an op that may have reached the
	// server is never silently reissued — but ops issued afterwards wait,
	// bounded by their context or RequestTimeout, for the next
	// connection. Leave empty for the classic fail-fast single-connection
	// client.
	Addrs []string
	// Schema is the client's attribute schema (required); Dial verifies it
	// against the server's.
	Schema *subscription.Schema
	// DialTimeout bounds connection establishment and the hello exchange
	// (0 = DefaultDialTimeout). In failover mode it also bounds each
	// background reconnect attempt.
	DialTimeout time.Duration
	// RequestTimeout is the per-operation deadline applied to every
	// request whose context carries no deadline of its own (0 = none).
	// Failover-mode callers want one: it bounds how long an op waits for
	// a reconnection that may never come.
	RequestTimeout time.Duration
}

// clientConn owns one TCP connection's lifetime: the writer and reader
// goroutines, the pending-request demux map and the terminal error. The
// Client swaps these wholesale on failover; every request runs against
// exactly one clientConn from registration to response, so a
// reconnection can never cross-deliver another connection's frames.
type clientConn struct {
	conn net.Conn
	addr string

	writeCh chan outFrame
	done    chan struct{} // closed on terminal failure
	wg      sync.WaitGroup

	mu      sync.Mutex
	pending map[uint64]*pendingReq
	nextID  uint64
	err     error // terminal error, set once
}

// outFrame is one request's wire bytes queued for the writer goroutine,
// tagged with the request id so the writer can mark the pending entry
// handed (see pendingReq.handed) the moment it picks the frame up.
type outFrame struct {
	id   uint64
	line []byte
}

// pendingReq is one in-flight request's demux state. handed flips
// (under clientConn.mu, via the pending map) when the writer goroutine
// dequeues the request's frame: from then on bytes may have reached the
// server, so the request is no longer provably unsent and a connection
// failure fails it typed instead of retrying it. Entries whose frame died
// in writeCh — or was never enqueued at all — keep handed false and are
// safe to reissue.
type pendingReq struct {
	ch     chan *Response
	handed bool
}

// Client is a pipelined sfcd protocol client. Any number of goroutines
// may issue operations concurrently on one Client over one TCP
// connection: requests carry ids, a writer goroutine streams frames
// (coalescing bursts into single flushes), and a reader goroutine
// demultiplexes responses back to their callers — no caller ever waits
// behind another caller's round trip. Every operation takes a
// context.Context; cancellation abandons the call (the response, if it
// ever arrives, is discarded) without disturbing the connection.
//
// With DialConfig.Addrs set the client adds a failover layer: a lost
// connection is replaced in the background (jittered backoff, cycling
// the replica list, accepting only daemons that answer the hello as
// primary) and subsequent ops ride the new connection.
type Client struct {
	cfg      DialConfig
	schema   *subscription.Schema
	addrs    []string // rotation order; addrs[0] is the preferred address
	failover bool     // Addrs was set: reconnect instead of staying down

	closed     atomic.Bool // flipped by the first Close call
	lifeCtx    context.Context
	lifeCancel context.CancelFunc
	reconnWG   sync.WaitGroup

	connMu sync.Mutex
	cc     *clientConn   // nil while a failover client is between connections
	ready  chan struct{} // closed when cc becomes usable; replaced on disconnect

	// lat records per-op round-trip latencies (send to demultiplexed
	// response), client-side: queueing, the wire and the server's service
	// time all included — the number a router actually waits.
	lat *obs.Registry
	// opLat holds the pre-resolved per-op histograms do records into.
	opLat *opHists

	// Failover lifecycle counters (see FailoverStats).
	connLost   obs.Counter
	reconnects obs.Counter
	failovers  obs.Counter

	// Hello-negotiated server facts (connMu: refreshed on reconnect).
	shards    int
	partition string
	mode      string
}

// Dial connects to an sfcd server with default configuration and verifies
// with a hello exchange that the server's schema matches the client's
// (attribute names and bit width both participate in the binary wire
// format's header check, so a mismatch here fails fast — with
// ErrSchemaMismatch — instead of per request).
func Dial(addr string, schema *subscription.Schema) (*Client, error) {
	return DialContext(context.Background(), DialConfig{Addr: addr, Schema: schema})
}

// DialContext connects per cfg. The context bounds connection
// establishment and the hello exchange; the returned client is not tied
// to it. With cfg.Addrs set, the addresses are tried in order (Addr
// first) and the first daemon that answers the hello as a primary wins.
func DialContext(ctx context.Context, cfg DialConfig) (*Client, error) {
	if cfg.Schema == nil {
		return nil, errors.New("sfcd: dial config needs a schema")
	}
	addrs := make([]string, 0, len(cfg.Addrs)+1)
	if cfg.Addr != "" {
		addrs = append(addrs, cfg.Addr)
	}
	for _, a := range cfg.Addrs {
		if a != "" && !slices.Contains(addrs, a) {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		return nil, errors.New("sfcd: dial config needs an address")
	}
	c := &Client{
		cfg:      cfg,
		schema:   cfg.Schema,
		addrs:    addrs,
		failover: len(cfg.Addrs) > 0,
		ready:    make(chan struct{}),
		lat:      obs.NewRegistry(obs.DefaultMaxOps),
	}
	c.lifeCtx, c.lifeCancel = context.WithCancel(context.Background())
	c.opLat = newOpHists(c.lat.Hist)
	var errs []error
	for _, addr := range addrs {
		cc, err := c.dialOne(ctx, addr)
		if err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", addr, err))
			continue
		}
		c.install(cc)
		return c, nil
	}
	c.lifeCancel()
	if len(errs) == 1 {
		return nil, errs[0]
	}
	return nil, fmt.Errorf("sfcd: no dialable primary: %w", errors.Join(errs...))
}

// dialOne establishes and vets one connection: dial, hello, schema
// check, and — so a failover client never settles on a read-only
// replica — the role check. On success the connection's loops are
// already running.
func (c *Client) dialOne(ctx context.Context, addr string) (*clientConn, error) {
	dialTimeout := c.cfg.DialTimeout
	if dialTimeout == 0 {
		dialTimeout = DefaultDialTimeout
	}
	// One deadline covers connecting AND the hello exchange, as
	// documented — a server that accepts late and then stalls must not
	// get a second full timeout.
	deadline := time.Now().Add(dialTimeout)
	d := net.Dialer{Deadline: deadline}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("sfcd: %w", err)
	}
	cc := &clientConn{
		conn:    conn,
		addr:    addr,
		writeCh: make(chan outFrame, writeBacklog),
		done:    make(chan struct{}),
		pending: make(map[uint64]*pendingReq),
	}
	cc.wg.Add(2)
	go cc.readLoop()
	go cc.writeLoop()

	hctx, cancel := context.WithDeadline(ctx, deadline)
	defer cancel()
	resp, err := c.doConn(hctx, cc, &Request{Op: "hello"})
	if err != nil {
		cc.shutdown(ErrClientClosed)
		return nil, err
	}
	if err := checkSchema(c.schema, resp); err != nil {
		cc.shutdown(ErrClientClosed)
		return nil, err
	}
	// Only a failover client rejects followers at dial time: it is
	// looking for the writable member. A plain client may want a
	// follower on purpose — to ping it, scrape metrics, or promote it —
	// and every state op fails there with a typed not_primary error
	// anyway.
	if c.failover && resp.Role == RoleFollower {
		cc.shutdown(ErrClientClosed)
		return nil, ErrNotPrimary
	}
	c.connMu.Lock()
	c.shards, c.partition, c.mode = resp.Shards, resp.Partition, resp.Mode
	c.connMu.Unlock()
	return cc, nil
}

// install publishes cc as the client's live connection, wakes every op
// waiting for one, and (in failover mode) arms the supervisor that will
// replace it when it dies. A connection racing a concurrent Close is
// torn down instead of published.
func (c *Client) install(cc *clientConn) {
	c.connMu.Lock()
	if c.closed.Load() {
		c.connMu.Unlock()
		cc.shutdown(ErrClientClosed)
		return
	}
	c.cc = cc
	ready := c.ready
	c.connMu.Unlock()
	close(ready)
	if c.failover {
		c.reconnWG.Add(1)
		go c.supervise(cc)
	}
}

// supervise watches one installed connection and, once it fails for any
// reason other than Close, retires it and runs the redial loop.
func (c *Client) supervise(cc *clientConn) {
	defer c.reconnWG.Done()
	<-cc.done
	cc.wg.Wait()
	if c.closed.Load() {
		return
	}
	c.connLost.Inc()
	c.connMu.Lock()
	if c.cc == cc {
		c.cc = nil
		c.ready = make(chan struct{})
	}
	c.connMu.Unlock()
	c.redial(cc.addr)
}

// redial cycles the replica list with jittered exponential backoff until
// a primary answers or the client is closed. The rotation starts at the
// address that just failed: a bounced primary that comes right back is
// preferred over a follower that would refuse anyway.
func (c *Client) redial(lastAddr string) {
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	start := max(slices.Index(c.addrs, lastAddr), 0)
	for attempt := 1; ; attempt++ {
		for i := range c.addrs {
			if c.closed.Load() {
				return
			}
			addr := c.addrs[(start+i)%len(c.addrs)]
			cc, err := c.dialOne(c.lifeCtx, addr)
			if err != nil {
				continue
			}
			c.reconnects.Inc()
			if addr != lastAddr {
				c.failovers.Inc()
			}
			c.install(cc)
			return
		}
		select {
		case <-c.lifeCtx.Done():
			return
		case <-time.After(followBackoff(rng, attempt)):
		}
	}
}

// checkSchema verifies the hello response against the client schema.
func checkSchema(schema *subscription.Schema, resp *Response) error {
	if resp.Bits != schema.Bits() || len(resp.Attrs) != schema.NumAttrs() {
		return fmt.Errorf("%w: server has %d bits and %d attrs, client has %d bits and %d attrs",
			ErrSchemaMismatch, resp.Bits, len(resp.Attrs), schema.Bits(), schema.NumAttrs())
	}
	for i, attr := range schema.Attrs() {
		if resp.Attrs[i] != attr {
			return fmt.Errorf("%w: server attribute %d is %q, client expects %q",
				ErrSchemaMismatch, i, resp.Attrs[i], attr)
		}
	}
	return nil
}

// Close shuts the client down. In-flight operations fail with
// ErrClientClosed, and a failover client stops reconnecting. The first
// call returns nil (even on a client whose connection already failed);
// every later call is rejected with ErrClientClosed — a specified, typed
// outcome instead of silently re-tearing-down, so recovery code that
// double-closes by accident gets a diagnosis rather than unspecified
// behavior.
func (c *Client) Close() error {
	if c.closed.Swap(true) {
		return ErrClientClosed
	}
	c.lifeCancel()
	c.connMu.Lock()
	cc := c.cc
	c.connMu.Unlock()
	if cc != nil {
		cc.fail(ErrClientClosed)
		cc.wg.Wait()
	}
	c.reconnWG.Wait()
	return nil
}

// Schema returns the client's attribute schema.
func (c *Client) Schema() *subscription.Schema { return c.schema }

// Shards reports the server's shard count (from the latest hello
// exchange).
func (c *Client) Shards() int {
	c.connMu.Lock()
	defer c.connMu.Unlock()
	return c.shards
}

// Partition reports the server's partition strategy.
func (c *Client) Partition() string {
	c.connMu.Lock()
	defer c.connMu.Unlock()
	return c.partition
}

// Mode reports the server's detection mode.
func (c *Client) Mode() string {
	c.connMu.Lock()
	defer c.connMu.Unlock()
	return c.mode
}

// Addr reports the address of the connection currently carrying
// requests, or "" while a failover client is between connections.
func (c *Client) Addr() string {
	c.connMu.Lock()
	defer c.connMu.Unlock()
	if c.cc == nil {
		return ""
	}
	return c.cc.addr
}

// FailoverStats is a point-in-time snapshot of a client's
// connection-lifecycle counters. All zeros on a single-address client
// that never lost its connection.
type FailoverStats struct {
	// ConnLost counts connections that failed under the client.
	ConnLost uint64
	// Reconnects counts replacement connections successfully installed.
	Reconnects uint64
	// Failovers counts the subset of reconnects that landed on a
	// different address than the one that failed.
	Failovers uint64
}

// FailoverStats reports the client's connection-lifecycle counters.
func (c *Client) FailoverStats() FailoverStats {
	return FailoverStats{
		ConnLost:   c.connLost.Value(),
		Reconnects: c.reconnects.Value(),
		Failovers:  c.failovers.Value(),
	}
}

// acquireConn returns the connection to issue a request on. A fail-fast
// client always returns its one connection (dead or alive — the
// registration step surfaces the terminal error); a failover client
// blocks, bounded by ctx, while the redial loop hunts for a primary. A
// failover client that finds the installed connection already failed
// retires it on the spot rather than handing it out: the supervisor will
// replace it, but waiting here instead of bouncing requests off the
// corpse is what lets the unsent-retry path block until the replacement
// arrives.
func (c *Client) acquireConn(ctx context.Context) (*clientConn, error) {
	for {
		if c.closed.Load() {
			return nil, ErrClientClosed
		}
		c.connMu.Lock()
		cc, ready := c.cc, c.ready
		if cc != nil && c.failover {
			select {
			case <-cc.done:
				// Idempotent with the supervisor's own retirement: whichever
				// runs second sees c.cc no longer pointing at the corpse.
				c.cc = nil
				c.ready = make(chan struct{})
				cc, ready = nil, c.ready
			default:
			}
		}
		c.connMu.Unlock()
		if cc != nil {
			return cc, nil
		}
		select {
		case <-ready:
		case <-ctx.Done():
			return nil, fmt.Errorf("sfcd: waiting for reconnect: %w", ctx.Err())
		case <-c.lifeCtx.Done():
			return nil, ErrClientClosed
		}
	}
}

// fail records the terminal error (first one wins) and tears the
// connection down; every waiter and later caller observes it.
func (cc *clientConn) fail(err error) {
	cc.mu.Lock()
	if cc.err == nil {
		cc.err = err
		close(cc.done)
	}
	cc.mu.Unlock()
	cc.conn.Close()
}

// shutdown fails the connection and waits for its loops to exit.
func (cc *clientConn) shutdown(err error) {
	cc.fail(err)
	cc.wg.Wait()
}

// terminalErr returns the recorded terminal error.
func (cc *clientConn) terminalErr() error {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.err
}

// register allocates a request id and parks pr to receive its response.
// Registration against an already-failed connection returns the terminal
// error; the request was provably never sent, so do may reissue it.
func (cc *clientConn) register(pr *pendingReq) (uint64, error) {
	cc.mu.Lock()
	if cc.err != nil {
		err := cc.err
		cc.mu.Unlock()
		return 0, fmt.Errorf("%w: %w", errUnsent, err)
	}
	cc.nextID++
	id := cc.nextID
	pr.handed = false
	cc.pending[id] = pr
	cc.mu.Unlock()
	return id, nil
}

// abandon gives up on a pending request (cancellation, connection
// failure) and settles the ownership of its response channel. Delivery
// happens under cc.mu while the pending entry exists (see readLoop), so
// exactly one of two states holds once the lock is taken: the entry is
// still present — no response was or ever will be delivered, so the
// entry is removed and the channel recycled — or the entry is gone,
// meaning the reader completed its send before releasing the lock, and
// the response is sitting in the (buffered) channel. Both paths leave
// the channel safely poolable; no third interleaving exists. This is
// the demux map's answer to the cancel-vs-fail race: the old scheme
// deleted the entry outside the delivery lock and had to leak the
// channel rather than risk a late send into a pooled — possibly
// reissued — channel.
//
// It also reports whether the writer ever picked the request's frame up
// (handed): false means the frame provably never reached the socket and
// the request is safe to reissue.
func (cc *clientConn) abandon(id uint64, pr *pendingReq) (resp *Response, handed bool) {
	cc.mu.Lock()
	_, mine := cc.pending[id]
	if mine {
		delete(cc.pending, id)
	}
	handed = pr.handed
	cc.mu.Unlock()
	if !mine {
		resp = <-pr.ch // guaranteed: the delivering send completed under cc.mu
	}
	reqPool.Put(pr)
	return resp, handed
}

// writeLoop streams frames onto the connection. A burst of pipelined
// requests is coalesced into one flush: after writing a frame it keeps
// draining queued frames before flushing, so concurrent callers share
// syscalls instead of paying one write+flush each.
func (cc *clientConn) writeLoop() {
	defer cc.wg.Done()
	w := bufio.NewWriter(cc.conn)
	for {
		select {
		case <-cc.done:
			return
		case f := <-cc.writeCh:
			if _, err := cc.write(w, f); err != nil {
				cc.fail(fmt.Errorf("%w: %v", ErrConnectionLost, err))
				return
			}
			// One scheduler yield lets concurrently submitting callers
			// land in this burst instead of each paying their own flush;
			// without it a loaded single-P process degenerates to one
			// frame per syscall.
			runtime.Gosched()
			coalescing := true
			for coalescing {
				select {
				case more := <-cc.writeCh:
					if _, err := cc.write(w, more); err != nil {
						cc.fail(fmt.Errorf("%w: %v", ErrConnectionLost, err))
						return
					}
				default:
					coalescing = false
				}
			}
			if err := w.Flush(); err != nil {
				cc.fail(fmt.Errorf("%w: %v", ErrConnectionLost, err))
				return
			}
		}
	}
}

// write marks the frame's pending entry handed — from here on its bytes
// may reach the server, so a failure must not reissue it — and hands the
// line to the buffered writer. The mark goes through the pending map
// under cc.mu (never a retained pointer): an abandoned request's entry is
// already gone, so its pooled pendingReq can never be scribbled on.
func (cc *clientConn) write(w *bufio.Writer, f outFrame) (int, error) {
	cc.mu.Lock()
	if pr, ok := cc.pending[f.id]; ok {
		pr.handed = true
	}
	cc.mu.Unlock()
	return w.Write(f.line)
}

// readLoop demultiplexes response lines to their waiting callers by
// request id. Responses for abandoned requests are dropped; an id-0
// frame is a connection-level server error and terminates the client.
func (cc *clientConn) readLoop() {
	defer cc.wg.Done()
	sc := bufio.NewScanner(cc.conn)
	sc.Buffer(make([]byte, 64<<10), MaxLineBytes)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		resp := new(Response)
		if err := json.Unmarshal(sc.Bytes(), resp); err != nil {
			cc.fail(fmt.Errorf("sfcd: malformed response: %w", err))
			return
		}
		if resp.ID == 0 {
			cc.fail(&ServerError{Code: resp.Code, Msg: resp.Error})
			return
		}
		// Deliver while holding the lock: a channel receives its response
		// only while its pending entry exists, which is what lets abandon
		// reason about channel ownership without a race. The send never
		// blocks (the channel is buffered and receives exactly one frame).
		cc.mu.Lock()
		if pr, ok := cc.pending[resp.ID]; ok {
			delete(cc.pending, resp.ID)
			pr.ch <- resp
		}
		cc.mu.Unlock()
	}
	if err := sc.Err(); err != nil {
		cc.fail(fmt.Errorf("%w: %v", ErrConnectionLost, err))
		return
	}
	cc.fail(fmt.Errorf("%w: connection closed by server", ErrConnectionLost))
}

// do issues one request and waits for its response. It applies the
// configured RequestTimeout when ctx carries no deadline, acquires the
// current connection (waiting for one, in failover mode), and runs the
// request against it; the caller's wait is independent of every other
// in-flight request.
//
//sfc:hotpath
func (c *Client) do(ctx context.Context, req *Request) (*Response, error) {
	if c.cfg.RequestTimeout > 0 {
		if _, hasDeadline := ctx.Deadline(); !hasDeadline {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, c.cfg.RequestTimeout)
			defer cancel()
		}
	}
	for {
		cc, err := c.acquireConn(ctx)
		if err != nil {
			return nil, err
		}
		resp, err := c.doConn(ctx, cc, req)
		if err != nil && c.failover && errors.Is(err, errUnsent) {
			// The frame provably never reached the socket: reissuing on the
			// next connection is exactly-once safe. acquireConn blocks —
			// bounded by ctx — until the redial loop installs one, so this
			// loop never spins against the same dead connection.
			continue
		}
		return resp, err
	}
}

// doConn issues one request on one specific connection: registers the
// request id for demultiplexing and hands the frame to the writer. The
// request's whole lifetime is pinned to cc — if cc dies the op fails
// typed, never silently migrating to a replacement connection.
//
//sfc:hotpath
func (c *Client) doConn(ctx context.Context, cc *clientConn, req *Request) (*Response, error) {
	pr := reqPool.Get().(*pendingReq)
	id, err := cc.register(pr)
	if err != nil {
		reqPool.Put(pr)
		return nil, err
	}
	req.ID = id
	line, err := json.Marshal(req)
	if err != nil {
		cc.abandon(id, pr)
		return nil, fmt.Errorf("sfcd: send: %w", err)
	}
	// The server drops the connection on lines beyond MaxLineBytes; fail
	// the request with an actionable error instead (split the batch).
	if len(line) >= MaxLineBytes {
		cc.abandon(id, pr)
		return nil, fmt.Errorf("sfcd: request line is %d bytes, server cap is %d: split the batch", len(line), MaxLineBytes)
	}
	//sfc:allowclock one clock pair per request is the round-trip histogram's contract: it times every client op exactly
	t0 := time.Now()
	select {
	case cc.writeCh <- outFrame{id: id, line: append(line, '\n')}:
	case <-ctx.Done():
		cc.abandon(id, pr)
		return nil, fmt.Errorf("sfcd: %s: %w", req.Op, ctx.Err())
	case <-cc.done:
		// The frame was never even enqueued: provably unsent.
		cc.abandon(id, pr)
		return nil, fmt.Errorf("%w: %w", errUnsent, cc.terminalErr())
	}
	select {
	case resp := <-pr.ch:
		//sfc:allowclock pairs with the t0 read above; the histogram itself is pre-resolved, not fetched
		c.opLat.observe(req.Op, time.Since(t0))
		reqPool.Put(pr)
		return checkResponse(resp)
	case <-ctx.Done():
		// The response may have raced the cancellation; prefer it.
		if resp, _ := cc.abandon(id, pr); resp != nil {
			//sfc:allowclock pairs with the t0 read above; the histogram itself is pre-resolved, not fetched
			c.opLat.observe(req.Op, time.Since(t0))
			return checkResponse(resp)
		}
		return nil, fmt.Errorf("sfcd: %s: %w", req.Op, ctx.Err())
	case <-cc.done:
		// The response may have been delivered just before the failure —
		// prefer it. Failing that, a frame the writer never picked up died
		// in writeCh: provably unsent, safe to reissue.
		resp, handed := cc.abandon(id, pr)
		if resp != nil {
			//sfc:allowclock pairs with the t0 read above; the histogram itself is pre-resolved, not fetched
			c.opLat.observe(req.Op, time.Since(t0))
			return checkResponse(resp)
		}
		if !handed {
			return nil, fmt.Errorf("%w: %w", errUnsent, cc.terminalErr())
		}
		return nil, cc.terminalErr()
	}
}

// reqPool recycles the per-request demux state (response channel plus the
// handed flag). An entry is returned to the pool only once its request's
// delivery question is settled — the response was received, or abandon
// proved no send (and no handed-mark: the pending entry is gone) can ever
// reach it again.
var reqPool = sync.Pool{New: func() any { return &pendingReq{ch: make(chan *Response, 1)} }}

// checkResponse lifts error frames into *ServerError.
func checkResponse(resp *Response) (*Response, error) {
	if !resp.OK {
		return nil, &ServerError{Code: resp.Code, Msg: resp.Error}
	}
	return resp, nil
}

func (c *Client) encodeSub(s *subscription.Subscription) (string, error) {
	raw, err := s.MarshalBinary()
	if err != nil {
		return "", fmt.Errorf("sfcd: %w", err)
	}
	return base64.StdEncoding.EncodeToString(raw), nil
}

func (c *Client) encodeSubs(subs []*subscription.Subscription) ([]string, error) {
	payloads := make([]string, len(subs))
	for i, s := range subs {
		p, err := c.encodeSub(s)
		if err != nil {
			return nil, err
		}
		payloads[i] = p
	}
	return payloads, nil
}

// Ping checks liveness.
func (c *Client) Ping(ctx context.Context) error {
	_, err := c.do(ctx, &Request{Op: "ping"})
	return err
}

// Subscribe stores s on the server, returning its id and the outcome of
// the pre-insert covering query.
func (c *Client) Subscribe(ctx context.Context, s *subscription.Subscription) (sid uint64, covered bool, coveredBy uint64, err error) {
	payload, err := c.encodeSub(s)
	if err != nil {
		return 0, false, 0, err
	}
	resp, err := c.do(ctx, &Request{Op: "subscribe", Payload: payload})
	if err != nil {
		return 0, false, 0, err
	}
	if resp.Result == nil {
		return 0, false, 0, errors.New("sfcd: response carries no result")
	}
	return resp.Result.SID, resp.Result.Covered, resp.Result.CoveredBy, nil
}

// SubscribeBatch stores a batch in one round trip. The results align with
// subs; per-item failures are reported in Result.Error.
func (c *Client) SubscribeBatch(ctx context.Context, subs []*subscription.Subscription) ([]Result, error) {
	payloads, err := c.encodeSubs(subs)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(ctx, &Request{Op: "subscribe_batch", Payloads: payloads})
	if err != nil {
		return nil, err
	}
	if len(resp.Results) != len(subs) {
		return nil, fmt.Errorf("sfcd: %d results for %d subscriptions", len(resp.Results), len(subs))
	}
	return resp.Results, nil
}

// Insert stores s without the pre-insert covering query — the
// Provider.Insert path — and returns its id.
func (c *Client) Insert(ctx context.Context, s *subscription.Subscription) (uint64, error) {
	payload, err := c.encodeSub(s)
	if err != nil {
		return 0, err
	}
	resp, err := c.do(ctx, &Request{Op: "insert", Payload: payload})
	if err != nil {
		return 0, err
	}
	if resp.Result == nil {
		return 0, errors.New("sfcd: response carries no result")
	}
	return resp.Result.SID, nil
}

// Unsubscribe removes the subscription with the given id.
func (c *Client) Unsubscribe(ctx context.Context, sid uint64) error {
	_, err := c.do(ctx, &Request{Op: "unsubscribe", SID: sid})
	return err
}

// UnsubscribeBatch removes a batch of ids in one round trip.
func (c *Client) UnsubscribeBatch(ctx context.Context, sids []uint64) ([]Result, error) {
	resp, err := c.do(ctx, &Request{Op: "unsubscribe_batch", SIDs: sids})
	if err != nil {
		return nil, err
	}
	if len(resp.Results) != len(sids) {
		return nil, fmt.Errorf("sfcd: %d results for %d ids", len(resp.Results), len(sids))
	}
	return resp.Results, nil
}

// Query asks whether any stored subscription covers s, without storing
// anything.
func (c *Client) Query(ctx context.Context, s *subscription.Subscription) (covered bool, coveredBy uint64, err error) {
	payload, err := c.encodeSub(s)
	if err != nil {
		return false, 0, err
	}
	resp, err := c.do(ctx, &Request{Op: "query", Payload: payload})
	if err != nil {
		return false, 0, err
	}
	if resp.Result == nil {
		return false, 0, errors.New("sfcd: response carries no result")
	}
	return resp.Result.Covered, resp.Result.CoveredBy, nil
}

// QueryBatch runs a batch of covering queries in one round trip.
func (c *Client) QueryBatch(ctx context.Context, subs []*subscription.Subscription) ([]Result, error) {
	payloads, err := c.encodeSubs(subs)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(ctx, &Request{Op: "query_batch", Payloads: payloads})
	if err != nil {
		return nil, err
	}
	if len(resp.Results) != len(subs) {
		return nil, fmt.Errorf("sfcd: %d results for %d queries", len(resp.Results), len(subs))
	}
	return resp.Results, nil
}

// QueryCovered asks the reverse covering question: does the store hold a
// subscription that s covers? Routers use it at unsubscription time. The
// server answers through the provider's FindCovered, with its guarantees
// (exact mode scans exactly; approximate mode needs TrackCovered and may
// miss but never misreports).
func (c *Client) QueryCovered(ctx context.Context, s *subscription.Subscription) (covered bool, coveredID uint64, err error) {
	payload, err := c.encodeSub(s)
	if err != nil {
		return false, 0, err
	}
	resp, err := c.do(ctx, &Request{Op: "covered", Payload: payload})
	if err != nil {
		return false, 0, err
	}
	if resp.Result == nil {
		return false, 0, errors.New("sfcd: response carries no result")
	}
	return resp.Result.Covered, resp.Result.CoveredBy, nil
}

// Subscription resolves a stored id back to its subscription.
func (c *Client) Subscription(ctx context.Context, sid uint64) (*subscription.Subscription, error) {
	resp, err := c.do(ctx, &Request{Op: "get", SID: sid})
	if err != nil {
		return nil, err
	}
	if resp.Result == nil {
		return nil, errors.New("sfcd: response carries no result")
	}
	raw, err := base64.StdEncoding.DecodeString(resp.Result.Payload)
	if err != nil {
		return nil, fmt.Errorf("sfcd: malformed get payload: %w", err)
	}
	sub, err := subscription.UnmarshalSubscription(c.schema, raw)
	if err != nil {
		return nil, fmt.Errorf("sfcd: %w", err)
	}
	return sub, nil
}

// Metrics fetches the server counters rendered in the Prometheus text
// exposition format.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	resp, err := c.do(ctx, &Request{Op: "metrics"})
	if err != nil {
		return "", err
	}
	if resp.Metrics == "" {
		return "", errors.New("sfcd: response carries no metrics")
	}
	return resp.Metrics, nil
}

// Promote asks the daemon to flip from follower to primary (a no-op on
// a daemon already serving as primary): it stops the follower's stream,
// hydrates the engine from the durable store and starts serving writes.
func (c *Client) Promote(ctx context.Context) error {
	_, err := c.do(ctx, &Request{Op: "promote"})
	return err
}

// Match asks whether any stored subscription matches the event — covering
// applied to the event's degenerate point-subscription, with the usual
// guarantee (a reported match is genuine; approximate mode may miss).
func (c *Client) Match(ctx context.Context, e subscription.Event) (matched bool, matchedBy uint64, err error) {
	raw, err := e.MarshalBinary(c.schema)
	if err != nil {
		return false, 0, fmt.Errorf("sfcd: %w", err)
	}
	resp, err := c.do(ctx, &Request{Op: "match", Payload: base64.StdEncoding.EncodeToString(raw)})
	if err != nil {
		return false, 0, err
	}
	if resp.Result == nil {
		return false, 0, errors.New("sfcd: response carries no result")
	}
	return resp.Result.Covered, resp.Result.CoveredBy, nil
}

// Rebalance runs one bounded slice-rebalance pass on the daemon's shared
// engine and reports the boundary moves, migrated entries and
// before/after occupancy skew. Daemons whose engine has no movable
// boundaries (hash partition, non-SFC strategies) answer with a
// *ServerError carrying CodeUnsupported.
func (c *Client) Rebalance(ctx context.Context) (RebalanceInfo, error) {
	resp, err := c.do(ctx, &Request{Op: "rebalance"})
	if err != nil {
		return RebalanceInfo{}, err
	}
	if resp.Rebalance == nil {
		return RebalanceInfo{}, errors.New("sfcd: response carries no rebalance outcome")
	}
	return *resp.Rebalance, nil
}

// Snapshot forces a point-in-time snapshot of the daemon's durable
// subscription state (every link namespace — the write-ahead log is
// shared) and compacts the log behind it. Daemons running without a data
// dir answer with a *ServerError carrying CodeUnsupported.
func (c *Client) Snapshot(ctx context.Context) error {
	_, err := c.do(ctx, &Request{Op: "snapshot"})
	return err
}

// Latency returns a snapshot of the client's round-trip latency
// histograms, keyed by op ("query", "subscribe_batch", "remove", ...).
// The measurement spans enqueue to demultiplexed response, so it folds
// in local queueing, the wire and the server's service time. Use
// obs.Snapshot.Quantile for percentiles and obs.Snapshot.Sub for
// interval deltas.
func (c *Client) Latency() map[string]obs.Snapshot {
	return c.lat.Snapshot()
}

// TraceQuery runs one covering query with server-side tracing forced on
// and returns the outcome alongside the full trace record: per-stage
// timings (decomposition, probe loop, shard fan-out), per-slice probe
// counts and the query's cost stats.
func (c *Client) TraceQuery(ctx context.Context, s *subscription.Subscription) (covered bool, coveredBy uint64, trace *Trace, err error) {
	payload, err := c.encodeSub(s)
	if err != nil {
		return false, 0, nil, err
	}
	resp, err := c.do(ctx, &Request{Op: "trace", Payload: payload})
	if err != nil {
		return false, 0, nil, err
	}
	if resp.Result == nil || resp.Trace == nil {
		return false, 0, nil, errors.New("sfcd: response carries no trace")
	}
	return resp.Result.Covered, resp.Result.CoveredBy, resp.Trace, nil
}

// SlowLog fetches the daemon's ring of recent slow-query traces, newest
// first. A daemon running with telemetry off returns an empty batch.
func (c *Client) SlowLog(ctx context.Context) ([]Trace, error) {
	resp, err := c.do(ctx, &Request{Op: "slowlog"})
	if err != nil {
		return nil, err
	}
	return resp.Traces, nil
}

// Stats fetches the server's counter snapshot.
func (c *Client) Stats(ctx context.Context) (Stats, error) {
	resp, err := c.do(ctx, &Request{Op: "stats"})
	if err != nil {
		return Stats{}, err
	}
	if resp.Stats == nil {
		return Stats{}, errors.New("sfcd: response carries no stats")
	}
	return *resp.Stats, nil
}
