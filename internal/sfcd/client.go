package sfcd

import (
	"bufio"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"net"

	"sfccover/internal/subscription"
)

// Client is a synchronous sfcd protocol client. It is safe for one
// goroutine; routers wanting concurrency open one client per goroutine (or
// batch, which is usually faster than concurrency on the same link).
type Client struct {
	conn   net.Conn
	r      *bufio.Scanner
	w      *bufio.Writer
	schema *subscription.Schema
	nextID uint64

	// Hello-negotiated server facts.
	shards    int
	partition string
	mode      string
}

// Dial connects to an sfcd server and verifies with a hello exchange that
// the server's schema matches the client's (attribute names and bit width
// both participate in the binary wire format's header check, so a mismatch
// here fails fast instead of per request).
func Dial(addr string, schema *subscription.Schema) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("sfcd: %w", err)
	}
	c := &Client{
		conn:   conn,
		r:      bufio.NewScanner(conn),
		w:      bufio.NewWriter(conn),
		schema: schema,
	}
	c.r.Buffer(make([]byte, 64<<10), MaxLineBytes)
	resp, err := c.roundTrip(Request{Op: "hello"})
	if err != nil {
		conn.Close()
		return nil, err
	}
	if resp.Bits != schema.Bits() || len(resp.Attrs) != schema.NumAttrs() {
		conn.Close()
		return nil, fmt.Errorf("sfcd: server schema (%d bits, %d attrs) differs from client schema (%d bits, %d attrs)",
			resp.Bits, len(resp.Attrs), schema.Bits(), schema.NumAttrs())
	}
	for i, attr := range schema.Attrs() {
		if resp.Attrs[i] != attr {
			conn.Close()
			return nil, fmt.Errorf("sfcd: server attribute %d is %q, client expects %q", i, resp.Attrs[i], attr)
		}
	}
	c.shards, c.partition, c.mode = resp.Shards, resp.Partition, resp.Mode
	return c, nil
}

// Close shuts the connection down.
func (c *Client) Close() error { return c.conn.Close() }

// Shards reports the server's shard count (from the hello exchange).
func (c *Client) Shards() int { return c.shards }

// Partition reports the server's partition strategy.
func (c *Client) Partition() string { return c.partition }

// Mode reports the server's detection mode.
func (c *Client) Mode() string { return c.mode }

// roundTrip sends one request and reads one response.
func (c *Client) roundTrip(req Request) (Response, error) {
	c.nextID++
	req.ID = c.nextID
	line, err := json.Marshal(&req)
	if err != nil {
		return Response{}, fmt.Errorf("sfcd: send: %w", err)
	}
	// The server drops the connection on lines beyond MaxLineBytes; fail
	// the request with an actionable error instead (split the batch).
	if len(line) >= MaxLineBytes {
		return Response{}, fmt.Errorf("sfcd: request line is %d bytes, server cap is %d: split the batch", len(line), MaxLineBytes)
	}
	if _, err := c.w.Write(append(line, '\n')); err != nil {
		return Response{}, fmt.Errorf("sfcd: send: %w", err)
	}
	if err := c.w.Flush(); err != nil {
		return Response{}, fmt.Errorf("sfcd: send: %w", err)
	}
	if !c.r.Scan() {
		if err := c.r.Err(); err != nil {
			return Response{}, fmt.Errorf("sfcd: read: %w", err)
		}
		return Response{}, errors.New("sfcd: connection closed by server")
	}
	var resp Response
	if err := json.Unmarshal(c.r.Bytes(), &resp); err != nil {
		return Response{}, fmt.Errorf("sfcd: malformed response: %w", err)
	}
	if resp.ID != req.ID {
		return Response{}, fmt.Errorf("sfcd: response id %d for request %d", resp.ID, req.ID)
	}
	if !resp.OK {
		return Response{}, fmt.Errorf("sfcd: server: %s", resp.Error)
	}
	return resp, nil
}

func (c *Client) encodeSub(s *subscription.Subscription) (string, error) {
	raw, err := s.MarshalBinary()
	if err != nil {
		return "", fmt.Errorf("sfcd: %w", err)
	}
	return base64.StdEncoding.EncodeToString(raw), nil
}

// Ping checks liveness.
func (c *Client) Ping() error {
	_, err := c.roundTrip(Request{Op: "ping"})
	return err
}

// Subscribe stores s on the server, returning its id and the outcome of
// the pre-insert covering query.
func (c *Client) Subscribe(s *subscription.Subscription) (sid uint64, covered bool, coveredBy uint64, err error) {
	payload, err := c.encodeSub(s)
	if err != nil {
		return 0, false, 0, err
	}
	resp, err := c.roundTrip(Request{Op: "subscribe", Payload: payload})
	if err != nil {
		return 0, false, 0, err
	}
	if resp.Result == nil {
		return 0, false, 0, errors.New("sfcd: response carries no result")
	}
	return resp.Result.SID, resp.Result.Covered, resp.Result.CoveredBy, nil
}

// SubscribeBatch stores a batch in one round trip. The results align with
// subs; per-item failures are reported in Result.Error.
func (c *Client) SubscribeBatch(subs []*subscription.Subscription) ([]Result, error) {
	payloads := make([]string, len(subs))
	for i, s := range subs {
		p, err := c.encodeSub(s)
		if err != nil {
			return nil, err
		}
		payloads[i] = p
	}
	resp, err := c.roundTrip(Request{Op: "subscribe_batch", Payloads: payloads})
	if err != nil {
		return nil, err
	}
	if len(resp.Results) != len(subs) {
		return nil, fmt.Errorf("sfcd: %d results for %d subscriptions", len(resp.Results), len(subs))
	}
	return resp.Results, nil
}

// Unsubscribe removes the subscription with the given id.
func (c *Client) Unsubscribe(sid uint64) error {
	_, err := c.roundTrip(Request{Op: "unsubscribe", SID: sid})
	return err
}

// UnsubscribeBatch removes a batch of ids in one round trip.
func (c *Client) UnsubscribeBatch(sids []uint64) ([]Result, error) {
	resp, err := c.roundTrip(Request{Op: "unsubscribe_batch", SIDs: sids})
	if err != nil {
		return nil, err
	}
	if len(resp.Results) != len(sids) {
		return nil, fmt.Errorf("sfcd: %d results for %d ids", len(resp.Results), len(sids))
	}
	return resp.Results, nil
}

// Query asks whether any stored subscription covers s, without storing
// anything.
func (c *Client) Query(s *subscription.Subscription) (covered bool, coveredBy uint64, err error) {
	payload, err := c.encodeSub(s)
	if err != nil {
		return false, 0, err
	}
	resp, err := c.roundTrip(Request{Op: "query", Payload: payload})
	if err != nil {
		return false, 0, err
	}
	if resp.Result == nil {
		return false, 0, errors.New("sfcd: response carries no result")
	}
	return resp.Result.Covered, resp.Result.CoveredBy, nil
}

// QueryBatch runs a batch of covering queries in one round trip.
func (c *Client) QueryBatch(subs []*subscription.Subscription) ([]Result, error) {
	payloads := make([]string, len(subs))
	for i, s := range subs {
		p, err := c.encodeSub(s)
		if err != nil {
			return nil, err
		}
		payloads[i] = p
	}
	resp, err := c.roundTrip(Request{Op: "query_batch", Payloads: payloads})
	if err != nil {
		return nil, err
	}
	if len(resp.Results) != len(subs) {
		return nil, fmt.Errorf("sfcd: %d results for %d queries", len(resp.Results), len(subs))
	}
	return resp.Results, nil
}

// QueryCovered asks the reverse covering question: does the store hold a
// subscription that s covers? Routers use it at unsubscription time. The
// server answers through the engine's FindCovered, with its guarantees
// (exact mode scans exactly; approximate mode needs TrackCovered and may
// miss but never misreports).
func (c *Client) QueryCovered(s *subscription.Subscription) (covered bool, coveredID uint64, err error) {
	payload, err := c.encodeSub(s)
	if err != nil {
		return false, 0, err
	}
	resp, err := c.roundTrip(Request{Op: "covered", Payload: payload})
	if err != nil {
		return false, 0, err
	}
	if resp.Result == nil {
		return false, 0, errors.New("sfcd: response carries no result")
	}
	return resp.Result.Covered, resp.Result.CoveredBy, nil
}

// Metrics fetches the server counters rendered in the Prometheus text
// exposition format.
func (c *Client) Metrics() (string, error) {
	resp, err := c.roundTrip(Request{Op: "metrics"})
	if err != nil {
		return "", err
	}
	if resp.Metrics == "" {
		return "", errors.New("sfcd: response carries no metrics")
	}
	return resp.Metrics, nil
}

// Match asks whether any stored subscription matches the event — covering
// applied to the event's degenerate point-subscription, with the usual
// guarantee (a reported match is genuine; approximate mode may miss).
func (c *Client) Match(e subscription.Event) (matched bool, matchedBy uint64, err error) {
	raw, err := e.MarshalBinary(c.schema)
	if err != nil {
		return false, 0, fmt.Errorf("sfcd: %w", err)
	}
	resp, err := c.roundTrip(Request{Op: "match", Payload: base64.StdEncoding.EncodeToString(raw)})
	if err != nil {
		return false, 0, err
	}
	if resp.Result == nil {
		return false, 0, errors.New("sfcd: response carries no result")
	}
	return resp.Result.Covered, resp.Result.CoveredBy, nil
}

// Stats fetches the server's counter snapshot.
func (c *Client) Stats() (Stats, error) {
	resp, err := c.roundTrip(Request{Op: "stats"})
	if err != nil {
		return Stats{}, err
	}
	if resp.Stats == nil {
		return Stats{}, errors.New("sfcd: response carries no stats")
	}
	return *resp.Stats, nil
}
