package sfcd

import (
	"bufio"
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"sfccover/internal/obs"
	"sfccover/internal/subscription"
)

// Sentinel errors of the client surface. Operation failures wrap one of
// these (or a *ServerError), so callers branch with errors.Is/errors.As
// instead of string matching.
var (
	// ErrSchemaMismatch is returned by Dial when the server's negotiated
	// schema (bit width, attribute names) differs from the client's.
	ErrSchemaMismatch = errors.New("sfcd: server schema differs from client schema")
	// ErrClientClosed is returned by operations issued after Close.
	ErrClientClosed = errors.New("sfcd: client is closed")
	// ErrConnectionLost is returned by operations — in flight or later —
	// once the connection has failed (server restart, network drop). The
	// client does not reconnect; callers dial a fresh client.
	ErrConnectionLost = errors.New("sfcd: connection lost")
)

// ServerError is an error frame the server answered a request with.
type ServerError struct {
	// Code classifies the failure (CodeBadRequest, CodeOpFailed, ...).
	Code string
	// Msg is the human-readable explanation.
	Msg string
}

// Error implements error.
func (e *ServerError) Error() string {
	if e.Code == "" {
		return "sfcd: server: " + e.Msg
	}
	return "sfcd: server [" + e.Code + "]: " + e.Msg
}

// DefaultDialTimeout bounds connection establishment plus the hello
// exchange when DialConfig leaves DialTimeout zero.
const DefaultDialTimeout = 10 * time.Second

// writeBacklog buffers the frame queue between callers and the writer
// goroutine: senders enqueue without a synchronous handoff, and the
// writer drains whole bursts into one flush.
const writeBacklog = 256

// DialConfig parameterizes DialContext.
type DialConfig struct {
	// Addr is the server's TCP address (required).
	Addr string
	// Schema is the client's attribute schema (required); Dial verifies it
	// against the server's.
	Schema *subscription.Schema
	// DialTimeout bounds connection establishment and the hello exchange
	// (0 = DefaultDialTimeout).
	DialTimeout time.Duration
	// RequestTimeout is the per-operation deadline applied to every
	// request whose context carries no deadline of its own (0 = none).
	RequestTimeout time.Duration
}

// Client is a pipelined sfcd protocol client. Any number of goroutines
// may issue operations concurrently on one Client over one TCP
// connection: requests carry ids, a writer goroutine streams frames
// (coalescing bursts into single flushes), and a reader goroutine
// demultiplexes responses back to their callers — no caller ever waits
// behind another caller's round trip. Every operation takes a
// context.Context; cancellation abandons the call (the response, if it
// ever arrives, is discarded) without disturbing the connection.
type Client struct {
	cfg    DialConfig
	conn   net.Conn
	schema *subscription.Schema

	writeCh chan []byte
	done    chan struct{} // closed on terminal failure or Close
	closed  atomic.Bool   // flipped by the first Close call
	wg      sync.WaitGroup

	mu      sync.Mutex
	pending map[uint64]chan *Response
	nextID  uint64
	err     error // terminal error, set once

	// lat records per-op round-trip latencies (send to demultiplexed
	// response), client-side: queueing, the wire and the server's service
	// time all included — the number a router actually waits.
	lat *obs.Registry
	// opLat holds the pre-resolved per-op histograms do records into.
	opLat *opHists

	// Hello-negotiated server facts.
	shards    int
	partition string
	mode      string
}

// Dial connects to an sfcd server with default configuration and verifies
// with a hello exchange that the server's schema matches the client's
// (attribute names and bit width both participate in the binary wire
// format's header check, so a mismatch here fails fast — with
// ErrSchemaMismatch — instead of per request).
func Dial(addr string, schema *subscription.Schema) (*Client, error) {
	return DialContext(context.Background(), DialConfig{Addr: addr, Schema: schema})
}

// DialContext connects per cfg. The context bounds connection
// establishment and the hello exchange; the returned client is not tied
// to it.
func DialContext(ctx context.Context, cfg DialConfig) (*Client, error) {
	if cfg.Schema == nil {
		return nil, errors.New("sfcd: dial config needs a schema")
	}
	if cfg.Addr == "" {
		return nil, errors.New("sfcd: dial config needs an address")
	}
	dialTimeout := cfg.DialTimeout
	if dialTimeout == 0 {
		dialTimeout = DefaultDialTimeout
	}
	// One deadline covers connecting AND the hello exchange, as
	// documented — a server that accepts late and then stalls must not
	// get a second full timeout.
	deadline := time.Now().Add(dialTimeout)
	d := net.Dialer{Deadline: deadline}
	conn, err := d.DialContext(ctx, "tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("sfcd: %w", err)
	}
	c := &Client{
		cfg:     cfg,
		conn:    conn,
		schema:  cfg.Schema,
		writeCh: make(chan []byte, writeBacklog),
		done:    make(chan struct{}),
		pending: make(map[uint64]chan *Response),
		lat:     obs.NewRegistry(obs.DefaultMaxOps),
	}
	c.opLat = newOpHists(c.lat.Hist)
	c.wg.Add(2)
	go c.readLoop()
	go c.writeLoop()

	hctx, cancel := context.WithDeadline(ctx, deadline)
	defer cancel()
	resp, err := c.do(hctx, &Request{Op: "hello"})
	if err != nil {
		c.Close()
		return nil, err
	}
	if err := checkSchema(cfg.Schema, resp); err != nil {
		c.Close()
		return nil, err
	}
	c.shards, c.partition, c.mode = resp.Shards, resp.Partition, resp.Mode
	return c, nil
}

// checkSchema verifies the hello response against the client schema.
func checkSchema(schema *subscription.Schema, resp *Response) error {
	if resp.Bits != schema.Bits() || len(resp.Attrs) != schema.NumAttrs() {
		return fmt.Errorf("%w: server has %d bits and %d attrs, client has %d bits and %d attrs",
			ErrSchemaMismatch, resp.Bits, len(resp.Attrs), schema.Bits(), schema.NumAttrs())
	}
	for i, attr := range schema.Attrs() {
		if resp.Attrs[i] != attr {
			return fmt.Errorf("%w: server attribute %d is %q, client expects %q",
				ErrSchemaMismatch, i, resp.Attrs[i], attr)
		}
	}
	return nil
}

// Close shuts the connection down. In-flight operations fail with
// ErrClientClosed. The first call returns nil (even on a client whose
// connection already failed); every later call is rejected with
// ErrClientClosed — a specified, typed outcome instead of silently
// re-tearing-down, so recovery code that double-closes by accident gets a
// diagnosis rather than unspecified behavior.
func (c *Client) Close() error {
	if c.closed.Swap(true) {
		return ErrClientClosed
	}
	c.fail(ErrClientClosed)
	c.wg.Wait()
	return nil
}

// Schema returns the client's attribute schema.
func (c *Client) Schema() *subscription.Schema { return c.schema }

// Shards reports the server's shard count (from the hello exchange).
func (c *Client) Shards() int { return c.shards }

// Partition reports the server's partition strategy.
func (c *Client) Partition() string { return c.partition }

// Mode reports the server's detection mode.
func (c *Client) Mode() string { return c.mode }

// fail records the terminal error (first one wins) and tears the
// connection down; every waiter and later caller observes it.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
		close(c.done)
	}
	c.mu.Unlock()
	c.conn.Close()
}

// terminalErr returns the recorded terminal error.
func (c *Client) terminalErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// unregister abandons a pending request (timeout, cancellation).
func (c *Client) unregister(id uint64) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

// writeLoop streams frames onto the connection. A burst of pipelined
// requests is coalesced into one flush: after writing a frame it keeps
// draining queued frames before flushing, so concurrent callers share
// syscalls instead of paying one write+flush each.
func (c *Client) writeLoop() {
	defer c.wg.Done()
	w := bufio.NewWriter(c.conn)
	for {
		select {
		case <-c.done:
			return
		case line := <-c.writeCh:
			if _, err := w.Write(line); err != nil {
				c.fail(fmt.Errorf("%w: %v", ErrConnectionLost, err))
				return
			}
			// One scheduler yield lets concurrently submitting callers
			// land in this burst instead of each paying their own flush;
			// without it a loaded single-P process degenerates to one
			// frame per syscall.
			runtime.Gosched()
			coalescing := true
			for coalescing {
				select {
				case more := <-c.writeCh:
					if _, err := w.Write(more); err != nil {
						c.fail(fmt.Errorf("%w: %v", ErrConnectionLost, err))
						return
					}
				default:
					coalescing = false
				}
			}
			if err := w.Flush(); err != nil {
				c.fail(fmt.Errorf("%w: %v", ErrConnectionLost, err))
				return
			}
		}
	}
}

// readLoop demultiplexes response lines to their waiting callers by
// request id. Responses for abandoned requests are dropped; an id-0
// frame is a connection-level server error and terminates the client.
func (c *Client) readLoop() {
	defer c.wg.Done()
	sc := bufio.NewScanner(c.conn)
	sc.Buffer(make([]byte, 64<<10), MaxLineBytes)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		resp := new(Response)
		if err := json.Unmarshal(sc.Bytes(), resp); err != nil {
			c.fail(fmt.Errorf("sfcd: malformed response: %w", err))
			return
		}
		if resp.ID == 0 {
			c.fail(&ServerError{Code: resp.Code, Msg: resp.Error})
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[resp.ID]
		delete(c.pending, resp.ID)
		c.mu.Unlock()
		if ok {
			ch <- resp // buffered; never blocks
		}
	}
	if err := sc.Err(); err != nil {
		c.fail(fmt.Errorf("%w: %v", ErrConnectionLost, err))
		return
	}
	c.fail(fmt.Errorf("%w: connection closed by server", ErrConnectionLost))
}

// do issues one request and waits for its response. It applies the
// configured RequestTimeout when ctx carries no deadline, registers the
// request id for demultiplexing, and hands the frame to the writer; the
// caller's wait is independent of every other in-flight request.
//
//sfc:hotpath
func (c *Client) do(ctx context.Context, req *Request) (*Response, error) {
	if c.cfg.RequestTimeout > 0 {
		if _, hasDeadline := ctx.Deadline(); !hasDeadline {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, c.cfg.RequestTimeout)
			defer cancel()
		}
	}
	ch := respChPool.Get().(chan *Response)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		respChPool.Put(ch)
		return nil, err
	}
	c.nextID++
	id := c.nextID
	req.ID = id
	c.pending[id] = ch
	c.mu.Unlock()

	// Until the frame reaches the writer no response can ever target ch,
	// so these bail-out paths unregister and recycle it.
	abandonUnsent := func() {
		c.unregister(id)
		respChPool.Put(ch)
	}
	line, err := json.Marshal(req)
	if err != nil {
		abandonUnsent()
		return nil, fmt.Errorf("sfcd: send: %w", err)
	}
	// The server drops the connection on lines beyond MaxLineBytes; fail
	// the request with an actionable error instead (split the batch).
	if len(line) >= MaxLineBytes {
		abandonUnsent()
		return nil, fmt.Errorf("sfcd: request line is %d bytes, server cap is %d: split the batch", len(line), MaxLineBytes)
	}
	//sfc:allowclock one clock pair per request is the round-trip histogram's contract: it times every client op exactly
	t0 := time.Now()
	select {
	case c.writeCh <- append(line, '\n'):
	case <-ctx.Done():
		abandonUnsent()
		return nil, fmt.Errorf("sfcd: %s: %w", req.Op, ctx.Err())
	case <-c.done:
		abandonUnsent()
		return nil, c.terminalErr()
	}
	select {
	case resp := <-ch:
		//sfc:allowclock pairs with the t0 read above; the histogram itself is pre-resolved, not fetched
		c.opLat.observe(req.Op, time.Since(t0))
		respChPool.Put(ch)
		return checkResponse(resp)
	case <-ctx.Done():
		c.unregister(id)
		// Not pooled: the reader may already hold this channel and send
		// the late response into it.
		return nil, fmt.Errorf("sfcd: %s: %w", req.Op, ctx.Err())
	case <-c.done:
		// The response may have been delivered just before the failure.
		select {
		case resp := <-ch:
			//sfc:allowclock pairs with the t0 read above; the histogram itself is pre-resolved, not fetched
			c.opLat.observe(req.Op, time.Since(t0))
			respChPool.Put(ch)
			return checkResponse(resp)
		default:
		}
		return nil, c.terminalErr()
	}
}

// respChPool recycles the per-request response channels. A channel is
// returned to the pool only after its response was received — the one
// point where no late send can ever reach it again.
var respChPool = sync.Pool{New: func() any { return make(chan *Response, 1) }}

// checkResponse lifts error frames into *ServerError.
func checkResponse(resp *Response) (*Response, error) {
	if !resp.OK {
		return nil, &ServerError{Code: resp.Code, Msg: resp.Error}
	}
	return resp, nil
}

func (c *Client) encodeSub(s *subscription.Subscription) (string, error) {
	raw, err := s.MarshalBinary()
	if err != nil {
		return "", fmt.Errorf("sfcd: %w", err)
	}
	return base64.StdEncoding.EncodeToString(raw), nil
}

func (c *Client) encodeSubs(subs []*subscription.Subscription) ([]string, error) {
	payloads := make([]string, len(subs))
	for i, s := range subs {
		p, err := c.encodeSub(s)
		if err != nil {
			return nil, err
		}
		payloads[i] = p
	}
	return payloads, nil
}

// Ping checks liveness.
func (c *Client) Ping(ctx context.Context) error {
	_, err := c.do(ctx, &Request{Op: "ping"})
	return err
}

// Subscribe stores s on the server, returning its id and the outcome of
// the pre-insert covering query.
func (c *Client) Subscribe(ctx context.Context, s *subscription.Subscription) (sid uint64, covered bool, coveredBy uint64, err error) {
	payload, err := c.encodeSub(s)
	if err != nil {
		return 0, false, 0, err
	}
	resp, err := c.do(ctx, &Request{Op: "subscribe", Payload: payload})
	if err != nil {
		return 0, false, 0, err
	}
	if resp.Result == nil {
		return 0, false, 0, errors.New("sfcd: response carries no result")
	}
	return resp.Result.SID, resp.Result.Covered, resp.Result.CoveredBy, nil
}

// SubscribeBatch stores a batch in one round trip. The results align with
// subs; per-item failures are reported in Result.Error.
func (c *Client) SubscribeBatch(ctx context.Context, subs []*subscription.Subscription) ([]Result, error) {
	payloads, err := c.encodeSubs(subs)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(ctx, &Request{Op: "subscribe_batch", Payloads: payloads})
	if err != nil {
		return nil, err
	}
	if len(resp.Results) != len(subs) {
		return nil, fmt.Errorf("sfcd: %d results for %d subscriptions", len(resp.Results), len(subs))
	}
	return resp.Results, nil
}

// Insert stores s without the pre-insert covering query — the
// Provider.Insert path — and returns its id.
func (c *Client) Insert(ctx context.Context, s *subscription.Subscription) (uint64, error) {
	payload, err := c.encodeSub(s)
	if err != nil {
		return 0, err
	}
	resp, err := c.do(ctx, &Request{Op: "insert", Payload: payload})
	if err != nil {
		return 0, err
	}
	if resp.Result == nil {
		return 0, errors.New("sfcd: response carries no result")
	}
	return resp.Result.SID, nil
}

// Unsubscribe removes the subscription with the given id.
func (c *Client) Unsubscribe(ctx context.Context, sid uint64) error {
	_, err := c.do(ctx, &Request{Op: "unsubscribe", SID: sid})
	return err
}

// UnsubscribeBatch removes a batch of ids in one round trip.
func (c *Client) UnsubscribeBatch(ctx context.Context, sids []uint64) ([]Result, error) {
	resp, err := c.do(ctx, &Request{Op: "unsubscribe_batch", SIDs: sids})
	if err != nil {
		return nil, err
	}
	if len(resp.Results) != len(sids) {
		return nil, fmt.Errorf("sfcd: %d results for %d ids", len(resp.Results), len(sids))
	}
	return resp.Results, nil
}

// Query asks whether any stored subscription covers s, without storing
// anything.
func (c *Client) Query(ctx context.Context, s *subscription.Subscription) (covered bool, coveredBy uint64, err error) {
	payload, err := c.encodeSub(s)
	if err != nil {
		return false, 0, err
	}
	resp, err := c.do(ctx, &Request{Op: "query", Payload: payload})
	if err != nil {
		return false, 0, err
	}
	if resp.Result == nil {
		return false, 0, errors.New("sfcd: response carries no result")
	}
	return resp.Result.Covered, resp.Result.CoveredBy, nil
}

// QueryBatch runs a batch of covering queries in one round trip.
func (c *Client) QueryBatch(ctx context.Context, subs []*subscription.Subscription) ([]Result, error) {
	payloads, err := c.encodeSubs(subs)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(ctx, &Request{Op: "query_batch", Payloads: payloads})
	if err != nil {
		return nil, err
	}
	if len(resp.Results) != len(subs) {
		return nil, fmt.Errorf("sfcd: %d results for %d queries", len(resp.Results), len(subs))
	}
	return resp.Results, nil
}

// QueryCovered asks the reverse covering question: does the store hold a
// subscription that s covers? Routers use it at unsubscription time. The
// server answers through the provider's FindCovered, with its guarantees
// (exact mode scans exactly; approximate mode needs TrackCovered and may
// miss but never misreports).
func (c *Client) QueryCovered(ctx context.Context, s *subscription.Subscription) (covered bool, coveredID uint64, err error) {
	payload, err := c.encodeSub(s)
	if err != nil {
		return false, 0, err
	}
	resp, err := c.do(ctx, &Request{Op: "covered", Payload: payload})
	if err != nil {
		return false, 0, err
	}
	if resp.Result == nil {
		return false, 0, errors.New("sfcd: response carries no result")
	}
	return resp.Result.Covered, resp.Result.CoveredBy, nil
}

// Subscription resolves a stored id back to its subscription.
func (c *Client) Subscription(ctx context.Context, sid uint64) (*subscription.Subscription, error) {
	resp, err := c.do(ctx, &Request{Op: "get", SID: sid})
	if err != nil {
		return nil, err
	}
	if resp.Result == nil {
		return nil, errors.New("sfcd: response carries no result")
	}
	raw, err := base64.StdEncoding.DecodeString(resp.Result.Payload)
	if err != nil {
		return nil, fmt.Errorf("sfcd: malformed get payload: %w", err)
	}
	sub, err := subscription.UnmarshalSubscription(c.schema, raw)
	if err != nil {
		return nil, fmt.Errorf("sfcd: %w", err)
	}
	return sub, nil
}

// Metrics fetches the server counters rendered in the Prometheus text
// exposition format.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	resp, err := c.do(ctx, &Request{Op: "metrics"})
	if err != nil {
		return "", err
	}
	if resp.Metrics == "" {
		return "", errors.New("sfcd: response carries no metrics")
	}
	return resp.Metrics, nil
}

// Match asks whether any stored subscription matches the event — covering
// applied to the event's degenerate point-subscription, with the usual
// guarantee (a reported match is genuine; approximate mode may miss).
func (c *Client) Match(ctx context.Context, e subscription.Event) (matched bool, matchedBy uint64, err error) {
	raw, err := e.MarshalBinary(c.schema)
	if err != nil {
		return false, 0, fmt.Errorf("sfcd: %w", err)
	}
	resp, err := c.do(ctx, &Request{Op: "match", Payload: base64.StdEncoding.EncodeToString(raw)})
	if err != nil {
		return false, 0, err
	}
	if resp.Result == nil {
		return false, 0, errors.New("sfcd: response carries no result")
	}
	return resp.Result.Covered, resp.Result.CoveredBy, nil
}

// Rebalance runs one bounded slice-rebalance pass on the daemon's shared
// engine and reports the boundary moves, migrated entries and
// before/after occupancy skew. Daemons whose engine has no movable
// boundaries (hash partition, non-SFC strategies) answer with a
// *ServerError carrying CodeUnsupported.
func (c *Client) Rebalance(ctx context.Context) (RebalanceInfo, error) {
	resp, err := c.do(ctx, &Request{Op: "rebalance"})
	if err != nil {
		return RebalanceInfo{}, err
	}
	if resp.Rebalance == nil {
		return RebalanceInfo{}, errors.New("sfcd: response carries no rebalance outcome")
	}
	return *resp.Rebalance, nil
}

// Snapshot forces a point-in-time snapshot of the daemon's durable
// subscription state (every link namespace — the write-ahead log is
// shared) and compacts the log behind it. Daemons running without a data
// dir answer with a *ServerError carrying CodeUnsupported.
func (c *Client) Snapshot(ctx context.Context) error {
	_, err := c.do(ctx, &Request{Op: "snapshot"})
	return err
}

// Latency returns a snapshot of the client's round-trip latency
// histograms, keyed by op ("query", "subscribe_batch", "remove", ...).
// The measurement spans enqueue to demultiplexed response, so it folds
// in local queueing, the wire and the server's service time. Use
// obs.Snapshot.Quantile for percentiles and obs.Snapshot.Sub for
// interval deltas.
func (c *Client) Latency() map[string]obs.Snapshot {
	return c.lat.Snapshot()
}

// TraceQuery runs one covering query with server-side tracing forced on
// and returns the outcome alongside the full trace record: per-stage
// timings (decomposition, probe loop, shard fan-out), per-slice probe
// counts and the query's cost stats.
func (c *Client) TraceQuery(ctx context.Context, s *subscription.Subscription) (covered bool, coveredBy uint64, trace *Trace, err error) {
	payload, err := c.encodeSub(s)
	if err != nil {
		return false, 0, nil, err
	}
	resp, err := c.do(ctx, &Request{Op: "trace", Payload: payload})
	if err != nil {
		return false, 0, nil, err
	}
	if resp.Result == nil || resp.Trace == nil {
		return false, 0, nil, errors.New("sfcd: response carries no trace")
	}
	return resp.Result.Covered, resp.Result.CoveredBy, resp.Trace, nil
}

// SlowLog fetches the daemon's ring of recent slow-query traces, newest
// first. A daemon running with telemetry off returns an empty batch.
func (c *Client) SlowLog(ctx context.Context) ([]Trace, error) {
	resp, err := c.do(ctx, &Request{Op: "slowlog"})
	if err != nil {
		return nil, err
	}
	return resp.Traces, nil
}

// Stats fetches the server's counter snapshot.
func (c *Client) Stats(ctx context.Context) (Stats, error) {
	resp, err := c.do(ctx, &Request{Op: "stats"})
	if err != nil {
		return Stats{}, err
	}
	if resp.Stats == nil {
		return Stats{}, errors.New("sfcd: response carries no stats")
	}
	return *resp.Stats, nil
}
