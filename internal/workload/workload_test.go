package workload

import (
	"math/rand"
	"testing"

	"sfccover/internal/subscription"
)

func testSchema() *subscription.Schema {
	return subscription.MustSchema(10, "a", "b")
}

func TestSubscriptionsValidation(t *testing.T) {
	if _, err := Subscriptions(SubSpec{}); err == nil {
		t.Error("missing schema must fail")
	}
	if _, err := Subscriptions(SubSpec{Schema: testSchema(), N: -1}); err == nil {
		t.Error("negative N must fail")
	}
	if _, err := Subscriptions(SubSpec{Schema: testSchema(), N: 1, WidthFrac: 2}); err == nil {
		t.Error("width > 1 must fail")
	}
	if _, err := Subscriptions(SubSpec{Schema: testSchema(), N: 1, Dist: "bimodal"}); err == nil {
		t.Error("unknown distribution must fail")
	}
	if _, err := Events(EventSpec{Schema: testSchema(), N: 1, Dist: "bimodal"}); err == nil {
		t.Error("unknown event distribution must fail")
	}
}

func TestSubscriptionsDeterministicAndInDomain(t *testing.T) {
	schema := testSchema()
	for _, dist := range []SubDist{DistUniform, DistZipf, DistClustered, DistHotspot} {
		spec := SubSpec{Schema: schema, N: 200, Dist: dist, Seed: 42, UnconstrainedProb: 0.2}
		a, err := Subscriptions(spec)
		if err != nil {
			t.Fatalf("%s: %v", dist, err)
		}
		b, err := Subscriptions(spec)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != 200 {
			t.Fatalf("%s: got %d subs", dist, len(a))
		}
		for i := range a {
			if !a[i].Equal(b[i]) {
				t.Fatalf("%s: generation not deterministic at %d", dist, i)
			}
			for j := 0; j < schema.NumAttrs(); j++ {
				r := a[i].Range(j)
				if r.Hi > schema.MaxValue() || r.Lo > r.Hi {
					t.Fatalf("%s: invalid range %+v", dist, r)
				}
			}
		}
	}
}

func TestSubscriptionsDistinctSeedsDiffer(t *testing.T) {
	schema := testSchema()
	a, _ := Subscriptions(SubSpec{Schema: schema, N: 50, Seed: 1})
	b, _ := Subscriptions(SubSpec{Schema: schema, N: 50, Seed: 2})
	same := 0
	for i := range a {
		if a[i].Equal(b[i]) {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical populations")
	}
}

func TestZipfSkewsLow(t *testing.T) {
	schema := testSchema()
	subs, err := Subscriptions(SubSpec{Schema: schema, N: 500, Dist: DistZipf, Seed: 3, WidthFrac: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	lowCenters := 0
	for _, s := range subs {
		r := s.Range(0)
		center := (uint64(r.Lo) + uint64(r.Hi)) / 2
		if center < uint64(schema.MaxValue())/4 {
			lowCenters++
		}
	}
	if frac := float64(lowCenters) / float64(len(subs)); frac < 0.6 {
		t.Fatalf("zipf should concentrate low: only %.2f below first quartile", frac)
	}
}

func TestHotspotConcentrates(t *testing.T) {
	schema := testSchema()
	spec := SubSpec{
		Schema: schema, N: 600, Dist: DistHotspot, Seed: 9,
		WidthFrac: 0.02, HotspotFrac: 0.8, HotspotWidthFrac: 0.05,
	}
	subs, err := Subscriptions(spec)
	if err != nil {
		t.Fatal(err)
	}
	// At least ~HotspotFrac of the centers must land in one box 1/8 of
	// the domain wide on every attribute (the box plus range-width slop).
	domain := float64(schema.MaxValue()) + 1
	centers := make([][]float64, len(subs))
	for i, s := range subs {
		c := make([]float64, schema.NumAttrs())
		for j := range c {
			r := s.Range(j)
			c[j] = (float64(r.Lo) + float64(r.Hi)) / 2
		}
		centers[i] = c
	}
	inBox := 0
	for _, probe := range centers {
		n := 0
		for _, c := range centers {
			ok := true
			for j := range c {
				if c[j] < probe[j]-domain/16 || c[j] > probe[j]+domain/16 {
					ok = false
					break
				}
			}
			if ok {
				n++
			}
		}
		if n > inBox {
			inBox = n
		}
	}
	if frac := float64(inBox) / float64(len(subs)); frac < 0.7 {
		t.Fatalf("hotspot should concentrate: densest box holds only %.2f of the population", frac)
	}
	if _, err := Subscriptions(SubSpec{Schema: schema, N: 1, Dist: DistHotspot, HotspotFrac: 2}); err == nil {
		t.Error("hotspot fraction > 1 must fail")
	}
}

func TestCoversPlantRealCovers(t *testing.T) {
	schema := testSchema()
	if _, err := Covers(CoverSpec{Schema: schema, N: 1, SlackFrac: 0}); err == nil {
		t.Error("zero slack must fail")
	}
	pairs, err := Covers(CoverSpec{Schema: schema, N: 300, SlackFrac: 0.1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 300 {
		t.Fatalf("got %d pairs", len(pairs))
	}
	for i, p := range pairs {
		if !p.Parent.Covers(p.Child) {
			t.Fatalf("pair %d: parent %v does not cover child %v", i, p.Parent, p.Child)
		}
	}
}

func TestEventsGeneration(t *testing.T) {
	schema := testSchema()
	if _, err := Events(EventSpec{}); err == nil {
		t.Error("missing schema must fail")
	}
	evs, err := Events(EventSpec{Schema: schema, N: 100, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 100 {
		t.Fatalf("got %d events", len(evs))
	}
	for _, e := range evs {
		if len(e) != schema.NumAttrs() {
			t.Fatalf("event arity %d", len(e))
		}
		for _, v := range e {
			if v > schema.MaxValue() {
				t.Fatalf("event value %d out of domain", v)
			}
		}
	}
	evs2, _ := Events(EventSpec{Schema: schema, N: 100, Seed: 5})
	for i := range evs {
		for a := range evs[i] {
			if evs[i][a] != evs2[i][a] {
				t.Fatal("event generation not deterministic")
			}
		}
	}
	if _, err := Events(EventSpec{Schema: schema, N: 10, Dist: DistZipf, Seed: 5}); err != nil {
		t.Fatal(err)
	}
}

func TestAdversarialExtremal(t *testing.T) {
	if _, err := AdversarialExtremal(2, 8, 7, 2); err == nil {
		t.Error("gamma+alpha > k must fail")
	}
	e, err := AdversarialExtremal(3, 12, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.AspectRatio(); got != 2 {
		t.Fatalf("aspect ratio %d, want 2", got)
	}
	if e.Len[2] != 15 {
		t.Fatalf("shortest side %d, want 15", e.Len[2])
	}
	if e.Len[0] != 63 || e.Len[1] != 63 {
		t.Fatalf("long sides %v, want 63", e.Len[:2])
	}
}

func TestRandomExtremalAspectRatio(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for alpha := 0; alpha < 6; alpha++ {
		for trial := 0; trial < 50; trial++ {
			e, err := RandomExtremal(rng, 4, 16, alpha)
			if err != nil {
				t.Fatal(err)
			}
			if got := e.AspectRatio(); got != alpha {
				t.Fatalf("aspect ratio %d, want %d (lens %v)", got, alpha, e.Len)
			}
		}
	}
	if _, err := RandomExtremal(rng, 2, 8, 8); err == nil {
		t.Error("alpha >= k must fail")
	}
}
