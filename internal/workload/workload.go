// Package workload generates the synthetic inputs for every experiment:
// subscription populations with controlled value distributions (uniform,
// Zipf-skewed, clustered) and cover structure (planted parent/child pairs
// with tunable slack), event streams, and the adversarial extremal
// rectangles of Theorem 4.1. All generators are deterministic for a given
// seed.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"sfccover/internal/geom"
	"sfccover/internal/subscription"
)

// SubDist selects the distribution of subscription range positions.
type SubDist string

func (d SubDist) validate() error {
	switch d {
	case DistUniform, DistZipf, DistClustered, DistHotspot:
		return nil
	default:
		return fmt.Errorf("workload: unknown distribution %q", d)
	}
}

const (
	// DistUniform places range centers uniformly over the domain.
	DistUniform SubDist = "uniform"
	// DistZipf skews range centers toward low attribute values with a
	// Zipf(1.3) law, modelling hot topics.
	DistZipf SubDist = "zipf"
	// DistClustered draws range centers from a few Gaussian clusters,
	// modelling interest communities.
	DistClustered SubDist = "clustered"
	// DistHotspot drops a HotspotFrac share of the range centers into one
	// tiny box and spreads the rest uniformly — the adversarial clustering
	// for curve-prefix partitions: the box maps to one short stretch of
	// the space filling curve, so one key slice absorbs almost the whole
	// population (exactly the locality SFCs are chosen to preserve; cf.
	// the Onion Curve's clustering analysis).
	DistHotspot SubDist = "hotspot"
)

// SubSpec parameterizes a subscription population.
type SubSpec struct {
	// Schema is the attribute schema (required).
	Schema *subscription.Schema
	// N is the number of subscriptions to generate.
	N int
	// Dist selects the center distribution; default DistUniform.
	Dist SubDist
	// WidthFrac is the mean range width as a fraction of the domain
	// (default 0.1). Actual widths are uniform in [0.5, 1.5] times the mean.
	WidthFrac float64
	// UnconstrainedProb leaves an attribute unconstrained with this
	// probability, mimicking real subscriptions that mention only some
	// attributes.
	UnconstrainedProb float64
	// Seed drives the generator.
	Seed int64
	// Clusters is the number of Gaussian clusters for DistClustered
	// (default 5).
	Clusters int
	// HotspotFrac is the share of subscriptions drawn inside the hotspot
	// box for DistHotspot (default 0.9).
	HotspotFrac float64
	// HotspotWidthFrac is the hotspot box's side length as a fraction of
	// the domain for DistHotspot (default 0.05).
	HotspotWidthFrac float64
}

// Subscriptions generates a population per the spec.
func Subscriptions(spec SubSpec) ([]*subscription.Subscription, error) {
	if spec.Schema == nil {
		return nil, fmt.Errorf("workload: spec needs a schema")
	}
	if spec.N < 0 {
		return nil, fmt.Errorf("workload: negative N")
	}
	if spec.Dist == "" {
		spec.Dist = DistUniform
	}
	if err := spec.Dist.validate(); err != nil {
		return nil, err
	}
	if spec.WidthFrac == 0 {
		spec.WidthFrac = 0.1
	}
	if spec.WidthFrac < 0 || spec.WidthFrac > 1 {
		return nil, fmt.Errorf("workload: width fraction %v out of range (0,1]", spec.WidthFrac)
	}
	if spec.Clusters <= 0 {
		spec.Clusters = 5
	}
	if spec.HotspotFrac == 0 {
		spec.HotspotFrac = 0.9
	}
	if spec.HotspotFrac < 0 || spec.HotspotFrac > 1 {
		return nil, fmt.Errorf("workload: hotspot fraction %v out of [0,1]", spec.HotspotFrac)
	}
	if spec.HotspotWidthFrac == 0 {
		spec.HotspotWidthFrac = 0.05
	}
	if spec.HotspotWidthFrac < 0 || spec.HotspotWidthFrac > 1 {
		return nil, fmt.Errorf("workload: hotspot width fraction %v out of (0,1]", spec.HotspotWidthFrac)
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	domain := float64(spec.Schema.MaxValue()) + 1

	var zipf *rand.Zipf
	if spec.Dist == DistZipf {
		zipf = rand.NewZipf(rng, 1.3, 1, uint64(spec.Schema.MaxValue()))
	}
	var centers [][]float64
	if spec.Dist == DistClustered {
		centers = make([][]float64, spec.Clusters)
		for i := range centers {
			c := make([]float64, spec.Schema.NumAttrs())
			for j := range c {
				c[j] = rng.Float64() * domain
			}
			centers[i] = c
		}
	}
	var hotBase []float64
	if spec.Dist == DistHotspot {
		hotBase = make([]float64, spec.Schema.NumAttrs())
		for j := range hotBase {
			hotBase[j] = rng.Float64() * domain * (1 - spec.HotspotWidthFrac)
		}
	}

	out := make([]*subscription.Subscription, 0, spec.N)
	for i := 0; i < spec.N; i++ {
		s := subscription.New(spec.Schema)
		var cluster []float64
		if centers != nil {
			cluster = centers[rng.Intn(len(centers))]
		}
		inHot := hotBase != nil && rng.Float64() < spec.HotspotFrac
		for a, attr := range spec.Schema.Attrs() {
			if rng.Float64() < spec.UnconstrainedProb {
				continue
			}
			var center float64
			switch spec.Dist {
			case DistZipf:
				center = float64(zipf.Uint64())
			case DistClustered:
				center = cluster[a] + rng.NormFloat64()*domain/12
			case DistHotspot:
				if inHot {
					center = hotBase[a] + rng.Float64()*spec.HotspotWidthFrac*domain
				} else {
					center = rng.Float64() * domain
				}
			default:
				center = rng.Float64() * domain
			}
			center = math.Min(math.Max(center, 0), domain-1)
			width := spec.WidthFrac * domain * (0.5 + rng.Float64())
			lo := math.Max(center-width/2, 0)
			hi := math.Min(center+width/2, domain-1)
			if lo > hi {
				lo = hi
			}
			if err := s.SetRange(attr, uint32(lo), uint32(hi)); err != nil {
				return nil, fmt.Errorf("workload: %w", err)
			}
		}
		out = append(out, s)
	}
	return out, nil
}

// CoverPair is a planted covering relation: Parent covers Child.
type CoverPair struct {
	Parent, Child *subscription.Subscription
}

// CoverSpec parameterizes planted-cover generation for recall experiments.
type CoverSpec struct {
	// Schema is the attribute schema (required).
	Schema *subscription.Schema
	// N is the number of pairs.
	N int
	// SlackFrac is the mean one-sided slack between child and parent edges
	// as a fraction of the domain. Small slack plants "tight" covers that
	// sit in the approximation's blind corner; generous slack plants the
	// paper's "well distributed" regime.
	SlackFrac float64
	// WidthFrac is the child width fraction (default 0.15).
	WidthFrac float64
	// Seed drives the generator.
	Seed int64
}

// Covers generates planted parent/child pairs.
func Covers(spec CoverSpec) ([]CoverPair, error) {
	if spec.Schema == nil {
		return nil, fmt.Errorf("workload: spec needs a schema")
	}
	if spec.SlackFrac <= 0 || spec.SlackFrac > 0.5 {
		return nil, fmt.Errorf("workload: slack fraction %v out of range (0,0.5]", spec.SlackFrac)
	}
	if spec.WidthFrac == 0 {
		spec.WidthFrac = 0.15
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	domain := float64(spec.Schema.MaxValue()) + 1
	maxV := spec.Schema.MaxValue()
	out := make([]CoverPair, 0, spec.N)
	for i := 0; i < spec.N; i++ {
		child := subscription.New(spec.Schema)
		parent := subscription.New(spec.Schema)
		for _, attr := range spec.Schema.Attrs() {
			width := spec.WidthFrac * domain * (0.5 + rng.Float64())
			margin := spec.SlackFrac * domain * 2 // room for the parent
			lo := margin + rng.Float64()*(domain-width-2*margin)
			hi := lo + width
			if err := child.SetRange(attr, uint32(lo), uint32(hi)); err != nil {
				return nil, fmt.Errorf("workload: %w", err)
			}
			slackLo := rng.Float64() * spec.SlackFrac * domain
			slackHi := rng.Float64() * spec.SlackFrac * domain
			pLo := lo - slackLo
			pHi := hi + slackHi
			if pLo < 0 {
				pLo = 0
			}
			if pHi > float64(maxV) {
				pHi = float64(maxV)
			}
			if err := parent.SetRange(attr, uint32(pLo), uint32(pHi)); err != nil {
				return nil, fmt.Errorf("workload: %w", err)
			}
		}
		out = append(out, CoverPair{Parent: parent, Child: child})
	}
	return out, nil
}

// EventSpec parameterizes an event stream.
type EventSpec struct {
	// Schema is the attribute schema (required).
	Schema *subscription.Schema
	// N is the number of events.
	N int
	// Dist selects the value distribution (uniform or zipf).
	Dist SubDist
	// Seed drives the generator.
	Seed int64
}

// Events generates an event stream per the spec.
func Events(spec EventSpec) ([]subscription.Event, error) {
	if spec.Schema == nil {
		return nil, fmt.Errorf("workload: spec needs a schema")
	}
	if spec.Dist == "" {
		spec.Dist = DistUniform
	}
	if err := spec.Dist.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	var zipf *rand.Zipf
	if spec.Dist == DistZipf {
		zipf = rand.NewZipf(rng, 1.3, 1, uint64(spec.Schema.MaxValue()))
	}
	out := make([]subscription.Event, 0, spec.N)
	for i := 0; i < spec.N; i++ {
		e := make(subscription.Event, spec.Schema.NumAttrs())
		for a := range e {
			if zipf != nil {
				e[a] = uint32(zipf.Uint64())
			} else {
				e[a] = uint32(rng.Int63n(int64(spec.Schema.MaxValue()) + 1))
			}
		}
		out = append(out, e)
	}
	return out, nil
}

// AdversarialExtremal builds the Theorem 4.1 lower-bound family: an
// extremal rectangle in d dimensions whose shortest side (dimension d) has
// length 2^gamma − 1 and whose other sides have bit length gamma + alpha,
// maximizing the number of runs an exhaustive search must visit.
func AdversarialExtremal(d, k, alpha, gamma int) (geom.Extremal, error) {
	if gamma < 1 || gamma+alpha > k {
		return geom.Extremal{}, fmt.Errorf("workload: need 1 <= gamma and gamma+alpha <= k, got gamma=%d alpha=%d k=%d", gamma, alpha, k)
	}
	lens := make([]uint64, d)
	for i := 0; i < d-1; i++ {
		lens[i] = 1<<uint(gamma+alpha) - 1 // b(ℓ_i) = gamma + alpha
	}
	lens[d-1] = 1<<uint(gamma) - 1 // the short side: gamma ones
	return geom.NewExtremal(lens, k)
}

// RandomExtremal builds a random extremal rectangle whose aspect ratio is
// exactly alpha: side bit-lengths are drawn between bmin and bmin+alpha
// with both extremes present.
func RandomExtremal(rng *rand.Rand, d, k, alpha int) (geom.Extremal, error) {
	if alpha < 0 || alpha >= k {
		return geom.Extremal{}, fmt.Errorf("workload: alpha %d out of range [0,%d)", alpha, k)
	}
	bmin := 1 + rng.Intn(k-alpha)
	bmax := bmin + alpha
	lens := make([]uint64, d)
	randLen := func(b int) uint64 {
		// A b-bit number: top bit set, the rest random.
		return 1<<uint(b-1) | uint64(rng.Int63n(1<<uint(b-1)))
	}
	for i := range lens {
		b := bmin + rng.Intn(alpha+1)
		lens[i] = randLen(b)
	}
	// Force the extremes so the aspect ratio is exactly alpha.
	lens[0] = randLen(bmax)
	lens[d-1] = randLen(bmin)
	return geom.NewExtremal(lens, k)
}
