package subscription

import (
	"encoding/binary"
	"fmt"
)

// Wire format: brokers exchange subscriptions and events between
// processes; the codec is a compact, versioned, schema-checked binary
// encoding built on unsigned varints.
//
//	subscription: version | beta | bits | (lo, hi) per attribute
//	event:        version | beta | bits | value per attribute
//
// The embedded beta/bits let the receiver verify the payload matches its
// schema before trusting any range.
const (
	wireVersionSub   = 0x51 // 'Q' — subscription payload
	wireVersionEvent = 0x45 // 'E' — event payload
)

// MarshalBinary implements encoding.BinaryMarshaler for subscriptions.
func (s *Subscription) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, 3+2*len(s.ranges)*binary.MaxVarintLen32)
	buf = append(buf, wireVersionSub, byte(len(s.ranges)), byte(s.schema.bits))
	for _, r := range s.ranges {
		buf = binary.AppendUvarint(buf, uint64(r.Lo))
		buf = binary.AppendUvarint(buf, uint64(r.Hi))
	}
	return buf, nil
}

// UnmarshalSubscription decodes a subscription payload against the given
// schema, validating shape and domain.
func UnmarshalSubscription(schema *Schema, data []byte) (*Subscription, error) {
	rest, err := checkHeader(schema, data, wireVersionSub)
	if err != nil {
		return nil, fmt.Errorf("subscription: decoding subscription: %w", err)
	}
	s := New(schema)
	for i := range s.ranges {
		lo, n := binary.Uvarint(rest)
		if n <= 0 {
			return nil, fmt.Errorf("subscription: truncated range lo on attribute %d", i)
		}
		rest = rest[n:]
		hi, n := binary.Uvarint(rest)
		if n <= 0 {
			return nil, fmt.Errorf("subscription: truncated range hi on attribute %d", i)
		}
		rest = rest[n:]
		if lo > hi || hi > uint64(schema.MaxValue()) {
			return nil, fmt.Errorf("subscription: range [%d,%d] invalid for attribute %d", lo, hi, i)
		}
		s.setRangeAt(i, Range{Lo: uint32(lo), Hi: uint32(hi)})
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("subscription: %d trailing bytes", len(rest))
	}
	return s, nil
}

// MarshalBinary implements encoding.BinaryMarshaler for events. The event
// does not know its schema, so the caller supplies it.
func (e Event) MarshalBinary(schema *Schema) ([]byte, error) {
	if len(e) != schema.NumAttrs() {
		return nil, fmt.Errorf("subscription: event has %d attributes, schema needs %d", len(e), schema.NumAttrs())
	}
	buf := make([]byte, 0, 3+len(e)*binary.MaxVarintLen32)
	buf = append(buf, wireVersionEvent, byte(len(e)), byte(schema.bits))
	for _, v := range e {
		buf = binary.AppendUvarint(buf, uint64(v))
	}
	return buf, nil
}

// UnmarshalEvent decodes an event payload against the given schema.
func UnmarshalEvent(schema *Schema, data []byte) (Event, error) {
	rest, err := checkHeader(schema, data, wireVersionEvent)
	if err != nil {
		return nil, fmt.Errorf("subscription: decoding event: %w", err)
	}
	e := make(Event, schema.NumAttrs())
	for i := range e {
		v, n := binary.Uvarint(rest)
		if n <= 0 {
			return nil, fmt.Errorf("subscription: truncated value on attribute %d", i)
		}
		rest = rest[n:]
		if v > uint64(schema.MaxValue()) {
			return nil, fmt.Errorf("subscription: value %d out of domain on attribute %d", v, i)
		}
		e[i] = uint32(v)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("subscription: %d trailing bytes", len(rest))
	}
	return e, nil
}

func checkHeader(schema *Schema, data []byte, version byte) ([]byte, error) {
	if len(data) < 3 {
		return nil, fmt.Errorf("payload too short (%d bytes)", len(data))
	}
	if data[0] != version {
		return nil, fmt.Errorf("unexpected payload type 0x%02x", data[0])
	}
	if int(data[1]) != schema.NumAttrs() {
		return nil, fmt.Errorf("payload has %d attributes, schema has %d", data[1], schema.NumAttrs())
	}
	if int(data[2]) != schema.Bits() {
		return nil, fmt.Errorf("payload uses %d-bit domains, schema uses %d", data[2], schema.Bits())
	}
	return data[3:], nil
}
