package subscription

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sfccover/internal/geom"
)

func TestNewSchemaValidation(t *testing.T) {
	if _, err := NewSchema(0, "a"); err == nil {
		t.Error("bits=0 must fail")
	}
	if _, err := NewSchema(17, "a"); err == nil {
		t.Error("bits=17 must fail")
	}
	if _, err := NewSchema(8); err == nil {
		t.Error("no attributes must fail")
	}
	if _, err := NewSchema(8, "a", "a"); err == nil {
		t.Error("duplicate attribute must fail")
	}
	if _, err := NewSchema(8, ""); err == nil {
		t.Error("empty attribute name must fail")
	}
	if _, err := NewSchema(8, "a", "b", "c", "d", "e", "f", "g", "h", "i"); err == nil {
		t.Error("9 attributes must fail")
	}
	s, err := NewSchema(10, "stock", "volume", "price")
	if err != nil {
		t.Fatal(err)
	}
	if s.Bits() != 10 || s.NumAttrs() != 3 || s.Dims() != 6 || s.MaxValue() != 1023 {
		t.Errorf("schema accessors wrong: %+v", s)
	}
	if i, ok := s.AttrIndex("volume"); !ok || i != 1 {
		t.Errorf("AttrIndex(volume) = %d,%v", i, ok)
	}
	if _, ok := s.AttrIndex("nope"); ok {
		t.Error("unknown attribute found")
	}
}

func TestSubscriptionConstraintsAndMatching(t *testing.T) {
	// The paper's intro example: subscription [stock = IBM, volume > 500,
	// current < 95] matches event [stock = IBM, volume = 1000, current = 88].
	schema := MustSchema(10, "stock", "volume", "current")
	sub := New(schema)
	const ibm = 7
	if err := sub.SetEq("stock", ibm); err != nil {
		t.Fatal(err)
	}
	if err := sub.SetMin("volume", 501); err != nil {
		t.Fatal(err)
	}
	if err := sub.SetMax("current", 94); err != nil {
		t.Fatal(err)
	}
	ev, err := NewEvent(schema, map[string]uint32{"stock": ibm, "volume": 1000, "current": 88})
	if err != nil {
		t.Fatal(err)
	}
	if !sub.Matches(ev) {
		t.Error("paper example must match")
	}
	ev2, _ := NewEvent(schema, map[string]uint32{"stock": ibm, "volume": 400, "current": 88})
	if sub.Matches(ev2) {
		t.Error("volume below threshold must not match")
	}
	ev3, _ := NewEvent(schema, map[string]uint32{"stock": 8, "volume": 1000, "current": 88})
	if sub.Matches(ev3) {
		t.Error("different stock must not match")
	}
}

func TestSetRangeValidation(t *testing.T) {
	schema := MustSchema(4, "a")
	sub := New(schema)
	if err := sub.SetRange("nope", 0, 1); err == nil {
		t.Error("unknown attribute must fail")
	}
	if err := sub.SetRange("a", 5, 3); err == nil {
		t.Error("inverted range must fail")
	}
	if err := sub.SetRange("a", 0, 16); err == nil {
		t.Error("out-of-domain value must fail")
	}
}

func TestCoversSemantics(t *testing.T) {
	schema := MustSchema(8, "x", "y")
	wide := MustParse(schema, "x in [10,200] && y in [0,100]")
	narrow := MustParse(schema, "x in [20,150] && y in [5,50]")
	if !wide.Covers(narrow) {
		t.Error("wide must cover narrow")
	}
	if narrow.Covers(wide) {
		t.Error("narrow must not cover wide")
	}
	if !wide.Covers(wide) {
		t.Error("covering is reflexive")
	}
	everything := New(schema)
	if !everything.Covers(wide) || !everything.Covers(narrow) {
		t.Error("unconstrained subscription covers everything")
	}
	disjoint := MustParse(schema, "x in [201,255]")
	if wide.Covers(disjoint) || disjoint.Covers(wide) {
		t.Error("disjoint subscriptions cover neither way")
	}
}

func TestCoversIffAllMatchesContained(t *testing.T) {
	// Semantic definition: s1 covers s2 iff N(s1) ⊇ N(s2). Verify against
	// brute-force event enumeration on a tiny domain.
	schema := MustSchema(3, "a", "b")
	rng := rand.New(rand.NewSource(19))
	randSub := func() *Subscription {
		s := New(schema)
		for _, attr := range schema.Attrs() {
			lo := uint32(rng.Intn(8))
			hi := lo + uint32(rng.Intn(int(8-lo)))
			if err := s.SetRange(attr, lo, hi); err != nil {
				t.Fatal(err)
			}
		}
		return s
	}
	for trial := 0; trial < 200; trial++ {
		s1, s2 := randSub(), randSub()
		semantic := true
		for a := uint32(0); a < 8; a++ {
			for b := uint32(0); b < 8; b++ {
				e := Event{a, b}
				if s2.Matches(e) && !s1.Matches(e) {
					semantic = false
				}
			}
		}
		if got := s1.Covers(s2); got != semantic {
			t.Fatalf("Covers(%v, %v) = %v, semantic %v", s1, s2, got, semantic)
		}
	}
}

func TestPointTransformPreservesCovering(t *testing.T) {
	// The Edelsbrunner–Overmars equivalence, both directions:
	// s1 covers s2 <=> p(s1) dominates p(s2).
	schema := MustSchema(6, "a", "b", "c")
	rng := rand.New(rand.NewSource(23))
	randSub := func() *Subscription {
		s := New(schema)
		for _, attr := range schema.Attrs() {
			lo := uint32(rng.Intn(64))
			hi := lo + uint32(rng.Intn(int(64-lo)))
			if err := s.SetRange(attr, lo, hi); err != nil {
				t.Fatal(err)
			}
		}
		return s
	}
	for trial := 0; trial < 500; trial++ {
		s1, s2 := randSub(), randSub()
		if s1.Covers(s2) != geom.Dominates(s1.Point(), s2.Point()) {
			t.Fatalf("EO transform broken for %v vs %v", s1, s2)
		}
	}
}

func TestPointRoundTrip(t *testing.T) {
	schema := MustSchema(8, "x", "y")
	f := func(lo1, hi1, lo2, hi2 uint8) bool {
		s := New(schema)
		l1, h1 := uint32(lo1), uint32(hi1)
		if l1 > h1 {
			l1, h1 = h1, l1
		}
		l2, h2 := uint32(lo2), uint32(hi2)
		if l2 > h2 {
			l2, h2 = h2, l2
		}
		if err := s.SetRange("x", l1, h1); err != nil {
			return false
		}
		if err := s.SetRange("y", l2, h2); err != nil {
			return false
		}
		back, err := FromPoint(schema, s.Point())
		return err == nil && back.Equal(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFromPointValidation(t *testing.T) {
	schema := MustSchema(8, "x")
	if _, err := FromPoint(schema, []uint32{1}); err == nil {
		t.Error("wrong dims must fail")
	}
	// Inverted: lo=200 means p[0]=max-200=55; hi=100 < 200.
	if _, err := FromPoint(schema, []uint32{55, 100}); err == nil {
		t.Error("inverted decode must fail")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	schema := MustSchema(8, "x")
	a := MustParse(schema, "x in [1,5]")
	b := a.Clone()
	if err := b.SetRange("x", 7, 9); err != nil {
		t.Fatal(err)
	}
	if a.Range(0).Lo != 1 || a.Range(0).Hi != 5 {
		t.Error("clone mutated original")
	}
}

func TestStringRendering(t *testing.T) {
	schema := MustSchema(8, "stock", "volume", "price")
	tests := []struct {
		expr string
		want string
	}{
		{"stock == 5", "stock == 5"},
		{"volume >= 100", "volume >= 100"},
		{"price <= 95", "price <= 95"},
		{"stock in [3,9]", "stock in [3,9]"},
		{"", "true"},
		{"true", "true"},
	}
	for _, tt := range tests {
		s := MustParse(schema, tt.expr)
		if got := s.String(); got != tt.want {
			t.Errorf("String(%q) = %q, want %q", tt.expr, got, tt.want)
		}
	}
}

func TestStringParseRoundTrip(t *testing.T) {
	schema := MustSchema(8, "a", "b")
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 300; trial++ {
		s := New(schema)
		for _, attr := range schema.Attrs() {
			lo := uint32(rng.Intn(256))
			hi := lo + uint32(rng.Intn(int(256-lo)))
			if err := s.SetRange(attr, lo, hi); err != nil {
				t.Fatal(err)
			}
		}
		back, err := Parse(schema, s.String())
		if err != nil {
			t.Fatalf("parse of %q: %v", s.String(), err)
		}
		if !back.Equal(s) {
			t.Fatalf("roundtrip %q -> %q", s.String(), back.String())
		}
	}
}

func TestNewEventValidation(t *testing.T) {
	schema := MustSchema(4, "a", "b")
	if _, err := NewEvent(schema, map[string]uint32{"a": 1}); err == nil {
		t.Error("missing attribute must fail")
	}
	if _, err := NewEvent(schema, map[string]uint32{"a": 1, "c": 2}); err == nil {
		t.Error("unknown attribute must fail")
	}
	if _, err := NewEvent(schema, map[string]uint32{"a": 1, "b": 16}); err == nil {
		t.Error("out-of-domain value must fail")
	}
	e, err := NewEvent(schema, map[string]uint32{"b": 3, "a": 1})
	if err != nil {
		t.Fatal(err)
	}
	if e[0] != 1 || e[1] != 3 {
		t.Errorf("event order wrong: %v", e)
	}
}
