package subscription

import (
	"math/rand"
	"testing"
)

func TestMergeCoveringCases(t *testing.T) {
	schema := MustSchema(8, "x", "y")
	wide := MustParse(schema, "x in [0,100] && y in [0,100]")
	narrow := MustParse(schema, "x in [10,20] && y in [10,20]")
	m, ok := Merge(wide, narrow)
	if !ok || !m.Equal(wide) {
		t.Fatal("merge of covered pair should be the cover")
	}
	m, ok = Merge(narrow, wide)
	if !ok || !m.Equal(wide) {
		t.Fatal("merge is symmetric for covered pairs")
	}
	m, ok = Merge(wide, wide)
	if !ok || !m.Equal(wide) {
		t.Fatal("self merge is identity")
	}
}

func TestMergeSingleAxisUnion(t *testing.T) {
	schema := MustSchema(8, "x", "y")
	a := MustParse(schema, "x in [0,10] && y in [5,9]")
	b := MustParse(schema, "x in [11,30] && y in [5,9]") // adjacent on x
	m, ok := Merge(a, b)
	if !ok {
		t.Fatal("adjacent single-axis rectangles must merge")
	}
	want := MustParse(schema, "x in [0,30] && y in [5,9]")
	if !m.Equal(want) {
		t.Fatalf("merged = %v, want %v", m, want)
	}

	c := MustParse(schema, "x in [5,40] && y in [5,9]") // overlapping on x
	m, ok = Merge(a, c)
	if !ok || !m.Equal(MustParse(schema, "x in [0,40] && y in [5,9]")) {
		t.Fatalf("overlapping merge wrong: %v", m)
	}
}

func TestMergeRejectsNonRectangularUnions(t *testing.T) {
	schema := MustSchema(8, "x", "y")
	cases := [][2]string{
		{"x in [0,10] && y in [5,9]", "x in [12,30] && y in [5,9]"},    // gap on x
		{"x in [0,10] && y in [5,9]", "x in [11,30] && y in [6,9]"},    // two axes differ
		{"x in [0,10] && y in [0,10]", "x in [20,30] && y in [20,30]"}, // fully disjoint
	}
	for _, c := range cases {
		a, b := MustParse(schema, c[0]), MustParse(schema, c[1])
		if _, ok := Merge(a, b); ok {
			t.Errorf("Merge(%q, %q) should fail", c[0], c[1])
		}
	}
	other := MustSchema(8, "x", "y")
	if _, ok := Merge(New(schema), New(other)); ok {
		t.Error("cross-schema merge must fail")
	}
}

func TestMergeIsExactUnionSemanticaly(t *testing.T) {
	// Brute force on a tiny domain: whenever Merge succeeds, the merged
	// subscription matches exactly the union of the inputs' match sets;
	// whenever it fails, no rectangle equals the union.
	schema := MustSchema(3, "a", "b")
	rng := rand.New(rand.NewSource(99))
	randSub := func() *Subscription {
		s := New(schema)
		for _, attr := range schema.Attrs() {
			lo := uint32(rng.Intn(8))
			hi := lo + uint32(rng.Intn(int(8-lo)))
			if err := s.SetRange(attr, lo, hi); err != nil {
				t.Fatal(err)
			}
		}
		return s
	}
	events := make([]Event, 0, 64)
	for a := uint32(0); a < 8; a++ {
		for b := uint32(0); b < 8; b++ {
			events = append(events, Event{a, b})
		}
	}
	for trial := 0; trial < 500; trial++ {
		s1, s2 := randSub(), randSub()
		m, ok := Merge(s1, s2)
		if ok {
			for _, e := range events {
				if m.Matches(e) != (s1.Matches(e) || s2.Matches(e)) {
					t.Fatalf("merge of %v and %v is not the exact union at %v", s1, s2, e)
				}
			}
			continue
		}
		// Merge refused: verify the union really is not a rectangle by
		// checking that the bounding box over-matches.
		bbox := New(schema)
		for i := 0; i < schema.NumAttrs(); i++ {
			r1, r2 := s1.Range(i), s2.Range(i)
			if err := bbox.SetRange(schema.Attrs()[i], min32(r1.Lo, r2.Lo), max32(r1.Hi, r2.Hi)); err != nil {
				t.Fatal(err)
			}
		}
		exact := true
		for _, e := range events {
			if bbox.Matches(e) != (s1.Matches(e) || s2.Matches(e)) {
				exact = false
				break
			}
		}
		if exact {
			t.Fatalf("Merge refused %v and %v although their union is the box %v", s1, s2, bbox)
		}
	}
}
