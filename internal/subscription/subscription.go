// Package subscription models the content-based publish/subscribe data
// model of Section 1.1: messages (events) carry β numeric attributes;
// subscriptions are conjunctions of range constraints, one per attribute;
// and a subscription is a β-dimensional rectangle that matches all events
// whose points lie inside it.
//
// The package also provides the Edelsbrunner–Overmars transform [EO82] that
// turns covering between β-dimensional rectangles into dominance between
// 2β-dimensional points: subscription s = ([ℓ1,r1], ..., [ℓβ,rβ]) becomes
// the point p(s) = (2^k−1−ℓ1, r1, ..., 2^k−1−ℓβ, rβ), and s1 covers s2 iff
// p(s1) dominates p(s2) coordinate-wise.
package subscription

import (
	"fmt"
	"strings"
)

// Schema declares the attributes of a pub/sub domain. All attributes share
// the same k-bit discrete domain [0, 2^k−1], matching the paper's
// 2^k × ... × 2^k universe.
type Schema struct {
	names []string
	index map[string]int
	bits  int
}

// NewSchema builds a schema with the given per-attribute resolution
// (1..16 bits, so the 2β-dimensional transform fits a 32-dim key) and
// attribute names.
func NewSchema(bits int, attrs ...string) (*Schema, error) {
	if bits < 1 || bits > 16 {
		return nil, fmt.Errorf("subscription: bits %d out of range [1,16]", bits)
	}
	if len(attrs) == 0 {
		return nil, fmt.Errorf("subscription: schema needs at least one attribute")
	}
	if len(attrs) > 8 {
		return nil, fmt.Errorf("subscription: %d attributes exceed the supported maximum of 8", len(attrs))
	}
	s := &Schema{
		names: append([]string(nil), attrs...),
		index: make(map[string]int, len(attrs)),
		bits:  bits,
	}
	for i, a := range attrs {
		if a == "" {
			return nil, fmt.Errorf("subscription: attribute %d has empty name", i)
		}
		if _, dup := s.index[a]; dup {
			return nil, fmt.Errorf("subscription: duplicate attribute %q", a)
		}
		s.index[a] = i
	}
	return s, nil
}

// MustSchema is NewSchema for known-good literals.
func MustSchema(bits int, attrs ...string) *Schema {
	s, err := NewSchema(bits, attrs...)
	if err != nil {
		panic(err)
	}
	return s
}

// Bits returns the per-attribute resolution k.
func (s *Schema) Bits() int { return s.bits }

// NumAttrs returns β, the number of attributes.
func (s *Schema) NumAttrs() int { return len(s.names) }

// Attrs returns the attribute names in declaration order.
func (s *Schema) Attrs() []string { return append([]string(nil), s.names...) }

// AttrIndex returns the position of the named attribute.
func (s *Schema) AttrIndex(name string) (int, bool) {
	i, ok := s.index[name]
	return i, ok
}

// MaxValue returns the largest attribute value, 2^k − 1.
func (s *Schema) MaxValue() uint32 { return 1<<uint(s.bits) - 1 }

// Dims returns the dominance dimensionality of the transform, 2β.
func (s *Schema) Dims() int { return 2 * len(s.names) }

// Range is an inclusive interval of attribute values.
type Range struct {
	Lo, Hi uint32
}

// Contains reports whether v lies in the range.
func (r Range) Contains(v uint32) bool { return r.Lo <= v && v <= r.Hi }

// ContainsRange reports whether o is a subinterval of r.
func (r Range) ContainsRange(o Range) bool { return r.Lo <= o.Lo && o.Hi <= r.Hi }

// Width returns the number of values in the range.
func (r Range) Width() uint64 { return uint64(r.Hi) - uint64(r.Lo) + 1 }

// Subscription is a conjunction of range constraints over a schema's
// attributes; attributes not explicitly constrained span the full domain.
type Subscription struct {
	schema *Schema
	ranges []Range
	// point is the Edelsbrunner–Overmars transform of ranges, maintained
	// eagerly by every mutation so the query hot path reads it without
	// transforming (or allocating) per call.
	point []uint32
}

// New returns a subscription with every attribute unconstrained.
func New(schema *Schema) *Subscription {
	ranges := make([]Range, schema.NumAttrs())
	s := &Subscription{
		schema: schema,
		ranges: ranges,
		point:  make([]uint32, 2*len(ranges)),
	}
	full := Range{Lo: 0, Hi: schema.MaxValue()}
	for i := range ranges {
		s.setRangeAt(i, full)
	}
	return s
}

// setRangeAt is the single mutation point for a constraint: it keeps the
// transformed point in lockstep with the rectangle.
func (s *Subscription) setRangeAt(i int, r Range) {
	s.ranges[i] = r
	max := s.schema.MaxValue()
	s.point[2*i] = max - r.Lo
	s.point[2*i+1] = r.Hi
}

// Schema returns the subscription's schema.
func (s *Subscription) Schema() *Schema { return s.schema }

// Range returns the constraint on attribute i.
func (s *Subscription) Range(i int) Range { return s.ranges[i] }

// SetRange constrains the named attribute to [lo, hi].
func (s *Subscription) SetRange(attr string, lo, hi uint32) error {
	i, ok := s.schema.AttrIndex(attr)
	if !ok {
		return fmt.Errorf("subscription: unknown attribute %q", attr)
	}
	if lo > hi {
		return fmt.Errorf("subscription: inverted range [%d,%d] on %q", lo, hi, attr)
	}
	if hi > s.schema.MaxValue() {
		return fmt.Errorf("subscription: value %d exceeds domain max %d on %q", hi, s.schema.MaxValue(), attr)
	}
	s.setRangeAt(i, Range{Lo: lo, Hi: hi})
	return nil
}

// SetEq constrains attr to exactly v.
func (s *Subscription) SetEq(attr string, v uint32) error { return s.SetRange(attr, v, v) }

// SetMin constrains attr to values >= v.
func (s *Subscription) SetMin(attr string, v uint32) error {
	return s.SetRange(attr, v, s.schema.MaxValue())
}

// SetMax constrains attr to values <= v.
func (s *Subscription) SetMax(attr string, v uint32) error { return s.SetRange(attr, 0, v) }

// Clone returns an independent copy.
func (s *Subscription) Clone() *Subscription {
	return &Subscription{
		schema: s.schema,
		ranges: append([]Range(nil), s.ranges...),
		point:  append([]uint32(nil), s.point...),
	}
}

// Matches reports whether the event satisfies every constraint.
func (s *Subscription) Matches(e Event) bool {
	if len(e) != len(s.ranges) {
		return false
	}
	for i, r := range s.ranges {
		if !r.Contains(e[i]) {
			return false
		}
	}
	return true
}

// Covers reports whether s covers o: N(s) ⊇ N(o), i.e. every event
// matching o also matches s. For rectangle subscriptions this is
// per-attribute range containment.
func (s *Subscription) Covers(o *Subscription) bool {
	if s.schema != o.schema {
		return false
	}
	for i, r := range s.ranges {
		if !r.ContainsRange(o.ranges[i]) {
			return false
		}
	}
	return true
}

// Equal reports whether the two subscriptions constrain identically.
func (s *Subscription) Equal(o *Subscription) bool {
	if s.schema != o.schema {
		return false
	}
	for i := range s.ranges {
		if s.ranges[i] != o.ranges[i] {
			return false
		}
	}
	return true
}

// Point is the Edelsbrunner–Overmars transform of the subscription: the
// 2β-dimensional point whose dominance order mirrors covering —
// coordinate 2i is 2^k−1−ℓ_i (wider-to-the-left sorts higher) and
// coordinate 2i+1 is r_i. The returned slice is the subscription's own,
// maintained by every mutation: callers must treat it as read-only and
// not retain it across a SetRange. Index layers that store points copy
// them, so the shared slice never escapes into long-lived state.
func (s *Subscription) Point() []uint32 { return s.point }

// FromPoint inverts Point, reconstructing the subscription rectangle.
func FromPoint(schema *Schema, p []uint32) (*Subscription, error) {
	if len(p) != schema.Dims() {
		return nil, fmt.Errorf("subscription: point has %d dims, schema needs %d", len(p), schema.Dims())
	}
	s := New(schema)
	max := schema.MaxValue()
	for i := 0; i < schema.NumAttrs(); i++ {
		lo, hi := max-p[2*i], p[2*i+1]
		if lo > hi {
			return nil, fmt.Errorf("subscription: point decodes to inverted range on attribute %d", i)
		}
		s.setRangeAt(i, Range{Lo: lo, Hi: hi})
	}
	return s, nil
}

// String renders the subscription in the parseable constraint syntax.
func (s *Subscription) String() string {
	var b strings.Builder
	first := true
	for i, r := range s.ranges {
		if r.Lo == 0 && r.Hi == s.schema.MaxValue() {
			continue
		}
		if !first {
			b.WriteString(" && ")
		}
		first = false
		switch {
		case r.Lo == r.Hi:
			fmt.Fprintf(&b, "%s == %d", s.schema.names[i], r.Lo)
		case r.Lo == 0:
			fmt.Fprintf(&b, "%s <= %d", s.schema.names[i], r.Hi)
		case r.Hi == s.schema.MaxValue():
			fmt.Fprintf(&b, "%s >= %d", s.schema.names[i], r.Lo)
		default:
			fmt.Fprintf(&b, "%s in [%d,%d]", s.schema.names[i], r.Lo, r.Hi)
		}
	}
	if first {
		return "true"
	}
	return b.String()
}

// Event is a message: one value per schema attribute, in declaration order.
type Event []uint32

// NewEvent builds an event from attribute name/value pairs; every attribute
// must be assigned exactly once.
func NewEvent(schema *Schema, values map[string]uint32) (Event, error) {
	if len(values) != schema.NumAttrs() {
		return nil, fmt.Errorf("subscription: event assigns %d attributes, schema has %d", len(values), schema.NumAttrs())
	}
	e := make(Event, schema.NumAttrs())
	for name, v := range values {
		i, ok := schema.AttrIndex(name)
		if !ok {
			return nil, fmt.Errorf("subscription: unknown attribute %q", name)
		}
		if v > schema.MaxValue() {
			return nil, fmt.Errorf("subscription: value %d exceeds domain max on %q", v, name)
		}
		e[i] = v
	}
	return e, nil
}
