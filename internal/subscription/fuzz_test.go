package subscription

import "testing"

// FuzzParse hardens the constraint parser: arbitrary input must either
// parse into a valid subscription or return an error — never panic, never
// produce out-of-domain ranges.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"x == 5",
		"x in [1,2] && y >= 3",
		"true",
		"",
		"x in [,]",
		"x <= 999999999999999999999",
		"x && y",
		"x in [5",
		"&& && &&",
		"x == 5 && x == 6",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	schema := MustSchema(8, "x", "y")
	f.Fuzz(func(t *testing.T, expr string) {
		s, err := Parse(schema, expr)
		if err != nil {
			return
		}
		for i := 0; i < schema.NumAttrs(); i++ {
			r := s.Range(i)
			if r.Lo > r.Hi || r.Hi > schema.MaxValue() {
				t.Fatalf("parsed invalid range %+v from %q", r, expr)
			}
		}
		// Whatever parses must render and re-parse to the same thing.
		back, err := Parse(schema, s.String())
		if err != nil {
			t.Fatalf("render of %q does not re-parse: %v", expr, err)
		}
		if !back.Equal(s) {
			t.Fatalf("render roundtrip changed %q: %v vs %v", expr, s, back)
		}
	})
}

// FuzzParseEvent hardens the event parser the same way.
func FuzzParseEvent(f *testing.F) {
	for _, s := range []string{
		"x = 1, y = 2",
		"x = 1",
		"x = , y = 2",
		"x == 1, y = 2",
		"x = 999, y = 0",
	} {
		f.Add(s)
	}
	schema := MustSchema(8, "x", "y")
	f.Fuzz(func(t *testing.T, expr string) {
		e, err := ParseEvent(schema, expr)
		if err != nil {
			return
		}
		if len(e) != 2 {
			t.Fatalf("parsed event with %d attributes from %q", len(e), expr)
		}
		for _, v := range e {
			if v > schema.MaxValue() {
				t.Fatalf("parsed out-of-domain value %d from %q", v, expr)
			}
		}
	})
}

// FuzzUnmarshalSubscription hardens the wire decoder against arbitrary
// bytes: decode either fails or yields a subscription that re-encodes to
// an equivalent payload.
func FuzzUnmarshalSubscription(f *testing.F) {
	schema := MustSchema(8, "x", "y")
	good, _ := MustParse(schema, "x in [3,7] && y in [1,200]").MarshalBinary()
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte{0x51, 2, 8, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := UnmarshalSubscription(schema, data)
		if err != nil {
			return
		}
		re, err := s.MarshalBinary()
		if err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
		back, err := UnmarshalSubscription(schema, re)
		if err != nil || !back.Equal(s) {
			t.Fatalf("re-marshal roundtrip broken")
		}
	})
}

// FuzzMerge checks Merge's core invariant on arbitrary range pairs: when a
// merge is produced, it covers both inputs and has exactly the union's
// volume (so it matches nothing extra).
func FuzzMerge(f *testing.F) {
	f.Add(uint8(0), uint8(10), uint8(5), uint8(9), uint8(11), uint8(30), uint8(5), uint8(9))
	schema := MustSchema(8, "x", "y")
	f.Fuzz(func(t *testing.T, aLoX, aHiX, aLoY, aHiY, bLoX, bHiX, bLoY, bHiY uint8) {
		norm := func(lo, hi uint8) (uint32, uint32) {
			if lo > hi {
				lo, hi = hi, lo
			}
			return uint32(lo), uint32(hi)
		}
		mk := func(loX, hiX, loY, hiY uint8) *Subscription {
			s := New(schema)
			lx, hx := norm(loX, hiX)
			ly, hy := norm(loY, hiY)
			if err := s.SetRange("x", lx, hx); err != nil {
				t.Fatal(err)
			}
			if err := s.SetRange("y", ly, hy); err != nil {
				t.Fatal(err)
			}
			return s
		}
		a := mk(aLoX, aHiX, aLoY, aHiY)
		b := mk(bLoX, bHiX, bLoY, bHiY)
		m, ok := Merge(a, b)
		if !ok {
			return
		}
		if !m.Covers(a) || !m.Covers(b) {
			t.Fatalf("merge %v does not cover both inputs %v, %v", m, a, b)
		}
		// Volume check: |union| = |A| + |B| - |A∩B| must equal |M|.
		volume := func(s *Subscription) uint64 {
			v := uint64(1)
			for i := 0; i < schema.NumAttrs(); i++ {
				v *= s.Range(i).Width()
			}
			return v
		}
		inter := uint64(1)
		for i := 0; i < schema.NumAttrs(); i++ {
			ra, rb := a.Range(i), b.Range(i)
			lo := max32(ra.Lo, rb.Lo)
			hi := min32(ra.Hi, rb.Hi)
			if lo > hi {
				inter = 0
				break
			}
			inter *= uint64(hi) - uint64(lo) + 1
		}
		if volume(m) != volume(a)+volume(b)-inter {
			t.Fatalf("merge %v is not the exact union of %v and %v", m, a, b)
		}
	})
}
