package subscription

import (
	"math/rand"
	"testing"
)

func TestSubscriptionWireRoundTrip(t *testing.T) {
	schema := MustSchema(12, "a", "b", "c")
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 300; trial++ {
		s := New(schema)
		for _, attr := range schema.Attrs() {
			lo := uint32(rng.Intn(4096))
			hi := lo + uint32(rng.Intn(int(4096-lo)))
			if err := s.SetRange(attr, lo, hi); err != nil {
				t.Fatal(err)
			}
		}
		data, err := s.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		back, err := UnmarshalSubscription(schema, data)
		if err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		if !back.Equal(s) {
			t.Fatalf("roundtrip %v -> %v", s, back)
		}
	}
}

func TestEventWireRoundTrip(t *testing.T) {
	schema := MustSchema(10, "x", "y")
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 300; trial++ {
		e := Event{uint32(rng.Intn(1024)), uint32(rng.Intn(1024))}
		data, err := e.MarshalBinary(schema)
		if err != nil {
			t.Fatal(err)
		}
		back, err := UnmarshalEvent(schema, data)
		if err != nil {
			t.Fatal(err)
		}
		if back[0] != e[0] || back[1] != e[1] {
			t.Fatalf("roundtrip %v -> %v", e, back)
		}
	}
}

func TestWireRejectsCorruptPayloads(t *testing.T) {
	schema := MustSchema(8, "x", "y")
	s := MustParse(schema, "x in [3,7] && y in [1,200]")
	good, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	cases := map[string][]byte{
		"empty":          {},
		"too short":      good[:2],
		"wrong type":     append([]byte{0x45}, good[1:]...),
		"wrong beta":     append([]byte{good[0], 9}, good[2:]...),
		"wrong bits":     append([]byte{good[0], good[1], 13}, good[3:]...),
		"truncated body": good[:len(good)-1],
		"trailing bytes": append(append([]byte{}, good...), 0x00),
	}
	for name, data := range cases {
		if _, err := UnmarshalSubscription(schema, data); err == nil {
			t.Errorf("%s: expected decode error", name)
		}
	}

	// Inverted range in an otherwise valid payload.
	bad := []byte{good[0], 2, 8}
	bad = append(bad, 200, 1) // lo=200 (varint single byte? 200 > 127...)
	// Build explicitly with known-small varints: lo=5, hi=3 (inverted).
	bad = []byte{good[0], 2, 8, 5, 3, 0, 0}
	if _, err := UnmarshalSubscription(schema, bad); err == nil {
		t.Error("inverted range should fail")
	}
	// Out-of-domain value in an event.
	evBad := []byte{0x45, 2, 8, 255, 10, 1}           // 255+... varint 255 needs 2 bytes
	evBad = append([]byte{0x45, 2, 8}, 0xFF, 0x07, 1) // value 1023 > 255
	if _, err := UnmarshalEvent(schema, evBad); err == nil {
		t.Error("out-of-domain event value should fail")
	}

	if _, err := (Event{1}).MarshalBinary(schema); err == nil {
		t.Error("wrong arity event marshal should fail")
	}
	if _, err := UnmarshalEvent(schema, good); err == nil {
		t.Error("subscription payload decoded as event")
	}
}

func TestWireCrossSchemaRejected(t *testing.T) {
	a := MustSchema(8, "x", "y")
	b := MustSchema(10, "x", "y")
	c := MustSchema(8, "x", "y", "z")
	s := MustParse(a, "x in [1,2]")
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalSubscription(b, data); err == nil {
		t.Error("different bits must be rejected")
	}
	if _, err := UnmarshalSubscription(c, data); err == nil {
		t.Error("different attribute count must be rejected")
	}
}
