package subscription

// Merge returns a single subscription whose match set is exactly
// N(a) ∪ N(b), when such a rectangle exists ("perfect merging" in the
// terminology of the covering/merging literature the paper builds on
// [LHJ05]). ok is false when the union is not a rectangle.
//
// The union of two axis-aligned rectangles is a rectangle iff one contains
// the other, or they agree on every attribute except one and their ranges
// on that attribute overlap or touch. Routers can use perfect merging as a
// complement to covering: where covering suppresses a subscription inside
// an existing one, merging replaces two mergeable subscriptions by their
// exact union, shrinking tables without any approximation error.
func Merge(a, b *Subscription) (merged *Subscription, ok bool) {
	if a.schema != b.schema {
		return nil, false
	}
	if a.Covers(b) {
		return a.Clone(), true
	}
	if b.Covers(a) {
		return b.Clone(), true
	}
	diff := -1
	for i := range a.ranges {
		if a.ranges[i] == b.ranges[i] {
			continue
		}
		if diff >= 0 {
			return nil, false // differ on two attributes: union is not a box
		}
		diff = i
	}
	// diff >= 0 here: the all-equal case was handled by Covers above.
	ra, rb := a.ranges[diff], b.ranges[diff]
	if !rangesTouch(ra, rb) {
		return nil, false // disjoint with a gap: union is not an interval
	}
	merged = a.Clone()
	merged.setRangeAt(diff, Range{Lo: min32(ra.Lo, rb.Lo), Hi: max32(ra.Hi, rb.Hi)})
	return merged, true
}

// rangesTouch reports whether the union of two inclusive ranges is a
// single interval (they overlap or are adjacent).
func rangesTouch(a, b Range) bool {
	if a.Lo > b.Lo {
		a, b = b, a
	}
	return uint64(b.Lo) <= uint64(a.Hi)+1
}
