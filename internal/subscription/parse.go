package subscription

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse builds a subscription from a conjunction of constraints in the form
//
//	attr OP value        with OP one of ==, =, <, <=, >, >=
//	attr in [lo, hi]
//
// joined by "&&". The literal "true" (or an empty string) parses to the
// unconstrained subscription. Repeated constraints on one attribute
// intersect. Example: "volume >= 500 && price in [10, 95] && stock == 3".
func Parse(schema *Schema, expr string) (*Subscription, error) {
	s := New(schema)
	expr = strings.TrimSpace(expr)
	if expr == "" || expr == "true" {
		return s, nil
	}
	for _, clause := range strings.Split(expr, "&&") {
		r, attr, err := parseClause(schema, strings.TrimSpace(clause))
		if err != nil {
			return nil, err
		}
		i, _ := schema.AttrIndex(attr) // validated by parseClause
		cur := s.ranges[i]
		lo, hi := max32(cur.Lo, r.Lo), min32(cur.Hi, r.Hi)
		if lo > hi {
			return nil, fmt.Errorf("subscription: constraints on %q are contradictory", attr)
		}
		s.setRangeAt(i, Range{Lo: lo, Hi: hi})
	}
	return s, nil
}

// MustParse is Parse for known-good literals.
func MustParse(schema *Schema, expr string) *Subscription {
	s, err := Parse(schema, expr)
	if err != nil {
		panic(err)
	}
	return s
}

func parseClause(schema *Schema, clause string) (Range, string, error) {
	if clause == "" {
		return Range{}, "", fmt.Errorf("subscription: empty clause")
	}
	fields := strings.Fields(clause)
	if len(fields) < 2 {
		return Range{}, "", fmt.Errorf("subscription: cannot parse clause %q", clause)
	}
	attr := fields[0]
	if _, ok := schema.AttrIndex(attr); !ok {
		return Range{}, "", fmt.Errorf("subscription: unknown attribute %q in clause %q", attr, clause)
	}
	maxV := schema.MaxValue()
	op := fields[1]
	rest := strings.TrimSpace(strings.TrimPrefix(clause, attr))
	rest = strings.TrimSpace(strings.TrimPrefix(rest, op))

	if op == "in" {
		lo, hi, err := parseInterval(rest)
		if err != nil {
			return Range{}, "", fmt.Errorf("subscription: clause %q: %w", clause, err)
		}
		if lo > hi || hi > maxV {
			return Range{}, "", fmt.Errorf("subscription: interval [%d,%d] invalid in clause %q", lo, hi, clause)
		}
		return Range{Lo: lo, Hi: hi}, attr, nil
	}

	v64, err := strconv.ParseUint(rest, 10, 32)
	if err != nil {
		return Range{}, "", fmt.Errorf("subscription: bad value in clause %q: %w", clause, err)
	}
	v := uint32(v64)
	if v > maxV {
		return Range{}, "", fmt.Errorf("subscription: value %d exceeds domain max %d in clause %q", v, maxV, clause)
	}
	switch op {
	case "==", "=":
		return Range{Lo: v, Hi: v}, attr, nil
	case "<=":
		return Range{Lo: 0, Hi: v}, attr, nil
	case "<":
		if v == 0 {
			return Range{}, "", fmt.Errorf("subscription: %q matches nothing", clause)
		}
		return Range{Lo: 0, Hi: v - 1}, attr, nil
	case ">=":
		return Range{Lo: v, Hi: maxV}, attr, nil
	case ">":
		if v == maxV {
			return Range{}, "", fmt.Errorf("subscription: %q matches nothing", clause)
		}
		return Range{Lo: v + 1, Hi: maxV}, attr, nil
	default:
		return Range{}, "", fmt.Errorf("subscription: unknown operator %q in clause %q", op, clause)
	}
}

func parseInterval(s string) (lo, hi uint32, err error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return 0, 0, fmt.Errorf("interval must look like [lo, hi], got %q", s)
	}
	parts := strings.Split(s[1:len(s)-1], ",")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("interval must have two endpoints, got %q", s)
	}
	lo64, err := strconv.ParseUint(strings.TrimSpace(parts[0]), 10, 32)
	if err != nil {
		return 0, 0, err
	}
	hi64, err := strconv.ParseUint(strings.TrimSpace(parts[1]), 10, 32)
	if err != nil {
		return 0, 0, err
	}
	return uint32(lo64), uint32(hi64), nil
}

// ParseEvent builds an event from "attr = value" pairs separated by commas,
// e.g. "stock = 3, volume = 1000, price = 88". Every attribute must appear.
func ParseEvent(schema *Schema, expr string) (Event, error) {
	values := make(map[string]uint32, schema.NumAttrs())
	for _, pair := range strings.Split(expr, ",") {
		parts := strings.SplitN(pair, "=", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("subscription: cannot parse event pair %q", pair)
		}
		name := strings.TrimSpace(parts[0])
		v64, err := strconv.ParseUint(strings.TrimSpace(parts[1]), 10, 32)
		if err != nil {
			return nil, fmt.Errorf("subscription: bad value in event pair %q: %w", pair, err)
		}
		if _, dup := values[name]; dup {
			return nil, fmt.Errorf("subscription: attribute %q assigned twice", name)
		}
		values[name] = uint32(v64)
	}
	return NewEvent(schema, values)
}

func max32(a, b uint32) uint32 {
	if a > b {
		return a
	}
	return b
}

func min32(a, b uint32) uint32 {
	if a < b {
		return a
	}
	return b
}
