package subscription

import "testing"

func TestParseOperators(t *testing.T) {
	schema := MustSchema(10, "stock", "volume", "current")
	tests := []struct {
		expr   string
		attr   string
		wantLo uint32
		wantHi uint32
	}{
		{"stock == 5", "stock", 5, 5},
		{"stock = 5", "stock", 5, 5},
		{"volume > 500", "volume", 501, 1023},
		{"volume >= 500", "volume", 500, 1023},
		{"current < 95", "current", 0, 94},
		{"current <= 95", "current", 0, 95},
		{"volume in [10, 20]", "volume", 10, 20},
		{"volume in [10,20]", "volume", 10, 20},
	}
	for _, tt := range tests {
		s, err := Parse(schema, tt.expr)
		if err != nil {
			t.Errorf("Parse(%q): %v", tt.expr, err)
			continue
		}
		i, _ := schema.AttrIndex(tt.attr)
		if got := s.Range(i); got.Lo != tt.wantLo || got.Hi != tt.wantHi {
			t.Errorf("Parse(%q) range = [%d,%d], want [%d,%d]", tt.expr, got.Lo, got.Hi, tt.wantLo, tt.wantHi)
		}
	}
}

func TestParseConjunction(t *testing.T) {
	schema := MustSchema(10, "stock", "volume", "current")
	s, err := Parse(schema, "stock == 3 && volume > 500 && current < 95")
	if err != nil {
		t.Fatal(err)
	}
	ev, _ := NewEvent(schema, map[string]uint32{"stock": 3, "volume": 1000, "current": 88})
	if !s.Matches(ev) {
		t.Error("conjunction should match the paper's example event")
	}
}

func TestParseRepeatedConstraintsIntersect(t *testing.T) {
	schema := MustSchema(8, "x")
	s, err := Parse(schema, "x >= 10 && x <= 20")
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Range(0); got.Lo != 10 || got.Hi != 20 {
		t.Errorf("intersection = [%d,%d]", got.Lo, got.Hi)
	}
	if _, err := Parse(schema, "x >= 20 && x <= 10"); err == nil {
		t.Error("contradictory constraints must fail")
	}
}

func TestParseErrors(t *testing.T) {
	schema := MustSchema(8, "x")
	bad := []string{
		"y == 1",       // unknown attribute
		"x",            // no operator
		"x ~= 3",       // unknown operator
		"x == 999",     // out of domain
		"x in [5]",     // malformed interval
		"x in (5,6)",   // wrong brackets
		"x in [9,2]",   // inverted interval
		"x in [0,999]", // interval out of domain
		"x == abc",     // non-numeric
		"x < 0",        // empty range
		"x > 255",      // empty range
		"x == 1 && ",   // trailing clause
	}
	for _, expr := range bad {
		if _, err := Parse(schema, expr); err == nil {
			t.Errorf("Parse(%q) should fail", expr)
		}
	}
}

func TestParseEvent(t *testing.T) {
	schema := MustSchema(10, "stock", "volume", "current")
	e, err := ParseEvent(schema, "stock = 3, volume = 1000, current = 88")
	if err != nil {
		t.Fatal(err)
	}
	if e[0] != 3 || e[1] != 1000 || e[2] != 88 {
		t.Errorf("event = %v", e)
	}
	bad := []string{
		"stock = 3", // missing attributes
		"stock = 3, volume = 1, current = 1, x = 2", // unknown attribute
		"stock = 3, stock = 4, current = 1",         // duplicate
		"stock: 3, volume = 1, current = 1",         // malformed pair
		"stock = abc, volume = 1, current = 1",      // non-numeric
	}
	for _, expr := range bad {
		if _, err := ParseEvent(schema, expr); err == nil {
			t.Errorf("ParseEvent(%q) should fail", expr)
		}
	}
}

func TestQuantizer(t *testing.T) {
	if _, err := NewQuantizer(10, 10, 8); err == nil {
		t.Error("empty domain must fail")
	}
	if _, err := NewQuantizer(0, 1, 0); err == nil {
		t.Error("bits=0 must fail")
	}
	q := MustQuantizer(0, 100, 8)
	if q.Quantize(-5) != 0 {
		t.Error("below-domain should clamp to 0")
	}
	if q.Quantize(200) != 255 {
		t.Error("above-domain should clamp to max")
	}
	if q.Quantize(0) != 0 || q.Quantize(100) != 255 {
		t.Error("domain endpoints wrong")
	}
	mid := q.Quantize(50)
	if mid != 128 {
		t.Errorf("Quantize(50) = %d, want 128", mid)
	}
	if v := q.Value(128); v != 50 {
		t.Errorf("Value(128) = %v, want 50", v)
	}
}

func TestQuantizerMonotone(t *testing.T) {
	q := MustQuantizer(-1000, 1000, 12)
	prev := q.Quantize(-1000)
	for v := -999.0; v <= 1000; v += 0.37 {
		cur := q.Quantize(v)
		if cur < prev {
			t.Fatalf("quantizer not monotone at %v: %d < %d", v, cur, prev)
		}
		prev = cur
	}
}

func TestQuantizeRangePreservesContainment(t *testing.T) {
	q := MustQuantizer(0, 1, 10)
	outer, err := q.QuantizeRange(0.2, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	inner, err := q.QuantizeRange(0.3, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if !outer.ContainsRange(inner) {
		t.Error("containment lost under quantization")
	}
	if _, err := q.QuantizeRange(0.8, 0.2); err == nil {
		t.Error("inverted interval must fail")
	}
}
