package subscription

import (
	"fmt"
	"math"
)

// Quantizer maps a continuous attribute domain [Min, Max] onto the
// schema's discrete k-bit grid. Real deployments carry prices, volumes and
// sensor readings as floats; the paper's universe is discrete, so both
// events and subscription bounds are quantized with the same grid, which
// preserves the covering relation (monotone maps preserve interval
// containment).
type Quantizer struct {
	min, max float64
	bits     int
	levels   uint32
}

// NewQuantizer builds a quantizer onto a bits-wide grid.
func NewQuantizer(min, max float64, bits int) (*Quantizer, error) {
	if bits < 1 || bits > 16 {
		return nil, fmt.Errorf("subscription: quantizer bits %d out of range [1,16]", bits)
	}
	if !(min < max) || math.IsNaN(min) || math.IsInf(min, 0) || math.IsInf(max, 0) {
		return nil, fmt.Errorf("subscription: invalid quantizer domain [%v,%v]", min, max)
	}
	return &Quantizer{min: min, max: max, bits: bits, levels: 1 << uint(bits)}, nil
}

// MustQuantizer is NewQuantizer for known-good literals.
func MustQuantizer(min, max float64, bits int) *Quantizer {
	q, err := NewQuantizer(min, max, bits)
	if err != nil {
		panic(err)
	}
	return q
}

// Quantize maps v onto the grid, clamping values outside the domain.
func (q *Quantizer) Quantize(v float64) uint32 {
	if v <= q.min {
		return 0
	}
	if v >= q.max {
		return q.levels - 1
	}
	cell := uint32(float64(q.levels) * (v - q.min) / (q.max - q.min))
	if cell >= q.levels {
		cell = q.levels - 1
	}
	return cell
}

// Value returns the lower edge of grid cell u in the continuous domain.
func (q *Quantizer) Value(u uint32) float64 {
	if u >= q.levels {
		u = q.levels - 1
	}
	return q.min + (q.max-q.min)*float64(u)/float64(q.levels)
}

// QuantizeRange maps a continuous interval to a grid range (both endpoints
// by cell). The mapping is monotone, so interval containment — and with it
// subscription covering — survives quantization.
func (q *Quantizer) QuantizeRange(lo, hi float64) (Range, error) {
	if lo > hi {
		return Range{}, fmt.Errorf("subscription: inverted interval [%v,%v]", lo, hi)
	}
	return Range{Lo: q.Quantize(lo), Hi: q.Quantize(hi)}, nil
}
