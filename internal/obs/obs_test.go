package obs

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	h.Observe(0)
	h.Observe(time.Nanosecond)
	h.Observe(100 * time.Microsecond)
	h.Observe(3 * time.Millisecond)
	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("count = %d, want 4", s.Count)
	}
	wantSum := int64(1 + 100*1000 + 3*1000*1000)
	if s.Sum != wantSum {
		t.Fatalf("sum = %d, want %d", s.Sum, wantSum)
	}
	if s.Counts[0] != 1 {
		t.Fatalf("zero-duration bucket = %d, want 1", s.Counts[0])
	}
	var total uint64
	for _, c := range s.Counts {
		total += c
	}
	if total != s.Count {
		t.Fatalf("bucket total %d != count %d", total, s.Count)
	}
}

func TestHistogramNilSafe(t *testing.T) {
	var h *Histogram
	h.Observe(time.Second) // must not panic
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatalf("nil histogram snapshot count = %d", s.Count)
	}
}

func TestHistogramBucketMonotone(t *testing.T) {
	for i := 1; i < NumBuckets-1; i++ {
		if BucketUpperNS(i) <= BucketUpperNS(i-1) {
			t.Fatalf("bucket bounds not increasing at %d", i)
		}
	}
	// A duration equal to a bucket's upper bound must land at or below
	// that bucket (le is inclusive).
	for i := 1; i < NumBuckets-1; i++ {
		d := BucketUpperNS(i)
		if b := bucketFor(d); b > i {
			t.Fatalf("bucketFor(upper(%d)) = %d, want <= %d", i, b, i)
		}
	}
}

func TestHistogramSubAndMerge(t *testing.T) {
	h := NewHistogram()
	h.Observe(time.Millisecond)
	prev := h.Snapshot()
	h.Observe(2 * time.Millisecond)
	h.Observe(4 * time.Millisecond)
	d := h.Snapshot().Sub(prev)
	if d.Count != 2 {
		t.Fatalf("delta count = %d, want 2", d.Count)
	}
	if d.Sum != int64(6*time.Millisecond) {
		t.Fatalf("delta sum = %d", d.Sum)
	}
	m := d.Merge(prev)
	if m.Count != 3 || m.Sum != int64(7*time.Millisecond) {
		t.Fatalf("merge = %+v", m)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 90; i++ {
		h.Observe(100 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(50 * time.Millisecond)
	}
	s := h.Snapshot()
	p50 := s.Quantile(0.50)
	p99 := s.Quantile(0.99)
	// Log buckets give a 2x upper-bound estimate.
	if p50 < 100*time.Microsecond || p50 > 200*time.Microsecond {
		t.Fatalf("p50 = %v", p50)
	}
	if p99 < 50*time.Millisecond || p99 > 100*time.Millisecond {
		t.Fatalf("p99 = %v", p99)
	}
	if q := (Snapshot{}).Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %v", q)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	const goroutines = 8
	const per = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(g*1000+i) * time.Nanosecond)
				if i%100 == 0 {
					_ = h.Snapshot() // concurrent reads must be safe
				}
			}
		}(g)
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != goroutines*per {
		t.Fatalf("count = %d, want %d", s.Count, goroutines*per)
	}
}

func TestRegistryCap(t *testing.T) {
	r := NewRegistry(3)
	a := r.Hist("a")
	if r.Hist("a") != a {
		t.Fatal("same op must return same histogram")
	}
	r.Hist("b").Observe(time.Millisecond)
	r.Hist("c").Observe(time.Millisecond)
	over1 := r.Hist("d")
	over2 := r.Hist("e")
	if over1 != over2 {
		t.Fatal("past the cap all ops must share the overflow histogram")
	}
	over1.Observe(time.Second)
	snaps := r.Snapshot()
	if len(snaps) != 4 {
		t.Fatalf("snapshot has %d entries, want 4 (3 ops + overflow)", len(snaps))
	}
	if snaps[OverflowOp].Count != 1 {
		t.Fatalf("overflow count = %d", snaps[OverflowOp].Count)
	}
}

func TestRegistryNilSafe(t *testing.T) {
	var r *Registry
	if r.Hist("x") != nil {
		t.Fatal("nil registry must hand out nil histograms")
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot must be nil")
	}
}

func TestSlowLogRing(t *testing.T) {
	l := NewSlowLog(3)
	for i := 1; i <= 5; i++ {
		l.Push(&QueryTrace{Op: fmt.Sprintf("q%d", i)})
	}
	got := l.Snapshot()
	if len(got) != 3 {
		t.Fatalf("len = %d, want 3", len(got))
	}
	// Newest first; oldest two (q1, q2) evicted.
	for i, want := range []string{"q5", "q4", "q3"} {
		if got[i].Op != want {
			t.Fatalf("entry %d = %s, want %s", i, got[i].Op, want)
		}
	}
	if l.Len() != 3 {
		t.Fatalf("Len = %d", l.Len())
	}
}

func TestQueryTraceNilSafe(t *testing.T) {
	var tr *QueryTrace
	tr.AddStage("x", time.Second, 1)
	tr.TouchSlice(3)
	var l *SlowLog
	l.Push(tr)
	if l.Snapshot() != nil || l.Len() != 0 {
		t.Fatal("nil slow log must be empty")
	}
}

func TestQueryTraceSlices(t *testing.T) {
	tr := &QueryTrace{}
	tr.TouchSlice(2)
	tr.TouchSlice(0)
	tr.TouchSlice(2)
	if len(tr.Slices) != 3 || tr.Slices[0] != 1 || tr.Slices[1] != 0 || tr.Slices[2] != 2 {
		t.Fatalf("slices = %v", tr.Slices)
	}
}

func TestObserverSampling(t *testing.T) {
	o := New(Config{TraceSample: 4, SlowThreshold: -1})
	traced := 0
	for i := 0; i < 40; i++ {
		if tr := o.SampleTrace("query"); tr != nil {
			traced++
			o.FinishTrace(tr, time.Microsecond)
		}
	}
	if traced != 10 {
		t.Fatalf("traced %d of 40 at 1-in-4", traced)
	}
	// Negative threshold pushes every finished trace.
	if got := o.SlowLog().Len(); got != 10 {
		t.Fatalf("slow log has %d entries, want 10", got)
	}
}

func TestObserverThreshold(t *testing.T) {
	o := New(Config{TraceSample: 1, SlowThreshold: time.Millisecond})
	fast := o.StartTrace("query")
	o.FinishTrace(fast, 10*time.Microsecond)
	slow := o.StartTrace("query")
	o.FinishTrace(slow, 5*time.Millisecond)
	snap := o.SlowLog().Snapshot()
	if len(snap) != 1 || snap[0].Total != 5*time.Millisecond {
		t.Fatalf("slow log = %+v", snap)
	}
}

func TestObserverNilSafe(t *testing.T) {
	var o *Observer
	if o.Hist("x") != nil || o.Registry() != nil || o.SlowLog() != nil {
		t.Fatal("nil observer must return nil components")
	}
	if o.SampleTrace("q") != nil || o.StartTrace("q") != nil {
		t.Fatal("nil observer must not trace")
	}
	o.FinishTrace(nil, time.Second) // must not panic
}

func TestEscapeLabel(t *testing.T) {
	cases := map[string]string{
		`plain`:        `plain`,
		`a"b`:          `a\"b`,
		`a\b`:          `a\\b`,
		"a\nb":         `a\nb`,
		`mix\"` + "\n": `mix\\\"\n`,
	}
	for in, want := range cases {
		if got := EscapeLabel(in); got != want {
			t.Errorf("EscapeLabel(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestRenderHistogramsInvariants(t *testing.T) {
	h := NewHistogram()
	h.Observe(50 * time.Microsecond)
	h.Observe(200 * time.Microsecond)
	h.Observe(7 * time.Millisecond)
	snaps := map[string]Snapshot{"query": h.Snapshot(), "empty": {}}
	var sb strings.Builder
	RenderHistograms(&sb, "sfcd_op_latency_seconds", "help text", snaps)
	out := sb.String()

	if strings.Contains(out, `op="empty"`) {
		t.Fatal("empty op must be skipped")
	}
	if !strings.Contains(out, "# TYPE sfcd_op_latency_seconds histogram\n") {
		t.Fatal("missing TYPE line")
	}
	var lastCum int64 = -1
	var infCum, count int64 = -1, -1
	for _, line := range strings.Split(out, "\n") {
		switch {
		case strings.HasPrefix(line, "sfcd_op_latency_seconds_bucket"):
			var cum int64
			if strings.Contains(line, `le="+Inf"`) {
				fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%d", &infCum)
				cum = infCum
			} else {
				fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%d", &cum)
			}
			if cum < lastCum {
				t.Fatalf("cumulative bucket decreased: %q after %d", line, lastCum)
			}
			lastCum = cum
		case strings.HasPrefix(line, "sfcd_op_latency_seconds_count"):
			fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%d", &count)
		}
	}
	if infCum != 3 || count != 3 {
		t.Fatalf("+Inf bucket = %d, count = %d, want 3", infCum, count)
	}
	if !strings.Contains(out, "sfcd_op_latency_seconds_sum{op=\"query\"}") {
		t.Fatal("missing _sum sample")
	}
	// Render of all-empty snapshots emits nothing at all.
	var empty strings.Builder
	RenderHistograms(&empty, "x", "h", map[string]Snapshot{"a": {}})
	if empty.Len() != 0 {
		t.Fatalf("all-empty render produced %q", empty.String())
	}
}

func TestRenderHistogramsEscapesOps(t *testing.T) {
	h := NewHistogram()
	h.Observe(time.Millisecond)
	var sb strings.Builder
	RenderHistograms(&sb, "m", "h", map[string]Snapshot{`we"ird`: h.Snapshot()})
	if !strings.Contains(sb.String(), `op="we\"ird"`) {
		t.Fatalf("op label not escaped: %q", sb.String())
	}
}

func TestLoggerLevelsAndFormat(t *testing.T) {
	var buf bytes.Buffer
	lg := NewLogger(&buf, LevelInfo)
	lg.now = func() time.Time { return time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC) }
	lg.Debug("dropped")
	lg.Info("listening", "addr", "127.0.0.1:7070", "mode", "approx")
	lg.Warn("odd message", "detail", "has spaces")
	out := buf.String()
	if strings.Contains(out, "dropped") {
		t.Fatal("debug line must be filtered at info level")
	}
	want := "ts=2026-08-08T12:00:00Z level=info msg=listening addr=127.0.0.1:7070 mode=approx\n"
	if !strings.Contains(out, want) {
		t.Fatalf("log line = %q, want %q", out, want)
	}
	if !strings.Contains(out, `detail="has spaces"`) {
		t.Fatalf("value with spaces must be quoted: %q", out)
	}
}

func TestLoggerNilSafe(t *testing.T) {
	var lg *Logger
	lg.Info("nothing") // must not panic
	if lg.Enabled(LevelError) {
		t.Fatal("nil logger must report disabled")
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]Level{
		"debug": LevelDebug, "INFO": LevelInfo, "Warn": LevelWarn,
		"warning": LevelWarn, " error ": LevelError,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Fatal("ParseLevel must reject unknown levels")
	}
}
