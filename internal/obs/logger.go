package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Level is a log severity.
type Level int

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String returns the level's lowercase name.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return "info"
	}
}

// ParseLevel parses a level name (debug, info, warn, error).
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	default:
		return LevelInfo, fmt.Errorf("unknown log level %q (want debug, info, warn or error)", s)
	}
}

// Logger writes structured key=value lines:
//
//	ts=2026-08-08T12:00:00Z level=info msg="listening" addr=127.0.0.1:7070
//
// Records below the configured level are dropped before formatting. A
// nil *Logger drops everything, so components can hold an optional
// logger without nil checks.
type Logger struct {
	mu    sync.Mutex
	w     io.Writer
	level Level
	// now is swappable for tests.
	now func() time.Time
}

// NewLogger returns a logger writing records at or above level to w.
func NewLogger(w io.Writer, level Level) *Logger {
	return &Logger{w: w, level: level, now: time.Now}
}

// Enabled reports whether records at level would be written.
func (lg *Logger) Enabled(level Level) bool {
	return lg != nil && level >= lg.level
}

func (lg *Logger) log(level Level, msg string, kv []any) {
	if !lg.Enabled(level) {
		return
	}
	var sb strings.Builder
	sb.WriteString("ts=")
	sb.WriteString(lg.now().UTC().Format(time.RFC3339))
	sb.WriteString(" level=")
	sb.WriteString(level.String())
	sb.WriteString(" msg=")
	sb.WriteString(quoteValue(msg))
	for i := 0; i+1 < len(kv); i += 2 {
		sb.WriteByte(' ')
		sb.WriteString(fmt.Sprint(kv[i]))
		sb.WriteByte('=')
		sb.WriteString(quoteValue(fmt.Sprint(kv[i+1])))
	}
	sb.WriteByte('\n')
	lg.mu.Lock()
	io.WriteString(lg.w, sb.String())
	lg.mu.Unlock()
}

// quoteValue quotes a value only when it needs it (spaces, quotes,
// control characters, or emptiness), keeping common lines compact.
func quoteValue(v string) string {
	if v == "" {
		return `""`
	}
	for _, r := range v {
		if r == ' ' || r == '"' || r == '=' || r < 0x20 {
			return strconv.Quote(v)
		}
	}
	return v
}

// Debug logs at debug level; kv is alternating key, value pairs.
func (lg *Logger) Debug(msg string, kv ...any) { lg.log(LevelDebug, msg, kv) }

// Info logs at info level.
func (lg *Logger) Info(msg string, kv ...any) { lg.log(LevelInfo, msg, kv) }

// Warn logs at warn level.
func (lg *Logger) Warn(msg string, kv ...any) { lg.log(LevelWarn, msg, kv) }

// Error logs at error level.
func (lg *Logger) Error(msg string, kv ...any) { lg.log(LevelError, msg, kv) }
