package obs

import (
	"sync"
	"time"
)

// Stage is one timed step inside a query trace: cube decomposition,
// extremal truncation, a shard fan-out, the probe loop. Count carries
// the step's unit count where one exists (cubes generated, shards
// searched, probes timed).
type Stage struct {
	Name  string
	Dur   time.Duration
	Count int
}

// QueryCost mirrors the per-query cost counters the dominance layer
// reports (the paper's cost model: runs probed per standard cube). obs
// cannot import dominance — the dependency points the other way — so
// the engine copies the fields across when it finishes a trace.
type QueryCost struct {
	M              int
	CubesGenerated int
	RunsProbed     int
	VolumeFraction float64
	AspectRatio    int
	Found          bool
}

// QueryTrace is the per-query trace record threaded through the cost
// pipeline: the engine allocates it (for sampled or explicitly traced
// queries), the backend and dominance layers append stages and
// per-slice probe counts as the query descends, and the engine seals it
// with the total latency and the cost counters. A nil *QueryTrace is
// valid everywhere and records nothing, so the un-traced hot path pays
// one pointer test per stage site.
type QueryTrace struct {
	// Op names the logical operation ("query", "covered", "match").
	Op string
	// Start is when the engine began the query.
	Start time.Time
	// Total is the end-to-end latency, filled when the trace is sealed.
	Total time.Duration
	// Stages are the timed steps in execution order.
	Stages []Stage
	// Slices counts run probes per engine slice (index = slice number),
	// populated on curve-prefix plans where probes fan out over slices.
	Slices []int
	// Cost is the dominance cost snapshot for the query.
	Cost QueryCost
}

// AddStage appends a timed stage. Nil-safe.
//
//sfc:hotpath
func (t *QueryTrace) AddStage(name string, d time.Duration, count int) {
	if t == nil {
		return
	}
	t.Stages = append(t.Stages, Stage{Name: name, Dur: d, Count: count})
}

// TouchSlice counts one probe against slice i, growing the slice table
// on demand. Nil-safe.
//
//sfc:hotpath
func (t *QueryTrace) TouchSlice(i int) {
	if t == nil || i < 0 {
		return
	}
	for len(t.Slices) <= i {
		t.Slices = append(t.Slices, 0)
	}
	t.Slices[i]++
}

// DefaultSlowLogSize is the slow-query ring capacity when the observer
// config leaves it zero.
const DefaultSlowLogSize = 128

// SlowLog is a fixed-capacity ring of the most recent slow-query
// traces. Pushes overwrite the oldest entry; Snapshot returns
// newest-first copies. A mutex is fine here — the ring is only touched
// for queries that already crossed the slowness threshold, so it is off
// the hot path by construction.
type SlowLog struct {
	mu   sync.Mutex
	ring []QueryTrace
	next int
	n    int
}

// NewSlowLog returns a ring holding up to size traces
// (DefaultSlowLogSize when size <= 0).
func NewSlowLog(size int) *SlowLog {
	if size <= 0 {
		size = DefaultSlowLogSize
	}
	return &SlowLog{ring: make([]QueryTrace, size)}
}

// Push records a trace, overwriting the oldest when full. Nil-safe.
func (l *SlowLog) Push(t *QueryTrace) {
	if l == nil || t == nil {
		return
	}
	l.mu.Lock()
	l.ring[l.next] = *t
	l.next = (l.next + 1) % len(l.ring)
	if l.n < len(l.ring) {
		l.n++
	}
	l.mu.Unlock()
}

// Snapshot returns the retained traces, newest first.
func (l *SlowLog) Snapshot() []QueryTrace {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]QueryTrace, 0, l.n)
	for i := 0; i < l.n; i++ {
		idx := (l.next - 1 - i + len(l.ring)) % len(l.ring)
		out = append(out, l.ring[idx])
	}
	return out
}

// Len returns the number of retained traces.
func (l *SlowLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}
