package obs

import (
	"sort"
	"sync"
)

// DefaultMaxOps bounds the number of distinct operation labels a
// registry will track. The op set is code-chosen (wire ops, engine
// stages), so the cap is a safety net against accidental unbounded
// label cardinality, not a tuning knob.
const DefaultMaxOps = 64

// OverflowOp is the label that absorbs observations for ops past the
// cardinality cap.
const OverflowOp = "other"

// Registry maps operation names to histograms under a hard cardinality
// cap. Lookups take a read lock only; hot paths should call Hist once
// and cache the pointer — histograms are never removed, so a cached
// pointer stays valid for the registry's lifetime.
type Registry struct {
	mu     sync.RWMutex
	maxOps int
	hists  map[string]*Histogram
	overfl *Histogram
}

// NewRegistry returns a registry capped at maxOps distinct operation
// labels (DefaultMaxOps when maxOps <= 0).
func NewRegistry(maxOps int) *Registry {
	if maxOps <= 0 {
		maxOps = DefaultMaxOps
	}
	return &Registry{maxOps: maxOps, hists: make(map[string]*Histogram)}
}

// Hist returns the histogram for op, creating it if the cap allows;
// past the cap all unknown ops share the OverflowOp histogram. Safe on
// a nil receiver (returns nil, which Observe ignores).
func (r *Registry) Hist(op string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[op]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h := r.hists[op]; h != nil {
		return h
	}
	if len(r.hists) >= r.maxOps {
		if r.overfl == nil {
			r.overfl = NewHistogram()
		}
		return r.overfl
	}
	h = NewHistogram()
	r.hists[op] = h
	return h
}

// Snapshot returns a snapshot per op, sorted op list via Ops. The
// overflow histogram, if populated, appears under OverflowOp.
func (r *Registry) Snapshot() map[string]Snapshot {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]Snapshot, len(r.hists)+1)
	for op, h := range r.hists {
		out[op] = h.Snapshot()
	}
	if r.overfl != nil {
		out[OverflowOp] = r.overfl.Snapshot()
	}
	return out
}

// Ops returns the sorted keys of a snapshot map; exposition helpers use
// it for deterministic output order.
func Ops(snaps map[string]Snapshot) []string {
	ops := make([]string, 0, len(snaps))
	for op := range snaps {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	return ops
}
