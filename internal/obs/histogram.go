// Package obs is the dependency-free observability layer: lock-free
// sharded latency histograms, per-query trace records feeding a
// ring-buffered slow-query log, a bounded-cardinality histogram
// registry, Prometheus text exposition for all of it, and a structured
// key=value logger. Everything here is stdlib-only and cheap enough to
// stay enabled by default on the hot query path: recording one latency
// observation is two atomic adds on a cache-line-padded shard, and run
// probes are timed on a 1-in-8 sample so the clock reads never dominate
// the probe itself.
package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// NumBuckets is the number of log-scale latency buckets. Bucket i holds
// observations whose duration in nanoseconds has bit length i, i.e. the
// half-open range [2^(i-1), 2^i); bucket 0 holds non-positive
// durations, and the last bucket absorbs everything from ~9.2 minutes
// up. Power-of-two bounds make bucketing a single bits.Len64 and keep
// snapshots mergeable across histograms with no bound negotiation.
const NumBuckets = 40

// histShards spreads concurrent writers across cache lines. Eight
// shards cover typical core counts without bloating snapshots; the
// shard is picked by hashing the observed value, which distributes
// uniformly without any per-goroutine state.
const histShards = 8

// histShard is one writer lane: a padded block of per-bucket counters
// plus the running nanosecond sum. The padding keeps adjacent shards
// off each other's cache lines under contention.
type histShard struct {
	counts [NumBuckets]atomic.Uint64
	sum    atomic.Int64
	_      [64 - (NumBuckets*8+8)%64]byte
}

// Histogram is a lock-free log-bucketed latency histogram. A nil
// *Histogram is valid and ignores observations, so call sites can hold
// an unconditional pointer and pay one branch when telemetry is off.
type Histogram struct {
	shards [histShards]histShard
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// bucketFor maps a duration to its bucket index.
func bucketFor(ns int64) int {
	if ns <= 0 {
		return 0
	}
	b := bits.Len64(uint64(ns))
	if b >= NumBuckets {
		return NumBuckets - 1
	}
	return b
}

// splitmix64 is the SplitMix64 finalizer; one multiply-xor round is
// plenty to decorrelate the shard choice from the observed value.
func splitmix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Observe records one latency sample. Safe for concurrent use; safe on
// a nil receiver (no-op).
//
//sfc:hotpath
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := int64(d)
	s := &h.shards[splitmix64(uint64(ns))&(histShards-1)]
	s.counts[bucketFor(ns)].Add(1)
	s.sum.Add(ns)
}

// Snapshot returns a point-in-time copy of the histogram. Under
// concurrent writers the copy is not a single atomic cut, but every
// counter read is itself atomic, so counts never tear and Sub against
// an earlier snapshot never goes negative for a quiescent interval.
func (h *Histogram) Snapshot() Snapshot {
	var s Snapshot
	if h == nil {
		return s
	}
	for i := range h.shards {
		sh := &h.shards[i]
		for b := 0; b < NumBuckets; b++ {
			s.Counts[b] += sh.counts[b].Load()
		}
		s.Sum += sh.sum.Load()
	}
	for _, c := range s.Counts {
		s.Count += c
	}
	return s
}

// Snapshot is an immutable view of a histogram: per-bucket counts, the
// total observation count and the nanosecond sum.
type Snapshot struct {
	Counts [NumBuckets]uint64
	Count  uint64
	Sum    int64
}

// BucketUpperNS is the inclusive nanosecond upper bound of bucket i
// (the last bucket is unbounded; callers render it as +Inf).
func BucketUpperNS(i int) int64 {
	if i <= 0 {
		return 0
	}
	return (int64(1) << i) - 1
}

// Sub returns the delta s - prev, clamping at zero so a snapshot pair
// straddling concurrent writes never yields negative counts.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	var d Snapshot
	for i := range s.Counts {
		if s.Counts[i] > prev.Counts[i] {
			d.Counts[i] = s.Counts[i] - prev.Counts[i]
		}
		d.Count += d.Counts[i]
	}
	if s.Sum > prev.Sum {
		d.Sum = s.Sum - prev.Sum
	}
	return d
}

// Merge returns the bucket-wise union of two snapshots.
func (s Snapshot) Merge(o Snapshot) Snapshot {
	var m Snapshot
	for i := range s.Counts {
		m.Counts[i] = s.Counts[i] + o.Counts[i]
	}
	m.Count = s.Count + o.Count
	m.Sum = s.Sum + o.Sum
	return m
}

// Mean returns the average observed duration, 0 when empty.
func (s Snapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.Sum / int64(s.Count))
}

// Quantile returns an upper-bound estimate of the p-quantile (0 < p <=
// 1): the inclusive bound of the first bucket whose cumulative count
// reaches p·Count. The log buckets bound the estimate within 2x of the
// true value; 0 when the histogram is empty.
func (s Snapshot) Quantile(p float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := uint64(math.Ceil(p * float64(s.Count)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		if cum >= rank {
			if i == NumBuckets-1 {
				// Unbounded bucket: fall back to the mean so the
				// estimate stays finite.
				return s.Mean()
			}
			return time.Duration(BucketUpperNS(i))
		}
	}
	return s.Mean()
}
