package obs

import "sync/atomic"

// Counter is a monotonically increasing metric: lock-free, safe for
// concurrent use, zero value ready. The histogram machinery deliberately
// has no scalar siblings for engine counters (those live in the engine's
// own stats structs); Counter exists for subsystems with no stats struct
// of their own to extend — replication streams, client failover — where
// a full struct would be ceremony around two numbers.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable point-in-time metric: lock-free, safe for
// concurrent use, zero value ready.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the value by d (negative to decrease).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }
