package obs

import (
	"sync/atomic"
	"time"
)

// DefaultSlowThreshold marks a traced query slow when its total latency
// reaches this bound.
const DefaultSlowThreshold = 10 * time.Millisecond

// DefaultTraceSample traces one query in this many; tracing allocates a
// record and times stages, so the hot path amortizes that cost while
// the slow log still sees a steady stream of candidates.
const DefaultTraceSample = 16

// Config tunes an Observer. The zero value selects the defaults, which
// are cheap enough to leave telemetry on in production.
type Config struct {
	// SlowThreshold is the latency at or above which a traced query is
	// pushed to the slow log (DefaultSlowThreshold when 0; negative
	// pushes every traced query, which tests use to make the log
	// deterministic).
	SlowThreshold time.Duration
	// SlowLogSize caps the slow-query ring (DefaultSlowLogSize when 0).
	SlowLogSize int
	// TraceSample traces one query in TraceSample
	// (DefaultTraceSample when 0; 1 traces every query).
	TraceSample int
	// MaxOps caps distinct histogram labels (DefaultMaxOps when 0).
	MaxOps int
}

// Observer bundles the registry of latency histograms, the trace
// sampler and the slow-query log for one engine (or one daemon). All
// methods are safe on a nil receiver — a nil *Observer is the
// telemetry-off state and costs one branch per call site.
type Observer struct {
	cfg  Config
	reg  *Registry
	slow *SlowLog
	tick atomic.Uint64
}

// New builds an Observer from cfg (zero value = defaults).
func New(cfg Config) *Observer {
	if cfg.SlowThreshold == 0 {
		cfg.SlowThreshold = DefaultSlowThreshold
	}
	if cfg.TraceSample <= 0 {
		cfg.TraceSample = DefaultTraceSample
	}
	return &Observer{
		cfg:  cfg,
		reg:  NewRegistry(cfg.MaxOps),
		slow: NewSlowLog(cfg.SlowLogSize),
	}
}

// Hist returns the latency histogram for op. Nil-safe (returns nil).
func (o *Observer) Hist(op string) *Histogram {
	if o == nil {
		return nil
	}
	return o.reg.Hist(op)
}

// Registry exposes the histogram registry for exposition. Nil-safe.
func (o *Observer) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// SlowLog exposes the slow-query ring. Nil-safe.
func (o *Observer) SlowLog() *SlowLog {
	if o == nil {
		return nil
	}
	return o.slow
}

// SampleTrace returns a fresh trace record for one in cfg.TraceSample
// calls (nil otherwise, and always nil on a nil Observer). The counter
// is a single shared atomic: one uncontended add per query, which is
// noise next to the probe loop it meters.
//
//sfc:hotpath
func (o *Observer) SampleTrace(op string) *QueryTrace {
	if o == nil {
		return nil
	}
	if o.tick.Add(1)%uint64(o.cfg.TraceSample) != 0 {
		return nil
	}
	return o.StartTrace(op)
}

// StartTrace unconditionally starts a trace record (used by the
// explicit trace wire op). Nil-safe.
func (o *Observer) StartTrace(op string) *QueryTrace {
	if o == nil {
		return nil
	}
	return &QueryTrace{Op: op, Start: time.Now()}
}

// FinishTrace seals tr with the total latency and pushes it to the slow
// log when it crossed the threshold. Nil-safe in both arguments.
func (o *Observer) FinishTrace(tr *QueryTrace, total time.Duration) {
	if o == nil || tr == nil {
		return
	}
	tr.Total = total
	if o.cfg.SlowThreshold < 0 || total >= o.cfg.SlowThreshold {
		o.slow.Push(tr)
	}
}
