package obs

import (
	"fmt"
	"strconv"
	"strings"
)

// EscapeLabel escapes a label value per the Prometheus text exposition
// format: backslash, double quote and newline must be escaped.
func EscapeLabel(v string) string {
	var sb strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// formatLE renders a bucket's inclusive upper bound in seconds the way
// Prometheus expects le values: a plain decimal float.
func formatLE(ns int64) string {
	return strconv.FormatFloat(float64(ns)/1e9, 'g', -1, 64)
}

// RenderHistograms writes one Prometheus histogram family named name:
// for every op in snaps a full cumulative `_bucket` series labelled
// {op="...",le="..."} plus `_sum` and `_count`. Empty ops are skipped
// so the exposition stays proportional to actual traffic. Output order
// is deterministic (ops sorted, buckets ascending) and buckets with a
// zero delta are elided — cumulative counts make them redundant — which
// keeps the page readable at 40 buckets per op.
func RenderHistograms(sb *strings.Builder, name, help string, snaps map[string]Snapshot) {
	ops := Ops(snaps)
	any := false
	for _, op := range ops {
		if snaps[op].Count > 0 {
			any = true
			break
		}
	}
	if !any {
		return
	}
	fmt.Fprintf(sb, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	for _, op := range ops {
		s := snaps[op]
		if s.Count == 0 {
			continue
		}
		esc := EscapeLabel(op)
		var cum uint64
		for i := 0; i < NumBuckets-1; i++ {
			cum += s.Counts[i]
			if s.Counts[i] == 0 && cum != s.Count {
				continue
			}
			fmt.Fprintf(sb, "%s_bucket{op=\"%s\",le=\"%s\"} %s\n",
				name, esc, formatLE(BucketUpperNS(i)), strconv.FormatUint(cum, 10))
			if cum == s.Count {
				break
			}
		}
		fmt.Fprintf(sb, "%s_bucket{op=\"%s\",le=\"+Inf\"} %s\n", name, esc, strconv.FormatUint(s.Count, 10))
		fmt.Fprintf(sb, "%s_sum{op=\"%s\"} %s\n", name, esc,
			strconv.FormatFloat(float64(s.Sum)/1e9, 'g', -1, 64))
		fmt.Fprintf(sb, "%s_count{op=\"%s\"} %s\n", name, esc, strconv.FormatUint(s.Count, 10))
	}
}
